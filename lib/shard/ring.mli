(** The consistent-hash ring: keys → partitions → small replica sets.

    The flat one-group-per-service design multicasts every update to
    every member, which the paper itself caps at "groups of 32 or 64
    sites".  The ring is the scaling move the paper's twentyq design
    already hints at (it partitions the database across members): split
    the key space into a fixed number of {e partitions} (vnodes, in
    riak_core terms) and give each partition its own {e small}
    view-synchronous replica group.  A multicast then touches the
    partition's replicas — typically 3 sites — no matter how large the
    deployment grows, and aggregate throughput scales with the number
    of partitions that can make progress concurrently.

    The ring itself is pure arithmetic, shared by every router and
    test: a deterministic string hash maps a key to one of
    [partitions] ids, and rendezvous (highest-random-weight) hashing
    maps a partition id to its preferred replica sites.  Rendezvous
    hashing keeps reassignment minimal: removing a site only moves the
    partitions that site owned, and every other assignment is
    untouched — exactly the property the view-change-driven handoff
    relies on. *)

type t

(** [create ?partitions ()] — a ring with [partitions] partitions
    (default 64).
    @raise Invalid_argument if [partitions < 1]. *)
val create : ?partitions:int -> unit -> t

val n_partitions : t -> int

(** [partition_of_key t key] — the partition owning [key].  Pure and
    deterministic: the same key maps to the same partition in every
    process of every run. *)
val partition_of_key : t -> string -> int

(** [owners t ~sites ~replicas part] — the preferred replica sites for
    [part], in descending preference order: the [replicas] highest
    rendezvous scores among [sites] (all of [sites], preference-sorted,
    when fewer than [replicas] are available).  Deterministic in
    [sites] as a {e set} (order-insensitive).
    @raise Invalid_argument if [sites] is empty or [replicas < 1]. *)
val owners : t -> sites:int list -> replicas:int -> int -> int list

(** [primary t ~sites part] — the first owner ([owners] head) with a
    single replica. *)
val primary : t -> sites:int list -> int -> int

(** [hash64 s] — the ring's deterministic 64-bit string hash (FNV-1a),
    exposed for tests and for callers that need a stable hash of their
    own. *)
val hash64 : string -> int64
