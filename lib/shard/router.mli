(** The partition router: keyed requests → the owning replica group.

    One router per client process.  It owns a {!Ring.t}, derives the
    per-partition group names ([<base>-p<N>]), caches directory
    lookups so the steady-state keyed path costs one hash plus one
    hashtable probe, and implements the two request shapes of a
    sharded service:

    - {e keyed}: hash the key, multicast to the one small replica
      group that owns its partition;
    - {e coverage}: scatter a request to {e every} partition group
      concurrently and gather the per-partition outcomes (the
      horizontal-query mode).  Reply collection relies on the
      null-reply convention — a replica that has nothing to say must
      [null_reply] — so coverage calls never hang on a healthy
      group, and failed groups resolve to [All_failed] rather than
      blocking.

    All blocking calls must run inside a task of the router's
    process. *)

module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

type t

val create : Runtime.proc -> ring:Ring.t -> base:string -> t
val ring : t -> Ring.t
val owner_proc : t -> Runtime.proc

(** [group_name t part] — directory name of partition [part]'s group. *)
val group_name : t -> int -> string

val partition_of_key : t -> string -> int

(** [lookup t part] — the partition's group id, from cache or one
    directory lookup (blocking on a miss). *)
val lookup : t -> int -> Addr.group_id option

(** [forget t part] drops the cached id (after a failed send whose
    group may have been remade). *)
val forget : t -> int -> unit

(** [cast t ~key mode ~entry msg ~want] multicasts to the group owning
    [key]'s partition.  [None] when the partition's group is not in
    the directory (service down or not yet deployed). *)
val cast :
  t ->
  key:string ->
  Types.mode ->
  entry:Entry.t ->
  Message.t ->
  want:Types.want ->
  Runtime.outcome option

(** One partition's slice of a coverage call. *)
type covered = {
  cov_part : int;
  cov_outcome : Runtime.outcome option;
      (** [None]: the partition's group could not be resolved. *)
}

(** [coverage t mode ~entry ~make ~want] scatters [make part] to every
    partition's group concurrently and gathers all outcomes.  Results
    are in partition order; the call returns when every partition has
    either answered, failed, or proven unresolvable. *)
val coverage :
  t ->
  Types.mode ->
  entry:Entry.t ->
  make:(int -> Message.t) ->
  want:Types.want ->
  covered list
