module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types
module Condition = Vsync_tasks.Condition

type t = {
  me : Runtime.proc;
  ring : Ring.t;
  base : string;
  gids : (int, Addr.group_id) Hashtbl.t;
}

let create me ~ring ~base = { me; ring; base; gids = Hashtbl.create 64 }
let ring t = t.ring
let owner_proc t = t.me
let group_name t part = Printf.sprintf "%s-p%d" t.base part
let partition_of_key t key = Ring.partition_of_key t.ring key

let lookup t part =
  match Hashtbl.find_opt t.gids part with
  | Some gid -> Some gid
  | None -> (
    match Runtime.pg_lookup t.me (group_name t part) with
    | Some gid ->
      Hashtbl.replace t.gids part gid;
      Some gid
    | None -> None)

let forget t part = Hashtbl.remove t.gids part

let cast t ~key mode ~entry msg ~want =
  let part = partition_of_key t key in
  match lookup t part with
  | None -> None
  | Some gid -> Some (Runtime.bcast t.me mode ~dest:(Addr.Group gid) ~entry msg ~want)

type covered = { cov_part : int; cov_outcome : Runtime.outcome option }

let coverage t mode ~entry ~make ~want =
  let n = Ring.n_partitions t.ring in
  let results = Array.make n None in
  let remaining = ref n in
  let done_ = Condition.create () in
  for part = 0 to n - 1 do
    Runtime.spawn_task t.me (fun () ->
        let outcome =
          match lookup t part with
          | None -> None
          | Some gid ->
            Some (Runtime.bcast t.me mode ~dest:(Addr.Group gid) ~entry (make part) ~want)
        in
        results.(part) <- Some { cov_part = part; cov_outcome = outcome };
        decr remaining;
        if !remaining = 0 then Condition.broadcast done_)
  done;
  while !remaining > 0 do
    Condition.wait done_
  done;
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every slot filled before the gate opens *))
