type t = { partitions : int }

let create ?(partitions = 64) () =
  if partitions < 1 then invalid_arg "Ring.create: partitions < 1";
  { partitions }

let n_partitions t = t.partitions

(* FNV-1a, 64-bit.  Chosen over [Hashtbl.hash] because the ring's
   key→partition and partition→site maps must be stable across OCaml
   versions and word sizes: they are baked into handoff tests, bench
   JSON, and any persisted placement. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* Map to [0, n) via the top bits after one avalanche multiply; the
   low bits of raw FNV are the weakest. *)
let bucket h n =
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let top = Int64.to_int (Int64.shift_right_logical h 33) in
  top mod n

let partition_of_key t key = bucket (hash64 key) t.partitions

(* Rendezvous (highest-random-weight) score of [site] for [part].
   Mixing the two ids through the string hash keeps the score
   independent across partitions, so each partition ranks sites in an
   effectively random — but deterministic — order. *)
let score part site =
  hash64 (Printf.sprintf "p%d/s%d" part site)

let owners t ~sites ~replicas part =
  if sites = [] then invalid_arg "Ring.owners: no sites";
  if replicas < 1 then invalid_arg "Ring.owners: replicas < 1";
  if part < 0 || part >= t.partitions then invalid_arg "Ring.owners: bad partition";
  let scored = List.map (fun s -> (score part s, s)) sites in
  let by_pref (h1, s1) (h2, s2) =
    (* Descending score; site id breaks the (improbable) tie so the
       order is total and set-deterministic. *)
    match Int64.unsigned_compare h2 h1 with 0 -> compare s1 s2 | c -> c
  in
  let sorted = List.sort by_pref scored in
  List.filteri (fun i _ -> i < replicas) (List.map snd sorted)

let primary t ~sites part =
  List.hd (owners t ~sites ~replicas:1 part)
