module Rng = Vsync_util.Rng
module Stats = Vsync_util.Stats
module Tracer = Vsync_obs.Tracer
module Event = Vsync_obs.Event

type site = int

type config = {
  intra_site_us : int;
  inter_site_us : int;
  bandwidth_bytes_per_sec : int;
  per_packet_overhead_bytes : int;
  max_packet_bytes : int;
  loss_probability : float;
}

let default_config =
  {
    intra_site_us = 10;
    inter_site_us = 16_000;
    bandwidth_bytes_per_sec = 1_250_000;
    per_packet_overhead_bytes = 64;
    max_packet_bytes = 4096;
    loss_probability = 0.0;
  }

type burst = {
  p_enter : float;
  p_exit : float;
  loss_good : float;
  loss_bad : float;
}

(* Per-directed-link fault state.  Absent from the table means the link
   is clean; a present entry with default fields behaves identically, so
   installing and clearing faults never perturbs clean-link RNG draws
   (each field guards its own draw). *)
type link = {
  mutable l_loss : float;
  mutable l_extra_us : int;
  mutable l_jitter_us : int;
  mutable l_dup : float;
  mutable l_reorder : float;
  mutable l_reorder_span_us : int;
  mutable l_bw_factor : float;
  mutable l_burst : burst option;
  mutable l_bad : bool; (* current Gilbert–Elliott state *)
}

let fresh_link () =
  {
    l_loss = 0.0;
    l_extra_us = 0;
    l_jitter_us = 0;
    l_dup = 0.0;
    l_reorder = 0.0;
    l_reorder_span_us = 0;
    l_bw_factor = 1.0;
    l_burst = None;
    l_bad = false;
  }

type split = { sp_left : site list; sp_right : site list; sp_sym : bool }

type t = {
  engine : Engine.t;
  mutable cfg : config;
  n_sites : int;
  up : bool array;
  (* Earliest time each site's transmitter is free: models NIC
     serialization, which is what saturates throughput in Figure 2. *)
  tx_free : Engine.time array;
  (* Active splits; more than one may be in force at once (overlapping
     partitions), and a split may be one-way ([sym = false] blocks only
     left-to-right traffic — an asymmetric partition). *)
  mutable splits : split list;
  links : (site * site, link) Hashtbl.t;
  rng : Rng.t;
  counters : Stats.Counter.t;
  mutable tracer : Tracer.t option;
}

let create engine cfg ~sites =
  if sites <= 0 then invalid_arg "Net.create: need at least one site";
  {
    engine;
    cfg;
    n_sites = sites;
    up = Array.make sites true;
    tx_free = Array.make sites 0;
    splits = [];
    links = Hashtbl.create 8;
    rng = Rng.split (Engine.rng engine);
    counters = Stats.Counter.create ();
    tracer = None;
  }

let config t = t.cfg
let n_sites t = t.n_sites
let engine t = t.engine
let set_tracer t tr = t.tracer <- Some tr
let tracer t = t.tracer

(* Fault decisions are worth tracing but must stay free when tracing is
   off: construct the event only once a listener is confirmed. *)
let trace_net t mk =
  match t.tracer with
  | Some tr when Tracer.wants tr Event.Net -> Tracer.emit tr (mk ())
  | Some _ | None -> ()

let check_site t s name =
  if s < 0 || s >= t.n_sites then invalid_arg (Printf.sprintf "Net.%s: bad site %d" name s)

let site_up t s =
  check_site t s "site_up";
  t.up.(s)

let crash_site t s =
  check_site t s "crash_site";
  t.up.(s) <- false

let restart_site t s =
  check_site t s "restart_site";
  t.up.(s) <- true;
  t.tx_free.(s) <- Engine.now t.engine

let set_loss t p = t.cfg <- { t.cfg with loss_probability = p }

let partition t left right =
  t.splits <- { sp_left = left; sp_right = right; sp_sym = true } :: t.splits

let partition_oneway t left right =
  t.splits <- { sp_left = left; sp_right = right; sp_sym = false } :: t.splits

let heal t = t.splits <- []

(* Remove one split by its site sets (either orientation), leaving any
   overlapping splits in force. *)
let heal_split t left right =
  let same a b = List.sort compare a = List.sort compare b in
  let matches sp =
    (same sp.sp_left left && same sp.sp_right right)
    || (same sp.sp_left right && same sp.sp_right left)
  in
  match List.find_opt matches t.splits with
  | None -> ()
  | Some sp -> t.splits <- List.filter (fun x -> x != sp) t.splits

let split_blocks sp a b =
  (List.mem a sp.sp_left && List.mem b sp.sp_right)
  || (sp.sp_sym && List.mem a sp.sp_right && List.mem b sp.sp_left)

(* [partitioned t a b]: is a packet from [a] to [b] blocked by any
   active split?  Directional — for a one-way split only the
   left-to-right direction is blocked. *)
let partitioned t a b = List.exists (fun sp -> split_blocks sp a b) t.splits

(* --- Per-link faults --- *)

let link t ~src ~dst name =
  check_site t src name;
  check_site t dst name;
  if src = dst then invalid_arg (Printf.sprintf "Net.%s: intra-site links have no faults" name);
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l
  | None ->
    let l = fresh_link () in
    Hashtbl.replace t.links (src, dst) l;
    l

let check_prob p name =
  if p < 0.0 || p > 1.0 then invalid_arg (Printf.sprintf "Net.%s: probability out of [0,1]" name)

let set_link_loss t ~src ~dst p =
  check_prob p "set_link_loss";
  (link t ~src ~dst "set_link_loss").l_loss <- p

let set_link_delay t ~src ~dst ~extra_us ~jitter_us =
  if extra_us < 0 || jitter_us < 0 then invalid_arg "Net.set_link_delay: negative delay";
  let l = link t ~src ~dst "set_link_delay" in
  l.l_extra_us <- extra_us;
  l.l_jitter_us <- jitter_us

let set_link_dup t ~src ~dst p =
  check_prob p "set_link_dup";
  (link t ~src ~dst "set_link_dup").l_dup <- p

let set_link_reorder t ~src ~dst ?(span_us = 30_000) p =
  check_prob p "set_link_reorder";
  if span_us < 0 then invalid_arg "Net.set_link_reorder: negative span";
  let l = link t ~src ~dst "set_link_reorder" in
  l.l_reorder <- p;
  l.l_reorder_span_us <- span_us

let set_link_bandwidth_factor t ~src ~dst f =
  if f <= 0.0 then invalid_arg "Net.set_link_bandwidth_factor: factor must be positive";
  (link t ~src ~dst "set_link_bandwidth_factor").l_bw_factor <- f

let set_link_burst t ~src ~dst b =
  check_prob b.p_enter "set_link_burst";
  check_prob b.p_exit "set_link_burst";
  check_prob b.loss_good "set_link_burst";
  check_prob b.loss_bad "set_link_burst";
  let l = link t ~src ~dst "set_link_burst" in
  l.l_burst <- Some b;
  l.l_bad <- false

let clear_link t ~src ~dst =
  check_site t src "clear_link";
  check_site t dst "clear_link";
  Hashtbl.remove t.links (src, dst)

let clear_links t = Hashtbl.reset t.links

let fragments t ~bytes =
  if bytes < 0 then invalid_arg "Net.fragments: negative size";
  let max = t.cfg.max_packet_bytes in
  if bytes <= max then [ bytes ]
  else begin
    let rec loop remaining acc =
      if remaining <= max then List.rev (remaining :: acc) else loop (remaining - max) (max :: acc)
    in
    loop bytes []
  end

let send t ~src ~dst ~bytes deliver =
  check_site t src "send";
  check_site t dst "send";
  if bytes < 0 || bytes > t.cfg.max_packet_bytes then
    invalid_arg "Net.send: packet exceeds max_packet_bytes (fragment first)";
  if not t.up.(src) then () (* a dead site sends nothing *)
  else if src = dst then begin
    (* Intra-site hop: fixed cost, no medium contention, never lost. *)
    ignore (Engine.schedule t.engine ~delay:t.cfg.intra_site_us (fun () -> if t.up.(dst) then deliver ()))
  end
  else begin
    let wire_bytes = bytes + t.cfg.per_packet_overhead_bytes in
    Stats.Counter.incr t.counters "net.packets";
    Stats.Counter.add t.counters "net.bytes" wire_bytes;
    let lk = Hashtbl.find_opt t.links (src, dst) in
    (* The Gilbert–Elliott chain steps once per packet offered to the
       link, whether or not the packet then survives. *)
    let burst_loss =
      match lk with
      | Some ({ l_burst = Some b; _ } as l) ->
        if l.l_bad then begin
          if Rng.bernoulli t.rng b.p_exit then l.l_bad <- false
        end
        else if Rng.bernoulli t.rng b.p_enter then l.l_bad <- true;
        if l.l_bad then b.loss_bad else b.loss_good
      | Some _ | None -> 0.0
    in
    let extra_loss = match lk with Some l -> l.l_loss | None -> 0.0 in
    let p_keep =
      (1.0 -. t.cfg.loss_probability) *. (1.0 -. extra_loss) *. (1.0 -. burst_loss)
    in
    if not (Rng.bernoulli t.rng p_keep) then begin
      Stats.Counter.incr t.counters "net.lost";
      trace_net t (fun () ->
          let reason = if burst_loss > 0.0 then "burst_loss" else "loss" in
          Event.Net_drop { src; dst; reason })
    end
    else begin
      let now = Engine.now t.engine in
      (* Serialize on the sender's transmitter, then propagate.  A
         degraded link stretches the serialization time. *)
      let tx_start = if t.tx_free.(src) > now then t.tx_free.(src) else now in
      let tx_time = wire_bytes * 1_000_000 / t.cfg.bandwidth_bytes_per_sec in
      let tx_time =
        match lk with
        | Some l when l.l_bw_factor <> 1.0 ->
          int_of_float (Float.round (float_of_int tx_time *. l.l_bw_factor))
        | Some _ | None -> tx_time
      in
      let tx_done = tx_start + tx_time in
      t.tx_free.(src) <- tx_done;
      let fault_delay =
        match lk with
        | None -> 0
        | Some l ->
          let jitter = if l.l_jitter_us > 0 then Rng.int_in t.rng 0 l.l_jitter_us else 0 in
          let detour =
            if l.l_reorder > 0.0 && Rng.bernoulli t.rng l.l_reorder then begin
              Stats.Counter.incr t.counters "net.reordered";
              let d =
                if l.l_reorder_span_us > 0 then Rng.int_in t.rng 1 l.l_reorder_span_us else 0
              in
              trace_net t (fun () -> Event.Net_delay { src; dst; extra_us = d });
              d
            end
            else 0
          in
          l.l_extra_us + jitter + detour
      in
      let arrival = tx_done + t.cfg.inter_site_us + fault_delay in
      let deliver_checked () =
        (* Partition/destination checks happen at arrival time:
           a packet in flight when the link goes bad is lost. *)
        if t.up.(dst) && not (partitioned t src dst) then deliver ()
        else begin
          Stats.Counter.incr t.counters "net.lost";
          trace_net t (fun () ->
              let reason = if t.up.(dst) then "partition" else "dst_down" in
              Event.Net_drop { src; dst; reason })
        end
      in
      ignore (Engine.schedule_at t.engine arrival deliver_checked);
      match lk with
      | Some l when l.l_dup > 0.0 && Rng.bernoulli t.rng l.l_dup ->
        Stats.Counter.incr t.counters "net.dup";
        trace_net t (fun () -> Event.Net_dup { src; dst });
        let echo_at = arrival + Rng.int_in t.rng 1 2_000 in
        ignore (Engine.schedule_at t.engine echo_at deliver_checked)
      | Some _ | None -> ()
    end
  end

let packets_sent t = Stats.Counter.get t.counters "net.packets"
let bytes_sent t = Stats.Counter.get t.counters "net.bytes"
let packets_lost t = Stats.Counter.get t.counters "net.lost"
let packets_duplicated t = Stats.Counter.get t.counters "net.dup"
let packets_reordered t = Stats.Counter.get t.counters "net.reordered"
let counters t = t.counters

(* The network's [Backend.t] view: what the transport and runtime
   layers consume instead of touching [Engine]/[Net] directly.  The rng
   handed out is the engine root, deliberately unsplit — splitting here
   would advance the root stream and shift the seeds of every later
   split (workload skew, nemesis), invalidating digest-locked traces. *)
let backend t =
  let module B = Vsync_backend.Backend in
  B.v ~kind:B.Sim
    ~now:(fun () -> Engine.now t.engine)
    ~schedule_at:(fun at f ->
      let h = Engine.schedule_at t.engine at f in
      B.handle_of_cancel (fun () -> Engine.cancel h))
    ~send:(fun src dst bytes deliver -> send t ~src ~dst ~bytes deliver)
    ~n_sites:t.n_sites ~max_packet_bytes:t.cfg.max_packet_bytes
    ~intra_site_us:t.cfg.intra_site_us
    ~rng:(Engine.rng t.engine)
