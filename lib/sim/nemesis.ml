module Rng = Vsync_util.Rng

type op =
  | Crash_site of int
  | Restart_site of int
  | Partition of int list * int list
  | Partition_oneway of int list * int list
  | Heal
  | Heal_partition of int list * int list
  | Set_loss of float
  | Link_loss of { src : int; dst : int; p : float }
  | Loss_burst of { src : int; dst : int; burst : Net.burst }
  | Degrade_link of { src : int; dst : int; bw_factor : float; extra_us : int; jitter_us : int }
  | Dup_window of { src : int; dst : int; p : float }
  | Reorder_window of { src : int; dst : int; p : float; span_us : int }
  | Clear_link of { src : int; dst : int }
  | Clear_faults

type event = { at : Engine.time; op : op }
type plan = event list

type actions = { crash_site : int -> unit; restart_site : int -> unit }

let net_actions net =
  { crash_site = Net.crash_site net; restart_site = Net.restart_site net }

let apply_op net actions = function
  | Crash_site s -> actions.crash_site s
  | Restart_site s -> actions.restart_site s
  | Partition (l, r) -> Net.partition net l r
  | Partition_oneway (l, r) -> Net.partition_oneway net l r
  | Heal -> Net.heal net
  | Heal_partition (l, r) -> Net.heal_split net l r
  | Set_loss p -> Net.set_loss net p
  | Link_loss { src; dst; p } -> Net.set_link_loss net ~src ~dst p
  | Loss_burst { src; dst; burst } -> Net.set_link_burst net ~src ~dst burst
  | Degrade_link { src; dst; bw_factor; extra_us; jitter_us } ->
    Net.set_link_bandwidth_factor net ~src ~dst bw_factor;
    Net.set_link_delay net ~src ~dst ~extra_us ~jitter_us
  | Dup_window { src; dst; p } -> Net.set_link_dup net ~src ~dst p
  | Reorder_window { src; dst; p; span_us } -> Net.set_link_reorder net ~src ~dst ~span_us p
  | Clear_link { src; dst } -> Net.clear_link net ~src ~dst
  | Clear_faults ->
    Net.clear_links net;
    Net.set_loss net 0.0

(* --- Pretty-printing --- *)

let pp_sites ppf ss =
  Format.fprintf ppf "{%s}" (String.concat " " (List.map string_of_int ss))

let pp_op ppf = function
  | Crash_site s -> Format.fprintf ppf "crash site %d" s
  | Restart_site s -> Format.fprintf ppf "restart site %d" s
  | Partition (l, r) -> Format.fprintf ppf "partition %a | %a" pp_sites l pp_sites r
  | Partition_oneway (l, r) ->
    Format.fprintf ppf "partition-oneway %a -> %a" pp_sites l pp_sites r
  | Heal -> Format.pp_print_string ppf "heal"
  | Heal_partition (l, r) -> Format.fprintf ppf "heal-partition %a | %a" pp_sites l pp_sites r
  | Set_loss p -> Format.fprintf ppf "global loss %.3f" p
  | Link_loss { src; dst; p } -> Format.fprintf ppf "link %d->%d loss %.3f" src dst p
  | Loss_burst { src; dst; burst } ->
    Format.fprintf ppf "link %d->%d burst (enter %.3f exit %.3f bad %.3f)" src dst
      burst.Net.p_enter burst.Net.p_exit burst.Net.loss_bad
  | Degrade_link { src; dst; bw_factor; extra_us; jitter_us } ->
    Format.fprintf ppf "link %d->%d degrade (bw x%.1f +%dus jitter %dus)" src dst bw_factor
      extra_us jitter_us
  | Dup_window { src; dst; p } -> Format.fprintf ppf "link %d->%d dup %.3f" src dst p
  | Reorder_window { src; dst; p; span_us } ->
    Format.fprintf ppf "link %d->%d reorder %.3f span %dus" src dst p span_us
  | Clear_link { src; dst } -> Format.fprintf ppf "link %d->%d clear" src dst
  | Clear_faults -> Format.pp_print_string ppf "clear all faults"

let pp_event ppf ev = Format.fprintf ppf "[+%8.3fs] %a" (Engine.to_sec ev.at) pp_op ev.op

let install ?actions net plan =
  let actions = match actions with Some a -> a | None -> net_actions net in
  List.iter
    (fun ev ->
      if ev.at < 0 then invalid_arg "Nemesis.install: negative event time";
      ignore
        (Engine.schedule (Net.engine net) ~delay:ev.at (fun () ->
             (match Net.tracer net with
             | Some tr when Vsync_obs.Tracer.wants tr Vsync_obs.Event.Net ->
               Vsync_obs.Tracer.emit tr
                 (Vsync_obs.Event.Nemesis { action = Format.asprintf "%a" pp_op ev.op })
             | Some _ | None -> ());
             apply_op net actions ev.op)))
    plan
let pp_plan ppf plan = List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) plan
let plan_to_string plan = Format.asprintf "%a" pp_plan plan

(* --- Random plan generation --- *)

let frac rng lo hi = lo +. Rng.float rng (hi -. lo)

let random_plan ?(protect = [ 0 ]) ~seed ~sites ~horizon_us ~intensity () =
  if sites <= 1 then invalid_arg "Nemesis.random_plan: need at least two sites";
  if horizon_us <= 0 then invalid_arg "Nemesis.random_plan: empty horizon";
  let intensity = Float.max 0.0 (Float.min 1.0 intensity) in
  let rng = Rng.create seed in
  let events = ref [] in
  let emit at op = events := { at; op } :: !events in
  (* Faults start after the first 5% and are all reverted by 85% of the
     horizon, leaving a settle tail for the protocols to converge. *)
  let active_end = horizon_us * 17 / 20 in
  let start_min = horizon_us / 20 in
  let crashable = List.filter (fun s -> not (List.mem s protect)) (List.init sites Fun.id) in
  let crash_windows = ref [] in
  let part_busy = ref 0 in
  let loss_busy = ref 0 in
  let link_busy = Hashtbl.create 8 in
  let site_busy = Array.make sites 0 in
  let pick_window ~min_dur ~max_dur =
    let max_dur = max min_dur max_dur in
    let start = Rng.int_in rng start_min (max start_min (active_end - min_dur)) in
    let dur = Rng.int_in rng min_dur max_dur in
    let dur = min dur (active_end - start) in
    (start, max min_dur dur)
  in
  let pick_link () =
    let src = Rng.int rng sites in
    let dst = (src + 1 + Rng.int rng (sites - 1)) mod sites in
    (src, dst)
  in
  let n_episodes = 2 + int_of_float (intensity *. 10.0) in
  for _ = 1 to n_episodes do
    let kind = Rng.int rng 100 in
    if kind < 20 then begin
      (* Crash + restart, bounded so at least two sites stay up. *)
      if crashable <> [] then begin
        let s = Rng.choose rng crashable in
        let start, dur =
          pick_window ~min_dur:1_000_000
            ~max_dur:(1_000_000 + int_of_float (intensity *. 6.0e6))
        in
        let overlapping =
          List.length
            (List.filter (fun (b, e) -> b < start + dur && start < e) !crash_windows)
        in
        if site_busy.(s) <= start && sites - overlapping - 1 >= 2 then begin
          site_busy.(s) <- start + dur + 1_000_000;
          crash_windows := (start, start + dur) :: !crash_windows;
          emit start (Crash_site s);
          emit (start + dur) (Restart_site s)
        end
      end
    end
    else if kind < 32 then begin
      (* Partition phases.  Durations span both regimes: short splits
         that merely stall traffic, and splits long enough for the
         failure detectors to evict a side — exercising the
         primary-partition rule, the minority wedge, and the heal /
         rejoin path.  A quarter of the splits are one-way (asymmetric
         partitions), and long splits occasionally overlap a second,
         different split so more than one is in force at once. *)
      let start, dur =
        pick_window ~min_dur:250_000
          ~max_dur:(600_000 + int_of_float (intensity *. 3.4e6))
      in
      if !part_busy <= start then begin
        part_busy := start + dur + 300_000;
        let rec split tries =
          let left = List.filter (fun _ -> Rng.bool rng) (List.init sites Fun.id) in
          let right = List.filter (fun s -> not (List.mem s left)) (List.init sites Fun.id) in
          if (left = [] || right = []) && tries > 0 then split (tries - 1) else (left, right)
        in
        let left, right = split 8 in
        if left <> [] && right <> [] then begin
          let oneway = Rng.int rng 100 < 25 in
          emit start (if oneway then Partition_oneway (left, right) else Partition (left, right));
          emit (start + dur) (Heal_partition (left, right));
          if sites >= 4 && dur > 600_000 && Rng.int rng 100 < 30 then begin
            let left2, right2 = split 8 in
            if
              left2 <> [] && right2 <> []
              && List.sort compare left2 <> List.sort compare left
            then begin
              let s2 = start + (dur / 3) and d2 = dur / 2 in
              emit s2 (Partition (left2, right2));
              emit (s2 + d2) (Heal_partition (left2, right2))
            end
          end
        end
      end
    end
    else if kind < 44 then begin
      (* Uniform global loss window. *)
      let start, dur = pick_window ~min_dur:500_000 ~max_dur:3_000_000 in
      if !loss_busy <= start then begin
        loss_busy := start + dur + 200_000;
        emit start (Set_loss (frac rng 0.02 (0.02 +. (0.13 *. intensity))));
        emit (start + dur) (Set_loss 0.0)
      end
    end
    else begin
      let src, dst = pick_link () in
      let busy = Option.value ~default:0 (Hashtbl.find_opt link_busy (src, dst)) in
      let start, dur = pick_window ~min_dur:300_000 ~max_dur:2_000_000 in
      if busy <= start then begin
        Hashtbl.replace link_busy (src, dst) (start + dur + 200_000);
        let op =
          if kind < 58 then Link_loss { src; dst; p = frac rng 0.05 (0.05 +. (0.35 *. intensity)) }
          else if kind < 70 then
            Loss_burst
              {
                src;
                dst;
                burst =
                  {
                    Net.p_enter = frac rng 0.02 0.2;
                    p_exit = frac rng 0.2 0.5;
                    loss_good = 0.0;
                    loss_bad = frac rng 0.3 (0.3 +. (0.4 *. intensity));
                  };
              }
          else if kind < 82 then
            Degrade_link
              {
                src;
                dst;
                bw_factor = frac rng 2.0 8.0;
                extra_us = Rng.int_in rng 2_000 (2_000 + int_of_float (intensity *. 38_000.));
                jitter_us = Rng.int_in rng 0 20_000;
              }
          else if kind < 91 then
            Dup_window { src; dst; p = frac rng 0.05 (0.05 +. (0.25 *. intensity)) }
          else
            Reorder_window
              {
                src;
                dst;
                p = frac rng 0.05 (0.05 +. (0.25 *. intensity));
                span_us = Rng.int_in rng 5_000 40_000;
              }
        in
        emit start op;
        emit (start + dur) (Clear_link { src; dst })
      end
    end
  done;
  (* Safety net: whatever happened above, the tail of the run is clean. *)
  emit (active_end + horizon_us / 100) Heal;
  emit (active_end + horizon_us / 100) Clear_faults;
  List.stable_sort (fun a b -> compare a.at b.at) (List.rev !events)
