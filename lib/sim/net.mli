(** Network model.

    Reproduces the paper's testbed at the packet level: SUN-3
    workstations on a 10 Mbit shared Ethernet, with the link constants
    the paper reports in Figure 3 — 10 µs to traverse a link within a
    site, 16 ms to send an inter-site packet — and fragmentation of
    large messages into 4 KB packets (the cause of Figure 2's latency
    knee between 1 KB and 10 KB).

    Failure model (paper Sec 2.1): packets can be lost; sites can crash
    (everything in flight to/from them is dropped); the network can
    partition, in which case cross-partition packets are silently
    dropped until healed.  Several splits may be in force at once
    (overlapping partitions), and a split may be one-way (an asymmetric
    partition: only one direction is blocked).  The paper assumes
    partitions never happen; the runtime layered above survives them
    with a primary-partition membership rule instead of stalling.

    Beyond the paper's failure model, every {e directed} inter-site link
    can be independently degraded at runtime (the nemesis subsystem
    drives these): asymmetric extra loss, added latency and jitter,
    packet duplication, reordering detours, bursty loss following a
    two-state Gilbert–Elliott chain, and bandwidth degradation.  All
    fault randomness flows through the engine-derived seeded RNG, so a
    faulty run replays exactly from its seed. *)

type site = int

type config = {
  intra_site_us : int;      (** one-way latency within a site (paper: 10 µs). *)
  inter_site_us : int;      (** one-way inter-site packet latency (paper: 16 ms). *)
  bandwidth_bytes_per_sec : int;
      (** shared-medium capacity (paper: 10 Mbit ≈ 1.25 MB/s). *)
  per_packet_overhead_bytes : int;
      (** header bytes added to every packet on the wire. *)
  max_packet_bytes : int;   (** fragmentation threshold (paper: 4 KB). *)
  loss_probability : float; (** per-packet drop probability. *)
}

(** The paper's constants. *)
val default_config : config

(** Two-state Gilbert–Elliott bursty-loss model: per packet offered to
    the link the chain moves good→bad with probability [p_enter] and
    bad→good with probability [p_exit]; packets then drop with
    [loss_good] or [loss_bad] according to the current state. *)
type burst = {
  p_enter : float;
  p_exit : float;
  loss_good : float;
  loss_bad : float;
}

type t

(** [create engine config ~sites] builds a network of [sites] sites, all
    initially up. *)
val create : Engine.t -> config -> sites:int -> t

val config : t -> config
val n_sites : t -> int
val engine : t -> Engine.t

(** [set_tracer t tr] attaches a typed-event tracer: fault decisions
    (drops with their reason, duplications, reorder detours) emit
    [Net]-class events.  Free when the tracer is disabled. *)
val set_tracer : t -> Vsync_obs.Tracer.t -> unit

val tracer : t -> Vsync_obs.Tracer.t option

(** [send t ~src ~dst ~bytes deliver] transmits one {e packet} of
    [bytes] payload bytes from [src] to [dst] and calls [deliver] at the
    receiver-side arrival time — unless the packet is lost, a site is
    down, or the two sites are partitioned, in which case [deliver] is
    never called.  Fragmentation is the sender's job ({!fragments}
    helps); [bytes] beyond [max_packet_bytes] raises. *)
val send : t -> src:site -> dst:site -> bytes:int -> (unit -> unit) -> unit

(** [fragments t ~bytes] is the list of packet payload sizes a message
    of [bytes] bytes fragments into (always non-empty). *)
val fragments : t -> bytes:int -> int list

(** {1 Failures} *)

val site_up : t -> site -> bool

(** [crash_site t s] takes the site down: packets to or from it are
    dropped from now on (packets already in flight towards it are also
    discarded at arrival). *)
val crash_site : t -> site -> unit

(** [restart_site t s] brings the site back (a recovered site is a new
    incarnation; higher layers handle reintegration). *)
val restart_site : t -> site -> unit

(** [set_loss t p] changes the packet-loss probability mid-run (tests
    form groups losslessly, then turn loss on for the traffic under
    study). *)
val set_loss : t -> float -> unit

(** [partition t left right] adds a two-way split dropping packets
    between the two groups (a site absent from both lists communicates
    with everyone).  Splits accumulate: several may be active at once. *)
val partition : t -> site list -> site list -> unit

(** [partition_oneway t left right] adds an asymmetric split: packets
    from [left] to [right] are dropped, the reverse direction flows. *)
val partition_oneway : t -> site list -> site list -> unit

(** [heal t] removes every active split. *)
val heal : t -> unit

(** [heal_split t left right] removes the one split with exactly these
    site sets (either orientation), leaving other splits in force. *)
val heal_split : t -> site list -> site list -> unit

(** [partitioned t a b]: is a packet from [a] to [b] currently blocked
    by an active split?  Directional, to honour one-way splits. *)
val partitioned : t -> site -> site -> bool

(** {1 Per-link faults}

    Each setter degrades the {e directed} link [src → dst] only (the
    reverse direction is a separate link), composing with the global
    loss probability and with any partition.  Intra-site hops cannot be
    degraded ([src = dst] raises).  Probabilities outside [\[0,1\]]
    raise. *)

(** [set_link_loss t ~src ~dst p] adds asymmetric per-packet loss on
    the link (composes with the global probability:
    [1 - (1-global)(1-p)(1-burst)]). *)
val set_link_loss : t -> src:site -> dst:site -> float -> unit

(** [set_link_delay t ~src ~dst ~extra_us ~jitter_us] adds [extra_us]
    plus a uniform draw from [\[0, jitter_us\]] to every packet's
    propagation time.  Jitter alone can reorder packets. *)
val set_link_delay : t -> src:site -> dst:site -> extra_us:int -> jitter_us:int -> unit

(** [set_link_dup t ~src ~dst p] duplicates each surviving packet with
    probability [p]; the echo arrives 1–2000 µs after the original. *)
val set_link_dup : t -> src:site -> dst:site -> float -> unit

(** [set_link_reorder t ~src ~dst ~span_us p] sends each packet on a
    detour with probability [p], delaying it by a uniform draw from
    [\[1, span_us\]] (default 30 ms) so it arrives behind later
    packets. *)
val set_link_reorder : t -> src:site -> dst:site -> ?span_us:int -> float -> unit

(** [set_link_bandwidth_factor t ~src ~dst f] multiplies the sender's
    per-packet serialization time by [f] for packets on this link
    ([f > 1] degrades; [f] must be positive). *)
val set_link_bandwidth_factor : t -> src:site -> dst:site -> float -> unit

(** [set_link_burst t ~src ~dst b] installs a Gilbert–Elliott bursty
    loss chain on the link, starting in the good state. *)
val set_link_burst : t -> src:site -> dst:site -> burst -> unit

(** [clear_link t ~src ~dst] restores the link to pristine. *)
val clear_link : t -> src:site -> dst:site -> unit

(** [clear_links t] restores every link (global loss and any partition
    are untouched). *)
val clear_links : t -> unit

(** {1 Accounting} *)

(** [packets_sent t] / [bytes_sent t] / [packets_lost t] count totals
    since creation (inter-site only; intra-site hops are free, as in the
    paper's accounting). *)
val packets_sent : t -> int

val bytes_sent : t -> int
val packets_lost : t -> int

(** [packets_duplicated t] / [packets_reordered t] count fault
    injections performed by the per-link adversary. *)
val packets_duplicated : t -> int

val packets_reordered : t -> int

(** [counters t] exposes the raw counter set for harness snapshots. *)
val counters : t -> Vsync_util.Stats.Counter.t

(** [backend t] is the network's execution-backend view
    ({!Vsync_backend.Backend}): virtual-clock time and timers from the
    underlying engine, frame I/O through {!send} (so every fault model
    above applies), the engine root RNG.  The transport and runtime
    layers consume only this. *)
val backend : t -> Vsync_backend.Backend.t
