(* Thin compatibility shim over the typed observability layer
   ([Vsync_obs]): the historical string-category API keeps compiling,
   but every record now lands in the shared typed event stream as a
   [Note_event], next to the structured events the layers emit
   directly.  [obs] exposes the underlying tracer for typed use. *)

module Tracer = Vsync_obs.Tracer
module Event = Vsync_obs.Event

type record = { at : Engine.time; category : string; detail : string }

type t = { tracer : Tracer.t }

let default_capacity = 200_000

let create_clock ~now = { tracer = Tracer.create ~capacity:default_capacity ~now () }
let create engine = create_clock ~now:(fun () -> Engine.now engine)

let obs t = t.tracer
let set_enabled t b = Tracer.set_enabled t.tracer b
let enabled t = Tracer.enabled t.tracer

(* String notes carry no site; -1 marks "not site-specific". *)
let emit t ~category detail =
  if Tracer.wants t.tracer Event.Note then
    Tracer.emit t.tracer (Event.Note_event { site = -1; cat = category; text = detail })

(* The disabled branch used to run the format through the shared
   [Format.str_formatter], mutating global state (and leaking partial
   output into anyone else's use of it) on every disabled call.  A
   private sink formatter discards the arguments without touching
   anything shared. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let emitf t ~category fmt =
  if Tracer.wants t.tracer Event.Note then
    Format.kasprintf (fun detail -> emit t ~category detail) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

(* Read-back view: notes keep their category/text; typed events render
   under their class name, so trace dumps show the whole stream. *)
let to_record (r : Event.record) =
  match r.ev with
  | Event.Note_event { cat; text; _ } -> { at = r.at; category = cat; detail = text }
  | ev ->
    {
      at = r.at;
      category = Event.cls_name (Event.cls_of ev);
      detail = Format.asprintf "%a" Event.pp ev;
    }

let records t = List.map to_record (Tracer.records t.tracer)

let by_category t c = List.filter (fun r -> String.equal r.category c) (records t)

let clear t = Tracer.clear t.tracer

let pp_record ppf r =
  Format.fprintf ppf "[%a] %-12s %s" Engine.pp_time r.at r.category r.detail
