(** Event tracing (compatibility shim).

    Historically this was a standalone string logger; it is now a thin
    facade over the typed observability layer ({!Vsync_obs}).  String
    emissions become [Note_event]s in the shared stream, and [records]
    renders the whole stream — typed events included — in the legacy
    [record] shape for dumps and tests.  New instrumentation should
    emit typed events on [obs t] directly.

    Tracing is off by default and costs one branch when disabled. *)

type record = { at : Engine.time; category : string; detail : string }

type t

val create : Engine.t -> t

(** [create_clock ~now] builds a trace stamped by an arbitrary clock —
    how wall-clock worlds trace (timestamps are elapsed real µs). *)
val create_clock : now:(unit -> Engine.time) -> t

(** The underlying typed tracer; enable/disable state is shared. *)
val obs : t -> Vsync_obs.Tracer.t

(** [set_enabled t b] turns recording on or off (records are kept). *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool

(** [emit t ~category detail] appends a note record when enabled. *)
val emit : t -> category:string -> string -> unit

(** [emitf t ~category fmt ...] is [emit] with formatting, only
    evaluated when enabled. *)
val emitf : t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** [records t] returns records oldest first. *)
val records : t -> record list

(** [by_category t c] filters records with category [c]. *)
val by_category : t -> string -> record list

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
