module Rng = Vsync_util.Rng
module Heap = Vsync_util.Heap

type time = int

(* The handle shares the engine's live counter so [cancel] — which only
   sees the handle — can keep the count exact without a back-pointer to
   the whole engine. *)
type handle = { mutable cancelled : bool; live : int ref }

type event = { at : time; action : unit -> unit; h : handle }

type t = {
  mutable clock : time;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable fired : int;
  live : int ref; (* scheduled and not yet fired or cancelled — exact *)
  mutable tracer : Vsync_obs.Tracer.t option;
}

let create ?(seed = 0x5EEDL) () =
  {
    clock = 0;
    queue = Heap.create ~compare:(fun a b -> compare a.at b.at);
    root_rng = Rng.create seed;
    fired = 0;
    live = ref 0;
    tracer = None;
  }

let now t = t.clock
let rng t = t.root_rng
let set_tracer t tr = t.tracer <- Some tr

let schedule_at t at action =
  let at = if at < t.clock then t.clock else at in
  (match t.tracer with
  | Some tr when Vsync_obs.Tracer.wants tr Vsync_obs.Event.Engine ->
    Vsync_obs.Tracer.emit tr (Vsync_obs.Event.Sched { delay = at - t.clock })
  | Some _ | None -> ());
  let h = { cancelled = false; live = t.live } in
  Heap.push t.queue { at; action; h };
  incr t.live;
  h

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock + delay) action

let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    decr h.live
  end

(* When set, [pending] cross-checks the counter against an O(n) heap
   walk.  Off by default: the walk defeats the point of the counter. *)
let debug_pending = ref false

let pending t =
  let n = !(t.live) in
  if !debug_pending then begin
    let walked =
      List.length (List.filter (fun e -> not e.h.cancelled) (Heap.to_list t.queue))
    in
    assert (n = walked)
  end;
  n

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
    if not e.h.cancelled then begin
      (* Cancelled events already left the live count at [cancel]
         time; only a real pop of a live event decrements it.  Marking
         the handle here keeps a late [cancel] of a fired event from
         decrementing again. *)
      decr t.live;
      e.h.cancelled <- true;
      t.clock <- e.at;
      t.fired <- t.fired + 1;
      (match t.tracer with
      | Some tr when Vsync_obs.Tracer.wants tr Vsync_obs.Event.Engine ->
        Vsync_obs.Tracer.emit tr Vsync_obs.Event.Fire
      | Some _ | None -> ());
      e.action ()
    end;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    if stop < t.clock then invalid_arg "Engine.run: until is in the past";
    let continue = ref true in
    while !continue do
      match Heap.peek t.queue with
      | Some e when e.at <= stop -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    t.clock <- stop

let events_fired t = t.fired

let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000

let to_sec t = float_of_int t /. 1e6

let pp_time ppf t =
  if t >= 1_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fms" (float_of_int t /. 1e3)
  else Format.fprintf ppf "%dus" t
