(** Discrete-event simulation engine.

    A single-threaded event loop over a virtual clock measured in
    microseconds.  Events scheduled for the same instant fire in the
    order they were scheduled (the heap is stable), which — together
    with routing all randomness through the engine's {!Vsync_util.Rng} —
    makes every run bit-reproducible from its seed. *)

(** Virtual time, in microseconds since the start of the run. *)
type time = int

type t

(** Cancellable handle for a scheduled event. *)
type handle

(** [create ~seed ()] returns a fresh engine with clock at 0. *)
val create : ?seed:int64 -> unit -> t

(** [now t] is the current virtual time. *)
val now : t -> time

(** [rng t] is the engine's root generator; subsystems should
    {!Vsync_util.Rng.split} it once at construction. *)
val rng : t -> Vsync_util.Rng.t

(** [set_tracer t tr] attaches a typed-event tracer: every schedule and
    fire emits an [Engine]-class event on it.  The [Engine] class is
    masked off by default (see {!Vsync_obs.Tracer}), so attaching a
    tracer costs one branch per schedule until that class is opted
    into. *)
val set_tracer : t -> Vsync_obs.Tracer.t -> unit

(** [schedule t ~delay f] runs [f] at [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)
val schedule : t -> delay:time -> (unit -> unit) -> handle

(** [schedule_at t at f] runs [f] at absolute time [at] (clamped to now). *)
val schedule_at : t -> time -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing (idempotent; a fired event
    cannot be cancelled). *)
val cancel : handle -> unit

(** [pending t] is the number of undelivered (non-cancelled) events.
    O(1): the engine keeps an exact live count, decremented when an
    event fires or is first cancelled. *)
val pending : t -> int

(** When set, {!pending} cross-checks the live counter against an O(n)
    heap walk and asserts they agree.  For tests; off by default. *)
val debug_pending : bool ref

(** [step t] fires the next event; [false] when the queue is empty. *)
val step : t -> bool

(** [run t] fires events until the queue drains.
    [run ~until t] stops once the clock would pass [until] (the clock is
    then advanced to exactly [until]).
    @raise Invalid_argument if [until] is in the past. *)
val run : ?until:time -> t -> unit

(** [events_fired t] counts events executed so far (for diagnostics). *)
val events_fired : t -> int

(** {1 Time units} *)

val us : int -> time
val ms : int -> time
val sec : int -> time

(** [to_sec t] converts to seconds as a float. *)
val to_sec : time -> float

(** [pp_time] prints a time as e.g. ["12.345ms"]. *)
val pp_time : Format.formatter -> time -> unit
