(** Nemesis: declarative, deterministic fault injection.

    A {e plan} is a list of timed fault operations — site crashes and
    restarts, partitions, loss windows, per-link degradations — that
    {!install} compiles onto the simulation engine's timers.  Because
    the plan is data and every random draw (both in plan {e generation}
    and in the {!Net} faults the plan enables) flows through seeded
    RNGs, a faulty run replays exactly: print the plan, re-run the seed,
    get the same trace.

    Plans either come from {!random_plan} (seeded, with a tunable
    intensity knob) or are written by hand in tests. *)

type op =
  | Crash_site of int
  | Restart_site of int
  | Partition of int list * int list
      (** add a two-way split; splits accumulate (overlapping
          partitions are allowed). *)
  | Partition_oneway of int list * int list
      (** add an asymmetric split: left-to-right packets are dropped,
          the reverse direction flows. *)
  | Heal  (** remove every active split. *)
  | Heal_partition of int list * int list
      (** remove the one split with these site sets, leaving any
          overlapping splits in force. *)
  | Set_loss of float  (** uniform global loss probability. *)
  | Link_loss of { src : int; dst : int; p : float }
  | Loss_burst of { src : int; dst : int; burst : Net.burst }
      (** Gilbert–Elliott bursty loss on one directed link. *)
  | Degrade_link of { src : int; dst : int; bw_factor : float; extra_us : int; jitter_us : int }
  | Dup_window of { src : int; dst : int; p : float }
  | Reorder_window of { src : int; dst : int; p : float; span_us : int }
  | Clear_link of { src : int; dst : int }
  | Clear_faults  (** clear every link fault and reset global loss to 0. *)

(** One timed operation; [at] is an offset from the instant the plan is
    installed. *)
type event = { at : Engine.time; op : op }

type plan = event list

(** How site-level ops reach the system under test.  The default
    ({!net_actions}) only flips the network's notion of up/down; a full
    deployment passes closures that also crash/restart the runtime
    (e.g. [World.crash_site]). *)
type actions = { crash_site : int -> unit; restart_site : int -> unit }

val net_actions : Net.t -> actions

(** [apply_op net actions op] performs one operation immediately. *)
val apply_op : Net.t -> actions -> op -> unit

(** [install ?actions net plan] schedules every event of [plan] on the
    net's engine, relative to the current virtual time.
    @raise Invalid_argument on a negative event time. *)
val install : ?actions:actions -> Net.t -> plan -> unit

(** [random_plan ~seed ~sites ~horizon_us ~intensity ()] generates a
    reproducible plan of fault episodes over the first 85% of
    [horizon_us] (the tail is guaranteed clean: each episode is paired
    with its reversal, and a final {!Heal} + {!Clear_faults} acts as a
    safety net).  [intensity] in [\[0,1\]] scales both the number of
    episodes and their severity.  Sites in [protect] (default [[0]])
    are never crashed, keeping the group rooted.  Partition episodes
    span both regimes: splits short enough to merely stall traffic,
    and splits long enough that the failure detectors evict a side —
    driving the runtime's primary-partition rule, minority wedge and
    heal/rejoin path.  A fraction are one-way (asymmetric), and long
    splits may overlap a second simultaneous split.  Every split is
    paired with its own {!Heal_partition}.  Crashes never take the
    system below two live sites. *)
val random_plan :
  ?protect:int list ->
  seed:int64 ->
  sites:int ->
  horizon_us:int ->
  intensity:float ->
  unit ->
  plan

val pp_op : Format.formatter -> op -> unit
val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit
val plan_to_string : plan -> string
