(** Domain-local state.

    A thin veneer over [Domain.DLS] for module-level mutable state that
    must be {e per-domain} rather than truly global: each domain that
    touches the value gets its own instance, built lazily by the
    initializer on first access.

    This is how the historically-global singletons (the field-name
    interner, the encode-buffer pool, the toolkit instance registries)
    become safe under the domain-parallel harness ({!Vsync_parallel}):
    two simulations running in different domains each see a private
    copy, so there is no sharing, no locking, and no cross-run
    interference — exactly the isolation a single-domain process had by
    construction. *)

type 'a t

(** [make init] declares a domain-local slot.  [init] runs once per
    domain, on that domain's first {!get}. *)
val make : (unit -> 'a) -> 'a t

(** [get t] is the calling domain's instance. *)
val get : 'a t -> 'a
