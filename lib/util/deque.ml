(* Functional FIFO deque: [front] oldest-first, [back] newest-first.
   O(1) push_back and prepend, against the O(n) "xs @ [x]" append
   pattern it exists to replace. *)

type 'a t = { front : 'a list; back : 'a list }

let empty = { front = []; back = [] }
let is_empty d = d.front = [] && d.back = []
let push_back d x = { d with back = x :: d.back }

(* [prepend xs d]: [xs] (oldest-first) comes before everything in [d]. *)
let prepend xs d = { d with front = xs @ d.front }
let exists p d = List.exists p d.front || List.exists p d.back
let length d = List.length d.front + List.length d.back
let to_list d = d.front @ List.rev d.back
let of_list xs = { front = xs; back = [] }
