(** Cumulative sequence tracking: per-key watermark + sparse tail.

    Replaces an ever-growing "set of sequence numbers seen" with a
    bounded structure, in the style of cumulative acknowledgements: for
    each integer key (a sender site, a channel) keep a watermark [mark]
    meaning {e every sequence number at or below [mark] is covered},
    plus a sparse set of numbers above it (the out-of-order tail).

    Membership is an integer comparison for anything at or below the
    watermark, so the structure stays O(live tail) in space no matter
    how many sequence numbers pass through — provided the caller calls
    {!advance} when an external protocol (message stability, cumulative
    acks) guarantees that nothing at or below a given sequence number
    can legitimately reappear as new.

    Sequence numbers within one key need not be contiguous: the
    watermark only self-advances over runs actually added ({!add}
    compacts a dense prefix), never across gaps. *)

type t

val create : unit -> t

(** [mem t ~key ~seq] — was [seq] added for [key], or covered by a
    watermark advance? *)
val mem : t -> key:int -> seq:int -> bool

(** [add t ~key ~seq] records [seq].  No-op if already covered. *)
val add : t -> key:int -> seq:int -> unit

(** [advance t ~key ~upto] raises the watermark: every sequence number
    [<= upto] is now covered, and tail entries at or below it are
    discarded.  No-op if the watermark is already past [upto]. *)
val advance : t -> key:int -> upto:int -> unit

(** [mark t ~key] is the current watermark ([min_int] if the key was
    never touched). *)
val mark : t -> key:int -> int

(** [keys t] — number of distinct keys tracked (bounded by the number
    of senders, not by traffic). *)
val keys : t -> int

(** [tail_cardinal t] — total sparse-tail entries across all keys: the
    only component that can grow with traffic, and what stability-driven
    GC keeps bounded.  Gauge material. *)
val tail_cardinal : t -> int

val clear : t -> unit
