type 'a t = 'a Domain.DLS.key

let make init = Domain.DLS.new_key init
let get t = Domain.DLS.get t
