(* Cumulative sequence tracking: per-key watermark + sparse tail.

   [mem]/[add] are O(log tail) with the tail expected tiny: the tail
   only holds sequence numbers above the watermark, and the caller
   advances the watermark as soon as an external protocol (message
   stability, cumulative acks) guarantees that everything at or below
   it has been accounted for.  Because sequence numbers within one key
   need not be contiguous (a site-wide counter shared across groups
   leaves gaps), the watermark never advances on local contiguity
   guesses alone: only [add] over a dense prefix or an explicit
   [advance] moves it. *)

module Iset = Set.Make (Int)

type entry = { mutable mark : int; mutable tail : Iset.t }
type t = { tbl : (int, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 8 }

let entry t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e
  | None ->
    let e = { mark = min_int; tail = Iset.empty } in
    Hashtbl.replace t.tbl key e;
    e

let mem t ~key ~seq =
  match Hashtbl.find_opt t.tbl key with
  | None -> false
  | Some e -> seq <= e.mark || Iset.mem seq e.tail

(* Opportunistic compaction: absorb a contiguous run sitting right
   above the watermark.  Never skips a gap, so the invariant "every
   seq <= mark was added or covered by an advance" is preserved. *)
let compact e =
  while Iset.mem (e.mark + 1) e.tail do
    e.mark <- e.mark + 1;
    e.tail <- Iset.remove e.mark e.tail
  done

let add t ~key ~seq =
  let e = entry t key in
  if seq > e.mark then begin
    e.tail <- Iset.add seq e.tail;
    compact e
  end

let advance t ~key ~upto =
  let e = entry t key in
  if upto > e.mark then begin
    e.mark <- upto;
    let _below, _eq, above = Iset.split upto e.tail in
    e.tail <- above;
    compact e
  end

let mark t ~key =
  match Hashtbl.find_opt t.tbl key with None -> min_int | Some e -> e.mark

let keys t = Hashtbl.length t.tbl

let tail_cardinal t =
  Hashtbl.fold (fun _ e acc -> acc + Iset.cardinal e.tail) t.tbl 0

let clear t = Hashtbl.reset t.tbl
