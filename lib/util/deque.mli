(** Functional FIFO deque with O(1) append.

    A two-list queue ([front] oldest-first + [back] newest-first) for
    the event-queue pattern where producers append one element at a
    time ({!push_back}) and an occasional consumer takes the whole
    queue ({!to_list}) or pushes a batch back on the front
    ({!prepend}).  Replaces the quadratic [xs @ [x]] idiom. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

(** [push_back d x] appends [x] as the newest element.  O(1). *)
val push_back : 'a t -> 'a -> 'a t

(** [prepend xs d] puts [xs] (oldest-first) before everything in [d].
    O(|xs|). *)
val prepend : 'a list -> 'a t -> 'a t

val exists : ('a -> bool) -> 'a t -> bool
val length : 'a t -> int

(** [to_list d] is the queue oldest-first. *)
val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t
