(** The standard nemesis scenario: a fully-formed group with one member
    per site, periodic tagged multicast traffic (a seeded CBCAST /
    ABCAST / GBCAST mix), a fault plan running underneath, and the
    {!Oracle} watching everything.

    This is the shared harness behind the nemesis fuzz tests, the
    [fuzz-sweep] CLI, [vsim --nemesis] and the under-fault benchmark
    column.  Everything is derived from [seed], so a run is exactly
    reproducible and two identical invocations produce identical
    results. *)

type result = {
  plan : Vsync_sim.Nemesis.plan;  (** the plan that ran. *)
  violations : Oracle.violation list;  (** empty = verdict PASS. *)
  oracle : Oracle.t;  (** for latencies and the report. *)
  world : World.t;  (** for counters / post-mortem. *)
  sent : int;
  delivered : int;  (** total deliveries summed over members. *)
  elapsed_us : int;  (** virtual time from traffic start to check. *)
}

(** [run ~seed ()] forms a [sites]-member group, drives traffic for
    [horizon_us] of virtual time while the fault plan runs, lets the
    system settle for [settle_us], then checks the oracle.  The plan
    defaults to [Nemesis.random_plan ~seed ~intensity]; pass [?plan] to
    use a hand-written one (or an empty list for a clean baseline).

    The scenario runs with the typed protocol-event stream enabled
    (class mask [Proto] only), so the oracle's typed-stream checks see
    data on every run.  Pass [?trace_sink] (e.g.
    [Vsync_obs.Jsonl.sink_to_channel oc]) to receive every event as it
    is emitted; the mask then widens to net + transport + proto.

    Returns [Error msg] if the harness itself could not be assembled
    (e.g. a member's group join was refused) — setup failures surface
    as values rather than aborting the whole sweep.

    [?runtime_config] overrides every site's runtime configuration (the
    flow-control sweep A/Bs credit + adaptive-window configs against
    the default under identical seeds). *)
val run :
  ?sites:int ->
  ?horizon_us:int ->
  ?settle_us:int ->
  ?send_interval_us:int ->
  ?payload_bytes:int ->
  ?plan:Vsync_sim.Nemesis.plan ->
  ?intensity:float ->
  ?trace_sink:(Vsync_obs.Event.record -> unit) ->
  ?runtime_config:Runtime.config ->
  seed:int64 ->
  unit ->
  (result, string) Stdlib.result
