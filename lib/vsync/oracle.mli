(** The virtual-synchrony oracle: a reusable invariant checker.

    Tests, the fuzzer, [vsim --nemesis] and the benchmarks all need the
    same judgement — "did this run uphold virtual synchrony?".  The
    oracle centralizes it.  A harness creates one oracle per group,
    {!track}s the member processes, reports traffic through
    {!note_send} / {!note_delivery} (or lets {!bind_tap} do the
    delivery half), and finally calls {!check}.

    Messages are identified by a small integer carried in an agreed
    message field ([tag] by default); the harness must give every
    multicast a fresh tag.

    {!check} evaluates, over the recorded history:

    - {b final-view-agreement}: live tracked members of the newest view
      report identical current views.
    - {b view-consistency}: a view id names one membership everywhere.
    - {b no-duplicate-delivery}: exactly-once per receiver.
    - {b fifo-per-sender}: any one sender's messages arrive in send
      order at every receiver.
    - {b causal-order}: a multicast follows everything its sender had
      delivered when sending it (CBCAST's guarantee).
    - {b total-order}: ABCAST/GBCAST deliveries are mutually ordered
      identically at all receivers.
    - {b same-delivery-view} / {b delivery-in-sending-view}: a message
      is delivered in one view everywhere, never in a view older than
      the view it was sent in.
    - {b atomicity}: a message delivered in view [v] reaches every
      member of [v] that survived [v].
    - {b no-delivery-after-failure}: once a receiver observes a sender
      fail through a view change, nothing more arrives from it.
    - {b hygiene-quiescence}: at check time the per-site gauges
      ([pending_unstable], [pending_held_frames], [pending_sessions])
      have drained to zero (disable with [~hygiene:false] when checking
      mid-run).
    - {b no-split-brain}: a view id is installed with one membership at
      every site (typed event stream; vacuous when tracing is off).
    - {b primary-partition-progress}: sends from the majority side of a
      {!note_partition}ed split are delivered before quiescence.

    The oracle only records; {!check} is pure and can be called
    repeatedly.  All reporting is deterministic, so two identical
    seeded runs produce byte-identical reports. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message

type t

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** [create world ~gid] makes an oracle for one process group.
    [tag_field] is the message field holding the per-multicast tag. *)
val create : ?tag_field:string -> World.t -> gid:Addr.group_id -> t

(** [track t p] starts recording [p]'s view changes (via
    {!Runtime.pg_monitor}, so call once [p] is a member).
    Idempotent. *)
val track : t -> Runtime.proc -> unit

(** [retrack t p] refreshes the tracking of an already-tracked [p]
    after it rejoined the group (its previous copy — view monitor
    included — died with the eviction): re-registers the monitor and
    records the join view as an observation.  Tracks [p] afresh if it
    was never tracked.  Delivery history is kept, so exactly-once
    checking spans the eviction. *)
val retrack : t -> Runtime.proc -> unit

val tracked_procs : t -> Runtime.proc list

(** [note_partition t ~from_us ~until_us ~left ~right] vouches for one
    network split (absolute virtual times): symmetric, covering every
    site, alone in its window, no concurrent crashes.  {!check}'s
    primary-partition-progress invariant then requires every send made
    from the strict-majority side during the window to be delivered by
    check time.  Windows that do not meet the preconditions must not be
    noted (the invariant would report false positives). *)
val note_partition : t -> from_us:int -> until_us:int -> left:int list -> right:int list -> unit

(** [note_send t p ~mode ~tag] records that [p] multicast tag [tag].
    Call it immediately before the [bcast] so the sender's causal
    context (its delivered messages and current view) is captured.
    @raise Invalid_argument if [tag] was already registered. *)
val note_send : t -> Runtime.proc -> mode:Types.mode -> tag:int -> unit

(** [note_delivery t p msg] records a delivery at [p] (ignored when
    [msg] has no tag field or [p] is untracked). *)
val note_delivery : t -> Runtime.proc -> Message.t -> unit

(** [bind_tap t p entry k] tracks [p] and binds [entry] to a handler
    that records the delivery and then runs [k msg]. *)
val bind_tap : t -> Runtime.proc -> Vsync_msg.Entry.t -> (Message.t -> unit) -> unit

val n_sends : t -> int
val n_deliveries : t -> int

(** [latencies_us t] lists the send-to-delivery latency of every
    recorded delivery (one entry per receiver per message), in
    deterministic order. *)
val latencies_us : t -> int list

(** [check t] evaluates every invariant and returns the violations
    (empty means the run upheld virtual synchrony). *)
val check : ?hygiene:bool -> t -> violation list

(** [report t violations] renders a deterministic human-readable
    verdict. *)
val report : t -> violation list -> string

(** [pp_history ppf t] prints every tracked process's interleaved
    view/delivery log — the raw material behind a violation, for
    post-mortems. *)
val pp_history : Format.formatter -> t -> unit

(** [history_digest t] is an MD5 hex digest of {!pp_history}'s output:
    a compact fingerprint of the full delivery history, equal exactly
    when two runs delivered the same messages in the same interleaved
    order.  What the regression suite locks and what the parallel
    harness compares against sequential runs. *)
val history_digest : t -> string
