open Types
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Backend = Vsync_backend.Backend
module Trace = Vsync_sim.Trace
module Sched = Vsync_tasks.Sched
module Ivar = Vsync_tasks.Ivar
module Condition = Vsync_tasks.Condition
module Endpoint = Vsync_transport.Endpoint
module Stats = Vsync_util.Stats
module Deque = Vsync_util.Deque
module Obs_tracer = Vsync_obs.Tracer
module Obs_event = Vsync_obs.Event
module Metrics = Vsync_obs.Metrics
module Int_set = Set.Make (Int)

(* What happens to multicasts originated inside a minority-wedged
   component: [Buffer] queues them like any wedge does (they replay if
   the component recovers its primacy, and are dropped with the state
   on eviction); [Reject] fails them immediately with the typed
   [Partitioned] exception. *)
type minority_policy = Buffer | Reject

type config = {
  cpu_send_us : int;
  cpu_recv_us : int;
  cpu_us_per_kb : int;
  cpu_us_per_extra_packet : int;
  ab_window : int;
  ab_window_min : int;
  ab_adaptive : bool;
  ab_queue_limit : int;
  stability_gc : bool;
  clock_offset_us : int;
  minority_policy : minority_policy;
  endpoint : Endpoint.config;
}

let default_config =
  {
    cpu_send_us = 6_000;
    cpu_recv_us = 5_000;
    cpu_us_per_kb = 700;
    cpu_us_per_extra_packet = 8_000;
    ab_window = 16;
    ab_window_min = 2;
    ab_adaptive = false;
    ab_queue_limit = 0;
    stability_gc = true;
    clock_offset_us = 0;
    minority_policy = Buffer;
    endpoint = Endpoint.default_config;
  }

exception Partitioned of Addr.group_id

(* System fields riding on application messages (in addition to the
   $sender/$session/$entry fields managed by Vsync_msg.Message). *)
let f_want = "$want"
let f_mode = "$mode"
let f_is_reply = "$is_reply"
let f_null = "$null"
let f_pg_kill = "$pg_kill"

let mode_to_int = function Cbcast -> 0 | Abcast -> 1 | Gbcast -> 2

let mode_of_int = function 0 -> Some Cbcast | 1 -> Some Abcast | 2 -> Some Gbcast | _ -> None

let want_to_int = function No_reply -> 0 | Wait_all -> -1 | Wait_n n -> n
let want_of_int = function 0 -> No_reply | -1 -> Wait_all | n -> Wait_n n

type outcome =
  | Replies of (Addr.proc * Message.t) list
  | All_failed

type proc = {
  puid : int; (* globally unique across all runtimes and simulations *)
  addr : Addr.proc;
  pname : string;
  rt : t;
  sched : Sched.t;
  entries : (Entry.t, Message.t -> unit) Hashtbl.t;
  mutable filters : (Message.t -> bool) list;
  mutable palive : bool;
  mutable memberships : int list; (* gids *)
  mutable outstanding : Uid_set.t;
  mutable pending_inits : int;
      (* multicasts accepted by bcast but not yet through the CPU queue:
         flush must wait for these too *)
  flushers : Condition.t;
}

and group = {
  gid : Addr.group_id;
  gname : string;
  mutable view : View.t;
  mutable causal : Message.t Causal.t;
  mutable total : Message.t Total.t;
  mutable store : Proto.stored Uid_map.t;
  mutable wedge : wedge_state option;
  mutable blocked_sends : (proc option * mode * Message.t) list; (* newest first *)
  ab_queue : (proc option * Message.t) Queue.t;
      (* ABCASTs accepted for origination but waiting for a pipeline
         slot: at most [ab_window] phase-1 rounds originated here may be
         outstanding at once *)
  mutable ab_inflight : int;
  mutable ab_cwnd : int;
      (* AIMD window when [ab_adaptive]: additively grown by clean round
         completions up to the [ab_window] ceiling, halved on transport
         congestion (an RTO toward a member site), floored at
         [ab_window_min] *)
  mutable ab_grow : int; (* clean commits accumulated toward the next +1 *)
  mutable ab_cooldown : bool;
      (* a shrink already happened since the last clean commit: further
         RTOs in the same loss burst must not multiplicatively collapse
         the window (one halving per congestion episode, as in TCP) *)
  mutable g_monitors : (proc * (View.t -> View.change list -> unit)) list;
  mutable join_validator : (proc * (Addr.proc -> Message.t -> bool)) option;
  mutable suspects : Int_set.t;
  mutable failed_procs : Addr.proc list;
      (* processes a past view change removed as FAILED.  Failures are
         clean: nothing further from them may be delivered — a falsely
         suspected process is still alive and will keep multicasting
         (directly or through the client relay), so origination rejects
         its messages until a rejoin clears it *)
  mutable pending_events : pending_event Deque.t; (* oldest first *)
  mutable gb_outstanding : (uid * Message.t) list;
      (* GBCASTs this site originated that no installed view has
         delivered yet (newest first).  The origin keeps responsibility:
         a [Gb_req] routed to a coordinator that a partition (or its
         eviction) swallowed would otherwise vanish — the request lives
         only in that coordinator's queue.  Each install prunes the
         delivered ones and re-routes the rest at the new view's
         coordinator; [enqueue_event] dedups re-routed copies by uid. *)
  mutable change : change_state option;
  mutable last_attempt : int;
  mutable last_commit : Proto.frame option;
  mutable minority : minority_state option;
      (* Some when a view-change attempt found this component below
         quorum (the primary-partition rule): the group is wedged with
         no change in flight, origination is blocked or rejected per
         [config.minority_policy], and a probe loop watches for the
         heal — either the primary's newer view (eviction: discard
         state, rejoin fresh) or the suspicion clearing (false alarm:
         resume) *)
}

and wedge_state = { w_attempt : int; w_coord : int; w_epoch : int }

and minority_state = {
  m_attempt : int;
  mutable m_batch : pending_event list;
      (* the membership batch whose application would have lost quorum;
         re-played through [start_change] if suspicion clears *)
  mutable m_rounds : int; (* probe rounds sent so far *)
}

and pending_event =
  | Ev_join of Addr.proc * Message.t
  | Ev_leave of Addr.proc
  | Ev_fail of Addr.proc * bool (* certain: reported by the victim's own site *)
  | Ev_gb of uid * Message.t

and change_state = {
  c_attempt : int;
  c_batch : pending_event list;
  c_sites : int list; (* wedge set, incl. self *)
  c_acks : (int, ack_info) Hashtbl.t; (* by site; coordinator hot path *)
  mutable c_fetch_wait : int list;
  mutable c_fetched : Proto.stored list;
  mutable c_committed : bool;
      (* the commit is on the wire; the change record stays until our
         own copy is applied, so no new change starts against the
         retiring view *)
}

and ack_info = {
  a_cb_known : Uid_set.t;
  a_ab_uids : Uid_set.t; (* uids of [a_ab_report], for membership tests *)
  a_ab_report : Proto.ab_report list;
  a_ab_counter : int;
  a_already : Proto.frame option;
}

and session_state = {
  sess_id : int;
  swant : want;
  mutable replies : (Addr.proc * Message.t) list; (* newest first *)
  mutable nulls : Addr.proc list;
  mutable sfailed : Addr.proc list;
  mutable responders : Addr.proc list option;
  mutable relay_site : int option;
  done_ivar : outcome Ivar.t;
  mutable mon_sites : int list;
}

and unstable = {
  mutable remaining : int list;
  u_owner : proc option;
  u_group : Addr.group_id;
  u_dests : int list;
}

and ab_collect = {
  ac_group : Addr.group_id;
  mutable ac_expect : int list; (* sites still to propose *)
  mutable ac_max : prio;
}

and t = {
  fab : fabric;
  my_site : int;
  cfg : config;
  bk : Backend.t;
  tracer : Trace.t;
  mutable ep : Proto.frame Endpoint.t option; (* set right after create *)
  ctrs : Stats.Counter.t;
  metrics : Metrics.t;
  mutable running : bool;
  mutable next_proc_idx : int;
  mutable next_useq : int;
  mutable next_session : int;
  mutable next_qid : int;
  procs : (int, proc) Hashtbl.t;
  groups : (int, group) Hashtbl.t;
  held : (int, (int * Proto.frame) list) Hashtbl.t;
      (* gid -> future-view (src, frame), newest first *)
  dir : (string, Addr.group_id * int list) Hashtbl.t;
  dir_by_gid : (int, string) Hashtbl.t;
      (* reverse of [dir]: gid -> registered name, so per-group purges
         (teardown, stale-contact refusals) are keyed lookups instead of
         whole-directory scans — a site hosting hundreds of small groups
         must not pay O(directory) per group event *)
  contacts : (int, int list) Hashtbl.t;
  sessions : (int, session_state) Hashtbl.t;
  obligations : (int, (int * Addr.proc) list) Hashtbl.t; (* responder idx -> obligations *)
  dir_queries : (int, int ref * (Addr.group_id * int list) option Ivar.t) Hashtbl.t;
  unstables : (uid, unstable) Hashtbl.t;
  unstable_by_group : (int, Uid_set.t ref) Hashtbl.t;
      (* per-group index over [unstables]: view install and teardown
         settle one group's records without folding the global table *)
  ab_collects : (uid, ab_collect) Hashtbl.t;
  collects_by_group : (int, Uid_set.t ref) Hashtbl.t; (* same, for [ab_collects] *)
  join_waiters : (int * int, (unit, string) result Ivar.t) Hashtbl.t; (* gid, proc idx *)
  join_pending : (int, int) Hashtbl.t;
      (* per-gid waiter count: [handle_group_frame] asks "any local join
         in flight for this group?" per unknown-group frame *)
  leave_waiters : (int * int, unit Ivar.t) Hashtbl.t;
  mutable site_watchers : ([ `Down of int | `Up of int ] -> unit) list;
  mon_refs : (int, int) Hashtbl.t;
  admission : Condition.t;
      (* originators blocked in [bcast_wait] sleep here; woken whenever
         transport credit is refunded or the ABCAST pipeline dispatches
         queued rounds *)
  mutable cpu_free : int; (* backend µs *)
  mutable cpu_busy : int;
}

and fabric = {
  fbk : Backend.t;
  ep_fabric : Proto.frame Endpoint.fabric;
}

let make_fabric bk = { fbk = bk; ep_fabric = Endpoint.fabric bk }
let fabric_backend f = f.fbk

let site t = t.my_site
let backend t = t.bk
let alive t = t.running
let counters t = t.ctrs
let trace t = t.tracer
let metrics t = t.metrics
let cpu_busy_us t = t.cpu_busy

(* Emit one protocol-class typed event.  [mk] is forced only when some
   listener wants the class.  Without flambda the thunk itself is a
   heap closure, so per-message hot paths (originate, deliver, ack,
   stabilize) inline the guard instead; this helper serves the cold
   paths (view changes, GC, errors) where a closure per call is
   irrelevant. *)
let trace_proto t mk =
  let tr = Trace.obs t.tracer in
  if Obs_tracer.wants tr Obs_event.Proto then Obs_tracer.emit tr (mk ())

(* Same, for the partition-membership event class. *)
let trace_partition t mk =
  let tr = Trace.obs t.tracer in
  if Obs_tracer.wants tr Obs_event.Partition then Obs_tracer.emit tr (mk ())

(* Same, for free-form notes (typed error events). *)
let trace_note t mk =
  let tr = Trace.obs t.tracer in
  if Obs_tracer.wants tr Obs_event.Note then Obs_tracer.emit tr (mk ())

(* The site's local wall clock: true simulation time plus this site's
   (unknown to it) offset.  The real-time tool's clock synchronization
   estimates and cancels the offsets. *)
let local_time_us t = Backend.now t.bk + t.cfg.clock_offset_us

let uptime_utilization t =
  let now = Backend.now t.bk in
  if now = 0 then 0.0 else float_of_int t.cpu_busy /. float_of_int now

let gi = Addr.group_to_int

(* --- per-group secondary indexes ---

   [unstables] and [ab_collects] are global uid-keyed tables; these
   helpers maintain gid-keyed shadow sets so group-scoped sweeps touch
   only their own records. *)

let grp_index_add tbl gid_int uid =
  let r =
    match Hashtbl.find_opt tbl gid_int with
    | Some r -> r
    | None ->
      let r = ref Uid_set.empty in
      Hashtbl.replace tbl gid_int r;
      r
  in
  r := Uid_set.add uid !r

let grp_index_remove tbl gid_int uid =
  match Hashtbl.find_opt tbl gid_int with
  | Some r ->
    r := Uid_set.remove uid !r;
    if Uid_set.is_empty !r then Hashtbl.remove tbl gid_int
  | None -> ()

(* [grp_index_take tbl gid] empties the group's set and returns its
   elements. *)
let grp_index_take tbl gid_int =
  match Hashtbl.find_opt tbl gid_int with
  | Some r ->
    Hashtbl.remove tbl gid_int;
    Uid_set.elements !r
  | None -> []

(* --- join-waiter registry (count shadowed per gid) --- *)

let jw_add t ~gid_int ~idx iv =
  Hashtbl.replace t.join_waiters (gid_int, idx) iv;
  Hashtbl.replace t.join_pending gid_int
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.join_pending gid_int))

let jw_take t ~gid_int ~idx =
  match Hashtbl.find_opt t.join_waiters (gid_int, idx) with
  | Some iv ->
    Hashtbl.remove t.join_waiters (gid_int, idx);
    (match Hashtbl.find_opt t.join_pending gid_int with
    | Some n when n > 1 -> Hashtbl.replace t.join_pending gid_int (n - 1)
    | Some _ -> Hashtbl.remove t.join_pending gid_int
    | None -> ());
    Some iv
  | None -> None

let jw_any t gid_int = Hashtbl.mem t.join_pending gid_int

(* --- name directory, with its gid reverse index --- *)

let dir_set t name (gid, sites) =
  Hashtbl.replace t.dir name (gid, sites);
  Hashtbl.replace t.dir_by_gid (gi gid) name

let dir_remove t name =
  match Hashtbl.find_opt t.dir name with
  | Some (gid, _) ->
    Hashtbl.remove t.dir name;
    (match Hashtbl.find_opt t.dir_by_gid (gi gid) with
    | Some n when String.equal n name -> Hashtbl.remove t.dir_by_gid (gi gid)
    | Some _ | None -> ())
  | None -> ()

(* [dir_drop_site t ~gid_int ~site] removes [site] from the hints of
   the (single) name registered for [gid_int], dropping the entry when
   no hint remains — the keyed replacement for scanning the whole
   directory. *)
let dir_drop_site t ~gid_int ~site =
  match Hashtbl.find_opt t.dir_by_gid gid_int with
  | None -> ()
  | Some name -> (
    match Hashtbl.find_opt t.dir name with
    | Some (gid', sites) when gi gid' = gid_int -> (
      match List.filter (( <> ) site) sites with
      | [] -> dir_remove t name
      | remaining -> Hashtbl.replace t.dir name (gid', remaining))
    | Some _ | None -> ())

let endpoint t =
  match t.ep with Some e -> e | None -> invalid_arg "Runtime: endpoint not wired"

(* Transport-level wire accounting, for the wire-efficiency bench. *)
let transport_stats t =
  let ep = endpoint t in
  [
    ("data_frames", Endpoint.frames_sent ep);
    ("ack_frames", Endpoint.acks_sent ep);
    ("packets", Endpoint.packets_sent ep);
    ("retransmits", Endpoint.retransmits ep);
    ("channel_failures", Endpoint.channel_failures ep);
    ("inflight", Endpoint.inflight ep);
    ("recv_pending", Endpoint.recv_pending ep);
  ]

(* --- CPU model: one processor per site, FIFO service --- *)

(* Per-operation CPU cost: a fixed protocol cost, a copy cost
   proportional to the bytes handled (1987 kernels copied buffers
   several times), and a per-packet cost for every 4 KB fragment beyond
   the first — the paper: "the sharp rise in latency between message
   sizes of 1kbytes and 10kbytes occurs because large inter-site
   messages are fragmented into 4kbyte packets". *)
let cpu_cost t base bytes =
  let max_packet = Backend.max_packet_bytes t.fab.fbk in
  let extra_packets = if bytes <= max_packet then 0 else ((bytes - 1) / max_packet) in
  base + (bytes * t.cfg.cpu_us_per_kb / 1024) + (extra_packets * t.cfg.cpu_us_per_extra_packet)

let on_cpu t cost k =
  let now = Backend.now t.bk in
  let start = if t.cpu_free > now then t.cpu_free else now in
  let finish = start + cost in
  t.cpu_free <- finish;
  t.cpu_busy <- t.cpu_busy + cost;
  ignore (Backend.schedule_at t.bk finish (fun () -> if t.running then k ()))

(* Frames that are "about" one multicast — the per-uid timeline raw
   material.  Control frames without a uid (directory, membership,
   flush plumbing) stay visible through the note stream and the
   transport packet events. *)
let frame_uid_kind = function
  | Proto.Cb_data { uid; _ } -> Some ("cb_data", uid)
  | Proto.Ab_data { uid; _ } -> Some ("ab_data", uid)
  | Proto.Ab_prio { uid; _ } -> Some ("ab_prio", uid)
  | Proto.Ab_commit { uid; _ } -> Some ("ab_commit", uid)
  | Proto.Deliver_ack { uid; _ } -> Some ("deliver_ack", uid)
  | Proto.Stable { uid; _ } -> Some ("stable", uid)
  | _ -> None

(* Frame_tx/Frame_rx, guarded before [frame_uid_kind] so the disabled
   path allocates nothing. *)
let emit_frame_event t ~peer ~rx frame =
  let tr = Trace.obs t.tracer in
  if Obs_tracer.wants tr Obs_event.Proto then
    match frame_uid_kind frame with
    | Some (kind, u) ->
      Obs_tracer.emit tr
        (if rx then
           Obs_event.Frame_rx
             { site = t.my_site; src = peer; kind; usite = u.usite; useq = u.useq }
         else
           Obs_event.Frame_tx
             { site = t.my_site; dst = peer; kind; usite = u.usite; useq = u.useq })
    | None -> ()

let send_frame t ~dst frame =
  if t.running then begin
    if Trace.enabled t.tracer then
      Trace.emitf t.tracer ~category:"frame" "s%d->s%d %a" t.my_site dst Proto.pp frame;
    emit_frame_event t ~peer:dst ~rx:false frame;
    Endpoint.send (endpoint t) ~dst frame
  end

let fresh_uid t =
  let u = { usite = t.my_site; useq = t.next_useq } in
  t.next_useq <- t.next_useq + 1;
  u

let fresh_session t =
  let s = t.next_session in
  t.next_session <- s + 1;
  s

(* --- refcounted failure-detector subscriptions --- *)

let mon_acquire t s =
  if s <> t.my_site && t.running then begin
    let n = Option.value ~default:0 (Hashtbl.find_opt t.mon_refs s) in
    Hashtbl.replace t.mon_refs s (n + 1);
    if n = 0 then Endpoint.monitor (endpoint t) ~site:s
  end

let mon_release t s =
  if s <> t.my_site then
    match Hashtbl.find_opt t.mon_refs s with
    | None -> ()
    | Some n when n <= 1 ->
      Hashtbl.remove t.mon_refs s;
      if t.running then Endpoint.unmonitor (endpoint t) ~site:s
    | Some n -> Hashtbl.replace t.mon_refs s (n - 1)

(* --- processes: basics --- *)

(* Per-domain: process uids need only be unique within one world, and
   worlds never span domains (the parallel harness runs one world per
   domain), so domain-local counters keep concurrent simulations from
   racing — and from perturbing each other's uids. *)
let next_puid_key = Vsync_util.Dls.make (fun () -> ref 0)
let next_puid () = Vsync_util.Dls.get next_puid_key

let proc_addr p = p.addr
let proc_uid p = p.puid
let proc_name p = p.pname
let proc_alive p = p.palive && p.rt.running
let runtime_of p = p.rt

let spawn_proc t ?name () =
  if not t.running then invalid_arg "Runtime.spawn_proc: site is down";
  let idx = t.next_proc_idx in
  t.next_proc_idx <- idx + 1;
  let addr = Addr.proc ~site:t.my_site ~idx ~incarnation:(Endpoint.epoch (endpoint t)) in
  let pname = match name with Some n -> n | None -> Printf.sprintf "p%d.%d" t.my_site idx in
  let next_puid = next_puid () in
  incr next_puid;
  let p =
    {
      puid = !next_puid;
      addr;
      pname;
      rt = t;
      sched = Sched.create ~name:pname ();
      entries = Hashtbl.create 8;
      filters = [];
      palive = true;
      memberships = [];
      outstanding = Uid_set.empty;
      pending_inits = 0;
      flushers = Condition.create ();
    }
  in
  Hashtbl.replace t.procs idx p;
  p

let spawn_task p f = if proc_alive p then Sched.spawn p.sched f

let sleep p us =
  if us < 0 then invalid_arg "Runtime.sleep: negative duration";
  Sched.suspend (fun resume -> ignore (Backend.schedule p.rt.bk ~delay:us (fun () -> resume ())))

let bind p entry handler =
  if entry < 0 || entry > 255 then invalid_arg "Runtime.bind: bad entry";
  Hashtbl.replace p.entries entry handler

(* Filters are stored newest-first (O(1) install); dispatch applies
   them oldest-first via [filters_pass]. *)
let add_filter p f = p.filters <- f :: p.filters

(* Oldest filter first — side-effectful filters (state transfer
   buffering) rely on installation order — with short-circuit on the
   first rejection, like the [List.for_all] over the append-ordered
   list this replaces. *)
let rec filters_pass rev_filters body =
  match rev_filters with
  | [] -> true
  | f :: older -> filters_pass older body && f body

let find_proc t (a : Addr.proc) =
  match Hashtbl.find_opt t.procs a.Addr.idx with
  | Some p when Addr.equal_proc p.addr a && p.palive -> Some p
  | Some _ | None -> None

let local_members t g = View.members_at_site g.view t.my_site

let group_of t gid = Hashtbl.find_opt t.groups (gi gid)

let remote_member_sites t g =
  List.filter (fun s -> s <> t.my_site) (View.sites g.view)

(* --- adaptive ABCAST window (AIMD) --- *)

(* The live origination window: static [ab_window] unless [ab_adaptive],
   in which case the per-group AIMD estimate (the static value is the
   ceiling, [ab_window_min] the floor).  [ab_window <= 0] stays
   ungated. *)
let current_ab_window t g =
  if t.cfg.ab_window <= 0 then max_int
  else if t.cfg.ab_adaptive then max 1 g.ab_cwnd
  else t.cfg.ab_window

(* Additive increase: one clean round completion per current-window's
   worth of commits grows the window by one, up to the static ceiling.
   Any completion also ends the congestion cooldown — the next RTO is a
   fresh episode. *)
let aimd_on_commit t g =
  g.ab_cooldown <- false;
  if t.cfg.ab_adaptive && t.cfg.ab_window > 0 && g.ab_cwnd < t.cfg.ab_window then begin
    g.ab_grow <- g.ab_grow + 1;
    if g.ab_grow >= g.ab_cwnd then begin
      g.ab_grow <- 0;
      g.ab_cwnd <- min t.cfg.ab_window (g.ab_cwnd + 1)
    end
  end

(* Multiplicative decrease, driven by the transport's congestion signal
   (an RTO fired toward [s]): halve the window of every group whose
   fan-out includes [s].  [ab_cooldown] limits the shrink to one halving
   per loss episode — a retransmission burst fires many RTOs for the
   same underlying congestion. *)
let on_transport_congestion t s =
  if t.cfg.ab_adaptive && t.cfg.ab_window > 0 then
    Hashtbl.iter
      (fun _ g ->
        if (not g.ab_cooldown) && s <> t.my_site && List.mem s (View.sites g.view) then begin
          g.ab_cwnd <- max (max 1 t.cfg.ab_window_min) (g.ab_cwnd / 2);
          g.ab_grow <- 0;
          g.ab_cooldown <- true
        end)
      t.groups

let remember_contacts t gid sites =
  Hashtbl.replace t.contacts (gi gid) sites

(* Acting coordinator: the site of the oldest member whose site we do
   not currently suspect. *)
let acting_coord_site g =
  let rec loop = function
    | [] -> None
    | (m : Addr.proc) :: rest ->
      if Int_set.mem m.Addr.site g.suspects then loop rest else Some m.Addr.site
  in
  loop g.view.View.members

let i_am_coord t g = acting_coord_site g = Some t.my_site

(* --- wedge-ack reconciliation ---

   What the flush coordinator decides from a complete set of wedge
   acknowledgements.  Shared by [proceed_with_acks] (which fetches the
   missing bodies) and [build_commit] (which re-derives the decisions
   when assembling the commit): membership tests run against the
   [Uid_set]s carried in [ack_info], where this logic historically did
   [List.mem] over per-site uid lists — O(sites · uids²) on a large
   flush. *)

type ack_resolution = {
  r_missing_cb : uid list; (* CBCASTs some wedged site has not received *)
  r_ab_finalize : (uid * prio) list; (* final priorities, sorted by uid *)
  r_final : (uid, prio) Hashtbl.t; (* same, keyed for per-uid lookups *)
  r_ab_drop : uid list; (* uncommitted ABCASTs from dead originators *)
  r_ab_missing : uid list; (* finalized ABCASTs some site lacks *)
}

let resolve_acks ~gid ~view_id (c : change_state) =
  (* Every lookup here trusts the invariant that acks arrived from
     exactly [c_sites]; when that breaks (a protocol bug), fail with the
     flush's full coordinates rather than a bare [Not_found]. *)
  let info_of s =
    match Hashtbl.find_opt c.c_acks s with
    | Some a -> a
    | None ->
      invalid_arg
        (Printf.sprintf
           "Runtime.resolve_acks: no wedge ack from site %d (group g%d view %d attempt %d; \
            acks from [%s])"
           s gid view_id c.c_attempt
           (String.concat " "
              (Hashtbl.fold (fun s _ acc -> string_of_int s :: acc) c.c_acks [])))
  in
  let union =
    Hashtbl.fold (fun _ a acc -> Uid_set.union acc a.a_cb_known) c.c_acks Uid_set.empty
  in
  let missing_cb =
    Uid_set.filter
      (fun u -> List.exists (fun s -> not (Uid_set.mem u (info_of s).a_cb_known)) c.c_sites)
      union
  in
  let ab_all : (uid, Proto.ab_report list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ a ->
      List.iter
        (fun (r : Proto.ab_report) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt ab_all r.Proto.ab_uid) in
          Hashtbl.replace ab_all r.Proto.ab_uid (r :: cur))
        a.a_ab_report)
    c.c_acks;
  let floor = Hashtbl.fold (fun _ a acc -> max acc a.a_ab_counter) c.c_acks 0 in
  let ab_uids = Hashtbl.fold (fun u _ acc -> u :: acc) ab_all [] |> List.sort uid_compare in
  let site_set = Int_set.of_list c.c_sites in
  let next_final = ref floor in
  let ab_finalize, ab_drop =
    List.fold_left
      (fun (fins, drops) u ->
        let reports =
          match Hashtbl.find_opt ab_all u with
          | Some rs -> rs
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Runtime.resolve_acks: no ab report for uid %d.%d (group g%d view %d attempt \
                  %d)"
                 u.usite u.useq gid view_id c.c_attempt)
        in
        match List.find_opt (fun r -> r.Proto.ab_committed) reports with
        | Some r -> ((u, r.Proto.ab_prio) :: fins, drops)
        | None ->
          if Int_set.mem u.usite site_set then begin
            (* Originator is live: finalize above every site's counter. *)
            incr next_final;
            ((u, (!next_final, u.usite)) :: fins, drops)
          end
          else (fins, u :: drops))
      ([], []) ab_uids
  in
  let ab_finalize = List.rev ab_finalize and ab_drop = List.rev ab_drop in
  let ab_missing =
    List.filter
      (fun (u, _) ->
        List.exists (fun s -> not (Uid_set.mem u (info_of s).a_ab_uids)) c.c_sites)
      ab_finalize
    |> List.map fst
  in
  let final_tbl = Hashtbl.create (List.length ab_finalize) in
  List.iter (fun (u, p) -> Hashtbl.replace final_tbl u p) ab_finalize;
  {
    r_missing_cb = Uid_set.elements missing_cb;
    r_ab_finalize = ab_finalize;
    r_final = final_tbl;
    r_ab_drop = ab_drop;
    r_ab_missing = ab_missing;
  }

(* Origin-site self-delivery happens outside [drain_group] (the
   primitive looks instantaneous to the sender); give it the same
   [Deliver] event, but only when the site actually hosts members. *)
let emit_local_deliver t g uid =
  let tr = Trace.obs t.tracer in
  if Obs_tracer.wants tr Obs_event.Proto && local_members t g <> [] then
    Obs_tracer.emit tr
      (Obs_event.Deliver { site = t.my_site; group = gi g.gid; usite = uid.usite; useq = uid.useq })

(* ==================================================================
   The protocol core: one mutually recursive cluster.
   ================================================================== *)

let rec kill_proc p =
  let t = p.rt in
  if p.palive then begin
    p.palive <- false;
    Sched.kill p.sched;
    Hashtbl.remove t.procs p.addr.Addr.idx;
    if t.running then begin
      Trace.emitf t.tracer ~category:"proc" "killed %a" Addr.pp_proc p.addr;
      (* The site monitor detects a local crash immediately (Sec 2.1):
         fail outstanding reply obligations and report the death to
         every group the process belonged to. *)
      fail_obligations_of t p;
      List.iter
        (fun gid_int ->
          match Hashtbl.find_opt t.groups gid_int with
          | None -> ()
          | Some g ->
            if View.is_member g.view p.addr then
              (* The site monitor saw the crash directly: this death is
                 [certain], not a suspicion — it never counts against the
                 partition quorum. *)
              route_event t g (Ev_fail (p.addr, true)))
        p.memberships
    end
  end

and fail_obligations_of t p =
  match Hashtbl.find_opt t.obligations p.addr.Addr.idx with
  | None -> ()
  | Some obs ->
    Hashtbl.remove t.obligations p.addr.Addr.idx;
    List.iter
      (fun (session, (caller : Addr.proc)) ->
        if caller.Addr.site = t.my_site then note_failed_responder t ~session ~responder:p.addr
        else send_frame t ~dst:caller.Addr.site (Proto.Obligation_failed { session; responder = p.addr }))
      obs

(* --- delivery to local processes --- *)

and dispatch_to_proc t p body =
  if proc_alive p then begin
    (* Per-recipient copy: processes have disjoint address spaces, so a
       recipient must never observe another's mutations.  [Message.copy]
       is copy-on-write — this is O(1) unless the recipient writes. *)
    let body = Message.copy body in
    if filters_pass p.filters body then begin
      if Message.mem body f_pg_kill then kill_proc p
      else
        match Message.entry body with
        | None -> ()
        | Some e -> (
          match Hashtbl.find_opt p.entries e with
          | Some handler -> Sched.spawn p.sched (fun () -> handler body)
          | None ->
            Trace.emitf t.tracer ~category:"proc" "no entry %d at %a" e Addr.pp_proc p.addr)
    end
  end

(* Deliver one group-multicast body to every local member (after one
   intra-site hop), registering reply obligations first. *)
and deliver_to_members t _g body ~members =
  let want = Option.value ~default:0 (Message.get_int body f_want) in
  List.iter
    (fun (m : Addr.proc) ->
      match find_proc t m with
      | None ->
        (* The member died between the send and this delivery: a caller
           waiting on it must not hang. *)
        if want <> 0 then begin
          match Message.session body, Message.sender body with
          | Some session, Some caller ->
            if caller.Addr.site = t.my_site then note_failed_responder t ~session ~responder:m
            else
              send_frame t ~dst:caller.Addr.site
                (Proto.Obligation_failed { session; responder = m })
          | _ -> ()
        end
      | Some p ->
        if want <> 0 then register_obligation t ~responder:p ~body;
        let intra = Backend.intra_site_us t.fab.fbk in
        ignore
          (Backend.schedule t.bk ~delay:intra (fun () ->
               if t.running then dispatch_to_proc t p body)))
    members

and register_obligation t ~responder ~body =
  match Message.session body, Message.sender body with
  | Some session, Some caller ->
    let idx = responder.addr.Addr.idx in
    let cur = Option.value ~default:[] (Hashtbl.find_opt t.obligations idx) in
    Hashtbl.replace t.obligations idx ((session, caller) :: cur)
  | _ -> ()

and clear_obligation t ~responder ~session =
  let idx = responder.Addr.idx in
  match Hashtbl.find_opt t.obligations idx with
  | None -> ()
  | Some obs ->
    Hashtbl.replace t.obligations idx (List.filter (fun (s, _) -> s <> session) obs)

(* Deliver everything the engines can release, acknowledge remote
   origins, and mark own-origin local deliveries. *)
and drain_group t g =
  let deliver uid body =
    Trace.emitf t.tracer ~category:"deliver" "g%d %a at s%d" (gi g.gid) pp_uid uid t.my_site;
    (let tr = Trace.obs t.tracer in
     if Obs_tracer.wants tr Obs_event.Proto then
       Obs_tracer.emit tr
         (Obs_event.Deliver
            { site = t.my_site; group = gi g.gid; usite = uid.usite; useq = uid.useq }));
    deliver_to_members t g body ~members:(local_members t g);
    if uid.usite = t.my_site then note_local_origin_delivered t uid
    else send_frame t ~dst:uid.usite (Proto.Deliver_ack { group = g.gid; uid })
  in
  List.iter (fun (uid, body) -> deliver uid body) (Causal.drain g.causal);
  List.iter
    (fun (uid, prio, body) ->
      (* Retain the finalized ABCAST for stabilization until stable,
         under its true final priority: if a view change wedges the
         group before this message stabilizes, the wedge ack quotes this
         record, and the flush must re-commit it at the same priority at
         every member that has not delivered it yet. *)
      (match Uid_map.find_opt uid g.store with
      | Some _ -> ()
      | None -> g.store <- Uid_map.add uid (Proto.Sab { uid; prio; body }) g.store);
      deliver uid body)
    (Total.drain g.total)

and note_local_origin_delivered t uid =
  (* Origin-site local delivery completes; remote acks may still be
     pending. *)
  match Hashtbl.find_opt t.unstables uid with
  | None -> ()
  | Some u -> check_stable t uid u

and on_deliver_ack t ~src uid =
  match Hashtbl.find_opt t.unstables uid with
  | None -> ()
  | Some u ->
    u.remaining <- List.filter (fun s -> s <> src) u.remaining;
    check_stable t uid u

and check_stable t uid u =
  if u.remaining = [] then begin
    Hashtbl.remove t.unstables uid;
    grp_index_remove t.unstable_by_group (gi u.u_group) uid;
    (let tr = Trace.obs t.tracer in
     if Obs_tracer.wants tr Obs_event.Proto then
       Obs_tracer.emit tr
         (Obs_event.Stabilize { site = t.my_site; usite = uid.usite; useq = uid.useq }));
    List.iter (fun dst -> send_frame t ~dst (Proto.Stable { group = u.u_group; uid })) u.u_dests;
    (match group_of t u.u_group with
    | Some g ->
      note_stabilized t g uid;
      g.store <- Uid_map.remove uid g.store
    | None -> ());
    match u.u_owner with
    | Some p when p.palive ->
      p.outstanding <- Uid_set.remove uid p.outstanding;
      maybe_wake_flushers p
    | Some _ | None -> ()
  end

and on_stable t gid uid =
  match group_of t gid with
  | Some g ->
    (let tr = Trace.obs t.tracer in
     if Obs_tracer.wants tr Obs_event.Proto then begin
       Obs_tracer.emit tr
         (Obs_event.Stabilize { site = t.my_site; usite = uid.usite; useq = uid.useq });
       Obs_tracer.emit tr
         (Obs_event.Stable_advance { site = t.my_site; origin = uid.usite; upto = uid.useq })
     end);
    note_stabilized t g uid;
    g.store <- Uid_map.remove uid g.store
  | None -> ()

(* A stable multicast's dedup record can be garbage collected: every
   destination delivered it, and (per-channel FIFO + per-sender
   delivery monotonicity within each engine) everything earlier from
   the same origin site was delivered everywhere first.  Advance the
   watermark of the engine that carried it — the protocol is read off
   the retransmission-store entry, because advancing the {e other}
   engine's watermark could cover a uid of that protocol still in
   flight. *)
and note_stabilized t g uid =
  if t.cfg.stability_gc then
    match Uid_map.find_opt uid g.store with
    | Some (Proto.Scb _) ->
      Causal.stabilized g.causal uid;
      let tr = Trace.obs t.tracer in
      if Obs_tracer.wants tr Obs_event.Proto then
        Obs_tracer.emit tr (Obs_event.Gc_reclaim { site = t.my_site; n = 1 })
    | Some (Proto.Sab _) ->
      Total.stabilized g.total uid;
      let tr = Trace.obs t.tracer in
      if Obs_tracer.wants tr Obs_event.Proto then
        Obs_tracer.emit tr (Obs_event.Gc_reclaim { site = t.my_site; n = 1 })
    | None -> ()

(* --- sessions (reply collection) --- *)

and open_session t ~want ~responders ~relay_site =
  let sess =
    {
      sess_id = fresh_session t;
      swant = want;
      replies = [];
      nulls = [];
      sfailed = [];
      responders;
      relay_site;
      done_ivar = Ivar.create ();
      mon_sites = [];
    }
  in
  Hashtbl.replace t.sessions sess.sess_id sess;
  (* Watch the sites hosting responders (and the relay): a site crash
     means those responders will never reply. *)
  let watch =
    (match responders with
    | Some rs -> List.map (fun (r : Addr.proc) -> r.Addr.site) rs
    | None -> [])
    @ (match relay_site with Some s -> [ s ] | None -> [])
  in
  let watch = List.sort_uniq compare (List.filter (fun s -> s <> t.my_site) watch) in
  List.iter (fun s -> mon_acquire t s) watch;
  sess.mon_sites <- watch;
  sess

and close_session t sess outcome =
  if Hashtbl.mem t.sessions sess.sess_id then begin
    Hashtbl.remove t.sessions sess.sess_id;
    List.iter (fun s -> mon_release t s) sess.mon_sites;
    Ivar.fill sess.done_ivar outcome
  end

and note_responders t sess responders =
  if sess.responders = None then begin
    sess.responders <- Some responders;
    let monitored = Int_set.of_list sess.mon_sites in
    let extra =
      List.sort_uniq compare
        (List.filter_map
           (fun (r : Addr.proc) ->
             if r.Addr.site <> t.my_site && not (Int_set.mem r.Addr.site monitored) then
               Some r.Addr.site
             else None)
           responders)
    in
    List.iter (fun s -> mon_acquire t s) extra;
    sess.mon_sites <- extra @ sess.mon_sites;
    check_session t sess
  end

and note_reply t sess ~responder ~body ~null =
  let already p = Addr.equal_proc p responder in
  if
    (not (List.exists (fun (p, _) -> already p) sess.replies))
    && not (List.exists already sess.nulls)
  then begin
    if null then sess.nulls <- responder :: sess.nulls
    else sess.replies <- (responder, body) :: sess.replies;
    check_session t sess
  end

and note_failed_responder t ~session ~responder =
  match Hashtbl.find_opt t.sessions session with
  | None -> ()
  | Some sess ->
    if not (List.exists (Addr.equal_proc responder) sess.sfailed) then begin
      sess.sfailed <- responder :: sess.sfailed;
      check_session t sess
    end

and session_site_down t s =
  let open_sessions = Hashtbl.fold (fun _ sess acc -> sess :: acc) t.sessions [] in
  List.iter
    (fun sess ->
      (match sess.responders with
      | Some rs ->
        List.iter
          (fun (r : Addr.proc) ->
            if r.Addr.site = s then note_failed_responder t ~session:sess.sess_id ~responder:r)
          rs
      | None -> ());
      (* Relay died before telling us who the responders are: the send
         may or may not have happened; report failure so the caller can
         retry (paper Sec 5 step 2 does exactly this). *)
      if sess.responders = None && sess.relay_site = Some s then close_session t sess All_failed)
    open_sessions

and check_session t sess =
  match sess.responders with
  | None ->
    (* Without the authoritative responder list we can still satisfy a
       fixed-count request. *)
    (match sess.swant with
    | Wait_n n when List.length sess.replies >= n ->
      close_session t sess (Replies (List.rev sess.replies))
    | Wait_n _ | Wait_all | No_reply -> ())
  | Some responders ->
    let accounted (r : Addr.proc) =
      List.exists (fun (p, _) -> Addr.equal_proc p r) sess.replies
      || List.exists (Addr.equal_proc r) sess.nulls
      || List.exists (Addr.equal_proc r) sess.sfailed
    in
    let outstanding = List.filter (fun r -> not (accounted r)) responders in
    let n_replies = List.length sess.replies in
    let finishable =
      match sess.swant with
      | No_reply -> true
      | Wait_n n -> n_replies >= n || outstanding = []
      | Wait_all -> outstanding = []
    in
    if finishable then
      if n_replies = 0 && sess.nulls = [] && responders <> [] && List.length sess.sfailed = List.length responders
      then close_session t sess All_failed
      else close_session t sess (Replies (List.rev sess.replies))

(* --- multicast origination (this site hosts a member, or is relaying
       on behalf of a remote client) --- *)

and origin_multicast t g mode ~owner body =
  let sender_failed =
    match Message.sender body with
    | Some s -> List.exists (Addr.equal_proc s) g.failed_procs
    | None -> false
  in
  if sender_failed then init_done owner
  else if g.minority <> None && t.cfg.minority_policy = Reject then
    (* Minority component under the reject policy: fail fast (the owner
       fiber sees [Partitioned] at the API layer; relays just drop)
       instead of buffering behind a wedge that may never lift. *)
    init_done owner
  else if g.wedge <> None then
    (* Wedged: the group is between views; queue the operation and rerun
       it once the new view is installed. *)
    g.blocked_sends <- (owner, mode, body) :: g.blocked_sends
  else
    match mode with
    | Cbcast ->
      origin_cbcast t g ~owner body;
      init_done owner
    | Abcast -> enqueue_abcast t g ~owner body
    | Gbcast ->
      origin_gbcast t g body;
      init_done owner

and maybe_wake_flushers p =
  if p.pending_inits = 0 && Uid_set.is_empty p.outstanding then Condition.broadcast p.flushers

and init_done owner =
  match owner with
  | Some p ->
    if p.pending_inits > 0 then p.pending_inits <- p.pending_inits - 1;
    maybe_wake_flushers p
  | None -> ()

and mark_unstable t g uid ~remote ~owner =
  if remote <> [] then begin
    Hashtbl.replace t.unstables uid
      { remaining = remote; u_owner = owner; u_group = g.gid; u_dests = remote };
    grp_index_add t.unstable_by_group (gi g.gid) uid;
    match owner with
    | Some p when p.palive -> p.outstanding <- Uid_set.add uid p.outstanding
    | Some _ | None -> ()
  end

and origin_cbcast t g ~owner body =
  let uid = fresh_uid t in
  (* Rank used for the timestamp: the sending member if local, else the
     oldest local member (relay). *)
  let rank =
    match Message.sender body with
    | Some s when View.is_member g.view s -> View.rank g.view s
    | _ -> (
      match local_members t g with
      | m :: _ -> View.rank g.view m
      | [] -> -1)
  in
  let vt =
    if rank >= 0 then Some (Vsync_util.Vclock.to_list (Causal.stamp g.causal ~rank)) else None
  in
  let remote = remote_member_sites t g in
  Trace.emitf t.tracer ~category:"cbcast" "send %a g%d" pp_uid uid (gi g.gid);
  (let tr = Trace.obs t.tracer in
   if Obs_tracer.wants tr Obs_event.Proto then
     Obs_tracer.emit tr
       (Obs_event.Originate
          { site = t.my_site; proto = "cbcast"; group = gi g.gid; usite = uid.usite; useq = uid.useq }));
  if remote = [] then begin
    (* Purely local group: immediately stable. *)
    emit_local_deliver t g uid;
    deliver_to_members t g body ~members:(local_members t g)
  end
  else begin
    g.store <- Uid_map.add uid (Proto.Scb { uid; rank; vt; body }) g.store;
    Causal.note_sent g.causal uid;
    mark_unstable t g uid ~remote ~owner;
    List.iter
      (fun dst ->
        send_frame t ~dst
          (Proto.Cb_data { group = g.gid; view_id = g.view.View.view_id; uid; rank; vt; body }))
      remote;
    (* Self-delivery: immediate — the primitive looks instantaneous to
       the sender, which is the heart of the asynchronous style. *)
    emit_local_deliver t g uid;
    deliver_to_members t g body ~members:(local_members t g)
  end

(* ABCAST origination is pipelined: a bounded window of phase-1 rounds
   may be outstanding per group, the rest queue.  When commits complete
   they free slots, and because a coalesced packet can complete several
   commits in one engine event, the freed slots dispatch as a burst
   whose Ab_data frames coalesce — under load the pipeline feeds its own
   batching.  [init_done] (which lets [flush] proceed) runs only when
   the multicast is actually originated, so flush semantics still cover
   queued sends. *)
and enqueue_abcast t g ~owner body =
  Queue.push (owner, body) g.ab_queue;
  dispatch_abcasts t g

and dispatch_abcasts t g =
  (* Burst dispatch.  Rounds launched in the same engine event share
     packets all the way around the protocol: their Ab_data frames
     coalesce per destination, so each member answers the whole burst
     with its prios in one packet (one receive interrupt here instead
     of one per round), and the commit fan-out coalesces onto the next
     burst's phase-1 frames.  Releasing one round per freed slot would
     keep the pipeline perfectly smooth and nothing would ever share a
     packet — so while the pipeline is busy, rounds launch in bursts
     of at least half the window: a burst goes out when that many
     slots are free and the backlog can fill them (two half-window
     bursts then overlap, so the originator never idles waiting for a
     round trip), or when the pipeline drains entirely.  [ab_window <=
     0] disables the origination gate (the pre-window behaviour: every
     round launches immediately).  With [ab_adaptive] the window is the
     live AIMD estimate instead of the static value. *)
  let window = current_ab_window t g in
  let free = window - g.ab_inflight in
  let quantum = if window = max_int then 1 else (window + 1) / 2 in
  if
    g.wedge = None
    && (not (Queue.is_empty g.ab_queue))
    && (g.ab_inflight = 0 || (free >= quantum && Queue.length g.ab_queue >= quantum))
  then begin
    while (not (Queue.is_empty g.ab_queue)) && g.ab_inflight < window do
      let owner, body = Queue.pop g.ab_queue in
      origin_abcast t g ~owner body;
      init_done owner
    done;
    (* Queue space freed: blocked [bcast_wait] originators may retry. *)
    Condition.broadcast t.admission
  end

and origin_abcast t g ~owner body =
  let uid = fresh_uid t in
  let remote = remote_member_sites t g in
  Trace.emitf t.tracer ~category:"abcast" "send %a g%d" pp_uid uid (gi g.gid);
  (let tr = Trace.obs t.tracer in
   if Obs_tracer.wants tr Obs_event.Proto then
     Obs_tracer.emit tr
       (Obs_event.Originate
          { site = t.my_site; proto = "abcast"; group = gi g.gid; usite = uid.usite; useq = uid.useq }));
  let my_prio = Total.intake g.total ~uid body in
  mark_unstable t g uid ~remote ~owner;
  if remote = [] then begin
    Total.commit g.total ~uid my_prio;
    drain_group t g;
    (* Purely local group: immediately stable.  GC the stabilization
       copy and the dedup record [drain_group] just created (no
       [Stable] flow ever runs for a local-only round). *)
    (let tr = Trace.obs t.tracer in
     if Obs_tracer.wants tr Obs_event.Proto then
       Obs_tracer.emit tr
         (Obs_event.Stabilize { site = t.my_site; usite = uid.usite; useq = uid.useq }));
    note_stabilized t g uid;
    g.store <- Uid_map.remove uid g.store
  end
  else begin
    g.ab_inflight <- g.ab_inflight + 1;
    Hashtbl.replace t.ab_collects uid { ac_group = g.gid; ac_expect = remote; ac_max = my_prio };
    grp_index_add t.collects_by_group (gi g.gid) uid;
    List.iter
      (fun dst ->
        send_frame t ~dst (Proto.Ab_data { group = g.gid; view_id = g.view.View.view_id; uid; body }))
      remote
  end

and origin_gbcast t g body =
  let uid = fresh_uid t in
  Trace.emitf t.tracer ~category:"gbcast" "request %a g%d" pp_uid uid (gi g.gid);
  trace_proto t (fun () ->
      Obs_event.Originate
        { site = t.my_site; proto = "gbcast"; group = gi g.gid; usite = uid.usite; useq = uid.useq });
  g.gb_outstanding <- (uid, body) :: g.gb_outstanding;
  route_event t g (Ev_gb (uid, body))

and on_ab_prio t ~src uid prio =
  match Hashtbl.find_opt t.ab_collects uid with
  | None -> () (* collection finished or superseded by a flush *)
  | Some col -> (
    match group_of t col.ac_group with
    | None ->
      Hashtbl.remove t.ab_collects uid;
      grp_index_remove t.collects_by_group (gi col.ac_group) uid
    | Some g ->
      if g.wedge <> None then () (* the flush coordinator will finalize *)
      else begin
        (let tr = Trace.obs t.tracer in
         if Obs_tracer.wants tr Obs_event.Proto then
           Obs_tracer.emit tr
             (Obs_event.Ab_vote
                { site = t.my_site; voter = src; usite = uid.usite; useq = uid.useq; prio = fst prio }));
        col.ac_max <- prio_max col.ac_max prio;
        (* The proposal's sender is implicit: we just count down. *)
        (match col.ac_expect with
        | [] -> ()
        | _ :: _ ->
          col.ac_expect <- List.tl col.ac_expect;
          if col.ac_expect = [] then begin
            Hashtbl.remove t.ab_collects uid;
            grp_index_remove t.collects_by_group (gi col.ac_group) uid;
            g.ab_inflight <- max 0 (g.ab_inflight - 1);
            let final = col.ac_max in
            Trace.emitf t.tracer ~category:"abcast" "commit %a %a" pp_uid uid pp_prio final;
            (let tr = Trace.obs t.tracer in
             if Obs_tracer.wants tr Obs_event.Proto then
               Obs_tracer.emit tr
                 (Obs_event.Ab_commit
                    { site = t.my_site; usite = uid.usite; useq = uid.useq; prio = fst final }));
            List.iter
              (fun dst ->
                send_frame t ~dst
                  (Proto.Ab_commit { group = g.gid; view_id = g.view.View.view_id; uid; prio = final }))
              (remote_member_sites t g);
            Total.commit g.total ~uid final;
            drain_group t g;
            aimd_on_commit t g;
            (* The freed slot (and any others freed by this same packet)
               dispatches the next queued round(s). *)
            dispatch_abcasts t g
          end)
      end)

(* Route a membership/GBCAST event to the acting coordinator. *)
and route_event t g ev =
  match g.minority, ev with
  | Some _, Ev_join (p, _) ->
    (* A minority component must not grow itself back over quorum with
       newcomers: refuse immediately so the joiner retries against the
       primary partition once the split heals. *)
    let reason = "partitioned: minority component" in
    if p.Addr.site = t.my_site then (
      match jw_take t ~gid_int:(gi g.gid) ~idx:p.Addr.idx with
      | Some iv -> Ivar.fill iv (Error reason)
      | None -> ())
    else send_frame t ~dst:p.Addr.site (Proto.Join_refused { group = g.gid; joiner = p; reason })
  | _ -> (
    match acting_coord_site g with
    | Some c when c = t.my_site ->
      enqueue_event t g ev;
      maybe_start_change t g
    | Some c ->
      let frame =
        match ev with
        | Ev_join (p, cred) -> Proto.Join_req { group = g.gid; joiner = p; credentials = cred }
        | Ev_leave p -> Proto.Leave_req { group = g.gid; who = p }
        | Ev_fail (p, certain) -> Proto.Proc_failed { group = g.gid; who = p; certain }
        | Ev_gb (uid, body) -> Proto.Gb_req { group = g.gid; uid; body }
      in
      send_frame t ~dst:c frame
    | None ->
      (* Every member site is suspected: there is no coordinator to run
         the change.  Dropping the event here silently stalled the
         group; instead park it and re-probe — either a suspicion
         clears (and routing finds the new coordinator) or the copy is
         eventually torn down. *)
      Trace.emitf t.tracer ~category:"view" "no live coordinator for g%d" (gi g.gid);
      trace_note t (fun () ->
          Obs_event.Error_event
            {
              site = t.my_site;
              what = "no-live-coordinator";
              detail = Printf.sprintf "g%d" (gi g.gid);
            });
      enqueue_event t g ev;
      let gid_int = gi g.gid in
      ignore
        (Backend.schedule t.bk ~delay:500_000 (fun () ->
             if t.running then
               match Hashtbl.find_opt t.groups gid_int with
               | Some g' when g' == g ->
                 if not (Deque.is_empty g.pending_events) then begin
                   let evs = Deque.to_list g.pending_events in
                   g.pending_events <- Deque.empty;
                   List.iter (fun ev -> route_event t g ev) evs
                 end
               | Some _ | None -> ())))

and enqueue_event t g ev =
  let in_flight pred =
    Deque.exists pred g.pending_events
    || match g.change with Some c -> List.exists pred c.c_batch | None -> false
  in
  let dup =
    match ev with
    | Ev_fail (p, certain) ->
      (* A certain death upgrades a queued suspicion of the same process
         (certainty matters to the quorum rule), so only an equally- or
         more-certain record counts as a duplicate. *)
      in_flight (function
        | Ev_fail (q, c') -> Addr.equal_proc p q && (c' || not certain)
        | Ev_leave q -> Addr.equal_proc p q
        | Ev_join _ | Ev_gb _ -> false)
    | Ev_leave p ->
      in_flight (function
        | Ev_fail (q, _) | Ev_leave q -> Addr.equal_proc p q
        | Ev_join _ | Ev_gb _ -> false)
    | Ev_join (p, _) ->
      in_flight (function Ev_join (q, _) -> Addr.equal_proc p q | _ -> false)
    | Ev_gb (u, _) ->
      (* Re-routed copies of an undelivered GBCAST (see
         [gb_outstanding]) collapse onto the queued original. *)
      in_flight (function Ev_gb (u2, _) -> u2 = u | _ -> false)
  in
  ignore t;
  if not dup then g.pending_events <- Deque.push_back g.pending_events ev

(* --- the view-change / GBCAST flush --- *)

and maybe_start_change t g =
  if
    g.change = None
    && g.minority = None
    && (not (Deque.is_empty g.pending_events))
    && i_am_coord t g
  then start_change t g

and start_change t g =
  let batch = Deque.to_list g.pending_events in
  g.pending_events <- Deque.empty;
  (* Collapse duplicate failure records of one process, keeping the
     strongest certainty: a local kill may race an earlier suspicion of
     the same process, and certainty matters to the quorum rule. *)
  let batch =
    List.rev
      (List.fold_left
         (fun acc ev ->
           match ev with
           | Ev_fail (p, c) ->
             let merged = ref false in
             let acc =
               List.map
                 (function
                   | Ev_fail (q, c') when Addr.equal_proc p q ->
                     merged := true;
                     Ev_fail (q, c' || c)
                   | e -> e)
                 acc
             in
             if !merged then acc else ev :: acc
           | e -> e :: acc)
         [] batch)
  in
  (* A suspicion of a member hosted HERE that is demonstrably alive is
     stale by construction (a heal delivered someone's partition-era
     report after the fact): processing it would evict a live local
     member — or, worse, make this coordinator count itself dead and
     wedge a healthy component.  Certain reports are never dropped. *)
  let batch =
    List.filter
      (function
        | Ev_fail (p, false) when p.Addr.site = t.my_site -> find_proc t p = None
        | _ -> true)
      batch
  in
  (* Primary-partition rule: the component this coordinator can still
     reach may run the change (and keep delivering in the new view) only
     if it retains a quorum of the current view.  Deaths witnessed
     directly ([certain]) and voluntary leaves shrink the quorum base;
     mere suspicions do not — suspicions are exactly what a partition
     forges on both sides at once. *)
  let certain =
    List.filter_map
      (function Ev_fail (p, true) | Ev_leave p -> Some p | _ -> None)
      batch
  in
  let gone =
    List.filter_map (function Ev_fail (p, _) | Ev_leave p -> Some p | _ -> None) batch
  in
  (* The surviving component is the members this batch keeps MINUS any
     member whose site we currently suspect.  The second clause matters
     when eviction reports drip in one at a time (a report routed to an
     unreachable coordinator is lost): without it an isolated site could
     evict the far side one member per flush, each step retaining a
     "majority" of the freshly shrunk view, and walk itself into a
     unilateral view — split-brain by induction. *)
  let survivors =
    List.filter
      (fun (m : Addr.proc) ->
        (not (List.exists (Addr.equal_proc m) gone))
        && (m.Addr.site = t.my_site || not (Int_set.mem m.Addr.site g.suspects)))
      g.view.View.members
  in
  if not (View.quorum_met ~prev:g.view ~survivors ~certain) then
    enter_minority t g ~batch ~survivors ~certain
  else begin
    let attempt = g.last_attempt + 1 in
    g.last_attempt <- attempt;
    let live_sites = List.filter (fun s -> not (Int_set.mem s g.suspects)) (View.sites g.view) in
    let sites = List.sort_uniq compare (t.my_site :: live_sites) in
    g.change <-
      Some
        { c_attempt = attempt; c_batch = batch; c_sites = sites;
          c_acks = Hashtbl.create (List.length sites); c_fetch_wait = [];
          c_fetched = []; c_committed = false };
    Trace.emitf t.tracer ~category:"view" "start change g%d v%d a%d (%d events)" (gi g.gid)
      g.view.View.view_id attempt (List.length batch);
    trace_proto t (fun () ->
        Obs_event.Flush
          { site = t.my_site; group = gi g.gid; view_id = g.view.View.view_id; attempt });
    List.iter
      (fun dst ->
        send_frame t ~dst
          (Proto.Wedge
             { group = g.gid; view_id = g.view.View.view_id; attempt; coord_site = t.my_site;
               coord_epoch = Endpoint.epoch (endpoint t) }))
      sites;
    wedge_retry t g ~attempt
  end

(* A flush can starve on participants that could not ack the original
   Wedge: a site still catching up on an OLDER view (it held a
   higher-precedence wedge there and fenced our commit predecessor)
   ignores a Wedge for a view ahead of its own, then adopts that view
   via a rebroadcast commit — at which point it would happily ack, but
   the Wedge is long gone.  Re-send the Wedge to the participants whose
   acks are still missing, until the change completes, aborts, or moves
   to a new attempt.  Re-wedging an already-wedged site is idempotent
   (same attempt/coordinator falls through to a duplicate ack, which
   [on_wedge_ack] drops). *)
and wedge_retry t g ~attempt =
  let gid_int = gi g.gid in
  ignore
    (Backend.schedule t.bk ~delay:1_000_000 (fun () ->
         if t.running then
           match Hashtbl.find_opt t.groups gid_int with
           | Some g' when g' == g -> (
             match g.change with
             | Some c when c.c_attempt = attempt && not c.c_committed ->
               let missing =
                 List.filter
                   (fun s -> s <> t.my_site && not (Hashtbl.mem c.c_acks s))
                   c.c_sites
               in
               if missing <> [] then begin
                 List.iter
                   (fun dst ->
                     send_frame t ~dst
                       (Proto.Wedge
                          { group = g.gid; view_id = g.view.View.view_id; attempt;
                            coord_site = t.my_site;
                            coord_epoch = Endpoint.epoch (endpoint t) }))
                   missing;
                 wedge_retry t g ~attempt
               end
             | Some _ | None -> ())
           | Some _ | None -> ()))

(* --- the minority side of a partition ---

   The coordinator of a component that lost its quorum must not install
   views: doing so on both sides of a split is exactly split-brain.
   Instead it wedges its whole component (blocking origination
   everywhere in it, via the ordinary wedge machinery) and probes the
   sites it suspects.  Three ways out: a probe reply shows a suspected
   site is reachable at our view (false alarm / heal before eviction) —
   fold it back in and rerun the change; a reply shows the primary
   partition has moved to a newer view without us — discard this dead
   copy so local members can rejoin fresh through state transfer; or
   the probes run dry for long enough that the group is assumed
   dissolved. *)

and enter_minority t g ~batch ~survivors ~certain =
  let attempt = g.last_attempt + 1 in
  g.last_attempt <- attempt;
  g.change <- None;
  let m = { m_attempt = attempt; m_batch = batch; m_rounds = 0 } in
  g.minority <- Some m;
  let base =
    List.filter
      (fun mem -> not (List.exists (Addr.equal_proc mem) certain))
      g.view.View.members
  in
  let needed = (List.length base / 2) + 1 in
  Trace.emitf t.tracer ~category:"view" "minority wedge g%d v%d: %d of %d survive, need %d"
    (gi g.gid) g.view.View.view_id (List.length survivors) (List.length base) needed;
  trace_partition t (fun () ->
      Obs_event.Partition_wedge
        {
          site = t.my_site;
          group = gi g.gid;
          view_id = g.view.View.view_id;
          survivors = List.length survivors;
          needed;
        });
  (* Wedge every reachable component site (self included) so that
     origination blocks component-wide, not just here. *)
  let live_sites = List.filter (fun s -> not (Int_set.mem s g.suspects)) (View.sites g.view) in
  let sites = List.sort_uniq compare (t.my_site :: live_sites) in
  List.iter
    (fun dst ->
      send_frame t ~dst
        (Proto.Wedge
           { group = g.gid; view_id = g.view.View.view_id; attempt; coord_site = t.my_site;
             coord_epoch = Endpoint.epoch (endpoint t) }))
    sites;
  schedule_minority_probe t g m

and schedule_minority_probe t g m =
  let gid_int = gi g.gid in
  ignore
    (Backend.schedule t.bk ~delay:500_000 (fun () ->
         if t.running then
           match Hashtbl.find_opt t.groups gid_int with
           | Some g' when g' == g -> (
             match g.minority with
             | Some m' when m' == m ->
               m.m_rounds <- m.m_rounds + 1;
               if m.m_rounds > 40 then
                 (* Nothing answered for ~20s of probing: the rest of the
                    group is gone (or we are irrecoverably cut off).
                    Treat this copy as dissolved rather than wedging
                    forever. *)
                 partition_teardown t g ~new_view_id:(-1)
               else begin
                 trace_partition t (fun () ->
                     Obs_event.Partition_probe
                       { site = t.my_site; group = gid_int; view_id = g.view.View.view_id });
                 (* Probe the suspects AND the sites of members this
                    batch would have evicted: a stale suspicion can put
                    a member in the batch without its site being in
                    [suspects], and probing nobody would let the copy
                    run dry against a perfectly healthy peer. *)
                 let targets =
                   List.fold_left
                     (fun acc ev ->
                       match ev with
                       | Ev_fail (p, false) when p.Addr.site <> t.my_site ->
                         Int_set.add p.Addr.site acc
                       | _ -> acc)
                     g.suspects m.m_batch
                 in
                 Int_set.iter
                   (fun s ->
                     send_frame t ~dst:s
                       (Proto.View_probe
                          { group = g.gid; view_id = g.view.View.view_id; from_site = t.my_site }))
                   targets;
                 schedule_minority_probe t g m
               end
             | Some _ | None -> ())
           | Some _ | None -> ()))

(* A probe reply showed [site] is reachable and still at our view:
   clear the suspicion, drop its members' suspicion-based failure
   records, and rerun the change — if quorum now holds, the ordinary
   flush commits (its commit unwedges the whole component, even with an
   empty event batch); otherwise we re-enter the minority state and
   keep probing. *)
and minority_recover t g m ~site =
  g.suspects <- Int_set.remove site g.suspects;
  let drop_suspicion_of ev =
    match ev with Ev_fail (p, false) -> p.Addr.site <> site | _ -> true
  in
  m.m_batch <- List.filter drop_suspicion_of m.m_batch;
  (* Stale suspicions of the recovered site may also sit in the pending
     queue — e.g. a copy routed here by a peer after it healed — and
     would sail into the next change untouched by the batch filter. *)
  g.pending_events <- Deque.of_list (List.filter drop_suspicion_of (Deque.to_list g.pending_events));
  g.minority <- None;
  trace_partition t (fun () ->
      Obs_event.Partition_exit
        { site = t.my_site; group = gi g.gid; view_id = g.view.View.view_id });
  Trace.emitf t.tracer ~category:"view" "minority recover g%d: site %d reachable" (gi g.gid) site;
  g.pending_events <- Deque.prepend m.m_batch g.pending_events;
  (* Clearing the suspicion may hand coordinatorship back to the
     recovered site: route the parked events instead of running the
     change from here. *)
  if i_am_coord t g then start_change t g
  else begin
    let evs = Deque.to_list g.pending_events in
    g.pending_events <- Deque.empty;
    List.iter (fun ev -> route_event t g ev) evs
  end

(* This site's copy of the group is dead: the primary partition
   installed view [new_view_id] without us (or probing ran dry,
   [new_view_id = -1]).  Discard all group state — unstable minority
   deliveries included — so local members can rejoin as fresh joiners
   and pull current state through the state-transfer toolkit.  Contacts
   and the name directory survive on purpose: they are how the rejoin
   finds the primary. *)
and partition_teardown t g ~new_view_id =
  let gid_int = gi g.gid in
  Trace.emitf t.tracer ~category:"view" "partition evict g%d v%d (primary at v%d)" gid_int
    g.view.View.view_id new_view_id;
  trace_partition t (fun () ->
      Obs_event.Partition_evict
        { site = t.my_site; group = gid_int; view_id = g.view.View.view_id; new_view_id });
  (* Let fellow component sites (which are wedged but hold no minority
     record) learn the verdict instead of wedging forever: a probe
     reply advertising a view beyond theirs makes them discard their
     copy too.  On a probing give-up there is no known primary view, so
     advertise the next id — the copy is dead either way. *)
  (match g.minority with
  | Some _ ->
    let verdict = if new_view_id >= 0 then new_view_id else g.view.View.view_id + 1 in
    List.iter
      (fun s ->
        if s <> t.my_site && not (Int_set.mem s g.suspects) then
          send_frame t ~dst:s (Proto.View_probe_reply { group = g.gid; view_id = verdict }))
      (View.sites g.view)
  | None -> ());
  g.minority <- None;
  (* Release every waiter parked on this copy. *)
  List.iter (fun (owner, _, _) -> init_done owner) (List.rev g.blocked_sends);
  g.blocked_sends <- [];
  Queue.iter (fun (owner, _) -> init_done owner) g.ab_queue;
  Queue.clear g.ab_queue;
  List.iter
    (fun uid ->
      match Hashtbl.find_opt t.unstables uid with
      | None -> ()
      | Some (u : unstable) -> (
        Hashtbl.remove t.unstables uid;
        match u.u_owner with
        | Some p when p.palive ->
          p.outstanding <- Uid_set.remove uid p.outstanding;
          maybe_wake_flushers p
        | Some _ | None -> ()))
    (grp_index_take t.unstable_by_group gid_int);
  List.iter
    (fun u -> Hashtbl.remove t.ab_collects u)
    (grp_index_take t.collects_by_group gid_int);
  Hashtbl.remove t.held gid_int;
  if jw_any t gid_int then
    Hashtbl.iter
      (fun (gid', idx) _ ->
        if gid' = gid_int then
          match jw_take t ~gid_int ~idx with
          | Some iv -> Ivar.fill iv (Error "partitioned: evicted from primary partition")
          | None -> ())
      (Hashtbl.copy t.join_waiters);
  Hashtbl.iter
    (fun (gid', idx) iv ->
      if gid' = gid_int then begin
        Hashtbl.remove t.leave_waiters (gid', idx);
        Ivar.fill iv ()
      end)
    (Hashtbl.copy t.leave_waiters);
  Hashtbl.iter
    (fun _ pr -> pr.memberships <- List.filter (fun g' -> g' <> gid_int) pr.memberships)
    t.procs;
  List.iter (fun s -> mon_release t s) (View.sites g.view);
  Hashtbl.remove t.groups gid_int;
  (* The local copy is gone, so this site must stop advertising itself
     as a contact for the group.  During the partition the failure
     detector purged the (unreachable) primary sites from the hints, so
     what's left typically points right back here — a rejoin that
     resolved the name locally would send its Join_req to this site and
     be refused.  Keep any surviving primary-side hints; if none
     remain, drop the entry entirely so the next lookup broadcasts a
     fresh directory query. *)
  (match Hashtbl.find_opt t.contacts gid_int with
  | Some sites -> (
    match List.filter (( <> ) t.my_site) sites with
    | [] -> Hashtbl.remove t.contacts gid_int
    | remaining -> Hashtbl.replace t.contacts gid_int remaining)
  | None -> ());
  dir_drop_site t ~gid_int ~site:t.my_site

and restart_change t g =
  (* A failure interrupted the flush: requeue the unprocessed batch and
     run again with fresh suspicions folded in. *)
  (match g.change with
  | Some c when not c.c_committed -> g.pending_events <- Deque.prepend c.c_batch g.pending_events
  | Some _ | None -> ());
  g.change <- None;
  maybe_start_change t g

and on_wedge t ~src g ~view_id ~attempt ~coord_site ~coord_epoch =
  if view_id < g.view.View.view_id then (
    (* We already committed past this view.  Two very different cases
       hide behind that comparison.  If our commit is for this very
       view change (a prior coordinator died after partially fanning it
       out), hand the frame to the new coordinator so it re-broadcasts
       instead of re-deciding.  Otherwise the lineages have diverged —
       e.g. a wedged minority coordinator revived after the primary
       moved several views on — and answering with an empty Wedge_ack
       would let the stale coordinator count us towards ITS quorum and
       commit a rival view under a recycled view id (split brain).
       Refuse with a probe reply: seeing the newer id makes the stale
       copy tear itself down and rejoin fresh. *)
    match g.last_commit with
    | Some (Proto.Commit c as frame) when c.view_id = view_id ->
      send_frame t ~dst:src
        (Proto.Wedge_ack
           {
             group = g.gid;
             view_id;
             attempt;
             from_site = t.my_site;
             cb_known = [];
             ab_report = [];
             ab_counter = 0;
             already_committed = Some frame;
           })
    | Some _ | None ->
      send_frame t ~dst:src
        (Proto.View_probe_reply { group = g.gid; view_id = g.view.View.view_id }))
  else if view_id = g.view.View.view_id then begin
    let dominated =
      match g.wedge with
      | None -> true
      | Some w -> attempt > w.w_attempt || (attempt = w.w_attempt && coord_site <= w.w_coord)
    in
    if dominated then begin
      g.wedge <- Some { w_attempt = attempt; w_coord = coord_site; w_epoch = coord_epoch };
      g.last_attempt <- max g.last_attempt attempt;
      trace_proto t (fun () ->
          Obs_event.Wedge { site = t.my_site; group = gi g.gid; view_id });
      (* If we were coordinating a lower-precedence change, abandon it.
         The batch goes back in the queue, and a delayed re-propose
         covers the case where the winning wedge never turns into a
         commit — e.g. it was a minority component's wedge and its
         owner recovered (abandoning it) rather than committing.
         Without the retry both flushes die and the group stays wedged
         with undrained state until the end of time. *)
      (match g.change with
      | Some c when coord_site <> t.my_site || c.c_attempt <> attempt ->
        if coord_site <> t.my_site then begin
          if not c.c_committed then g.pending_events <- Deque.prepend c.c_batch g.pending_events;
          g.change <- None;
          let gid_int = gi g.gid in
          ignore
            (Backend.schedule t.bk ~delay:500_000 (fun () ->
                 if t.running then
                   match Hashtbl.find_opt t.groups gid_int with
                   | Some g' when g' == g -> maybe_start_change t g
                   | Some _ | None -> ()))
        end
      | Some _ | None -> ());
      let cb_known = Uid_map.fold (fun uid s acc -> match s with Proto.Scb _ -> uid :: acc | Proto.Sab _ -> acc) g.store [] in
      let ab_store =
        Uid_map.fold
          (fun uid s acc ->
            match s with
            | Proto.Sab { prio; _ } ->
              { Proto.ab_uid = uid; ab_prio = prio; ab_committed = true; ab_origin = uid.usite } :: acc
            | Proto.Scb _ -> acc)
          g.store []
      in
      let ab_pending =
        List.map
          (fun (uid, prio, committed, _has_payload) ->
            { Proto.ab_uid = uid; ab_prio = prio; ab_committed = committed; ab_origin = uid.usite })
          (Total.pending g.total)
      in
      send_frame t ~dst:src
        (Proto.Wedge_ack
           {
             group = g.gid;
             view_id;
             attempt;
             from_site = t.my_site;
             cb_known;
             ab_report = ab_store @ ab_pending;
             ab_counter = Total.counter g.total;
             already_committed = None;
           })
    end
    else
      (* A competing wedge that loses to the one we hold.  Refusing
         silently starves the losing coordinator: it keeps waiting for
         our ack while the winner proceeds, and if the winner then
         dies or abandons (a recovered minority wedge), neither flush
         ever finishes.  Echo the winning wedge so the loser adopts
         it, abandons its change, and re-proposes later if the flush
         stalls. *)
      match g.wedge with
      | Some w when src <> t.my_site ->
        send_frame t ~dst:src
          (Proto.Wedge
             {
               group = g.gid;
               view_id;
               attempt = w.w_attempt;
               coord_site = w.w_coord;
               coord_epoch = w.w_epoch;
             })
      | Some _ | None -> ()
  end
  (* view_id > current: the sender installed views we never saw — we
     are on the dead side of a partition; our own probe/commit path
     will discover and handle the eviction. *)

and on_wedge_ack t g ~from_site ~attempt ack =
  match g.change with
  | Some c when c.c_attempt = attempt && List.mem from_site c.c_sites ->
    (* The [c_sites] guard matters: a site excluded from the flush as
       suspected can recover in mid-change and ack the broadcast wedge
       anyway.  The quorum test counts acks, so an out-of-set ack would
       let the flush proceed while a participant is still missing
       (resolve_acks then has no report to consult for it).  The
       recovered site is evicted by this view and rejoins. *)
    if not (Hashtbl.mem c.c_acks from_site) then begin
      Hashtbl.replace c.c_acks from_site ack;
      if Hashtbl.length c.c_acks = List.length c.c_sites then proceed_with_acks t g c
    end
  | Some _ | None -> ()

and proceed_with_acks t g c =
  (* Someone already holds a commit from a dead coordinator for this
     view: re-broadcast it verbatim, requeue our batch, and let the
     commit drive everyone forward. *)
  match
    Hashtbl.fold
      (fun _ a acc -> match acc with Some _ -> acc | None -> a.a_already)
      c.c_acks None
  with
  | Some commit_frame ->
    g.pending_events <- Deque.prepend c.c_batch g.pending_events;
    g.change <- None;
    List.iter (fun dst -> send_frame t ~dst commit_frame) c.c_sites
  | None ->
    (* Which CBCAST / finalized-ABCAST bodies are missing somewhere? *)
    let r = resolve_acks ~gid:(gi g.gid) ~view_id:g.view.View.view_id c in
    let needed = r.r_missing_cb @ r.r_ab_missing in
    (* Who holds each needed body?  Prefer ourselves. *)
    let holder_of u =
      let has s =
        match Hashtbl.find_opt c.c_acks s with
        | Some a -> Uid_set.mem u a.a_cb_known || Uid_set.mem u a.a_ab_uids
        | None ->
          invalid_arg
            (Printf.sprintf
               "Runtime.proceed_with_acks: no wedge ack from site %d (group g%d view %d \
                attempt %d)"
               s (gi g.gid) g.view.View.view_id c.c_attempt)
      in
      if has t.my_site then t.my_site
      else (
        match List.find_opt has c.c_sites with
        | Some s -> s
        | None -> t.my_site (* unreachable: needed means someone has it *))
    in
    let by_holder = Hashtbl.create 4 in
    List.iter
      (fun u ->
        let h = holder_of u in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_holder h) in
        Hashtbl.replace by_holder h (u :: cur))
      needed;
    let local_bodies =
      match Hashtbl.find_opt by_holder t.my_site with
      | Some uids -> List.filter_map (fun u -> body_for t g u) uids
      | None -> []
    in
    Hashtbl.remove by_holder t.my_site;
    c.c_fetched <- local_bodies;
    let remote_holders = Hashtbl.fold (fun s uids acc -> (s, uids) :: acc) by_holder [] in
    if remote_holders = [] then finish_change t g c
    else begin
      c.c_fetch_wait <- List.map fst remote_holders;
      List.iter
        (fun (s, uids) ->
          send_frame t ~dst:s
            (Proto.Fetch { group = g.gid; view_id = g.view.View.view_id; attempt = c.c_attempt; uids }))
        remote_holders
    end

and body_for t g u =
  match Uid_map.find_opt u g.store with
  | Some s -> Some s
  | None -> (
    match Total.payload_of g.total u with
    | Some body -> Some (Proto.Sab { uid = u; prio = (0, 0); body })
    | None ->
      Trace.emitf t.tracer ~category:"view" "body_for: missing %a" pp_uid u;
      None)

and on_fetch t ~src g ~view_id ~attempt uids =
  let bodies = List.filter_map (fun u -> body_for t g u) uids in
  send_frame t ~dst:src
    (Proto.Fetch_reply { group = g.gid; view_id; attempt; from_site = t.my_site; bodies })

and on_fetch_reply t g ~from_site ~attempt bodies =
  match g.change with
  | Some c when c.c_attempt = attempt && List.mem from_site c.c_fetch_wait ->
    c.c_fetch_wait <- List.filter (fun s -> s <> from_site) c.c_fetch_wait;
    c.c_fetched <- c.c_fetched @ bodies;
    if c.c_fetch_wait = [] then finish_change t g c
  | Some _ | None -> ()

and finish_change t g c =
  (* Validate joins, prune stale events, build the new view. *)
  let validate joiner cred =
    match g.join_validator with
    | Some (vp, f) when proc_alive vp -> f joiner cred
    | Some _ | None -> true
  in
  (* A suspicion of a member whose site ACKED this very flush is stale
     by contradiction — the site is answering us right now.  (Typical
     source: a partition-era report delivered after the heal.)  Dropping
     it keeps a provably-present member; if the reporter still cannot
     reach the site it will re-report and a later flush can evict.
     Certain deaths are never second-guessed. *)
  let batch =
    List.filter
      (function
        | Ev_fail (p, false) -> not (Hashtbl.mem c.c_acks p.Addr.site)
        | _ -> true)
      c.c_batch
  in
  (* Members this commit removes, computed over the whole batch up
     front so GBCAST filtering below can consult it regardless of event
     order within the batch. *)
  let removed =
    List.filter_map
      (function
        | (Ev_leave p | Ev_fail (p, _)) when View.is_member g.view p -> Some p
        | _ -> None)
      batch
  in
  (* A queued user GBCAST whose originating site no longer hosts a
     surviving member must not ride this flush: delivering it would
     hand the group a message from a sender AFTER the view change that
     evicted it.  (The grain is per-site because a uid names only the
     originating site; with one group member per site — the only
     configuration the simulator drives — this is exact.) *)
  let origin_survives (uid : Types.uid) =
    List.exists
      (fun (m : Addr.proc) ->
        m.Addr.site = uid.Types.usite && not (List.exists (Addr.equal_proc m) removed))
      g.view.View.members
  in
  let events, gb_bodies, refused =
    List.fold_left
      (fun (evs, gbs, refs) ev ->
        match ev with
        | Ev_join (p, cred) ->
          if View.is_member g.view p then (evs, gbs, refs)
          else if validate p cred then (evs @ [ View.Member_joined p ], gbs, refs)
          else (evs, gbs, refs @ [ p ])
        | Ev_leave p ->
          if View.is_member g.view p then (evs @ [ View.Member_left p ], gbs, refs) else (evs, gbs, refs)
        | Ev_fail (p, _) ->
          if View.is_member g.view p then (evs @ [ View.Member_failed p ], gbs, refs)
          else (evs, gbs, refs)
        | Ev_gb (uid, body) ->
          if origin_survives uid then (evs, gbs @ [ (uid, body) ], refs) else (evs, gbs, refs))
      ([], [], []) batch
  in
  List.iter
    (fun (p : Addr.proc) ->
      send_frame t ~dst:p.Addr.site
        (Proto.Join_refused { group = g.gid; joiner = p; reason = "join refused by validator" }))
    refused;
  (* Recompute finalization data (kept from proceed_with_acks via
     re-derivation: we stored only fetched bodies; recompute the rest). *)
  let commit = build_commit t g c events gb_bodies in
  let dests =
    List.sort_uniq compare
      (c.c_sites
      @ List.filter_map
          (function View.Member_joined (p : Addr.proc) -> Some p.Addr.site | _ -> None)
          events)
  in
  c.c_committed <- true;
  Trace.emitf t.tracer ~category:"view" "commit g%d v%d: %d events %d gb" (gi g.gid)
    g.view.View.view_id (List.length events) (List.length gb_bodies);
  Stats.Counter.incr t.ctrs "prim.gbcast";
  List.iter (fun dst -> send_frame t ~dst commit) dests

and build_commit t g c events gb_bodies =
  (* Re-derive the stabilization decisions from the acks (deterministic
     given [c], so this agrees with what [proceed_with_acks] fetched)
     and pair them with the bodies: local store/engine plus fetched,
     with the Sab priorities fixed to the final values. *)
  let r = resolve_acks ~gid:(gi g.gid) ~view_id:g.view.View.view_id c in
  let final_of u =
    match Hashtbl.find_opt r.r_final u with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf
           "Runtime.build_commit: no final priority for uid %d.%d (group g%d view %d attempt \
            %d; %d finalized)"
           u.usite u.useq (gi g.gid) g.view.View.view_id c.c_attempt
           (List.length r.r_ab_finalize))
  in
  let fetched = c.c_fetched in
  let lookup u =
    match List.find_opt (fun s -> uid_equal (Proto.stored_uid s) u) fetched with
    | Some s -> Some s
    | None -> body_for t g u
  in
  let stab_cb = List.filter_map lookup r.r_missing_cb in
  let stab_ab =
    List.filter_map
      (fun u ->
        match lookup u with
        | Some (Proto.Sab { uid; body; _ }) -> Some (Proto.Sab { uid; prio = final_of uid; body })
        | Some (Proto.Scb _) | None -> None)
      r.r_ab_missing
  in
  (* The successor id derives from the committing attempt.  Attempt and
     view advance in lockstep when changes are uncontested, so this is
     the familiar [view_id + 1]; under contention a takeover runs at a
     strictly higher attempt, so a stale coordinator that still manages
     to commit (it cannot be fenced behind a partition) produces a view
     id its successor never reuses — stale-side state is then
     detectably old instead of colliding with the primary's. *)
  let new_view = View.apply ~id:(c.c_attempt + 1) g.view events in
  Proto.Commit
    {
      group = g.gid;
      view_id = g.view.View.view_id;
      attempt = c.c_attempt;
      coord_site = t.my_site;
      coord_epoch = Endpoint.epoch (endpoint t);
      stabilize = stab_cb @ stab_ab;
      ab_finalize = r.r_ab_finalize;
      ab_drop = r.r_ab_drop;
      events;
      new_view;
      gname = g.gname;
      gb_bodies;
    }

and on_commit t ~src g_opt frame =
  match frame with
  | Proto.Commit
      { group; view_id; attempt; coord_site; coord_epoch; stabilize; ab_finalize; ab_drop;
        events; new_view; gname; gb_bodies; _ } -> (
    let install g_old =
      (* 1. Fill gaps. *)
      (match g_old with
      | Some g ->
        List.iter
          (fun s ->
            match s with
            | Proto.Scb { uid; rank; vt; body } ->
              if not (Causal.seen g.causal uid) then begin
                match vt with
                | Some l when rank >= 0 ->
                  Causal.receive g.causal ~uid ~rank ~vt:(Vsync_util.Vclock.of_list l) body
                | Some _ | None -> Causal.receive_fifo g.causal ~uid body
              end
            | Proto.Sab { uid; prio; body } ->
              Total.commit g.total ~uid prio;
              Total.add_payload g.total ~uid body)
          stabilize;
        List.iter (fun (uid, prio) -> Total.commit g.total ~uid prio) ab_finalize;
        List.iter (fun uid -> try Total.drop g.total ~uid with Invalid_argument _ -> ()) ab_drop;
        (* 2. Deliver everything of the retiring view. *)
        let old_members = local_members t g in
        let deliver uid body =
          Trace.emitf t.tracer ~category:"deliver" "flush g%d %a" (gi g.gid) pp_uid uid;
          trace_proto t (fun () ->
              Obs_event.Deliver
                { site = t.my_site; group = gi g.gid; usite = uid.usite; useq = uid.useq });
          (* Delivery at the synchronization point is also the moment the
             message's protocol state is discharged: report it stable so
             per-uid timelines complete without a Stable round. *)
          trace_proto t (fun () ->
              Obs_event.Stabilize { site = t.my_site; usite = uid.usite; useq = uid.useq });
          deliver_to_members t g body ~members:old_members
        in
        List.iter (fun (u, b) -> deliver u b) (Causal.force_drain g.causal);
        List.iter (fun (u, _, b) -> deliver u b) (Total.drain g.total);
        (* Anything still pending is uncommitted garbage; discard. *)
        List.iter
          (fun (u, _, _, _) -> try Total.drop g.total ~uid:u with Invalid_argument _ -> ())
          (Total.pending g.total)
      | None -> ());
      (* 3. Install the view. *)
      let old_sites = match g_old with Some g -> View.sites g.view | None -> [] in
      let g =
        match g_old with
        | Some g -> g
        | None ->
          let g = make_group t ~gid:group ~gname ~view:new_view in
          Hashtbl.replace t.groups (gi group) g;
          g
      in
      (* Resolve this site's own change record: if it was the one just
         committed, its batch is consumed; if it was a different
         (superseded) change, requeue its batch for another round. *)
      (match g.change with
      | Some c when c.c_committed -> g.change <- None
      | Some c ->
        g.pending_events <- Deque.prepend c.c_batch g.pending_events;
        g.change <- None
      | None -> ());
      (* Every member site can answer directory queries for its groups,
         so the name outlives the creator site. *)
      if not (String.equal gname "") then
        dir_set t gname (group, View.sites new_view);
      g.view <- new_view;
      g.causal <- Causal.create ~n_ranks:(View.n_members new_view) ();
      g.total <- Total.create ~site:t.my_site ();
      g.store <- Uid_map.empty;
      g.wedge <- None;
      g.minority <- None;
      g.last_commit <- Some frame;
      let new_sites = View.sites new_view in
      let new_site_set = Int_set.of_list new_sites in
      trace_proto t (fun () ->
          Obs_event.View_install
            {
              site = t.my_site;
              group = gi group;
              view_id = new_view.View.view_id;
              nsites = List.length new_sites;
              mhash =
                Hashtbl.hash
                  (List.map
                     (fun (m : Addr.proc) -> (m.Addr.site, m.Addr.idx))
                     new_view.View.members);
            });
      g.suspects <- Int_set.inter g.suspects new_site_set;
      (* Failure is sticky until a rejoin: record processes this change
         removed as failed, and clear any that just (re)joined. *)
      g.failed_procs <-
        List.fold_left
          (fun acc ev ->
            match ev with
            | View.Member_failed p -> p :: acc
            | View.Member_joined p -> List.filter (fun q -> not (Addr.equal_proc q p)) acc
            | View.Member_left _ -> acc)
          g.failed_procs events;
      (* Old-view unstable records of this group are settled by the
         flush. *)
      List.iter
        (fun uid ->
          match Hashtbl.find_opt t.unstables uid with
          | None -> ()
          | Some (u : unstable) -> (
            Hashtbl.remove t.unstables uid;
            match u.u_owner with
            | Some p when p.palive ->
              p.outstanding <- Uid_set.remove uid p.outstanding;
              maybe_wake_flushers p
            | Some _ | None -> ()))
        (grp_index_take t.unstable_by_group (gi group));
      List.iter
        (fun u -> Hashtbl.remove t.ab_collects u)
        (grp_index_take t.collects_by_group (gi group));
      (* The flush settled every outstanding ABCAST round of the old
         view; the origination pipeline restarts empty in the new one
         (queued sends dispatch below, before the blocked replay, which
         preserves acceptance order). *)
      g.ab_inflight <- 0;
      dispatch_abcasts t g;
      remember_contacts t group (View.sites new_view);
      (* Track membership on local procs. *)
      List.iter
        (fun ev ->
          match ev with
          | View.Member_joined p when p.Addr.site = t.my_site -> (
            match find_proc t p with
            | Some pr ->
              if not (List.mem (gi group) pr.memberships) then
                pr.memberships <- gi group :: pr.memberships
            | None -> ())
          | View.Member_left p | View.Member_failed p -> (
            if p.Addr.site = t.my_site then
              match Hashtbl.find_opt t.procs p.Addr.idx with
              | Some pr -> pr.memberships <- List.filter (fun g' -> g' <> gi group) pr.memberships
              | None -> ())
          | View.Member_joined _ -> ())
        events;
      (* 4. Deliver user GBCASTs at the synchronization point. *)
      List.iter
        (fun (uid, body) ->
          Trace.emitf t.tracer ~category:"deliver" "gbcast g%d %a" (gi group) pp_uid uid;
          trace_proto t (fun () ->
              Obs_event.Deliver
                { site = t.my_site; group = gi group; usite = uid.usite; useq = uid.useq });
          (* A GBCAST is stable the instant it commits: delivered at the
             synchronization point, everywhere, with nothing left to
             retransmit. *)
          trace_proto t (fun () ->
              Obs_event.Stabilize { site = t.my_site; usite = uid.usite; useq = uid.useq });
          deliver_to_members t g body ~members:(local_members t g))
        gb_bodies;
      (* GBCASTs of ours this commit delivered are done; the rest are
         re-routed below once the new view's coordinator is known. *)
      g.gb_outstanding <-
        List.filter
          (fun (u, _) -> not (List.exists (fun (u', _) -> u' = u) gb_bodies))
          g.gb_outstanding;
      (* 4b. Open reply collections waiting on a removed member will
         never hear from it: discount it now. *)
      List.iter
        (fun ev ->
          match ev with
          | View.Member_failed p | View.Member_left p ->
            let open_sessions = Hashtbl.fold (fun _ sess acc -> sess :: acc) t.sessions [] in
            List.iter
              (fun sess -> note_failed_responder t ~session:sess.sess_id ~responder:p)
              open_sessions
          | View.Member_joined _ -> ())
        events;
      (* 5. Monitors and waiters.  The view event is scheduled through
         the same intra-site hop as message deliveries so that every
         local process observes the retiring view's deliveries BEFORE
         the membership change — same order at every member. *)
      let intra = Backend.intra_site_us t.fab.fbk in
      if events <> [] then
        List.iter
          (fun (p, f) ->
            if proc_alive p && View.is_member new_view p.addr then
              ignore
                (Backend.schedule t.bk ~delay:intra (fun () ->
                     if proc_alive p then Sched.spawn p.sched (fun () -> f new_view events))))
          g.g_monitors;
      List.iter
        (fun ev ->
          match ev with
          | View.Member_joined p when p.Addr.site = t.my_site -> (
            match jw_take t ~gid_int:(gi group) ~idx:p.Addr.idx with
            | Some iv -> Ivar.fill iv (Ok ())
            | None -> ())
          | View.Member_left p when p.Addr.site = t.my_site -> (
            match Hashtbl.find_opt t.leave_waiters (gi group, p.Addr.idx) with
            | Some iv ->
              Hashtbl.remove t.leave_waiters (gi group, p.Addr.idx);
              Ivar.fill iv ()
            | None -> ())
          | View.Member_joined _ | View.Member_left _ | View.Member_failed _ -> ())
        events;
      (* 6. Failure detector subscriptions follow the membership. *)
      if local_members t g <> [] then begin
        let old_site_set = Int_set.of_list old_sites in
        List.iter (fun s -> if not (Int_set.mem s old_site_set) then mon_acquire t s) new_sites;
        List.iter (fun s -> if not (Int_set.mem s new_site_set) then mon_release t s) old_sites
      end;
      (* 7. Unwedge: rerun blocked operations in order, then replay any
         frames that arrived for the new view early.  Re-origination
         goes back through [origin_multicast], whose failed-sender check
         discards sends queued by a member this very commit removed as
         failed — replaying those would re-inject them as client relays
         of the new view. *)
      let blocked = List.rev g.blocked_sends in
      g.blocked_sends <- [];
      List.iter (fun (owner, mode, body) -> origin_multicast t g mode ~owner body) blocked;
      replay_held t (gi group);
      (* 8. A group whose membership is empty dissolves. *)
      let drop_ab_queue () =
        (* Queued ABCASTs die with the group copy; release any flusher
           waiting on their origination. *)
        Queue.iter (fun (owner, _) -> init_done owner) g.ab_queue;
        Queue.clear g.ab_queue
      in
      if View.n_members new_view = 0 then begin
        drop_ab_queue ();
        List.iter (fun s -> mon_release t s) new_sites;
        Hashtbl.remove t.groups (gi group);
        Hashtbl.remove t.contacts (gi group)
      end
      else begin
        (* A suspicion that survived the change means the matching
           eviction report went missing — e.g. it was routed to a
           coordinator that a partition (or its death) swallowed.
           Re-propose it against the new view, so failure reports
           converge to an eviction no matter how many are lost in
           flight; duplicates collapse in the coordinator's queue. *)
        List.iter
          (fun (m : Addr.proc) ->
            if m.Addr.site <> t.my_site && Int_set.mem m.Addr.site g.suspects then
              route_event t g (Ev_fail (m, false)))
          new_view.View.members;
        (* Same convergence story for our undelivered GBCASTs: the
           request may be parked at a coordinator this change evicted
           (or a partition swallowed), so re-issue it against the new
           view until some commit carries it.  Duplicates collapse by
           uid in the coordinator's queue. *)
        List.iter (fun (uid, body) -> route_event t g (Ev_gb (uid, body))) (List.rev g.gb_outstanding);
        if i_am_coord t g then maybe_start_change t g
        else if not (Deque.is_empty g.pending_events) then begin
          (* Leadership moved with the new view: hand queued events to
             the coordinator that can actually run them. *)
          let evs = Deque.to_list g.pending_events in
          g.pending_events <- Deque.empty;
          List.iter (fun ev -> route_event t g ev) evs
        end;
        (* A site left without any local member is out of the group:
           drop its copy of the state (it will no longer receive
           commits). *)
        if local_members t g = [] then begin
          drop_ab_queue ();
          List.iter (fun s -> mon_release t s) new_sites;
          Hashtbl.remove t.groups (gi group)
        end
      end
    in
    match g_opt with
    | Some g when view_id = g.view.View.view_id ->
      (* Fence the commit against the wedge actually in force here.  A
         coordinator the flush has moved past (its wedge superseded by
         a higher-precedence one) must not finalize: accepting its
         commit while the current coordinator is still collecting acks
         forks the view history.  Acceptable commits: from the exact
         coordinator we are wedged under — same attempt, same site,
         and the same endpoint epoch, so a crashed-and-restarted
         coordinator's ghost commit is rejected; from the wedge-holder
         site itself rebroadcasting a dead predecessor's commit (the
         already-committed recovery path); or carrying an attempt that
         dominates our wedge outright. *)
      let accept =
        match g.wedge with
        | None -> true
        | Some w ->
          if attempt = w.w_attempt && coord_site = w.w_coord then coord_epoch = w.w_epoch
          else if src = w.w_coord then true
          else attempt > w.w_attempt || (attempt = w.w_attempt && coord_site < w.w_coord)
      in
      if accept then install (Some g)
      else
        Trace.emitf t.tracer ~category:"view" "fenced stale commit g%d v%d a%d from s%d"
          (gi group) view_id attempt src
    | Some _ -> () (* stale or repeated commit *)
    | None ->
      (* Joiner site (or rebroadcast): only meaningful if we host one of
         the new members. *)
      if List.exists (fun (m : Addr.proc) -> m.Addr.site = t.my_site) new_view.View.members
      then install None)
  | _ -> invalid_arg "on_commit: not a commit frame"

and make_group t ~gid ~gname ~view =
  ignore t;
  {
    gid;
    gname;
    view;
    causal = Causal.create ~n_ranks:(View.n_members view) ();
    total = Total.create ~site:t.my_site ();
    store = Uid_map.empty;
    wedge = None;
    blocked_sends = [];
    ab_queue = Queue.create ();
    ab_inflight = 0;
    ab_cwnd = max 1 t.cfg.ab_window;
    ab_grow = 0;
    ab_cooldown = false;
    g_monitors = [];
    join_validator = None;
    suspects = Int_set.empty;
    failed_procs = [];
    pending_events = Deque.empty;
    change = None;
    last_attempt = 0;
    last_commit = None;
    minority = None;
    gb_outstanding = [];
  }

and replay_held t gid_int =
  match Hashtbl.find_opt t.held gid_int with
  | None -> ()
  | Some frames ->
    Hashtbl.remove t.held gid_int;
    List.iter (fun (src, f) -> handle_group_frame t ~src f) (List.rev frames)

and hold_frame t ~src gid_int frame =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.held gid_int) in
  Hashtbl.replace t.held gid_int ((src, frame) :: cur)

(* --- failure handling --- *)

and on_site_down ?(certain = false) t s =
  Trace.emitf t.tracer ~category:"fail" "site %d suspected down (observed at s%d)" s t.my_site;
  List.iter (fun w -> w (`Down s)) t.site_watchers;
  (* Purge the dead site from name-resolution hints FIRST: failing the
     open sessions resumes their callers, whose retries must see fresh
     hints. *)
  Hashtbl.iter
    (fun gid_int sites ->
      (* One filtering pass instead of a membership scan followed by a
         second filter scan. *)
      let remaining = List.filter (( <> ) s) sites in
      if List.compare_lengths remaining sites <> 0 then
        Hashtbl.replace t.contacts gid_int remaining)
    (Hashtbl.copy t.contacts);
  Hashtbl.iter
    (fun name (gid, sites) ->
      let remaining = List.filter (( <> ) s) sites in
      if List.compare_lengths remaining sites <> 0 then
        if remaining = [] then dir_remove t name
        else Hashtbl.replace t.dir name (gid, remaining))
    (Hashtbl.copy t.dir);
  session_site_down t s;
  let groups = Hashtbl.fold (fun _ g acc -> g :: acc) t.groups [] in
  List.iter
    (fun g ->
      (* A certain death (incarnation change) is always re-reported,
         even for a site already under suspicion: the earlier
         suspicion-based report may have been lost in flight (routed to
         a coordinator across a partition), and certainty additionally
         shrinks the primary-partition quorum base. *)
      if List.mem s (View.sites g.view) && (certain || not (Int_set.mem s g.suspects)) then begin
        g.suspects <- Int_set.add s g.suspects;
        let victims = View.members_at_site g.view s in
        if i_am_coord t g then begin
          List.iter (fun v -> enqueue_event t g (Ev_fail (v, certain))) victims;
          (* A change in flight that involved the dead site must restart. *)
          match g.change with
          | Some c when List.mem s c.c_sites -> restart_change t g
          | Some _ -> ()
          | None -> maybe_start_change t g
        end
        else begin
          (* Tell the acting coordinator (it may not share our failure
             detector's view yet). *)
          List.iter (fun v -> route_event t g (Ev_fail (v, certain))) victims;
          (* If the dead site was the coordinator, we may have just
             become it. *)
          if i_am_coord t g then begin
            List.iter (fun v -> enqueue_event t g (Ev_fail (v, certain))) victims;
            maybe_start_change t g
          end
        end
      end)
    groups

and on_site_up t s =
  Trace.emitf t.tracer ~category:"fail" "site %d announced recovery" s;
  List.iter (fun w -> w (`Up s)) t.site_watchers

(* The ping detector heard back from a site it had declared down: the
   suspicion was about reachability, not death.  Retract it wherever it
   has not yet been acted on — a suspicion that already rode a commit
   is final (the eviction is part of the view history; the site
   rejoins), but one still pending must stop circulating, or the
   install-time re-propose keeps the group churning empty view changes
   forever after the network heals. *)
and on_site_recovered t s =
  Trace.emitf t.tracer ~category:"fail" "site %d reachable again (observed at s%d)" s t.my_site;
  List.iter (fun w -> w (`Up s)) t.site_watchers;
  let groups = Hashtbl.fold (fun _ g acc -> g :: acc) t.groups [] in
  List.iter
    (fun g ->
      if List.mem s (View.sites g.view) && Int_set.mem s g.suspects then
        match g.minority with
        | Some m -> minority_recover t g m ~site:s
        | None ->
          g.suspects <- Int_set.remove s g.suspects;
          let drop ev = match ev with Ev_fail (p, false) -> p.Addr.site <> s | _ -> true in
          g.pending_events <-
            Deque.of_list (List.filter drop (Deque.to_list g.pending_events));
          (* Coordinatorship may have moved back to the recovered site:
             hand it any events parked here. *)
          if (not (i_am_coord t g)) && not (Deque.is_empty g.pending_events) then begin
            let evs = Deque.to_list g.pending_events in
            g.pending_events <- Deque.empty;
            List.iter (fun ev -> route_event t g ev) evs
          end)
    groups

(* --- frame handling --- *)

and handle_frame t ~src frame =
  if t.running then begin
    if Trace.enabled t.tracer then
      Trace.emitf t.tracer ~category:"recv" "s%d<-s%d %a" t.my_site src Proto.pp frame;
    emit_frame_event t ~peer:src ~rx:true frame;
    match frame with
    | Proto.Ptp { dest; body } -> (
      if Message.get_bool body f_is_reply = Some true then on_reply_body t body
      else
        match find_proc t dest with
        | Some p ->
          let want = Option.value ~default:0 (Message.get_int body f_want) in
          if want <> 0 then register_obligation t ~responder:p ~body;
          dispatch_to_proc t p body
        | None -> (
          (* Destination is gone; a caller waiting on it must not hang. *)
          match Message.session body, Message.sender body, Message.get_int body f_want with
          | Some session, Some caller, Some w when w <> 0 ->
            if caller.Addr.site = t.my_site then
              note_failed_responder t ~session ~responder:dest
            else
              send_frame t ~dst:caller.Addr.site
                (Proto.Obligation_failed { session; responder = dest })
          | _ -> ()))
    | Proto.Obligation_failed { session; responder } ->
      note_failed_responder t ~session ~responder
    | Proto.Dir_query { name; qid } ->
      let info =
        match Hashtbl.find_opt t.dir name with
        | Some (gid, sites) -> Some (name, gid, sites)
        | None -> None
      in
      send_frame t ~dst:src (Proto.Dir_reply { qid; info })
    | Proto.Dir_reply { qid; info } -> (
      match Hashtbl.find_opt t.dir_queries qid with
      | None -> ()
      | Some (awaiting, iv) -> (
        match info with
        | Some (name, gid, sites) ->
          Hashtbl.remove t.dir_queries qid;
          dir_set t name (gid, sites);
          remember_contacts t gid sites;
          Ivar.fill_if_empty iv (Some (gid, sites)) |> ignore
        | None ->
          decr awaiting;
          if !awaiting <= 0 then begin
            Hashtbl.remove t.dir_queries qid;
            Ivar.fill_if_empty iv None |> ignore
          end))
    | Proto.Dir_update { name; group; sites } ->
      dir_set t name (group, sites);
      remember_contacts t group sites
    | Proto.Site_hello { site = s; _ } -> on_site_up t s
    | Proto.View_probe { group; view_id = _; from_site } ->
      (* Answer with the view we hold (or -1 for no state at all): a
         minority-wedged prober uses the answer to tell a false alarm
         from an eviction.  Stateless on this side — safe even if this
         site dropped the group long ago. *)
      let vid = match group_of t group with Some g -> g.view.View.view_id | None -> -1 in
      send_frame t ~dst:from_site (Proto.View_probe_reply { group; view_id = vid })
    | Proto.View_probe_reply { group; view_id = peer_vid } -> (
      match group_of t group with
      | None -> ()
      | Some g ->
        if peer_vid > g.view.View.view_id then
          (* The primary partition installed views without us: this copy
             is dead; discard it so members can rejoin fresh. *)
          partition_teardown t g ~new_view_id:peer_vid
        else (
          match g.minority with
          | Some m when peer_vid = g.view.View.view_id -> minority_recover t g m ~site:src
          | Some _ | None -> ()))
    | Proto.Relay { group; mode; body; session; caller } -> (
      match group_of t group with
      | Some g ->
        (match session with
        | Some sid ->
          send_frame t ~dst:caller.Addr.site
            (Proto.Relay_info { session = sid; responders = g.view.View.members })
        | None -> ());
        origin_multicast t g mode ~owner:None body
      | None -> (
        (* Stale contact: report an empty responder set so the caller
           fails fast and can retry after a fresh lookup. *)
        match session with
        | Some sid ->
          send_frame t ~dst:caller.Addr.site (Proto.Relay_info { session = sid; responders = [] })
        | None -> ()))
    | Proto.Relay_info { session; responders } -> (
      match Hashtbl.find_opt t.sessions session with
      | Some sess ->
        if responders = [] then close_session t sess All_failed
        else note_responders t sess responders
      | None -> ())
    | Proto.Deliver_ack { uid; _ } -> on_deliver_ack t ~src uid
    | Proto.Stable { group; uid } -> on_stable t group uid
    | Proto.Cb_data _ | Proto.Ab_data _ | Proto.Ab_prio _ | Proto.Ab_commit _
    | Proto.Join_req _ | Proto.Join_refused _ | Proto.Leave_req _ | Proto.Proc_failed _
    | Proto.Gb_req _ | Proto.Wedge _ | Proto.Wedge_ack _ | Proto.Fetch _
    | Proto.Fetch_reply _ | Proto.Commit _ ->
      handle_group_frame t ~src frame
  end

and handle_group_frame t ~src frame =
  let with_group gid view_id k =
    match group_of t gid with
    | Some g ->
      if view_id = g.view.View.view_id then
        if g.wedge <> None then () (* wedged: post-ack data is dropped; the flush stabilizes *)
        else k g
      else if view_id > g.view.View.view_id then hold_frame t ~src (gi gid) frame
      else if not (List.mem src (View.sites g.view)) then
        (* Stale data from a site outside the current view: a stale
           coordinator that managed to commit a divergent (lower-id)
           view before the primary moved past it, still sending under
           the dead lineage.  Tell it which view is current; the reply
           triggers its partition-eviction path and it rejoins fresh. *)
        send_frame t ~dst:src
          (Proto.View_probe_reply { group = gid; view_id = g.view.View.view_id })
      (* else: stale view from a member, drop (normal retransmit tail) *)
    | None ->
      (* No state for this group: hold the frame only when a local join
         is in flight (new-view data racing its Commit here).  Without a
         joiner nothing will ever replay the buffer — e.g. a restarted
         site whose dead member is still listed in the senders' view
         would accumulate frames without bound. *)
      if jw_any t (gi gid) then hold_frame t ~src (gi gid) frame
  in
  match frame with
  | Proto.Cb_data { group; view_id; uid; rank; vt; body } ->
    with_group group view_id (fun g ->
        (* A duplicate (retransmit, or a replay of something already
           stabilized and GC'd) must not re-create a store copy the
           [Stable] flow already collected. *)
        if not (Causal.seen g.causal uid) then begin
          g.store <- Uid_map.add uid (Proto.Scb { uid; rank; vt; body }) g.store;
          (match vt with
          | Some l when rank >= 0 ->
            Causal.receive g.causal ~uid ~rank ~vt:(Vsync_util.Vclock.of_list l) body
          | Some _ | None -> Causal.receive_fifo g.causal ~uid body);
          drain_group t g
        end)
  | Proto.Ab_data { group; view_id; uid; body } ->
    with_group group view_id (fun g ->
        let prio = Total.intake g.total ~uid body in
        send_frame t ~dst:src (Proto.Ab_prio { group; view_id; uid; prio }))
  | Proto.Ab_prio { group; view_id; uid; prio } ->
    with_group group view_id (fun _g -> on_ab_prio t ~src uid prio)
  | Proto.Ab_commit { group; view_id; uid; prio } ->
    with_group group view_id (fun g ->
        Total.commit g.total ~uid prio;
        drain_group t g)
  | Proto.Join_req { group; joiner; credentials } -> (
    match group_of t group with
    | Some g -> route_event t g (Ev_join (joiner, credentials))
    | None ->
      send_frame t ~dst:joiner.Addr.site
        (Proto.Join_refused { group; joiner; reason = "no such group at contact site" }))
  | Proto.Join_refused { group; joiner; reason } -> (
    if joiner.Addr.site = t.my_site then
      (* A "no such group" refusal is authoritative evidence the
         refusing site holds no copy, so stop offering it as a
         contact: after a partition teardown both evicted sites may
         still list each other in their (stale) hints, and without the
         purge a rejoin retry would bounce off the same dead contact
         forever.  With the hint gone, the retry's lookup falls back
         to a directory query and finds the primary.  Other refusals
         (validator, minority wedge) come from sites that DO hold the
         group — their hints stay. *)
      (if reason = "no such group at contact site" then begin
         (match Hashtbl.find_opt t.contacts (gi group) with
         | Some sites -> (
           match List.filter (( <> ) src) sites with
           | [] -> Hashtbl.remove t.contacts (gi group)
           | remaining -> Hashtbl.replace t.contacts (gi group) remaining)
         | None -> ());
         dir_drop_site t ~gid_int:(gi group) ~site:src
       end);
      match jw_take t ~gid_int:(gi group) ~idx:joiner.Addr.idx with
      | Some iv ->
        (* Frames held in anticipation of the join have no replayer
           now (unless another local joiner is still waiting). *)
        if group_of t group = None && not (jw_any t (gi group)) then
          Hashtbl.remove t.held (gi group);
        Ivar.fill iv (Error reason)
      | None -> ())
  | Proto.Leave_req { group; who } -> (
    match group_of t group with
    | Some g ->
      if List.mem src (View.sites g.view) then route_event t g (Ev_leave who)
      else
        send_frame t ~dst:src
          (Proto.View_probe_reply { group; view_id = g.view.View.view_id })
    | None -> ())
  | Proto.Proc_failed { group; who; certain } -> (
    match group_of t group with
    | Some g ->
      (* Suspicion reports are only credible from sites inside the
         current view: a site evicted by a partition keeps pinging
         with stale reachability state, and accepting its suspicions
         after its eviction lets a dead lineage evict live members of
         the primary component.  CERTAIN reports (the victim's own
         site witnessed the death) are ground truth and stay welcome
         from anyone — an old coordinator that just left the view
         still forwards queued kill reports to its successor. *)
      if certain || List.mem src (View.sites g.view) then route_event t g (Ev_fail (who, certain))
      else
        send_frame t ~dst:src
          (Proto.View_probe_reply { group; view_id = g.view.View.view_id })
    | None -> ())
  | Proto.Gb_req { group; uid; body } -> (
    match group_of t group with
    | Some g ->
      if List.mem src (View.sites g.view) then route_event t g (Ev_gb (uid, body))
      else
        (* A GBCAST request from a site outside the current view: the
           sender was evicted while its request sat in a retransmit
           queue (partition).  Honouring it would deliver a message
           from the evicted member AFTER the view change that removed
           it — exactly what the flush exists to forbid.  Point the
           sender at the current view instead; the reply triggers its
           partition-eviction path and it rejoins fresh. *)
        send_frame t ~dst:src
          (Proto.View_probe_reply { group; view_id = g.view.View.view_id })
    | None -> ())
  | Proto.Wedge { group; view_id; attempt; coord_site; coord_epoch } -> (
    match group_of t group with
    | Some g -> on_wedge t ~src g ~view_id ~attempt ~coord_site ~coord_epoch
    | None -> ())
  | Proto.Wedge_ack { group; attempt; from_site; cb_known; ab_report; ab_counter; already_committed; _ } -> (
    match group_of t group with
    | Some g ->
      on_wedge_ack t g ~from_site ~attempt
        (* The wire carries plain lists; index them once on receipt so
           the flush reconciliation runs on sets. *)
        {
          a_cb_known = Uid_set.of_list cb_known;
          a_ab_uids =
            Uid_set.of_list (List.map (fun (r : Proto.ab_report) -> r.Proto.ab_uid) ab_report);
          a_ab_report = ab_report;
          a_ab_counter = ab_counter;
          a_already = already_committed;
        }
    | None -> ())
  | Proto.Fetch { group; view_id; attempt; uids } -> (
    match group_of t group with
    | Some g -> on_fetch t ~src g ~view_id ~attempt uids
    | None -> ())
  | Proto.Fetch_reply { group; attempt; from_site; bodies; _ } -> (
    match group_of t group with
    | Some g -> on_fetch_reply t g ~from_site ~attempt bodies
    | None -> ())
  | Proto.Commit { group; _ } -> on_commit t ~src (group_of t group) frame
  | _ -> invalid_arg "handle_group_frame: not a group frame"

and on_reply_body t body =
  match Message.session body, Message.sender body with
  | Some session, Some responder -> (
    match Hashtbl.find_opt t.sessions session with
    | None -> () (* superfluous/duplicate replies are discarded silently *)
    | Some sess ->
      clear_obligation t ~responder ~session;
      let null = Message.get_bool body f_null = Some true in
      note_reply t sess ~responder ~body ~null)
  | _ -> ()

(* ==================================================================
   Construction and lifecycle
   ================================================================== *)

let wire_endpoint t =
  let ep =
    Endpoint.create ~config:t.cfg.endpoint t.fab.ep_fabric ~site:t.my_site ~size:Proto.size ()
  in
  t.ep <- Some ep;
  Endpoint.set_tracer ep (Trace.obs t.tracer);
  Endpoint.set_receiver ep (fun ~src frames ->
      (* One arriving packet can carry several frames (coalescing).  The
         fixed per-interrupt dispatch cost is charged once per packet;
         every frame still pays its byte-proportional handling cost.
         Stability bookkeeping is interrupt-level work, not a protocol
         step: a token cost so ack storms do not dominate the CPU
         accounting. *)
      let base_charged = ref false in
      let cost =
        List.fold_left
          (fun acc frame ->
            match frame with
            | Proto.Deliver_ack _ | Proto.Stable _ -> acc + 500
            | f ->
              let base = if !base_charged then 0 else t.cfg.cpu_recv_us in
              base_charged := true;
              acc + cpu_cost t base (Proto.size f))
          0 frames
      in
      on_cpu t cost (fun () -> List.iter (fun frame -> handle_frame t ~src frame) frames));
  Endpoint.set_failure_handler ep (fun s -> if t.running then on_site_down t s);
  Endpoint.set_recovery_handler ep (fun s -> if t.running then on_site_recovered t s);
  (* A peer that crashed and revived inside the suspicion window never
     trips the ping detector, but everything we know about its old
     incarnation (members, channels, unstable acks) is dead state: treat
     the incarnation change as a site failure.  The revived site rejoins
     groups explicitly, like any newcomer. *)
  Endpoint.set_restart_handler ep (fun s -> if t.running then on_site_down ~certain:true t s);
  (* Close the flow-control loop: RTOs shrink the adaptive ABCAST
     window, credit refunds wake originators blocked in [bcast_wait]. *)
  Endpoint.set_congestion_handler ep (fun s -> if t.running then on_transport_congestion t s);
  Endpoint.set_credit_handler ep (fun _ -> if t.running then Condition.broadcast t.admission)

(* The hygiene gauges live in the registry under stable names, so
   consumers (oracle checks, bench artifacts) sample by name instead of
   importing Runtime accessors.  Registered after [wire_endpoint]: the
   transport gauges read the endpoint lazily at sample time. *)
let register_metrics t =
  let m = t.metrics in
  Metrics.gauge m "runtime.pending_unstable" (fun () -> Hashtbl.length t.unstables);
  Metrics.gauge m "runtime.held_frames" (fun () ->
      Hashtbl.fold (fun _ fs acc -> acc + List.length fs) t.held 0);
  Metrics.gauge m "runtime.sessions" (fun () -> Hashtbl.length t.sessions);
  Metrics.gauge m "runtime.pending_store" (fun () ->
      Hashtbl.fold (fun _ g acc -> acc + Uid_map.cardinal g.store) t.groups 0);
  Metrics.gauge m "runtime.dedup_residue" (fun () ->
      Hashtbl.fold
        (fun _ g acc -> acc + Causal.dedup_residue g.causal + Total.dedup_residue g.total)
        t.groups 0);
  Metrics.gauge m "runtime.cpu_busy_us" (fun () -> t.cpu_busy);
  Metrics.gauge m "runtime.ab_queue" (fun () ->
      Hashtbl.fold (fun _ g acc -> acc + Queue.length g.ab_queue) t.groups 0);
  Metrics.gauge m "runtime.ab_inflight" (fun () ->
      Hashtbl.fold (fun _ g acc -> acc + g.ab_inflight) t.groups 0);
  Metrics.gauge m "transport.inflight" (fun () -> Endpoint.inflight (endpoint t));
  Metrics.gauge m "transport.sendq_depth" (fun () -> Endpoint.sendq_depth (endpoint t));
  Metrics.gauge m "transport.credit_waiting" (fun () -> Endpoint.credit_waiting (endpoint t));
  Metrics.gauge m "transport.credit_used_bytes" (fun () ->
      Endpoint.credit_used_bytes (endpoint t));
  Metrics.gauge m "transport.recv_pending" (fun () -> Endpoint.recv_pending (endpoint t));
  Metrics.gauge m "transport.data_frames" (fun () -> Endpoint.frames_sent (endpoint t));
  Metrics.gauge m "transport.ack_frames" (fun () -> Endpoint.acks_sent (endpoint t));
  Metrics.gauge m "transport.packets" (fun () -> Endpoint.packets_sent (endpoint t));
  Metrics.gauge m "transport.retransmits" (fun () -> Endpoint.retransmits (endpoint t));
  Metrics.gauge m "transport.channel_failures" (fun () ->
      Endpoint.channel_failures (endpoint t))

let create ?(config = default_config) fab ~site ~trace () =
  let t =
    {
      fab;
      my_site = site;
      cfg = config;
      bk = fab.fbk;
      tracer = trace;
      ep = None;
      ctrs = Stats.Counter.create ();
      metrics = Metrics.create ();
      running = true;
      next_proc_idx = 0;
      next_useq = 0;
      next_session = 0;
      next_qid = 0;
      procs = Hashtbl.create 16;
      groups = Hashtbl.create 16;
      held = Hashtbl.create 8;
      dir = Hashtbl.create 16;
      dir_by_gid = Hashtbl.create 16;
      contacts = Hashtbl.create 16;
      sessions = Hashtbl.create 16;
      obligations = Hashtbl.create 16;
      dir_queries = Hashtbl.create 8;
      unstables = Hashtbl.create 32;
      unstable_by_group = Hashtbl.create 16;
      ab_collects = Hashtbl.create 16;
      collects_by_group = Hashtbl.create 16;
      join_waiters = Hashtbl.create 8;
      join_pending = Hashtbl.create 8;
      leave_waiters = Hashtbl.create 8;
      site_watchers = [];
      mon_refs = Hashtbl.create 8;
      admission = Condition.create ();
      cpu_free = 0;
      cpu_busy = 0;
    }
  in
  wire_endpoint t;
  register_metrics t;
  t

let crash t =
  if t.running then begin
    Trace.emitf t.tracer ~category:"fail" "site %d crashes" t.my_site;
    t.running <- false;
    Hashtbl.iter
      (fun _ p ->
        p.palive <- false;
        Sched.kill p.sched)
      t.procs;
    Hashtbl.reset t.procs;
    Hashtbl.reset t.groups;
    Hashtbl.reset t.held;
    Hashtbl.reset t.dir;
    Hashtbl.reset t.dir_by_gid;
    Hashtbl.reset t.contacts;
    Hashtbl.reset t.sessions;
    Hashtbl.reset t.obligations;
    Hashtbl.reset t.dir_queries;
    Hashtbl.reset t.unstables;
    Hashtbl.reset t.unstable_by_group;
    Hashtbl.reset t.ab_collects;
    Hashtbl.reset t.collects_by_group;
    Hashtbl.reset t.join_waiters;
    Hashtbl.reset t.join_pending;
    Hashtbl.reset t.leave_waiters;
    Hashtbl.reset t.mon_refs;
    t.site_watchers <- [];
    Endpoint.crash (endpoint t)
  end

let restart t =
  if t.running then invalid_arg "Runtime.restart: site is up";
  Endpoint.restart (endpoint t);
  t.running <- true;
  t.cpu_free <- Backend.now t.bk;
  Trace.emitf t.tracer ~category:"fail" "site %d restarts (epoch %d)" t.my_site
    (Endpoint.epoch (endpoint t));
  (* Announce recovery so recovery managers can react. *)
  for s = 0 to Backend.n_sites t.fab.fbk - 1 do
    if s <> t.my_site then
      send_frame t ~dst:s (Proto.Site_hello { site = t.my_site; epoch = Endpoint.epoch (endpoint t) })
  done

let watch_sites t f = t.site_watchers <- f :: t.site_watchers

(* ==================================================================
   Public client API
   ================================================================== *)

let pg_create p name =
  let t = p.rt in
  Stats.Counter.incr t.ctrs "prim.local_rpc";
  if Hashtbl.mem t.dir name then invalid_arg ("Runtime.pg_create: name exists: " ^ name);
  let gid = Addr.group_of_int ((t.my_site lsl 20) lor t.next_useq) in
  t.next_useq <- t.next_useq + 1;
  let view = View.initial gid p.addr in
  let g = make_group t ~gid ~gname:name ~view in
  Hashtbl.replace t.groups (gi gid) g;
  dir_set t name (gid, [ t.my_site ]);
  remember_contacts t gid [ t.my_site ];
  p.memberships <- gi gid :: p.memberships;
  Trace.emitf t.tracer ~category:"group" "create %s = g%d" name (gi gid);
  gid

let pg_lookup p name =
  let t = p.rt in
  Stats.Counter.incr t.ctrs "prim.local_rpc";
  match Hashtbl.find_opt t.dir name with
  | Some (gid, sites) ->
    remember_contacts t gid sites;
    Some gid
  | None ->
    let n = Backend.n_sites t.fab.fbk in
    if n <= 1 then None
    else begin
      Stats.Counter.incr t.ctrs "prim.cbcast";
      let qid = t.next_qid in
      t.next_qid <- qid + 1;
      let iv = Ivar.create () in
      Hashtbl.replace t.dir_queries qid (ref (n - 1), iv);
      for s = 0 to n - 1 do
        if s <> t.my_site then send_frame t ~dst:s (Proto.Dir_query { name; qid })
      done;
      match Ivar.read iv with
      | Some (gid, _) -> Some gid
      | None -> None
    end

let contact_site_for t gid =
  match Hashtbl.find_opt t.contacts (gi gid) with
  | Some (s :: _) -> Some s
  | Some [] | None -> None

let pg_join p gid ~credentials =
  let t = p.rt in
  Stats.Counter.incr t.ctrs "prim.cbcast";
  let credentials = Message.copy credentials in
  Message.set_sender credentials p.addr;
  let iv = Ivar.create () in
  jw_add t ~gid_int:(gi gid) ~idx:p.addr.Addr.idx iv;
  (match group_of t gid with
  | Some g -> route_event t g (Ev_join (p.addr, credentials))
  | None -> (
    match contact_site_for t gid with
    | Some c -> send_frame t ~dst:c (Proto.Join_req { group = gid; joiner = p.addr; credentials })
    | None ->
      ignore (jw_take t ~gid_int:(gi gid) ~idx:p.addr.Addr.idx);
      Ivar.fill iv (Error "no known contact site for group")));
  let r = Ivar.read iv in
  (match r with
  | Ok () -> Stats.Counter.incr t.ctrs "prim.reply"
  | Error _ -> ());
  r

let pg_leave p gid =
  let t = p.rt in
  match group_of t gid with
  | None -> ()
  | Some g ->
    if View.is_member g.view p.addr then begin
      let iv = Ivar.create () in
      Hashtbl.replace t.leave_waiters (gi gid, p.addr.Addr.idx) iv;
      route_event t g (Ev_leave p.addr);
      Ivar.read iv
    end

let pg_add_member p gid who =
  let t = p.rt in
  match group_of t gid with
  | None -> invalid_arg "Runtime.pg_add_member: no local view of group"
  | Some g -> route_event t g (Ev_join (who, Message.create ()))

let pg_monitor p gid f =
  let t = p.rt in
  Stats.Counter.incr t.ctrs "prim.local_rpc";
  match group_of t gid with
  | None -> invalid_arg "Runtime.pg_monitor: no local view of group"
  | Some g -> g.g_monitors <- (p, f) :: g.g_monitors

let pg_view p gid = match group_of p.rt gid with Some g -> Some g.view | None -> None

let pg_rank p gid =
  match group_of p.rt gid with
  | Some g -> ( try Some (View.rank g.view p.addr) with Not_found -> None)
  | None -> None

let pg_join_verify p gid f =
  match group_of p.rt gid with
  | None -> invalid_arg "Runtime.pg_join_verify: no local view of group"
  | Some g -> g.join_validator <- Some (p, f)

let pg_kill p gid =
  let t = p.rt in
  Stats.Counter.incr t.ctrs "prim.abcast";
  match group_of t gid with
  | None -> invalid_arg "Runtime.pg_kill: no local view of group"
  | Some g ->
    let body = Message.create () in
    Message.set_sender body p.addr;
    Message.set_bool body f_pg_kill true;
    origin_multicast t g Abcast ~owner:None body

let register_obligation_direct t ~responder ~session ~caller =
  let idx = responder.addr.Addr.idx in
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.obligations idx) in
  Hashtbl.replace t.obligations idx ((session, caller) :: cur)

let bcast p mode ~dest ~entry msg ~(want : want) =
  let t = p.rt in
  if not (proc_alive p) then All_failed
  else begin
    Stats.Counter.incr t.ctrs
      (match mode with
      | Cbcast -> "prim.cbcast"
      | Abcast -> "prim.abcast"
      | Gbcast -> "prim.gbcast_req");
    let body = Message.copy msg in
    Message.set_sender body p.addr;
    Message.set_entry body entry;
    Message.set_int body f_want (want_to_int want);
    Message.set_int body f_mode (mode_to_int mode);
    match dest with
    | Addr.Proc q ->
      let sess =
        match want with
        | No_reply -> None
        | Wait_n _ | Wait_all ->
          Some (open_session t ~want ~responders:(Some [ q ]) ~relay_site:None)
      in
      (match sess with Some s -> Message.set_session body s.sess_id | None -> ());
      on_cpu t (cpu_cost t t.cfg.cpu_send_us (Message.size body)) (fun () ->
          if q.Addr.site = t.my_site then begin
            match find_proc t q with
            | Some target ->
              (match sess with
              | Some s ->
                register_obligation_direct t ~responder:target ~session:s.sess_id ~caller:p.addr
              | None -> ());
              dispatch_to_proc t target body
            | None -> (
              match sess with
              | Some s -> note_failed_responder t ~session:s.sess_id ~responder:q
              | None -> ())
          end
          else send_frame t ~dst:q.Addr.site (Proto.Ptp { dest = q; body }));
      (match sess with
      | None -> Replies []
      | Some s -> Ivar.read s.done_ivar)
    | Addr.Group gid -> (
      match group_of t gid with
      | Some g ->
        (* Reject-policy minority: surface the partition to the caller
           as a typed error instead of parking the send behind a wedge
           that may never lift. *)
        (match g.minority, t.cfg.minority_policy with
        | Some _, Reject -> raise (Partitioned gid)
        | (Some _ | None), _ -> ());
        let sess =
          match want with
          | No_reply -> None
          | Wait_n _ | Wait_all ->
            Some (open_session t ~want ~responders:(Some g.view.View.members) ~relay_site:None)
        in
        (match sess with Some s -> Message.set_session body s.sess_id | None -> ());
        p.pending_inits <- p.pending_inits + 1;
        on_cpu t (cpu_cost t t.cfg.cpu_send_us (Message.size body)) (fun () -> origin_multicast t g mode ~owner:(Some p) body);
        (match sess with
        | None -> Replies []
        | Some s -> Ivar.read s.done_ivar)
      | None -> (
        match contact_site_for t gid with
        | None -> All_failed
        | Some relay ->
          let sess =
            match want with
            | No_reply -> None
            | Wait_n _ | Wait_all -> Some (open_session t ~want ~responders:None ~relay_site:(Some relay))
          in
          (match sess with Some s -> Message.set_session body s.sess_id | None -> ());
          let session_id = Option.map (fun s -> s.sess_id) sess in
          on_cpu t (cpu_cost t t.cfg.cpu_send_us (Message.size body)) (fun () ->
              send_frame t ~dst:relay
                (Proto.Relay { group = gid; mode; body; session = session_id; caller = p.addr }));
          (match sess with
          | None -> Replies []
          | Some s -> Ivar.read s.done_ivar)))
  end

(* --- originator backpressure --- *)

type send_verdict =
  | Admitted of outcome
  | Backpressure of Addr.group_id

(* A group is overloaded when its origination pipeline is saturated:
   the ABCAST backlog hit the admission cap, or the transport is holding
   frames for some member site on exhausted credit.  Only signals —
   nothing here blocks or drops. *)
let group_overloaded t g =
  (t.cfg.ab_queue_limit > 0 && Queue.length g.ab_queue >= t.cfg.ab_queue_limit)
  ||
  match t.ep with
  | Some ep -> List.exists (fun dst -> Endpoint.backpressured ep ~dst) (remote_member_sites t g)
  | None -> false

let overloaded_dest t dest =
  match dest with
  | Addr.Group gid -> (
    match group_of t gid with
    | Some g when group_overloaded t g -> Some gid
    | Some _ | None -> None)
  | Addr.Proc _ -> None

(* Non-blocking admission: a send into an overloaded group returns the
   typed [Backpressure] verdict instead of growing the queues — the
   caller decides whether to retry, shed or block. *)
let bcast_try p mode ~dest ~entry msg ~(want : want) =
  match overloaded_dest p.rt dest with
  | Some gid -> Backpressure gid
  | None -> Admitted (bcast p mode ~dest ~entry msg ~want)

(* Blocking admission: park the calling task until the overload clears
   (credit refund or pipeline dispatch wakes [t.admission]), then send.
   [on_backpressure] fires once when the call actually has to wait, so
   callers can count or log sheds without wrapping the call. *)
let bcast_wait ?on_backpressure p mode ~dest ~entry msg ~(want : want) =
  let t = p.rt in
  (match overloaded_dest t dest with
  | Some gid ->
    (match on_backpressure with Some f -> f gid | None -> ());
    while overloaded_dest t dest <> None do
      Condition.wait t.admission
    done
  | None -> ());
  bcast p mode ~dest ~entry msg ~want

(* Live origination window of a locally-visible group: the AIMD value
   when adaptive, the static config otherwise, [0] meaning ungated.
   Test/diagnostic surface for the flow-control suite. *)
let ab_window_now t gid =
  match group_of t gid with
  | None -> None
  | Some g ->
    Some
      (if t.cfg.ab_window <= 0 then 0
       else if t.cfg.ab_adaptive then g.ab_cwnd
       else t.cfg.ab_window)

(* The paper's mcast signature takes a destination LIST; replies from
   every group and process funnel into one session. *)
let bcast_multi p mode ~dests ~entry msg ~(want : want) =
  let t = p.rt in
  if not (proc_alive p) then All_failed
  else begin
    Stats.Counter.incr t.ctrs
      (match mode with
      | Cbcast -> "prim.cbcast"
      | Abcast -> "prim.abcast"
      | Gbcast -> "prim.gbcast_req");
    let body = Message.copy msg in
    Message.set_sender body p.addr;
    Message.set_entry body entry;
    Message.set_int body f_want (want_to_int want);
    Message.set_int body f_mode (mode_to_int mode);
    (* Reject-policy minority: any locally-visible destination group
       sitting in a minority component fails the whole send. *)
    List.iter
      (fun dest ->
        match dest with
        | Addr.Group gid -> (
          match group_of t gid with
          | Some g when g.minority <> None && t.cfg.minority_policy = Reject ->
            raise (Partitioned gid)
          | Some _ | None -> ())
        | Addr.Proc _ -> ())
      dests;
    (* Responders across all destinations, when every group is locally
       visible; otherwise leave them to the relays. *)
    let local_responders =
      List.fold_left
        (fun acc dest ->
          match acc, dest with
          | None, _ -> None
          | Some rs, Addr.Proc q -> Some (q :: rs)
          | Some rs, Addr.Group gid -> (
            match group_of t gid with
            | Some g -> Some (g.view.View.members @ rs)
            | None -> None))
        (Some []) dests
    in
    let sess =
      match want with
      | No_reply -> None
      | Wait_n _ | Wait_all ->
        Some (open_session t ~want ~responders:local_responders ~relay_site:None)
    in
    (match sess with Some s -> Message.set_session body s.sess_id | None -> ());
    on_cpu t (cpu_cost t t.cfg.cpu_send_us (Message.size body)) (fun () ->
        List.iter
          (fun dest ->
            match dest with
            | Addr.Proc q ->
              if q.Addr.site = t.my_site then begin
                match find_proc t q with
                | Some target ->
                  (match sess with
                  | Some sx ->
                    register_obligation_direct t ~responder:target ~session:sx.sess_id
                      ~caller:p.addr
                  | None -> ());
                  dispatch_to_proc t target body
                | None -> (
                  match sess with
                  | Some sx -> note_failed_responder t ~session:sx.sess_id ~responder:q
                  | None -> ())
              end
              else send_frame t ~dst:q.Addr.site (Proto.Ptp { dest = q; body })
            | Addr.Group gid -> (
              match group_of t gid with
              | Some g -> origin_multicast t g mode ~owner:(Some p) body
              | None -> (
                match contact_site_for t gid with
                | Some relay ->
                  send_frame t ~dst:relay
                    (Proto.Relay
                       {
                         group = gid;
                         mode;
                         body;
                         session = None (* responders resolved locally or not at all *);
                         caller = p.addr;
                       })
                | None -> ())))
          dests);
    match sess with
    | None -> Replies []
    | Some s -> Ivar.read s.done_ivar
  end

let do_reply p ~request answer ~null ~copy_to =
  let t = p.rt in
  (* A reply costs one asynchronous CBCAST on the wire (Table I); it is
     counted under its own name so the harness can distinguish them. *)
  Stats.Counter.incr t.ctrs (if null then "prim.null_reply" else "prim.reply");
  match Message.session request, Message.sender request with
  | Some session, Some caller ->
    let body = Message.copy answer in
    Message.set_sender body p.addr;
    Message.set_session body session;
    Message.set_bool body f_is_reply true;
    if null then Message.set_bool body f_null true;
    clear_obligation t ~responder:p.addr ~session;
    on_cpu t t.cfg.cpu_send_us (fun () ->
        if caller.Addr.site = t.my_site then on_reply_body t body
        else send_frame t ~dst:caller.Addr.site (Proto.Ptp { dest = caller; body }));
    (* Copies to cohorts (coordinator-cohort tool). *)
    List.iter
      (fun (q : Addr.proc) ->
        let copy = Message.copy body in
        Message.remove copy f_is_reply;
        Message.set_entry copy Entry.generic_cc_reply;
        if q.Addr.site = t.my_site then begin
          match find_proc t q with
          | Some target -> dispatch_to_proc t target copy
          | None -> ()
        end
        else send_frame t ~dst:q.Addr.site (Proto.Ptp { dest = q; body = copy }))
      copy_to
  | _ -> invalid_arg "Runtime.reply: request carries no session"

let reply p ~request answer = do_reply p ~request answer ~null:false ~copy_to:[]

let reply_cc p ~request answer ~copy_to = do_reply p ~request answer ~null:false ~copy_to

let null_reply p ~request = do_reply p ~request (Message.create ()) ~null:true ~copy_to:[]

let flush p =
  while p.pending_inits > 0 || not (Uid_set.is_empty p.outstanding) do
    Condition.wait p.flushers
  done

let redeliver p m = dispatch_to_proc p.rt p m

(* The primitive that carried a delivered message — stamped by the
   sending runtime, unforgeable by clients working through the
   toolkit. *)
let delivery_mode m = Option.bind (Message.get_int m f_mode) mode_of_int

(* Gauges for leak tests: all three drain to zero once traffic
   quiesces. *)
let pending_unstable t = Hashtbl.length t.unstables

let pending_held_frames t = Hashtbl.fold (fun _ fs acc -> acc + List.length fs) t.held 0

let pending_sessions t = Hashtbl.length t.sessions

let pending_store t =
  Hashtbl.fold (fun _ g acc -> acc + Uid_map.cardinal g.store) t.groups 0

let dedup_residue t =
  Hashtbl.fold
    (fun _ g acc -> acc + Causal.dedup_residue g.causal + Total.dedup_residue g.total)
    t.groups 0

(* Labelled per-group protocol-state sizes, summed over the site's
   groups — the raw material of the soak bench's bounded-memory
   claim. *)
let state_stats t =
  let store = ref 0 and cb_tail = ref 0 and ab_tail = ref 0 and ab_entries = ref 0 in
  let events = ref 0 and blocked = ref 0 in
  Hashtbl.iter
    (fun _ g ->
      store := !store + Uid_map.cardinal g.store;
      cb_tail := !cb_tail + Causal.dedup_residue g.causal;
      ab_tail := !ab_tail + Total.dedup_residue g.total;
      ab_entries := !ab_entries + List.length (Total.pending g.total);
      events := !events + Deque.length g.pending_events;
      blocked := !blocked + List.length g.blocked_sends)
    t.groups;
  [
    ("store", !store);
    ("cb_dedup_tail", !cb_tail);
    ("ab_dedup_tail", !ab_tail);
    ("ab_entries", !ab_entries);
    ("pending_events", !events);
    ("blocked_sends", !blocked);
    ("unstables", Hashtbl.length t.unstables);
    ("held_frames", pending_held_frames t);
    ("sessions", Hashtbl.length t.sessions);
  ]
