open Types
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message

type stored =
  | Scb of { uid : uid; rank : int; vt : int list option; body : Message.t }
  | Sab of { uid : uid; prio : prio; body : Message.t }

let stored_uid = function Scb { uid; _ } -> uid | Sab { uid; _ } -> uid

type ab_report = {
  ab_uid : uid;
  ab_prio : prio;
  ab_committed : bool;
  ab_origin : int;
}

type frame =
  | Cb_data of {
      group : Addr.group_id;
      view_id : int;
      uid : uid;
      rank : int;
      vt : int list option;
      body : Message.t;
    }
  | Ab_data of { group : Addr.group_id; view_id : int; uid : uid; body : Message.t }
  | Ab_prio of { group : Addr.group_id; view_id : int; uid : uid; prio : prio }
  | Ab_commit of { group : Addr.group_id; view_id : int; uid : uid; prio : prio }
  | Deliver_ack of { group : Addr.group_id; uid : uid }
  | Stable of { group : Addr.group_id; uid : uid }
  | Ptp of { dest : Addr.proc; body : Message.t }
  | Obligation_failed of { session : int; responder : Addr.proc }
  | Join_req of { group : Addr.group_id; joiner : Addr.proc; credentials : Message.t }
  | Join_refused of { group : Addr.group_id; joiner : Addr.proc; reason : string }
  | Leave_req of { group : Addr.group_id; who : Addr.proc }
  | Proc_failed of {
      group : Addr.group_id;
      who : Addr.proc;
      certain : bool;
          (* true when the death is certain (reported by the victim's
             own site), false for suspicion-based eviction of an
             unreachable site.  Certain deaths shrink the quorum
             denominator of the primary-partition rule. *)
    }
  | Gb_req of { group : Addr.group_id; uid : uid; body : Message.t }
  | Wedge of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      coord_site : int;
      coord_epoch : int;
          (* the coordinator's transport incarnation; echoed back in
             the matching Commit so receivers can fence commits from a
             coordinator that crashed and restarted mid-flush. *)
    }
  | Wedge_ack of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      from_site : int;
      cb_known : uid list;
      ab_report : ab_report list;
      ab_counter : int;
          (* priority floor for coordinator-assigned finals *)
      already_committed : frame option;
          (* the Commit this site already applied for this view change,
             when a prior coordinator died after partially committing *)
    }
  | Fetch of { group : Addr.group_id; view_id : int; attempt : int; uids : uid list }
  | Fetch_reply of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      from_site : int;
      bodies : stored list;
    }
  | Commit of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      coord_site : int;
      coord_epoch : int;
          (* fencing identity: wedged receivers only accept a commit
             whose (attempt, coord_site) does not lose the wedge
             domination order to the flush they acked, and whose epoch
             matches that wedge — a stale coordinator finalizing after
             the primary moved on is dropped. *)
      stabilize : stored list;
      ab_finalize : (uid * prio) list;
      ab_drop : uid list;
      events : View.change list;
      new_view : View.t;
      gname : string;
      gb_bodies : (uid * Message.t) list;
    }
  | Dir_update of { name : string; group : Addr.group_id; sites : int list }
  | Dir_query of { name : string; qid : int }
  | Dir_reply of { qid : int; info : (string * Addr.group_id * int list) option }
  | Relay of {
      group : Addr.group_id;
      mode : mode;
      body : Message.t;
      session : int option;
      caller : Addr.proc;
    }
  | Relay_info of { session : int; responders : Addr.proc list }
  | Site_hello of { site : int; epoch : int }
  | View_probe of { group : Addr.group_id; view_id : int; from_site : int }
      (* sent by a wedged minority component to the sites it suspects:
         "has the group's view moved past [view_id]?"  Only flows on
         minority paths, so partition-free runs never carry it. *)
  | View_probe_reply of { group : Addr.group_id; view_id : int }
      (* [view_id] is the responder's installed view, or -1 when the
         responder holds no state for the group. *)

(* Size model: a fixed frame header plus the natural encoded widths of
   each component.  Application payloads use their true encoded size. *)

let header = 16
let sz_uid = 12
let sz_prio = 8
let sz_addr = 8
let sz_int = 4

let sz_vt = function None -> 1 | Some l -> 1 + (sz_int * List.length l)

let sz_stored = function
  | Scb { vt; body; _ } -> sz_uid + sz_int + sz_vt vt + Message.size body
  | Sab { body; _ } -> sz_uid + sz_prio + Message.size body

let sz_list f l = List.fold_left (fun acc x -> acc + f x) sz_int l

let size = function
  | Cb_data { vt; body; _ } -> header + sz_int + sz_uid + sz_int + sz_vt vt + Message.size body
  | Ab_data { body; _ } -> header + sz_int + sz_uid + Message.size body
  | Ab_prio _ | Ab_commit _ -> header + sz_int + sz_uid + sz_prio
  | Deliver_ack _ | Stable _ -> header + sz_uid
  | Ptp { body; _ } -> header + sz_addr + Message.size body
  | Obligation_failed _ -> header + sz_int + sz_addr
  | Join_req { credentials; _ } -> header + sz_addr + Message.size credentials
  | Join_refused { reason; _ } -> header + sz_addr + String.length reason
  | Leave_req _ | Proc_failed _ -> header + sz_addr
  | Gb_req { body; _ } -> header + sz_uid + Message.size body
  | Wedge _ -> header + (3 * sz_int)
  | Wedge_ack { cb_known; ab_report; _ } ->
    header + (3 * sz_int)
    + sz_list (fun _ -> sz_uid) cb_known
    + sz_list (fun _ -> sz_uid + sz_prio + 2) ab_report
  | Fetch { uids; _ } -> header + (2 * sz_int) + sz_list (fun _ -> sz_uid) uids
  | Fetch_reply { bodies; _ } -> header + (3 * sz_int) + sz_list sz_stored bodies
  | Commit { stabilize; ab_finalize; ab_drop; events; new_view; gname; gb_bodies; _ } ->
    header + (2 * sz_int) + String.length gname + sz_list sz_stored stabilize
    + sz_list (fun _ -> sz_uid + sz_prio) ab_finalize
    + sz_list (fun _ -> sz_uid) ab_drop
    + sz_list (fun _ -> 1 + sz_addr) events
    + (sz_int * 2)
    + (sz_addr * View.n_members new_view)
    + sz_list (fun (_, m) -> sz_uid + Message.size m) gb_bodies
  | Dir_update { name; sites; _ } ->
    header + String.length name + sz_int + sz_list (fun _ -> sz_int) sites
  | Dir_query { name; _ } -> header + String.length name + sz_int
  | Dir_reply { info; _ } -> (
    header + sz_int
    + match info with
      | None -> 1
      | Some (name, _, sites) -> String.length name + sz_int + sz_list (fun _ -> sz_int) sites)
  | Relay { body; _ } -> header + sz_int + 1 + Message.size body + sz_addr + sz_int
  | Relay_info { responders; _ } -> header + sz_int + sz_list (fun _ -> sz_addr) responders
  | Site_hello _ -> header + (2 * sz_int)
  | View_probe _ -> header + (3 * sz_int)
  | View_probe_reply _ -> header + (2 * sz_int)

let pp ppf frame =
  let g gid = Addr.group_to_int gid in
  match frame with
  | Cb_data { group; uid; rank; _ } ->
    Format.fprintf ppf "Cb_data(g%d,%a,r%d)" (g group) pp_uid uid rank
  | Ab_data { group; uid; _ } -> Format.fprintf ppf "Ab_data(g%d,%a)" (g group) pp_uid uid
  | Ab_prio { group; uid; prio; _ } ->
    Format.fprintf ppf "Ab_prio(g%d,%a,%a)" (g group) pp_uid uid pp_prio prio
  | Ab_commit { group; uid; prio; _ } ->
    Format.fprintf ppf "Ab_commit(g%d,%a,%a)" (g group) pp_uid uid pp_prio prio
  | Deliver_ack { group; uid } -> Format.fprintf ppf "Deliver_ack(g%d,%a)" (g group) pp_uid uid
  | Stable { group; uid } -> Format.fprintf ppf "Stable(g%d,%a)" (g group) pp_uid uid
  | Ptp { dest; _ } -> Format.fprintf ppf "Ptp(->%a)" Addr.pp_proc dest
  | Obligation_failed { session; responder } ->
    Format.fprintf ppf "Obligation_failed(s%d,%a)" session Addr.pp_proc responder
  | Join_req { group; joiner; _ } ->
    Format.fprintf ppf "Join_req(g%d,%a)" (g group) Addr.pp_proc joiner
  | Join_refused { group; joiner; _ } ->
    Format.fprintf ppf "Join_refused(g%d,%a)" (g group) Addr.pp_proc joiner
  | Leave_req { group; who } -> Format.fprintf ppf "Leave_req(g%d,%a)" (g group) Addr.pp_proc who
  | Proc_failed { group; who; certain } ->
    Format.fprintf ppf "Proc_failed(g%d,%a%s)" (g group) Addr.pp_proc who
      (if certain then ",certain" else "")
  | Gb_req { group; uid; _ } -> Format.fprintf ppf "Gb_req(g%d,%a)" (g group) pp_uid uid
  | Wedge { group; view_id; attempt; coord_site; _ } ->
    Format.fprintf ppf "Wedge(g%d,v%d,a%d,c%d)" (g group) view_id attempt coord_site
  | Wedge_ack { group; view_id; attempt; from_site; _ } ->
    Format.fprintf ppf "Wedge_ack(g%d,v%d,a%d,s%d)" (g group) view_id attempt from_site
  | Fetch { group; uids; _ } ->
    Format.fprintf ppf "Fetch(g%d,%d uids)" (g group) (List.length uids)
  | Fetch_reply { group; bodies; _ } ->
    Format.fprintf ppf "Fetch_reply(g%d,%d bodies)" (g group) (List.length bodies)
  | Commit { group; view_id; new_view; events; gb_bodies; _ } ->
    Format.fprintf ppf "Commit(g%d,v%d->v%d,%d events,%d gb)" (g group) view_id
      new_view.View.view_id (List.length events) (List.length gb_bodies)
  | Dir_update { name; group; _ } -> Format.fprintf ppf "Dir_update(%s=g%d)" name (g group)
  | Dir_query { name; qid } -> Format.fprintf ppf "Dir_query(%s,q%d)" name qid
  | Dir_reply { qid; info } ->
    Format.fprintf ppf "Dir_reply(q%d,%s)" qid (match info with Some _ -> "hit" | None -> "miss")
  | Relay { group; mode; _ } -> Format.fprintf ppf "Relay(g%d,%a)" (g group) pp_mode mode
  | Relay_info { session; responders } ->
    Format.fprintf ppf "Relay_info(s%d,%d resp)" session (List.length responders)
  | Site_hello { site; epoch } -> Format.fprintf ppf "Site_hello(s%d,e%d)" site epoch
  | View_probe { group; view_id; from_site } ->
    Format.fprintf ppf "View_probe(g%d,v%d,s%d)" (g group) view_id from_site
  | View_probe_reply { group; view_id } ->
    Format.fprintf ppf "View_probe_reply(g%d,v%d)" (g group) view_id
