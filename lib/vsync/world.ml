module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Trace = Vsync_sim.Trace
module Stats = Vsync_util.Stats
module Backend = Vsync_backend.Backend
module Wallclock = Vsync_backend.Wallclock

type backend_kind = Sim | Wall of Wallclock.config

(* The driver is whatever owns the clock; everything above it sees only
   [bk].  Sim-only capabilities (fault injection, the engine itself)
   dispatch on this and refuse on a wall-clock world rather than
   silently doing nothing. *)
type driver =
  | Dsim of { eng : Engine.t; network : Net.t }
  | Dwall of Wallclock.t

type t = {
  bk : Backend.t;
  driver : driver;
  tracer : Trace.t;
  runtimes : Runtime.t array;
}

let make_runtimes ~runtime_config ~clock_skew_us ~skew_rng ~sites fabric tracer =
  Array.init sites (fun site ->
      let base = Option.value ~default:Runtime.default_config runtime_config in
      let config =
        if clock_skew_us = 0 then base
        else
          {
            base with
            Runtime.clock_offset_us =
              Vsync_util.Rng.int_in skew_rng (-clock_skew_us) clock_skew_us;
          }
      in
      Runtime.create ~config fabric ~site ~trace:tracer ())

let create ?(backend = Sim) ?(seed = 0x15155EEDL) ?(net_config = Net.default_config)
    ?runtime_config ?(clock_skew_us = 0) ~sites () =
  match backend with
  | Sim ->
    let eng = Engine.create ~seed () in
    let network = Net.create eng net_config ~sites in
    let tracer = Trace.create eng in
    Engine.set_tracer eng (Trace.obs tracer);
    Net.set_tracer network (Trace.obs tracer);
    let bk = Net.backend network in
    let fabric = Runtime.make_fabric bk in
    (* [Backend.rng bk] is the engine root, so this split is exactly the
       one the pre-seam harness performed — seeded runs keep their
       digests. *)
    let skew_rng = Vsync_util.Rng.split (Backend.rng bk) in
    let runtimes =
      make_runtimes ~runtime_config ~clock_skew_us ~skew_rng ~sites fabric tracer
    in
    { bk; driver = Dsim { eng; network }; tracer; runtimes }
  | Wall config ->
    let wall = Wallclock.create ~config ~seed ~sites () in
    let tracer = Trace.create_clock ~now:(fun () -> Wallclock.now wall) in
    let bk = Wallclock.backend wall in
    let fabric = Runtime.make_fabric bk in
    let skew_rng = Vsync_util.Rng.split (Backend.rng bk) in
    let runtimes =
      make_runtimes ~runtime_config ~clock_skew_us ~skew_rng ~sites fabric tracer
    in
    { bk; driver = Dwall wall; tracer; runtimes }

let backend t = t.bk
let kind t = Backend.kind t.bk

let engine t =
  match t.driver with
  | Dsim d -> d.eng
  | Dwall _ -> invalid_arg "World.engine: wall-clock world has no engine"

let net t =
  match t.driver with
  | Dsim d -> d.network
  | Dwall _ -> invalid_arg "World.net: wall-clock world has no simulated network"

let trace t = t.tracer
let n_sites t = Array.length t.runtimes

let runtime t s =
  if s < 0 || s >= Array.length t.runtimes then invalid_arg "World.runtime: bad site";
  t.runtimes.(s)

let proc t ~site ~name = Runtime.spawn_proc (runtime t site) ~name ()

let run_task _t p f = Runtime.spawn_task p f

(* Failure-detector probes recur forever once a group spans sites, so
   "run until the queue drains" would never return.  Default to a
   horizon comfortably beyond every protocol timeout. *)
let default_horizon_us = 60_000_000

let now t = Backend.now t.bk

let run ?until t =
  let until = match until with Some u -> u | None -> now t + default_horizon_us in
  match t.driver with
  | Dsim d -> Engine.run ~until d.eng
  | Dwall w -> ignore (Wallclock.run_until w until)

let run_for t us = run ~until:(now t + us) t

(* Wall-clock worlds can't run to a virtual horizon and ask questions
   after — 60 µs-accounted seconds is 60 real seconds.  Instead: drive
   in short slices, checking a completion predicate between slices. *)
let run_cond ?(slice_us = 2_000) ~timeout_us t pred =
  let deadline = now t + timeout_us in
  let rec go () =
    if pred () then true
    else if now t >= deadline then pred ()
    else begin
      run_for t (min slice_us (deadline - now t));
      go ()
    end
  in
  go ()

let crash_site t s =
  Runtime.crash (runtime t s);
  Net.crash_site (net t) s

let restart_site t s =
  Net.restart_site (net t) s;
  Runtime.restart (runtime t s)

let partition t left right = Net.partition (net t) left right
let heal t = Net.heal (net t)

let nemesis_actions t =
  {
    Vsync_sim.Nemesis.crash_site = crash_site t;
    Vsync_sim.Nemesis.restart_site = restart_site t;
  }

let apply_nemesis t plan = Vsync_sim.Nemesis.install ~actions:(nemesis_actions t) (net t) plan

let total_counters t =
  let acc = Stats.Counter.create () in
  Array.iter
    (fun rt ->
      List.iter (fun (k, v) -> Stats.Counter.add acc k v) (Stats.Counter.to_list (Runtime.counters rt)))
    t.runtimes;
  (match t.driver with
  | Dsim d ->
    List.iter (fun (k, v) -> Stats.Counter.add acc k v) (Stats.Counter.to_list (Net.counters d.network))
  | Dwall _ -> ());
  Stats.Counter.to_list acc
