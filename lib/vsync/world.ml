module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Trace = Vsync_sim.Trace
module Stats = Vsync_util.Stats

type t = {
  eng : Engine.t;
  network : Net.t;
  tracer : Trace.t;
  runtimes : Runtime.t array;
}

let create ?(seed = 0x15155EEDL) ?(net_config = Net.default_config) ?runtime_config
    ?(clock_skew_us = 0) ~sites () =
  let eng = Engine.create ~seed () in
  let network = Net.create eng net_config ~sites in
  let tracer = Trace.create eng in
  Engine.set_tracer eng (Trace.obs tracer);
  Net.set_tracer network (Trace.obs tracer);
  let fabric = Runtime.make_fabric network in
  let skew_rng = Vsync_util.Rng.split (Engine.rng eng) in
  let runtimes =
    Array.init sites (fun site ->
        let base = Option.value ~default:Runtime.default_config runtime_config in
        let config =
          if clock_skew_us = 0 then base
          else
            {
              base with
              Runtime.clock_offset_us =
                Vsync_util.Rng.int_in skew_rng (-clock_skew_us) clock_skew_us;
            }
        in
        Runtime.create ~config fabric ~site ~trace:tracer ())
  in
  { eng; network; tracer; runtimes }

let engine t = t.eng
let net t = t.network
let trace t = t.tracer
let n_sites t = Array.length t.runtimes

let runtime t s =
  if s < 0 || s >= Array.length t.runtimes then invalid_arg "World.runtime: bad site";
  t.runtimes.(s)

let proc t ~site ~name = Runtime.spawn_proc (runtime t site) ~name ()

let run_task _t p f = Runtime.spawn_task p f

(* Failure-detector probes recur forever once a group spans sites, so
   "run until the queue drains" would never return.  Default to a
   horizon comfortably beyond every protocol timeout. *)
let default_horizon_us = 60_000_000

let run ?until t =
  let until =
    match until with Some u -> u | None -> Engine.now t.eng + default_horizon_us
  in
  Engine.run ~until t.eng

let run_for t us = Engine.run ~until:(Engine.now t.eng + us) t.eng

let now t = Engine.now t.eng

let crash_site t s =
  Runtime.crash (runtime t s);
  Net.crash_site t.network s

let restart_site t s =
  Net.restart_site t.network s;
  Runtime.restart (runtime t s)

let partition t left right = Net.partition t.network left right
let heal t = Net.heal t.network

let nemesis_actions t =
  {
    Vsync_sim.Nemesis.crash_site = crash_site t;
    Vsync_sim.Nemesis.restart_site = restart_site t;
  }

let apply_nemesis t plan =
  Vsync_sim.Nemesis.install ~actions:(nemesis_actions t) t.network plan

let total_counters t =
  let acc = Stats.Counter.create () in
  Array.iter
    (fun rt ->
      List.iter (fun (k, v) -> Stats.Counter.add acc k v) (Stats.Counter.to_list (Runtime.counters rt)))
    t.runtimes;
  List.iter (fun (k, v) -> Stats.Counter.add acc k v) (Stats.Counter.to_list (Net.counters t.network));
  Stats.Counter.to_list acc
