(** Group membership views.

    A view is the membership of a process group at a logical instant:
    an identifier and the member list {e sorted by decreasing age}
    (paper Sec 3.2: "the membership list is sorted in order of
    decreasing age, providing a natural ranking on the members, and one
    that is the same at all members").  A member's index in the list is
    its {e rank}; because every member sees the same sequence of views
    and the same ordering of views relative to message deliveries,
    ranks support coordination "using any deterministic rule, without a
    special exchange of messages". *)

module Addr = Vsync_msg.Addr

type t = {
  group : Addr.group_id;
  view_id : int;           (** consecutive, starting at 1. *)
  members : Addr.proc list; (** oldest first. *)
  primary : bool;
      (** whether this view was installed by a primary component — one
          holding a quorum of its predecessor (see {!quorum_met}).
          Carried in the record so a chain of minority components can
          never manufacture primacy: every installed view descends from
          an unbroken line of primary views. *)
}

(** What changed between consecutive views, as reported to monitors. *)
type change =
  | Member_joined of Addr.proc
  | Member_left of Addr.proc
  | Member_failed of Addr.proc

val initial : Addr.group_id -> Addr.proc -> t

val n_members : t -> int
val is_member : t -> Addr.proc -> bool

(** [rank t p] is [p]'s index in age order.
    @raise Not_found when [p] is not a member. *)
val rank : t -> Addr.proc -> int

(** [member_at t rank] inverts {!rank}. *)
val member_at : t -> int -> Addr.proc

(** [oldest t] is the member with rank 0.
    @raise Invalid_argument on an empty view. *)
val oldest : t -> Addr.proc

(** [sites t] lists the distinct sites hosting members, ascending. *)
val sites : t -> int list

(** [members_at_site t s] lists members hosted at site [s], age order. *)
val members_at_site : t -> int -> Addr.proc list

(** [apply ?id t changes] builds the successor view: failed/left
    members removed, joined members appended youngest-last (joins keep
    request order).  The view id becomes [max id (view_id + 1)] — the
    flush coordinator passes its attempt-derived id, so two divergent
    commits retiring the same view (a stale coordinator racing its
    successor) install views with {e distinct} ids, never the same id
    with different memberships.  Without [id] it increments by one.
    @raise Invalid_argument when a join duplicates a member. *)
val apply : ?id:int -> t -> change list -> t

(** [quorum_met ~prev ~survivors ~certain] decides whether a component
    retaining [survivors] of the agreed view [prev] is primary.
    [certain] lists members whose failure is certain (local crashes,
    voluntary leaves); they are removed from the denominator before
    the majority test.  The component passes with a strict majority of
    the remaining members, or exactly half of them when it retains the
    oldest — the age tie-break is unique, so two disjoint halves can
    never both pass. *)
val quorum_met : prev:t -> survivors:Addr.proc list -> certain:Addr.proc list -> bool

val pp_change : Format.formatter -> change -> unit
val pp : Format.formatter -> t -> unit
