module Nemesis = Vsync_sim.Nemesis
module Rng = Vsync_util.Rng
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

let e_app = Entry.user 0

type result = {
  plan : Nemesis.plan;
  violations : Oracle.violation list;
  oracle : Oracle.t;
  world : World.t;
  sent : int;
  delivered : int;
  elapsed_us : int;
}

let run ?(sites = 4) ?(horizon_us = 20_000_000) ?(settle_us = 30_000_000)
    ?(send_interval_us = 150_000) ?(payload_bytes = 256) ?plan ?(intensity = 0.5) ?trace_sink
    ?runtime_config ~seed () =
  let w = World.create ~seed ?runtime_config ~sites () in
  (* Run with the typed protocol events on (and only those — the mask
     excludes the legacy Note strings), so every sweep also exercises
     the event layer and the oracle's typed-stream checks have data.
     Enabling tracing draws no randomness, so seeded runs stay
     bit-identical to untraced ones.  An exporting caller widens the
     mask to the net and transport layers too. *)
  let tr = Vsync_sim.Trace.obs (World.trace w) in
  (match trace_sink with
  | None ->
    Vsync_obs.Tracer.set_classes tr [ Vsync_obs.Event.Proto; Vsync_obs.Event.Partition ]
  | Some sink ->
    Vsync_obs.Tracer.set_classes tr
      [ Vsync_obs.Event.Net; Vsync_obs.Event.Transport; Vsync_obs.Event.Proto;
        Vsync_obs.Event.Partition; Vsync_obs.Event.Note ];
    Vsync_obs.Tracer.add_sink tr sink);
  Vsync_obs.Tracer.set_enabled tr true;
  let members =
    Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "n%d" s))
  in
  let join_error = ref None in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "nemesis"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "nemesis");
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> ()
        | Error e ->
          if !join_error = None then
            join_error := Some (Printf.sprintf "member n%d join: %s" i e))
  done;
  World.run w;
  match !join_error with
  | Some e -> Error e
  | None ->
  let oracle = Oracle.create w ~gid in
  Array.iter (fun m -> Oracle.bind_tap oracle m e_app (fun _ -> ())) members;
  let plan =
    match plan with
    | Some p -> p
    | None -> Nemesis.random_plan ~seed ~sites ~horizon_us ~intensity ()
  in
  World.apply_nemesis w plan;
  let t0 = World.now w in
  (* Vouch the qualifying splits to the oracle: symmetric, covering
     every site, one strict-majority side, alone in their window, and
     crash-free up to their heal — exactly the windows in which the
     primary-partition rule owes the majority side progress.  Pure plan
     arithmetic: no randomness, so seeded digests are unaffected. *)
  let all_sites = List.init sites (fun s -> s) in
  let heal_time at l r =
    List.fold_left
      (fun acc (e : Nemesis.event) ->
        if e.at >= at && e.at < acc then
          match e.op with
          | Nemesis.Heal -> e.at
          | Nemesis.Heal_partition (l', r')
            when (l' = l && r' = r) || (l' = r && r' = l) ->
            e.at
          | _ -> acc
        else acc)
      max_int plan
  in
  let split_windows =
    List.filter_map
      (fun (e : Nemesis.event) ->
        match e.op with
        | Nemesis.Partition (l, r) -> Some (e.at, heal_time e.at l r, l, r, true)
        | Nemesis.Partition_oneway (l, r) -> Some (e.at, heal_time e.at l r, l, r, false)
        | _ -> None)
      plan
  in
  let crashes =
    List.filter_map
      (fun (e : Nemesis.event) ->
        match e.op with Nemesis.Crash_site _ -> Some e.at | _ -> None)
      plan
  in
  List.iter
    (fun ((a, h, l, r, sym) as w') ->
      let covers = List.sort_uniq compare (l @ r) = all_sites in
      let maj = max (List.length l) (List.length r) in
      let alone =
        List.for_all (fun ((a', h', _, _, _) as w'') -> w'' == w' || h' <= a || a' >= h)
          split_windows
      in
      if
        sym && h < max_int && covers
        && 2 * maj > sites
        && alone
        && List.for_all (fun c -> c >= h) crashes
      then Oracle.note_partition oracle ~from_us:(t0 + a) ~until_us:(t0 + h) ~left:l ~right:r)
    split_windows;
  let next_tag = ref 0 in
  (* One traffic stream per member, each on its own RNG stream so one
     member's draws never perturb another's. *)
  let traffic_rng = Rng.create (Int64.add seed 0x7A11L) in
  let member_rngs = Array.init sites (fun _ -> Rng.split traffic_rng) in
  Array.iteri
    (fun i m ->
      let rng = member_rngs.(i) in
      World.run_task w m (fun () ->
          let continue = ref true in
          while !continue do
            Runtime.sleep m (Rng.int_in rng (send_interval_us / 2) (send_interval_us * 3 / 2));
            if World.now w >= t0 + horizon_us then continue := false
            else begin
              let tag = !next_tag in
              incr next_tag;
              let mode =
                match Rng.int rng 20 with
                | 0 -> Types.Gbcast
                | n when n < 8 -> Types.Abcast
                | _ -> Types.Cbcast
              in
              Oracle.note_send oracle m ~mode ~tag;
              let msg = Message.create () in
              Message.set_int msg "tag" tag;
              if payload_bytes > 0 then Message.set_bytes msg "pad" (Bytes.make payload_bytes 'x');
              ignore
                (Runtime.bcast m mode ~dest:(Addr.Group gid) ~entry:e_app msg
                   ~want:Types.No_reply)
            end
          done))
    members;
  World.run ~until:(t0 + horizon_us + settle_us) w;
  let violations = Oracle.check oracle in
  Ok
    {
      plan;
      violations;
      oracle;
      world = w;
      sent = !next_tag;
      delivered = Oracle.n_deliveries oracle;
      elapsed_us = World.now w - t0;
    }
