module Nemesis = Vsync_sim.Nemesis
module Rng = Vsync_util.Rng
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

let e_app = Entry.user 0

type result = {
  plan : Nemesis.plan;
  violations : Oracle.violation list;
  oracle : Oracle.t;
  world : World.t;
  sent : int;
  delivered : int;
  elapsed_us : int;
}

let run ?(sites = 4) ?(horizon_us = 20_000_000) ?(settle_us = 30_000_000)
    ?(send_interval_us = 150_000) ?(payload_bytes = 256) ?plan ?(intensity = 0.5) ?trace_sink
    ~seed () =
  let w = World.create ~seed ~sites () in
  (* Run with the typed protocol events on (and only those — the mask
     excludes the legacy Note strings), so every sweep also exercises
     the event layer and the oracle's typed-stream checks have data.
     Enabling tracing draws no randomness, so seeded runs stay
     bit-identical to untraced ones.  An exporting caller widens the
     mask to the net and transport layers too. *)
  let tr = Vsync_sim.Trace.obs (World.trace w) in
  (match trace_sink with
  | None -> Vsync_obs.Tracer.set_mask tr (Vsync_obs.Event.cls_bit Vsync_obs.Event.Proto)
  | Some sink ->
    Vsync_obs.Tracer.set_classes tr
      [ Vsync_obs.Event.Net; Vsync_obs.Event.Transport; Vsync_obs.Event.Proto ];
    Vsync_obs.Tracer.add_sink tr sink);
  Vsync_obs.Tracer.set_enabled tr true;
  let members =
    Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "n%d" s))
  in
  let join_error = ref None in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "nemesis"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "nemesis");
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> ()
        | Error e ->
          if !join_error = None then
            join_error := Some (Printf.sprintf "member n%d join: %s" i e))
  done;
  World.run w;
  match !join_error with
  | Some e -> Error e
  | None ->
  let oracle = Oracle.create w ~gid in
  Array.iter (fun m -> Oracle.bind_tap oracle m e_app (fun _ -> ())) members;
  let plan =
    match plan with
    | Some p -> p
    | None -> Nemesis.random_plan ~seed ~sites ~horizon_us ~intensity ()
  in
  World.apply_nemesis w plan;
  let t0 = World.now w in
  let next_tag = ref 0 in
  (* One traffic stream per member, each on its own RNG stream so one
     member's draws never perturb another's. *)
  let traffic_rng = Rng.create (Int64.add seed 0x7A11L) in
  let member_rngs = Array.init sites (fun _ -> Rng.split traffic_rng) in
  Array.iteri
    (fun i m ->
      let rng = member_rngs.(i) in
      World.run_task w m (fun () ->
          let continue = ref true in
          while !continue do
            Runtime.sleep m (Rng.int_in rng (send_interval_us / 2) (send_interval_us * 3 / 2));
            if World.now w >= t0 + horizon_us then continue := false
            else begin
              let tag = !next_tag in
              incr next_tag;
              let mode =
                match Rng.int rng 20 with
                | 0 -> Types.Gbcast
                | n when n < 8 -> Types.Abcast
                | _ -> Types.Cbcast
              in
              Oracle.note_send oracle m ~mode ~tag;
              let msg = Message.create () in
              Message.set_int msg "tag" tag;
              if payload_bytes > 0 then Message.set_bytes msg "pad" (Bytes.make payload_bytes 'x');
              ignore
                (Runtime.bcast m mode ~dest:(Addr.Group gid) ~entry:e_app msg
                   ~want:Types.No_reply)
            end
          done))
    members;
  World.run ~until:(t0 + horizon_us + settle_us) w;
  let violations = Oracle.check oracle in
  Ok
    {
      plan;
      violations;
      oracle;
      world = w;
      sent = !next_tag;
      delivered = Oracle.n_deliveries oracle;
      elapsed_us = World.now w - t0;
    }
