module Addr = Vsync_msg.Addr

type t = {
  group : Addr.group_id;
  view_id : int;
  members : Addr.proc list;
  primary : bool;
}

type change =
  | Member_joined of Addr.proc
  | Member_left of Addr.proc
  | Member_failed of Addr.proc

let initial group creator = { group; view_id = 1; members = [ creator ]; primary = true }

let n_members t = List.length t.members

let is_member t p = List.exists (Addr.equal_proc p) t.members

let rank t p =
  let rec loop i = function
    | [] -> raise Not_found
    | m :: _ when Addr.equal_proc m p -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 t.members

let member_at t r = List.nth t.members r

let oldest t =
  match t.members with
  | [] -> invalid_arg "View.oldest: empty view"
  | m :: _ -> m

let sites t =
  List.map (fun (p : Addr.proc) -> p.Addr.site) t.members
  |> List.sort_uniq compare

let members_at_site t s = List.filter (fun (p : Addr.proc) -> p.Addr.site = s) t.members

let apply ?id t changes =
  let removed =
    List.filter_map
      (function Member_left p | Member_failed p -> Some p | Member_joined _ -> None)
      changes
  in
  let joined = List.filter_map (function Member_joined p -> Some p | _ -> None) changes in
  let survivors =
    List.filter (fun m -> not (List.exists (Addr.equal_proc m) removed)) t.members
  in
  List.iter
    (fun j ->
      if List.exists (Addr.equal_proc j) survivors then
        invalid_arg "View.apply: joining member already present")
    joined;
  let view_id =
    match id with Some i -> max i (t.view_id + 1) | None -> t.view_id + 1
  in
  { t with view_id; members = survivors @ joined }

(* The primary-partition rule.  A component of the previous agreed
   view may install a successor (and keep delivering) only when it
   retains a quorum of that view.  Members whose failure is CERTAIN —
   local crashes reported by the victim's own site, and voluntary
   leaves — shrink the denominator: they can never be on the other
   side of a partition, so counting them against the survivors would
   wedge groups that merely shrank.  Only suspicion-based evictions
   (unreachable sites) count against quorum.  The tie-break for an
   exact half keeps the side holding the oldest not-certainly-dead
   member, which is unique, so two disjoint halves can never both
   pass. *)
let quorum_met ~prev ~survivors ~certain =
  let certainly_dead p = List.exists (Addr.equal_proc p) certain in
  let base = List.filter (fun m -> not (certainly_dead m)) prev.members in
  let surviving = List.filter (fun m -> List.exists (Addr.equal_proc m) survivors) base in
  let n = List.length base and k = List.length surviving in
  if n = 0 then true
  else if 2 * k > n then true
  else if 2 * k = n then
    match base with
    | [] -> true
    | oldest :: _ -> List.exists (Addr.equal_proc oldest) surviving
  else false

let pp_change ppf = function
  | Member_joined p -> Format.fprintf ppf "+%a" Addr.pp_proc p
  | Member_left p -> Format.fprintf ppf "-%a" Addr.pp_proc p
  | Member_failed p -> Format.fprintf ppf "!%a" Addr.pp_proc p

let pp ppf t =
  Format.fprintf ppf "view(g%d,#%d,[%a])" (Addr.group_to_int t.group) t.view_id
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Addr.pp_proc)
    t.members
