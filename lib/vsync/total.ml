open Types
module Heap = Vsync_util.Heap
module Seqtrack = Vsync_util.Seqtrack

type 'a entry = {
  mutable prio : prio;
  mutable committed : bool;
  mutable payload : 'a option;
}

type 'a t = {
  site : int;
  mutable ctr : int;
  mutable entries : 'a entry Uid_map.t;
  delivered : Seqtrack.t;
      (* per-origin-site watermark + sparse tail instead of an
         ever-growing uid set: stability advances the watermark
         ([stabilized]), so old deliveries are deduplicated by integer
         comparison and their records dropped. *)
  order : (prio * uid) Heap.t;
      (* lazy-deletion min-heap mirroring [entries]: every (current
         prio, uid) pair ever assigned is pushed; [head] discards keys
         whose entry is gone or has since moved to a different
         priority. *)
}

let order_compare (p1, u1) (p2, u2) =
  let c = prio_compare p1 p2 in
  if c <> 0 then c else uid_compare u1 u2

let create ~site () =
  {
    site;
    ctr = 0;
    entries = Uid_map.empty;
    delivered = Seqtrack.create ();
    order = Heap.create ~compare:order_compare;
  }

let was_delivered t uid = Seqtrack.mem t.delivered ~key:uid.usite ~seq:uid.useq
let seen t uid = Uid_map.mem uid t.entries || was_delivered t uid

(* An ABCAST is stable once every destination delivered it.  Final
   priorities from one origin site strictly increase in origination
   order (each site's proposal counter is bumped by the earlier
   intake, and per-channel FIFO makes intake follow origination
   order), so total-order delivery of [uid] implies every earlier
   ABCAST from that site was delivered first, everywhere: covering the
   whole prefix [<= useq] is safe. *)
let stabilized t uid = Seqtrack.advance t.delivered ~key:uid.usite ~upto:uid.useq

let dedup_residue t = Seqtrack.tail_cardinal t.delivered

let counter t = t.ctr

let intake t ~uid payload =
  match Uid_map.find_opt uid t.entries with
  | Some e ->
    if e.payload = None then e.payload <- Some payload;
    e.prio
  | None ->
    if was_delivered t uid then
      (* Duplicate of something already delivered; return a harmless
         priority (the originator will not use it: it committed
         already). *)
      (t.ctr, t.site)
    else begin
      t.ctr <- t.ctr + 1;
      let prio = (t.ctr, t.site) in
      t.entries <- Uid_map.add uid { prio; committed = false; payload = Some payload } t.entries;
      Heap.push t.order (prio, uid);
      prio
    end

let commit t ~uid prio =
  (* Buffered entries take precedence over the delivered watermark: a
     commit for something still buffered must always land, while a
     commit duplicated after delivery (hence after any watermark
     advance) is a no-op. *)
  match Uid_map.find_opt uid t.entries with
  | Some e ->
    if prio_compare e.prio prio <> 0 then begin
      e.prio <- prio;
      Heap.push t.order (prio, uid)
    end;
    e.committed <- true;
    t.ctr <- max t.ctr (fst prio)
  | None ->
    if not (was_delivered t uid) then begin
      t.entries <- Uid_map.add uid { prio; committed = true; payload = None } t.entries;
      Heap.push t.order (prio, uid);
      t.ctr <- max t.ctr (fst prio)
    end

let add_payload t ~uid payload =
  match Uid_map.find_opt uid t.entries with
  | Some e -> if e.payload = None then e.payload <- Some payload
  | None -> ()

let drop t ~uid =
  match Uid_map.find_opt uid t.entries with
  | None -> ()
  | Some e ->
    if e.committed then invalid_arg "Total.drop: message is committed";
    (* Lazy deletion: the heap key is discarded when it surfaces. *)
    t.entries <- Uid_map.remove uid t.entries

(* Smallest (prio, uid) among buffered entries, via the heap: pop stale
   keys (entry removed, or re-prioritized — its current key is also in
   the heap) until a live one surfaces. *)
let rec head t =
  match Heap.peek t.order with
  | None -> None
  | Some (prio, uid) -> (
    match Uid_map.find_opt uid t.entries with
    | Some e when prio_compare e.prio prio = 0 -> Some (uid, e)
    | Some _ | None ->
      ignore (Heap.pop t.order);
      head t)

let drain t =
  let rec loop acc =
    match head t with
    | Some (uid, e) when e.committed -> (
      match e.payload with
      | Some p ->
        t.entries <- Uid_map.remove uid t.entries;
        Seqtrack.add t.delivered ~key:uid.usite ~seq:uid.useq;
        loop ((uid, e.prio, p) :: acc)
      | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let payload_of t uid =
  match Uid_map.find_opt uid t.entries with Some e -> e.payload | None -> None

let pending t =
  Uid_map.bindings t.entries
  |> List.map (fun (uid, e) -> (uid, e.prio, e.committed, e.payload <> None))
