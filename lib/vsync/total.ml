open Types

type 'a entry = {
  mutable prio : prio;
  mutable committed : bool;
  mutable payload : 'a option;
}

type 'a t = {
  site : int;
  mutable ctr : int;
  mutable entries : 'a entry Uid_map.t;
  mutable delivered : Uid_set.t;
}

let create ~site () = { site; ctr = 0; entries = Uid_map.empty; delivered = Uid_set.empty }

let seen t uid = Uid_map.mem uid t.entries || Uid_set.mem uid t.delivered

let counter t = t.ctr

let intake t ~uid payload =
  match Uid_map.find_opt uid t.entries with
  | Some e ->
    if e.payload = None then e.payload <- Some payload;
    e.prio
  | None ->
    if Uid_set.mem uid t.delivered then
      (* Duplicate of something already delivered; return a harmless
         priority (the originator will not use it: it committed
         already). *)
      (t.ctr, t.site)
    else begin
      t.ctr <- t.ctr + 1;
      let prio = (t.ctr, t.site) in
      t.entries <- Uid_map.add uid { prio; committed = false; payload = Some payload } t.entries;
      prio
    end

let commit t ~uid prio =
  if not (Uid_set.mem uid t.delivered) then begin
    (match Uid_map.find_opt uid t.entries with
    | Some e ->
      e.prio <- prio;
      e.committed <- true
    | None ->
      t.entries <- Uid_map.add uid { prio; committed = true; payload = None } t.entries);
    t.ctr <- max t.ctr (fst prio)
  end

let add_payload t ~uid payload =
  match Uid_map.find_opt uid t.entries with
  | Some e -> if e.payload = None then e.payload <- Some payload
  | None -> ()

let drop t ~uid =
  match Uid_map.find_opt uid t.entries with
  | None -> ()
  | Some e ->
    if e.committed then invalid_arg "Total.drop: message is committed";
    t.entries <- Uid_map.remove uid t.entries

let head t =
  (* Smallest (prio, uid) among buffered entries.  Linear scan: pending
     sets are small (outstanding, uncommitted multicasts only). *)
  Uid_map.fold
    (fun uid e acc ->
      match acc with
      | None -> Some (uid, e)
      | Some (auid, ae) ->
        let c = prio_compare e.prio ae.prio in
        if c < 0 || (c = 0 && uid_compare uid auid < 0) then Some (uid, e) else acc)
    t.entries None

let drain t =
  let rec loop acc =
    match head t with
    | Some (uid, e) when e.committed -> (
      match e.payload with
      | Some p ->
        t.entries <- Uid_map.remove uid t.entries;
        t.delivered <- Uid_set.add uid t.delivered;
        loop ((uid, e.prio, p) :: acc)
      | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let payload_of t uid =
  match Uid_map.find_opt uid t.entries with Some e -> e.payload | None -> None

let pending t =
  Uid_map.bindings t.entries
  |> List.map (fun (uid, e) -> (uid, e.prio, e.committed, e.payload <> None))
