(** CBCAST delivery engine (one instance per group, per site, per view).

    Implements the causal delivery rule with vector timestamps: one
    component per group member, indexed by view rank.  A message from
    the member with rank [r] carrying timestamp [vt] is delayed until
    [vt.(r) = local.(r) + 1] and [vt.(k) <= local.(k)] for [k <> r] —
    i.e. until every multicast that causally precedes it has been
    delivered here.

    Multicasts from {e non-members} (clients) carry no timestamp: they
    are delivered on arrival, relying on the transport's per-channel
    FIFO order.  This preserves the guarantee the paper's examples
    need — requests originating from the same client are processed in
    the same order at all copies — while cross-client causality through
    hidden channels is not tracked (full ISIS piggybacking is out of
    scope; see DESIGN.md).

    View changes flush the group, so an engine never survives a view:
    the runtime discards it and creates a fresh one sized to the new
    membership. *)

open Types

type 'a t

(** [create ~n_ranks ()] returns an engine for a view with [n_ranks]
    members, clock at zero. *)
val create : n_ranks:int -> unit -> 'a t

(** [stamp t ~rank] — sender side.  Advances the sender's own component
    and returns a copy of the clock to attach to the outgoing message.
    The sender should deliver its own message locally at stamp time. *)
val stamp : _ t -> rank:int -> Vsync_util.Vclock.t

(** [note_sent t uid] records a locally-originated (and locally
    delivered) multicast so that a copy re-injected during a
    view-change flush is recognized as a duplicate. *)
val note_sent : _ t -> uid -> unit

(** [receive t ~uid ~rank ~vt payload] — receiver side, member-sent
    message.  Buffers or readies the message; duplicates (same [uid])
    are ignored. *)
val receive : 'a t -> uid:uid -> rank:int -> vt:Vsync_util.Vclock.t -> 'a -> unit

(** [receive_fifo t ~uid payload] — receiver side, client-sent message
    (no causal gating). *)
val receive_fifo : 'a t -> uid:uid -> 'a -> unit

(** [drain t] returns every message now deliverable, in delivery order,
    advancing the clock.  Call after each [receive]. *)
val drain : 'a t -> (uid * 'a) list

(** [force_drain t] — used at the end of a view-change flush, after
    stabilization has filled all gaps: delivers everything still
    pending, respecting causal order among deliverable messages and
    falling back to (timestamp, uid) order if gating cannot be
    satisfied (possible only for messages from failed senders whose
    predecessors died with them). *)
val force_drain : 'a t -> (uid * 'a) list

(** [pending t] lists messages still delayed (diagnostics). *)
val pending : 'a t -> (uid * 'a) list

(** [seen t uid] is true when [uid] was received (delivered or
    pending), or is covered by a stability watermark.  O(log tail):
    anything at or below the origin site's watermark is rejected by
    integer comparison, not set membership. *)
val seen : _ t -> uid -> bool

(** [stabilized t uid] — the runtime learned [uid] is {e stable} (every
    destination received it).  Advances the origin site's watermark to
    [uid.useq], dropping the dedup records of [uid] and every earlier
    multicast from that site: per-channel FIFO transport guarantees
    they were received everywhere first, so no live sender can
    reintroduce one as new.  This is what keeps [known] bounded on
    long-lived views. *)
val stabilized : _ t -> uid -> unit

(** [dedup_residue t] — sparse dedup entries not yet covered by a
    watermark (hygiene gauge: drains to the empty set once traffic
    quiesces and stability catches up). *)
val dedup_residue : _ t -> int

(** [clock t] is the current local clock (not a copy; do not mutate). *)
val clock : _ t -> Vsync_util.Vclock.t
