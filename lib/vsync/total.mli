(** ABCAST delivery engine (one instance per group, per site, per view).

    The ISIS two-phase priority protocol ([Birman-a], faithful to the
    paper's cost model: three inter-site one-way latencies before a
    remote delivery — Figure 3):

    + the originator multicasts the message;
    + every destination assigns it a {e proposed priority} — one more
      than the largest priority it has seen, tie-broken by site id —
      buffers the message {e undeliverable} in a priority queue, and
      returns the proposal to the originator;
    + the originator takes the maximum proposal as the {e final
      priority} and multicasts it; destinations reorder the message on
      its final priority, mark it deliverable, and deliver every
      deliverable message at the head of the queue.

    Because every destination moves the message to the same final
    priority, all destinations deliver identical prefixes.  Messages
    whose originator fails before committing are either finalized for
    everyone or dropped by everyone during the view-change flush
    (the coordinator decides from the wedge acknowledgements). *)

open Types

type 'a t

(** [create ~site ()] returns an empty engine; [site] breaks priority
    ties. *)
val create : site:int -> unit -> 'a t

(** [intake t ~uid ~payload] assigns and returns the proposed priority,
    buffering the message undeliverable.  Duplicate uids return the
    already-proposed priority. *)
val intake : 'a t -> uid:uid -> 'a -> prio

(** [commit t ~uid prio] fixes the final priority and marks the message
    deliverable.  A commit may arrive for a uid never seen here (during
    stabilization): the engine records it and waits for
    {!add_payload}. *)
val commit : 'a t -> uid:uid -> prio -> unit

(** [add_payload t ~uid payload] supplies the body for a
    committed-but-unseen uid. *)
val add_payload : 'a t -> uid:uid -> 'a -> unit

(** [drop t ~uid] discards an uncommitted message (originator died and
    no destination holds a commit).  Dropping a committed message
    raises. *)
val drop : 'a t -> uid:uid -> unit

(** [drain t] delivers the maximal deliverable prefix: pops messages in
    priority order while they are committed with payload present.  Each
    element carries the final priority it was delivered under, which the
    caller must retain for stabilization (a wedge acknowledgement that
    reports a delivered message must quote its true final priority, or
    the flush would re-finalize it inconsistently). *)
val drain : 'a t -> (uid * prio * 'a) list

(** [pending t] lists buffered messages as
    [(uid, proposed_or_final, committed, has_payload)] — the raw
    material of a wedge acknowledgement. *)
val pending : 'a t -> (uid * prio * bool * bool) list

(** [seen t uid] — buffered or already delivered (possibly only as a
    stability watermark: anything at or below the origin site's
    watermark is recognized by integer comparison). *)
val seen : _ t -> uid -> bool

(** [stabilized t uid] — the runtime learned [uid] is {e stable}.
    Advances the origin site's delivered-watermark to [uid.useq]: final
    priorities from one site strictly increase in origination order, so
    everything earlier from that site was delivered first and its dedup
    record can be dropped.  Keeps [delivered] bounded on long-lived
    views. *)
val stabilized : _ t -> uid -> unit

(** [dedup_residue t] — delivered-set entries not yet covered by a
    watermark (hygiene gauge; drains to zero once stability catches
    up). *)
val dedup_residue : _ t -> int

(** [payload_of t uid] returns the buffered body, if present (used when
    answering a stabilization fetch). *)
val payload_of : 'a t -> uid -> 'a option

(** [counter t] is the engine's current priority counter
    (diagnostics). *)
val counter : _ t -> int
