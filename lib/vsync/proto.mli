(** Inter-site protocol frames.

    Everything the per-site protocols processes say to each other: the
    data paths of the three multicast primitives, delivery
    acknowledgements and stability notices (garbage collection of the
    per-view message store), the view-change/flush protocol, the group
    name directory, point-to-point sends (replies), and relaying for
    senders whose site hosts no group member.

    Frames are OCaml values end to end — the simulated network charges
    for their {!size} in bytes, computed from the same layout a real
    implementation would use (application payloads are measured by
    their true binary encoding, [Vsync_msg.Message.size]). *)

open Types
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message

(** A retained multicast body, as stored per view for stabilization and
    retransmitted during a flush. *)
type stored =
  | Scb of { uid : uid; rank : int; vt : int list option; body : Message.t }
      (** a CBCAST: sender rank and timestamp ([None] for client-FIFO). *)
  | Sab of { uid : uid; prio : prio; body : Message.t }
      (** an ABCAST with its final priority. *)

val stored_uid : stored -> uid

(** One entry of a wedge acknowledgement's ABCAST report. *)
type ab_report = {
  ab_uid : uid;
  ab_prio : prio;
  ab_committed : bool;
  ab_origin : int;  (** originating site (from the uid). *)
}

type frame =
  (* --- multicast data paths --- *)
  | Cb_data of {
      group : Addr.group_id;
      view_id : int;
      uid : uid;
      rank : int;  (** sender's view rank; [-1] for client-FIFO sends. *)
      vt : int list option;
      body : Message.t;
    }
  | Ab_data of { group : Addr.group_id; view_id : int; uid : uid; body : Message.t }
  | Ab_prio of { group : Addr.group_id; view_id : int; uid : uid; prio : prio }
  | Ab_commit of { group : Addr.group_id; view_id : int; uid : uid; prio : prio }
  | Deliver_ack of { group : Addr.group_id; uid : uid }
      (** destination site → origin site: delivered to all local members. *)
  | Stable of { group : Addr.group_id; uid : uid }
      (** origin site → destination sites: everyone delivered; GC. *)
  (* --- point-to-point (replies, direct sends) --- *)
  | Ptp of { dest : Addr.proc; body : Message.t }
  | Obligation_failed of { session : int; responder : Addr.proc }
      (** the responder died before replying (its site survives). *)
  (* --- membership events routed to the group coordinator --- *)
  | Join_req of {
      group : Addr.group_id;
      joiner : Addr.proc;
      credentials : Message.t;
    }
  | Join_refused of { group : Addr.group_id; joiner : Addr.proc; reason : string }
  | Leave_req of { group : Addr.group_id; who : Addr.proc }
  | Proc_failed of {
      group : Addr.group_id;
      who : Addr.proc;
      certain : bool;
          (** [true] when the reporter witnessed the death directly
              (same-site monitor): certain deaths shrink the
              primary-partition quorum base; suspicions never do. *)
    }
  | Gb_req of { group : Addr.group_id; uid : uid; body : Message.t }
  (* --- the view-change / GBCAST flush protocol --- *)
  | Wedge of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      coord_site : int;
      coord_epoch : int;
          (** the coordinator's transport epoch; receivers record it in
              their wedge and use it to fence commits from a
              crashed-and-restarted coordinator incarnation. *)
    }
  | Wedge_ack of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      from_site : int;
      cb_known : uid list;  (** CBCAST uids received this view. *)
      ab_report : ab_report list;
      ab_counter : int;
          (** the site's ABCAST priority counter: a floor for
              coordinator-assigned final priorities. *)
      already_committed : frame option;
          (** the [Commit] this site already applied for this view
              change, when a prior coordinator died after partially
              committing — the new coordinator re-broadcasts it. *)
    }
  | Fetch of { group : Addr.group_id; view_id : int; attempt : int; uids : uid list }
  | Fetch_reply of {
      group : Addr.group_id;
      view_id : int;
      attempt : int;
      from_site : int;
      bodies : stored list;
    }
  | Commit of {
      group : Addr.group_id;
      view_id : int;  (** the view being retired. *)
      attempt : int;
      coord_site : int;  (** who built this commit... *)
      coord_epoch : int;
          (** ...and under which transport epoch: together with
              [attempt] these let receivers fence commits from stale or
              restarted coordinators against the wedge they hold. *)
      stabilize : stored list;  (** bodies some destination lacks. *)
      ab_finalize : (uid * prio) list;  (** finalize these, then deliver. *)
      ab_drop : uid list;  (** uncommitted, origin dead: drop everywhere. *)
      events : View.change list;
      new_view : View.t;
      gname : string;  (** symbolic group name, so member sites can answer directory queries. *)
      gb_bodies : (uid * Message.t) list;  (** user GBCASTs at the sync point. *)
    }
  (* --- group name directory --- *)
  | Dir_update of { name : string; group : Addr.group_id; sites : int list }
  | Dir_query of { name : string; qid : int }
  | Dir_reply of { qid : int; info : (string * Addr.group_id * int list) option }
  (* --- relaying for non-member senders --- *)
  | Relay of {
      group : Addr.group_id;
      mode : mode;
      body : Message.t;
      session : int option;  (** when the caller collects replies. *)
      caller : Addr.proc;
    }
  | Relay_info of { session : int; responders : Addr.proc list }
  | Site_hello of { site : int; epoch : int }
  (* --- partition probing (primary-partition membership) --- *)
  | View_probe of { group : Addr.group_id; view_id : int; from_site : int }
      (** a minority-wedged coordinator asking a suspected site which
          view of [group] it holds. *)
  | View_probe_reply of { group : Addr.group_id; view_id : int }
      (** the probed site's current view id, or [-1] if it holds no
          state for the group.  A reply (or unsolicited verdict from a
          minority coordinator) advertising a view {e newer} than the
          receiver's tells it the primary partition moved on without
          it: the receiver discards its dead copy and rejoins fresh. *)

(** [size f] is the frame's wire size in bytes. *)
val size : frame -> int

(** [pp] prints a compact one-line rendering for traces. *)
val pp : Format.formatter -> frame -> unit
