open Types
module Vclock = Vsync_util.Vclock
module Seqtrack = Vsync_util.Seqtrack

type 'a waiting = { uid : uid; rank : int; vt : Vclock.t; payload : 'a }

type 'a t = {
  local : Vclock.t;
  delayed : 'a waiting Queue.t; (* arrival order *)
  mutable ready : (uid * 'a) list; (* reversed: newest first *)
  known : Seqtrack.t;
      (* every uid ever received, as a per-origin-site watermark + tail:
         stability advances the watermark ([stabilized]) so the dedup
         record of a message is dropped — and late retransmits rejected
         by integer comparison — once no live sender can reintroduce it. *)
}

let create ~n_ranks () =
  { local = Vclock.create n_ranks; delayed = Queue.create (); ready = []; known = Seqtrack.create () }

let stamp t ~rank =
  Vclock.incr t.local rank;
  Vclock.copy t.local

let seen t uid = Seqtrack.mem t.known ~key:uid.usite ~seq:uid.useq

let note_sent t uid = Seqtrack.add t.known ~key:uid.usite ~seq:uid.useq

(* A CBCAST from site [s] is stable once every destination received it.
   The transport is FIFO per channel and a sender's multicasts to the
   view go to the same destinations, so every earlier CBCAST from [s]
   (member-stamped or client-relayed) was received everywhere too:
   covering the whole prefix [<= useq] is safe. *)
let stabilized t uid = Seqtrack.advance t.known ~key:uid.usite ~upto:uid.useq

let dedup_residue t = Seqtrack.tail_cardinal t.known

(* After the local clock advances, some delayed messages may have become
   deliverable; rotate the queue (arrival order preserved) to a fixed
   point.  Merging as we go only helps later entries of the same pass,
   so the delivery order matches the old partition-per-pass scan. *)
let rec promote t =
  let n = Queue.length t.delayed in
  let progressed = ref false in
  for _ = 1 to n do
    let w = Queue.pop t.delayed in
    if Vclock.deliverable ~msg:w.vt ~local:t.local ~sender:w.rank then begin
      Vclock.merge t.local w.vt;
      t.ready <- (w.uid, w.payload) :: t.ready;
      progressed := true
    end
    else Queue.push w t.delayed
  done;
  if !progressed && not (Queue.is_empty t.delayed) then promote t

let receive t ~uid ~rank ~vt payload =
  if not (seen t uid) then begin
    Seqtrack.add t.known ~key:uid.usite ~seq:uid.useq;
    if Vclock.deliverable ~msg:vt ~local:t.local ~sender:rank then begin
      Vclock.merge t.local vt;
      t.ready <- (uid, payload) :: t.ready;
      promote t
    end
    else Queue.push { uid; rank; vt; payload } t.delayed
  end

let receive_fifo t ~uid payload =
  if not (seen t uid) then begin
    Seqtrack.add t.known ~key:uid.usite ~seq:uid.useq;
    t.ready <- (uid, payload) :: t.ready
  end

let drain t =
  let out = List.rev t.ready in
  t.ready <- [];
  out

let pending t =
  Queue.fold (fun acc w -> (w.uid, w.payload) :: acc) [] t.delayed |> List.rev

let clock t = t.local

let force_drain t =
  promote t;
  (* Whatever remains has causal gaps that stabilization could not fill
     (predecessors from dead senders that reached no one).  Deliver in a
     deterministic order so every site agrees. *)
  let stragglers =
    List.sort
      (fun a b ->
        match compare (Vclock.to_list a.vt) (Vclock.to_list b.vt) with
        | 0 -> uid_compare a.uid b.uid
        | c -> c)
      (List.of_seq (Queue.to_seq t.delayed))
  in
  Queue.clear t.delayed;
  List.iter
    (fun w ->
      Vclock.merge t.local w.vt;
      t.ready <- (w.uid, w.payload) :: t.ready)
    stragglers;
  drain t
