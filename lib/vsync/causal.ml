open Types
module Vclock = Vsync_util.Vclock

type 'a waiting = { uid : uid; rank : int; vt : Vclock.t; payload : 'a }

type 'a t = {
  local : Vclock.t;
  delayed : 'a waiting Queue.t; (* arrival order *)
  mutable ready : (uid * 'a) list; (* reversed: newest first *)
  mutable known : Uid_set.t; (* every uid ever received *)
}

let create ~n_ranks () =
  { local = Vclock.create n_ranks; delayed = Queue.create (); ready = []; known = Uid_set.empty }

let stamp t ~rank =
  Vclock.incr t.local rank;
  Vclock.copy t.local

let seen t uid = Uid_set.mem uid t.known

let note_sent t uid = t.known <- Uid_set.add uid t.known

(* After the local clock advances, some delayed messages may have become
   deliverable; rotate the queue (arrival order preserved) to a fixed
   point.  Merging as we go only helps later entries of the same pass,
   so the delivery order matches the old partition-per-pass scan. *)
let rec promote t =
  let n = Queue.length t.delayed in
  let progressed = ref false in
  for _ = 1 to n do
    let w = Queue.pop t.delayed in
    if Vclock.deliverable ~msg:w.vt ~local:t.local ~sender:w.rank then begin
      Vclock.merge t.local w.vt;
      t.ready <- (w.uid, w.payload) :: t.ready;
      progressed := true
    end
    else Queue.push w t.delayed
  done;
  if !progressed && not (Queue.is_empty t.delayed) then promote t

let receive t ~uid ~rank ~vt payload =
  if not (seen t uid) then begin
    t.known <- Uid_set.add uid t.known;
    if Vclock.deliverable ~msg:vt ~local:t.local ~sender:rank then begin
      Vclock.merge t.local vt;
      t.ready <- (uid, payload) :: t.ready;
      promote t
    end
    else Queue.push { uid; rank; vt; payload } t.delayed
  end

let receive_fifo t ~uid payload =
  if not (seen t uid) then begin
    t.known <- Uid_set.add uid t.known;
    t.ready <- (uid, payload) :: t.ready
  end

let drain t =
  let out = List.rev t.ready in
  t.ready <- [];
  out

let pending t =
  Queue.fold (fun acc w -> (w.uid, w.payload) :: acc) [] t.delayed |> List.rev

let clock t = t.local

let force_drain t =
  promote t;
  (* Whatever remains has causal gaps that stabilization could not fill
     (predecessors from dead senders that reached no one).  Deliver in a
     deterministic order so every site agrees. *)
  let stragglers =
    List.sort
      (fun a b ->
        match compare (Vclock.to_list a.vt) (Vclock.to_list b.vt) with
        | 0 -> uid_compare a.uid b.uid
        | c -> c)
      (List.of_seq (Queue.to_seq t.delayed))
  in
  Queue.clear t.delayed;
  List.iter
    (fun w ->
      Vclock.merge t.local w.vt;
      t.ready <- (w.uid, w.payload) :: t.ready)
    stragglers;
  drain t
