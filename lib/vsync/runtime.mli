(** The per-site {e protocols process} (paper Sec 4, Figure 1).

    One runtime per site.  It implements the ABCAST / CBCAST / GBCAST
    primitives, maintains process-group membership views (with the
    flush-based view-change protocol that makes membership changes,
    failures and GBCASTs appear instantaneous and identically ordered
    everywhere), performs all inter-site communication through the
    reliable transport, manages the group-name directory, routes
    replies, and hosts the site's client processes.

    Client processes are created with {!spawn_proc} and interact with
    the runtime through direct calls — the simulated equivalent of the
    local IPC between an ISIS client and its site's protocols process.
    Blocking operations ({!bcast} with replies, {!pg_join},
    {!pg_lookup}, {!flush}, {!sleep}) must run inside one of the
    process's lightweight tasks ({!spawn_task}).

    {2 Virtual synchrony guarantees}

    - A multicast is delivered to the membership current when it was
      sent: the view-change flush completes or consistently discards
      every in-flight multicast before a new view is installed.
    - All members observe the same sequence of views, and the same
      ordering of view changes relative to message deliveries.
    - CBCASTs that are potentially causally related (same group,
      member senders) are delivered everywhere in causal order; same
      sender implies same order (FIFO) for all senders including
      non-member clients.
    - ABCASTs are delivered in the same total order everywhere.
    - GBCASTs (and membership events, which ride the same protocol)
      are ordered consistently w.r.t. {e every} other event.
    - Failures are clean: once a failure is observed through a view
      change, no message from the failed process will be delivered. *)

open Types
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

type t
type proc

(** What happens to multicasts originated inside a minority-wedged
    partition component.  [Buffer] (the default) queues them like any
    wedge does: they replay if the component recovers its primacy
    (false alarm / fast heal) and are dropped with the rest of the
    minority state on eviction.  [Reject] fails the send immediately
    with {!Partitioned}, for callers that prefer an error over an
    open-ended stall. *)
type minority_policy = Buffer | Reject

type config = {
  cpu_send_us : int;
      (** CPU cost to initiate a protocol operation (calibrated so the
          ABCAST breakdown reproduces the paper's Figure 3). *)
  cpu_recv_us : int;  (** CPU cost to process one received frame. *)
  cpu_us_per_kb : int;
      (** additional CPU cost per KB handled (buffer copies). *)
  cpu_us_per_extra_packet : int;
      (** additional CPU cost per 4 KB fragment beyond the first (the
          source of Figure 2's latency knee). *)
  ab_window : int;
      (** ABCAST origination pipeline depth: how many phase-1 rounds a
          site may have outstanding per group before further ABCASTs
          queue.  Queued rounds are released in {e bursts} (once at
          least half the window is free) so that rounds launched
          together coalesce into shared packets — phase-1 fan-out,
          the members' prio replies, and the phase-2 commit fan-out
          each collapse to one packet per destination per burst.
          1 fully serializes rounds; [<= 0] disables the gate (every
          round launches immediately, the historical behaviour). *)
  ab_window_min : int;
      (** floor of the adaptive window (see [ab_adaptive]); default 2. *)
  ab_adaptive : bool;
      (** size the origination window by AIMD instead of the static
          value: clean round completions grow it additively up to the
          [ab_window] ceiling, a transport RTO toward a member site
          halves it (once per congestion episode) down to
          [ab_window_min].  Default off; meaningless when
          [ab_window <= 0]. *)
  ab_queue_limit : int;
      (** admission cap on the per-group ABCAST backlog: at or beyond
          this many queued rounds the group reports overload through
          {!bcast_try} / {!bcast_wait}.  [0] (default) = unbounded
          admission ({!bcast} itself never blocks or drops either
          way). *)
  stability_gc : bool;
      (** Garbage-collect delivery-dedup state from message stability
          (default [true]): once a multicast is {e stable} — every
          destination received it, the same trigger that already GCs
          the retransmission store — the engines' per-origin-site
          dedup watermarks advance past it, so long-lived views run in
          bounded memory and late duplicates are rejected by integer
          comparison.  [false] reverts to the historical behaviour
          (dedup records accumulate for the life of the view); kept
          for the soak bench's A/B comparison. *)
  clock_offset_us : int;
      (** this site's wall-clock skew from true simulation time
          (unknown to the site itself; the real-time tool estimates
          it). *)
  minority_policy : minority_policy;
      (** see {!minority_policy}; default [Buffer]. *)
  endpoint : Vsync_transport.Endpoint.config;
}

val default_config : config

(** Raised by {!bcast} / {!bcast_multi} under [minority_policy = Reject]
    when the destination group's local copy sits in a minority partition
    component: the send cannot be delivered view-synchronously until the
    partition heals, and the caller asked not to wait. *)
exception Partitioned of Addr.group_id

(** The transport fabric shared by all runtimes of one world.  Built
    over an execution backend ({!Vsync_backend.Backend}); the runtime
    cannot tell a simulated world from a wall-clock one. *)
type fabric

val make_fabric : Vsync_backend.Backend.t -> fabric
val fabric_backend : fabric -> Vsync_backend.Backend.t

(** [create ?config fabric ~site ~trace ()] boots the site's protocols
    process. *)
val create :
  ?config:config -> fabric -> site:int -> trace:Vsync_sim.Trace.t -> unit -> t

val site : t -> int
val backend : t -> Vsync_backend.Backend.t
val alive : t -> bool
val counters : t -> Vsync_util.Stats.Counter.t
val trace : t -> Vsync_sim.Trace.t

(** [metrics t] is the site's unified metrics registry: the hygiene
    gauges ([runtime.pending_unstable], [runtime.pending_store],
    [runtime.dedup_residue], …) and the transport wire accounting
    ([transport.inflight], [transport.retransmits], …), sampled live by
    name. *)
val metrics : t -> Vsync_obs.Metrics.t

(** [cpu_busy_us t] is accumulated CPU busy time (for the load figures
    quoted in the paper's Sec 7). *)
val cpu_busy_us : t -> int

(** [transport_stats t] is the site's transport wire accounting as
    labelled counters: data frames, dedicated ack frames, network
    packets (one packet can carry several coalesced frames),
    retransmitted frames, and failed channels. *)
val transport_stats : t -> (string * int) list

(** [local_time_us t] is the site's local wall clock — true time plus
    its configured skew. *)
val local_time_us : t -> int

(** {1 Site lifecycle} *)

(** [crash t] kills the site: every local process dies mid-task, all
    protocol state is lost.  Remote sites find out through their
    failure detectors. *)
val crash : t -> unit

(** [restart t] revives a crashed site under a new incarnation with
    empty state and announces it to the other sites (the recovery
    manager listens for these announcements). *)
val restart : t -> unit

(** [watch_sites t f] registers [f] to run on site events observed by
    this site: [`Down s] from the failure detector (only for sites
    this runtime currently monitors), [`Up s] on a restart
    announcement. *)
val watch_sites : t -> ([ `Down of int | `Up of int ] -> unit) -> unit

(** {1 Processes} *)

val spawn_proc : t -> ?name:string -> unit -> proc
val proc_addr : proc -> Addr.proc

(** [proc_uid p] is unique across every process of every simulation in
    this OCaml program — a collision-free key for tool-level
    per-process registries. *)
val proc_uid : proc -> int
val proc_name : proc -> string
val proc_alive : proc -> bool
val runtime_of : proc -> t

(** [kill_proc p] crashes the process.  Its site detects this
    immediately (paper Sec 2.1) and initiates failure handling in every
    group [p] belonged to. *)
val kill_proc : proc -> unit

(** [spawn_task p f] starts a lightweight task of [p]. *)
val spawn_task : proc -> (unit -> unit) -> unit

(** [sleep p us] blocks the calling task for [us] microseconds. *)
val sleep : proc -> int -> unit

(** {1 Entries and filters} *)

(** [bind p entry handler] binds [handler] to [entry]; each arriving
    message starts a new task running [handler msg] (paper Sec 4.1). *)
val bind : proc -> Entry.t -> (Message.t -> unit) -> unit

(** [add_filter p f] appends a filter to [p]'s inbound chain; a message
    is discarded unless every filter accepts it (the protection tool is
    such a filter). *)
val add_filter : proc -> (Message.t -> bool) -> unit

(** {1 Process groups} *)

(** [pg_create p name] creates a group with [p] as sole member and
    registers [name] in the directory.
    @raise Invalid_argument if this site already created [name]. *)
val pg_create : proc -> string -> Addr.group_id

(** [pg_lookup p name] resolves a symbolic group name: local hit, or
    one round of queries to the other sites (blocking). *)
val pg_lookup : proc -> string -> Addr.group_id option

(** [pg_join p gid ~credentials] asks to join; blocks until the view
    change installs the new membership or the join is refused. *)
val pg_join : proc -> Addr.group_id -> credentials:Message.t -> (unit, string) result

(** [pg_leave p gid] leaves the group (blocks until effective). *)
val pg_leave : proc -> Addr.group_id -> unit

(** [pg_add_member p gid who] adds an external process to the group on
    its behalf (Table I's [pg_addmember]: one GBCAST).  [who]'s site
    learns of the membership through the commit. *)
val pg_add_member : proc -> Addr.group_id -> Addr.proc -> unit

(** [pg_kill p gid] sends a termination signal to every member through
    an ABCAST (Table I's [pg_kill]); the runtime at each site kills the
    members on delivery. *)
val pg_kill : proc -> Addr.group_id -> unit

(** [pg_monitor p gid f] runs [f view changes] at every membership
    change, in the same order at all members and consistently ordered
    w.r.t. message deliveries. *)
val pg_monitor : proc -> Addr.group_id -> (View.t -> View.change list -> unit) -> unit

(** [pg_view p gid] is this site's current view of [gid] (present when
    the site hosts a member). *)
val pg_view : proc -> Addr.group_id -> View.t option

(** [pg_rank p gid] is [p]'s rank in the current view. *)
val pg_rank : proc -> Addr.group_id -> int option

(** [pg_join_verify p gid f] installs a join validator: the group
    coordinator calls [f joiner credentials] before admitting a joiner
    (paper Sec 3.10). *)
val pg_join_verify : proc -> Addr.group_id -> (Addr.proc -> Message.t -> bool) -> unit

(** {1 Communication} *)

(** Result of a reply-collecting multicast. *)
type outcome =
  | Replies of (Addr.proc * Message.t) list
      (** collected replies, possibly fewer than requested if
          destinations failed (the paper's "error code" case is an
          empty or short list). *)
  | All_failed  (** no destination could respond. *)

(** [bcast p mode ~dest ~entry msg ~want] multicasts [msg] to [dest]
    (a group or a single process).

    With [want = No_reply] the call is {e asynchronous}: it returns
    immediately after initiating the protocol and the caller may
    continue computing — yet may program as if the delivery were
    instantaneous (virtual synchrony).  Otherwise the calling task
    blocks until enough replies arrive or the remaining destinations
    fail. *)
val bcast :
  proc -> mode -> dest:Addr.t -> entry:Entry.t -> Message.t -> want:want -> outcome

(** [bcast_multi p mode ~dests ~entry msg ~want] — the paper's full
    mcast signature: one message to a {e list} of destinations (groups
    and processes mixed), one shared reply session.  Reply collection
    needs every group destination locally visible (be a member or have
    delivered to it before); otherwise collect per group with
    {!bcast}. *)
val bcast_multi :
  proc -> mode -> dests:Addr.t list -> entry:Entry.t -> Message.t -> want:want -> outcome

(** Verdict of an admission-controlled send ({!bcast_try}). *)
type send_verdict =
  | Admitted of outcome  (** the send went through; the usual outcome. *)
  | Backpressure of Addr.group_id
      (** the destination group is overloaded — ABCAST backlog at
          [ab_queue_limit], or transport credit exhausted toward a
          member site — and the message was {e not} sent. *)

(** [bcast_try] is {!bcast} with non-blocking admission control: if the
    destination group is overloaded it returns {!Backpressure} without
    sending, otherwise it behaves exactly like {!bcast}.  Process
    destinations and relayed (not locally visible) groups are never
    backpressured. *)
val bcast_try :
  proc -> mode -> dest:Addr.t -> entry:Entry.t -> Message.t -> want:want -> send_verdict

(** [bcast_wait] is {!bcast} with blocking admission control: the
    calling task parks until the overload clears (woken by transport
    credit refunds and pipeline dispatches), then sends.
    [on_backpressure gid] runs once if the call actually had to wait —
    the hook applications use to count shed/slowed requests.  Must run
    inside a task, like any blocking primitive. *)
val bcast_wait :
  ?on_backpressure:(Addr.group_id -> unit) ->
  proc -> mode -> dest:Addr.t -> entry:Entry.t -> Message.t -> want:want -> outcome

(** [ab_window_now t gid] is the live ABCAST origination window of a
    locally-visible group: the AIMD value under [ab_adaptive], the
    static config otherwise, [0] meaning ungated. *)
val ab_window_now : t -> Addr.group_id -> int option

(** [reply p ~request answer] answers a message delivered to [p] that
    carries a session (1 asynchronous CBCAST, 1 destination). *)
val reply : proc -> request:Message.t -> Message.t -> unit

(** [reply_cc p ~request answer ~copy_to] also delivers a copy of the
    answer to each process in [copy_to], at their
    [Entry.generic_cc_reply] entry (used by coordinator-cohort). *)
val reply_cc : proc -> request:Message.t -> Message.t -> copy_to:Addr.proc list -> unit

(** [null_reply p ~request] tells the caller not to wait for a real
    reply from [p] (standbys; paper Sec 3.2). *)
val null_reply : proc -> request:Message.t -> unit

(** [flush p] blocks until every asynchronous multicast [p] has issued
    is delivered at all its destinations (paper Sec 3.2 footnote: call
    before interacting with the external world or stable storage). *)
val flush : proc -> unit

(** [redeliver p m] re-runs entry dispatch for a message a filter
    previously absorbed (the state transfer tool buffers inbound
    traffic this way until the transferred state is installed). *)
val redeliver : proc -> Message.t -> unit

(** [delivery_mode m] is the primitive that carried a delivered
    message, stamped by the sending runtime (the compliance-checking
    tool is built on this). *)
val delivery_mode : Message.t -> mode option

(** Encoding of {!Types.want} used in the system field carried by
    reply-collecting multicasts. *)
val want_to_int : want -> int

val want_of_int : int -> want

(** {1 Accounting} *)

(** [uptime_utilization t] is CPU busy time divided by elapsed time. *)
val uptime_utilization : t -> float

(** {1 Hygiene gauges}

    All three drain to zero once traffic quiesces; tests assert this to
    catch protocol-state leaks. *)

val pending_unstable : t -> int
val pending_held_frames : t -> int
val pending_sessions : t -> int

(** [pending_store t] — buffered multicast copies awaiting stability
    across all groups (the paper's Sec 4 GC target). *)
val pending_store : t -> int

(** [dedup_residue t] — delivery-dedup records not yet covered by a
    stability watermark, across all groups.  With {!config.stability_gc}
    this drains to zero at quiescence; without it, it grows with every
    multicast the view ever carried. *)
val dedup_residue : t -> int

(** [state_stats t] — labelled sizes of every per-group protocol-state
    structure (store, dedup tails, buffered ABCASTs, queued events,
    blocked sends, unstables, held frames, sessions), for the soak
    bench's bounded-memory measurements. *)
val state_stats : t -> (string * int) list
