module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Obs_tracer = Vsync_obs.Tracer
module Obs_event = Vsync_obs.Event
module Metrics = Vsync_obs.Metrics

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.invariant v.detail

type view_obs = {
  v_id : int;
  v_members : string list;
  v_failed : string list; (* members this change reported as failed *)
}

type pevent =
  | Delivered of { tag : int; at : int }
  | Viewed of view_obs

type tracked = {
  proc : Runtime.proc;
  pname : string;
  base_view : int option; (* membership view current when tracking began *)
  mutable events : pevent list; (* newest first *)
  mutable delivered_tags : int list; (* newest first *)
}

type send_rec = {
  s_mode : Types.mode;
  s_sender : string;
  s_site : int;
  s_member : bool; (* sender held a group copy (member send) vs client relay *)
  s_seq : int; (* per-sender send index *)
  s_view : int option;
  s_deps : int list; (* tags the sender had delivered before sending *)
  s_at : int;
}

(* A network split the harness vouches for: symmetric, covering every
   site, alone in its window, with no concurrent crashes — the cases
   where the primary-partition rule owes the majority side progress. *)
type partition_note = {
  p_from : int;
  p_until : int;
  p_left : int list;
  p_right : int list;
}

type t = {
  world : World.t;
  gid : Addr.group_id;
  tag_field : string;
  mutable tracked : tracked list; (* newest first *)
  sends : (int, send_rec) Hashtbl.t;
  send_seq : (string, int) Hashtbl.t;
  (* Runtime-level ground truth collected from the typed event stream
     (when tracing is enabled): (site, usite, useq) -> delivery count,
     and the set of uids each site reported stable. *)
  obs_deliveries : (int * int * int, int) Hashtbl.t;
  obs_stabilized : (int * int * int, unit) Hashtbl.t;
  (* (group, view_id) -> per-site installed membership shape, from
     View_install events: the raw material of the no-split-brain
     check. *)
  obs_views : (int * int, (int * int * int) list) Hashtbl.t;
  mutable partitions : partition_note list;
}

let create ?(tag_field = "tag") world ~gid =
  let t =
    {
      world;
      gid;
      tag_field;
      tracked = [];
      sends = Hashtbl.create 64;
      send_seq = Hashtbl.create 8;
      obs_deliveries = Hashtbl.create 256;
      obs_stabilized = Hashtbl.create 256;
      obs_views = Hashtbl.create 32;
      partitions = [];
    }
  in
  let tr = Vsync_sim.Trace.obs (World.trace world) in
  Obs_tracer.add_sink tr (fun (r : Obs_event.record) ->
      match r.Obs_event.ev with
      | Obs_event.Deliver { site; usite; useq; _ } ->
        let key = (site, usite, useq) in
        let n = Option.value ~default:0 (Hashtbl.find_opt t.obs_deliveries key) in
        Hashtbl.replace t.obs_deliveries key (n + 1)
      | Obs_event.Stabilize { site; usite; useq } ->
        Hashtbl.replace t.obs_stabilized (site, usite, useq) ()
      | Obs_event.View_install { site; group; view_id; nsites; mhash } ->
        let key = (group, view_id) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.obs_views key) in
        Hashtbl.replace t.obs_views key ((site, nsites, mhash) :: prev)
      | _ -> ());
  t

let note_partition t ~from_us ~until_us ~left ~right =
  if until_us > from_us && left <> [] && right <> [] then
    t.partitions <-
      { p_from = from_us; p_until = until_us; p_left = left; p_right = right } :: t.partitions

let tracked_procs t = List.rev_map (fun tr -> tr.proc) t.tracked

let find_tracked t proc =
  List.find_opt (fun tr -> Runtime.proc_uid tr.proc = Runtime.proc_uid proc) t.tracked

let monitor_views t tr =
  Runtime.pg_monitor tr.proc t.gid (fun v changes ->
      tr.events <-
        Viewed
          {
            v_id = v.View.view_id;
            v_members = List.map Addr.proc_to_string v.View.members;
            v_failed =
              List.filter_map
                (function
                  | View.Member_failed p -> Some (Addr.proc_to_string p)
                  | View.Member_joined _ | View.Member_left _ -> None)
                changes;
          }
        :: tr.events)

let track t proc =
  match find_tracked t proc with
  | Some _ -> ()
  | None ->
    let tr =
      {
        proc;
        pname = Addr.proc_to_string (Runtime.proc_addr proc);
        base_view = Option.map (fun v -> v.View.view_id) (Runtime.pg_view proc t.gid);
        events = [];
        delivered_tags = [];
      }
    in
    t.tracked <- tr :: t.tracked;
    monitor_views t tr

(* After an evicted process rejoins, its group copy — monitor
   registration included — is a fresh one: re-register the monitor and
   log the join view as a synthetic observation, so post-rejoin
   deliveries are attributed to the right view.  The process keeps its
   tracked record (and delivery history: exactly-once spans the
   eviction). *)
let retrack t proc =
  match find_tracked t proc with
  | None -> track t proc
  | Some tr ->
    (match Runtime.pg_view proc t.gid with
    | Some v ->
      tr.events <-
        Viewed
          {
            v_id = v.View.view_id;
            v_members = List.map Addr.proc_to_string v.View.members;
            v_failed = [];
          }
        :: tr.events
    | None -> ());
    monitor_views t tr

(* The membership view a tracked proc is currently in, {e as the proc
   itself has observed it}: the runtime's [pg_view] runs ahead of the
   user-visible event order (the view is installed at commit, while
   delivery and monitor callbacks follow one intra-site hop later, in
   the virtually synchronous order).  Positional reconstruction from the
   proc's own event log is what the VS guarantees actually speak
   about. *)
let observed_view tr =
  let rec last = function
    | Viewed { v_id; _ } :: _ -> Some v_id
    | Delivered _ :: rest -> last rest
    | [] -> tr.base_view
  in
  last tr.events

let note_send t proc ~mode ~tag =
  if Hashtbl.mem t.sends tag then
    invalid_arg (Printf.sprintf "Oracle.note_send: tag %d sent twice" tag);
  let sender = Addr.proc_to_string (Runtime.proc_addr proc) in
  let seq = Option.value ~default:0 (Hashtbl.find_opt t.send_seq sender) in
  Hashtbl.replace t.send_seq sender (seq + 1);
  let tr = find_tracked t proc in
  Hashtbl.replace t.sends tag
    {
      s_mode = mode;
      s_sender = sender;
      s_site = (Runtime.proc_addr proc).Addr.site;
      s_member = Runtime.pg_view proc t.gid <> None;
      s_seq = seq;
      s_view = Option.bind tr observed_view;
      s_deps = (match tr with Some tr -> tr.delivered_tags | None -> []);
      s_at = World.now t.world;
    }

let note_delivery t proc msg =
  match Message.get_int msg t.tag_field with
  | None -> ()
  | Some tag -> (
    match find_tracked t proc with
    | None -> ()
    | Some tr ->
      tr.events <- Delivered { tag; at = World.now t.world } :: tr.events;
      tr.delivered_tags <- tag :: tr.delivered_tags)

let bind_tap t proc entry k =
  track t proc;
  Runtime.bind proc entry (fun msg ->
      note_delivery t proc msg;
      k msg)

let pp_history ppf t =
  List.iter
    (fun tr ->
      Format.fprintf ppf "%s:@\n" tr.pname;
      (match tr.base_view with
      | Some v -> Format.fprintf ppf "  (tracked in view #%d)@\n" v
      | None -> ());
      List.iter
        (function
          | Viewed { v_id; v_members; v_failed } ->
            Format.fprintf ppf "  view #%d {%s}%s@\n" v_id (String.concat " " v_members)
              (match v_failed with [] -> "" | f -> " failed: " ^ String.concat " " f)
          | Delivered { tag; at } -> Format.fprintf ppf "  tag %d at %dus@\n" tag at)
        (List.rev tr.events))
    (List.rev t.tracked)

let n_sends t = Hashtbl.length t.sends

let n_deliveries t =
  List.fold_left (fun acc tr -> acc + List.length tr.delivered_tags) 0 t.tracked

let latencies_us t =
  List.concat_map
    (fun tr ->
      List.filter_map
        (function
          | Delivered { tag; at; _ } -> (
            match Hashtbl.find_opt t.sends tag with
            | Some s -> Some (at - s.s_at)
            | None -> None)
          | Viewed _ -> None)
        (List.rev tr.events))
    (List.rev t.tracked)

(* --- The checker --- *)

let check ?(hygiene = true) t =
  let violations = ref [] in
  let fail invariant fmt =
    Format.kasprintf (fun detail -> violations := { invariant; detail } :: !violations) fmt
  in
  let tracked = List.rev t.tracked in
  let chrono tr = List.rev tr.events in
  (* Deliveries paired with the membership view the proc had observed at
     that point of its own event log (see [observed_view]). *)
  let deliveries tr =
    let _, rev =
      List.fold_left
        (fun (cur, acc) ev ->
          match ev with
          | Delivered { tag; _ } -> (cur, (tag, cur) :: acc)
          | Viewed { v_id; _ } -> (Some v_id, acc))
        (tr.base_view, []) (chrono tr)
    in
    List.rev rev
  in
  let send_of tag = Hashtbl.find_opt t.sends tag in

  (* Current views of the live tracked procs. *)
  let live_views =
    List.filter_map
      (fun tr ->
        if Runtime.proc_alive tr.proc then
          Option.map
            (fun v -> (tr, v.View.view_id, List.map Addr.proc_to_string v.View.members))
            (Runtime.pg_view tr.proc t.gid)
        else None)
      tracked
  in

  (* 1. Final-view agreement: every live tracked proc that belongs to
     the newest view must report exactly that view.  A live proc outside
     the newest membership was evicted (e.g. a false suspicion) and
     holds a legitimately stale view; it is excluded here but still
     subject to every delivery-ordering invariant. *)
  (match live_views with
  | [] -> ()
  | (_, id0, m0) :: rest ->
    let vmax_id, vmax_members =
      List.fold_left
        (fun (bi, bm) (_, i, m) -> if i > bi then (i, m) else (bi, bm))
        (id0, m0) rest
    in
    List.iter
      (fun (tr, id, members) ->
        if List.mem tr.pname vmax_members then begin
          if id <> vmax_id then
            fail "final-view-agreement" "%s has view #%d but the newest view is #%d" tr.pname id
              vmax_id
          else if members <> vmax_members then
            fail "final-view-agreement" "%s disagrees on the membership of view #%d" tr.pname id
        end)
      live_views);

  (* 2. View consistency: a given view id names the same membership at
     every observer. *)
  let view_members : (int, string list * string) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun tr ->
      List.iter
        (function
          | Viewed { v_id; v_members; _ } -> (
            match Hashtbl.find_opt view_members v_id with
            | None -> Hashtbl.replace view_members v_id (v_members, tr.pname)
            | Some (known, who) ->
              if known <> v_members then
                fail "view-consistency" "view #%d differs between %s and %s" v_id who tr.pname)
          | Delivered _ -> ())
        (chrono tr))
    tracked;

  (* 3. No duplicate deliveries. *)
  List.iter
    (fun tr ->
      let tags = List.map fst (deliveries tr) in
      let sorted = List.sort compare tags in
      let rec dups = function
        | a :: (b :: _ as rest) -> if a = b then a :: dups rest else dups rest
        | _ -> []
      in
      List.iter
        (fun d -> fail "no-duplicate-delivery" "%s delivered tag %d more than once" tr.pname d)
        (List.sort_uniq compare (dups sorted)))
    tracked;

  (* Per-receiver tag position index, for the ordering checks. *)
  let position tr =
    let h = Hashtbl.create 64 in
    List.iteri (fun i (tag, _) -> if not (Hashtbl.mem h tag) then Hashtbl.add h tag i) (deliveries tr);
    h
  in
  let positions = List.map (fun tr -> (tr, position tr)) tracked in

  (* 4. FIFO per sender: a receiver sees any one sender's CBCASTs in
     send order.  (The guarantee is per protocol — ISIS makes no
     cross-protocol promise, and ABCAST's total order need not respect
     per-sender send order.)  Also flags deliveries the harness never
     registered. *)
  List.iter
    (fun tr ->
      let last_seq : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (tag, _) ->
          match send_of tag with
          | None -> fail "unregistered-delivery" "%s delivered tag %d that was never sent" tr.pname tag
          | Some ({ s_mode = Types.Cbcast; _ } as s) -> (
            match Hashtbl.find_opt last_seq s.s_sender with
            | Some (prev_seq, prev_tag) when s.s_seq < prev_seq ->
              fail "fifo-per-sender" "%s delivered tag %d (seq %d of %s) after tag %d (seq %d)"
                tr.pname tag s.s_seq s.s_sender prev_tag prev_seq
            | _ -> Hashtbl.replace last_seq s.s_sender (s.s_seq, tag))
          | Some _ -> ())
        (deliveries tr))
    tracked;

  (* 5. Causal order: every CBCAST the sender had already delivered
     when it sent CBCAST [b] precedes [b] wherever both are delivered.
     Restricted to CBCAST-CBCAST pairs: that is the documented causal
     domain (ABCAST/GBCAST have their own ordering checked above). *)
  let is_cbcast tag =
    match send_of tag with Some { s_mode = Types.Cbcast; _ } -> true | Some _ | None -> false
  in
  List.iter
    (fun (tr, pos) ->
      List.iter
        (fun (b, _) ->
          match send_of b with
          | Some ({ s_mode = Types.Cbcast; _ } as s) ->
            let b_pos = Hashtbl.find pos b in
            List.iter
              (fun a ->
                if is_cbcast a then
                  match Hashtbl.find_opt pos a with
                  | Some a_pos when a_pos > b_pos ->
                    fail "causal-order" "%s delivered tag %d before its causal predecessor %d"
                      tr.pname b a
                  | Some _ | None -> ())
              s.s_deps
          | Some _ | None -> ())
        (deliveries tr))
    positions;

  (* 6. Total order: ABCAST/GBCAST tags delivered by two receivers
     appear in the same relative order at both. *)
  let total_seq tr =
    List.filter_map
      (fun (tag, _) ->
        match send_of tag with
        | Some { s_mode = Types.Abcast | Types.Gbcast; _ } -> Some tag
        | Some _ | None -> None)
      (deliveries tr)
  in
  let rec pairs = function [] -> [] | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest in
  List.iter
    (fun (a, b) ->
      let sa = total_seq a and sb = total_seq b in
      let common_a = List.filter (fun x -> List.mem x sb) sa in
      let common_b = List.filter (fun x -> List.mem x sa) sb in
      if common_a <> common_b then begin
        let mode_of tag =
          match send_of tag with
          | Some { s_mode = Types.Abcast; _ } -> "abcast"
          | Some { s_mode = Types.Gbcast; _ } -> "gbcast"
          | Some { s_mode = Types.Cbcast; _ } -> "cbcast"
          | None -> "?"
        in
        let rec first_diff = function
          | x :: xs, y :: ys -> if x = y then first_diff (xs, ys) else Some (x, y)
          | x :: _, [] -> Some (x, -1)
          | [], y :: _ -> Some (-1, y)
          | [], [] -> None
        in
        match first_diff (common_a, common_b) with
        | Some (x, y) ->
          fail "total-order" "%s and %s diverge on ABCAST/GBCAST order: %s has tag %d (%s), %s has tag %d (%s)"
            a.pname b.pname a.pname x (mode_of x) b.pname y (mode_of y)
        | None ->
          fail "total-order" "%s and %s deliver common ABCAST/GBCAST tags in different orders"
            a.pname b.pname
      end)
    (pairs tracked);

  (* 7. Same delivery view: a message is delivered in one view
     everywhere, and never in a view older than the one it was sent
     in.

     One principled exception: a GBCAST committed by the very view
     change that admits a joiner is delivered {e at the synchronization
     point} — members of the retiring view observe it just before the
     new view, while the joiner observes it as the first event of its
     join view.  Same point in the virtually synchronous order, two
     view labels; the joiner's observation is exempted. *)
  let is_gbcast tag =
    match send_of tag with Some { s_mode = Types.Gbcast; _ } -> true | Some _ | None -> false
  in
  (* [w] delivered [tag] at the synchronization point that admitted it:
     it was tracked in view [v] and delivered [tag] before observing any
     view event of its own. *)
  let sync_join_delivery w tag v =
    is_gbcast tag
    && List.exists
         (fun tr ->
           tr.pname = w
           && tr.base_view = Some v
           &&
           let rec leading = function
             | Delivered { tag = t'; _ } :: rest -> t' = tag || leading rest
             | Viewed _ :: _ | [] -> false
           in
           leading (List.rev tr.events))
         tracked
  in
  let delivery_views : (int, (string * int) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tr ->
      List.iter
        (fun (tag, view) ->
          match view with
          | None -> ()
          | Some v ->
            Hashtbl.replace delivery_views tag
              ((tr.pname, v) :: Option.value ~default:[] (Hashtbl.find_opt delivery_views tag)))
        (deliveries tr))
    tracked;
  let sorted_tags h = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h []) in
  List.iter
    (fun tag ->
      match Hashtbl.find_opt delivery_views tag with
      | None | Some [] -> ()
      | Some all ->
        (match List.filter (fun (w, v) -> not (sync_join_delivery w tag v)) all with
        | [] -> ()
        | (w0, v0) :: rest ->
          List.iter
            (fun (w, v) ->
              if v <> v0 then
                fail "same-delivery-view" "tag %d delivered in view #%d at %s but #%d at %s" tag
                  v0 w0 v w)
            rest);
        (match send_of tag with
        | Some { s_view = Some sv; _ } ->
          List.iter
            (fun (w, v) ->
              if v < sv then
                fail "delivery-in-sending-view" "tag %d sent in view #%d but delivered in #%d at %s"
                  tag sv v w)
            all
        | Some _ | None -> ()))
    (sorted_tags delivery_views);

  (* 8. Atomicity: if a message was delivered in view v by a process
     that survived v, every tracked member of v that also survived v
     delivered it too.  A message delivered {e only} by processes that
     then failed inside v carries no obligation: the canonical case is a
     CBCAST sender's immediate self-delivery where the sender crashes
     before the message leaves the site — the flush forgets it, exactly
     as the paper allows. *)
  (* Newest membership view any live tracked proc has observed.  (Not
     [pg_view]: commits that carry only user GBCASTs advance the runtime
     view id without a membership change, so runtime ids and observed
     membership ids live on different scales.) *)
  let newest_view_id =
    List.fold_left
      (fun acc tr ->
        if Runtime.proc_alive tr.proc then
          match observed_view tr with Some v -> max acc v | None -> acc
        else acc)
      min_int tracked
  in
  (* [survived_view tr v]: tr demonstrably outlived view v {e as a
     member} — it observed a later view (or v is the newest view and tr
     is alive in it), and the next membership change after v kept it.  A
     process the next view removed — failed, left, or evicted on the
     losing side of a partition — carries no delivery obligation for v,
     even if it later rejoins and observes newer views. *)
  let next_membership v =
    Hashtbl.fold
      (fun id (members, _) acc ->
        if id > v then
          match acc with Some (bid, _) when bid < id -> acc | _ -> Some (id, members)
        else acc)
      view_members None
  in
  let survived_view tr v =
    (List.exists (function Viewed { v_id; _ } -> v_id > v | Delivered _ -> false) tr.events
    || (v = newest_view_id && Runtime.proc_alive tr.proc && observed_view tr = Some v))
    && match next_membership v with
       | Some (_, members) -> List.mem tr.pname members
       | None -> true
  in
  List.iter
    (fun tag ->
      match Hashtbl.find_opt delivery_views tag with
      | None | Some [] -> ()
      | Some ((_, v) :: _ as all) -> (
        match Hashtbl.find_opt view_members v with
        | None -> ()
        | Some (members, _) ->
          let surviving_deliverer =
            List.exists
              (fun (pname, _) ->
                match List.find_opt (fun tr -> tr.pname = pname) tracked with
                | Some tr -> survived_view tr v
                | None -> false)
              all
          in
          if surviving_deliverer then
            List.iter
              (fun tr ->
                if
                  List.mem tr.pname members
                  && (not (List.mem tag tr.delivered_tags))
                  && survived_view tr v
                then
                  fail "atomicity" "%s was a member of view #%d and survived it but missed tag %d"
                    tr.pname v tag)
              tracked))
    (sorted_tags delivery_views);

  (* 9. No delivery after an observed failure: once a receiver saw the
     sender fail through a view change, nothing more from that sender
     (that incarnation) may arrive. *)
  List.iter
    (fun tr ->
      let failed = Hashtbl.create 8 in
      List.iter
        (function
          | Viewed { v_members; v_failed; _ } ->
            List.iter (fun p -> Hashtbl.replace failed p ()) v_failed;
            (* A failed process reappearing in a later membership
               rejoined as a fresh member: its new sends are
               legitimate. *)
            List.iter (fun p -> Hashtbl.remove failed p) v_members
          | Delivered { tag; _ } -> (
            match send_of tag with
            (* Client sends are exempt: an evicted process whose group
               copy was torn down keeps multicasting through the relay
               path as an ordinary non-member client, which ISIS
               permits — the failure the receiver observed retired its
               membership, not its right to talk to the group. *)
            | Some s when s.s_member && Hashtbl.mem failed s.s_sender ->
              fail "no-delivery-after-failure"
                "%s delivered tag %d from %s after observing its failure" tr.pname tag s.s_sender
            | Some _ | None -> ()))
        (chrono tr))
    tracked;

  (* 10. Quiescent hygiene: protocol state has drained at every site
     that is in the final membership.  A live site whose members were
     evicted (e.g. it sat on the losing side of a partition and was
     flushed out) never learns of the eviction — it stalls holding its
     old-view state, which is exactly the paper's "ISIS blocks the
     minority" semantics, not a leak — so it is exempt. *)
  if hygiene then begin
    let final_sites =
      List.fold_left
        (fun ((best_id, _) as acc) tr ->
          if Runtime.proc_alive tr.proc then
            match Runtime.pg_view tr.proc t.gid with
            | Some v when v.View.view_id > best_id -> (v.View.view_id, View.sites v)
            | Some _ | None -> acc
          else acc)
        (min_int, []) tracked
      |> snd
    in
    List.iter
      (fun s ->
        let rt = World.runtime t.world s in
        if Runtime.alive rt then begin
          (* Sampled through the metrics registry rather than ad-hoc
             accessors, so the sweep also validates that the gauges the
             dashboards read are wired to live state. *)
          let m = Runtime.metrics rt in
          let gauge name =
            match Metrics.read_int m name with
            | None -> fail "hygiene-quiescence" "site %d: gauge %s is not registered" s name
            | Some v -> if v <> 0 then fail "hygiene-quiescence" "site %d: %s = %d" s name v
          in
          gauge "runtime.pending_unstable";
          gauge "runtime.held_frames";
          gauge "runtime.sessions";
          (* Stability-driven GC: once everything stabilized, the
             retransmission store is empty and every dedup record is
             covered by a watermark (a nonzero residue means a GC
             path was missed and state would accrete forever). *)
          gauge "runtime.pending_store";
          gauge "runtime.dedup_residue";
          (* Flow control: at quiescence no round is queued or in
             flight and no frame is staged for coalescing — a nonzero
             reading means admission leaked.  The credit gauges
             ([transport.credit_waiting] / [credit_used_bytes]) mirror
             the unacked window and are exempt for the same reason
             [transport.inflight] is: frames toward a site that died
             sit in the window until the retransmit budget exhausts,
             which can outlast any settle period.  Their drain on
             clean runs is pinned by the flow-control tests. *)
          gauge "runtime.ab_queue";
          gauge "runtime.ab_inflight";
          gauge "transport.sendq_depth"
        end)
      (List.sort_uniq compare final_sites)
  end;

  (* 11. Typed event stream (populated only when tracing is enabled;
     vacuous otherwise): the runtime must never hand the same uid to a
     site's delivery queue twice, and a site may only report a uid
     stable if that site actually delivered it. *)
  Hashtbl.fold (fun k n acc -> if n > 1 then (k, n) :: acc else acc) t.obs_deliveries []
  |> List.sort compare
  |> List.iter (fun ((site, usite, useq), n) ->
         fail "obs-duplicate-delivery" "site %d delivered uid %d.%d %d times (typed stream)" site
           usite useq n);
  Hashtbl.fold (fun k () acc -> k :: acc) t.obs_stabilized []
  |> List.sort compare
  |> List.iter (fun ((site, usite, useq) as k) ->
         (* At the origin site the Stabilize event is sender-side
            bookkeeping — "every remote destination acked" — not a
            delivery claim: an origin whose own delivery was still in
            the causal buffer when a partition evicted it never
            delivers, legally.  Hold every non-origin site to the
            strict reading. *)
         if site <> usite && not (Hashtbl.mem t.obs_deliveries k) then
           fail "obs-stability-without-delivery"
             "site %d marked uid %d.%d stable without delivering it (typed stream)" site usite useq);

  (* 12. No split brain: a given (group, view id) is installed with one
     membership — same size, same member hash — at every site that
     installs it.  Two components each believing they hold view [v]
     with different memberships is exactly the split-brain the
     primary-partition rule forbids.  Collected from the typed event
     stream; vacuous when tracing is off. *)
  Hashtbl.fold (fun k vs acc -> (k, vs) :: acc) t.obs_views []
  |> List.sort compare
  |> List.iter (fun ((group, view_id), installs) ->
         match List.rev installs with
         | [] | [ _ ] -> ()
         | (s0, n0, h0) :: rest ->
           List.iter
             (fun (s, n, h) ->
               if n <> n0 || h <> h0 then
                 fail "no-split-brain"
                   "group %d view #%d installed with different memberships at site %d and site %d \
                    (split brain)"
                   group view_id s0 s)
             rest);

  (* 13. Primary-partition progress: during a vouched-for full split
     (see [note_partition]) the side holding a strict majority of the
     sites retains the primary partition, so its members' sends must
     still be delivered by the time the run quiesces.  A send that
     vanishes means the majority wedged — the availability half of the
     primary-partition rule.  One exemption: a sender that was itself
     evicted from the group at some later view change (e.g. a post-heal
     loss window got it suspected) loses its still-buffered sends with
     the partition teardown, which is the documented Buffer-policy
     contract, not a wedge.  A genuinely wedged majority installs no
     views at all, so no eviction is ever observed and the check still
     fires. *)
  let evicted_senders =
    List.concat_map
      (fun tr ->
        List.concat_map (function Viewed v -> v.v_failed | Delivered _ -> []) tr.events)
      tracked
  in
  List.iter
    (fun pn ->
      let total = List.length pn.p_left + List.length pn.p_right in
      let maj =
        if List.length pn.p_left > List.length pn.p_right then pn.p_left else pn.p_right
      in
      if 2 * List.length maj > total then
        Hashtbl.fold (fun tag s acc -> (tag, s) :: acc) t.sends []
        |> List.sort compare
        |> List.iter (fun (tag, s) ->
               if
                 s.s_at >= pn.p_from && s.s_at < pn.p_until
                 && List.mem s.s_site maj
                 && (not (List.exists (fun tr -> List.mem tag tr.delivered_tags) tracked))
                 && not (List.mem s.s_sender evicted_senders)
               then
                 fail "primary-partition-progress"
                   "tag %d sent from majority site %d during the split at %dus was never delivered"
                   tag s.s_site s.s_at))
    (List.rev t.partitions);

  List.rev !violations

let report t violations =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "oracle: %d sends, %d deliveries across %d tracked processes\n" (n_sends t)
       (n_deliveries t) (List.length t.tracked));
  (match violations with
  | [] -> Buffer.add_string b "oracle verdict: PASS (all virtual synchrony invariants hold)\n"
  | vs ->
    Buffer.add_string b (Printf.sprintf "oracle verdict: FAIL (%d violations)\n" (List.length vs));
    List.iter (fun v -> Buffer.add_string b (Format.asprintf "  %a\n" pp_violation v)) vs);
  Buffer.contents b

let history_digest t = Digest.to_hex (Digest.string (Format.asprintf "%a" pp_history t))
