(** Simulation harness: a complete multi-site ISIS deployment.

    Bundles the event engine, the network, the transport fabric, one
    {!Runtime} per site, and a trace — everything a test, example or
    benchmark needs to stand up "a cluster" in a few lines:

    {[
      let w = World.create ~sites:4 () in
      let p0 = World.proc w ~site:0 ~name:"creator" in
      World.run_task w p0 (fun () -> ...);   (* body may block *)
      World.run w                            (* drive to quiescence *)
    ]} *)

type t

(** [create ~sites ~seed ~net_config ~runtime_config ()] builds a
    deployment with all sites up. *)
val create :
  ?seed:int64 ->
  ?net_config:Vsync_sim.Net.config ->
  ?runtime_config:Runtime.config ->
  ?clock_skew_us:int ->
  sites:int ->
  unit ->
  t

val engine : t -> Vsync_sim.Engine.t
val net : t -> Vsync_sim.Net.t
val trace : t -> Vsync_sim.Trace.t
val n_sites : t -> int

(** [runtime w s] is site [s]'s protocols process. *)
val runtime : t -> int -> Runtime.t

(** [proc w ~site ~name] spawns a process at [site]. *)
val proc : t -> site:int -> name:string -> Runtime.proc

(** [run_task w p f] starts [f] as a task of [p] (it may block on group
    RPCs etc.). *)
val run_task : t -> Runtime.proc -> (unit -> unit) -> unit

(** [run w] drives the simulation for 60 virtual seconds (failure
    detector probes recur forever, so there is no natural quiescence);
    [run ~until w] stops at the given virtual time instead. *)
val run : ?until:Vsync_sim.Engine.time -> t -> unit

(** [run_for w us] advances virtual time by [us]. *)
val run_for : t -> int -> unit

(** [now w] is the current virtual time. *)
val now : t -> Vsync_sim.Engine.time

(** {1 Failure injection} *)

(** [crash_site w s] crashes site [s] (network + runtime + processes). *)
val crash_site : t -> int -> unit

(** [restart_site w s] restores a crashed site under a new
    incarnation. *)
val restart_site : t -> int -> unit

(** [partition w left right] splits the network; [heal w] repairs it. *)
val partition : t -> int list -> int list -> unit

val heal : t -> unit

(** [nemesis_actions w] routes nemesis site ops through the full
    deployment ({!crash_site} / {!restart_site}, i.e. network and
    runtime together). *)
val nemesis_actions : t -> Vsync_sim.Nemesis.actions

(** [apply_nemesis w plan] schedules a fault plan against this world,
    relative to the current virtual time. *)
val apply_nemesis : t -> Vsync_sim.Nemesis.plan -> unit

(** {1 Accounting} *)

(** [total_counters w] merges the per-runtime counters with the network
    counters (prefix ["net."]). *)
val total_counters : t -> (string * int) list
