(** Deployment harness: a complete multi-site ISIS deployment.

    Bundles an execution backend, the transport fabric, one {!Runtime}
    per site, and a trace — everything a test, example or benchmark
    needs to stand up "a cluster" in a few lines:

    {[
      let w = World.create ~sites:4 () in
      let p0 = World.proc w ~site:0 ~name:"creator" in
      World.run_task w p0 (fun () -> ...);   (* body may block *)
      World.run w                            (* drive to quiescence *)
    ]}

    Two backends ({!backend_kind}): the default deterministic simulator
    (virtual time, fault injection, bit-reproducible from the seed) and
    the wall-clock driver (real time, real asynchrony, hardware speed —
    {!Vsync_backend.Wallclock}).  The protocol stack is the same
    compiled code either way.  Simulator-only operations — {!engine},
    {!net}, fault injection, nemesis — raise [Invalid_argument] on a
    wall-clock world. *)

type backend_kind =
  | Sim  (** deterministic discrete-event simulation (the default). *)
  | Wall of Vsync_backend.Wallclock.config
      (** real time; no loss model, no nemesis, no determinism. *)

type t

(** [create ~sites ~seed ~net_config ~runtime_config ()] builds a
    deployment with all sites up.  [net_config] applies only to the
    simulator backend (the wall backend carries its own latency knobs in
    its {!backend_kind} payload). *)
val create :
  ?backend:backend_kind ->
  ?seed:int64 ->
  ?net_config:Vsync_sim.Net.config ->
  ?runtime_config:Runtime.config ->
  ?clock_skew_us:int ->
  sites:int ->
  unit ->
  t

(** The world's execution backend. *)
val backend : t -> Vsync_backend.Backend.t

(** Which backend drives this world. *)
val kind : t -> Vsync_backend.Backend.kind

(** Simulator-only accessors.
    @raise Invalid_argument on a wall-clock world. *)
val engine : t -> Vsync_sim.Engine.t

val net : t -> Vsync_sim.Net.t
val trace : t -> Vsync_sim.Trace.t
val n_sites : t -> int

(** [runtime w s] is site [s]'s protocols process. *)
val runtime : t -> int -> Runtime.t

(** [proc w ~site ~name] spawns a process at [site]. *)
val proc : t -> site:int -> name:string -> Runtime.proc

(** [run_task w p f] starts [f] as a task of [p] (it may block on group
    RPCs etc.). *)
val run_task : t -> Runtime.proc -> (unit -> unit) -> unit

(** [run w] drives the deployment for 60 seconds of backend time
    (failure detector probes recur forever, so there is no natural
    quiescence); [run ~until w] stops at the given backend time instead.
    On a wall-clock world those are real seconds — prefer {!run_for} or
    {!run_cond} there. *)
val run : ?until:int -> t -> unit

(** [run_for w us] advances backend time by [us]. *)
val run_for : t -> int -> unit

(** [run_cond ~timeout_us w pred] drives the world in [slice_us] slices
    (default 2 ms) until [pred ()] holds or [timeout_us] elapses;
    returns the predicate's final verdict.  The only sane way to wait
    for a condition (group formed, N messages delivered) on the
    wall-clock backend, and works identically on the simulator. *)
val run_cond : ?slice_us:int -> timeout_us:int -> t -> (unit -> bool) -> bool

(** [now w] is the current backend time (virtual µs on the simulator,
    elapsed real µs on the wall clock). *)
val now : t -> int

(** {1 Failure injection (simulator only)}

    Each of these raises [Invalid_argument] on a wall-clock world. *)

(** [crash_site w s] crashes site [s] (network + runtime + processes). *)
val crash_site : t -> int -> unit

(** [restart_site w s] restores a crashed site under a new
    incarnation. *)
val restart_site : t -> int -> unit

(** [partition w left right] splits the network; [heal w] repairs it. *)
val partition : t -> int list -> int list -> unit

val heal : t -> unit

(** [nemesis_actions w] routes nemesis site ops through the full
    deployment ({!crash_site} / {!restart_site}, i.e. network and
    runtime together). *)
val nemesis_actions : t -> Vsync_sim.Nemesis.actions

(** [apply_nemesis w plan] schedules a fault plan against this world,
    relative to the current virtual time. *)
val apply_nemesis : t -> Vsync_sim.Nemesis.plan -> unit

(** {1 Accounting} *)

(** [total_counters w] merges the per-runtime counters with the network
    counters (prefix ["net."]; absent on a wall-clock world). *)
val total_counters : t -> (string * int) list
