(* A tiny free list of Buffers, so encode bursts (state transfer,
   stable-store snapshots, benchmark loops) reuse their scratch space
   instead of regrowing a fresh buffer per message. *)

let max_pooled = 8
let pool : Buffer.t list ref = ref []
let pooled = ref 0

let acquire () =
  match !pool with
  | b :: rest ->
    pool := rest;
    decr pooled;
    Buffer.clear b;
    b
  | [] -> Buffer.create 256

let release b =
  if !pooled < max_pooled then begin
    (* Don't let one pathological message pin megabytes in the pool. *)
    if Buffer.length b <= 1 lsl 20 then begin
      pool := b :: !pool;
      incr pooled
    end
  end

let with_buf f =
  let b = acquire () in
  Fun.protect ~finally:(fun () -> release b) (fun () -> f b)
