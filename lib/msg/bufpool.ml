(* A tiny free list of Buffers, so encode bursts (state transfer,
   stable-store snapshots, benchmark loops) reuse their scratch space
   instead of regrowing a fresh buffer per message.

   Domain-local ([Vsync_util.Dls]): a Buffer handed between domains
   would race, and the pool is pure cache — per-domain free lists are
   both safe and what you want for locality. *)

type state = { mutable pool : Buffer.t list; mutable pooled : int }

let max_pooled = 8
let state_key = Vsync_util.Dls.make (fun () -> { pool = []; pooled = 0 })

let acquire () =
  let st = Vsync_util.Dls.get state_key in
  match st.pool with
  | b :: rest ->
    st.pool <- rest;
    st.pooled <- st.pooled - 1;
    Buffer.clear b;
    b
  | [] -> Buffer.create 256

let release b =
  let st = Vsync_util.Dls.get state_key in
  if st.pooled < max_pooled then begin
    (* Don't let one pathological message pin megabytes in the pool. *)
    if Buffer.length b <= 1 lsl 20 then begin
      st.pool <- b :: st.pool;
      st.pooled <- st.pooled + 1
    end
  end

let with_buf f =
  let b = acquire () in
  Fun.protect ~finally:(fun () -> release b) (fun () -> f b)
