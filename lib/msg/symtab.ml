(* Global field-name interner.  The simulation is single-threaded, so a
   plain open-addressing table plus a growable id->name array suffice.

   Open addressing (rather than stdlib Hashtbl) so the decoder can
   intern a name straight out of a wire buffer — hashing and comparing
   against the bytes range in place — without first allocating the
   string.  Only the first-ever sighting of a name allocates. *)

let names = ref (Array.make 64 "")
let count = ref 0

(* Power-of-two slot array; -1 marks an empty slot. *)
let slots = ref (Array.make 256 (-1))

(* FNV-1a, truncated to OCaml's positive int range.  [hash_string] and
   [hash_sub] must agree byte for byte. *)
let fnv_prime = 0x01000193
let fnv_basis = 0x811c9dc5

let hash_string s =
  let h = ref fnv_basis in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime land max_int
  done;
  !h

let hash_sub b pos len =
  let h = ref fnv_basis in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime land max_int
  done;
  !h

(* Linear probe for [s]: the interned id when present, [lnot slot] of
   the first empty slot when absent. *)
let lookup s h =
  let tbl = !slots in
  let m = Array.length tbl - 1 in
  let rec go i =
    let j = (h + i) land m in
    let id = tbl.(j) in
    if id = -1 then lnot j else if String.equal !names.(id) s then id else go (i + 1)
  in
  go 0

let equal_sub s b pos len =
  String.length s = len
  &&
  let rec go i =
    i >= len || (String.unsafe_get s i = Bytes.unsafe_get b (pos + i) && go (i + 1))
  in
  go 0

let lookup_sub b pos len h =
  let tbl = !slots in
  let m = Array.length tbl - 1 in
  let rec go i =
    let j = (h + i) land m in
    let id = tbl.(j) in
    if id = -1 then lnot j else if equal_sub !names.(id) b pos len then id else go (i + 1)
  in
  go 0

let ensure_capacity () =
  if 2 * (!count + 1) >= Array.length !slots then begin
    let cap' = 2 * Array.length !slots in
    let tbl = Array.make cap' (-1) in
    let m = cap' - 1 in
    for id = 0 to !count - 1 do
      let h = hash_string !names.(id) in
      let rec place i =
        let j = (h + i) land m in
        if tbl.(j) = -1 then tbl.(j) <- id else place (i + 1)
      in
      place 0
    done;
    slots := tbl
  end

let add_name s =
  let id = !count in
  if id = Array.length !names then begin
    let bigger = Array.make (2 * id) "" in
    Array.blit !names 0 bigger 0 id;
    names := bigger
  end;
  !names.(id) <- s;
  incr count;
  id

let intern s =
  ensure_capacity ();
  let r = lookup s (hash_string s) in
  if r >= 0 then r
  else begin
    let id = add_name s in
    !slots.(lnot r) <- id;
    id
  end

let intern_sub b ~pos ~len =
  ensure_capacity ();
  let r = lookup_sub b pos len (hash_sub b pos len) in
  if r >= 0 then r
  else begin
    let id = add_name (Bytes.sub_string b pos len) in
    !slots.(lnot r) <- id;
    id
  end

let find s =
  let r = lookup s (hash_string s) in
  if r >= 0 then Some r else None

let name id =
  if id < 0 || id >= !count then invalid_arg "Symtab.name: unknown symbol";
  !names.(id)

let interned () = !count
