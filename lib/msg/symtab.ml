(* Field-name interner.  Open addressing (rather than stdlib Hashtbl)
   so the decoder can intern a name straight out of a wire buffer —
   hashing and comparing against the bytes range in place — without
   first allocating the string.  Only the first-ever sighting of a name
   allocates.

   The table is domain-local ([Vsync_util.Dls]): symbol ids are only
   meaningful relative to the interner that minted them, and messages
   never cross domains (the parallel harness runs whole worlds per
   domain), so per-domain tables give lock-free interning with no
   cross-domain races.  Within a domain the table stays what it always
   was: a single shared interner for every world on that domain. *)

type state = {
  mutable names : string array;
  mutable count : int;
  (* Power-of-two slot array; -1 marks an empty slot. *)
  mutable slots : int array;
}

let state_key =
  Vsync_util.Dls.make (fun () ->
      { names = Array.make 64 ""; count = 0; slots = Array.make 256 (-1) })

let state () = Vsync_util.Dls.get state_key

(* FNV-1a, truncated to OCaml's positive int range.  [hash_string] and
   [hash_sub] must agree byte for byte. *)
let fnv_prime = 0x01000193
let fnv_basis = 0x811c9dc5

let hash_string s =
  let h = ref fnv_basis in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime land max_int
  done;
  !h

let hash_sub b pos len =
  let h = ref fnv_basis in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * fnv_prime land max_int
  done;
  !h

(* Linear probe for [s]: the interned id when present, [lnot slot] of
   the first empty slot when absent. *)
let lookup st s h =
  let tbl = st.slots in
  let m = Array.length tbl - 1 in
  let rec go i =
    let j = (h + i) land m in
    let id = tbl.(j) in
    if id = -1 then lnot j else if String.equal st.names.(id) s then id else go (i + 1)
  in
  go 0

let equal_sub s b pos len =
  String.length s = len
  &&
  let rec go i =
    i >= len || (String.unsafe_get s i = Bytes.unsafe_get b (pos + i) && go (i + 1))
  in
  go 0

let lookup_sub st b pos len h =
  let tbl = st.slots in
  let m = Array.length tbl - 1 in
  let rec go i =
    let j = (h + i) land m in
    let id = tbl.(j) in
    if id = -1 then lnot j else if equal_sub st.names.(id) b pos len then id else go (i + 1)
  in
  go 0

let ensure_capacity st =
  if 2 * (st.count + 1) >= Array.length st.slots then begin
    let cap' = 2 * Array.length st.slots in
    let tbl = Array.make cap' (-1) in
    let m = cap' - 1 in
    for id = 0 to st.count - 1 do
      let h = hash_string st.names.(id) in
      let rec place i =
        let j = (h + i) land m in
        if tbl.(j) = -1 then tbl.(j) <- id else place (i + 1)
      in
      place 0
    done;
    st.slots <- tbl
  end

let add_name st s =
  let id = st.count in
  if id = Array.length st.names then begin
    let bigger = Array.make (2 * id) "" in
    Array.blit st.names 0 bigger 0 id;
    st.names <- bigger
  end;
  st.names.(id) <- s;
  st.count <- st.count + 1;
  id

let intern s =
  let st = state () in
  ensure_capacity st;
  let r = lookup st s (hash_string s) in
  if r >= 0 then r
  else begin
    let id = add_name st s in
    st.slots.(lnot r) <- id;
    id
  end

let intern_sub b ~pos ~len =
  let st = state () in
  ensure_capacity st;
  let r = lookup_sub st b pos len (hash_sub b pos len) in
  if r >= 0 then r
  else begin
    let id = add_name st (Bytes.sub_string b pos len) in
    st.slots.(lnot r) <- id;
    id
  end

let find s =
  let st = state () in
  let r = lookup st s (hash_string s) in
  if r >= 0 then Some r else None

let name id =
  let st = state () in
  if id < 0 || id >= st.count then invalid_arg "Symtab.name: unknown symbol";
  st.names.(id)

let interned () = (state ()).count
