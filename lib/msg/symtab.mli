(** Global symbol table for message field names.

    Field names repeat endlessly across messages (["$sender"],
    ["$entry"], application field names), so messages store a small
    integer per field instead of the string: lookups compare ints, and
    every copy of a name costs one word.  Ids are dense, allocated in
    first-intern order, and never freed — the name population of a
    running system is tiny and static.

    Single-threaded by design, like the rest of the simulator. *)

(** [intern s] returns the id for [s], allocating one on first use. *)
val intern : string -> int

(** [intern_sub b ~pos ~len] interns the name spelled by that range of
    [b], hashing and comparing in place — the decoder's path; it only
    allocates a string the first time a name is ever seen. *)
val intern_sub : bytes -> pos:int -> len:int -> int

(** [find s] returns [s]'s id only if it was interned before — useful
    for lookups that must not grow the table (a [get] of a name no
    message ever carried cannot allocate state). *)
val find : string -> int option

(** [name id] is the string for an id previously returned by {!intern}.
    @raise Invalid_argument on an id the table never issued. *)
val name : int -> string

(** [interned ()] is the number of distinct names seen (diagnostics). *)
val interned : unit -> int
