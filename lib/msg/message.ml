(* The message symbol table, reworked for the broadcast hot path:

   - Field names are interned ({!Symtab}); a message stores parallel
     arrays of symbol ids and values in insertion order, so lookups
     compare ints and construction never rebuilds a list.
   - Copies are copy-on-write: [copy] shares the store in O(1) and the
     first mutation through either handle pays the actual clone.  The
     runtime copies messages once per local delivery and once per
     responder, and the overwhelmingly common case — the recipient only
     reads scalar fields — now costs nothing.
   - The encoded size is cached on the store and invalidated by
     mutation, so the per-receive [Proto.size] walk stops re-encoding
     bodies.  The size is computed analytically from the layout; the
     codec below is the single source of truth for that layout.

   Isolation contract (checked by test_msg): mutating a copy through
   the Message API — including nested messages and [Bytes] payloads
   obtained from accessors after the copy — never alters the original,
   exactly as with the old deep copy.  A [get] that exposes mutable
   interior (bytes, nested messages) from a shared store detaches the
   handle first.  The one observable difference from deep copying:
   a raw [bytes] value retained from *before* a copy stays physically
   shared until some handle detaches, so out-of-API in-place writes to
   it can leak between handles; nothing in this codebase (or any
   reasonable toolkit client) mutates a payload it no longer owns. *)

type t = { mutable store : store }

and store = {
  mutable ids : int array; (* interned field names, insertion order *)
  mutable vals : value array;
  mutable len : int;
  mutable shared : bool; (* some other handle may see this store *)
  mutable nested : int; (* count of Nested fields in [vals] *)
  mutable enc_size : int; (* cached encoded size; -1 = unknown *)
}

and value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Bytes of bytes
  | Address of Addr.t
  | Addresses of Addr.t list
  | Nested of t

let create () =
  { store = { ids = [||]; vals = [||]; len = 0; shared = false; nested = 0; enc_size = -1 } }

(* --- copy-on-write machinery --- *)

(* Copies are copy-on-write, with two regimes picked per message:

   - Flat message (no [Nested] field): share the store and mark it;
     the first mutation through any handle clones first ([unshare]).
     O(1), and the regime the runtime hot path lives in — delivery
     bodies are flat.

   - Message with nested fields: clone the field arrays eagerly,
     giving [Bytes] payloads private storage and re-entering [copy]
     for children.  Sharing the store here would let a handle to an
     inner message retained from before the copy pierce it: mutating
     that handle reseats its store, and a shared cell embedding the
     handle would show the new store to every copy.  With a cloned
     cell the copy keeps its own child handle, so the reseat stays
     invisible.  O(fields) per level that contains messages — never
     the hot path.

   Consequently a shared store never holds a [Nested] cell ([set]
   detaches before writing one), so [unshare] and interior exposure
   in [get] only have [Bytes] to worry about. *)
let rec copy t =
  let s = t.store in
  if s.nested = 0 then begin
    s.shared <- true;
    { store = s }
  end
  else begin
    let ids = Array.sub s.ids 0 s.len in
    let vals = Array.sub s.vals 0 s.len in
    for i = 0 to s.len - 1 do
      match vals.(i) with
      | Bytes b -> vals.(i) <- Bytes (Stdlib.Bytes.copy b)
      | Nested inner -> vals.(i) <- Nested (copy inner)
      | Bool _ | Int _ | Float _ | Str _ | Address _ | Addresses _ -> ()
    done;
    { store = { ids; vals; len = s.len; shared = false; nested = s.nested; enc_size = s.enc_size } }
  end

(* Detach [t] from the sharing group: clone the arrays and give bytes
   payloads private storage.  The cached size survives — the clone's
   content is identical. *)
let unshare t =
  if t.store.shared then begin
    let s = t.store in
    let ids = Array.copy s.ids in
    let vals = Array.copy s.vals in
    for i = 0 to s.len - 1 do
      match vals.(i) with
      | Bytes b -> vals.(i) <- Bytes (Stdlib.Bytes.copy b)
      (* Nested cells cannot appear in a shared store; see [copy]. *)
      | Bool _ | Int _ | Float _ | Str _ | Address _ | Addresses _ | Nested _ -> ()
    done;
    t.store <- { ids; vals; len = s.len; shared = false; nested = s.nested; enc_size = s.enc_size }
  end

(* --- field operations --- *)

let index_of s id =
  let n = s.len in
  let ids = s.ids in
  let rec go i = if i >= n then -1 else if Array.unsafe_get ids i = id then i else go (i + 1) in
  go 0

let is_nested = function
  | Nested _ -> true
  | Bool _ | Int _ | Float _ | Str _ | Bytes _ | Address _ | Addresses _ -> false

let grow s =
  let cap = Array.length s.ids in
  (* Runtime-stamped bodies carry ~8 fields; start there so the common
     construct path grows exactly once. *)
  let cap' = if cap = 0 then 8 else 2 * cap in
  let ids = Array.make cap' 0 and vals = Array.make cap' (Bool false) in
  Array.blit s.ids 0 ids 0 s.len;
  Array.blit s.vals 0 vals 0 s.len;
  s.ids <- ids;
  s.vals <- vals

let set t name v =
  unshare t;
  let s = t.store in
  let id = Symtab.intern name in
  let rec replace i found =
    if i >= s.len then found
    else begin
      (* Replace every occurrence, as the old assoc-list store did:
         duplicate names can only enter through [decode]. *)
      if s.ids.(i) = id then begin
        if is_nested s.vals.(i) then s.nested <- s.nested - 1;
        if is_nested v then s.nested <- s.nested + 1;
        s.vals.(i) <- v;
        replace (i + 1) true
      end
      else replace (i + 1) found
    end
  in
  if not (replace 0 false) then begin
    if s.len = Array.length s.ids then grow s;
    s.ids.(s.len) <- id;
    s.vals.(s.len) <- v;
    s.len <- s.len + 1;
    if is_nested v then s.nested <- s.nested + 1
  end;
  s.enc_size <- -1

let remove t name =
  match Symtab.find name with
  | None -> () (* a name no message ever carried *)
  | Some id ->
    if index_of t.store id >= 0 then begin
      unshare t;
      let s = t.store in
      let j = ref 0 in
      for i = 0 to s.len - 1 do
        if s.ids.(i) = id then begin
          if is_nested s.vals.(i) then s.nested <- s.nested - 1
        end
        else begin
          s.ids.(!j) <- s.ids.(i);
          s.vals.(!j) <- s.vals.(i);
          incr j
        end
      done;
      (* Release dropped slots so removed payloads don't linger. *)
      for i = !j to s.len - 1 do
        s.vals.(i) <- Bool false
      done;
      s.len <- !j;
      s.enc_size <- -1
    end

let get t name =
  match Symtab.find name with
  | None -> None
  | Some id ->
    let s = t.store in
    let i = index_of s id in
    if i < 0 then None
    else begin
      match s.vals.(i) with
      | (Bytes _ | Nested _) when s.shared ->
        (* Handing out mutable interior from a shared store would let a
           mutation leak across handles: detach first. *)
        unshare t;
        let s = t.store in
        Some s.vals.(index_of s id)
      | v -> Some v
    end

let get_exn t name =
  match get t name with
  | Some v -> v
  | None -> raise Not_found

let mem t name =
  match Symtab.find name with None -> false | Some id -> index_of t.store id >= 0

let fields t =
  if t.store.shared then unshare t;
  let s = t.store in
  List.init s.len (fun i -> (Symtab.name s.ids.(i), s.vals.(i)))

let type_error name = invalid_arg (Printf.sprintf "Message: field %S has unexpected type" name)

let get_int t name =
  match get t name with Some (Int i) -> Some i | None -> None | Some _ -> type_error name

let get_str t name =
  match get t name with Some (Str s) -> Some s | None -> None | Some _ -> type_error name

let get_bool t name =
  match get t name with Some (Bool b) -> Some b | None -> None | Some _ -> type_error name

let get_float t name =
  match get t name with Some (Float f) -> Some f | None -> None | Some _ -> type_error name

let get_bytes t name =
  match get t name with Some (Bytes b) -> Some b | None -> None | Some _ -> type_error name

let get_addr t name =
  match get t name with Some (Address a) -> Some a | None -> None | Some _ -> type_error name

let get_addrs t name =
  match get t name with Some (Addresses a) -> Some a | None -> None | Some _ -> type_error name

let get_msg t name =
  match get t name with Some (Nested m) -> Some m | None -> None | Some _ -> type_error name

let set_int t name i = set t name (Int i)
let set_str t name s = set t name (Str s)
let set_bool t name b = set t name (Bool b)
let set_float t name f = set t name (Float f)
let set_bytes t name b = set t name (Bytes b)
let set_addr t name a = set t name (Address a)
let set_addrs t name a = set t name (Addresses a)
let set_msg t name m = set t name (Nested m)

(* System fields live in the same symbol table under reserved names. *)
let f_sender = "$sender"
let f_session = "$session"
let f_entry = "$entry"

let sender t =
  match get_addr t f_sender with
  | Some (Addr.Proc p) -> Some p
  | Some (Addr.Group _) -> invalid_arg "Message.sender: group address in $sender"
  | None -> None

let set_sender t p = set_addr t f_sender (Addr.Proc p)

let session t = get_int t f_session
let set_session t s = set_int t f_session s

let entry t = get_int t f_entry
let set_entry t e = set_int t f_entry e

(* --- Wire format ---

   message  := u16 field-count, fields
   field    := u8 name-len, name bytes, u8 type-tag, payload
   payloads := Bool u8 | Int i64 | Float 8 bytes | Str/Bytes u32+body
             | Address i64 | Addresses u16 + i64s | Nested u32 + message

   Byte-identical to the original assoc-list implementation: fields are
   emitted in insertion order, names as their interned strings. *)

let tag_bool = 0
let tag_int = 1
let tag_float = 2
let tag_str = 3
let tag_bytes = 4
let tag_addr = 5
let tag_addrs = 6
let tag_nested = 7

let rec encode_to buf t =
  let s = t.store in
  if s.len > 0xFFFF then invalid_arg "Message.encode: too many fields";
  Buffer.add_uint16_be buf s.len;
  for i = 0 to s.len - 1 do
    encode_field buf (Symtab.name s.ids.(i)) s.vals.(i)
  done

and encode_field buf name v =
  let name_len = String.length name in
  if name_len > 255 then invalid_arg "Message.encode: field name too long";
  Buffer.add_uint8 buf name_len;
  Buffer.add_string buf name;
  match v with
  | Bool b ->
    Buffer.add_uint8 buf tag_bool;
    Buffer.add_uint8 buf (if b then 1 else 0)
  | Int i ->
    Buffer.add_uint8 buf tag_int;
    Buffer.add_int64_be buf (Int64.of_int i)
  | Float f ->
    Buffer.add_uint8 buf tag_float;
    Buffer.add_int64_be buf (Int64.bits_of_float f)
  | Str s ->
    Buffer.add_uint8 buf tag_str;
    Buffer.add_int32_be buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  | Bytes b ->
    Buffer.add_uint8 buf tag_bytes;
    Buffer.add_int32_be buf (Int32.of_int (Stdlib.Bytes.length b));
    Buffer.add_bytes buf b
  | Address a ->
    Buffer.add_uint8 buf tag_addr;
    Buffer.add_int64_be buf (Addr.to_int64 a)
  | Addresses addrs ->
    Buffer.add_uint8 buf tag_addrs;
    let n = List.length addrs in
    if n > 0xFFFF then invalid_arg "Message.encode: too many addresses";
    Buffer.add_uint16_be buf n;
    List.iter (fun a -> Buffer.add_int64_be buf (Addr.to_int64 a)) addrs
  | Nested m ->
    Buffer.add_uint8 buf tag_nested;
    let inner = Bufpool.acquire () in
    encode_to inner m;
    Buffer.add_int32_be buf (Int32.of_int (Buffer.length inner));
    Buffer.add_buffer buf inner;
    Bufpool.release inner

let encode_into buf t = encode_to buf t

let encode t =
  Bufpool.with_buf (fun buf ->
      encode_to buf t;
      Buffer.to_bytes buf)

(* The encoded size, computed from the layout above without building
   the bytes, and cached.  A store holding nested messages cannot trust
   its own cache (the child can be mutated through a retained handle
   without this store noticing), so only flat messages memoize the
   total — the children still serve their own cached sizes. *)

let rec size t =
  let s = t.store in
  if s.enc_size >= 0 && s.nested = 0 then s.enc_size
  else begin
    let total = ref 2 in
    for i = 0 to s.len - 1 do
      total := !total + 2 + String.length (Symtab.name s.ids.(i)) + value_size s.vals.(i)
    done;
    if s.nested = 0 then s.enc_size <- !total;
    !total
  end

and value_size = function
  | Bool _ -> 1
  | Int _ | Float _ | Address _ -> 8
  | Str s -> 4 + String.length s
  | Bytes b -> 4 + Stdlib.Bytes.length b
  | Addresses l -> 2 + (8 * List.length l)
  | Nested m -> 4 + size m

exception Malformed of string

type cursor = { data : bytes; mutable pos : int }

let need cur n =
  if cur.pos + n > Stdlib.Bytes.length cur.data then raise (Malformed "truncated buffer")

let read_u8 cur =
  need cur 1;
  let v = Stdlib.Bytes.get_uint8 cur.data cur.pos in
  cur.pos <- cur.pos + 1;
  v

let read_u16 cur =
  need cur 2;
  let v = Stdlib.Bytes.get_uint16_be cur.data cur.pos in
  cur.pos <- cur.pos + 2;
  v

let read_i32 cur =
  need cur 4;
  let v = Int32.to_int (Stdlib.Bytes.get_int32_be cur.data cur.pos) in
  cur.pos <- cur.pos + 4;
  if v < 0 then raise (Malformed "negative length");
  v

let read_i64 cur =
  need cur 8;
  let v = Stdlib.Bytes.get_int64_be cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  v

let read_string cur n =
  need cur n;
  let s = Stdlib.Bytes.sub_string cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let rec decode_from cur =
  let start = cur.pos in
  let n = read_u16 cur in
  let ids = Array.make (max n 1) 0 and vals = Array.make (max n 1) (Bool false) in
  let nested = ref 0 in
  for i = 0 to n - 1 do
    let id, v = decode_field cur in
    ids.(i) <- id;
    vals.(i) <- v;
    if is_nested v then incr nested
  done;
  (* A decoded message owns its storage outright, and we know its exact
     encoded length for free. *)
  { store = { ids; vals; len = n; shared = false; nested = !nested; enc_size = cur.pos - start } }

and decode_field cur =
  let name_len = read_u8 cur in
  need cur name_len;
  let name_id = Symtab.intern_sub cur.data ~pos:cur.pos ~len:name_len in
  cur.pos <- cur.pos + name_len;
  let tag = read_u8 cur in
  let v =
    if tag = tag_bool then Bool (read_u8 cur <> 0)
    else if tag = tag_int then Int (Int64.to_int (read_i64 cur))
    else if tag = tag_float then Float (Int64.float_of_bits (read_i64 cur))
    else if tag = tag_str then
      let len = read_i32 cur in
      Str (read_string cur len)
    else if tag = tag_bytes then
      let len = read_i32 cur in
      Bytes (Stdlib.Bytes.of_string (read_string cur len))
    else if tag = tag_addr then Address (Addr.of_int64 (read_i64 cur))
    else if tag = tag_addrs then begin
      let n = read_u16 cur in
      let rec loop i acc =
        if i = n then List.rev acc else loop (i + 1) (Addr.of_int64 (read_i64 cur) :: acc)
      in
      Addresses (loop 0 [])
    end
    else if tag = tag_nested then begin
      let len = read_i32 cur in
      need cur len;
      let stop = cur.pos + len in
      let m = decode_from cur in
      if cur.pos <> stop then raise (Malformed "nested message length mismatch");
      Nested m
    end
    else raise (Malformed (Printf.sprintf "unknown field tag %d" tag))
  in
  (name_id, v)

let decode b =
  let cur = { data = b; pos = 0 } in
  match decode_from cur with
  | m ->
    if cur.pos <> Stdlib.Bytes.length b then invalid_arg "Message.decode: trailing bytes";
    m
  | exception Malformed why -> invalid_arg ("Message.decode: " ^ why)
  | exception Invalid_argument why -> invalid_arg ("Message.decode: " ^ why)

let rec equal a b =
  let sa = a.store and sb = b.store in
  sa.len = sb.len
  &&
  let rec go i =
    if i >= sa.len then true
    else
      let j = index_of sb sa.ids.(i) in
      j >= 0 && equal_value sa.vals.(i) sb.vals.(j) && go (i + 1)
  in
  go 0

and equal_value v w =
  match v, w with
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Str a, Str b -> String.equal a b
  | Bytes a, Bytes b -> Stdlib.Bytes.equal a b
  | Address a, Address b -> Addr.equal a b
  | Addresses a, Addresses b -> List.length a = List.length b && List.for_all2 Addr.equal a b
  | Nested a, Nested b -> equal a b
  | (Bool _ | Int _ | Float _ | Str _ | Bytes _ | Address _ | Addresses _ | Nested _), _ -> false

let rec pp ppf t =
  let s = t.store in
  let pp_field ppf i = Format.fprintf ppf "%s=%a" (Symtab.name s.ids.(i)) pp_value s.vals.(i) in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_field)
    (List.init s.len Fun.id)

and pp_value ppf = function
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bytes b -> Format.fprintf ppf "<%d bytes>" (Stdlib.Bytes.length b)
  | Address a -> Addr.pp ppf a
  | Addresses addrs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Addr.pp)
      addrs
  | Nested m -> pp ppf m
