(** The ISIS message subsystem (paper Sec 4.1).

    A message is a symbol table containing multiple fields, each with a
    name and a typed, variable-length value.  Fields can be inserted and
    deleted at will; a field can even contain another message.  Special
    {e system fields} carry the sender's address (which cannot be
    forged: the runtime stamps it), the session id used to match replies
    with pending calls, and the destination entry point.

    Messages have a real binary encoding ({!encode}/{!decode}) so the
    simulated network carries faithful byte counts; {!size} is the
    encoded length, cached on the message and invalidated by mutation.

    Internally, field names are interned in a global symbol table
    ({!Symtab}) and copies are copy-on-write — see {!copy} for the
    contract the runtime now relies on. *)

type t

(** Field values. *)
type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Bytes of bytes
  | Address of Addr.t
  | Addresses of Addr.t list
  | Nested of t

(** [create ()] returns an empty message. *)
val create : unit -> t

(** [copy t] is a copy-on-write copy: for a flat message — no nested
    fields, the hot-path shape — it is O(1), sharing the store until one
    of the handles mutates; the first mutation pays the actual clone.  A
    message containing nested messages clones its field arrays eagerly
    (children become copy-on-write in turn), still far cheaper than a
    deep copy.  Observable behaviour matches a deep copy: mutating the
    copy (or nested messages and [Bytes] payloads reached from it) never
    affects [t], and vice versa — including through handles retained
    from before the copy.  The runtime copies messages at delivery so
    recipients cannot share state through them — processes have disjoint
    address spaces — and with copy-on-write the common read-only
    delivery costs nothing.

    Contract for callers: copies are cheap; {e mutation} is what pays.
    Build a message once and copy it per destination freely.  The only
    deviation from deep-copy semantics: a raw [bytes] value you retained
    from before the copy is physically shared until a handle is mutated,
    so mutating such a buffer in place (outside the Message API) can be
    seen through other handles. *)
val copy : t -> t

(** {1 Fields} *)

(** [set t name v] inserts or replaces field [name]. *)
val set : t -> string -> value -> unit

(** [get t name] returns the field, if present. *)
val get : t -> string -> value option

(** [get_exn t name] raises [Not_found] when absent. *)
val get_exn : t -> string -> value

(** [remove t name] deletes the field if present. *)
val remove : t -> string -> unit

(** [mem t name] tests presence. *)
val mem : t -> string -> bool

(** [fields t] lists (name, value) pairs in insertion order. *)
val fields : t -> (string * value) list

(** Typed accessors; each raises [Invalid_argument] when the field is
    present with another type and returns [None] when absent. *)

val get_int : t -> string -> int option
val get_str : t -> string -> string option
val get_bool : t -> string -> bool option
val get_float : t -> string -> float option
val get_bytes : t -> string -> bytes option
val get_addr : t -> string -> Addr.t option
val get_addrs : t -> string -> Addr.t list option
val get_msg : t -> string -> t option

(** Typed setters (shorthands for {!set}). *)

val set_int : t -> string -> int -> unit
val set_str : t -> string -> string -> unit
val set_bool : t -> string -> bool -> unit
val set_float : t -> string -> float -> unit
val set_bytes : t -> string -> bytes -> unit
val set_addr : t -> string -> Addr.t -> unit
val set_addrs : t -> string -> Addr.t list -> unit
val set_msg : t -> string -> t -> unit

(** {1 System fields}

    Stored under reserved names (prefix ["$"]); the runtime fills them in
    at send time and application code reads them at delivery. *)

(** [sender t] is the address of the sending process, stamped by the
    runtime (cannot be forged by clients working through the toolkit). *)
val sender : t -> Addr.proc option

val set_sender : t -> Addr.proc -> unit

(** [session t] matches a reply with its pending call. *)
val session : t -> int option

val set_session : t -> int -> unit

(** [entry t] is the destination entry point. *)
val entry : t -> Entry.t option

val set_entry : t -> Entry.t -> unit

(** {1 Wire format} *)

(** [size t] is the encoded length in bytes (header included).
    Computed from the layout without encoding, and cached on the
    message until the next mutation, so per-frame size queries on the
    receive path are O(1). *)
val size : t -> int

val encode : t -> bytes

(** [encode_into buf t] appends [t]'s encoding to [buf] — the same
    bytes {!encode} produces, without allocating a result buffer.
    Combine with {!Bufpool} when encoding in bursts. *)
val encode_into : Buffer.t -> t -> unit

(** @raise Invalid_argument on a malformed buffer. *)
val decode : bytes -> t

(** Structural equality (field order insensitive). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
