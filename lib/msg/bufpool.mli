(** A small pool of reusable [Buffer.t]s for message encoding.

    [Message.encode] and friends need a scratch buffer per call; under
    encode bursts the allocator churn (and buffer regrowth) shows up in
    profiles.  The pool keeps a handful of already-grown buffers around.
    Buffers above 1 MB are dropped rather than pooled.

    Single-threaded, like the rest of the simulator; [with_buf] is
    reentrant (a nested call simply draws another buffer). *)

(** [acquire ()] returns a cleared buffer (pooled or fresh). *)
val acquire : unit -> Buffer.t

(** [release b] returns [b] to the pool (or drops it when full). *)
val release : Buffer.t -> unit

(** [with_buf f] runs [f] with an acquired buffer and releases it
    afterwards, exceptions included.  The buffer must not escape [f]. *)
val with_buf : (Buffer.t -> 'a) -> 'a
