(* The record-of-closures form (rather than a functor) keeps the
   protocol stack first-class over the backend: one compiled runtime,
   the backend picked at fabric-construction time, and heterogeneous
   worlds (a simulated one and a wall-clock one) coexisting in one
   process — which the domain-parallel harness and the conformance
   tests both rely on. *)

type handle = unit -> unit

type kind = Sim | Wall

type t = {
  kind : kind;
  now_f : unit -> int;
  schedule_at_f : int -> (unit -> unit) -> handle;
  send_f : int -> int -> int -> (unit -> unit) -> unit;
  n_sites : int;
  max_packet_bytes : int;
  intra_site_us : int;
  rng : Vsync_util.Rng.t;
}

let v ~kind ~now ~schedule_at ~send ~n_sites ~max_packet_bytes ~intra_site_us ~rng =
  {
    kind;
    now_f = now;
    schedule_at_f = schedule_at;
    send_f = send;
    n_sites;
    max_packet_bytes;
    intra_site_us;
    rng;
  }

let kind t = t.kind
let now t = t.now_f ()
let schedule_at t at f = t.schedule_at_f at f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Backend.schedule: negative delay";
  t.schedule_at_f (t.now_f () + delay) f

let cancel (h : handle) = h ()
let send t ~src ~dst ~bytes deliver = t.send_f src dst bytes deliver
let n_sites t = t.n_sites
let max_packet_bytes t = t.max_packet_bytes
let intra_site_us t = t.intra_site_us
let rng t = t.rng
let handle_of_cancel f = f
