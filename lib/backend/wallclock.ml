module Rng = Vsync_util.Rng
module Heap = Vsync_util.Heap

type config = {
  wc_intra_site_us : int;
  wc_inter_site_us : int;
  wc_jitter_us : int;
  wc_max_packet_bytes : int;
}

let default_config =
  { wc_intra_site_us = 1; wc_inter_site_us = 5; wc_jitter_us = 2; wc_max_packet_bytes = 4096 }

type cell = { mutable dead : bool }
type ev = { at : int; action : unit -> unit; cell : cell }

type t = {
  cfg : config;
  sites : int;
  queue : ev Heap.t;
  rng : Rng.t;
  t0 : float;
  mutable stopped : bool;
  mutable fired : int;
  mutable live : int;
}

(* [Unix.gettimeofday] rather than a monotonic source because the
   stdlib exposes nothing monotonic; a clock step mid-run can distort a
   measurement but not correctness (deadlines are compared against the
   same clock that minted them). *)
let create ?(config = default_config) ?(seed = 0x3A11C10CL) ~sites () =
  if sites <= 0 then invalid_arg "Wallclock.create: need at least one site";
  {
    cfg = config;
    sites;
    queue = Heap.create ~compare:(fun a b -> compare a.at b.at);
    rng = Rng.create seed;
    t0 = Unix.gettimeofday ();
    stopped = false;
    fired = 0;
    live = 0;
  }

let now t = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6)

let schedule_at t at action =
  let at = max at (now t) in
  let cell = { dead = false } in
  Heap.push t.queue { at; action; cell };
  t.live <- t.live + 1;
  fun () ->
    if not cell.dead then begin
      cell.dead <- true;
      t.live <- t.live - 1
    end

let send t src dst bytes deliver =
  if src < 0 || src >= t.sites || dst < 0 || dst >= t.sites then
    invalid_arg "Wallclock.send: bad site";
  if bytes < 0 || bytes > t.cfg.wc_max_packet_bytes then
    invalid_arg "Wallclock.send: packet exceeds max_packet_bytes (fragment first)";
  let delay =
    if src = dst then t.cfg.wc_intra_site_us
    else
      t.cfg.wc_inter_site_us
      + (if t.cfg.wc_jitter_us > 0 then Rng.int_in t.rng 0 t.cfg.wc_jitter_us else 0)
  in
  let _cancel : unit -> unit = schedule_at t (now t + delay) deliver in
  ()

let sleep_until t at =
  let gap = at - now t in
  if gap > 0 then Unix.sleepf (float_of_int gap *. 1e-6)

let run_until t until =
  t.stopped <- false;
  let fired0 = t.fired in
  let continue = ref true in
  while !continue && not t.stopped do
    match Heap.peek t.queue with
    | Some e when e.at <= until ->
      sleep_until t e.at;
      (match Heap.pop t.queue with
      | Some e ->
        if not e.cell.dead then begin
          e.cell.dead <- true;
          t.live <- t.live - 1;
          t.fired <- t.fired + 1;
          e.action ()
        end
      | None -> ())
    | Some _ | None ->
      (* Nothing due inside the horizon: honour it like the simulator
         honours [run ~until] — the caller asked for this much time to
         pass. *)
      sleep_until t until;
      continue := false
  done;
  t.fired - fired0

let stop t = t.stopped <- true
let events_fired t = t.fired
let pending t = t.live

let backend t =
  Backend.v ~kind:Backend.Wall
    ~now:(fun () -> now t)
    ~schedule_at:(fun at f -> Backend.handle_of_cancel (schedule_at t at f))
    ~send:(fun src dst bytes deliver -> send t src dst bytes deliver)
    ~n_sites:t.sites ~max_packet_bytes:t.cfg.wc_max_packet_bytes
    ~intra_site_us:t.cfg.wc_intra_site_us ~rng:t.rng
