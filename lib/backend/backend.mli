(** Execution backend: the seam between the protocol stack and whatever
    drives it.

    Everything above this interface — the reliable transport
    ({!Vsync_transport.Endpoint}) and the per-site runtime
    ({!Vsync_core.Runtime}) — consumes time, timers, frame I/O and
    randomness exclusively through a [Backend.t].  Two implementations
    exist:

    - the deterministic discrete-event simulator
      ({!Vsync_sim.Net.backend}): virtual microseconds, a stable event
      heap, per-link fault models, bit-reproducible from the seed;
    - the wall-clock driver ({!Wallclock}): the same microsecond
      timeline read off the machine's real clock, timers that actually
      wait, in-process frame delivery — the protocol runs as fast as
      the hardware allows, under real asynchrony.

    The runtime compiles once against this record; which world it runs
    in is decided by whoever builds the fabric.  Anything
    simulator-only (nemesis fault injection, partitions, virtual-time
    fast-forward) stays on the simulator's own modules and is not part
    of the seam. *)

(** Cancellable timer handle.  Cancelling a fired or already-cancelled
    timer is a no-op. *)
type handle

type kind = Sim | Wall

type t

(** [v ~kind ~now ~schedule_at ~send ~n_sites ~max_packet_bytes
    ~intra_site_us ~rng] assembles a backend from its primitives.
    [schedule_at at f] must run [f] no earlier than absolute time [at]
    (clamping past deadlines to "now"), firing same-deadline events in
    schedule order.  [send src dst bytes deliver] must run [deliver] on
    the destination's timeline — or never, if the medium loses the
    packet. *)
val v :
  kind:kind ->
  now:(unit -> int) ->
  schedule_at:(int -> (unit -> unit) -> handle) ->
  send:(int -> int -> int -> (unit -> unit) -> unit) ->
  n_sites:int ->
  max_packet_bytes:int ->
  intra_site_us:int ->
  rng:Vsync_util.Rng.t ->
  t

val kind : t -> kind

(** [now t] is the current time in microseconds since the backend
    started (virtual on the simulator, elapsed real time on the
    wall clock). *)
val now : t -> int

(** [schedule t ~delay f] runs [f] [delay] microseconds from now.
    @raise Invalid_argument if [delay < 0]. *)
val schedule : t -> delay:int -> (unit -> unit) -> handle

(** [schedule_at t at f] runs [f] at absolute time [at] (clamped to
    now). *)
val schedule_at : t -> int -> (unit -> unit) -> handle

val cancel : handle -> unit

(** [send t ~src ~dst ~bytes deliver] offers one packet of [bytes]
    payload bytes to the medium; [deliver] runs at the destination when
    (and if) it arrives.
    @raise Invalid_argument if [bytes] exceeds [max_packet_bytes]. *)
val send : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit

val n_sites : t -> int

(** Largest packet the medium carries; senders fragment above this. *)
val max_packet_bytes : t -> int

(** Latency of a local (same-site) hop. *)
val intra_site_us : t -> int

(** The backend's root randomness stream.  Subsystems should
    {!Vsync_util.Rng.split} it once at construction, exactly as they
    would the simulator engine's. *)
val rng : t -> Vsync_util.Rng.t

(** [handle_of_cancel f] wraps a raw cancellation closure (idempotence
    is the implementor's job — {!Vsync_sim.Engine.cancel} already is). *)
val handle_of_cancel : (unit -> unit) -> handle
