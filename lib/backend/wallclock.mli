(** Wall-clock execution backend.

    The same microsecond timeline the simulator fabricates, read off the
    machine's real clock instead: {!Backend.now} is elapsed real time
    since {!create}, timers actually wait (the driver sleeps until the
    next deadline), and frame I/O is in-process delivery after a small
    configurable real latency.  Protocol behaviour — retransmission
    timeouts, delayed acks, failure-detector probes — runs against real
    asynchrony: scheduling jitter, GC pauses and OS preemption replace
    the simulator's fabricated delays, so nothing is deterministic and
    the oracle may only be asked order-relaxed questions of such runs.

    A run under a backlog (events whose deadline has already passed)
    never sleeps, so closed-loop workloads execute at hardware speed —
    this is what the benches' wall-clock mode measures.

    All of a wall-clock world's events run on the driving domain; the
    backend is single-domain like the simulator, and parallelism comes
    from running whole worlds on separate domains
    ({!Vsync_parallel.Pool}). *)

type config = {
  wc_intra_site_us : int;  (** latency of a local hop (default 1). *)
  wc_inter_site_us : int;  (** base latency between sites (default 5). *)
  wc_jitter_us : int;
      (** uniform extra latency drawn per packet (default 2); real
          scheduling noise dwarfs this, it exists so two packets never
          tie by construction. *)
  wc_max_packet_bytes : int;  (** fragmentation threshold (default 4096). *)
}

val default_config : config

type t

(** [create ?config ?seed ~sites ()] starts the clock (elapsed time 0 is
    the moment of this call). *)
val create : ?config:config -> ?seed:int64 -> sites:int -> unit -> t

(** The {!Backend.t} view consumed by the transport fabric and the
    runtimes. *)
val backend : t -> Backend.t

(** Elapsed real microseconds since {!create}. *)
val now : t -> int

(** [run_until t until] drives the event loop — sleeping to each
    deadline, firing overdue events immediately — until the clock
    passes [until] (elapsed µs) or {!stop} is called.  Returns the
    number of events fired. *)
val run_until : t -> int -> int

(** [stop t] makes the innermost {!run_until} return after the event
    currently executing; callable from inside an event. *)
val stop : t -> unit

(** Events executed so far. *)
val events_fired : t -> int

(** Scheduled, not yet fired or cancelled. *)
val pending : t -> int
