module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module World = Vsync_core.World
module Types = Vsync_core.Types
module State_transfer = Vsync_toolkit.State_transfer
module Ring = Vsync_shard.Ring
module Router = Vsync_shard.Router

let base_name = "twentyq"
let entry = Entry.user 9
let group_name part = Printf.sprintf "%s-p%d" base_name part

let f_op = "$sq.op"
let f_values = "$sq.vals"
let f_query = "$sq.q"
let f_answer = "$sq.ans"
let f_hits = "$sq.hits"
let f_examined = "$sq.exam"
let f_keys = "$sq.keys"
let f_column = "$sq.col"
let f_value = "$sq.val"
let f_count = "$sq.n"

(* Rows travel packed like the flat service's ('\x1f' between values);
   scan replies pack keys with '\x1e'. *)
let pack_row = String.concat "\x1f"
let unpack_row = String.split_on_char '\x1f'
let pack_keys = String.concat "\x1e"
let unpack_keys s = if String.equal s "" then [] else String.split_on_char '\x1e' s

(* --- Replicas --- *)

type member = {
  mem_me : Runtime.proc;
  mem_part : int;
  mutable mem_gid : Addr.group_id;
  mutable mem_db : Database.t;
}

let member_proc m = m.mem_me
let member_part m = m.mem_part
let member_gid m = m.mem_gid
let member_db m = m.mem_db

let key_column mem =
  match Database.columns mem.mem_db with c :: _ -> c | [] -> "object"

let row_key values = match values with k :: _ -> Some k | [] -> None

(* Upsert: replace any row with the same key, then append.  Replaying
   the same put (handoff restart, client retry) converges instead of
   duplicating — the exactly-once-per-key invariant the handoff test
   checks. *)
let apply_put mem values =
  match row_key values with
  | None -> ()
  | Some key ->
    ignore (Database.remove_rows mem.mem_db ~column:(key_column mem) ~value:key);
    (try Database.add_row mem.mem_db values with Invalid_argument _ -> ())

let i_am_rank0 mem = Runtime.pg_rank mem.mem_me mem.mem_gid = Some 0

let answer_of_counts ~hits ~examined =
  if examined = 0 || hits = 0 then Database.No
  else if hits = examined then Database.Yes
  else Database.Sometimes

(* Exactly one real reply per partition group — the rank-0 replica in
   the delivery view — and null replies from the rest, so Wait_n 1
   reply collection never hangs (paper Sec 3.2). *)
let handle mem m =
  let null () =
    if Message.session m <> None then Runtime.null_reply mem.mem_me ~request:m
  in
  let reply r = Runtime.reply mem.mem_me ~request:m r in
  match Message.get_str m f_op with
  | Some "put" ->
    (match Message.get_str m f_values with
    | Some packed -> apply_put mem (unpack_row packed)
    | None -> ());
    if i_am_rank0 mem && Message.session m <> None then reply (Message.create ()) else null ()
  | Some "remove" -> (
    match Message.get_str m f_column, Message.get_str m f_value with
    | Some column, Some value ->
      let gone =
        try Database.remove_rows mem.mem_db ~column ~value with Not_found -> 0
      in
      if i_am_rank0 mem && Message.session m <> None then begin
        let r = Message.create () in
        Message.set_int r f_count gone;
        reply r
      end
      else null ()
    | _ -> null ())
  | Some "query" -> (
    if not (i_am_rank0 mem) then null ()
    else
      match Option.bind (Message.get_str m f_query) Database.parse_query with
      | None -> null ()
      | Some q ->
        let hits, examined = Database.count_matches mem.mem_db q in
        let r = Message.create () in
        Message.set_str r f_answer
          (Database.answer_to_string (answer_of_counts ~hits ~examined));
        Message.set_int r f_hits hits;
        Message.set_int r f_examined examined;
        reply r)
  | Some "scan" ->
    if not (i_am_rank0 mem) then null ()
    else begin
      let keys = List.filter_map row_key (Database.rows mem.mem_db) in
      let r = Message.create () in
      Message.set_str r f_keys (pack_keys keys);
      Message.set_int r f_count (List.length keys);
      reply r
    end
  | Some _ | None -> null ()

let segments mem =
  [
    ( "db",
      (fun () -> Database.encode mem.mem_db),
      fun chunks -> if chunks <> [] then mem.mem_db <- Database.decode chunks );
  ]

let serve me ~part ~columns =
  let mem =
    {
      mem_me = me;
      mem_part = part;
      mem_gid = Addr.group_of_int 0;
      mem_db = Database.create ~columns;
    }
  in
  mem.mem_gid <- Runtime.pg_create me (group_name part);
  Runtime.bind me entry (handle mem);
  State_transfer.attach me ~gid:mem.mem_gid ~segments:(segments mem);
  mem

let join me ~part =
  (* The group may still be forming (deploy issues serve and join
     concurrently): give the directory a grace period. *)
  let rec look tries =
    match Runtime.pg_lookup me (group_name part) with
    | Some gid -> Some gid
    | None when tries > 0 ->
      Runtime.sleep me 250_000;
      look (tries - 1)
    | None -> None
  in
  match look 40 with
  | None -> Error (Printf.sprintf "partition %d: group not found" part)
  | Some gid ->
    let mem =
      {
        mem_me = me;
        mem_part = part;
        mem_gid = gid;
        (* placeholder schema until the transferred segment installs *)
        mem_db = Database.create ~columns:[ "object" ];
      }
    in
    Runtime.bind me entry (handle mem);
    let segs = segments mem in
    (match State_transfer.join_and_xfer me ~gid ~credentials:(Message.create ()) ~segments:segs with
    | Ok () ->
      State_transfer.attach me ~gid ~segments:segs;
      Ok mem
    | Error e -> Error e)

(* --- Clients --- *)

type client = { cl : Runtime.proc; rt : Router.t }

let connect p ~partitions =
  { cl = p; rt = Router.create p ~ring:(Ring.create ~partitions ()) ~base:base_name }

let router c = c.rt

let msg_put values =
  let m = Message.create () in
  Message.set_str m f_op "put";
  Message.set_str m f_values (pack_row values);
  m

let msg_query q =
  let m = Message.create () in
  Message.set_str m f_op "query";
  Message.set_str m f_query q;
  m

let backoff c = Runtime.sleep c.cl 200_000

let rec put ?(retries = 5) c values =
  match row_key values with
  | None -> Error "empty row"
  | Some key -> (
    match Router.cast c.rt ~key Types.Gbcast ~entry (msg_put values) ~want:(Types.Wait_n 1) with
    | Some (Runtime.Replies (_ :: _)) -> Ok ()
    | Some (Runtime.Replies []) | Some Runtime.All_failed | None ->
      (* Owner group unresolved, remade, or its answering replica died
         mid-request: re-resolve and reissue (the upsert is
         idempotent, so a delivered-but-unanswered attempt is safe). *)
      if retries <= 0 then Error "partition unreachable"
      else begin
        Router.forget c.rt (Router.partition_of_key c.rt key);
        backoff c;
        put ~retries:(retries - 1) c values
      end)

(* Gather one decoded slice per partition; [Error parts] lists the
   partitions that failed this round (to forget and retry). *)
let gather_coverage c mode ~make ~decode ~want =
  let covered = Router.coverage c.rt mode ~entry ~make ~want in
  let bad = ref [] in
  let slices =
    List.filter_map
      (fun { Router.cov_part; cov_outcome } ->
        match cov_outcome with
        | Some (Runtime.Replies ((_, m) :: _)) -> (
          match decode m with
          | Some v -> Some (cov_part, v)
          | None ->
            bad := cov_part :: !bad;
            None)
        | Some (Runtime.Replies []) | Some Runtime.All_failed | None ->
          bad := cov_part :: !bad;
          None)
      covered
  in
  if !bad = [] then Ok slices else Error !bad

let rec covering ?(retries = 5) c mode ~make ~decode ~combine =
  match gather_coverage c mode ~make ~decode ~want:(Types.Wait_n 1) with
  | Ok slices -> Ok (combine slices)
  | Error bad ->
    if retries <= 0 then Error "coverage incomplete"
    else begin
      List.iter (Router.forget c.rt) bad;
      backoff c;
      covering ~retries:(retries - 1) c mode ~make ~decode ~combine
    end

let remove ?retries c ~column ~value =
  let make _ =
    let m = Message.create () in
    Message.set_str m f_op "remove";
    Message.set_str m f_column column;
    Message.set_str m f_value value;
    m
  in
  covering ?retries c Types.Gbcast ~make
    ~decode:(fun m -> Message.get_int m f_count)
    ~combine:(fun slices -> List.fold_left (fun acc (_, n) -> acc + n) 0 slices)

let ask_keyed retries c q key =
  let rec go retries =
    match Router.cast c.rt ~key Types.Cbcast ~entry (msg_query q) ~want:(Types.Wait_n 1) with
    | Some (Runtime.Replies ((_, m) :: _)) -> (
      match Message.get_int m f_hits with
      (* An equality probe on the key column is an existence check:
         every row with that key lives in the owning partition, so
         [hits] is exact, and the answer must not depend on what else
         the partition happens to host. *)
      | Some hits -> Ok ((if hits > 0 then Database.Yes else Database.No), hits)
      | None -> Error "malformed reply")
    | Some (Runtime.Replies []) | Some Runtime.All_failed | None ->
      if retries <= 0 then Error "partition unreachable"
      else begin
        Router.forget c.rt (Router.partition_of_key c.rt key);
        backoff c;
        go (retries - 1)
      end
  in
  go retries

let ask_coverage retries c q =
  covering ?retries c Types.Cbcast
    ~make:(fun _ -> msg_query q)
    ~decode:(fun m ->
      match Message.get_int m f_hits, Message.get_int m f_examined with
      | Some h, Some e -> Some (h, e)
      | _ -> None)
    ~combine:(fun slices ->
      let hits, examined =
        List.fold_left (fun (h, e) (_, (h', e')) -> (h + h', e + e')) (0, 0) slices
      in
      (answer_of_counts ~hits ~examined, hits))

let ask ?(retries = 5) c q =
  match Database.parse_query q with
  | None -> Error "malformed query"
  | Some pq ->
    (* Equality on the key column pins the matching rows to one
       partition: route there.  Everything else needs every shard's
       counts. *)
    if pq.Database.op = `Eq && String.equal pq.Database.column "object" then
      ask_keyed retries c q pq.Database.value
    else ask_coverage (Some retries) c q

let scan_keys ?retries c =
  let make _ =
    let m = Message.create () in
    Message.set_str m f_op "scan";
    m
  in
  covering ?retries c Types.Cbcast ~make
    ~decode:(fun m -> Option.map unpack_keys (Message.get_str m f_keys))
    ~combine:(fun slices -> List.concat_map snd slices)

(* --- Deployment harness --- *)

module Deployment = struct
  type t = {
    world : World.t;
    ring : Ring.t;
    dep_replicas : int;
    columns : string list;
    tbl : (int, member list ref) Hashtbl.t;
    joining : (int * int, unit) Hashtbl.t; (* (partition, site) in flight *)
    reb_pending : bool ref;
  }

  let ring d = d.ring
  let replicas d = d.dep_replicas
  let all_sites d = List.init (World.n_sites d.world) Fun.id
  let live_sites d = List.filter (fun s -> Runtime.alive (World.runtime d.world s)) (all_sites d)

  let slot d part =
    match Hashtbl.find_opt d.tbl part with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace d.tbl part r;
      r

  let members d part =
    let r = slot d part in
    r := List.filter (fun m -> Runtime.proc_alive m.mem_me) !r;
    !r

  let push d part m = (slot d part) := m :: !(slot d part)
  let drop d part m = (slot d part) := List.filter (fun m' -> m' != m) !(slot d part)

  let spawn_join d part site =
    if not (Hashtbl.mem d.joining (part, site)) then begin
      Hashtbl.replace d.joining (part, site) ();
      let p =
        World.proc d.world ~site ~name:(Printf.sprintf "sq-p%d-s%d" part site)
      in
      World.run_task d.world p (fun () ->
          (match join p ~part with
          | Ok m -> push d part m
          | Error _ -> ());
          Hashtbl.remove d.joining (part, site))
    end

  let deploy w ?(partitions = 16) ?(replicas = 3) ?(columns = [ "object" ]) () =
    let d =
      {
        world = w;
        ring = Ring.create ~partitions ();
        dep_replicas = replicas;
        columns;
        tbl = Hashtbl.create partitions;
        joining = Hashtbl.create 16;
        reb_pending = ref false;
      }
    in
    let sites = all_sites d in
    for part = 0 to partitions - 1 do
      match Ring.owners d.ring ~sites ~replicas part with
      | [] -> ()
      | first :: rest ->
        let p0 = World.proc w ~site:first ~name:(Printf.sprintf "sq-p%d-s%d" part first) in
        World.run_task w p0 (fun () -> push d part (serve p0 ~part ~columns));
        List.iter (fun s -> spawn_join d part s) rest
    done;
    d

  let formed d =
    let live = live_sites d in
    let target = min d.dep_replicas (List.length live) in
    target > 0
    && List.for_all
         (fun part -> List.length (members d part) >= target)
         (List.init (Ring.n_partitions d.ring) Fun.id)

  let settle ?(timeout_us = 60_000_000) d =
    let deadline = World.now d.world + timeout_us in
    let rec loop () =
      if formed d then true
      else if World.now d.world >= deadline then formed d
      else begin
        World.run_for d.world 500_000;
        loop ()
      end
    in
    loop ()

  (* A replica that lost ownership leaves only after the partition is
     back to strength, so the handoff donor set never empties. *)
  let retire d part m =
    Runtime.spawn_task m.mem_me (fun () ->
        let rec wait tries =
          match Runtime.pg_view m.mem_me m.mem_gid with
          | Some v when View.n_members v > d.dep_replicas -> ()
          | _ when tries > 0 ->
            Runtime.sleep m.mem_me 250_000;
            wait (tries - 1)
          | _ -> ()
        in
        wait 40;
        (try Runtime.pg_leave m.mem_me m.mem_gid with _ -> ());
        drop d part m)

  let rebalance d =
    let live = live_sites d in
    if live <> [] then
      for part = 0 to Ring.n_partitions d.ring - 1 do
        let owners = Ring.owners d.ring ~sites:live ~replicas:d.dep_replicas part in
        let current = members d part in
        let hosted = List.map (fun m -> (Runtime.proc_addr m.mem_me).Addr.site) current in
        (* Data survives only through live replicas; a partition whose
           replicas all died cannot be rebuilt here. *)
        if current <> [] then begin
          List.iter (fun s -> if not (List.mem s hosted) then spawn_join d part s) owners;
          List.iter
            (fun m ->
              let s = (Runtime.proc_addr m.mem_me).Addr.site in
              if not (List.mem s owners) then retire d part m)
            current
        end
      done

  let enable_auto_handoff d =
    List.iter
      (fun s ->
        Runtime.watch_sites (World.runtime d.world s) (fun _event ->
            if not !(d.reb_pending) then begin
              d.reb_pending := true;
              let anchor = World.proc d.world ~site:s ~name:"sq-rebalancer" in
              World.run_task d.world anchor (fun () ->
                  (* Let the membership flushes land before recomputing
                     ownership. *)
                  Runtime.sleep anchor 1_500_000;
                  d.reb_pending := false;
                  rebalance d)
            end))
      (all_sites d)
end
