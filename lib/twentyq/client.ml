module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

type t = { proc : Runtime.proc; gid : Addr.group_id }

let connect proc =
  match Runtime.pg_lookup proc Service.group_name with
  | Some gid -> Ok { proc; gid }
  | None -> Error "twenty-questions service not found"

let group t = t.gid

let query_msg q =
  let m = Message.create () in
  Message.set_str m "$tq.op" "query";
  Message.set_str m "$tq.q" q;
  m

let answer_of m =
  Option.bind (Message.get_str m "$tq.ans") Database.answer_of_string

let rec vertical ?(retries = 5) t q =
  match
    Runtime.bcast t.proc Types.Cbcast ~dest:(Addr.Group t.gid) ~entry:Service.entry
      (query_msg q) ~want:(Types.Wait_n 1)
  with
  | Runtime.Replies ((_, m) :: _) -> (
    match answer_of m with Some a -> Ok a | None -> Error "malformed reply")
  | Runtime.Replies [] | Runtime.All_failed ->
    (* The responsible member failed before answering: reissue (the
       paper's Step 2 fix). *)
    if retries <= 0 then Error "service unreachable"
    else begin
      Runtime.sleep t.proc 200_000;
      vertical ~retries:(retries - 1) t q
    end

let rec horizontal ?(retries = 5) t q =
  match
    Runtime.bcast t.proc Types.Cbcast ~dest:(Addr.Group t.gid) ~entry:Service.entry
      (query_msg ("*" ^ q)) ~want:Types.Wait_all
  with
  | Runtime.All_failed -> Error "service unreachable"
  | Runtime.Replies replies -> (
    let numbered =
      List.filter_map
        (fun (_, m) ->
          match Message.get_int m "$tq.member", answer_of m, Message.get_int m "$tq.nm" with
          | Some n, Some a, Some nm -> Some (n, a, nm)
          | _ -> None)
        replies
    in
    match numbered with
    | [] ->
      if retries <= 0 then Error "no answers"
      else begin
        Runtime.sleep t.proc 200_000;
        horizontal ~retries:(retries - 1) t q
      end
    | (_, _, nm) :: _ ->
      if List.length numbered < nm then
        (* Fewer members than NMEMBERS answered: some rows are
           unaccounted for; the paper's caller "iterates until it
           receives the expected number of responses". *)
        if retries <= 0 then Error "partial answer"
        else begin
          Runtime.sleep t.proc 200_000;
          horizontal ~retries:(retries - 1) t q
        end
      else
        Ok
          (List.sort (fun (a, _, _) (b, _, _) -> compare a b) numbered
          |> List.map (fun (_, a, _) -> a)))

let row_msg values =
  let m = Message.create () in
  Message.set_str m "$tq.op" "add_row";
  Message.set_str m "$tq.values" (String.concat "\x1f" values);
  m

(* Async mutations honor runtime backpressure: a bulk loader slamming
   the database parks until the group's pipeline has room instead of
   queueing without bound. *)
let add_row ?on_backpressure t values =
  ignore
    (Runtime.bcast_wait ?on_backpressure t.proc Types.Gbcast ~dest:(Addr.Group t.gid)
       ~entry:Service.entry (row_msg values) ~want:Types.No_reply)

let add_row_sync t values =
  match
    Runtime.bcast t.proc Types.Gbcast ~dest:(Addr.Group t.gid) ~entry:Service.entry
      (row_msg values) ~want:Types.Wait_all
  with
  | Runtime.Replies _ -> Ok ()
  | Runtime.All_failed -> Error "service unreachable"

let remove_rows ?on_backpressure t ~column ~value =
  let m = Message.create () in
  Message.set_str m "$tq.op" "remove_rows";
  Message.set_str m "$tq.col" column;
  Message.set_str m "$tq.val" value;
  ignore
    (Runtime.bcast_wait ?on_backpressure t.proc Types.Gbcast ~dest:(Addr.Group t.gid)
       ~entry:Service.entry m ~want:Types.No_reply)
