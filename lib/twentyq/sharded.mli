(** Twenty-questions, re-homed on the consistent-hash ring.

    The flat {!Service} keeps the whole relation in one group; every
    update multicast touches every member.  Here the relation is
    partitioned by row key (the first column's value) across
    [twentyq-p<N>] groups — one small view-synchronous replica set per
    ring partition — so an update touches only the 3 replicas owning
    its key, and aggregate throughput grows with the partition count.

    Protocol split, as in the paper's Sec 5 design: updates go by
    GBCAST within the owning group (totally ordered w.r.t. membership
    changes, so replicas stay identical), queries by CBCAST with the
    rank-0 replica answering and the others null-replying.  Keyed
    queries ([object=X]) route to one partition; anything else runs as
    a {e coverage query} — scatter over all partitions, gather the
    per-partition [(hits, examined)] counts, and recombine the exact
    flat-database answer.

    Handoff: a replica set is (re)populated by {!join}, which rides
    the view-change protocol via [State_transfer.join_and_xfer] — the
    new member's database is captured at the join's view event, so no
    update is missed or applied twice.  {!Deployment.rebalance}
    recomputes ring ownership over the live sites and drives joins
    (and retirements) accordingly; {!Deployment.enable_auto_handoff}
    triggers that from membership views. *)

module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module World = Vsync_core.World
module Ring = Vsync_shard.Ring
module Router = Vsync_shard.Router

val base_name : string
(** ["twentyq"]; partition [p]'s group is named ["twentyq-p<p>"]. *)

val entry : Entry.t

(** {1 Replicas} *)

type member

val member_proc : member -> Runtime.proc
val member_part : member -> int
val member_gid : member -> Addr.group_id
val member_db : member -> Database.t

(** [serve p ~part ~columns] creates partition [part]'s group with [p]
    as first replica (blocking; task context). *)
val serve : Runtime.proc -> part:int -> columns:string list -> member

(** [join p ~part] joins partition [part]'s existing group, receiving
    the partition database by state transfer.  Retries the directory
    lookup briefly, so it may be issued concurrently with {!serve}. *)
val join : Runtime.proc -> part:int -> (member, string) result

(** {1 Clients} *)

type client

(** [connect p ~partitions] — a client routing over a [partitions]-way
    ring (must match the deployment's). *)
val connect : Runtime.proc -> partitions:int -> client

val router : client -> Router.t

(** [put c values] upserts a row, keyed by its first value: the keyed
    GBCAST replaces any row with the same key in the owning partition
    (idempotent, so handoff restarts cannot duplicate it). *)
val put : ?retries:int -> client -> string list -> (unit, string) result

(** [remove c ~column ~value] deletes matching rows in every partition
    (coverage GBCAST); returns how many went. *)
val remove : ?retries:int -> client -> column:string -> value:string -> (int, string) result

(** [ask c q] answers a twenty-questions query.  An equality query on
    the key column is an existence probe routed to the one partition
    owning the key ({!Database.Yes} iff a row with that key exists;
    the hit count is exact, since all rows sharing a key colocate);
    everything else is a coverage query recombined exactly from the
    per-partition counts.  Returns the answer and the number of
    matching rows. *)
val ask : ?retries:int -> client -> string -> (Database.answer * int, string) result

(** [scan_keys c] — coverage scan: every row key in the whole sharded
    relation (the handoff exactly-once check is built on this).
    Partition order, insertion order within a partition. *)
val scan_keys : ?retries:int -> client -> (string list, string) result

(** {1 Deployment harness} *)

module Deployment : sig
  type t

  (** [deploy w ~partitions ~replicas ~columns] enqueues formation
      tasks for [partitions] replica groups placed by ring ownership
      over all of [w]'s sites.  Drive the world (e.g. {!settle}) to
      let formation complete. *)
  val deploy :
    World.t -> ?partitions:int -> ?replicas:int -> ?columns:string list -> unit -> t

  val ring : t -> Ring.t
  val replicas : t -> int

  (** [members t part] — live replicas of [part]. *)
  val members : t -> int -> member list

  (** [formed t] — every partition has reached its replica target (or
      the live-site count, if smaller). *)
  val formed : t -> bool

  (** [settle t ~timeout_us] runs the world until {!formed} (true) or
      the timeout (false). *)
  val settle : ?timeout_us:int -> t -> bool

  (** [rebalance t] recomputes ring ownership over the currently-live
      sites and enqueues the moves: joins at new owner sites (handoff
      in, by state transfer) and retirements of replicas that lost
      ownership (once the partition is back to strength).  Returns
      immediately; drive the world to complete. *)
  val rebalance : t -> unit

  (** [enable_auto_handoff t] watches for site failures and runs
      {!rebalance} automatically (debounced) when one is detected. *)
  val enable_auto_handoff : t -> unit
end
