type t = {
  cols : string list;
  mutable data : string array list; (* newest last *)
}

type query = { column : string; op : [ `Eq | `Lt | `Gt ]; value : string }

type answer = Yes | No | Sometimes

let answer_to_string = function Yes -> "yes" | No -> "no" | Sometimes -> "sometimes"

let answer_of_string = function
  | "yes" -> Some Yes
  | "no" -> Some No
  | "sometimes" -> Some Sometimes
  | _ -> None

let create ~columns =
  if columns = [] then invalid_arg "Database.create: no columns";
  { cols = columns; data = [] }

let columns t = t.cols
let n_rows t = List.length t.data
let n_columns t = List.length t.cols

let add_row t values =
  if List.length values <> List.length t.cols then
    invalid_arg "Database.add_row: arity mismatch";
  t.data <- t.data @ [ Array.of_list values ]

let column_index t name =
  let rec loop i = function
    | [] -> raise Not_found
    | c :: _ when String.equal c name -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 t.cols

let remove_rows t ~column ~value =
  let ci = column_index t column in
  let keep, gone = List.partition (fun row -> not (String.equal row.(ci) value)) t.data in
  t.data <- keep;
  List.length gone

let row t i = Array.to_list (List.nth t.data i)
let rows t = List.map Array.to_list t.data

let parse_query s =
  let find_op () =
    let rec loop i =
      if i >= String.length s then None
      else
        match s.[i] with
        | '=' -> Some (i, `Eq)
        | '<' -> Some (i, `Lt)
        | '>' -> Some (i, `Gt)
        | _ -> loop (i + 1)
    in
    loop 0
  in
  match find_op () with
  | None -> None
  | Some (i, op) ->
    let column = String.trim (String.sub s 0 i) in
    let value = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    if String.equal column "" || String.equal value "" then None else Some { column; op; value }

(* Numeric comparison when both sides parse as integers; string
   comparison otherwise. *)
let matches op cell value =
  match int_of_string_opt cell, int_of_string_opt value with
  | Some a, Some b -> (
    match op with `Eq -> a = b | `Lt -> a < b | `Gt -> a > b)
  | _ -> (
    let c = String.compare cell value in
    match op with `Eq -> c = 0 | `Lt -> c < 0 | `Gt -> c > 0)

let count_matches t q =
  let total = List.length t.data in
  match column_index t q.column with
  | exception Not_found -> (0, total)
  | ci ->
    let hits = List.length (List.filter (fun row -> matches q.op row.(ci) q.value) t.data) in
    (hits, total)

let eval t ?restrict_object q ~row_filter =
  let ci = try column_index t q.column with Not_found -> -1 in
  if ci < 0 then No
  else begin
    let oi = try Some (column_index t "object") with Not_found -> None in
    let selected =
      List.filteri
        (fun i row ->
          row_filter i
          &&
          match restrict_object, oi with
          | Some obj, Some oc -> String.equal row.(oc) obj
          | Some _, None | None, _ -> true)
        t.data
    in
    match selected with
    | [] -> No
    | _ ->
      let hits = List.length (List.filter (fun row -> matches q.op row.(ci) q.value) selected) in
      if hits = 0 then No else if hits = List.length selected then Yes else Sometimes
  end

let encode t =
  let join = String.concat "\x1f" in
  Bytes.of_string (join t.cols)
  :: List.map (fun row -> Bytes.of_string (join (Array.to_list row))) t.data

let decode chunks =
  let split b = String.split_on_char '\x1f' (Bytes.to_string b) in
  match chunks with
  | [] -> invalid_arg "Database.decode: empty"
  | schema :: rows ->
    let t = create ~columns:(split schema) in
    List.iter (fun r -> add_row t (split r)) rows;
    t

(* The relation printed in the paper, Sec 5 Step 1, plus a second
   object category. *)
let demo_cars () =
  let t = create ~columns:[ "object"; "color"; "size"; "price"; "make"; "model" ] in
  List.iter (add_row t)
    [
      [ "car"; "red"; "small"; "5"; "Weeks"; "Toy" ];
      [ "car"; "yellow"; "tiny"; "6"; "Mattel"; "Toy" ];
      [ "car"; "black"; "compact"; "4995"; "Hyundai"; "Excel" ];
      [ "car"; "tan"; "wagon"; "6190"; "Nissan"; "Sentra" ];
      [ "car"; "green"; "sedan"; "10999"; "Ford"; "Taurus" ];
      [ "car"; "blue"; "compact"; "5799"; "Honda"; "Civic" ];
      [ "car"; "white"; "wagon"; "15248"; "Ford"; "Taurus" ];
      [ "car"; "blue"; "sport"; "18409"; "Nissan"; "300ZX" ];
      [ "car"; "blue"; "sport"; "26776"; "Porsche"; "944" ];
      [ "car"; "white"; "sport"; "35000"; "Mercedes"; "300D" ];
      [ "plane"; "white"; "small"; "45000"; "Cessna"; "152" ];
      [ "plane"; "blue"; "large"; "9000000"; "Boeing"; "737" ];
      [ "plane"; "silver"; "large"; "12000000"; "Airbus"; "A300" ];
    ];
  t

let pp ppf t =
  Format.fprintf ppf "%s@." (String.concat " | " t.cols);
  List.iter
    (fun row -> Format.fprintf ppf "%s@." (String.concat " | " (Array.to_list row)))
    t.data
