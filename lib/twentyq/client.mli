(** The twenty-questions front end (paper Sec 5).

    Issues vertical and horizontal queries against the service,
    retrying with the paper's own fix when the responsible member fails
    mid-call ("instead of hanging, the caller will now obtain an error
    code from the multicast it used to issue the query, and will have
    to reissue its request"); horizontal callers iterate until they
    receive the expected number of responses.

    Queries are transmitted with CBCAST and updates with GBCAST — the
    configuration the paper chose because most requests are queries
    (Step 5). *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [connect p] resolves the service (blocking). *)
val connect : Runtime.proc -> (t, string) result

val group : t -> Addr.group_id

(** [vertical t q] asks e.g. ["price>9000"]: one member answers.
    Retries up to [retries] (default 5) when the responsible member
    fails. *)
val vertical : ?retries:int -> t -> string -> (Database.answer, string) result

(** [horizontal t q] asks e.g. ["price>9000"] of {e all} active
    members (the ['*'] prefix is added for you); answers arrive in
    member-number order.  Iterates until NMEMBERS answers arrive. *)
val horizontal : ?retries:int -> t -> string -> (Database.answer list, string) result

(** [add_row t values] appends a row (1 GBCAST, Step 5; asynchronous).
    Honors runtime backpressure: under overload the calling task blocks
    until the group has pipeline room ({!Runtime.bcast_wait});
    [on_backpressure] runs once per call that had to wait. *)
val add_row : ?on_backpressure:(Addr.group_id -> unit) -> t -> string list -> unit

(** [add_row_sync t values] appends a row and waits until every member
    has applied it (the members confirm with null replies). *)
val add_row_sync : t -> string list -> (unit, string) result

(** [remove_rows t ~column ~value] deletes matching rows (1 GBCAST;
    asynchronous, backpressured like {!add_row}). *)
val remove_rows :
  ?on_backpressure:(Addr.group_id -> unit) -> t -> column:string -> value:string -> unit
