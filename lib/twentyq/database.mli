(** The twenty-questions relation (paper Sec 5, Step 1).

    "The database is organized as a relation"; queries name an item
    (column), a relational operator, and a value — e.g. [price>9000] or
    [color=red] — and the answer over a set of rows is {e yes} (every
    row matches), {e no} (none does), or {e sometimes}. *)

type t

(** A parsed query. *)
type query = { column : string; op : [ `Eq | `Lt | `Gt ]; value : string }

type answer = Yes | No | Sometimes

val answer_to_string : answer -> string
val answer_of_string : string -> answer option

(** [create ~columns] makes an empty relation. *)
val create : columns:string list -> t

val columns : t -> string list
val n_rows : t -> int
val n_columns : t -> int

(** [add_row t values] appends a row.
    @raise Invalid_argument on arity mismatch. *)
val add_row : t -> string list -> unit

(** [remove_rows t ~column ~value] deletes rows whose [column] equals
    [value]; returns how many went. *)
val remove_rows : t -> column:string -> value:string -> int

(** [row t i] / [rows t] access rows (each a value list in column
    order). *)
val row : t -> int -> string list

val rows : t -> string list list

(** [parse_query s] parses ["price>9000"], ["color=red"], ["size<10"].
    A leading ['*'] (horizontal mode) must be stripped by the caller. *)
val parse_query : string -> query option

(** [eval t ?restrict_object q ~row_filter] answers [q] over the rows
    selected by [row_filter] (by row index), optionally restricted to
    rows whose "object" column equals [restrict_object] (the secret
    category of the game).  Empty selection answers {!No}. *)
val eval : t -> ?restrict_object:string -> query -> row_filter:(int -> bool) -> answer

(** [column_index t name] is the column's position.
    @raise Not_found for unknown columns. *)
val column_index : t -> string -> int

(** [count_matches t q] is [(hits, examined)] over every row — the
    partial counts a shard reports so a scatter/gather caller can
    recombine the exact flat-database answer. *)
val count_matches : t -> query -> int * int

(** [encode t] / [decode chunks] — state-transfer/checkpoint format
    (one chunk per row plus a schema chunk). *)
val encode : t -> bytes list

val decode : bytes list -> t

(** [demo_cars ()] is the paper's demonstration database: the 10 car
    rows printed in Sec 5, plus a second category so the guessing game
    is non-trivial. *)
val demo_cars : unit -> t

val pp : Format.formatter -> t -> unit
