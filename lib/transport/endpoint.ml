module Backend = Vsync_backend.Backend
module Tracer = Vsync_obs.Tracer
module Event = Vsync_obs.Event

type site = int

type config = {
  ping_interval_us : int;
  suspect_after : int;
  frame_header_bytes : int;
  max_retransmits : int;
  coalesce : bool;
  min_rto_us : int;
  delayed_ack_us : int;
  adaptive_ack : bool;
  credit_bytes : int;
  credit_frames : int;
}

let default_config =
  let min_rto_us = Rtt.default_min_timeout_us in
  {
    ping_interval_us = 500_000;
    suspect_after = 4;
    frame_header_bytes = 24;
    max_retransmits = 16;
    coalesce = true;
    min_rto_us;
    (* Long enough for the next protocol-level send (one cpu_send_us
       apart, ~6 ms) to carry the ack instead, yet derived from the
       retransmission-timeout floor so the "delayed ack fires before
       any RTO" relationship cannot be silently inverted by retuning
       one constant: 4/5 of a 10 ms floor is the historical 8 ms. *)
    delayed_ack_us = min_rto_us * 4 / 5;
    adaptive_ack = false;
    credit_bytes = 0;
    credit_frames = 0;
  }

(* [gen] is the channel generation: bumped by the sender when it gives
   up on a channel (retransmission budget exhausted), so that post-heal
   traffic starts a recognisably fresh FIFO stream instead of silently
   leaving the receiver waiting on sequence numbers that will never
   arrive.

   [ack_gen]/[ack_upto] piggyback the sender's cumulative ack for its
   {e inbound} channel from the destination: reverse traffic carries
   acks for free, so the dedicated delayed-ack timer rarely fires under
   bidirectional load.  They are stamped when the frame actually goes on
   the wire (so retransmissions carry fresh acks); [ack_upto = -1]
   means "nothing to report". *)
type 'p frame =
  | Data of {
      epoch : int;
      gen : int;
      seq : int;
      frag : int;
      nfrags : int;
      chunk : int;
      payload : 'p option;
      mutable ack_gen : int;
      mutable ack_upto : int;
    }
  | Ack of { epoch : int; gen : int; upto : int }
  | Ping of { epoch : int; id : int }
  | Pong of { epoch : int; id : int }

type 'p pending_msg = {
  seq : int;
  frames : 'p frame list;
  cost_bytes : int; (* wire bytes charged against the credit budget *)
  first_sent_at : int; (* backend µs *)
  mutable attempts : int;
}

(* [fly_bytes]/[fly_frames] track the credit the channel's unacked
   window currently consumes; [waitq] holds payloads admitted by [send]
   but not yet launched because the budget is spent.  Cumulative acks
   trim the window, refund the credit and drain the waitq — credit flow
   control in the classic sliding-budget form. *)
type 'p out_chan = {
  gen : int;
  mutable next_seq : int;
  unacked : 'p pending_msg Queue.t; (* oldest first *)
  waitq : 'p Queue.t; (* oldest first; nonempty only with credits on *)
  mutable fly_bytes : int;
  mutable fly_frames : int;
  out_rtt : Rtt.t;
  mutable rto_timer : Backend.handle option;
}

type 'p partial = {
  nfrags : int;
  got : bool array; (* per-fragment, so duplicated frames can't fake completeness *)
  mutable payload : 'p option;
}

type 'p in_chan = {
  mutable in_gen : int;
  mutable next_deliver : int;
  pending : (int, 'p partial) Hashtbl.t;
  mutable ack_owed : bool;
  mutable ack_timer : Backend.handle option;
}

(* Per-destination staging queue for coalescing: frames enqueued during
   one engine event are packed into shared packets by a zero-delay flush
   callback (the engine fires same-time events in insertion order, so
   the flush runs after every producer of that instant). *)
type 'p sendq = { sq : 'p frame Queue.t; mutable flush_scheduled : bool }

type monitor_state = {
  mon_rtt : Rtt.t;
  mutable missed : int;
  mutable outstanding : (int * int) option; (* ping id, sent at (backend µs) *)
  mutable mon_timer : Backend.handle option;
  mutable active : bool;
  mutable suspected : bool;
      (* failure declared but probing continues: a later pong revokes
         the suspicion via [on_recovery].  A suspicion is a verdict
         about the recent past, not the future — only [unmonitor]
         (membership says the site is really gone) stops the probes. *)
}

type 'p t = {
  fabric : 'p fabric;
  my_site : site;
  size : 'p -> int;
  cfg : config;
  mutable my_epoch : int;
  mutable is_alive : bool;
  mutable receiver : (src:site -> 'p list -> unit) option;
  mutable on_failure : site -> unit;
  mutable on_recovery : site -> unit;
  mutable on_peer_restart : site -> unit;
  mutable on_congestion : site -> unit;
      (* an RTO fired toward the site: the path is losing or slow.
         The runtime's adaptive ABCAST window listens here. *)
  mutable on_credit : site -> unit;
      (* a cumulative ack refunded credit toward the site; blocked
         originators may retry. *)
  outs : (site, 'p out_chan) Hashtbl.t;
  ins : (site, 'p in_chan) Hashtbl.t;
  sendqs : (site, 'p sendq) Hashtbl.t;
  out_gens : (site, int) Hashtbl.t; (* next generation for a re-opened channel *)
  peer_epochs : (site, int) Hashtbl.t;
  monitors : (site, monitor_state) Hashtbl.t;
  mutable next_ping_id : int;
  mutable n_frames_sent : int;
  mutable n_acks_sent : int;
  mutable n_packets_sent : int;
  mutable n_retransmits : int;
  mutable n_channel_failures : int;
  mutable tracer : Tracer.t option;
}

and 'p fabric = {
  fbk : Backend.t;
  mutable endpoints : 'p t option array;
}

let fabric bk = { fbk = bk; endpoints = Array.make (Backend.n_sites bk) None }

let create ?(config = default_config) fabric ~site ~size () =
  if site < 0 || site >= Array.length fabric.endpoints then
    invalid_arg "Endpoint.create: bad site";
  (match fabric.endpoints.(site) with
  | Some _ -> invalid_arg "Endpoint.create: site already has an endpoint"
  | None -> ());
  let t =
    {
      fabric;
      my_site = site;
      size;
      cfg = config;
      my_epoch = 1;
      is_alive = true;
      receiver = None;
      on_failure = (fun _ -> ());
      on_recovery = (fun _ -> ());
      on_peer_restart = (fun _ -> ());
      on_congestion = (fun _ -> ());
      on_credit = (fun _ -> ());
      outs = Hashtbl.create 8;
      ins = Hashtbl.create 8;
      sendqs = Hashtbl.create 8;
      out_gens = Hashtbl.create 8;
      peer_epochs = Hashtbl.create 8;
      monitors = Hashtbl.create 8;
      next_ping_id = 0;
      n_frames_sent = 0;
      n_acks_sent = 0;
      n_packets_sent = 0;
      n_retransmits = 0;
      n_channel_failures = 0;
      tracer = None;
    }
  in
  fabric.endpoints.(site) <- Some t;
  t

let site t = t.my_site
let epoch t = t.my_epoch
let alive t = t.is_alive
let backend t = t.fabric.fbk

let set_receiver t f = t.receiver <- Some f
let set_tracer t tr = t.tracer <- Some tr

(* Guard-then-construct: transport events allocate nothing unless a
   tracer is attached, enabled and listening to the class. *)
let trace_transport t mk =
  match t.tracer with
  | Some tr when Tracer.wants tr Event.Transport -> Tracer.emit tr (mk ())
  | Some _ | None -> ()

let set_failure_handler t f = t.on_failure <- f
let set_recovery_handler t f = t.on_recovery <- f
let set_restart_handler t f = t.on_peer_restart <- f
let set_congestion_handler t f = t.on_congestion <- f
let set_credit_handler t f = t.on_credit <- f
let frames_sent t = t.n_frames_sent
let acks_sent t = t.n_acks_sent
let packets_sent t = t.n_packets_sent
let retransmits t = t.n_retransmits
let channel_failures t = t.n_channel_failures

(* Live transport state, for bounded-memory gauges: in-flight send
   window (unacked messages, trimmed by cumulative acks) and
   receive-side reassembly buffers (partials above [next_deliver] —
   the receive dedup itself is a per-channel watermark, so it holds no
   per-message state at all). *)
let inflight t = Hashtbl.fold (fun _ ch acc -> acc + Queue.length ch.unacked) t.outs 0
let recv_pending t = Hashtbl.fold (fun _ ch acc -> acc + Hashtbl.length ch.pending) t.ins 0

(* Flow-control gauges: all three drain to zero at quiescence (every
   send acked refunds its credit, every waiting payload launches, every
   staged frame flushes within its engine instant). *)
let sendq_depth t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q.sq) t.sendqs 0
let credit_waiting t = Hashtbl.fold (fun _ ch acc -> acc + Queue.length ch.waitq) t.outs 0
let credit_used_bytes t = Hashtbl.fold (fun _ ch acc -> acc + ch.fly_bytes) t.outs 0

let credits_enabled t = t.cfg.credit_bytes > 0 || t.cfg.credit_frames > 0

let backpressured t ~dst =
  credits_enabled t
  &&
  match Hashtbl.find_opt t.outs dst with
  | Some ch -> not (Queue.is_empty ch.waitq)
  | None -> false

(* A message fits the budget if it leaves both dimensions within their
   limits — except on an idle channel, where even an oversized message
   must launch (a budget smaller than one message must degrade to
   stop-and-wait, not wedge forever). *)
let credit_fits t ch ~bytes ~frames =
  (ch.fly_bytes = 0 && ch.fly_frames = 0)
  || ((t.cfg.credit_bytes <= 0 || ch.fly_bytes + bytes <= t.cfg.credit_bytes)
     && (t.cfg.credit_frames <= 0 || ch.fly_frames + frames <= t.cfg.credit_frames))

let frame_bytes t = function
  | Data { chunk; _ } -> chunk + t.cfg.frame_header_bytes
  | Ack _ | Ping _ | Pong _ -> t.cfg.frame_header_bytes

let cancel_ack_timer ch =
  Option.iter Backend.cancel ch.ack_timer;
  ch.ack_timer <- None

(* Stamp the piggybacked cumulative ack for [dst] onto an outgoing data
   frame, at wire time.  Clearing [ack_owed] suppresses the pending
   delayed-ack timer shot: the reverse traffic has carried the ack. *)
let stamp_ack t ~dst frame =
  match frame with
  | Data d when t.cfg.delayed_ack_us > 0 -> (
    match Hashtbl.find_opt t.ins dst with
    | Some ch ->
      d.ack_gen <- ch.in_gen;
      d.ack_upto <- ch.next_deliver - 1;
      ch.ack_owed <- false
    | None -> ())
  | Data _ | Ack _ | Ping _ | Pong _ -> ()

let account_frame t = function
  | Data _ -> t.n_frames_sent <- t.n_frames_sent + 1
  | Ack _ -> t.n_acks_sent <- t.n_acks_sent + 1
  | Ping _ | Pong _ -> ()

(* Fragment sizes for a payload: every chunk fits its own packet. *)
let frame_plan t p =
  let total = t.size p in
  let chunk_cap = Backend.max_packet_bytes t.fabric.fbk - t.cfg.frame_header_bytes in
  let rec chunks remaining acc =
    if remaining <= chunk_cap then List.rev (remaining :: acc)
    else chunks (remaining - chunk_cap) (chunk_cap :: acc)
  in
  chunks (max total 0) []

(* Credit cost of a payload: (wire bytes incl. headers, frame count). *)
let msg_cost t p =
  let sizes = frame_plan t p in
  (List.fold_left (fun acc c -> acc + c + t.cfg.frame_header_bytes) 0 sizes, List.length sizes)

(* With [adaptive_ack], the delayed-ack timer tracks the live Karn RTT
   estimate of the reverse data channel instead of the static constant:
   half an RTT is long enough for reverse traffic to carry the
   piggyback, short enough to refund sender credit promptly on fast
   paths.  The static [delayed_ack_us] (itself derived from the RTO
   floor) remains the ceiling, so the ack always beats the minimum
   RTO. *)
let ack_delay_us t ~src =
  if not t.cfg.adaptive_ack then t.cfg.delayed_ack_us
  else
    match Hashtbl.find_opt t.outs src with
    | Some ch when Rtt.samples ch.out_rtt > 0 ->
      let floor_us = max 500 (t.cfg.min_rto_us / 10) in
      min t.cfg.delayed_ack_us (max floor_us (Rtt.srtt_us ch.out_rtt / 2))
    | Some _ | None -> t.cfg.delayed_ack_us

(* Forward declaration dance: transmit needs handle_packet of the peer. *)
let rec transmit t ~dst frame =
  if t.is_alive then
    if not t.cfg.coalesce then begin
      stamp_ack t ~dst frame;
      account_frame t frame;
      send_packet t ~dst [ frame ] ~bytes:(frame_bytes t frame)
    end
    else begin
      let q =
        match Hashtbl.find_opt t.sendqs dst with
        | Some q -> q
        | None ->
          let q = { sq = Queue.create (); flush_scheduled = false } in
          Hashtbl.replace t.sendqs dst q;
          q
      in
      Queue.push frame q.sq;
      if not q.flush_scheduled then begin
        q.flush_scheduled <- true;
        let my_epoch = t.my_epoch in
        ignore
          (Backend.schedule (backend t) ~delay:0 (fun () ->
               q.flush_scheduled <- false;
               if t.is_alive && t.my_epoch = my_epoch then flush_sendq t ~dst q
               else Queue.clear q.sq))
      end
    end

and flush_sendq t ~dst q =
  let max_bytes = Backend.max_packet_bytes t.fabric.fbk in
  while not (Queue.is_empty q.sq) do
    (* Greedily pack queued frames into one network packet.  Every frame
       fits on its own ([send] fragments to the packet size), so the
       packet never exceeds [max_packet_bytes]. *)
    let frames = ref [] in
    let bytes = ref 0 in
    let full = ref false in
    while (not !full) && not (Queue.is_empty q.sq) do
      let f = Queue.peek q.sq in
      let fb = frame_bytes t f in
      if !frames = [] || !bytes + fb <= max_bytes then begin
        ignore (Queue.pop q.sq);
        stamp_ack t ~dst f;
        account_frame t f;
        frames := f :: !frames;
        bytes := !bytes + fb
      end
      else full := true
    done;
    send_packet t ~dst (List.rev !frames) ~bytes:!bytes
  done

and send_packet t ~dst frames ~bytes =
  t.n_packets_sent <- t.n_packets_sent + 1;
  (* Per-packet: guard inlined so the disabled path allocates nothing
     (without flambda a [trace_transport] thunk is a heap closure). *)
  (match t.tracer with
  | Some tr when Tracer.wants tr Event.Transport ->
    Tracer.emit tr (Event.Packet_send { site = t.my_site; dst; nframes = List.length frames; bytes })
  | Some _ | None -> ());
  Backend.send t.fabric.fbk ~src:t.my_site ~dst ~bytes (fun () ->
      match t.fabric.endpoints.(dst) with
      | Some peer when peer.is_alive -> handle_packet peer ~src:t.my_site frames
      | Some _ | None -> ())

and out_chan t dst =
  match Hashtbl.find_opt t.outs dst with
  | Some ch -> ch
  | None ->
    let gen = Option.value ~default:0 (Hashtbl.find_opt t.out_gens dst) in
    let ch =
      {
        gen;
        next_seq = 0;
        unacked = Queue.create ();
        waitq = Queue.create ();
        fly_bytes = 0;
        fly_frames = 0;
        out_rtt = Rtt.create ~min_timeout_us:t.cfg.min_rto_us ();
        rto_timer = None;
      }
    in
    Hashtbl.replace t.outs dst ch;
    ch

(* Assign a sequence number, fragment, charge the credit budget and put
   the message on the wire.  Callers have already passed admission. *)
and launch_msg t ~dst ch p =
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  let sizes = frame_plan t p in
  let nfrags = List.length sizes in
  let frames =
    List.mapi
      (fun i chunk ->
        Data
          {
            epoch = t.my_epoch;
            gen = ch.gen;
            seq;
            frag = i;
            nfrags;
            chunk;
            payload = (if i = 0 then Some p else None);
            ack_gen = 0;
            ack_upto = -1;
          })
      sizes
  in
  let cost_bytes = List.fold_left (fun acc c -> acc + c + t.cfg.frame_header_bytes) 0 sizes in
  let msg = { seq; frames; cost_bytes; first_sent_at = Backend.now (backend t); attempts = 0 } in
  Queue.push msg ch.unacked;
  ch.fly_bytes <- ch.fly_bytes + cost_bytes;
  ch.fly_frames <- ch.fly_frames + nfrags;
  List.iter (fun f -> transmit t ~dst f) frames;
  arm_rto t ~dst ch

(* Launch as much of the waitq as the refreshed budget admits, in FIFO
   order (head-of-line blocking is the point: credits pace, never
   reorder). *)
and drain_waitq t ~dst ch =
  let blocked = ref false in
  while (not !blocked) && not (Queue.is_empty ch.waitq) do
    let p = Queue.peek ch.waitq in
    let bytes, frames = msg_cost t p in
    if credit_fits t ch ~bytes ~frames then begin
      ignore (Queue.pop ch.waitq);
      launch_msg t ~dst ch p
    end
    else blocked := true
  done

and in_chan t src =
  match Hashtbl.find_opt t.ins src with
  | Some ch -> ch
  | None ->
    let ch =
      { in_gen = 0; next_deliver = 0; pending = Hashtbl.create 8; ack_owed = false; ack_timer = None }
    in
    Hashtbl.replace t.ins src ch;
    ch

and arm_rto t ~dst ch =
  if ch.rto_timer = None && not (Queue.is_empty ch.unacked) then begin
    let my_epoch = t.my_epoch in
    let delay = Rtt.timeout_us ch.out_rtt in
    ch.rto_timer <-
      Some
        (Backend.schedule (backend t) ~delay (fun () ->
             ch.rto_timer <- None;
             if t.is_alive && t.my_epoch = my_epoch then begin
               trace_transport t (fun () ->
                   Event.Rto { site = t.my_site; dst; timeout_us = delay });
               retransmit t ~dst ch
             end))
  end

and retransmit t ~dst ch =
  if not (Queue.is_empty ch.unacked) then begin
    Rtt.backoff ch.out_rtt;
    t.on_congestion dst;
    let exhausted =
      Queue.fold (fun acc m -> acc || m.attempts + 1 > t.cfg.max_retransmits) false ch.unacked
    in
    if exhausted then
      (* Go-back-N cannot drop one message and keep sending later ones:
         the receiver would wait forever on the gap.  Exhausting the
         budget therefore fails the whole channel, loudly. *)
      fail_channel t ~dst ch
    else begin
      let nframes = ref 0 in
      Queue.iter
        (fun m ->
          m.attempts <- m.attempts + 1;
          nframes := !nframes + List.length m.frames;
          t.n_retransmits <- t.n_retransmits + List.length m.frames;
          List.iter (fun f -> transmit t ~dst f) m.frames)
        ch.unacked;
      trace_transport t (fun () -> Event.Retransmit { site = t.my_site; dst; nframes = !nframes });
      arm_rto t ~dst ch
    end
  end

and fail_channel t ~dst ch =
  Option.iter Backend.cancel ch.rto_timer;
  ch.rto_timer <- None;
  Queue.clear ch.unacked;
  (* Payloads still waiting on credit die with the channel: go-back-N
     already drops the unacked window, and the failure handler tells the
     membership layer the peer is unreachable either way. *)
  Queue.clear ch.waitq;
  ch.fly_bytes <- 0;
  ch.fly_frames <- 0;
  Hashtbl.remove t.outs dst;
  (* The next send to [dst] opens a fresh FIFO stream under gen+1; the
     receiver discards any leftovers of this generation when it sees it. *)
  Hashtbl.replace t.out_gens dst (ch.gen + 1);
  t.n_channel_failures <- t.n_channel_failures + 1;
  trace_transport t (fun () ->
      Event.Channel_fail
        { site = t.my_site; peer = dst; dir = "out"; reason = "retransmit budget exhausted" });
  (* The dropped waitq changed the credit picture for [dst]: wake any
     blocked originator so it re-evaluates against the failure rather
     than sleeping on credit that will never be refunded. *)
  if credits_enabled t then t.on_credit dst;
  t.on_failure dst

(* Inbound analogue of [fail_channel], for a receive stream whose
   reassembly state is provably corrupt: keeping the channel would
   either deliver garbage or wedge FIFO forever, so tear it down loudly
   and let the failure handler treat the peer like any other broken
   channel.  The next frame from the peer reopens a fresh stream. *)
and fail_in_channel t ~src ch ~reason =
  cancel_ack_timer ch;
  Hashtbl.reset ch.pending;
  Hashtbl.remove t.ins src;
  t.n_channel_failures <- t.n_channel_failures + 1;
  trace_transport t (fun () ->
      Event.Channel_fail { site = t.my_site; peer = src; dir = "in"; reason });
  t.on_failure src

(* One network packet arrived: process its frames in order, then hand
   every payload completed by this packet to the receiver in a single
   batch (the protocol layer charges its per-interrupt CPU cost once per
   packet, not once per frame — the point of coalescing). *)
and handle_packet t ~src frames =
  (match t.tracer with
  | Some tr when Tracer.wants tr Event.Transport ->
    Tracer.emit tr (Event.Packet_recv { site = t.my_site; src; nframes = List.length frames })
  | Some _ | None -> ());
  let sink = ref [] in
  List.iter (fun frame -> handle_frame t ~src ~sink frame) frames;
  match (t.receiver, List.rev !sink) with
  | Some deliver, (_ :: _ as payloads) -> deliver ~src payloads
  | _ -> ()

and handle_frame t ~src ~sink frame =
  match t.receiver with
  | None -> () (* not wired up yet; drop *)
  | Some _ ->
    let frame_epoch =
      match frame with
      | Data { epoch; _ } | Ack { epoch; _ } | Ping { epoch; id = _ } | Pong { epoch; id = _ } ->
        epoch
    in
    let known = Hashtbl.find_opt t.peer_epochs src in
    let stale = match known with Some k -> frame_epoch < k | None -> false in
    if stale then () (* stale incarnation *)
    else begin
      (match known with
      | None ->
        (* First contact with this peer: adopt its epoch. *)
        Hashtbl.replace t.peer_epochs src frame_epoch
      | Some k when frame_epoch > k ->
        (* The peer restarted: all channel state for the old incarnation
           is garbage.  Outbound unacked traffic was addressed to the
           dead incarnation; the membership layer handles the fallout. *)
        Hashtbl.replace t.peer_epochs src frame_epoch;
        (match Hashtbl.find_opt t.ins src with
        | Some ch ->
          cancel_ack_timer ch;
          Hashtbl.remove t.ins src
        | None -> ());
        (match Hashtbl.find_opt t.outs src with
        | Some ch ->
          Option.iter Backend.cancel ch.rto_timer;
          Hashtbl.remove t.outs src
        | None -> ());
        (* A restart can beat the failure detector (crash + revive inside
           the suspicion window).  Whoever relied on the old incarnation
           must hear about it regardless.  The monitor's history is of
           the OLD incarnation, so it restarts from scratch: the standing
           suspicion must not be retracted by a pong from the new
           incarnation (recovery means "same incarnation reachable
           again"; a restart confirms the old one is dead for good), and
           the accumulated miss count and any in-flight ping must not be
           held against the new one — a stale ping's backed-off timeout
           firing over a still-huge [missed] would re-declare the fresh
           incarnation down the moment it came up. *)
        (match Hashtbl.find_opt t.monitors src with
        | Some mon ->
          mon.suspected <- false;
          mon.missed <- 0;
          mon.outstanding <- None
        | None -> ());
        t.on_peer_restart src
      | Some _ -> ());
      match frame with
      | Ping { id; _ } -> transmit t ~dst:src (Pong { epoch = t.my_epoch; id })
      | Pong { id; _ } -> handle_pong t ~src ~id
      | Ack { gen; upto; _ } -> handle_ack t ~src ~gen ~upto
      | Data { gen; seq; frag; nfrags; payload; ack_gen; ack_upto; _ } ->
        if ack_upto >= 0 then handle_ack t ~src ~gen:ack_gen ~upto:ack_upto;
        handle_data t ~src ~gen ~seq ~frag ~nfrags ~payload ~sink
    end

and handle_ack t ~src ~gen ~upto =
  match Hashtbl.find_opt t.outs src with
  | None -> ()
  | Some ch when ch.gen <> gen -> () (* ack for an abandoned channel generation *)
  | Some ch ->
    let now = Backend.now (backend t) in
    (* Trim the acked prefix (the queue is oldest-first, so everything
       the cumulative ack covers sits at the head), sampling the RTT
       estimator as we go.  Karn's algorithm: only first-transmission
       samples train the estimator — and only while no retransmitted
       message sits ahead in the queue.  After a go-back-N round a
       never-retransmitted message can ride behind retransmitted ones,
       and a cumulative ack covering it may have been triggered by any
       copy of those: it cannot date the later message either.
       (Messages beyond the acked prefix can never yield a sample, so
       fusing sampling into the trim makes each ack O(acked) where the
       historical separate Karn scan was O(in-flight window).) *)
    let clean = ref true in
    let refunded = ref false in
    while (not (Queue.is_empty ch.unacked)) && (Queue.peek ch.unacked).seq <= upto do
      let m = Queue.pop ch.unacked in
      ch.fly_bytes <- ch.fly_bytes - m.cost_bytes;
      ch.fly_frames <- ch.fly_frames - List.length m.frames;
      refunded := true;
      if m.attempts > 0 then clean := false
      else if !clean then Rtt.observe ch.out_rtt (now - m.first_sent_at)
    done;
    if Queue.is_empty ch.unacked then begin
      Option.iter Backend.cancel ch.rto_timer;
      ch.rto_timer <- None
    end;
    if !refunded && credits_enabled t then begin
      drain_waitq t ~dst:src ch;
      t.on_credit src
    end

(* Record that [src] is owed a cumulative ack.  With delayed acks the
   dedicated frame goes out only if no reverse data frame has carried
   the ack when the (short, well under the minimum RTO) timer fires. *)
and note_ack_owed t ~src ch =
  if t.cfg.delayed_ack_us <= 0 then begin
    (match t.tracer with
    | Some tr when Tracer.wants tr Event.Transport ->
      Tracer.emit tr (Event.Ack_send { site = t.my_site; dst = src; upto = ch.next_deliver - 1 })
    | Some _ | None -> ());
    transmit t ~dst:src (Ack { epoch = t.my_epoch; gen = ch.in_gen; upto = ch.next_deliver - 1 })
  end
  else begin
    ch.ack_owed <- true;
    if ch.ack_timer = None then begin
      let my_epoch = t.my_epoch in
      ch.ack_timer <-
        Some
          (Backend.schedule (backend t) ~delay:(ack_delay_us t ~src) (fun () ->
               ch.ack_timer <- None;
               if t.is_alive && t.my_epoch = my_epoch && ch.ack_owed then begin
                 ch.ack_owed <- false;
                 (match t.tracer with
                 | Some tr when Tracer.wants tr Event.Transport ->
                   Tracer.emit tr
                     (Event.Ack_send { site = t.my_site; dst = src; upto = ch.next_deliver - 1 })
                 | Some _ | None -> ());
                 transmit t ~dst:src
                   (Ack { epoch = t.my_epoch; gen = ch.in_gen; upto = ch.next_deliver - 1 })
               end))
    end
  end

and handle_data t ~src ~gen ~seq ~frag ~nfrags ~payload ~sink =
  let ch = in_chan t src in
  if gen < ch.in_gen then () (* leftovers of a generation the sender abandoned *)
  else begin
    if gen > ch.in_gen then begin
      (* The sender gave up on the previous generation (and reported a
         failure on its side); whatever was undelivered is gone.  Start
         the new FIFO stream cleanly. *)
      ch.in_gen <- gen;
      ch.next_deliver <- 0;
      Hashtbl.reset ch.pending
    end;
    if seq < ch.next_deliver then
      (* Duplicate of something already delivered: re-ack so the sender
         stops resending. *)
      note_ack_owed t ~src ch
    else begin
      let partial =
        match Hashtbl.find_opt ch.pending seq with
        | Some p -> p
        | None ->
          let p = { nfrags; got = Array.make (max nfrags 1) false; payload = None } in
          Hashtbl.replace ch.pending seq p;
          p
      in
      if frag >= 0 && frag < Array.length partial.got then partial.got.(frag) <- true;
      (match payload with Some _ -> partial.payload <- payload | None -> ());
      (* Release every complete in-order message into the batch. *)
      let complete p = Array.for_all Fun.id p.got in
      let made_progress = ref false in
      let corrupt = ref false in
      let rec drain () =
        match Hashtbl.find_opt ch.pending ch.next_deliver with
        | Some p when complete p -> (
          match p.payload with
          | Some v ->
            Hashtbl.remove ch.pending ch.next_deliver;
            ch.next_deliver <- ch.next_deliver + 1;
            made_progress := true;
            sink := v :: !sink;
            drain ()
          | None ->
            (* Fragment 0 always carries the payload, so a complete
               partial without one means the reassembly state is
               corrupt.  Channel-fatal, not process-fatal: delivering
               on would hand garbage up, and skipping the message would
               silently break FIFO. *)
            corrupt := true)
        | Some _ | None -> ()
      in
      drain ();
      if !corrupt then
        fail_in_channel t ~src ch ~reason:"complete message with no payload fragment"
      else if !made_progress then note_ack_owed t ~src ch
    end
  end

and handle_pong t ~src ~id =
  match Hashtbl.find_opt t.monitors src with
  | None -> ()
  | Some mon -> (
    match mon.outstanding with
    | Some (expected, sent_at) when expected = id ->
      mon.outstanding <- None;
      mon.missed <- 0;
      Rtt.observe mon.mon_rtt (Backend.now (backend t) - sent_at);
      if mon.suspected then begin
        mon.suspected <- false;
        t.on_recovery src
      end
    | Some _ | None -> ())

(* Test hook.  The reassembly invariant "a complete message holds its
   payload fragment" cannot be violated by any wire behaviour — fragment
   0 always carries the payload, and loss/dup/reorder can delay or drop
   frames but never strip one — so the defensive teardown in the drain
   is not organically reachable.  This forges a complete payload-less
   partial at the delivery watermark and runs the real drain over it,
   letting the regression test pin the channel-fatal behaviour. *)
let inject_reassembly_corruption t ~src =
  let ch = in_chan t src in
  Hashtbl.replace ch.pending ch.next_deliver
    { nfrags = 1; got = Array.make 1 true; payload = None };
  let sink = ref [] in
  handle_data t ~src ~gen:ch.in_gen ~seq:ch.next_deliver ~frag:(-1) ~nfrags:1 ~payload:None ~sink;
  assert (!sink = [])

let send t ~dst p =
  if t.is_alive then begin
    if dst = t.my_site then begin
      (* Local loop: one intra-site hop, no sequencing needed. *)
      let my_epoch = t.my_epoch in
      ignore
        (Backend.schedule (backend t)
           ~delay:(Backend.intra_site_us t.fabric.fbk)
           (fun () ->
             if t.is_alive && t.my_epoch = my_epoch then
               match t.receiver with Some deliver -> deliver ~src:t.my_site [ p ] | None -> ()))
    end
    else begin
      let ch = out_chan t dst in
      if credits_enabled t then begin
        let bytes, frames = msg_cost t p in
        (* FIFO admission: if anything is already waiting, queue behind
           it even when the budget momentarily fits — launching around
           the waitq would reorder the stream. *)
        if (not (Queue.is_empty ch.waitq)) || not (credit_fits t ch ~bytes ~frames) then
          Queue.push p ch.waitq
        else launch_msg t ~dst ch p
      end
      else launch_msg t ~dst ch p
    end
  end

(* --- Failure detection --- *)

let rec schedule_ping t ~site mon =
  let my_epoch = t.my_epoch in
  mon.mon_timer <-
    Some
      (Backend.schedule (backend t) ~delay:t.cfg.ping_interval_us (fun () ->
           mon.mon_timer <- None;
           if t.is_alive && t.my_epoch = my_epoch && mon.active then send_ping t ~site mon))

and send_ping t ~site mon =
  let id = t.next_ping_id in
  t.next_ping_id <- id + 1;
  mon.outstanding <- Some (id, Backend.now (backend t));
  transmit t ~dst:site (Ping { epoch = t.my_epoch; id });
  let my_epoch = t.my_epoch in
  let timeout = Rtt.timeout_us mon.mon_rtt in
  ignore
    (Backend.schedule (backend t) ~delay:timeout (fun () ->
         if t.is_alive && t.my_epoch = my_epoch && mon.active then begin
           (match mon.outstanding with
           | Some (expected, _) when expected = id ->
             (* Probe lost or peer slow: back the timeout off and count
                the miss. *)
             mon.outstanding <- None;
             mon.missed <- mon.missed + 1;
             Rtt.backoff mon.mon_rtt
           | Some _ | None -> ());
           if mon.missed >= t.cfg.suspect_after && not mon.suspected then begin
             (* Declare the suspicion but KEEP probing: a suspicion of a
                site that is merely unreachable (loss window, partition)
                must be revocable, or a stale report circulates forever
                once the network heals.  Probing stops only when the
                membership layer calls [unmonitor] — i.e. the view
                really evicted the site. *)
             mon.suspected <- true;
             t.on_failure site;
             if mon.active then schedule_ping t ~site mon
           end
           else schedule_ping t ~site mon
         end))

let monitor t ~site =
  if t.is_alive && not (Hashtbl.mem t.monitors site) && site <> t.my_site then begin
    let mon =
      {
        mon_rtt = Rtt.create ~min_timeout_us:t.cfg.min_rto_us ();
        missed = 0;
        outstanding = None;
        mon_timer = None;
        active = true;
        suspected = false;
      }
    in
    Hashtbl.replace t.monitors site mon;
    send_ping t ~site mon
  end

let unmonitor t ~site =
  match Hashtbl.find_opt t.monitors site with
  | None -> ()
  | Some mon ->
    mon.active <- false;
    Option.iter Backend.cancel mon.mon_timer;
    mon.mon_timer <- None;
    Hashtbl.remove t.monitors site

let rtt_us t ~site =
  match Hashtbl.find_opt t.monitors site with
  | Some mon when Rtt.samples mon.mon_rtt > 0 -> Some (Rtt.srtt_us mon.mon_rtt)
  | Some _ | None -> None

let out_rtt_stats t ~dst =
  match Hashtbl.find_opt t.outs dst with
  | Some ch -> Some (Rtt.samples ch.out_rtt, Rtt.srtt_us ch.out_rtt)
  | None -> None

let crash t =
  t.is_alive <- false;
  Hashtbl.iter (fun _ ch -> Option.iter Backend.cancel ch.rto_timer) t.outs;
  Hashtbl.iter (fun _ ch -> cancel_ack_timer ch) t.ins;
  Hashtbl.iter (fun _ mon -> Option.iter Backend.cancel mon.mon_timer) t.monitors;
  Hashtbl.reset t.outs;
  Hashtbl.reset t.ins;
  Hashtbl.reset t.sendqs;
  Hashtbl.reset t.monitors

let restart t =
  if t.is_alive then invalid_arg "Endpoint.restart: endpoint is alive";
  t.is_alive <- true;
  t.my_epoch <- t.my_epoch + 1;
  Hashtbl.reset t.outs;
  Hashtbl.reset t.ins;
  Hashtbl.reset t.sendqs;
  Hashtbl.reset t.out_gens;
  Hashtbl.reset t.peer_epochs;
  Hashtbl.reset t.monitors
