(** Reliable FIFO inter-site transport.

    One endpoint per site.  {!send} delivers an abstract payload to the
    destination site exactly once and in sender order, over the lossy
    packet network: messages larger than a packet are fragmented
    (4 KB packets, as in the paper), sequenced per destination,
    acknowledged cumulatively, and retransmitted (go-back-N) on an
    adaptive timeout.  Intra-site sends bypass sequencing and cost one
    10 µs hop.

    The payload stays an OCaml value — only its {e declared size}
    travels through the byte-accounted network — so protocol layers
    avoid a gratuitous serialization step while the simulation still
    charges honest byte counts (application payloads are
    [Vsync_msg.Message.t] values whose size is their real encoded
    length).

    {2 Retransmission exhaustion}

    Go-back-N cannot drop one message and keep sending later ones: the
    receiver would wait forever on the sequence gap, silently breaking
    FIFO.  When the oldest unacked message exhausts [max_retransmits]
    the endpoint instead fails the {e whole channel}: outbound state is
    discarded, the failure handler runs for the destination (so the
    membership layer can turn the wedge into a clean failure event), and
    the next send to that site opens a fresh FIFO stream under a new
    {e channel generation}.  Data and ack frames carry the generation;
    a receiver that sees a newer generation discards undelivered
    leftovers of the old stream and resequences from zero, and stale
    generation frames are ignored.  Exactly-once in-order delivery thus
    holds {e within} a generation, and generation turnover is always
    surfaced as a failure event, never silent loss.

    {2 Incarnations}

    Every endpoint has an {e epoch}, bumped by {!restart}.  Frames carry
    the sender's epoch; a receiver that sees a newer epoch from a peer
    discards all channel state for the old incarnation (the dead
    incarnation's undelivered traffic is gone for good — the membership
    layer turns that into a clean failure/rejoin event).  Frames from an
    older epoch are dropped.

    {2 Failure detection}

    The endpoint pings {!monitor}ed sites periodically.  Ping timeouts
    use the adaptive {!Rtt} estimator; after [suspect_after] consecutive
    losses the site is declared failed and the failure handler runs.
    Detection is {e local suspicion} — turning suspicions into a
    system-wide consistent failure event is the membership layer's job. *)

type site = int

type config = {
  ping_interval_us : int;   (** gap between liveness probes. *)
  suspect_after : int;      (** consecutive lost pings before declaring failure. *)
  frame_header_bytes : int; (** per-frame header charged to the wire. *)
  max_retransmits : int;    (** give up resending after this many attempts. *)
}

val default_config : config

type 'p t

(** A fabric owns the per-site endpoint registry for one payload type;
    all endpoints that talk to each other share a fabric. *)
type 'p fabric

val fabric : Vsync_sim.Net.t -> 'p fabric

(** [create fabric ~site ~size ()] attaches an endpoint to [site].
    [size] gives the wire size of a payload in bytes.
    @raise Invalid_argument if the site already has an endpoint. *)
val create : ?config:config -> 'p fabric -> site:site -> size:('p -> int) -> unit -> 'p t

val site : _ t -> site
val epoch : _ t -> int
val alive : _ t -> bool
val net : 'p t -> Vsync_sim.Net.t

(** [set_receiver t f] installs the delivery upcall [f ~src payload].
    Must be set before any traffic arrives. *)
val set_receiver : 'p t -> (src:site -> 'p -> unit) -> unit

(** [send t ~dst p] queues [p] for reliable FIFO delivery at [dst].
    Sends from a crashed endpoint are silently dropped (a dead process
    sends nothing). *)
val send : 'p t -> dst:site -> 'p -> unit

(** {1 Failure detection} *)

(** [monitor t ~site] starts probing [site]. Idempotent. *)
val monitor : _ t -> site:site -> unit

(** [unmonitor t ~site] stops probing and clears suspicion state. *)
val unmonitor : _ t -> site:site -> unit

(** [set_failure_handler t f] runs [f site] once per detected failure
    of a monitored site. *)
val set_failure_handler : _ t -> (site -> unit) -> unit

(** [set_restart_handler t f] runs [f site] when a frame reveals that
    [site] restarted under a new epoch.  A quick crash-and-revive can
    beat the ping-based detector, leaving peers holding state about an
    incarnation that no longer exists; this hook lets the membership
    layer treat the old incarnation as failed. *)
val set_restart_handler : _ t -> (site -> unit) -> unit

(** [rtt_us t ~site] is the current smoothed RTT estimate to [site], if
    any probe has completed. *)
val rtt_us : _ t -> site:site -> int option

(** {1 Lifecycle} *)

(** [crash t] silences the endpoint: no more sends, receives, probes or
    retransmissions.  In-flight state is dropped. *)
val crash : _ t -> unit

(** [restart t] revives a crashed endpoint under a new epoch with empty
    channel state. *)
val restart : _ t -> unit

(** {1 Accounting} *)

(** [frames_sent t] counts data frames put on the wire (including
    retransmissions); [retransmits t] counts only the latter. *)
val frames_sent : _ t -> int

val retransmits : _ t -> int

(** [channel_failures t] counts outbound channels abandoned after
    retransmission exhaustion (each one also invoked the failure
    handler). *)
val channel_failures : _ t -> int
