(** Adaptive round-trip-time estimation (Jacobson/Karels style).

    The ISIS failure detector "adaptively adjusts the timeout interval
    to avoid treating an overloaded site as having failed" (paper
    Sec 3.7).  We keep an EWMA of the RTT and its mean deviation and
    derive both the retransmission timeout and the failure-suspicion
    timeout from them, so a slow-but-alive site pushes its own timeout
    up instead of getting declared dead. *)

type t

(** The default retransmission-timeout floor (µs).  Other timers that
    must stay {e under} the RTO (the transport's delayed ack) are
    derived from this constant rather than hardcoded next to it. *)
val default_min_timeout_us : int

(** [create ~initial_us ()] seeds the estimator with a guess.
    [min_timeout_us] floors {!timeout_us} (default
    {!default_min_timeout_us}). *)
val create : ?initial_us:int -> ?min_timeout_us:int -> unit -> t

(** [observe t rtt_us] folds in a measurement. *)
val observe : t -> int -> unit

(** [srtt_us t] is the smoothed estimate. *)
val srtt_us : t -> int

(** [rttvar_us t] is the smoothed mean deviation. *)
val rttvar_us : t -> int

(** [timeout_us t] is [srtt + 4*rttvar], floored at the estimator's
    [min_timeout_us] — the per-probe suspicion/retransmission
    timeout. *)
val timeout_us : t -> int

(** [backoff t] doubles the timeout transiently (exponential backoff for
    retransmissions); [observe] resets the backoff. *)
val backoff : t -> unit

val samples : t -> int
