type t = {
  mutable srtt : float;
  mutable rttvar : float;
  mutable shift : int; (* exponential backoff exponent *)
  mutable n : int;
  min_timeout : float; (* per-estimator RTO floor, µs *)
}

let default_min_timeout_us = 10_000
let max_timeout_us = 10_000_000.0

let create ?(initial_us = 50_000) ?(min_timeout_us = default_min_timeout_us) () =
  {
    srtt = float_of_int initial_us;
    rttvar = float_of_int initial_us /. 2.0;
    shift = 0;
    n = 0;
    min_timeout = float_of_int min_timeout_us;
  }

let observe t rtt_us =
  let rtt = float_of_int rtt_us in
  if t.n = 0 then begin
    t.srtt <- rtt;
    t.rttvar <- rtt /. 2.0
  end
  else begin
    (* RFC 6298 constants: alpha = 1/8, beta = 1/4. *)
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. rtt));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. rtt)
  end;
  t.shift <- 0;
  t.n <- t.n + 1

let srtt_us t = int_of_float t.srtt
let rttvar_us t = int_of_float t.rttvar

let timeout_us t =
  let base = t.srtt +. (4.0 *. t.rttvar) in
  let scaled = base *. float_of_int (1 lsl t.shift) in
  int_of_float (Float.min max_timeout_us (Float.max t.min_timeout scaled))

let backoff t = if t.shift < 10 then t.shift <- t.shift + 1

let samples t = t.n
