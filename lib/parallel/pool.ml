let available_cores () = Domain.recommended_domain_count ()

(* Self-balancing pickup: each worker fetch-and-adds the shared cursor
   until the input is exhausted, so a slow job (a seed that hits a long
   nemesis schedule) doesn't idle the other domains the way a static
   block split would. *)
let map ~jobs f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (results.(i) <-
            (match f arr.(i) with
            | v -> Some (Ok v)
            | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was claimed by some worker *))
      results
  end

let run ~jobs thunks = map ~jobs (fun f -> f ()) thunks
