(** Domain-parallel work pool.

    Runs independent jobs — whole simulations, bench points, oracle
    soaks — across OCaml 5 domains, with no dependency beyond the
    stdlib: plain [Domain.spawn], an [Atomic] work counter for
    self-balancing pickup, results in a per-slot array.

    The unit of parallelism is one {e world}: every job builds its own
    engine/backend, runtimes and registries, and all formerly-global
    state in the stack is domain-local ([Vsync_util.Dls]), so jobs
    share nothing.  Per-seed determinism is therefore preserved
    bit-for-bit: a simulation run on a pool domain produces exactly the
    digest it produces sequentially (the digest-equality test in the
    suite and the parallel bench both pin this).

    [jobs <= 1] degrades to a plain sequential map on the calling
    domain — the determinism control the CI keeps alongside the
    parallel sweep. *)

(** [map ~jobs f arr] applies [f] to every element, running up to
    [jobs] domains (the calling domain works too; [jobs - 1] are
    spawned).  Results keep their input positions.  If any job raised,
    the lowest-index exception is re-raised (with its backtrace) after
    all domains have joined. *)
val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** [run ~jobs thunks] is {!map} over an array of thunks. *)
val run : jobs:int -> (unit -> 'a) array -> 'a array

(** [Domain.recommended_domain_count ()], the sensible default for
    [--jobs 0]-style "pick for me" flags. *)
val available_cores : unit -> int
