(** Unified metrics registry.

    One namespace for three kinds of instruments, so consumers (oracle
    hygiene checks, bench JSON artifacts) sample state by name instead
    of knowing which module owns which accessor:

    - {e counters}: monotonically increasing ints, owned by the
      registry ([counter] get-or-creates);
    - {e gauges}: callback closures sampling live state at read time
      (in-flight windows, pending-table sizes);
    - {e histograms}: count/sum/min/max summaries of observed values.

    Registries are cheap; the runtime makes one per site. *)

type t
type counter
type histogram

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histo_v of { count : int; sum : int; min : int; max : int }

val create : unit -> t

(** [counter t name] returns the counter registered under [name],
    creating it on first use.
    @raise Invalid_argument if [name] names a non-counter. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** [gauge t name f] registers [f] to be sampled on every read.
    @raise Invalid_argument on a duplicate name. *)
val gauge : t -> string -> (unit -> int) -> unit

(** [histogram t name] — get-or-create, like [counter]. *)
val histogram : t -> string -> histogram

val observe : histogram -> int -> unit

(** [read t name] samples one metric. *)
val read : t -> string -> value option

(** [read_int t name] flattens: counter/gauge value, histogram sample
    count. *)
val read_int : t -> string -> int option

(** All metrics in registration order, sampled now. *)
val snapshot : t -> (string * value) list

val names : t -> string list

(** [merge_snapshots snaps] folds several {!snapshot}s into one:
    counters and gauges sum, histograms combine their count/sum/min/max.
    Names keep first-appearance order.  How the parallel harness merges
    per-domain registries at join.
    @raise Invalid_argument if a name appears with different kinds. *)
val merge_snapshots : (string * value) list list -> (string * value) list
