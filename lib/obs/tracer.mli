(** Event tracer: a bounded ring of recent {!Event.record}s plus
    optional push sinks.

    The tracer is allocation-free when disabled {e provided callers
    guard}: construct the event only after [wants t cls] (or at least
    [enabled t]) says someone is listening —

    {[
      if Tracer.wants tr Event.Proto then
        Tracer.emit tr (Event.Deliver { site; group; usite; useq })
    ]}

    [emit] re-checks the gate, so an unguarded call is safe, merely not
    free.

    Consumers that must see {e every} event (the oracle, JSONL export)
    attach a sink with [add_sink]: sinks run synchronously at emission
    and are immune to ring eviction.  The ring is for after-the-fact
    inspection (tests, [vsim --trace] dumps, timelines of recent
    traffic).

    The tracer deliberately knows nothing about the engine: it takes a
    [now] closure, so it can sit below [lib/sim] in the library
    stack. *)

type sink = Event.record -> unit
type t

(** [create ~now ()] makes a disabled tracer reading timestamps from
    [now].  [capacity] bounds the ring (default 200_000 records). *)
val create : ?capacity:int -> now:(unit -> int) -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Class bitmask (or of {!Event.cls_bit}).  The default mask admits
    everything except [Engine] events, which are voluminous. *)
val mask : t -> int

val set_mask : t -> int -> unit

(** [set_classes t cs] replaces the mask with exactly the classes
    [cs]. *)
val set_classes : t -> Event.cls list -> unit

(** [wants t cls] — is the tracer enabled and listening to [cls]?  The
    emission guard: check before allocating an event. *)
val wants : t -> Event.cls -> bool

(** [emit t ev] timestamps [ev], pushes it on the ring and feeds every
    sink.  No-op (and allocation-free) when [wants] is false for the
    event's class. *)
val emit : t -> Event.t -> unit

(** [add_sink t s] registers [s] to run on every subsequent emission,
    after existing sinks. *)
val add_sink : t -> sink -> unit

(** Retained records, oldest first. *)
val records : t -> Event.record list

val iter : t -> (Event.record -> unit) -> unit

(** Total events emitted (including any since evicted from the ring). *)
val emitted : t -> int

(** Records lost to ring eviction. *)
val evicted : t -> int

val clear : t -> unit
