(** Per-uid causal timeline reconstruction: "explain this message's
    delivery".

    A timeline is the sub-stream of events about one broadcast uid —
    origination, the frames that carried it, ABCAST votes/commit,
    per-site deliveries, per-site stabilizations — in emission order.
    Sources: the tracer ring ({!Tracer.records}), a sink accumulation,
    or a re-loaded JSONL trace ({!Jsonl.load}). *)

type t = { usite : int; useq : int; events : Event.record list }

val of_uid : Event.record list -> usite:int -> useq:int -> t

(** Did we see the [Originate] event? *)
val originated : t -> bool

(** Sites that delivered the message (sorted, deduped). *)
val delivery_sites : t -> int list

(** Sites that stabilized the message (sorted, deduped). *)
val stabilized_sites : t -> int list

(** Origination, at least one delivery and at least one stabilization
    are all present: the timeline explains the full arc. *)
val complete : t -> bool

(** All uids with a [Deliver] event in the stream, in first-delivery
    order, each once. *)
val delivered_uids : Event.record list -> (int * int) list

val pp : Format.formatter -> t -> unit
