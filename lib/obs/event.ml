(* Typed observability events.

   One variant per observable decision, spanning every layer of the
   stack: the discrete-event engine, the network (incl. nemesis fault
   injections), the transport endpoint, and the vsync protocol runtime.
   Field types are deliberately primitive (ints and short strings): this
   module sits below [lib/msg] and [lib/vsync], so protocol identifiers
   arrive already flattened — a uid is its [(usite, useq)] pair, a group
   its integer id, an address its site number. *)

type cls = Engine | Net | Transport | Proto | Partition | Note

let cls_bit = function
  | Engine -> 1
  | Net -> 2
  | Transport -> 4
  | Proto -> 8
  | Note -> 16
  | Partition -> 32

let cls_name = function
  | Engine -> "engine"
  | Net -> "net"
  | Transport -> "transport"
  | Proto -> "proto"
  | Partition -> "partition"
  | Note -> "note"

let cls_of_name = function
  | "engine" -> Some Engine
  | "net" -> Some Net
  | "transport" -> Some Transport
  | "proto" -> Some Proto
  | "partition" -> Some Partition
  | "note" -> Some Note
  | _ -> None

let all_classes = [ Engine; Net; Transport; Proto; Partition; Note ]

type t =
  (* engine *)
  | Sched of { delay : int }
  | Fire
  (* net / nemesis *)
  | Net_drop of { src : int; dst : int; reason : string }
  | Net_dup of { src : int; dst : int }
  | Net_delay of { src : int; dst : int; extra_us : int }
  | Nemesis of { action : string }
  (* transport *)
  | Packet_send of { site : int; dst : int; nframes : int; bytes : int }
  | Packet_recv of { site : int; src : int; nframes : int }
  | Retransmit of { site : int; dst : int; nframes : int }
  | Rto of { site : int; dst : int; timeout_us : int }
  | Ack_send of { site : int; dst : int; upto : int }
  | Channel_fail of { site : int; peer : int; dir : string; reason : string }
  (* vsync protocol *)
  | Originate of { site : int; proto : string; group : int; usite : int; useq : int }
  | Frame_tx of { site : int; dst : int; kind : string; usite : int; useq : int }
  | Frame_rx of { site : int; src : int; kind : string; usite : int; useq : int }
  | Ab_vote of { site : int; voter : int; usite : int; useq : int; prio : int }
  | Ab_commit of { site : int; usite : int; useq : int; prio : int }
  | Deliver of { site : int; group : int; usite : int; useq : int }
  | Stabilize of { site : int; usite : int; useq : int }
  | Wedge of { site : int; group : int; view_id : int }
  | Flush of { site : int; group : int; view_id : int; attempt : int }
  | View_install of { site : int; group : int; view_id : int; nsites : int; mhash : int }
  | Stable_advance of { site : int; origin : int; upto : int }
  | Gc_reclaim of { site : int; n : int }
  (* partition / primary-partition membership *)
  | Partition_wedge of { site : int; group : int; view_id : int; survivors : int; needed : int }
  | Partition_probe of { site : int; group : int; view_id : int }
  | Partition_evict of { site : int; group : int; view_id : int; new_view_id : int }
  | Partition_exit of { site : int; group : int; view_id : int }
  (* free-form *)
  | Error_event of { site : int; what : string; detail : string }
  | Note_event of { site : int; cat : string; text : string }

let cls_of = function
  | Sched _ | Fire -> Engine
  | Net_drop _ | Net_dup _ | Net_delay _ | Nemesis _ -> Net
  | Packet_send _ | Packet_recv _ | Retransmit _ | Rto _ | Ack_send _ | Channel_fail _ ->
    Transport
  | Originate _ | Frame_tx _ | Frame_rx _ | Ab_vote _ | Ab_commit _ | Deliver _
  | Stabilize _ | Wedge _ | Flush _ | View_install _ | Stable_advance _ | Gc_reclaim _ ->
    Proto
  | Partition_wedge _ | Partition_probe _ | Partition_evict _ | Partition_exit _ -> Partition
  | Error_event _ | Note_event _ -> Note

(* The uid an event is "about", for per-message timeline reconstruction. *)
let uid_of = function
  | Originate { usite; useq; _ }
  | Frame_tx { usite; useq; _ }
  | Frame_rx { usite; useq; _ }
  | Ab_vote { usite; useq; _ }
  | Ab_commit { usite; useq; _ }
  | Deliver { usite; useq; _ }
  | Stabilize { usite; useq; _ } ->
    Some (usite, useq)
  | _ -> None

(* The site at which the event was observed, when one is meaningful. *)
let site_of = function
  | Sched _ | Fire | Nemesis _ -> None
  | Net_drop { src; _ } | Net_dup { src; _ } | Net_delay { src; _ } -> Some src
  | Packet_send { site; _ }
  | Packet_recv { site; _ }
  | Retransmit { site; _ }
  | Rto { site; _ }
  | Ack_send { site; _ }
  | Channel_fail { site; _ }
  | Originate { site; _ }
  | Frame_tx { site; _ }
  | Frame_rx { site; _ }
  | Ab_vote { site; _ }
  | Ab_commit { site; _ }
  | Deliver { site; _ }
  | Stabilize { site; _ }
  | Wedge { site; _ }
  | Flush { site; _ }
  | View_install { site; _ }
  | Stable_advance { site; _ }
  | Gc_reclaim { site; _ }
  | Partition_wedge { site; _ }
  | Partition_probe { site; _ }
  | Partition_evict { site; _ }
  | Partition_exit { site; _ }
  | Error_event { site; _ }
  | Note_event { site; _ } ->
    Some site

(* --- flat field view, shared by the JSONL codec and pretty printer --- *)

type field = I of int | S of string

let fields = function
  | Sched { delay } -> ("sched", [ ("delay", I delay) ])
  | Fire -> ("fire", [])
  | Net_drop { src; dst; reason } ->
    ("net_drop", [ ("src", I src); ("dst", I dst); ("reason", S reason) ])
  | Net_dup { src; dst } -> ("net_dup", [ ("src", I src); ("dst", I dst) ])
  | Net_delay { src; dst; extra_us } ->
    ("net_delay", [ ("src", I src); ("dst", I dst); ("extra_us", I extra_us) ])
  | Nemesis { action } -> ("nemesis", [ ("action", S action) ])
  | Packet_send { site; dst; nframes; bytes } ->
    ("packet_send", [ ("site", I site); ("dst", I dst); ("nframes", I nframes); ("bytes", I bytes) ])
  | Packet_recv { site; src; nframes } ->
    ("packet_recv", [ ("site", I site); ("src", I src); ("nframes", I nframes) ])
  | Retransmit { site; dst; nframes } ->
    ("retransmit", [ ("site", I site); ("dst", I dst); ("nframes", I nframes) ])
  | Rto { site; dst; timeout_us } ->
    ("rto", [ ("site", I site); ("dst", I dst); ("timeout_us", I timeout_us) ])
  | Ack_send { site; dst; upto } ->
    ("ack_send", [ ("site", I site); ("dst", I dst); ("upto", I upto) ])
  | Channel_fail { site; peer; dir; reason } ->
    ("channel_fail", [ ("site", I site); ("peer", I peer); ("dir", S dir); ("reason", S reason) ])
  | Originate { site; proto; group; usite; useq } ->
    ( "originate",
      [ ("site", I site); ("proto", S proto); ("group", I group); ("usite", I usite); ("useq", I useq) ] )
  | Frame_tx { site; dst; kind; usite; useq } ->
    ( "frame_tx",
      [ ("site", I site); ("dst", I dst); ("kind", S kind); ("usite", I usite); ("useq", I useq) ] )
  | Frame_rx { site; src; kind; usite; useq } ->
    ( "frame_rx",
      [ ("site", I site); ("src", I src); ("kind", S kind); ("usite", I usite); ("useq", I useq) ] )
  | Ab_vote { site; voter; usite; useq; prio } ->
    ( "ab_vote",
      [ ("site", I site); ("voter", I voter); ("usite", I usite); ("useq", I useq); ("prio", I prio) ] )
  | Ab_commit { site; usite; useq; prio } ->
    ("ab_commit", [ ("site", I site); ("usite", I usite); ("useq", I useq); ("prio", I prio) ])
  | Deliver { site; group; usite; useq } ->
    ("deliver", [ ("site", I site); ("group", I group); ("usite", I usite); ("useq", I useq) ])
  | Stabilize { site; usite; useq } ->
    ("stabilize", [ ("site", I site); ("usite", I usite); ("useq", I useq) ])
  | Wedge { site; group; view_id } ->
    ("wedge", [ ("site", I site); ("group", I group); ("view_id", I view_id) ])
  | Flush { site; group; view_id; attempt } ->
    ("flush", [ ("site", I site); ("group", I group); ("view_id", I view_id); ("attempt", I attempt) ])
  | View_install { site; group; view_id; nsites; mhash } ->
    ( "view_install",
      [
        ("site", I site); ("group", I group); ("view_id", I view_id); ("nsites", I nsites);
        ("mhash", I mhash);
      ] )
  | Partition_wedge { site; group; view_id; survivors; needed } ->
    ( "partition_wedge",
      [
        ("site", I site); ("group", I group); ("view_id", I view_id);
        ("survivors", I survivors); ("needed", I needed);
      ] )
  | Partition_probe { site; group; view_id } ->
    ("partition_probe", [ ("site", I site); ("group", I group); ("view_id", I view_id) ])
  | Partition_evict { site; group; view_id; new_view_id } ->
    ( "partition_evict",
      [
        ("site", I site); ("group", I group); ("view_id", I view_id);
        ("new_view_id", I new_view_id);
      ] )
  | Partition_exit { site; group; view_id } ->
    ("partition_exit", [ ("site", I site); ("group", I group); ("view_id", I view_id) ])
  | Stable_advance { site; origin; upto } ->
    ("stable_advance", [ ("site", I site); ("origin", I origin); ("upto", I upto) ])
  | Gc_reclaim { site; n } -> ("gc_reclaim", [ ("site", I site); ("n", I n) ])
  | Error_event { site; what; detail } ->
    ("error", [ ("site", I site); ("what", S what); ("detail", S detail) ])
  | Note_event { site; cat; text } ->
    ("note", [ ("site", I site); ("cat", S cat); ("text", S text) ])

(* Inverse of [fields]; total over well-formed input, [None] otherwise. *)
let of_fields tag fs =
  let i k = match List.assoc_opt k fs with Some (I v) -> Some v | _ -> None in
  let s k = match List.assoc_opt k fs with Some (S v) -> Some v | _ -> None in
  let ( let* ) = Option.bind in
  match tag with
  | "sched" ->
    let* delay = i "delay" in
    Some (Sched { delay })
  | "fire" -> Some Fire
  | "net_drop" ->
    let* src = i "src" in
    let* dst = i "dst" in
    let* reason = s "reason" in
    Some (Net_drop { src; dst; reason })
  | "net_dup" ->
    let* src = i "src" in
    let* dst = i "dst" in
    Some (Net_dup { src; dst })
  | "net_delay" ->
    let* src = i "src" in
    let* dst = i "dst" in
    let* extra_us = i "extra_us" in
    Some (Net_delay { src; dst; extra_us })
  | "nemesis" ->
    let* action = s "action" in
    Some (Nemesis { action })
  | "packet_send" ->
    let* site = i "site" in
    let* dst = i "dst" in
    let* nframes = i "nframes" in
    let* bytes = i "bytes" in
    Some (Packet_send { site; dst; nframes; bytes })
  | "packet_recv" ->
    let* site = i "site" in
    let* src = i "src" in
    let* nframes = i "nframes" in
    Some (Packet_recv { site; src; nframes })
  | "retransmit" ->
    let* site = i "site" in
    let* dst = i "dst" in
    let* nframes = i "nframes" in
    Some (Retransmit { site; dst; nframes })
  | "rto" ->
    let* site = i "site" in
    let* dst = i "dst" in
    let* timeout_us = i "timeout_us" in
    Some (Rto { site; dst; timeout_us })
  | "ack_send" ->
    let* site = i "site" in
    let* dst = i "dst" in
    let* upto = i "upto" in
    Some (Ack_send { site; dst; upto })
  | "channel_fail" ->
    let* site = i "site" in
    let* peer = i "peer" in
    let* dir = s "dir" in
    let* reason = s "reason" in
    Some (Channel_fail { site; peer; dir; reason })
  | "originate" ->
    let* site = i "site" in
    let* proto = s "proto" in
    let* group = i "group" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    Some (Originate { site; proto; group; usite; useq })
  | "frame_tx" ->
    let* site = i "site" in
    let* dst = i "dst" in
    let* kind = s "kind" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    Some (Frame_tx { site; dst; kind; usite; useq })
  | "frame_rx" ->
    let* site = i "site" in
    let* src = i "src" in
    let* kind = s "kind" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    Some (Frame_rx { site; src; kind; usite; useq })
  | "ab_vote" ->
    let* site = i "site" in
    let* voter = i "voter" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    let* prio = i "prio" in
    Some (Ab_vote { site; voter; usite; useq; prio })
  | "ab_commit" ->
    let* site = i "site" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    let* prio = i "prio" in
    Some (Ab_commit { site; usite; useq; prio })
  | "deliver" ->
    let* site = i "site" in
    let* group = i "group" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    Some (Deliver { site; group; usite; useq })
  | "stabilize" ->
    let* site = i "site" in
    let* usite = i "usite" in
    let* useq = i "useq" in
    Some (Stabilize { site; usite; useq })
  | "wedge" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    Some (Wedge { site; group; view_id })
  | "flush" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    let* attempt = i "attempt" in
    Some (Flush { site; group; view_id; attempt })
  | "view_install" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    let* nsites = i "nsites" in
    let* mhash = i "mhash" in
    Some (View_install { site; group; view_id; nsites; mhash })
  | "partition_wedge" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    let* survivors = i "survivors" in
    let* needed = i "needed" in
    Some (Partition_wedge { site; group; view_id; survivors; needed })
  | "partition_probe" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    Some (Partition_probe { site; group; view_id })
  | "partition_evict" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    let* new_view_id = i "new_view_id" in
    Some (Partition_evict { site; group; view_id; new_view_id })
  | "partition_exit" ->
    let* site = i "site" in
    let* group = i "group" in
    let* view_id = i "view_id" in
    Some (Partition_exit { site; group; view_id })
  | "stable_advance" ->
    let* site = i "site" in
    let* origin = i "origin" in
    let* upto = i "upto" in
    Some (Stable_advance { site; origin; upto })
  | "gc_reclaim" ->
    let* site = i "site" in
    let* n = i "n" in
    Some (Gc_reclaim { site; n })
  | "error" ->
    let* site = i "site" in
    let* what = s "what" in
    let* detail = s "detail" in
    Some (Error_event { site; what; detail })
  | "note" ->
    let* site = i "site" in
    let* cat = s "cat" in
    let* text = s "text" in
    Some (Note_event { site; cat; text })
  | _ -> None

(* --- timestamped record ------------------------------------------- *)

type record = { at : int; ev : t }

let pp ppf ev =
  let tag, fs = fields ev in
  Format.fprintf ppf "%s" tag;
  List.iter
    (fun (k, v) ->
      match v with
      | I n -> Format.fprintf ppf " %s=%d" k n
      | S str -> Format.fprintf ppf " %s=%s" k str)
    fs

let pp_record ppf r = Format.fprintf ppf "[%8d us] %a" r.at pp r.ev
