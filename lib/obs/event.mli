(** Typed observability events.

    Every layer of the stack reports its decisions through these
    variants instead of formatted strings: the engine (schedule/fire),
    the network and nemesis (drop/dup/delay, fault-plan ops), the
    transport endpoint (packets, retransmissions, RTO, acks, channel
    teardown) and the vsync runtime (origination, per-frame traffic,
    ABCAST votes and commits, delivery, stabilization, view changes,
    GC).

    Fields are primitive ints and short strings: this module sits below
    the message and protocol layers, so identifiers arrive flattened —
    a uid is its [(usite, useq)] pair, a group its integer id. *)

(** Event class, for bitmask filtering on the tracer.  [Engine] events
    are voluminous (every scheduled callback) and off by default.
    [Partition] carries the primary-partition membership machinery:
    minority wedges, heal probes, evictions and recoveries. *)
type cls = Engine | Net | Transport | Proto | Partition | Note

val cls_bit : cls -> int
val cls_name : cls -> string
val cls_of_name : string -> cls option
val all_classes : cls list

type t =
  (* engine *)
  | Sched of { delay : int }
  | Fire
  (* net / nemesis *)
  | Net_drop of { src : int; dst : int; reason : string }
  | Net_dup of { src : int; dst : int }
  | Net_delay of { src : int; dst : int; extra_us : int }
  | Nemesis of { action : string }
  (* transport *)
  | Packet_send of { site : int; dst : int; nframes : int; bytes : int }
  | Packet_recv of { site : int; src : int; nframes : int }
  | Retransmit of { site : int; dst : int; nframes : int }
  | Rto of { site : int; dst : int; timeout_us : int }
  | Ack_send of { site : int; dst : int; upto : int }
  | Channel_fail of { site : int; peer : int; dir : string; reason : string }
  (* vsync protocol *)
  | Originate of { site : int; proto : string; group : int; usite : int; useq : int }
  | Frame_tx of { site : int; dst : int; kind : string; usite : int; useq : int }
  | Frame_rx of { site : int; src : int; kind : string; usite : int; useq : int }
  | Ab_vote of { site : int; voter : int; usite : int; useq : int; prio : int }
  | Ab_commit of { site : int; usite : int; useq : int; prio : int }
  | Deliver of { site : int; group : int; usite : int; useq : int }
  | Stabilize of { site : int; usite : int; useq : int }
  | Wedge of { site : int; group : int; view_id : int }
  | Flush of { site : int; group : int; view_id : int; attempt : int }
  | View_install of { site : int; group : int; view_id : int; nsites : int; mhash : int }
      (** [mhash] fingerprints the installed membership so an external
          checker can compare installs of the same view id across
          sites without carrying the member list. *)
  | Stable_advance of { site : int; origin : int; upto : int }
  | Gc_reclaim of { site : int; n : int }
  (* partition / primary-partition membership *)
  | Partition_wedge of { site : int; group : int; view_id : int; survivors : int; needed : int }
      (** a view-change attempt found its component below quorum:
          [survivors] members retained of a base needing [needed]. *)
  | Partition_probe of { site : int; group : int; view_id : int }
  | Partition_evict of { site : int; group : int; view_id : int; new_view_id : int }
      (** a minority site learned the primary moved to [new_view_id]
          without it; it discards group state and may rejoin fresh. *)
  | Partition_exit of { site : int; group : int; view_id : int }
      (** false alarm: suspicion cleared and the component recovered
          without losing primacy. *)
  (* free-form *)
  | Error_event of { site : int; what : string; detail : string }
  | Note_event of { site : int; cat : string; text : string }

val cls_of : t -> cls

(** The uid an event is "about" ([(usite, useq)]), when it carries one;
    the key for per-message timeline reconstruction. *)
val uid_of : t -> (int * int) option

(** The site at which the event was observed, when one is meaningful. *)
val site_of : t -> int option

(** Flat field view, shared by the JSONL codec and pretty printer. *)
type field = I of int | S of string

(** [fields ev] is [(tag, named fields)]. *)
val fields : t -> string * (string * field) list

(** Inverse of [fields]: [None] on an unknown tag or missing field. *)
val of_fields : string -> (string * field) list -> t option

(** An event stamped with the virtual time at which it was emitted. *)
type record = { at : int; ev : t }

val pp : Format.formatter -> t -> unit
val pp_record : Format.formatter -> record -> unit
