(** JSONL codec for {!Event.record}s.

    One flat JSON object per line: [{"at":N,"ev":TAG, field:value,
    ...}] with int and string values only — the shape emitted by
    {!Event.fields}.  Both directions are hand-rolled (the repo takes
    no external JSON dependency) and the unit tests pin the
    round-trip. *)

(** [of_record r] is the one-line JSON encoding (no trailing
    newline). *)
val of_record : Event.record -> string

(** [parse line] decodes one line; [None] on malformed input or an
    unknown event tag. *)
val parse : string -> Event.record option

(** [load path] reads a JSONL file, skipping unparseable lines. *)
val load : string -> Event.record list

(** [sink_to_channel oc] is a {!Tracer.sink} writing each event as one
    line on [oc].  The caller owns the channel (and should close it
    when the run ends). *)
val sink_to_channel : out_channel -> Event.record -> unit
