module Ring = Vsync_util.Ring

type sink = Event.record -> unit

type t = {
  now : unit -> int;
  mutable on : bool;
  mutable mask : int;
  ring : Event.record Ring.t;
  mutable sinks : sink list;
  mutable n_emitted : int;
}

(* Engine events (every scheduled callback) are off even when tracing is
   on: they multiply the stream several-fold and matter only when
   debugging the scheduler itself. *)
let default_mask =
  List.fold_left
    (fun m c -> if c = Event.Engine then m else m lor Event.cls_bit c)
    0 Event.all_classes

let create ?(capacity = 200_000) ~now () =
  { now; on = false; mask = default_mask; ring = Ring.create ~capacity; sinks = []; n_emitted = 0 }

let enabled t = t.on
let set_enabled t b = t.on <- b
let mask t = t.mask
let set_mask t m = t.mask <- m

let set_classes t classes =
  t.mask <- List.fold_left (fun m c -> m lor Event.cls_bit c) 0 classes

let wants t cls = t.on && t.mask land Event.cls_bit cls <> 0

let emit t ev =
  if wants t (Event.cls_of ev) then begin
    let r = { Event.at = t.now (); ev } in
    t.n_emitted <- t.n_emitted + 1;
    Ring.push t.ring r;
    match t.sinks with
    | [] -> ()
    | sinks -> List.iter (fun s -> s r) sinks
  end

let add_sink t s = t.sinks <- t.sinks @ [ s ]
let records t = Ring.to_list t.ring
let iter t f = Ring.iter t.ring f
let emitted t = t.n_emitted
let evicted t = Ring.evicted t.ring
let clear t = Ring.clear t.ring
