(* Per-uid causal timeline: "explain this message's delivery".

   Filters an event stream down to the records about one broadcast —
   its origination, the frames that carried it, the ABCAST votes and
   commit that ordered it, each site's delivery, and each site's
   stabilization — in emission order.  Works over any record list: the
   tracer's ring, a sink's accumulation, or a JSONL file re-loaded with
   [Jsonl.load]. *)

type t = { usite : int; useq : int; events : Event.record list }

let of_uid records ~usite ~useq =
  let events =
    List.filter
      (fun (r : Event.record) ->
        match Event.uid_of r.ev with Some (us, uq) -> us = usite && uq = useq | None -> false)
      records
  in
  { usite; useq; events }

let has p t = List.exists (fun (r : Event.record) -> p r.ev) t.events

let originated t = has (function Event.Originate _ -> true | _ -> false) t

let delivery_sites t =
  List.filter_map
    (fun (r : Event.record) -> match r.ev with Event.Deliver { site; _ } -> Some site | _ -> None)
    t.events
  |> List.sort_uniq compare

let stabilized_sites t =
  List.filter_map
    (fun (r : Event.record) -> match r.ev with Event.Stabilize { site; _ } -> Some site | _ -> None)
    t.events
  |> List.sort_uniq compare

(* A timeline "explains" a delivery when the whole arc is present:
   origination, at least one delivery, and at least one stabilization
   (the origin learning its broadcast is safe everywhere). *)
let complete t = originated t && delivery_sites t <> [] && stabilized_sites t <> []

(* All uids that were delivered somewhere in [records], each once. *)
let delivered_uids records =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun (r : Event.record) ->
      match r.ev with
      | Event.Deliver { usite; useq; _ } ->
        if not (Hashtbl.mem seen (usite, useq)) then begin
          Hashtbl.replace seen (usite, useq) ();
          out := (usite, useq) :: !out
        end
      | _ -> ())
    records;
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "uid (%d,%d): %d events@." t.usite t.useq (List.length t.events);
  List.iter (fun r -> Format.fprintf ppf "  %a@." Event.pp_record r) t.events
