(* Unified metrics registry: counters, callback gauges and simple
   histograms under one namespace, so consumers (the oracle's hygiene
   checks, bench JSON artifacts) sample state by name instead of
   knowing which module owns which accessor. *)

type counter = { mutable c : int }
type histogram = { mutable n : int; mutable sum : int; mutable hmin : int; mutable hmax : int }
type source = Counter_src of counter | Gauge_src of (unit -> int) | Histo_src of histogram

type t = {
  tbl : (string, source) Hashtbl.t;
  mutable names : string list; (* reverse registration order *)
}

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histo_v of { count : int; sum : int; min : int; max : int }

let create () = { tbl = Hashtbl.create 32; names = [] }

let register t name src =
  if Hashtbl.mem t.tbl name then invalid_arg ("Metrics: duplicate metric " ^ name);
  Hashtbl.replace t.tbl name src;
  t.names <- name :: t.names

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter_src c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
    let c = { c = 0 } in
    register t name (Counter_src c);
    c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c
let gauge t name f = register t name (Gauge_src f)

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histo_src h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
    let h = { n = 0; sum = 0; hmin = max_int; hmax = min_int } in
    register t name (Histo_src h);
    h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

let read_source = function
  | Counter_src c -> Counter_v c.c
  | Gauge_src f -> Gauge_v (f ())
  | Histo_src h ->
    Histo_v
      { count = h.n; sum = h.sum; min = (if h.n = 0 then 0 else h.hmin); max = (if h.n = 0 then 0 else h.hmax) }

let read t name = Option.map read_source (Hashtbl.find_opt t.tbl name)

(* Counter and gauge values flatten to their int; histograms to their
   sample count.  Hygiene checks comparing "is this state empty" want
   exactly this. *)
let read_int t name =
  match read t name with
  | Some (Counter_v v) | Some (Gauge_v v) -> Some v
  | Some (Histo_v { count; _ }) -> Some count
  | None -> None

let snapshot t =
  List.rev_map (fun name -> (name, read_source (Hashtbl.find t.tbl name))) t.names

let names t = List.rev t.names

(* Cross-registry aggregation, for the parallel harness: per-domain
   worlds each carry their own registries, and the join merges their
   snapshots into one fleet-wide view.  Counters and gauges sum
   (gauges here are already-sampled numbers, not live closures);
   histograms combine exactly. *)
let merge_snapshots snaps =
  let order = ref [] in
  let acc : (string, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt acc name with
         | None ->
           order := name :: !order;
           Hashtbl.replace acc name v
         | Some prev ->
           let merged =
             match (prev, v) with
             | Counter_v a, Counter_v b -> Counter_v (a + b)
             | Gauge_v a, Gauge_v b -> Gauge_v (a + b)
             | Histo_v a, Histo_v b ->
               Histo_v
                 {
                   count = a.count + b.count;
                   sum = a.sum + b.sum;
                   min = (if b.count = 0 then a.min else if a.count = 0 then b.min else min a.min b.min);
                   max = (if b.count = 0 then a.max else if a.count = 0 then b.max else max a.max b.max);
                 }
             | _ ->
               invalid_arg
                 (Printf.sprintf "Metrics.merge_snapshots: %S has mismatched kinds" name)
           in
           Hashtbl.replace acc name merged))
    snaps;
  List.rev_map (fun name -> (name, Hashtbl.find acc name)) !order
