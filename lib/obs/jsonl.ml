(* JSONL codec for event records: one flat JSON object per line,
   [{"at":N,"ev":TAG, field:value, ...}].  Hand-rolled on both sides —
   the repo takes no external JSON dependency — and exactly inverse to
   [Event.fields]/[Event.of_fields], which the round-trip test pins. *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_field buf k v =
  Buffer.add_string buf ",\"";
  escape buf k;
  Buffer.add_string buf "\":";
  match v with
  | Event.I n -> Buffer.add_string buf (string_of_int n)
  | Event.S s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'

let to_buffer buf (r : Event.record) =
  let tag, fields = Event.fields r.ev in
  Buffer.add_string buf "{\"at\":";
  Buffer.add_string buf (string_of_int r.at);
  Buffer.add_string buf ",\"ev\":\"";
  escape buf tag;
  Buffer.add_char buf '"';
  List.iter (fun (k, v) -> add_field buf k v) fields;
  Buffer.add_char buf '}'

let of_record r =
  let buf = Buffer.create 128 in
  to_buffer buf r;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

(* Minimal parser for the flat objects this module itself writes:
   string keys, int or string values.  Whitespace-tolerant; anything
   else is [None]. *)

exception Bad

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise Bad in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad;
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          advance ();
          if !pos + 3 >= n then raise Bad;
          let code = int_of_string ("0x" ^ String.sub line !pos 4) in
          pos := !pos + 3;
          if code > 0xff then raise Bad;
          Buffer.add_char buf (Char.chr code)
        | _ -> raise Bad);
        advance ();
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && line.[!pos] = '-' then advance ();
    while !pos < n && match line.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then raise Bad;
    int_of_string (String.sub line start (!pos - start))
  in
  let parse_value () =
    skip_ws ();
    match peek () with '"' -> Event.S (parse_string ()) | _ -> Event.I (parse_int ())
  in
  try
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then raise Bad;
    Some (List.rev !fields)
  with Bad | Invalid_argument _ | Failure _ -> None

let parse line =
  match parse_fields line with
  | None -> None
  | Some fields -> (
    match (List.assoc_opt "at" fields, List.assoc_opt "ev" fields) with
    | Some (Event.I at), Some (Event.S tag) -> (
      let rest = List.filter (fun (k, _) -> k <> "at" && k <> "ev") fields in
      match Event.of_fields tag rest with
      | Some ev -> Some { Event.at; ev }
      | None -> None)
    | _ -> None)

let load path =
  let ic = open_in path in
  let records = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.length line > 0 then
         match parse line with Some r -> records := r :: !records | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !records

(* A tracer sink writing one line per event.  The caller owns the
   channel's lifetime and is expected to close (hence flush) it when
   the run ends. *)
let sink_to_channel oc : Event.record -> unit =
  let buf = Buffer.create 256 in
  fun r ->
    Buffer.clear buf;
    to_buffer buf r;
    Buffer.add_char buf '\n';
    Buffer.output_buffer oc buf
