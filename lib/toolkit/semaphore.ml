module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types

type sem = {
  mutable count : int;
  mutable holders : Addr.proc list; (* one entry per held unit *)
  mutable queue : (Addr.proc * Message.t) list; (* FIFO, oldest first *)
}

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  sems : (string, sem) Hashtbl.t;
}

let f_op = "$sem.op"
let f_name = "$sem.name"
let f_count = "$sem.count"
let f_status = "$sem.status"

let sem_of t name =
  match Hashtbl.find_opt t.sems name with
  | Some s -> s
  | None ->
    let s = { count = 1; holders = []; queue = [] } in
    Hashtbl.replace t.sems name s;
    s

(* Would granting [requester] (currently blocked on [name]) close a
   wait-for cycle?  Edges: a blocked process waits for every holder of
   the semaphore at the head of its wait; holders may themselves be
   blocked on other semaphores.  All managers run this on identical
   state, so they agree. *)
let creates_deadlock t requester name =
  let waiting_on p =
    Hashtbl.fold
      (fun n s acc -> if List.exists (fun (q, _) -> Addr.equal_proc q p) s.queue then n :: acc else acc)
      t.sems []
  in
  let rec reachable seen frontier =
    match frontier with
    | [] -> false
    | p :: rest ->
      if Addr.equal_proc p requester then true
      else if List.exists (Addr.equal_proc p) seen then reachable seen rest
      else
        let next =
          List.concat_map
            (fun n -> (Hashtbl.find_opt t.sems n |> Option.map (fun s -> s.holders)) |> Option.value ~default:[])
            (waiting_on p)
        in
        reachable (p :: seen) (next @ rest)
  in
  let s = sem_of t name in
  s.count <= 0 && reachable [] s.holders

let try_grant t name =
  let s = sem_of t name in
  let rec loop () =
    match s.queue with
    | (waiter, request) :: rest when s.count > 0 ->
      s.count <- s.count - 1;
      s.holders <- s.holders @ [ waiter ];
      s.queue <- rest;
      let answer = Message.create () in
      Message.set_str answer f_status "granted";
      Runtime.reply t.me ~request answer;
      loop ()
    | _ -> ()
  in
  loop ()

let handle t m =
  match Message.get_str m f_op, Message.get_str m f_name, Message.sender m with
  | Some "define", Some name, _ ->
    if not (Hashtbl.mem t.sems name) then
      Hashtbl.replace t.sems name
        { count = Option.value ~default:1 (Message.get_int m f_count); holders = []; queue = [] }
  | Some "p", Some name, Some requester ->
    if creates_deadlock t requester name then begin
      let answer = Message.create () in
      Message.set_str answer f_status "deadlock";
      Runtime.reply t.me ~request:m answer
    end
    else begin
      let s = sem_of t name in
      s.queue <- s.queue @ [ (requester, m) ];
      try_grant t name
    end
  | Some "v", Some name, Some releaser ->
    let s = sem_of t name in
    if List.exists (Addr.equal_proc releaser) s.holders then begin
      (* Remove one held unit. *)
      let removed = ref false in
      s.holders <-
        List.filter
          (fun h ->
            if (not !removed) && Addr.equal_proc h releaser then begin
              removed := true;
              false
            end
            else true)
          s.holders;
      s.count <- s.count + 1;
      try_grant t name
    end
  | _ -> ()

let release_failed t (p : Addr.proc) =
  Hashtbl.iter
    (fun name s ->
      s.queue <- List.filter (fun (q, _) -> not (Addr.equal_proc q p)) s.queue;
      let held = List.length (List.filter (Addr.equal_proc p) s.holders) in
      if held > 0 then begin
        s.holders <- List.filter (fun h -> not (Addr.equal_proc h p)) s.holders;
        s.count <- s.count + held;
        try_grant t name
      end)
    t.sems

(* Domain-local ([Vsync_util.Dls]): instances are keyed by process
   uid, and processes never cross domains, so per-domain registries are
   exactly the old global behaviour on one domain and race-free when
   the parallel harness runs worlds on several. *)
let registry_key : (int, (int, t) Hashtbl.t) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let registry () = Vsync_util.Dls.get registry_key

let attach me ~gid =
  let t = { me; gid; sems = Hashtbl.create 8 } in
  let key = Runtime.proc_uid me in
  let tbl =
    match Hashtbl.find_opt (registry ()) key with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace (registry ()) key tbl;
      Runtime.bind me Entry.generic_semaphore (fun m ->
          Hashtbl.iter (fun _ inst -> handle inst m) tbl);
      tbl
  in
  Hashtbl.replace tbl (Addr.group_to_int gid) t;
  Runtime.pg_monitor me gid (fun _view changes ->
      List.iter
        (function
          | View.Member_failed p | View.Member_left p -> release_failed t p
          | View.Member_joined _ -> ())
        changes);
  t

let define t ~name ~count =
  let m = Message.create () in
  Message.set_str m f_op "define";
  Message.set_str m f_name name;
  Message.set_int m f_count count;
  ignore
    (Runtime.bcast t.me Types.Cbcast ~dest:(Addr.Group t.gid) ~entry:Entry.generic_semaphore m
       ~want:Types.No_reply)

let p caller ~gid ~name =
  let m = Message.create () in
  Message.set_str m f_op "p";
  Message.set_str m f_name name;
  match
    Runtime.bcast caller Types.Abcast ~dest:(Addr.Group gid) ~entry:Entry.generic_semaphore m
      ~want:Types.Wait_all
  with
  | Runtime.All_failed -> Error "unreachable"
  | Runtime.Replies [] -> Error "unreachable"
  | Runtime.Replies ((_, answer) :: _) -> (
    match Message.get_str answer f_status with
    | Some "granted" -> Ok ()
    | Some other -> Error other
    | None -> Error "protocol error")

let v caller ~gid ~name =
  let m = Message.create () in
  Message.set_str m f_op "v";
  Message.set_str m f_name name;
  ignore
    (Runtime.bcast caller Types.Cbcast ~dest:(Addr.Group gid) ~entry:Entry.generic_semaphore m
       ~want:Types.No_reply)

let holder t ~name =
  match Hashtbl.find_opt t.sems name with
  | Some { holders = h :: _; _ } -> Some h
  | Some _ | None -> None

let queue_length t ~name =
  match Hashtbl.find_opt t.sems name with Some s -> List.length s.queue | None -> 0
