module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

type posting = { subject : string; post_id : int; body : Message.t }

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  board : string;
  ordered : bool;
  mutable postings : posting list; (* oldest first *)
  mutable watchers : (string * (posting -> unit)) list;
}

let f_board = "$bb.board"
let f_op = "$bb.op"
let f_subject = "$bb.subject"
let f_post_id = "$bb.id"
let f_body = "$bb.body"

(* Post identifiers are minted by the poster so that every replica
   stores the same id: site/slot/sequence packed into one integer. *)
(* Domain-local ([Vsync_util.Dls]): instances are keyed by process
   uid, and processes never cross domains, so per-domain registries are
   exactly the old global behaviour on one domain and race-free when
   the parallel harness runs worlds on several. *)
let post_counters_key : (int, int ref) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let post_counters () = Vsync_util.Dls.get post_counters_key

let mint_post_id p =
  let key = Runtime.proc_uid p in
  let ctr =
    match Hashtbl.find_opt (post_counters ()) key with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.replace (post_counters ()) key c;
      c
  in
  incr ctr;
  let a = Runtime.proc_addr p in
  (a.Addr.site lsl 40) lor (a.Addr.idx lsl 24) lor !ctr

let apply_post t ~subject ~post_id ~body =
  if not (List.exists (fun p -> p.post_id = post_id) t.postings) then begin
    let posting = { subject; post_id; body } in
    t.postings <- t.postings @ [ posting ];
    List.iter
      (fun (s, f) -> if String.equal s subject then f posting)
      t.watchers
  end

(* The take rule: smallest post id under the subject.  On an ordered
   board every replica holds the same set when the (ABCAST) take
   arrives, so all agree; on an unordered board agreement additionally
   needs post quiescence or a single consumer. *)
let apply_take t ~subject =
  let candidates = List.filter (fun p -> String.equal p.subject subject) t.postings in
  match candidates with
  | [] -> None
  | first :: rest ->
    let victim = List.fold_left (fun acc p -> if p.post_id < acc.post_id then p else acc) first rest in
    t.postings <- List.filter (fun p -> p.post_id <> victim.post_id) t.postings;
    Some victim

let handle t m =
  match Message.get_str m f_op, Message.get_str m f_subject with
  | Some "post", Some subject -> (
    match Message.get_int m f_post_id, Message.get_msg m f_body with
    | Some post_id, Some body -> apply_post t ~subject ~post_id ~body
    | _ -> ())
  | Some "take", Some subject -> (
    match apply_take t ~subject with
    | Some victim ->
      let r = Message.create () in
      Message.set_int r f_post_id victim.post_id;
      Message.set_str r f_subject victim.subject;
      Message.set_msg r f_body victim.body;
      Runtime.reply t.me ~request:m r
    | None -> Runtime.null_reply t.me ~request:m)
  | _ -> ()

let registry_key : (int, (string, t) Hashtbl.t) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let registry () = Vsync_util.Dls.get registry_key

let attach me ~gid ~board ~ordered =
  let t = { me; gid; board; ordered; postings = []; watchers = [] } in
  let key = Runtime.proc_uid me in
  let tbl =
    match Hashtbl.find_opt (registry ()) key with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace (registry ()) key tbl;
      Runtime.bind me Entry.generic_bboard (fun m ->
          match Message.get_str m f_board with
          | Some board -> (
            match Hashtbl.find_opt tbl board with
            | Some inst -> handle inst m
            | None -> ())
          | None -> ());
      tbl
  in
  Hashtbl.replace tbl board t;
  t

let post t ~subject body =
  let m = Message.create () in
  Message.set_str m f_board t.board;
  Message.set_str m f_op "post";
  Message.set_str m f_subject subject;
  Message.set_int m f_post_id (mint_post_id t.me);
  Message.set_msg m f_body (Message.copy body);
  let mode = if t.ordered then Types.Abcast else Types.Cbcast in
  ignore
    (Runtime.bcast t.me mode ~dest:(Addr.Group t.gid) ~entry:Entry.generic_bboard m
       ~want:Types.No_reply)

let read t ~subject = List.filter (fun p -> String.equal p.subject subject) t.postings

let read_all t = t.postings

let take t ~subject =
  let m = Message.create () in
  Message.set_str m f_board t.board;
  Message.set_str m f_op "take";
  Message.set_str m f_subject subject;
  match
    Runtime.bcast t.me Types.Abcast ~dest:(Addr.Group t.gid) ~entry:Entry.generic_bboard m
      ~want:Types.Wait_all
  with
  | Runtime.All_failed | Runtime.Replies [] -> None
  | Runtime.Replies ((_, answer) :: _) -> (
    match
      Message.get_str answer f_subject, Message.get_int answer f_post_id, Message.get_msg answer f_body
    with
    | Some subject, Some post_id, Some body -> Some { subject; post_id; body }
    | _ -> None)

let monitor t ~subject f = t.watchers <- t.watchers @ [ (subject, f) ]

let size t = List.length t.postings

let encode_state t =
  List.map
    (fun p ->
      let m = Message.create () in
      Message.set_str m f_subject p.subject;
      Message.set_int m f_post_id p.post_id;
      Message.set_msg m f_body p.body;
      Message.encode m)
    t.postings

let decode_state t chunks =
  t.postings <- [];
  List.iter
    (fun chunk ->
      let m = Message.decode chunk in
      match Message.get_str m f_subject, Message.get_int m f_post_id, Message.get_msg m f_body with
      | Some subject, Some post_id, Some body ->
        t.postings <- t.postings @ [ { subject; post_id; body } ]
      | _ -> ())
    chunks
