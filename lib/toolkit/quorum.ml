module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types

let f_item = "$q.item"
let f_op = "$q.op"
let f_version = "$q.version"
let f_value = "$q.value"
let f_quorum = "$q.quorum"

(* The quorum tool shares the repdata generic entry's neighbour: use a
   dedicated user-band entry well away from application entries. *)
let e_quorum = Entry.user 14

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  item : string;
  read_quorum : int;
  write_quorum : int;
  mutable stored : (int * Message.value) option; (* version, value *)
}

(* Deterministic responder rule (paper Sec 3.3): the Q oldest members
   reply; everyone else sends a null reply carrying no vote. *)
let my_rank_within t q =
  match Runtime.pg_rank t.me t.gid with Some r when r < q -> true | _ -> false

let handle t m =
  match Message.get_str m f_op with
  | Some "read" ->
    if my_rank_within t t.read_quorum then begin
      let r = Message.create () in
      Message.set_int r f_quorum t.read_quorum;
      (match t.stored with
      | Some (version, value) ->
        Message.set_int r f_version version;
        Message.set r f_value value
      | None -> Message.set_int r f_version 0);
      Runtime.reply t.me ~request:m r
    end
    else Runtime.null_reply t.me ~request:m
  | Some "write" -> (
    match Message.get_int m f_version, Message.get m f_value with
    | Some version, Some value ->
      if my_rank_within t t.write_quorum then begin
        (* Last-writer-wins on version; ties resolve by ABCAST order,
           which is identical at every replica. *)
        (match t.stored with
        | Some (cur, _) when cur > version -> ()
        | Some _ | None -> t.stored <- Some (version, value));
        let r = Message.create () in
        Message.set_int r f_quorum t.write_quorum;
        Runtime.reply t.me ~request:m r
      end
      else Runtime.null_reply t.me ~request:m
    | _ -> Runtime.null_reply t.me ~request:m)
  | Some _ | None -> Runtime.null_reply t.me ~request:m

(* Domain-local ([Vsync_util.Dls]): instances are keyed by process
   uid, and processes never cross domains, so per-domain registries are
   exactly the old global behaviour on one domain and race-free when
   the parallel harness runs worlds on several. *)
let registry_key : (int, (string, t) Hashtbl.t) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let registry () = Vsync_util.Dls.get registry_key

let attach me ~gid ~item ~read_quorum ~write_quorum =
  if read_quorum < 1 || write_quorum < 1 then invalid_arg "Quorum.attach: quorums must be positive";
  let t = { me; gid; item; read_quorum; write_quorum; stored = None } in
  let key = Runtime.proc_uid me in
  let tbl =
    match Hashtbl.find_opt (registry ()) key with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace (registry ()) key tbl;
      Runtime.bind me e_quorum (fun m ->
          match Message.get_str m f_item with
          | Some item -> (
            match Hashtbl.find_opt tbl item with
            | Some inst -> handle inst m
            | None -> ())
          | None -> ());
      tbl
  in
  Hashtbl.replace tbl item t;
  t

(* Collect the replies of a read round; the quorum size rides in each
   reply, exactly as the paper describes for callers that do not know
   Q. *)
let read_round caller ~gid ~item =
  let m = Message.create () in
  Message.set_str m f_item item;
  Message.set_str m f_op "read";
  match
    Runtime.bcast caller Types.Abcast ~dest:(Addr.Group gid) ~entry:e_quorum m
      ~want:Types.Wait_all
  with
  | Runtime.All_failed -> Error "replicas unreachable"
  | Runtime.Replies replies -> (
    let votes =
      List.filter_map
        (fun (_, r) ->
          match Message.get_int r f_version, Message.get_int r f_quorum with
          | Some v, Some q -> Some (v, Message.get r f_value, q)
          | _ -> None)
        replies
    in
    match votes with
    | [] -> Error "no quorum members answered"
    | (_, _, q) :: _ ->
      if List.length votes < q then Error "read quorum not met"
      else
        let best =
          List.fold_left (fun acc (v, value, _) -> match acc with
              | Some (bv, _) when bv >= v -> acc
              | _ -> Some (v, value))
            None votes
        in
        Ok (match best with Some (v, value) -> (v, value) | None -> (0, None)))

let read caller ~gid ~item =
  match read_round caller ~gid ~item with
  | Ok (_, value) -> Ok value
  | Error e -> Error e

let write caller ~gid ~item value =
  (* Phase 1: learn the current version from a read quorum. *)
  match read_round caller ~gid ~item with
  | Error e -> Error e
  | Ok (version, _) -> (
    let m = Message.create () in
    Message.set_str m f_item item;
    Message.set_str m f_op "write";
    Message.set_int m f_version (version + 1);
    Message.set m f_value value;
    match
      Runtime.bcast caller Types.Abcast ~dest:(Addr.Group gid) ~entry:e_quorum m
        ~want:Types.Wait_all
    with
    | Runtime.All_failed -> Error "replicas unreachable"
    | Runtime.Replies replies ->
      let acks =
        List.filter_map (fun (_, r) -> Message.get_int r f_quorum) replies
      in
      (match acks with
      | [] -> Error "no quorum members answered"
      | q :: _ -> if List.length acks >= q then Ok () else Error "write quorum not met"))

let local t = t.stored
