module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types
module Backend = Vsync_backend.Backend

let e_time = Entry.user 13

let f_op = "$rt.op"
let f_time = "$rt.time"
let f_sensor = "$rt.sensor"
let f_value = "$rt.value"
let f_stamp = "$rt.stamp"

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  mutable correction : int; (* add to the local clock to approximate the master *)
  mutable sensors : (string * int * float) list; (* sensor, global stamp, value — newest first *)
}

let local_now t = Runtime.local_time_us (Runtime.runtime_of t.me)

let global_time t = local_now t + t.correction

let offset_us t = t.correction

let handle t m =
  match Message.get_str m f_op with
  | Some "ask" ->
    (* Time request: answer with our local (at the master: the
       reference) clock. *)
    let r = Message.create () in
    Message.set_int r f_time (local_now t);
    Runtime.reply t.me ~request:m r
  | Some "report" -> (
    match
      Message.get_str m f_sensor, Message.get_int m f_stamp, Message.get_float m f_value
    with
    | Some sensor, Some stamp, Some value -> t.sensors <- (sensor, stamp, value) :: t.sensors
    | _ -> ())
  | Some _ | None -> if Message.session m <> None then Runtime.null_reply t.me ~request:m

(* Domain-local ([Vsync_util.Dls]): instances are keyed by process
   uid, and processes never cross domains, so per-domain registries are
   exactly the old global behaviour on one domain and race-free when
   the parallel harness runs worlds on several. *)
let registry_key : (int, (int, t) Hashtbl.t) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let registry () = Vsync_util.Dls.get registry_key

let attach me ~gid =
  let t = { me; gid; correction = 0; sensors = [] } in
  let key = Runtime.proc_uid me in
  let tbl =
    match Hashtbl.find_opt (registry ()) key with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace (registry ()) key tbl;
      Runtime.bind me e_time (fun m ->
          Hashtbl.iter (fun _ inst -> handle inst m) tbl);
      tbl
  in
  Hashtbl.replace tbl (Addr.group_to_int gid) t;
  t

let master t =
  match Runtime.pg_view t.me t.gid with
  | Some v when View.n_members v > 0 -> Some (View.oldest v)
  | Some _ | None -> None

(* Cristian's algorithm: ask the master for its clock; its answer is
   assumed to have been read RTT/2 before our receipt. *)
let sync t =
  match master t with
  | None -> Error "no time master (not a member?)"
  | Some m when Addr.equal_proc m (Runtime.proc_addr t.me) ->
    t.correction <- 0;
    Ok 0
  | Some m -> (
    let ask = Message.create () in
    Message.set_str ask f_op "ask";
    let t0 = local_now t in
    match
      Runtime.bcast t.me Types.Cbcast ~dest:(Addr.Proc m) ~entry:e_time ask
        ~want:(Types.Wait_n 1)
    with
    | Runtime.Replies ((_, answer) :: _) -> (
      match Message.get_int answer f_time with
      | Some master_time ->
        let t1 = local_now t in
        let rtt = t1 - t0 in
        let estimated_master_now = master_time + (rtt / 2) in
        t.correction <- estimated_master_now - t1;
        Ok t.correction
      | None -> Error "malformed time reply")
    | Runtime.Replies [] | Runtime.All_failed -> Error "time master unreachable")

let schedule_at t ~global f =
  let delay = global - global_time t in
  let delay = if delay < 0 then 0 else delay in
  ignore
    (Backend.schedule (Runtime.backend (Runtime.runtime_of t.me)) ~delay (fun () ->
         if Runtime.proc_alive t.me then Runtime.spawn_task t.me f))

let report t ~sensor value =
  let m = Message.create () in
  Message.set_str m f_op "report";
  Message.set_str m f_sensor sensor;
  Message.set_int m f_stamp (global_time t);
  Message.set_float m f_value value;
  ignore
    (Runtime.bcast t.me Types.Cbcast ~dest:(Addr.Group t.gid) ~entry:e_time m
       ~want:Types.No_reply)

let readings t ~sensor ~from_ ~until =
  List.filter_map
    (fun (s, stamp, v) ->
      if String.equal s sensor && stamp >= from_ && stamp <= until then Some (stamp, v) else None)
    (List.rev t.sensors)
