module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

let group_name = "sys.news"
let f_subject = "$news.subject"

type agent = {
  proc : Runtime.proc;
  mutable subs : (string * Runtime.proc * (Message.t -> unit)) list;
  mutable ready : bool;
  mutable failed : string option;
}

let deliver_local a m =
  match Message.get_str m f_subject with
  | None -> ()
  | Some subject ->
    List.iter
      (fun (s, p, f) ->
        if String.equal s subject && Runtime.proc_alive p then
          Runtime.spawn_task p (fun () -> f (Message.copy m)))
      a.subs

(* A refused join is usually transient (the group was mid view-change,
   or the creator's commit had not landed here yet): retry a bounded
   number of times, then record the failure on the agent and report it
   on the typed event stream instead of killing the site's task with an
   exception. *)
let join_attempts = 5

let report_failure rt a detail =
  a.failed <- Some detail;
  let tr = Vsync_sim.Trace.obs (Runtime.trace rt) in
  if Vsync_obs.Tracer.wants tr Vsync_obs.Event.Note then
    Vsync_obs.Tracer.emit tr
      (Vsync_obs.Event.Error_event { site = Runtime.site rt; what = "news.join"; detail })

let start_agent rt =
  let proc = Runtime.spawn_proc rt ~name:(Printf.sprintf "news.agent%d" (Runtime.site rt)) () in
  let a = { proc; subs = []; ready = false; failed = None } in
  Runtime.bind proc Entry.generic_news (fun m -> deliver_local a m);
  Runtime.spawn_task proc (fun () ->
      (* Site 0's agent creates the group; the others keep looking it
         up until it exists (agents may start concurrently). *)
      let rec connect attempt =
        match Runtime.pg_lookup proc group_name with
        | Some gid -> (
          match Runtime.pg_join proc gid ~credentials:(Message.create ()) with
          | Ok () -> a.ready <- true
          | Error e ->
            if attempt < join_attempts then begin
              Runtime.sleep proc 200_000;
              connect (attempt + 1)
            end
            else
              report_failure rt a
                (Printf.sprintf "could not join %s after %d attempts: %s" group_name
                   join_attempts e))
        | None ->
          if Runtime.site rt = 0 then begin
            ignore (Runtime.pg_create proc group_name);
            a.ready <- true
          end
          else begin
            Runtime.sleep proc 200_000;
            connect attempt
          end
      in
      connect 1);
  a

let agent_ready a = a.ready
let agent_failed a = a.failed

let subscribe a p ~subject f =
  Vsync_util.Stats.Counter.incr (Runtime.counters (Runtime.runtime_of p)) "prim.local_rpc";
  a.subs <- (subject, p, f) :: a.subs

let unsubscribe a p ~subject =
  a.subs <-
    List.filter
      (fun (s, q, _) ->
        not (String.equal s subject && Runtime.proc_uid q = Runtime.proc_uid p))
      a.subs

let post ?on_backpressure p ~subject m =
  match Runtime.pg_lookup p group_name with
  | None -> invalid_arg "News.post: no news service running"
  | Some gid ->
    let m = Message.copy m in
    Message.set_str m f_subject subject;
    (* Honor runtime backpressure: a flooding publisher parks here until
       the posting group's pipeline has room, instead of growing its
       queues without bound. *)
    ignore
      (Runtime.bcast_wait ?on_backpressure p Types.Abcast ~dest:(Addr.Group gid)
         ~entry:Entry.generic_news m ~want:Types.No_reply)
