(** The news service (paper Sec 3.9).

    A system-wide publish/subscribe facility: subscribers enroll for a
    {e subject} and receive a copy of every message posted to it "in
    the order they were posted".  Unlike net-news, the service is
    active: it informs processes immediately.

    Structure (matching the paper's Figure 1, where a news service
    process runs at each site): one {e agent} process per site joins
    the group ["sys.news"]; local processes subscribe with their agent
    (one local RPC) and the agent forwards postings that match.
    Postings ride an ABCAST among the agents, so every subscriber —
    anywhere — sees each subject's traffic in the same posting order. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type agent

(** [start_agent rt] spawns the site's news agent and connects it to
    the system news group (creating the group if this is the first
    agent).  Call once per site, after the sites are up. *)
val start_agent : Runtime.t -> agent

(** [agent_ready a] — the agent has joined the news group. *)
val agent_ready : agent -> bool

(** [agent_failed a] — [Some reason] if the agent gave up joining the
    news group after its bounded retries (also reported as an
    [Error_event] on the typed event stream); [None] while connecting
    or once connected. *)
val agent_failed : agent -> string option

(** [subscribe a p ~subject f] enrolls process [p]: [f msg] runs for
    every posting on [subject], in global posting order (1 local
    RPC). *)
val subscribe : agent -> Runtime.proc -> subject:string -> (Message.t -> unit) -> unit

(** [unsubscribe a p ~subject] cancels the enrollment. *)
val unsubscribe : agent -> Runtime.proc -> subject:string -> unit

(** [post p ~subject m] publishes (1 ABCAST to the agents).  Any
    process on any site may post; the poster need not subscribe.
    Posting honors runtime backpressure: under overload the calling
    task blocks until the agents' group has pipeline room
    ({!Runtime.bcast_wait}); [on_backpressure] runs once per post that
    had to wait. *)
val post :
  ?on_backpressure:(Addr.group_id -> unit) ->
  Runtime.proc -> subject:string -> Message.t -> unit
