module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types

type order = Causal | Ordered

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  item : string;
  order : order;
  apply : Message.t -> unit;
  read : (Message.t -> Message.t) option;
  log : Stable_store.t option;
  checkpoint : ((unit -> bytes list) * (bytes list -> unit)) option;
  checkpoint_every : int;
}

let f_item = "$rd.item"
let f_op = "$rd.op"

let log_name t = Printf.sprintf "rd.g%d.%s" (Addr.group_to_int t.gid) t.item

(* One dispatcher per process: several items can share the
   generic_repdata entry. *)
(* Domain-local ([Vsync_util.Dls]): instances are keyed by process
   uid, and processes never cross domains, so per-domain registries are
   exactly the old global behaviour on one domain and race-free when
   the parallel harness runs worlds on several. *)
let dispatchers_key : (int, (string, t) Hashtbl.t) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let dispatchers () = Vsync_util.Dls.get dispatchers_key

let site_of t = (Runtime.proc_addr t.me).Addr.site

let maybe_checkpoint t =
  match t.log, t.checkpoint with
  | Some store, Some (capture, _) ->
    if Stable_store.log_length store ~site:(site_of t) ~log:(log_name t) >= t.checkpoint_every
    then begin
      Stable_store.write_checkpoint store ~site:(site_of t) ~name:(log_name t) (capture ());
      Stable_store.truncate_log store ~site:(site_of t) ~log:(log_name t)
    end
  | _ -> ()

let apply_update t m =
  t.apply m;
  match t.log with
  | Some store ->
    Stable_store.append store ~site:(site_of t) ~log:(log_name t) m;
    maybe_checkpoint t
  | None -> ()

(* The deterministic reader for a client read: the manager whose rank
   equals the client's site modulo the membership size answers; the
   others send null replies.  All members agree without communicating
   because they share the ranked view. *)
let i_should_answer t (client : Addr.proc) =
  match Runtime.pg_view t.me t.gid, Runtime.pg_rank t.me t.gid with
  | Some v, Some my_rank -> client.Addr.site mod View.n_members v = my_rank
  | _ -> false

let handle t m =
  match Message.get_str m f_op with
  | Some "update" ->
    apply_update t m;
    (* Client updates may request confirmation. *)
    if Message.session m <> None then Runtime.null_reply t.me ~request:m
  | Some "read" -> (
    match Message.sender m with
    | Some client when i_should_answer t client -> (
      match t.read with
      | Some read -> Runtime.reply t.me ~request:m (read m)
      | None -> Runtime.null_reply t.me ~request:m)
    | Some _ | None -> Runtime.null_reply t.me ~request:m)
  | Some _ | None -> ()

let proc_key p = Runtime.proc_uid p

let attach me ~gid ~item ~order ~apply ?read ?log ?checkpoint ?(checkpoint_every = 64) () =
  let t = { me; gid; item; order; apply; read; log; checkpoint; checkpoint_every } in
  let key = proc_key me in
  let tbl =
    match Hashtbl.find_opt (dispatchers ()) key with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace (dispatchers ()) key tbl;
      Runtime.bind me Entry.generic_repdata (fun m ->
          match Message.get_str m f_item with
          | Some item -> (
            match Hashtbl.find_opt tbl item with
            | Some inst -> handle inst m
            | None -> ())
          | None -> ());
      tbl
  in
  Hashtbl.replace tbl item t;
  t

let mode_of = function Causal -> Types.Cbcast | Ordered -> Types.Abcast

let update t m =
  let m = Message.copy m in
  Message.set_str m f_item t.item;
  Message.set_str m f_op "update";
  ignore
    (Runtime.bcast t.me (mode_of t.order) ~dest:(Addr.Group t.gid) ~entry:Entry.generic_repdata
       m ~want:Types.No_reply)

let read_local t m =
  match t.read with
  | Some read -> read m
  | None -> invalid_arg "Repdata.read_local: no read routine supplied"

let client_update p ~gid ~item m =
  let m = Message.copy m in
  Message.set_str m f_item item;
  Message.set_str m f_op "update";
  (* The client cannot know the item's declared order; updates from
     outside the managers always use ABCAST, the safe choice. *)
  ignore
    (Runtime.bcast p Types.Abcast ~dest:(Addr.Group gid) ~entry:Entry.generic_repdata m
       ~want:Types.No_reply)

let client_read p ~gid ~item m =
  let m = Message.copy m in
  Message.set_str m f_item item;
  Message.set_str m f_op "read";
  match
    Runtime.bcast p Types.Cbcast ~dest:(Addr.Group gid) ~entry:Entry.generic_repdata m
      ~want:(Types.Wait_n 1)
  with
  | Runtime.Replies ((_, answer) :: _) -> Some answer
  | Runtime.Replies [] | Runtime.All_failed -> None

let recover t =
  match t.log with
  | None -> invalid_arg "Repdata.recover: logging mode is off"
  | Some store ->
    (match t.checkpoint with
    | Some (_, restore) -> (
      match Stable_store.read_checkpoint store ~site:(site_of t) ~name:(log_name t) with
      | Some chunks -> restore chunks
      | None -> ())
    | None -> ());
    List.iter t.apply (Stable_store.read_log store ~site:(site_of t) ~log:(log_name t))
