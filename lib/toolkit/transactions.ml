module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types

(* --- wire fields --- *)

let f_op = "$tx.op"
let f_txid = "$tx.id"
let f_key = "$tx.key"
let f_mode = "$tx.mode"
let f_value = "$tx.value"
let f_writes = "$tx.writes"
let f_status = "$tx.status"
let f_present = "$tx.present"

(* Transaction ids are minted by the client so every manager sees the
   same identifier: site/slot/sequence packed into an integer. *)
(* Domain-local ([Vsync_util.Dls]): instances are keyed by process
   uid, and processes never cross domains, so per-domain registries are
   exactly the old global behaviour on one domain and race-free when
   the parallel harness runs worlds on several. *)
let tx_counters_key : (int, int ref) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let tx_counters () = Vsync_util.Dls.get tx_counters_key

let mint_txid p =
  let key = Runtime.proc_uid p in
  let ctr =
    match Hashtbl.find_opt (tx_counters ()) key with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.replace (tx_counters ()) key c;
      c
  in
  incr ctr;
  let a = Runtime.proc_addr p in
  (a.Addr.site lsl 40) lor (a.Addr.idx lsl 24) lor !ctr

(* --- manager-side replicated state --- *)

type lock_mode = Read | Write

type lock = {
  mutable holders : (int * lock_mode) list; (* txid, mode; writers are sole holders *)
  mutable queue : (int * lock_mode * Message.t) list; (* txid, wanted, pending request *)
}

type mgr = {
  me : Runtime.proc;
  gid : Addr.group_id;
  store : Stable_store.t option;
  kv : (string, Message.value) Hashtbl.t;
  locks : (string, lock) Hashtbl.t;
  owners : (int, Addr.proc) Hashtbl.t; (* txid -> client, for failure cleanup *)
}

let log_name m = Printf.sprintf "txn.g%d" (Addr.group_to_int m.gid)
let site_of m = (Runtime.proc_addr m.me).Addr.site

let lock_of m key =
  match Hashtbl.find_opt m.locks key with
  | Some l -> l
  | None ->
    let l = { holders = []; queue = [] } in
    Hashtbl.replace m.locks key l;
    l

let compatible l txid mode =
  match mode with
  | Read ->
    List.for_all (fun (h, hm) -> h = txid || hm = Read) l.holders
  | Write -> List.for_all (fun (h, _) -> h = txid) l.holders

(* Wait-for cycle detection over the replicated lock table: requester
   -> holders of the contended key -> keys those transactions wait on
   -> ... *)
let creates_deadlock m txid key mode =
  let l = lock_of m key in
  if compatible l txid mode then false
  else begin
    let waiting_on tid =
      Hashtbl.fold
        (fun k lk acc -> if List.exists (fun (q, _, _) -> q = tid) lk.queue then k :: acc else acc)
        m.locks []
    in
    let holders_of k =
      match Hashtbl.find_opt m.locks k with
      | Some lk -> List.map fst lk.holders
      | None -> []
    in
    let rec reachable seen frontier =
      match frontier with
      | [] -> false
      | tid :: rest ->
        if tid = txid then true
        else if List.mem tid seen then reachable seen rest
        else
          let next = List.concat_map holders_of (waiting_on tid) in
          reachable (tid :: seen) (next @ rest)
    in
    reachable [] (List.map fst l.holders)
  end

let reply_status m request status ~value ~present =
  let r = Message.create () in
  Message.set_str r f_status status;
  (match value with Some v -> Message.set r f_value v | None -> ());
  Message.set_bool r f_present present;
  Runtime.reply m.me ~request r

let grant m key l =
  let rec loop () =
    match l.queue with
    | (txid, mode, request) :: rest when compatible l txid mode ->
      l.queue <- rest;
      if not (List.exists (fun (h, hm) -> h = txid && hm = mode) l.holders) then
        l.holders <- l.holders @ [ (txid, mode) ];
      let value = Hashtbl.find_opt m.kv key in
      reply_status m request "granted" ~value ~present:(value <> None);
      loop ()
    | _ -> ()
  in
  loop ()

let release_tx m txid =
  Hashtbl.iter
    (fun key l ->
      if List.exists (fun (h, _) -> h = txid) l.holders || List.exists (fun (q, _, _) -> q = txid) l.queue
      then begin
        l.holders <- List.filter (fun (h, _) -> h <> txid) l.holders;
        l.queue <- List.filter (fun (q, _, _) -> q <> txid) l.queue;
        grant m key l
      end)
    (Hashtbl.copy m.locks);
  Hashtbl.remove m.owners txid

let apply_writes m writes =
  List.iter
    (fun (key, value) ->
      match value with
      | Some v -> Hashtbl.replace m.kv key v
      | None -> Hashtbl.remove m.kv key)
    writes

let writes_of_msg wm =
  List.map (fun (k, v) -> (k, Some v)) (Message.fields wm)

let handle m msg =
  match Message.get_str msg f_op, Message.get_int msg f_txid with
  | Some "lock", Some txid -> (
    match Message.get_str msg f_key, Message.get_str msg f_mode, Message.sender msg with
    | Some key, Some mode_s, Some client ->
      let mode = if String.equal mode_s "w" then Write else Read in
      Hashtbl.replace m.owners txid client;
      if creates_deadlock m txid key mode then
        reply_status m msg "deadlock" ~value:None ~present:false
      else begin
        let l = lock_of m key in
        l.queue <- l.queue @ [ (txid, mode, msg) ];
        grant m key l
      end
    | _ -> ())
  | Some "commit", Some txid ->
    (match Message.get_msg msg f_writes with
    | Some wm ->
      let writes = writes_of_msg wm in
      apply_writes m writes;
      (match m.store with
      | Some store -> Stable_store.append store ~site:(site_of m) ~log:(log_name m) msg
      | None -> ())
    | None -> ());
    release_tx m txid;
    reply_status m msg "committed" ~value:None ~present:false
  | Some "abort", Some txid ->
    release_tx m txid;
    if Message.session msg <> None then Runtime.null_reply m.me ~request:msg
  | _ -> ()

let registry_key : (int, mgr) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let registry () = Vsync_util.Dls.get registry_key

let attach_manager me ~gid ?store () =
  let m =
    {
      me;
      gid;
      store;
      kv = Hashtbl.create 32;
      locks = Hashtbl.create 32;
      owners = Hashtbl.create 16;
    }
  in
  Hashtbl.replace (registry ()) (Runtime.proc_uid me) m;
  Runtime.bind me Entry.generic_txn (fun msg -> handle m msg);
  (* Locks held by member clients die with them.  (A manager attached
     purely to replay a log after a total failure has no view yet and
     registers no monitor.) *)
  if Runtime.pg_view me gid <> None then
    Runtime.pg_monitor me gid (fun _view changes ->
      List.iter
        (function
          | View.Member_failed p | View.Member_left p ->
            let stale =
              Hashtbl.fold (fun txid owner acc -> if Addr.equal_proc owner p then txid :: acc else acc)
                m.owners []
            in
            List.iter (fun txid -> release_tx m txid) stale
          | View.Member_joined _ -> ())
        changes);
  m

let recover m =
  match m.store with
  | None -> invalid_arg "Transactions.recover: no stable store attached"
  | Some store ->
    List.iter
      (fun msg ->
        match Message.get_msg msg f_writes with
        | Some wm -> apply_writes m (writes_of_msg wm)
        | None -> ())
      (Stable_store.read_log store ~site:(site_of m) ~log:(log_name m))

let value_at m key = Hashtbl.find_opt m.kv key

let locks_held m = Hashtbl.fold (fun _ l acc -> acc + List.length l.holders) m.locks 0

(* --- client side --- *)

type tx = {
  proc : Runtime.proc;
  tgid : Addr.group_id;
  txid : int; (* the root transaction's id: locks are inherited *)
  parent : tx option;
  mutable buffered : (string * Message.value) list; (* newest first *)
  mutable finished : bool;
}

let begin_tx proc ~gid =
  { proc; tgid = gid; txid = mint_txid proc; parent = None; buffered = []; finished = false }

let begin_sub parent =
  {
    proc = parent.proc;
    tgid = parent.tgid;
    txid = parent.txid;
    parent = Some parent;
    buffered = [];
    finished = false;
  }

let check_live tx = if tx.finished then invalid_arg "Transactions: transaction already finished"

let send_op tx op ~extra ~want =
  let m = Message.create () in
  Message.set_str m f_op op;
  Message.set_int m f_txid tx.txid;
  extra m;
  Runtime.bcast tx.proc Types.Abcast ~dest:(Addr.Group tx.tgid) ~entry:Entry.generic_txn m ~want

let acquire tx key mode =
  match
    send_op tx "lock" ~want:Types.Wait_all ~extra:(fun m ->
        Message.set_str m f_key key;
        Message.set_str m f_mode mode)
  with
  | Runtime.All_failed | Runtime.Replies [] -> Error "managers unreachable"
  | Runtime.Replies ((_, answer) :: _) -> (
    match Message.get_str answer f_status with
    | Some "granted" ->
      Ok
        (if Message.get_bool answer f_present = Some true then Message.get answer f_value
         else None)
    | Some other -> Error other
    | None -> Error "protocol error")

(* A read sees this transaction's own uncommitted writes first (walking
   up through parents), then the replicated committed state. *)
let rec local_view tx key =
  match List.assoc_opt key tx.buffered with
  | Some v -> Some (Some v)
  | None -> ( match tx.parent with Some p -> local_view p key | None -> None)

let read tx key =
  check_live tx;
  match local_view tx key with
  | Some v -> Ok v
  | None -> acquire tx key "r"

let write tx key v =
  check_live tx;
  match acquire tx key "w" with
  | Ok _ ->
    tx.buffered <- (key, v) :: List.remove_assoc key tx.buffered;
    Ok ()
  | Error e -> Error e

let rec root tx = match tx.parent with Some p -> root p | None -> tx

let commit tx =
  check_live tx;
  tx.finished <- true;
  match tx.parent with
  | Some parent ->
    (* Sub-commit: fold the child's writes into the parent (child wins
       on conflicts). *)
    List.iter
      (fun (k, v) -> parent.buffered <- (k, v) :: List.remove_assoc k parent.buffered)
      (List.rev tx.buffered);
    Ok ()
  | None -> (
    let wm = Message.create () in
    List.iter (fun (k, v) -> Message.set wm k v) (List.rev tx.buffered);
    match
      send_op tx "commit" ~want:Types.Wait_all ~extra:(fun m -> Message.set_msg m f_writes wm)
    with
    | Runtime.All_failed | Runtime.Replies [] -> Error "managers unreachable"
    | Runtime.Replies _ -> Ok ())

let abort tx =
  if not tx.finished then begin
    tx.finished <- true;
    tx.buffered <- [];
    match tx.parent with
    | Some _ -> () (* locks stay with the root, effects are discarded *)
    | None ->
      ignore (root tx);
      ignore
        (send_op tx "abort" ~want:Types.No_reply ~extra:(fun _ -> ()))
  end
