module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

type t = { proc : Runtime.proc }

let f_program = "$rx.program"
let f_status = "$rx.status"
let f_addr = "$rx.addr"

let group_name site = Printf.sprintf "sys.rx.%d" site

(* Domain-local ([Vsync_util.Dls]): the program table is consulted by
   executor processes, which never cross domains, so per-domain tables
   are exactly the old global behaviour on one domain and race-free
   when the parallel harness runs worlds on several.  Register programs
   on the domain that runs the world. *)
let programs_key : (string, Runtime.proc -> Message.t -> unit) Hashtbl.t Vsync_util.Dls.t =
  Vsync_util.Dls.make (fun () -> Hashtbl.create 16)

let programs () = Vsync_util.Dls.get programs_key

let register_program name body = Hashtbl.replace (programs ()) name body

let e_spawn = Entry.user 15

let start rt =
  let proc = Runtime.spawn_proc rt ~name:(Printf.sprintf "rx%d" (Runtime.site rt)) () in
  Runtime.bind proc e_spawn (fun request ->
      match Message.get_str request f_program with
      | None -> Runtime.null_reply proc ~request
      | Some name -> (
        match Hashtbl.find_opt (programs ()) name with
        | None ->
          let r = Message.create () in
          Message.set_str r f_status "unknown program";
          Runtime.reply proc ~request r
        | Some body ->
          let fresh = Runtime.spawn_proc rt ~name () in
          let arg = Message.copy request in
          Runtime.spawn_task fresh (fun () -> body fresh arg);
          let r = Message.create () in
          Message.set_str r f_status "ok";
          Message.set_addr r f_addr (Addr.Proc (Runtime.proc_addr fresh));
          Runtime.reply proc ~request r));
  (* Addressable from other sites through the directory, like the other
     per-site services. *)
  Runtime.spawn_task proc (fun () ->
      ignore (Runtime.pg_create proc (group_name (Runtime.site rt))));
  { proc }

let spawn_at caller ~site ~program arg =
  match Runtime.pg_lookup caller (group_name site) with
  | None -> Error "no remote execution service at that site"
  | Some gid -> (
    let m = Message.copy arg in
    Message.set_str m f_program program;
    match
      Runtime.bcast caller Types.Cbcast ~dest:(Addr.Group gid) ~entry:e_spawn m
        ~want:(Types.Wait_n 1)
    with
    | Runtime.All_failed | Runtime.Replies [] -> Error "remote execution service unreachable"
    | Runtime.Replies ((_, answer) :: _) -> (
      match Message.get_str answer f_status, Message.get_addr answer f_addr with
      | Some "ok", Some (Addr.Proc p) -> Ok p
      | Some err, _ -> Error err
      | _ -> Error "protocol error"))
