(* Randomized integration fuzzing: drive a group through a random
   schedule of joins, leaves, process crashes, site crashes/restarts,
   and mixed CBCAST/ABCAST/GBCAST traffic, with every invariant judged
   by the shared virtual-synchrony {!Oracle}; plus nemesis-driven
   scenarios where a declarative fault plan (partitions, loss bursts,
   link degradation) runs underneath steady traffic.

   Every schedule and every plan is generated from a seed, so a failure
   reproduces exactly. *)

open Vsync_core
module Rng = Vsync_util.Rng
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Nemesis = Vsync_sim.Nemesis

let e_app = Entry.user 0

type actor = { proc : Runtime.proc; mutable member : bool }

let fuzz_one ?(loss = 0.0) seed =
  let sites = 4 in
  let w = World.create ~seed ~sites () in
  if loss > 0.0 then Vsync_sim.Net.set_loss (World.net w) loss;
  let rng = Rng.create (Int64.add seed 77L) in
  let site_up = Array.make sites true in
  let next_tag = ref 0 in

  (* The founding member. *)
  let founder = World.proc w ~site:0 ~name:"f" in
  let gid = ref None in
  World.run_task w founder (fun () -> gid := Some (Runtime.pg_create founder "fuzz"));
  World.run w;
  let gid = Option.get !gid in

  let oracle = Oracle.create w ~gid in
  let actors = ref [] in
  (* Delivery recording can bind immediately, but {!Oracle.track}
     registers a view monitor and therefore needs a local view: track
     only once membership holds. *)
  let listen actor =
    Runtime.bind actor.proc e_app (fun msg -> Oracle.note_delivery oracle actor.proc msg)
  in
  let founder_actor = { proc = founder; member = true } in
  listen founder_actor;
  Oracle.track oracle founder;
  actors := [ founder_actor ];

  let alive_members () =
    List.filter (fun a -> a.member && Runtime.proc_alive a.proc) !actors
  in

  let steps = 18 in
  for _step = 1 to steps do
    let kind = Rng.int rng 100 in
    (if kind < 25 then begin
       (* Join from a random up site. *)
       let ups = List.filter (fun s -> site_up.(s)) (List.init sites Fun.id) in
       if ups <> [] then begin
         let site = Rng.choose rng ups in
         let p = World.proc w ~site ~name:(Printf.sprintf "j%d" (Rng.int rng 10000)) in
         let actor = { proc = p; member = false } in
         listen actor;
         actors := actor :: !actors;
         World.run_task w p (fun () ->
             ignore (Runtime.pg_lookup p "fuzz");
             match Runtime.pg_join p gid ~credentials:(Message.create ()) with
             | Ok () ->
               actor.member <- true;
               Oracle.track oracle p
             | Error _ -> ())
       end
     end
     else if kind < 35 then begin
       (* Leave (keep at least one member). *)
       match alive_members () with
       | _ :: _ :: _ as members ->
         let a = Rng.choose rng members in
         a.member <- false;
         World.run_task w a.proc (fun () -> Runtime.pg_leave a.proc gid)
       | _ -> ()
     end
     else if kind < 45 then begin
       (* Kill a member process (not the last). *)
       match alive_members () with
       | _ :: _ :: _ as members ->
         let a = Rng.choose rng members in
         a.member <- false;
         Runtime.kill_proc a.proc
       | _ -> ()
     end
     else if kind < 52 then begin
       (* Crash a site (never site 0, to keep the group rooted). *)
       let candidates =
         List.filter (fun s -> s <> 0 && site_up.(s)) (List.init sites Fun.id)
       in
       if candidates <> [] then begin
         let s = Rng.choose rng candidates in
         site_up.(s) <- false;
         List.iter
           (fun a -> if (Runtime.proc_addr a.proc).Addr.site = s then a.member <- false)
           !actors;
         World.crash_site w s
       end
     end
     else if kind < 58 then begin
       (* Restart a crashed site. *)
       let candidates = List.filter (fun s -> not site_up.(s)) (List.init sites Fun.id) in
       if candidates <> [] then begin
         let s = Rng.choose rng candidates in
         site_up.(s) <- true;
         World.restart_site w s
       end
     end
     else begin
       (* A burst of traffic from random members. *)
       let members = alive_members () in
       if members <> [] then
         for _ = 1 to 1 + Rng.int rng 4 do
           let a = Rng.choose rng members in
           let tag = !next_tag in
           incr next_tag;
           let mode =
             match Rng.int rng 10 with
             | 0 -> Types.Gbcast
             | n when n < 5 -> Types.Abcast
             | _ -> Types.Cbcast
           in
           World.run_task w a.proc (fun () ->
               let msg = Message.create () in
               Message.set_int msg "tag" tag;
               Oracle.note_send oracle a.proc ~mode ~tag;
               ignore
                 (Runtime.bcast a.proc mode ~dest:(Addr.Group gid) ~entry:e_app msg
                    ~want:Types.No_reply))
         done
     end);
    (* Let the dust settle between steps (detection can take seconds). *)
    World.run_for w (Rng.int_in rng 100_000 8_000_000)
  done;
  World.run ~until:(World.now w + 60_000_000) w;

  match Oracle.check oracle with
  | [] -> ()
  | violations ->
    Alcotest.failf "seed %Ld:\n%s\n%s" seed
      (Oracle.report oracle violations)
      (Format.asprintf "%a" Oracle.pp_history oracle)

let test_fuzz () =
  List.iter (fun s -> fuzz_one s) [ 1001L; 1002L; 1003L; 1004L; 1005L; 1006L; 1007L; 1008L ]

(* Mild loss on top of churn: retransmission and stabilization must
   still uphold the invariants (loss low enough that false suspicion
   stays negligible over the run length). *)
let test_fuzz_lossy () = List.iter (fun s -> fuzz_one ~loss:0.02 s) [ 2001L; 2002L; 2003L; 2004L ]

(* Nemesis scenarios: the standard harness — steady mixed traffic while
   a seeded random fault plan (crashes, partitions, bursty loss, link
   degradation) runs underneath — must uphold every oracle invariant
   and still make progress. *)
let test_nemesis_scenarios () =
  List.iter
    (fun seed ->
      let r =
        match Scenario.run ~seed () with
        | Ok r -> r
        | Error e -> Alcotest.failf "nemesis seed %Ld: scenario setup failed: %s" seed e
      in
      if r.violations <> [] then
        Alcotest.failf "nemesis seed %Ld:\n%s" seed (Oracle.report r.oracle r.violations);
      Alcotest.(check bool)
        (Printf.sprintf "nemesis seed %Ld made progress" seed)
        true (r.delivered > 0))
    [ 42L; 1337L; 424242L ]

(* Acceptance criterion: the same (seed, intensity) twice produces
   byte-identical plans, traffic counts, latencies and oracle reports. *)
let test_nemesis_determinism () =
  let run () =
    match Scenario.run ~seed:90210L ~intensity:0.7 () with
    | Ok r -> r
    | Error e -> Alcotest.failf "determinism run: scenario setup failed: %s" e
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "identical plan"
    (Nemesis.plan_to_string a.plan) (Nemesis.plan_to_string b.plan);
  Alcotest.(check int) "identical send count" a.sent b.sent;
  Alcotest.(check int) "identical delivery count" a.delivered b.delivered;
  Alcotest.(check (list int)) "identical latencies"
    (Oracle.latencies_us a.oracle) (Oracle.latencies_us b.oracle);
  Alcotest.(check string) "identical oracle report"
    (Oracle.report a.oracle a.violations) (Oracle.report b.oracle b.violations)

let suite =
  [
    Alcotest.test_case "randomized churn fuzz (8 seeds)" `Slow test_fuzz;
    Alcotest.test_case "randomized churn fuzz with loss (4 seeds)" `Slow test_fuzz_lossy;
    Alcotest.test_case "nemesis scenarios (3 seeds)" `Slow test_nemesis_scenarios;
    Alcotest.test_case "nemesis determinism" `Slow test_nemesis_determinism;
  ]
