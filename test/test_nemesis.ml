(* Unit tests for the fault-injection layer itself: the per-link
   network adversary (asymmetric loss, delay/jitter, duplication,
   reordering, bursty loss, bandwidth degradation) and the nemesis plan
   language (generation invariants, determinism, installation). *)

module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Nemesis = Vsync_sim.Nemesis

let mknet ?(sites = 3) ?(seed = 7L) () =
  let e = Engine.create ~seed () in
  let n = Net.create e Net.default_config ~sites in
  (e, n)

(* Fire [count] packets down [src]->[dst] and count arrivals. *)
let volley e n ~src ~dst count =
  let arrived = ref 0 in
  for _ = 1 to count do
    Net.send n ~src ~dst ~bytes:100 (fun () -> incr arrived)
  done;
  Engine.run ~until:(Engine.now e + 60_000_000) e;
  !arrived

let test_link_loss_is_directional () =
  let e, n = mknet () in
  Net.set_link_loss n ~src:0 ~dst:1 1.0;
  Alcotest.(check int) "0->1 fully lossy" 0 (volley e n ~src:0 ~dst:1 50);
  Alcotest.(check int) "1->0 untouched" 50 (volley e n ~src:1 ~dst:0 50);
  Alcotest.(check int) "0->2 untouched" 50 (volley e n ~src:0 ~dst:2 50);
  Net.clear_link n ~src:0 ~dst:1;
  Alcotest.(check int) "cleared link recovers" 50 (volley e n ~src:0 ~dst:1 50)

let test_link_delay_and_bandwidth () =
  let e, n = mknet () in
  let arrival ~src ~dst =
    let at = ref 0 in
    let start = Engine.now e in
    Net.send n ~src ~dst ~bytes:1000 (fun () -> at := Engine.now e - start);
    Engine.run ~until:(Engine.now e + 60_000_000) e;
    !at
  in
  let clean = arrival ~src:0 ~dst:1 in
  Net.set_link_delay n ~src:0 ~dst:1 ~extra_us:250_000 ~jitter_us:0;
  let slowed = arrival ~src:0 ~dst:1 in
  Alcotest.(check bool) "extra latency applied" true (slowed >= clean + 250_000);
  Alcotest.(check bool) "reverse direction clean" true (arrival ~src:1 ~dst:0 < clean + 250_000);
  Net.clear_link n ~src:0 ~dst:1;
  Net.set_link_bandwidth_factor n ~src:0 ~dst:1 50.0;
  let degraded = arrival ~src:0 ~dst:1 in
  Alcotest.(check bool) "bandwidth degradation slows serialization" true (degraded > clean)

let test_link_dup_and_reorder_counters () =
  let e, n = mknet () in
  Net.set_link_dup n ~src:0 ~dst:1 1.0;
  let got = volley e n ~src:0 ~dst:1 20 in
  Alcotest.(check bool) "duplicates delivered" true (got > 20);
  Alcotest.(check bool) "duplication counted" true (Net.packets_duplicated n >= 20);
  Net.clear_link n ~src:0 ~dst:1;
  Net.set_link_reorder n ~src:0 ~dst:1 1.0;
  let got = volley e n ~src:0 ~dst:1 20 in
  Alcotest.(check int) "detours still deliver" 20 got;
  Alcotest.(check bool) "reordering counted" true (Net.packets_reordered n >= 20)

let test_link_burst_loses_in_bursts () =
  (* A chain that is perfect in the good state and total in the bad
     state: arrivals and losses must both occur, and the loss pattern
     must replay identically from the same seed. *)
  let burst = { Net.p_enter = 0.2; p_exit = 0.3; loss_good = 0.0; loss_bad = 1.0 } in
  let run seed =
    let e, n = mknet ~seed () in
    Net.set_link_burst n ~src:0 ~dst:1 burst;
    let pattern = ref [] in
    for i = 1 to 200 do
      Net.send n ~src:0 ~dst:1 ~bytes:100 (fun () -> pattern := i :: !pattern)
    done;
    Engine.run ~until:(Engine.now e + 60_000_000) e;
    List.rev !pattern
  in
  let a = run 7L in
  Alcotest.(check bool) "some packets arrive" true (List.length a > 0);
  Alcotest.(check bool) "some packets drop" true (List.length a < 200);
  Alcotest.(check (list int)) "loss pattern replays from the seed" a (run 7L)

let test_random_plan_shape () =
  List.iter
    (fun seed ->
      let horizon = 10_000_000 in
      let plan = Nemesis.random_plan ~seed ~sites:4 ~horizon_us:horizon ~intensity:0.8 () in
      Alcotest.(check bool) "plan is non-empty at high intensity" true (plan <> []);
      List.iter
        (fun { Nemesis.at; _ } ->
          Alcotest.(check bool) "event inside the horizon" true (at >= 0 && at <= horizon))
        plan;
      let rec chrono = function
        | a :: (b :: _ as rest) -> a.Nemesis.at <= b.Nemesis.at && chrono rest
        | _ -> true
      in
      Alcotest.(check bool) "events are chronological" true (chrono plan);
      (* The tail is clean: the last events heal and clear every fault. *)
      let ops = List.map (fun ev -> ev.Nemesis.op) plan in
      Alcotest.(check bool) "plan ends with a safety net" true
        (List.mem Nemesis.Heal ops && List.mem Nemesis.Clear_faults ops);
      (* Site 0 is protected; crashes pair with restarts. *)
      let crashes = List.filter_map (function Nemesis.Crash_site s -> Some s | _ -> None) ops in
      let restarts = List.filter_map (function Nemesis.Restart_site s -> Some s | _ -> None) ops in
      Alcotest.(check bool) "site 0 never crashed" false (List.mem 0 crashes);
      Alcotest.(check (list int)) "every crash is paired with a restart"
        (List.sort compare crashes) (List.sort compare restarts);
      (* Determinism: the same seed reproduces the plan verbatim. *)
      let again = Nemesis.random_plan ~seed ~sites:4 ~horizon_us:horizon ~intensity:0.8 () in
      Alcotest.(check string) "plan generation is deterministic" (Nemesis.plan_to_string plan)
        (Nemesis.plan_to_string again))
    [ 1L; 2L; 3L; 99L; 31337L ]

let test_intensity_scales_plan () =
  let count intensity =
    List.length (Nemesis.random_plan ~seed:5L ~sites:4 ~horizon_us:20_000_000 ~intensity ())
  in
  Alcotest.(check bool) "higher intensity means more fault events" true (count 1.0 > count 0.1)

let test_install_drives_the_net () =
  (* A hand-written plan: partition at 1ms, heal at 100ms; install
     schedules both relative to now. *)
  let e, n = mknet () in
  let plan =
    [
      { Nemesis.at = 1_000; op = Nemesis.Partition ([ 0 ], [ 1; 2 ]) };
      { Nemesis.at = 100_000; op = Nemesis.Heal };
    ]
  in
  Nemesis.install n plan;
  Alcotest.(check bool) "not partitioned yet" false (Net.partitioned n 0 1);
  Engine.run ~until:(Engine.now e + 10_000) e;
  Alcotest.(check bool) "partitioned after the first event" true (Net.partitioned n 0 1);
  Alcotest.(check bool) "same-side pair unaffected" false (Net.partitioned n 1 2);
  Engine.run ~until:(Engine.now e + 200_000) e;
  Alcotest.(check bool) "healed after the second event" false (Net.partitioned n 0 1)

let test_apply_op_site_actions () =
  (* Site ops route through the pluggable actions. *)
  let _e, n = mknet () in
  let crashed = ref [] and restarted = ref [] in
  let actions =
    {
      Nemesis.crash_site = (fun s -> crashed := s :: !crashed);
      restart_site = (fun s -> restarted := s :: !restarted);
    }
  in
  Nemesis.apply_op n actions (Nemesis.Crash_site 2);
  Nemesis.apply_op n actions (Nemesis.Restart_site 2);
  Alcotest.(check (list int)) "crash routed" [ 2 ] !crashed;
  Alcotest.(check (list int)) "restart routed" [ 2 ] !restarted;
  (* The default actions flip the net's notion of up/down. *)
  Nemesis.apply_op n (Nemesis.net_actions n) (Nemesis.Crash_site 1);
  Alcotest.(check bool) "net actions took the site down" false (Net.site_up n 1);
  Nemesis.apply_op n (Nemesis.net_actions n) (Nemesis.Restart_site 1);
  Alcotest.(check bool) "net actions brought the site back" true (Net.site_up n 1)

let test_wire_faults_oracle_clean () =
  (* End-to-end: with frame coalescing and delayed acks ON (the
     defaults), link loss, duplication, reordering and global loss must
     neither break the virtual-synchrony oracle nor strand traffic. *)
  let module Scenario = Vsync_core.Scenario in
  List.iter
    (fun (seed, op) ->
      let plan =
        [ { Nemesis.at = 0; op }; { Nemesis.at = 2_500_000; op = Nemesis.Clear_faults } ]
      in
      let r =
        match Scenario.run ~sites:3 ~horizon_us:3_000_000 ~settle_us:20_000_000 ~plan ~seed () with
        | Ok r -> r
        | Error e -> Alcotest.failf "seed %Ld: scenario setup failed: %s" seed e
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %Ld: oracle clean under the fault" seed)
        0
        (List.length r.Scenario.violations);
      Alcotest.(check bool) (Printf.sprintf "seed %Ld: traffic flowed" seed) true
        (r.Scenario.delivered > 0))
    [
      (201L, Nemesis.Link_loss { src = 1; dst = 2; p = 0.4 });
      (202L, Nemesis.Dup_window { src = 2; dst = 0; p = 1.0 });
      (203L, Nemesis.Reorder_window { src = 0; dst = 1; p = 0.7; span_us = 40_000 });
      (204L, Nemesis.Set_loss 0.2);
    ]

let suite =
  [
    Alcotest.test_case "link loss is directional" `Quick test_link_loss_is_directional;
    Alcotest.test_case "link delay and bandwidth" `Quick test_link_delay_and_bandwidth;
    Alcotest.test_case "link dup and reorder counters" `Quick test_link_dup_and_reorder_counters;
    Alcotest.test_case "bursty loss replays from seed" `Quick test_link_burst_loses_in_bursts;
    Alcotest.test_case "random plan shape (5 seeds)" `Quick test_random_plan_shape;
    Alcotest.test_case "intensity scales the plan" `Quick test_intensity_scales_plan;
    Alcotest.test_case "install drives the net" `Quick test_install_drives_the_net;
    Alcotest.test_case "apply_op site actions" `Quick test_apply_op_site_actions;
    Alcotest.test_case "wire faults: oracle clean with coalescing on" `Quick
      test_wire_faults_oracle_clean;
  ]
