(* Unit and property tests for the utility library: PRNG, heap, vector
   clocks, statistics. *)

module Rng = Vsync_util.Rng
module Heap = Vsync_util.Heap
module Vclock = Vsync_util.Vclock
module Stats = Vsync_util.Stats
module Seqtrack = Vsync_util.Seqtrack
module Deque = Vsync_util.Deque

(* --- rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let w = Rng.int_in r 5 9 in
    Alcotest.(check bool) "int_in inclusive" true (w >= 5 && w <= 9);
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create 9L in
  let child = Rng.split parent in
  (* The child stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Rng.bits64 parent) (Rng.bits64 child)) then differs := true
  done;
  Alcotest.(check bool) "split produces a distinct stream" true !differs

let test_rng_bernoulli_extremes () =
  let r = Rng.create 3L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0)

let test_rng_shuffle_permutation () =
  let r = Rng.create 11L in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (list int)) "shuffle is a permutation" (List.init 20 Fun.id) (Array.to_list sorted)

(* --- heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc = match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "pops in sorted order" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_stability () =
  (* Equal keys leave in insertion order. *)
  let h = Heap.create ~compare:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let pops = List.init 4 (fun _ -> snd (Heap.pop_exn h)) in
  Alcotest.(check (list string)) "stable among equals" [ "z"; "a"; "b"; "c" ] pops

let test_heap_remove_if () =
  let h = Heap.create ~compare:Int.compare in
  List.iter (Heap.push h) [ 1; 2; 3; 4; 5; 6 ];
  let removed = Heap.remove_if h (fun v -> v mod 2 = 0) in
  Alcotest.(check int) "removed evens" 3 removed;
  let rec drain acc = match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "odds remain sorted" [ 1; 3; 5 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~compare:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~compare:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc in
      drain [] = List.sort compare xs)

(* --- ring --- *)

let test_ring () =
  let r = Vsync_util.Ring.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Vsync_util.Ring.length r);
  List.iter (Vsync_util.Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "fills in order" [ 1; 2; 3 ] (Vsync_util.Ring.to_list r);
  Vsync_util.Ring.push r 4;
  Vsync_util.Ring.push r 5;
  Alcotest.(check (list int)) "keeps the newest" [ 3; 4; 5 ] (Vsync_util.Ring.to_list r);
  Alcotest.(check int) "eviction counted" 2 (Vsync_util.Ring.evicted r);
  Vsync_util.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Vsync_util.Ring.length r)

let prop_ring_tail =
  QCheck.Test.make ~name:"ring keeps exactly the tail" ~count:200
    QCheck.(pair (1 -- 8) (list int))
    (fun (cap, xs) ->
      let r = Vsync_util.Ring.create ~capacity:cap in
      List.iter (Vsync_util.Ring.push r) xs;
      let n = List.length xs in
      let expected =
        if n <= cap then xs else List.filteri (fun i _ -> i >= n - cap) xs
      in
      Vsync_util.Ring.to_list r = expected)

(* --- vclock --- *)

let test_vclock_basics () =
  let a = Vclock.create 3 in
  Vclock.incr a 0;
  Vclock.incr a 0;
  Vclock.incr a 2;
  Alcotest.(check (list int)) "components" [ 2; 0; 1 ] (Vclock.to_list a);
  let b = Vclock.copy a in
  Vclock.incr b 1;
  Alcotest.(check bool) "a <= b" true (Vclock.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vclock.leq b a);
  Alcotest.(check bool) "a before b" true (Vclock.compare_causal a b = `Before)

let test_vclock_concurrent () =
  let a = Vclock.of_list [ 1; 0 ] and b = Vclock.of_list [ 0; 1 ] in
  Alcotest.(check bool) "concurrent" true (Vclock.compare_causal a b = `Concurrent)

let test_vclock_deliverable () =
  (* Local [2;1;0]; a message from rank 0 stamped [3;1;0] is next. *)
  let local = Vclock.of_list [ 2; 1; 0 ] in
  Alcotest.(check bool) "next in sequence" true
    (Vclock.deliverable ~msg:(Vclock.of_list [ 3; 1; 0 ]) ~local ~sender:0);
  Alcotest.(check bool) "gap" false
    (Vclock.deliverable ~msg:(Vclock.of_list [ 4; 1; 0 ]) ~local ~sender:0);
  Alcotest.(check bool) "missing causal predecessor" false
    (Vclock.deliverable ~msg:(Vclock.of_list [ 3; 2; 0 ]) ~local ~sender:0)

let test_vclock_merge () =
  let a = Vclock.of_list [ 1; 5; 2 ] in
  Vclock.merge a (Vclock.of_list [ 3; 1; 2 ]);
  Alcotest.(check (list int)) "component-wise max" [ 3; 5; 2 ] (Vclock.to_list a)

let test_vclock_dim_mismatch () =
  Alcotest.check_raises "merge mismatched dims"
    (Invalid_argument "Vclock.merge: dimension mismatch (2 vs 3)") (fun () ->
      Vclock.merge (Vclock.create 2) (Vclock.create 3))

let prop_vclock_leq_partial_order =
  QCheck.Test.make ~name:"vclock leq is a partial order" ~count:200
    QCheck.(triple (list_of_size (Gen.return 4) (0 -- 5)) (list_of_size (Gen.return 4) (0 -- 5))
              (list_of_size (Gen.return 4) (0 -- 5)))
    (fun (x, y, z) ->
      let a = Vclock.of_list x and b = Vclock.of_list y and c = Vclock.of_list z in
      (* reflexive, antisymmetric (up to equality), transitive *)
      Vclock.leq a a
      && ((not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)
      && ((not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c))

(* --- seqtrack --- *)

let test_seqtrack_basics () =
  let t = Seqtrack.create () in
  Alcotest.(check bool) "fresh key unseen" false (Seqtrack.mem t ~key:1 ~seq:1);
  Seqtrack.add t ~key:1 ~seq:3;
  Alcotest.(check bool) "added" true (Seqtrack.mem t ~key:1 ~seq:3);
  Alcotest.(check bool) "gap below stays unseen" false (Seqtrack.mem t ~key:1 ~seq:2);
  Alcotest.(check bool) "other key independent" false (Seqtrack.mem t ~key:2 ~seq:3);
  Alcotest.(check int) "sparse entry counted" 1 (Seqtrack.tail_cardinal t)

let test_seqtrack_compaction () =
  (* Sparse adds stay in the tail until the run touching mark+1 becomes
     dense, then the whole run collapses into the watermark. *)
  let t = Seqtrack.create () in
  List.iter (fun s -> Seqtrack.add t ~key:7 ~seq:s) [ 2; 4; 5 ];
  Alcotest.(check int) "all sparse" 3 (Seqtrack.tail_cardinal t);
  Seqtrack.advance t ~key:7 ~upto:1;
  Alcotest.(check int) "2 absorbed by mark=1" 2 (Seqtrack.tail_cardinal t);
  Alcotest.(check int) "mark compacted through 2" 2 (Seqtrack.mark t ~key:7);
  Seqtrack.add t ~key:7 ~seq:3;
  Alcotest.(check int) "3,4,5 collapse" 0 (Seqtrack.tail_cardinal t);
  Alcotest.(check int) "mark at 5" 5 (Seqtrack.mark t ~key:7);
  List.iter
    (fun s -> Alcotest.(check bool) "prefix covered" true (Seqtrack.mem t ~key:7 ~seq:s))
    [ 2; 3; 4; 5 ]

let test_seqtrack_advance () =
  let t = Seqtrack.create () in
  List.iter (fun s -> Seqtrack.add t ~key:3 ~seq:s) [ 10; 20; 30 ];
  Seqtrack.advance t ~key:3 ~upto:25;
  Alcotest.(check int) "tail above watermark survives" 1 (Seqtrack.tail_cardinal t);
  Alcotest.(check bool) "below watermark is mem" true (Seqtrack.mem t ~key:3 ~seq:15);
  Alcotest.(check bool) "surviving tail is mem" true (Seqtrack.mem t ~key:3 ~seq:30);
  Alcotest.(check bool) "gap above watermark not mem" false (Seqtrack.mem t ~key:3 ~seq:27);
  (* advance never regresses *)
  Seqtrack.advance t ~key:3 ~upto:5;
  Alcotest.(check int) "mark monotone" 25 (Seqtrack.mark t ~key:3)

let prop_seqtrack_matches_set =
  (* Random interleavings of add/advance against a reference model:
     mem(s) iff s was added or covered by an advance. *)
  QCheck.Test.make ~name:"seqtrack mem matches reference set" ~count:300
    QCheck.(list (pair bool (0 -- 60)))
    (fun ops ->
      let t = Seqtrack.create () in
      let added = Hashtbl.create 16 in
      let hi = ref min_int in
      List.iter
        (fun (is_advance, s) ->
          if is_advance then begin
            Seqtrack.advance t ~key:0 ~upto:s;
            if s > !hi then hi := s
          end
          else begin
            Seqtrack.add t ~key:0 ~seq:s;
            Hashtbl.replace added s ()
          end)
        ops;
      List.for_all
        (fun s ->
          Seqtrack.mem t ~key:0 ~seq:s = (s <= !hi || Hashtbl.mem added s))
        (List.init 62 Fun.id))

(* --- deque --- *)

let test_deque () =
  let d = Deque.empty in
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  let d = List.fold_left Deque.push_back d [ 3; 4; 5 ] in
  let d = Deque.prepend [ 1; 2 ] d in
  Alcotest.(check (list int)) "prepend ahead of pushes" [ 1; 2; 3; 4; 5 ] (Deque.to_list d);
  Alcotest.(check int) "length" 5 (Deque.length d);
  Alcotest.(check bool) "exists" true (Deque.exists (fun x -> x = 4) d);
  Alcotest.(check bool) "not exists" false (Deque.exists (fun x -> x = 9) d);
  Alcotest.(check (list int)) "of_list round-trips" [ 7; 8 ] (Deque.to_list (Deque.of_list [ 7; 8 ]))

(* --- stats --- *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.Summary.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.Summary.percentile s 100.0)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.add c "a" 2;
  Stats.Counter.incr c "b";
  Alcotest.(check int) "a" 3 (Stats.Counter.get c "a");
  Alcotest.(check int) "missing" 0 (Stats.Counter.get c "zzz");
  let snap = Stats.Counter.snapshot c in
  Stats.Counter.add c "a" 4;
  Stats.Counter.incr c "c";
  Alcotest.(check (list (pair string int))) "diff" [ ("a", 4); ("c", 1) ]
    (Stats.Counter.diff c snap)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bernoulli extremes" `Quick test_rng_bernoulli_extremes;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap stability" `Quick test_heap_stability;
    Alcotest.test_case "heap remove_if" `Quick test_heap_remove_if;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "ring buffer" `Quick test_ring;
    QCheck_alcotest.to_alcotest prop_ring_tail;
    Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
    Alcotest.test_case "vclock concurrent" `Quick test_vclock_concurrent;
    Alcotest.test_case "vclock deliverable" `Quick test_vclock_deliverable;
    Alcotest.test_case "vclock merge" `Quick test_vclock_merge;
    Alcotest.test_case "vclock dim mismatch" `Quick test_vclock_dim_mismatch;
    QCheck_alcotest.to_alcotest prop_vclock_leq_partial_order;
    Alcotest.test_case "seqtrack basics" `Quick test_seqtrack_basics;
    Alcotest.test_case "seqtrack compaction" `Quick test_seqtrack_compaction;
    Alcotest.test_case "seqtrack advance" `Quick test_seqtrack_advance;
    QCheck_alcotest.to_alcotest prop_seqtrack_matches_set;
    Alcotest.test_case "deque" `Quick test_deque;
    Alcotest.test_case "summary stats" `Quick test_summary;
    Alcotest.test_case "counters" `Quick test_counter;
  ]
