(* The execution-backend seam: the identical protocol stack runs on the
   deterministic simulator and on the wall-clock driver.

   - Conformance: one fixed scenario (3-site ABCAST group, three
     concurrent senders) on both backends.  On the simulator the run is
     bit-deterministic, so two executions must produce the same
     delivery sequence.  On the wall clock nothing is deterministic —
     the checks are order-relaxed: everything delivered, per-sender
     FIFO, and the totally-ordered primitive still totally orders.

   - Isolation: two simulations run concurrently on separate domains
     must produce exactly the digests they produce sequentially — the
     proof that no shared mutable state (interner, pools, registries,
     uid counters) leaks between domains. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

let e_app = Entry.user 0

let msg_with_tag tag =
  let m = Message.create () in
  Message.set_int m "tag" tag;
  m

let tag_of m = Option.get (Message.get_int m "tag")

(* The fixed scenario: 3 sites, one member each, each member sends 10
   tagged ABCAST multicasts; returns each member's delivery log (tags,
   delivery order).  Drives everything through [run_cond] so the same
   code works on either backend. *)
let run_scenario backend =
  let w = World.create ~backend ~seed:77L ~sites:3 () in
  let p0 = World.proc w ~site:0 ~name:"m0" in
  let p1 = World.proc w ~site:1 ~name:"m1" in
  let p2 = World.proc w ~site:2 ~name:"m2" in
  let procs = [| p0; p1; p2 |] in
  let gid = ref None in
  World.run_task w p0 (fun () -> gid := Some (Runtime.pg_create p0 "seam"));
  let formed = World.run_cond ~timeout_us:20_000_000 w (fun () -> !gid <> None) in
  Alcotest.(check bool) "group created" true formed;
  let gid = Option.get !gid in
  let joined = ref 0 in
  let join p =
    World.run_task w p (fun () ->
        match Runtime.pg_lookup p "seam" with
        | Some g -> (
          match Runtime.pg_join p g ~credentials:(Message.create ()) with
          | Ok () -> incr joined
          | Error e -> Alcotest.failf "join failed: %s" e)
        | None -> Alcotest.fail "lookup failed")
  in
  join p1;
  join p2;
  let all_in = World.run_cond ~timeout_us:20_000_000 w (fun () -> !joined = 2) in
  Alcotest.(check bool) "both joined" true all_in;
  let logs = Array.make 3 [] in
  Array.iteri (fun i p -> Runtime.bind p e_app (fun m -> logs.(i) <- tag_of m :: logs.(i))) procs;
  Array.iteri
    (fun i p ->
      World.run_task w p (fun () ->
          for k = 1 to 10 do
            ignore
              (Runtime.bcast p Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app
                 (msg_with_tag ((100 * i) + k))
                 ~want:Types.No_reply)
          done))
    procs;
  let done_ =
    World.run_cond ~timeout_us:60_000_000 w (fun () ->
        Array.for_all (fun l -> List.length l = 30) logs)
  in
  Alcotest.(check bool) "all 30 messages delivered everywhere" true done_;
  Array.map List.rev logs

let sent_tags = List.concat_map (fun i -> List.init 10 (fun k -> (100 * i) + k + 1)) [ 0; 1; 2 ]

(* Order-relaxed invariants — all a wall-clock run may be asked. *)
let check_relaxed logs =
  Array.iteri
    (fun i log ->
      Alcotest.(check (list int))
        (Printf.sprintf "member %d got every message exactly once" i)
        sent_tags
        (List.sort compare log);
      (* Per-sender FIFO: each sender's tags appear in sending order. *)
      List.iter
        (fun sender ->
          let mine = List.filter (fun t -> t / 100 = sender) log in
          Alcotest.(check (list int))
            (Printf.sprintf "member %d sees sender %d in FIFO order" i sender)
            (List.init 10 (fun k -> (100 * sender) + k + 1))
            mine)
        [ 0; 1; 2 ])
    logs;
  (* ABCAST total order holds on any backend: it is a protocol
     guarantee, not a simulator artifact. *)
  Alcotest.(check (list int)) "total order agrees (0 vs 1)" logs.(0) logs.(1);
  Alcotest.(check (list int)) "total order agrees (0 vs 2)" logs.(0) logs.(2)

let test_sim_conformance () =
  let logs = run_scenario World.Sim in
  check_relaxed logs;
  (* Determinism on top: an identical second run reproduces the exact
     delivery sequence. *)
  let logs' = run_scenario World.Sim in
  Array.iteri
    (fun i log ->
      Alcotest.(check (list int)) (Printf.sprintf "member %d sequence reproduced" i) log logs'.(i))
    logs

let test_wall_conformance () =
  let logs = run_scenario (World.Wall Vsync_backend.Wallclock.default_config) in
  check_relaxed logs

(* Digest of a seeded nemesis scenario, for the isolation test. *)
let scenario_digest seed =
  match Scenario.run ~seed ~intensity:0.5 () with
  | Ok r ->
    Alcotest.(check int)
      (Printf.sprintf "seed %Ld oracle-clean" seed)
      0
      (List.length r.Scenario.violations);
    (Oracle.history_digest r.Scenario.oracle, r.Scenario.sent, r.Scenario.delivered)
  | Error e -> Alcotest.failf "scenario setup failed for seed %Ld: %s" seed e

let test_parallel_digest_equality () =
  let seeds = [| 9001L; 9002L |] in
  let sequential = Array.map scenario_digest seeds in
  let parallel = Vsync_parallel.Pool.map ~jobs:2 scenario_digest seeds in
  Array.iteri
    (fun i (digest, sent, delivered) ->
      let pd, ps, pdel = parallel.(i) in
      Alcotest.(check string)
        (Printf.sprintf "seed %Ld digest identical under domain parallelism" seeds.(i))
        digest pd;
      Alcotest.(check int) "sent identical" sent ps;
      Alcotest.(check int) "delivered identical" delivered pdel)
    sequential

let suite =
  [
    Alcotest.test_case "seam: fixed scenario on simulator (deterministic)" `Quick
      test_sim_conformance;
    Alcotest.test_case "seam: same scenario on wall clock (order-relaxed)" `Quick
      test_wall_conformance;
    Alcotest.test_case "parallel: per-seed digests equal sequential" `Slow
      test_parallel_digest_equality;
  ]
