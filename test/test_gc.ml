(* Stability-driven state GC.

   The delivery engines replace "set of every uid ever seen" with
   per-origin-site watermarks advanced on message stability
   (Seqtrack).  These tests pin the contract down at three levels:

   - engine: a duplicate of an already-stabilized multicast (replayed
     {e after} the watermark advanced past it) is still suppressed;
   - runtime: with [stability_gc] the dedup residue and the
     retransmission store drain to zero at quiescence, without it the
     residue grows with traffic (the historical behaviour);
   - system: a duplication/delay-heavy nemesis sweep must show no
     double delivery and clean hygiene at every site (the oracle
     checks both). *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Nemesis = Vsync_sim.Nemesis
module Types = Vsync_core.Types

let e_app = Entry.user 0
let uid usite useq = { Types.usite; useq }

(* --- engine level ---------------------------------------------------- *)

let test_causal_replay_after_stabilize () =
  let sender : int Causal.t = Causal.create ~n_ranks:1 () in
  let recv : int Causal.t = Causal.create ~n_ranks:1 () in
  let send k =
    let vt = Causal.stamp sender ~rank:0 in
    let u = uid 1 k in
    Causal.receive recv ~uid:u ~rank:0 ~vt k;
    (u, vt)
  in
  let sent = List.map send [ 1; 2; 3 ] in
  Alcotest.(check int) "all delivered" 3 (List.length (Causal.drain recv));
  (* Stability of the newest message covers the whole prefix. *)
  Causal.stabilized recv (uid 1 3);
  Alcotest.(check int) "dedup residue collected" 0 (Causal.dedup_residue recv);
  (* Late retransmits of collected messages must still be recognized. *)
  List.iter
    (fun (u, vt) ->
      Alcotest.(check bool) "still seen" true (Causal.seen recv u);
      Causal.receive recv ~uid:u ~rank:0 ~vt u.Types.useq)
    sent;
  Alcotest.(check int) "replays suppressed" 0 (List.length (Causal.drain recv));
  (* Fresh traffic still flows. *)
  let u4, vt4 = send 4 in
  ignore vt4;
  Alcotest.(check int) "new message delivered" 1 (List.length (Causal.drain recv));
  Alcotest.(check bool) "new message seen" true (Causal.seen recv u4)

let test_causal_fifo_replay_after_stabilize () =
  let recv : int Causal.t = Causal.create ~n_ranks:2 () in
  List.iter (fun k -> Causal.receive_fifo recv ~uid:(uid 2 k) k) [ 10; 11; 12 ];
  Alcotest.(check int) "all delivered" 3 (List.length (Causal.drain recv));
  Causal.stabilized recv (uid 2 12);
  List.iter (fun k -> Causal.receive_fifo recv ~uid:(uid 2 k) k) [ 10; 11; 12 ];
  Alcotest.(check int) "replays suppressed" 0 (List.length (Causal.drain recv));
  Alcotest.(check int) "residue empty" 0 (Causal.dedup_residue recv)

let test_total_replay_after_stabilize () =
  let t : int Total.t = Total.create ~site:0 () in
  let deliver u =
    let p = Total.intake t ~uid:u u.Types.useq in
    Total.commit t ~uid:u p;
    Total.drain t
  in
  Alcotest.(check int) "m1 delivered" 1 (List.length (deliver (uid 1 1)));
  Alcotest.(check int) "m2 delivered" 1 (List.length (deliver (uid 1 2)));
  Total.stabilized t (uid 1 2);
  Alcotest.(check int) "residue collected" 0 (Total.dedup_residue t);
  (* Replayed intake: recognized as delivered — no re-buffering, the
     returned priority is harmless. *)
  ignore (Total.intake t ~uid:(uid 1 1) 1);
  Alcotest.(check bool) "still seen" true (Total.seen t (uid 1 1));
  Alcotest.(check int) "no resurrected entry" 0 (List.length (Total.pending t));
  (* Replayed commit: no-op. *)
  Total.commit t ~uid:(uid 1 1) (1, 0);
  Alcotest.(check int) "replay delivers nothing" 0 (List.length (Total.drain t));
  (* Fresh traffic still flows. *)
  Alcotest.(check int) "new message delivered" 1 (List.length (deliver (uid 1 3)))

let test_total_commit_precedence () =
  (* A commit for a message still buffered must land even though a
     watermark advance (driven by a different, later uid of the same
     origin site) has raced past nothing — entries always win over the
     delivered check. *)
  let t : int Total.t = Total.create ~site:0 () in
  let u = uid 3 7 in
  let p = Total.intake t ~uid:u 7 in
  Total.commit t ~uid:u p;
  Alcotest.(check int) "committed entry delivers" 1 (List.length (Total.drain t))

(* --- runtime level --------------------------------------------------- *)

let form ?(seed = 41L) ?runtime_config ~sites () =
  let w = World.create ~seed ?runtime_config ~sites () in
  let members = Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "g%d" s)) in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "gc"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "gc");
        ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
  done;
  World.run w;
  (w, members, gid)

let flood w members gid n =
  Array.iter (fun m -> Runtime.bind m e_app (fun _ -> ())) members;
  World.run_task w members.(0) (fun () ->
      for k = 1 to n do
        let m = Message.create () in
        Message.set_int m "k" k;
        let mode = if k mod 4 = 0 then Types.Abcast else Types.Cbcast in
        ignore (Runtime.bcast members.(0) mode ~dest:(Addr.Group gid) ~entry:e_app m ~want:Types.No_reply)
      done);
  World.run w

let sum_gauge w f =
  let acc = ref 0 in
  for s = 0 to World.n_sites w - 1 do
    acc := !acc + f (World.runtime w s)
  done;
  !acc

let test_runtime_drains_with_gc () =
  let w, members, gid = form ~sites:3 () in
  flood w members gid 60;
  Alcotest.(check int) "dedup residue drains" 0 (sum_gauge w Runtime.dedup_residue);
  Alcotest.(check int) "store drains" 0 (sum_gauge w Runtime.pending_store);
  Alcotest.(check int) "unstables drain" 0 (sum_gauge w Runtime.pending_unstable)

let test_runtime_accretes_without_gc () =
  (* The historical behaviour, kept behind [stability_gc = false]: the
     dedup records of every multicast the view carried stay resident. *)
  let runtime_config = { Runtime.default_config with Runtime.stability_gc = false } in
  let w, members, gid = form ~runtime_config ~sites:3 () in
  flood w members gid 60;
  Alcotest.(check bool)
    "dedup records accrete" true
    (sum_gauge w Runtime.dedup_residue > 60);
  (* The store still drains: its GC predates the watermarks. *)
  Alcotest.(check int) "store drains regardless" 0 (sum_gauge w Runtime.pending_store)

let test_local_group_bounded () =
  (* A purely local group has no [Stable] flow; origination must GC its
     own round immediately. *)
  let w = World.create ~seed:43L ~sites:1 () in
  let p = World.proc w ~site:0 ~name:"solo" in
  let gid = ref None in
  World.run_task w p (fun () -> gid := Some (Runtime.pg_create p "solo"));
  World.run w;
  let gid = Option.get !gid in
  Runtime.bind p e_app (fun _ -> ());
  World.run_task w p (fun () ->
      for _ = 1 to 50 do
        ignore
          (Runtime.bcast p Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app (Message.create ())
             ~want:Types.No_reply)
      done);
  World.run w;
  Alcotest.(check int) "no store residue" 0 (Runtime.pending_store (World.runtime w 0));
  Alcotest.(check int) "no dedup residue" 0 (Runtime.dedup_residue (World.runtime w 0))

(* --- system level: duplication/delay-heavy nemesis sweep ------------- *)

(* Every inter-site link duplicates aggressively while a couple of slow,
   jittery links delay the copies — replayed frames arrive long after
   the original stabilized and its dedup record was collected.  The
   oracle demands exactly-once delivery and clean hygiene (including
   zero [dedup_residue] / [pending_store]) at every site. *)
let dup_heavy_plan ~sites ~horizon_us =
  let ev at op = { Nemesis.at; op } in
  let ops = ref [] in
  for src = 0 to sites - 1 do
    for dst = 0 to sites - 1 do
      if src <> dst then begin
        ops := ev 100_000 (Nemesis.Dup_window { src; dst; p = 0.5 }) :: !ops;
        if (src + dst) mod 2 = 0 then
          ops :=
            ev 200_000
              (Nemesis.Degrade_link { src; dst; bw_factor = 1.0; extra_us = 40_000; jitter_us = 30_000 })
            :: !ops
      end
    done
  done;
  ops := ev (horizon_us * 85 / 100) Nemesis.Clear_faults :: !ops;
  List.sort (fun a b -> compare a.Nemesis.at b.Nemesis.at) !ops

let test_dup_sweep () =
  let horizon_us = 8_000_000 in
  List.iter
    (fun seed ->
      let plan = dup_heavy_plan ~sites:4 ~horizon_us in
      let r =
        match Scenario.run ~sites:4 ~horizon_us ~plan ~seed () with
        | Ok r -> r
        | Error e -> Alcotest.failf "seed %Ld: scenario setup failed: %s" seed e
      in
      if r.Scenario.violations <> [] then
        Alcotest.failf "seed %Ld: %s" seed (Oracle.report r.Scenario.oracle r.Scenario.violations);
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: traffic flowed" seed)
        true (r.Scenario.delivered > 0))
    [ 71L; 72L; 73L; 74L; 75L; 76L; 77L; 78L ]

let suite =
  [
    Alcotest.test_case "causal: replay after stabilize suppressed" `Quick
      test_causal_replay_after_stabilize;
    Alcotest.test_case "causal: fifo replay after stabilize suppressed" `Quick
      test_causal_fifo_replay_after_stabilize;
    Alcotest.test_case "total: replay after stabilize suppressed" `Quick
      test_total_replay_after_stabilize;
    Alcotest.test_case "total: commit precedence over watermark" `Quick
      test_total_commit_precedence;
    Alcotest.test_case "runtime: state drains at quiescence" `Quick test_runtime_drains_with_gc;
    Alcotest.test_case "runtime: accretes with stability_gc off" `Quick
      test_runtime_accretes_without_gc;
    Alcotest.test_case "runtime: local-only group stays bounded" `Quick test_local_group_bounded;
    Alcotest.test_case "nemesis: dup/delay-heavy sweep, exactly-once + hygiene" `Slow
      test_dup_sweep;
  ]
