(* Model-based property tests: the ordering engines against reference
   models, under randomized interleavings. *)

open Vsync_core
open Types
module Vclock = Vsync_util.Vclock
module Message = Vsync_msg.Message

let uid ~site ~seq = { usite = site; useq = seq }

(* --- ABCAST agreement: arbitrary arrival interleavings at K engines
   must produce the identical delivery order once every message is
   committed with the max-of-proposals rule. --- *)

let prop_total_agreement =
  QCheck.Test.make ~name:"abcast engines agree under any interleaving" ~count:150
    QCheck.(pair (2 -- 4) (list_of_size (Gen.int_range 1 12) (0 -- 1000)))
    (fun (n_engines, tags) ->
      let msgs = List.mapi (fun i tag -> (uid ~site:100 ~seq:i, tag)) tags in
      let engines = Array.init n_engines (fun site -> Total.create ~site ()) in
      (* Each engine intakes the messages in a site-specific pseudo-random
         order. *)
      let permute k l =
        (* Deterministic permutation keyed by k: sort by a hash. *)
        List.sort
          (fun (u1, _) (u2, _) ->
            compare (Hashtbl.hash (k, u1.useq)) (Hashtbl.hash (k, u2.useq)))
          l
      in
      let proposals = Hashtbl.create 16 in
      Array.iteri
        (fun k e ->
          List.iter
            (fun (u, tag) ->
              let p = Total.intake e ~uid:u tag in
              let cur = Option.value ~default:[] (Hashtbl.find_opt proposals u.useq) in
              Hashtbl.replace proposals u.useq (p :: cur))
            (permute k msgs))
        engines;
      (* Commit with the max rule, in another arbitrary order per engine. *)
      Array.iteri
        (fun k e ->
          List.iter
            (fun (u, _) ->
              let final =
                List.fold_left prio_max (0, 0) (Hashtbl.find proposals u.useq)
              in
              Total.commit e ~uid:u final)
            (permute (k + 17) msgs))
        engines;
      let orders = Array.to_list (Array.map (fun e -> List.map (fun (_, _, p) -> p) (Total.drain e)) engines) in
      match orders with
      | first :: rest ->
        List.length first = List.length tags && List.for_all (( = ) first) rest
      | [] -> true)

(* --- CBCAST safety: deliveries never violate causal order, and once
   everything has arrived, everything is delivered. --- *)

(* Generate a random causal history: [senders] processes, each sending
   a chain of messages; before each send, the sender may "observe" the
   latest state of another sender (merging clocks), creating cross-
   sender causality. *)
let gen_history =
  QCheck.Gen.(
    pair (int_range 2 4) (list_size (int_range 1 20) (pair (int_range 0 3) (int_range 0 3))))

let build_history (n_senders, script) =
  let clocks = Array.init n_senders (fun _ -> Vclock.create n_senders) in
  let msgs = ref [] in
  let seq = ref 0 in
  List.iter
    (fun (sender, observe) ->
      let sender = sender mod n_senders and observe = observe mod n_senders in
      (* Observation = causal dependency on everything [observe] sent. *)
      if observe <> sender then Vclock.merge clocks.(sender) clocks.(observe);
      Vclock.incr clocks.(sender) sender;
      incr seq;
      msgs := (uid ~site:sender ~seq:!seq, sender, Vclock.copy clocks.(sender)) :: !msgs)
    script;
  (n_senders, List.rev !msgs)

let prop_causal_safety =
  QCheck.Test.make ~name:"cbcast engine: causal order safe + complete" ~count:200
    (QCheck.make gen_history)
    (fun input ->
      let n_senders, msgs = build_history input in
      let arrival =
        List.sort
          (fun (u1, _, _) (u2, _, _) -> compare (Hashtbl.hash u1.useq) (Hashtbl.hash u2.useq))
          msgs
      in
      let engine = Causal.create ~n_ranks:n_senders () in
      let delivered = ref [] in
      List.iter
        (fun (u, rank, vt) ->
          Causal.receive engine ~uid:u ~rank ~vt (u, vt);
          delivered := List.rev_map snd (Causal.drain engine) @ !delivered)
        arrival;
      let delivered = List.rev !delivered in
      (* Complete: everything arrives, everything is delivered. *)
      List.length delivered = List.length msgs
      &&
      (* Safe: if a's timestamp happened-before b's, a is delivered
         first. *)
      let rec pairs_ok = function
        | [] -> true
        | (_, vt_b) :: earlier ->
          List.for_all
            (fun (_, vt_a) ->
              (* vt_a delivered before vt_b: must not be that b -> a. *)
              Vclock.compare_causal vt_b vt_a <> `Before)
            earlier
          && pairs_ok earlier
      in
      pairs_ok (List.rev delivered))

(* --- Message symbol table vs a Map reference. --- *)

type op = Set of string * int | Remove of string | Check of string

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (oneof
         [
           map2 (fun k v -> Set ("k" ^ string_of_int k, v)) (int_range 0 7) int;
           map (fun k -> Remove ("k" ^ string_of_int k)) (int_range 0 7);
           map (fun k -> Check ("k" ^ string_of_int k)) (int_range 0 7);
         ]))

let prop_message_model =
  QCheck.Test.make ~name:"message table behaves like a map" ~count:300 (QCheck.make gen_ops)
    (fun ops ->
      let m = Message.create () in
      let reference = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          match op with
          | Set (k, v) ->
            Message.set_int m k v;
            Hashtbl.replace reference k v;
            true
          | Remove k ->
            Message.remove m k;
            Hashtbl.remove reference k;
            true
          | Check k -> Message.get_int m k = Hashtbl.find_opt reference k)
        ops
      (* And the codec preserves the final state. *)
      && Message.equal m (Message.decode (Message.encode m)))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_total_agreement;
    QCheck_alcotest.to_alcotest prop_causal_safety;
    QCheck_alcotest.to_alcotest prop_message_model;
  ]
