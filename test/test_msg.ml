(* Unit and property tests for the message subsystem: addresses, entry
   points, the symbol-table message and its binary codec. *)

module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

(* --- addresses --- *)

let test_addr_roundtrip () =
  let cases =
    [
      Addr.Proc (Addr.proc ~site:0 ~idx:0 ~incarnation:0);
      Addr.Proc (Addr.proc ~site:65535 ~idx:65535 ~incarnation:0xFFFFFF);
      Addr.Proc (Addr.proc ~site:3 ~idx:17 ~incarnation:2);
      Addr.Group (Addr.group_of_int 0);
      Addr.Group (Addr.group_of_int ((7 lsl 20) lor 123));
    ]
  in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Format.asprintf "roundtrip %a" Addr.pp a)
        true
        (Addr.equal a (Addr.of_int64 (Addr.to_int64 a))))
    cases

let test_addr_bad_tag () =
  Alcotest.check_raises "bad tag" (Invalid_argument "Addr.of_int64: bad tag") (fun () ->
      ignore (Addr.of_int64 0L))

let test_addr_ranges () =
  Alcotest.check_raises "site too large" (Invalid_argument "Addr.proc: site out of range")
    (fun () -> ignore (Addr.proc ~site:65536 ~idx:0 ~incarnation:0))

let test_addr_same_slot () =
  let a = Addr.proc ~site:1 ~idx:2 ~incarnation:1 in
  let b = Addr.proc ~site:1 ~idx:2 ~incarnation:9 in
  Alcotest.(check bool) "same slot, different incarnation" true (Addr.same_slot a b);
  Alcotest.(check bool) "not equal across incarnations" false (Addr.equal_proc a b)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"address int64 roundtrip" ~count:500
    QCheck.(triple (0 -- 65535) (0 -- 65535) (0 -- 0xFFFFFF))
    (fun (site, idx, incarnation) ->
      let a = Addr.Proc (Addr.proc ~site ~idx ~incarnation) in
      Addr.equal a (Addr.of_int64 (Addr.to_int64 a)))

(* --- entries --- *)

let test_entries () =
  Alcotest.(check int) "user base" 16 Entry.user_base;
  Alcotest.(check int) "user 0" 16 (Entry.user 0);
  Alcotest.check_raises "entry overflow"
    (Invalid_argument "Entry.user: entry identifiers are one byte") (fun () ->
      ignore (Entry.user 240));
  Alcotest.(check bool) "generics below user base" true (Entry.generic_recovery < Entry.user_base)

(* --- messages --- *)

let sample () =
  let m = Message.create () in
  Message.set_int m "count" 42;
  Message.set_str m "name" "twenty";
  Message.set_bool m "flag" true;
  Message.set_float m "ratio" 0.125;
  Message.set_bytes m "blob" (Bytes.of_string "\x00\x01\xfe\xff");
  Message.set_addr m "who" (Addr.Proc (Addr.proc ~site:2 ~idx:5 ~incarnation:1));
  Message.set_addrs m "them"
    [ Addr.Group (Addr.group_of_int 9); Addr.Proc (Addr.proc ~site:0 ~idx:0 ~incarnation:0) ];
  let inner = Message.create () in
  Message.set_str inner "k" "v";
  Message.set_msg m "nested" inner;
  m

let test_message_fields () =
  let m = sample () in
  Alcotest.(check (option int)) "int" (Some 42) (Message.get_int m "count");
  Alcotest.(check (option string)) "str" (Some "twenty") (Message.get_str m "name");
  Alcotest.(check (option bool)) "bool" (Some true) (Message.get_bool m "flag");
  Alcotest.(check bool) "nested" true (Message.get_msg m "nested" <> None);
  Alcotest.(check (option int)) "absent" None (Message.get_int m "nope");
  Message.remove m "count";
  Alcotest.(check (option int)) "removed" None (Message.get_int m "count");
  Alcotest.check_raises "type error" (Invalid_argument "Message: field \"name\" has unexpected type")
    (fun () -> ignore (Message.get_int m "name"))

let test_message_replace_keeps_order () =
  let m = Message.create () in
  Message.set_int m "a" 1;
  Message.set_int m "b" 2;
  Message.set_int m "a" 3;
  Alcotest.(check (list string)) "insertion order preserved on replace" [ "a"; "b" ]
    (List.map fst (Message.fields m));
  Alcotest.(check (option int)) "value replaced" (Some 3) (Message.get_int m "a")

let test_message_codec_roundtrip () =
  let m = sample () in
  let m' = Message.decode (Message.encode m) in
  Alcotest.(check bool) "roundtrip equal" true (Message.equal m m')

let test_message_size_positive () =
  let m = sample () in
  Alcotest.(check bool) "size = encoded length" true (Message.size m = Bytes.length (Message.encode m))

let test_message_copy_isolation () =
  let m = sample () in
  let c = Message.copy m in
  Message.set_int c "count" 99;
  (match Message.get_msg c "nested" with
  | Some inner -> Message.set_str inner "k" "mutated"
  | None -> Alcotest.fail "nested lost");
  Alcotest.(check (option int)) "original int unchanged" (Some 42) (Message.get_int m "count");
  match Message.get_msg m "nested" with
  | Some inner -> Alcotest.(check (option string)) "original nested unchanged" (Some "v") (Message.get_str inner "k")
  | None -> Alcotest.fail "nested lost in original"

(* --- wire-format fixtures ---
   Hex vectors committed from the encoder's output at the time the
   format was frozen.  Any representation change must keep these bytes
   identical: the simulated network's byte counts, and any persisted
   state, depend on them. *)

let to_hex b =
  String.concat ""
    (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let of_hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let fixtures =
  [
    ("empty", (fun () -> Message.create ()), "0000");
    ( "scalars",
      (fun () ->
        let m = Message.create () in
        Message.set_int m "count" 42;
        Message.set_bool m "flag" true;
        Message.set_float m "ratio" 0.125;
        Message.set_str m "name" "twenty";
        m),
      "000405636f756e7401000000000000002a04666c6167000105726174696f023fc0000000000000046e616d6503000000067477656e7479"
    );
    ( "full",
      (fun () ->
        let m = Message.create () in
        Message.set_int m "count" 42;
        Message.set_str m "name" "twenty";
        Message.set_bool m "flag" true;
        Message.set_float m "ratio" 0.125;
        Message.set_bytes m "blob" (Bytes.of_string "\x00\x01\xfe\xff");
        Message.set_addr m "who" (Addr.Proc (Addr.proc ~site:2 ~idx:5 ~incarnation:1));
        Message.set_addrs m "them"
          [ Addr.Group (Addr.group_of_int 9); Addr.Proc (Addr.proc ~site:0 ~idx:0 ~incarnation:0) ];
        let inner = Message.create () in
        Message.set_str inner "k" "v";
        Message.set_msg m "nested" inner;
        m),
      "000805636f756e7401000000000000002a046e616d6503000000067477656e747904666c6167000105726174696f023fc000000000000004626c6f6204000000040001feff0377686f050100020005000001047468656d06000202000000000000090100000000000000066e6573746564070000000a0001016b030000000176"
    );
    ( "system",
      (fun () ->
        let m = Message.create () in
        Message.set_sender m (Addr.proc ~site:1 ~idx:2 ~incarnation:3);
        Message.set_session m 77;
        Message.set_entry m Entry.user_base;
        Message.set_str m "payload" "hello";
        m),
      "0004072473656e646572050100010002000003082473657373696f6e01000000000000004d0624656e747279010000000000000010077061796c6f6164030000000568656c6c6f"
    );
    ( "mutated",
      (fun () ->
        let m = Message.create () in
        Message.set_int m "a" 1;
        Message.set_int m "b" 2;
        Message.set_int m "c" 3;
        Message.set_int m "a" 10;
        Message.remove m "b";
        Message.set_int m "b" 20;
        m),
      "0003016101000000000000000a01630100000000000000030162010000000000000014" );
  ]

let test_wire_fixtures () =
  List.iter
    (fun (name, build, hex) ->
      let m = build () in
      Alcotest.(check string) (name ^ " encodes to fixture") hex (to_hex (Message.encode m));
      let decoded = Message.decode (of_hex hex) in
      Alcotest.(check bool) (name ^ " decodes equal") true (Message.equal m decoded);
      Alcotest.(check string)
        (name ^ " re-encodes identically") hex
        (to_hex (Message.encode decoded));
      Alcotest.(check int) (name ^ " size matches") (String.length hex / 2) (Message.size m))
    fixtures

let test_set_after_remove_order () =
  (* A field removed and set again moves to the end of the message: the
     wire order is a,c,b — locked by the "mutated" fixture above and
     asserted structurally here. *)
  let m = Message.create () in
  Message.set_int m "a" 1;
  Message.set_int m "b" 2;
  Message.set_int m "c" 3;
  Message.set_int m "a" 10;
  Message.remove m "b";
  Message.set_int m "b" 20;
  Alcotest.(check (list string)) "field order" [ "a"; "c"; "b" ] (List.map fst (Message.fields m));
  Alcotest.(check (option int)) "a replaced in place" (Some 10) (Message.get_int m "a");
  Alcotest.(check (option int)) "b re-added at end" (Some 20) (Message.get_int m "b")

(* --- copy-on-write isolation --- *)

let test_cow_copy_unaffected_by_original () =
  let m = sample () in
  let c = Message.copy m in
  let before = Message.encode c in
  Message.set_int m "count" 7;
  Message.remove m "name";
  (match Message.get_msg m "nested" with
  | Some inner -> Message.set_str inner "k" "poked"
  | None -> Alcotest.fail "nested lost");
  Alcotest.(check string) "copy bytes unchanged" (to_hex before) (to_hex (Message.encode c))

let test_cow_bytes_isolation () =
  let m = Message.create () in
  Message.set_bytes m "buf" (Bytes.of_string "abcd");
  let c = Message.copy m in
  (match Message.get_bytes c "buf" with
  | Some b -> Bytes.set b 0 'X'
  | None -> Alcotest.fail "buf lost");
  Alcotest.(check (option string))
    "in-place write through the copy's handle stays in the copy" (Some "abcd")
    (Option.map Bytes.to_string (Message.get_bytes m "buf"));
  (match Message.get_bytes m "buf" with
  | Some b -> Bytes.set b 1 'Y'
  | None -> Alcotest.fail "buf lost");
  Alcotest.(check (option string))
    "and the original's writes stay out of the copy" (Some "Xbcd")
    (Option.map Bytes.to_string (Message.get_bytes c "buf"))

let test_cow_nested_isolation_both_ways () =
  let m = Message.create () in
  let inner = Message.create () in
  Message.set_str inner "k" "v";
  Message.set_msg m "inner" inner;
  let c1 = Message.copy m in
  let c2 = Message.copy c1 in
  (* Mutate every handle's nested message; none may leak. *)
  (match Message.get_msg c2 "inner" with
  | Some i -> Message.set_str i "k" "c2"
  | None -> Alcotest.fail "inner lost");
  (match Message.get_msg m "inner" with
  | Some i -> Message.set_str i "k" "m"
  | None -> Alcotest.fail "inner lost");
  let read h = Option.bind (Message.get_msg h "inner") (fun i -> Message.get_str i "k") in
  Alcotest.(check (option string)) "original" (Some "m") (read m);
  Alcotest.(check (option string)) "untouched middle copy" (Some "v") (read c1);
  Alcotest.(check (option string)) "second copy" (Some "c2") (read c2)

let test_cow_retained_nested_handle () =
  (* A nested handle obtained BEFORE the copy must not pierce it. *)
  let m = Message.create () in
  let inner = Message.create () in
  Message.set_str inner "k" "v";
  Message.set_msg m "inner" inner;
  let retained =
    match Message.get_msg m "inner" with Some i -> i | None -> Alcotest.fail "inner lost"
  in
  let c = Message.copy m in
  Message.set_str retained "k" "via-retained";
  Alcotest.(check (option string))
    "copy still sees the pre-copy value" (Some "v")
    (Option.bind (Message.get_msg c "inner") (fun i -> Message.get_str i "k"))

let test_message_system_fields () =
  let m = Message.create () in
  let p = Addr.proc ~site:1 ~idx:1 ~incarnation:1 in
  Message.set_sender m p;
  Message.set_session m 77;
  Message.set_entry m (Entry.user 3);
  Alcotest.(check bool) "sender" true (Message.sender m = Some p);
  Alcotest.(check (option int)) "session" (Some 77) (Message.session m);
  Alcotest.(check (option int)) "entry" (Some (Entry.user 3)) (Message.entry m)

let test_message_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (match Message.decode (Bytes.of_string "\xff\xff\xff\xff\x00") with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Generator for random messages (flat fields). *)
let gen_message =
  let open QCheck.Gen in
  let value =
    oneof
      [
        map (fun i -> Message.Int i) int;
        map (fun s -> Message.Str s) (string_size (0 -- 64));
        map (fun b -> Message.Bool b) bool;
        map (fun f -> Message.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Message.Bytes (Bytes.of_string s)) (string_size (0 -- 128));
      ]
  in
  let field = pair (map (fun s -> "f" ^ s) (string_size ~gen:(char_range 'a' 'z') (1 -- 8))) value in
  map
    (fun fields ->
      let m = Message.create () in
      List.iter (fun (k, v) -> Message.set m k v) fields;
      m)
    (list_size (0 -- 12) field)

let prop_message_roundtrip =
  QCheck.Test.make ~name:"message codec roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Message.pp) gen_message)
    (fun m -> Message.equal m (Message.decode (Message.encode m)))

let prop_cow_isolation =
  (* Mutating a copy never changes the original's bytes, whatever the
     message shape. *)
  QCheck.Test.make ~name:"copy-on-write isolation" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Message.pp) gen_message)
    (fun m ->
      let before = Message.encode m in
      let c = Message.copy m in
      Message.set_int c "fresh" 1;
      List.iter (fun (k, _) -> Message.set c k (Message.Int 0)) (Message.fields c);
      (match Message.fields m with (k, _) :: _ -> Message.remove c k | [] -> ());
      Bytes.equal before (Message.encode m))

let prop_size_tracks_mutation =
  (* The cached size must never go stale through set/remove/copy. *)
  QCheck.Test.make ~name:"cached size tracks mutation" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Message.pp) gen_message)
    (fun m ->
      let ok x = Message.size x = Bytes.length (Message.encode x) in
      let fresh = ok m in
      let c = Message.copy m in
      Message.set_str c "extra" "xyzzy";
      let after_set = ok c && ok m in
      (match Message.fields m with
      | (k, _) :: _ -> Message.remove m k
      | [] -> ());
      fresh && after_set && ok m)

let suite =
  [
    Alcotest.test_case "address roundtrip" `Quick test_addr_roundtrip;
    Alcotest.test_case "address bad tag" `Quick test_addr_bad_tag;
    Alcotest.test_case "address ranges" `Quick test_addr_ranges;
    Alcotest.test_case "address same slot" `Quick test_addr_same_slot;
    QCheck_alcotest.to_alcotest prop_addr_roundtrip;
    Alcotest.test_case "entries" `Quick test_entries;
    Alcotest.test_case "message fields" `Quick test_message_fields;
    Alcotest.test_case "message replace keeps order" `Quick test_message_replace_keeps_order;
    Alcotest.test_case "message codec roundtrip" `Quick test_message_codec_roundtrip;
    Alcotest.test_case "message size" `Quick test_message_size_positive;
    Alcotest.test_case "message copy isolation" `Quick test_message_copy_isolation;
    Alcotest.test_case "message system fields" `Quick test_message_system_fields;
    Alcotest.test_case "message decode garbage" `Quick test_message_decode_garbage;
    QCheck_alcotest.to_alcotest prop_message_roundtrip;
    Alcotest.test_case "wire-format fixtures" `Quick test_wire_fixtures;
    Alcotest.test_case "set after remove wire order" `Quick test_set_after_remove_order;
    Alcotest.test_case "cow copy unaffected by original" `Quick test_cow_copy_unaffected_by_original;
    Alcotest.test_case "cow bytes isolation" `Quick test_cow_bytes_isolation;
    Alcotest.test_case "cow nested isolation both ways" `Quick test_cow_nested_isolation_both_ways;
    Alcotest.test_case "cow retained nested handle" `Quick test_cow_retained_nested_handle;
    QCheck_alcotest.to_alcotest prop_cow_isolation;
    QCheck_alcotest.to_alcotest prop_size_tracks_mutation;
  ]
