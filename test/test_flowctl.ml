(* Flow control and adaptive wire tuning: per-destination credit
   budgets on the transport (replenished by cumulative acks), typed
   backpressure from the runtime to originators, and the AIMD ABCAST
   origination window.  Everything here is deterministic — fixed seeds
   on the simulator — and the 25-seed sweep at the end A/Bs the whole
   stack against the historical static tuning under the nemesis. *)

open Vsync_core
module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Endpoint = Vsync_transport.Endpoint
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Types = Vsync_core.Types

type payload = { tag : int; size : int }

let e_app = Entry.user 0

let ep_setup ?(sites = 2) ?(seed = 1L) ~config () =
  let e = Engine.create ~seed () in
  let n = Net.create e Net.default_config ~sites in
  let fab = Endpoint.fabric (Net.backend n) in
  let eps =
    Array.init sites (fun site -> Endpoint.create ~config fab ~site ~size:(fun p -> p.size) ())
  in
  (e, n, eps)

let collect ep =
  let log = ref [] in
  Endpoint.set_receiver ep (fun ~src ps -> List.iter (fun p -> log := (src, p.tag) :: !log) ps);
  log

let sink ep = Endpoint.set_receiver ep (fun ~src:_ _ -> ())

(* --- transport credits --- *)

let test_frame_credits_gate_and_replenish () =
  (* Budget of 2 frames: two messages launch, four wait; cumulative
     acks refund the budget and drain the wait queue in FIFO order. *)
  let cfg = { Endpoint.default_config with Endpoint.credit_frames = 2 } in
  let e, _n, eps = ep_setup ~config:cfg () in
  let log = collect eps.(1) in
  sink eps.(0);
  let refunds = ref 0 in
  Endpoint.set_credit_handler eps.(0) (fun _ -> incr refunds);
  for tag = 1 to 6 do
    Endpoint.send eps.(0) ~dst:1 { tag; size = 100 }
  done;
  Alcotest.(check int) "two launched, four waiting" 4 (Endpoint.credit_waiting eps.(0));
  Alcotest.(check bool) "backpressured while waiting" true (Endpoint.backpressured eps.(0) ~dst:1);
  Alcotest.(check bool) "credit charged" true (Endpoint.credit_used_bytes eps.(0) > 0);
  Engine.run ~until:10_000_000 e;
  Alcotest.(check (list (pair int int)))
    "all delivered, FIFO, exactly once"
    (List.init 6 (fun i -> (0, i + 1)))
    (List.rev !log);
  Alcotest.(check int) "wait queue drained" 0 (Endpoint.credit_waiting eps.(0));
  Alcotest.(check int) "credit fully refunded" 0 (Endpoint.credit_used_bytes eps.(0));
  Alcotest.(check bool) "backpressure released" false (Endpoint.backpressured eps.(0) ~dst:1);
  Alcotest.(check bool) "refund handler fired" true (!refunds > 0)

let test_byte_credits_exact_refund () =
  (* Byte budget that fits exactly one 124-byte-cost message: the
     second send waits until the first message's ack refunds exactly
     its cost (used drops back to zero before the second launches). *)
  let cfg = { Endpoint.default_config with Endpoint.credit_bytes = 150 } in
  let e, _n, eps = ep_setup ~config:cfg () in
  let log = collect eps.(1) in
  sink eps.(0);
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 100 };
  let used_one = Endpoint.credit_used_bytes eps.(0) in
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 100 };
  Alcotest.(check int) "second send waits" 1 (Endpoint.credit_waiting eps.(0));
  Alcotest.(check int) "budget charged for exactly one message" used_one
    (Endpoint.credit_used_bytes eps.(0));
  Engine.run ~until:10_000_000 e;
  Alcotest.(check (list (pair int int))) "both delivered in order" [ (0, 1); (0, 2) ]
    (List.rev !log);
  Alcotest.(check int) "refund is exact: zero residue" 0 (Endpoint.credit_used_bytes eps.(0))

let test_oversized_message_never_wedges () =
  (* A message bigger than the whole budget must still launch on an
     idle channel — the budget degrades to stop-and-wait, not a
     permanent wedge. *)
  let cfg = { Endpoint.default_config with Endpoint.credit_bytes = 50 } in
  let e, _n, eps = ep_setup ~config:cfg () in
  let log = collect eps.(1) in
  sink eps.(0);
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 100 };
  Alcotest.(check int) "oversized message launched, not queued" 0
    (Endpoint.credit_waiting eps.(0));
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 100 };
  Alcotest.(check int) "busy channel queues the next" 1 (Endpoint.credit_waiting eps.(0));
  Engine.run ~until:10_000_000 e;
  Alcotest.(check (list (pair int int))) "stop-and-wait delivery" [ (0, 1); (0, 2) ]
    (List.rev !log);
  Alcotest.(check int) "drained" 0 (Endpoint.credit_waiting eps.(0))

(* --- runtime backpressure --- *)

let flood p gid n =
  let m = Message.create () in
  for _ = 1 to n do
    ignore
      (Runtime.bcast p Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app m ~want:Types.No_reply)
  done

let form_group w members =
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "fc"));
  World.run w;
  let gid = Option.get !gid in
  Array.iteri
    (fun i m ->
      if i > 0 then
        World.run_task w m (fun () ->
            ignore (Runtime.pg_lookup m "fc");
            match Runtime.pg_join m gid ~credentials:(Message.create ()) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "join failed: %s" e))
    members;
  World.run w;
  gid

let test_backpressure_fires_and_releases () =
  (* ab_window = 1 serializes rounds; ab_queue_limit = 4 turns the
     backlog into a typed verdict.  The flood saturates the queue, so
     bcast_try reports Backpressure; after the pipeline drains it
     admits again.  Same engine, same seed: fully deterministic. *)
  let config =
    { Runtime.default_config with Runtime.ab_window = 1; ab_queue_limit = 4 }
  in
  let w = World.create ~seed:0xF10CL ~runtime_config:config ~sites:3 () in
  let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "m%d" s)) in
  let gid = form_group w members in
  let verdict_hot = ref None in
  let verdict_cold = ref None in
  let waited = ref [] in
  let wait_done = ref false in
  World.run_task w members.(0) (fun () ->
      let p = members.(0) in
      flood p gid 12;
      (* Yield so the CPU queue feeds the origination pipeline. *)
      Runtime.sleep p 400_000;
      verdict_hot :=
        Some (Runtime.bcast_try p Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app
                (Message.create ()) ~want:Types.No_reply);
      (* Blocking variant: parks until the overload clears, reporting
         the shed exactly once through the callback. *)
      ignore
        (Runtime.bcast_wait
           ~on_backpressure:(fun g -> waited := g :: !waited)
           p Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app (Message.create ())
           ~want:Types.No_reply);
      wait_done := true;
      (* Let everything drain, then admission must be open again. *)
      Runtime.sleep p 30_000_000;
      verdict_cold :=
        Some (Runtime.bcast_try p Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app
                (Message.create ()) ~want:Types.No_reply));
  World.run w;
  (match !verdict_hot with
  | Some (Runtime.Backpressure g) -> Alcotest.(check bool) "overloaded group" true (g = gid)
  | Some (Runtime.Admitted _) -> Alcotest.fail "flooded group did not report backpressure"
  | None -> Alcotest.fail "hot verdict missing");
  Alcotest.(check bool) "bcast_wait completed" true !wait_done;
  Alcotest.(check int) "backpressure callback fired exactly once" 1 (List.length !waited);
  (match !verdict_cold with
  | Some (Runtime.Admitted _) -> ()
  | Some (Runtime.Backpressure _) -> Alcotest.fail "drained group still backpressured"
  | None -> Alcotest.fail "cold verdict missing");
  (* Quiescent hygiene: admission control left nothing queued. *)
  let t0 = World.runtime w 0 in
  Alcotest.(check int) "no queued rounds at quiescence" 0
    (Option.value ~default:(-1) (Vsync_obs.Metrics.read_int (Runtime.metrics t0) "runtime.ab_queue"))

(* --- AIMD window --- *)

let test_aimd_shrink_and_regrow () =
  (* Loss (a partition window with rounds in flight) fires RTOs: the
     adaptive window halves once per congestion episode.  After the
     heal, clean commits grow it additively back to the static
     ceiling. *)
  let config = { Runtime.default_config with Runtime.ab_window = 8; ab_adaptive = true } in
  let w = World.create ~seed:0xA1BDL ~runtime_config:config ~sites:2 () in
  let members = Array.init 2 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "m%d" s)) in
  let gid = form_group w members in
  let t0 = World.runtime w 0 in
  let window () = Option.value ~default:(-1) (Runtime.ab_window_now t0 gid) in
  Alcotest.(check int) "starts at the static ceiling" 8 (window ());
  World.run_task w members.(0) (fun () -> flood members.(0) gid 10);
  World.run_for w 200_000;
  (* Partition with rounds in flight: no acks, RTOs back off. *)
  World.partition w [ 0 ] [ 1 ];
  World.run_for w 1_200_000;
  let shrunk = window () in
  Alcotest.(check bool)
    (Printf.sprintf "window shrank under loss (now %d)" shrunk)
    true (shrunk < 8);
  Alcotest.(check bool) "but not below the floor" true (shrunk >= config.Runtime.ab_window_min);
  World.heal w;
  (* Clean traffic after the heal: additive growth reopens the window.
     Sustained load keeps probing — an occasional marginal RTT still
     fires an RTO and re-halves, which is AIMD's equilibrium, so the
     assertion is strict regrowth above the congestion value rather
     than pinning the ceiling. *)
  World.run_task w members.(0) (fun () -> flood members.(0) gid 60);
  World.run w;
  World.run_task w members.(0) (fun () -> flood members.(0) gid 40);
  World.run w;
  Alcotest.(check bool)
    (Printf.sprintf "regrew after heal (now %d > %d)" (window ()) shrunk)
    true
    (window () > shrunk)

(* --- 25-seed oracle sweep: flow control on vs off --- *)

let flowctl_config =
  {
    Runtime.default_config with
    Runtime.ab_adaptive = true;
    ab_queue_limit = 64;
    endpoint =
      {
        Endpoint.default_config with
        Endpoint.adaptive_ack = true;
        credit_bytes = 64 * 1024;
        credit_frames = 64;
      };
  }

let digest (r : Scenario.result) =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Oracle.pp_history r.oracle))

let test_sweep_on_off () =
  (* Every seed runs the nemesis scenario twice: historical static
     tuning (flow control off — the config-less baseline) and the full
     flow-control stack.  Both must satisfy every oracle invariant.
     The off-run must be bit-identical to the baseline that doesn't
     thread a config at all: feature-off means digest-locked traces
     are untouched. *)
  for s = 1 to 25 do
    let seed = Int64.of_int (1000 + s) in
    let run cfg =
      match
        Scenario.run ~sites:3 ~horizon_us:3_000_000 ~settle_us:15_000_000 ~intensity:0.5
          ?runtime_config:cfg ~seed ()
      with
      | Ok r -> r
      | Error e -> Alcotest.failf "seed %Ld: setup failed: %s" seed e
    in
    let off = run None in
    Alcotest.(check int)
      (Printf.sprintf "seed %Ld off: no violations" seed)
      0
      (List.length off.violations);
    let off' = run (Some Runtime.default_config) in
    Alcotest.(check string)
      (Printf.sprintf "seed %Ld: explicit default config is bit-identical" seed)
      (digest off) (digest off');
    let on = run (Some flowctl_config) in
    Alcotest.(check int)
      (Printf.sprintf "seed %Ld on: no violations" seed)
      0
      (List.length on.violations);
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld on: traffic made progress" seed)
      true (on.delivered > 0)
  done

let suite =
  [
    Alcotest.test_case "frame credits gate and replenish" `Quick test_frame_credits_gate_and_replenish;
    Alcotest.test_case "byte credits refund exactly" `Quick test_byte_credits_exact_refund;
    Alcotest.test_case "oversized message never wedges" `Quick test_oversized_message_never_wedges;
    Alcotest.test_case "backpressure fires and releases" `Quick test_backpressure_fires_and_releases;
    Alcotest.test_case "AIMD shrinks on loss, regrows after heal" `Quick test_aimd_shrink_and_regrow;
    Alcotest.test_case "25-seed sweep: flow control on/off" `Slow test_sweep_on_off;
  ]
