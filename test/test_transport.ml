(* Unit tests for the reliable transport: FIFO exactly-once delivery,
   loss recovery, fragmentation, incarnation handling, and the adaptive
   failure detector. *)

module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Endpoint = Vsync_transport.Endpoint
module Rtt = Vsync_transport.Rtt

type payload = { tag : int; size : int }

let setup ?(sites = 2) ?(loss = 0.0) ?(seed = 1L) () =
  let e = Engine.create ~seed () in
  let n = Net.create e { Net.default_config with Net.loss_probability = loss } ~sites in
  let fab = Endpoint.fabric (Net.backend n) in
  let eps =
    Array.init sites (fun site -> Endpoint.create fab ~site ~size:(fun p -> p.size) ())
  in
  (e, n, eps)

let collect ep =
  let log = ref [] in
  Endpoint.set_receiver ep (fun ~src ps -> List.iter (fun p -> log := (src, p.tag) :: !log) ps);
  log

let sink ep = Endpoint.set_receiver ep (fun ~src:_ _ -> ())

let test_fifo_delivery () =
  let e, _n, eps = setup () in
  let log = collect eps.(1) in
  sink eps.(0);
  for tag = 1 to 10 do
    Endpoint.send eps.(0) ~dst:1 { tag; size = 100 }
  done;
  Engine.run ~until:1_000_000 e;
  Alcotest.(check (list (pair int int)))
    "in order, exactly once"
    (List.init 10 (fun i -> (0, i + 1)))
    (List.rev !log)

let test_loss_recovery () =
  (* 30% packet loss: retransmission must still deliver everything in
     order, exactly once. *)
  let e, _n, eps = setup ~loss:0.3 ~seed:77L () in
  let log = collect eps.(1) in
  sink eps.(0);
  for tag = 1 to 50 do
    Endpoint.send eps.(0) ~dst:1 { tag; size = 200 }
  done;
  Engine.run ~until:120_000_000 e;
  Alcotest.(check (list (pair int int)))
    "all delivered despite loss"
    (List.init 50 (fun i -> (0, i + 1)))
    (List.rev !log);
  Alcotest.(check bool) "retransmissions happened" true (Endpoint.retransmits eps.(0) > 0)

let test_fragmentation () =
  let e, _n, eps = setup () in
  let log = collect eps.(1) in
  sink eps.(0);
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 20_000 };
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 10 };
  Engine.run ~until:5_000_000 e;
  Alcotest.(check (list (pair int int))) "large then small, in order" [ (0, 1); (0, 2) ]
    (List.rev !log);
  Alcotest.(check bool) "large message used several frames" true (Endpoint.frames_sent eps.(0) >= 6)

let test_retransmit_exhaustion_fails_channel () =
  (* A long black-hole exhausts the retry budget.  The old behaviour was
     to silently stop retransmitting, leaving the receiver waiting
     forever on the sequence gap; now the whole channel must fail
     loudly, and post-heal traffic must restart cleanly under a new
     channel generation. *)
  let e = Engine.create ~seed:11L () in
  let n = Net.create e Net.default_config ~sites:2 in
  let fab = Endpoint.fabric (Net.backend n) in
  let cfg = { Endpoint.default_config with Endpoint.max_retransmits = 4 } in
  let eps =
    Array.init 2 (fun site -> Endpoint.create ~config:cfg fab ~site ~size:(fun p -> p.size) ())
  in
  let log = collect eps.(1) in
  sink eps.(0);
  let failed = ref [] in
  Endpoint.set_failure_handler eps.(0) (fun s -> failed := s :: !failed);
  (* A clean prefix, then a partition swallowing two sends entirely. *)
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 100 };
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 100 };
  Engine.run ~until:1_000_000 e;
  Net.partition n [ 0 ] [ 1 ];
  Endpoint.send eps.(0) ~dst:1 { tag = 3; size = 100 };
  Endpoint.send eps.(0) ~dst:1 { tag = 4; size = 100 };
  Engine.run ~until:120_000_000 e;
  Alcotest.(check (list int)) "channel failure surfaced exactly once" [ 1 ] !failed;
  Alcotest.(check int) "failure counted" 1 (Endpoint.channel_failures eps.(0));
  (* Heal: later sends open a fresh generation and flow normally.  The
     swallowed messages are gone — that loss was reported, not silent. *)
  Net.heal n;
  Endpoint.send eps.(0) ~dst:1 { tag = 5; size = 100 };
  Endpoint.send eps.(0) ~dst:1 { tag = 6; size = 100 };
  Engine.run ~until:(Engine.now e + 10_000_000) e;
  Alcotest.(check (list (pair int int)))
    "in-order exactly-once within each generation"
    [ (0, 1); (0, 2); (0, 5); (0, 6) ]
    (List.rev !log)

let test_duplicated_fragments () =
  (* The per-link adversary echoes every packet.  Reassembly must not
     double-deliver, and a duplicated fragment of a large message must
     not corrupt the partially-reassembled payload. *)
  let e, n, eps = setup ~seed:9L () in
  let log = collect eps.(1) in
  sink eps.(0);
  Net.set_link_dup n ~src:0 ~dst:1 1.0;
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 20_000 };
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 100 };
  Engine.run ~until:30_000_000 e;
  Alcotest.(check (list (pair int int)))
    "exactly once despite duplication" [ (0, 1); (0, 2) ] (List.rev !log);
  Alcotest.(check bool) "the adversary actually duplicated" true (Net.packets_duplicated n > 0)

let test_reordered_fragments () =
  (* Reordering detours must be absorbed by sequencing: delivery order
     is still the send order. *)
  let e, n, eps = setup ~seed:21L () in
  let log = collect eps.(1) in
  sink eps.(0);
  Net.set_link_reorder n ~src:0 ~dst:1 0.5;
  for tag = 1 to 20 do
    Endpoint.send eps.(0) ~dst:1 { tag; size = 300 }
  done;
  Engine.run ~until:120_000_000 e;
  Alcotest.(check (list (pair int int)))
    "send order preserved through reordering"
    (List.init 20 (fun i -> (0, i + 1)))
    (List.rev !log);
  Alcotest.(check bool) "the adversary actually reordered" true (Net.packets_reordered n > 0)

let test_crash_silences () =
  let e, n, eps = setup () in
  let log = collect eps.(1) in
  sink eps.(0);
  Endpoint.crash eps.(0);
  Net.crash_site n 0;
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 10 };
  Engine.run ~until:1_000_000 e;
  Alcotest.(check (list (pair int int))) "dead endpoint sends nothing" [] !log

let test_restart_new_incarnation () =
  let e, n, eps = setup () in
  let log = collect eps.(1) in
  sink eps.(0);
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 10 };
  Engine.run ~until:1_000_000 e;
  (* Crash and restart the sender: its epoch bumps, and the receiver
     resets channel state so fresh sequence numbers still deliver. *)
  Endpoint.crash eps.(0);
  Net.crash_site n 0;
  Engine.run ~until:(Engine.now e + 1_000_000) e;
  Net.restart_site n 0;
  Endpoint.restart eps.(0);
  Alcotest.(check int) "epoch bumped" 2 (Endpoint.epoch eps.(0));
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 10 };
  Engine.run ~until:(Engine.now e + 2_000_000) e;
  Alcotest.(check (list (pair int int))) "both incarnations' sends arrived" [ (0, 1); (0, 2) ]
    (List.rev !log)

let test_failure_detector_detects_crash () =
  let e, n, eps = setup () in
  ignore (collect eps.(1));
  sink eps.(0);
  let failed = ref [] in
  Endpoint.set_failure_handler eps.(0) (fun s -> failed := s :: !failed);
  Endpoint.monitor eps.(0) ~site:1;
  (* Let a few pings succeed, then kill the peer. *)
  Engine.run ~until:2_000_000 e;
  Alcotest.(check (list int)) "no false positive while alive" [] !failed;
  Alcotest.(check bool) "rtt estimated" true (Endpoint.rtt_us eps.(0) ~site:1 <> None);
  Endpoint.crash eps.(1);
  Net.crash_site n 1;
  Engine.run ~until:(Engine.now e + 30_000_000) e;
  Alcotest.(check (list int)) "crash detected exactly once" [ 1 ] !failed

let test_failure_detector_unmonitor () =
  let e, n, eps = setup () in
  ignore (collect eps.(1));
  sink eps.(0);
  let failed = ref [] in
  Endpoint.set_failure_handler eps.(0) (fun s -> failed := s :: !failed);
  Endpoint.monitor eps.(0) ~site:1;
  Engine.run ~until:2_000_000 e;
  Endpoint.unmonitor eps.(0) ~site:1;
  Endpoint.crash eps.(1);
  Net.crash_site n 1;
  Engine.run ~until:(Engine.now e + 30_000_000) e;
  Alcotest.(check (list int)) "no report after unmonitor" [] !failed

let test_rtt_estimator () =
  let r = Rtt.create ~initial_us:50_000 () in
  Alcotest.(check int) "no samples yet" 0 (Rtt.samples r);
  Rtt.observe r 32_000;
  Alcotest.(check int) "first sample adopted" 32_000 (Rtt.srtt_us r);
  for _ = 1 to 50 do
    Rtt.observe r 32_000
  done;
  Alcotest.(check bool) "estimate converges" true (abs (Rtt.srtt_us r - 32_000) < 500);
  let before = Rtt.timeout_us r in
  Rtt.backoff r;
  Rtt.backoff r;
  Alcotest.(check bool) "backoff raises timeout" true (Rtt.timeout_us r >= 2 * before);
  Rtt.observe r 32_000;
  Alcotest.(check bool) "sample resets backoff" true (Rtt.timeout_us r <= before * 2)

let test_coalescing_packs_frames () =
  let e, _n, eps = setup () in
  let log = collect eps.(1) in
  sink eps.(0);
  (* 40 sends from one engine event: the staging queue must pack them
     into a handful of shared packets, each within the network's 4 KB
     packet bound — Net.send raises on oversize, so the bound is
     enforced by construction, not sampled. *)
  for tag = 1 to 40 do
    Endpoint.send eps.(0) ~dst:1 { tag; size = 200 }
  done;
  Engine.run ~until:10_000_000 e;
  Alcotest.(check (list (pair int int)))
    "in order, exactly once"
    (List.init 40 (fun i -> (0, i + 1)))
    (List.rev !log);
  let frames = Endpoint.frames_sent eps.(0) and packets = Endpoint.packets_sent eps.(0) in
  Alcotest.(check int) "one frame per message" 40 frames;
  Alcotest.(check bool) "burst coalesced into fewer packets" true (packets < frames);
  Alcotest.(check bool) "the 4 KB bound forced several packets" true (packets >= 2);
  (* Delayed acks fold the 40 deliveries into at most one dedicated ack
     per arriving packet. *)
  Alcotest.(check bool) "acks collapsed by the delay timer" true
    (Endpoint.acks_sent eps.(1) <= packets)

let test_piggybacked_acks_suppress_dedicated () =
  (* Echo traffic: the receiver answers every payload within the ack
     delay, so its cumulative acks ride the reverse data frames and the
     dedicated ack frame is never needed in that direction. *)
  let e, _n, eps = setup () in
  let got = ref 0 and back = ref 0 in
  Endpoint.set_receiver eps.(1) (fun ~src:_ ps ->
      List.iter
        (fun p ->
          incr got;
          Endpoint.send eps.(1) ~dst:0 { tag = 1000 + p.tag; size = 100 })
        ps);
  Endpoint.set_receiver eps.(0) (fun ~src:_ ps -> back := !back + List.length ps);
  for tag = 1 to 30 do
    Endpoint.send eps.(0) ~dst:1 { tag; size = 100 }
  done;
  Engine.run ~until:10_000_000 e;
  Alcotest.(check int) "all forward messages delivered" 30 !got;
  Alcotest.(check int) "all echoes delivered" 30 !back;
  Alcotest.(check int) "echo direction needed no dedicated acks" 0 (Endpoint.acks_sent eps.(1))

let test_duplicate_reack_quiesces_sender () =
  (* The ack direction is black-holed: the receiver delivers but the
     sender keeps retransmitting.  After the heal, the re-ack triggered
     by a duplicate [seq] must quiesce the sender for good. *)
  let e, n, eps = setup () in
  let log = collect eps.(1) in
  sink eps.(0);
  Net.set_link_loss n ~src:1 ~dst:0 1.0;
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 100 };
  Engine.run ~until:2_000_000 e;
  Alcotest.(check (list (pair int int))) "delivered despite lost acks" [ (0, 1) ] (List.rev !log);
  Alcotest.(check bool) "sender retransmitted" true (Endpoint.retransmits eps.(0) > 0);
  Net.clear_link n ~src:1 ~dst:0;
  Engine.run ~until:(Engine.now e + 5_000_000) e;
  let settled = Endpoint.retransmits eps.(0) in
  Engine.run ~until:(Engine.now e + 30_000_000) e;
  Alcotest.(check int) "re-ack stopped the retransmissions" settled (Endpoint.retransmits eps.(0));
  Alcotest.(check (list (pair int int))) "still exactly once" [ (0, 1) ] (List.rev !log)

let test_karn_ignores_ambiguous_rtt () =
  (* Karn's algorithm: an ack that may answer a retransmission — or a
     fresh message queued behind one — must not train the RTT
     estimator; the next unambiguous exchange must. *)
  let e, n, eps = setup () in
  ignore (collect eps.(1));
  sink eps.(0);
  Net.set_link_loss n ~src:1 ~dst:0 1.0;
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 100 };
  (* Let the retransmission timer fire at least once. *)
  Engine.run ~until:200_000 e;
  Alcotest.(check bool) "head was retransmitted" true (Endpoint.retransmits eps.(0) > 0);
  (* A fresh message now rides behind the retransmitted head. *)
  Endpoint.send eps.(0) ~dst:1 { tag = 2; size = 100 };
  Net.clear_link n ~src:1 ~dst:0;
  Engine.run ~until:(Engine.now e + 5_000_000) e;
  (match Endpoint.out_rtt_stats eps.(0) ~dst:1 with
  | Some (samples, _) -> Alcotest.(check int) "ambiguous cumulative ack sampled nothing" 0 samples
  | None -> Alcotest.fail "outbound channel disappeared");
  Endpoint.send eps.(0) ~dst:1 { tag = 3; size = 100 };
  Engine.run ~until:(Engine.now e + 5_000_000) e;
  match Endpoint.out_rtt_stats eps.(0) ~dst:1 with
  | Some (samples, srtt) ->
    Alcotest.(check int) "clean exchange sampled exactly once" 1 samples;
    Alcotest.(check bool) "estimate reflects the real rtt, not the initial guess" true
      (srtt < 50_000)
  | None -> Alcotest.fail "outbound channel disappeared"

let test_rtt_adapts_to_slow_peer () =
  (* An overloaded (slow) site pushes the timeout up rather than being
     declared dead: timeout always exceeds the observed RTT level. *)
  let r = Rtt.create () in
  List.iter (Rtt.observe r) [ 30_000; 35_000; 32_000; 31_000 ];
  let t1 = Rtt.timeout_us r in
  List.iter (Rtt.observe r) [ 150_000; 160_000; 155_000; 150_000; 152_000 ];
  let t2 = Rtt.timeout_us r in
  Alcotest.(check bool) "timeout grew with load" true (t2 > t1);
  Alcotest.(check bool) "timeout above current rtt" true (t2 > 150_000)

let suite =
  [
    Alcotest.test_case "fifo delivery" `Quick test_fifo_delivery;
    Alcotest.test_case "loss recovery" `Quick test_loss_recovery;
    Alcotest.test_case "fragmentation" `Quick test_fragmentation;
    Alcotest.test_case "retransmit exhaustion fails channel" `Quick
      test_retransmit_exhaustion_fails_channel;
    Alcotest.test_case "duplicated fragments" `Quick test_duplicated_fragments;
    Alcotest.test_case "reordered fragments" `Quick test_reordered_fragments;
    Alcotest.test_case "crash silences endpoint" `Quick test_crash_silences;
    Alcotest.test_case "restart new incarnation" `Quick test_restart_new_incarnation;
    Alcotest.test_case "failure detector detects crash" `Quick test_failure_detector_detects_crash;
    Alcotest.test_case "failure detector unmonitor" `Quick test_failure_detector_unmonitor;
    Alcotest.test_case "coalescing packs frames" `Quick test_coalescing_packs_frames;
    Alcotest.test_case "piggybacked acks suppress dedicated" `Quick
      test_piggybacked_acks_suppress_dedicated;
    Alcotest.test_case "duplicate re-ack quiesces sender" `Quick
      test_duplicate_reack_quiesces_sender;
    Alcotest.test_case "karn ignores ambiguous rtt" `Quick test_karn_ignores_ambiguous_rtt;
    Alcotest.test_case "rtt estimator" `Quick test_rtt_estimator;
    Alcotest.test_case "rtt adapts to slow peer" `Quick test_rtt_adapts_to_slow_peer;
  ]
