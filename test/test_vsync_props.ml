(* Property-level tests of the virtual synchrony guarantees: the
   ordering engines in isolation, then whole-system invariants under
   packet loss and injected failures. *)

open Vsync_core
open Types
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Vclock = Vsync_util.Vclock

let e_app = Entry.user 0
let uid ~site ~seq = { usite = site; useq = seq }

(* --- causal engine --- *)

let test_causal_engine_delays_successor () =
  let t = Causal.create ~n_ranks:3 () in
  (* m2 (from rank 1) causally follows m1 (from rank 0) but arrives
     first: it must wait. *)
  Causal.receive t ~uid:(uid ~site:1 ~seq:0) ~rank:1 ~vt:(Vclock.of_list [ 1; 1; 0 ]) "m2";
  Alcotest.(check (list string)) "m2 delayed" [] (List.map snd (Causal.drain t));
  Causal.receive t ~uid:(uid ~site:0 ~seq:0) ~rank:0 ~vt:(Vclock.of_list [ 1; 0; 0 ]) "m1";
  Alcotest.(check (list string)) "m1 unlocks m2" [ "m1"; "m2" ] (List.map snd (Causal.drain t))

let test_causal_engine_fifo_per_sender () =
  let t = Causal.create ~n_ranks:2 () in
  Causal.receive t ~uid:(uid ~site:0 ~seq:1) ~rank:0 ~vt:(Vclock.of_list [ 2; 0 ]) "second";
  Causal.receive t ~uid:(uid ~site:0 ~seq:0) ~rank:0 ~vt:(Vclock.of_list [ 1; 0 ]) "first";
  Alcotest.(check (list string)) "sender order restored" [ "first"; "second" ]
    (List.map snd (Causal.drain t))

let test_causal_engine_duplicates () =
  let t = Causal.create ~n_ranks:2 () in
  let u = uid ~site:0 ~seq:0 in
  Causal.receive t ~uid:u ~rank:0 ~vt:(Vclock.of_list [ 1; 0 ]) "m";
  Causal.receive t ~uid:u ~rank:0 ~vt:(Vclock.of_list [ 1; 0 ]) "m";
  Alcotest.(check int) "delivered once" 1 (List.length (Causal.drain t));
  Alcotest.(check bool) "seen" true (Causal.seen t u)

let test_causal_engine_client_fifo () =
  let t = Causal.create ~n_ranks:2 () in
  Causal.receive_fifo t ~uid:(uid ~site:9 ~seq:0) "c1";
  Causal.receive_fifo t ~uid:(uid ~site:9 ~seq:1) "c2";
  Alcotest.(check (list string)) "client sends pass through" [ "c1"; "c2" ]
    (List.map snd (Causal.drain t))

let test_causal_force_drain () =
  let t = Causal.create ~n_ranks:2 () in
  (* A message whose predecessor died with its sender: normal drain
     holds it, force_drain (post-stabilization) releases it. *)
  Causal.receive t ~uid:(uid ~site:0 ~seq:1) ~rank:0 ~vt:(Vclock.of_list [ 2; 0 ]) "orphan";
  Alcotest.(check int) "held" 0 (List.length (Causal.drain t));
  Alcotest.(check int) "pending" 1 (List.length (Causal.pending t));
  Alcotest.(check (list string)) "force-drained" [ "orphan" ]
    (List.map snd (Causal.force_drain t))

(* --- total order engine --- *)

let test_total_engine_priority_order () =
  (* Two sites, two messages: the engines must agree on the final
     order regardless of arrival order. *)
  let a = Total.create ~site:0 () and b = Total.create ~site:1 () in
  let u1 = uid ~site:0 ~seq:0 and u2 = uid ~site:1 ~seq:0 in
  (* Site 0 sees u1 then u2; site 1 sees u2 then u1. *)
  let p_a1 = Total.intake a ~uid:u1 "m1" in
  let p_a2 = Total.intake a ~uid:u2 "m2" in
  let p_b2 = Total.intake b ~uid:u2 "m2" in
  let p_b1 = Total.intake b ~uid:u1 "m1" in
  let f1 = prio_max p_a1 p_b1 and f2 = prio_max p_a2 p_b2 in
  Total.commit a ~uid:u1 f1;
  Total.commit a ~uid:u2 f2;
  Total.commit b ~uid:u1 f1;
  Total.commit b ~uid:u2 f2;
  let order_a = List.map (fun (_, _, p) -> p) (Total.drain a) and order_b = List.map (fun (_, _, p) -> p) (Total.drain b) in
  Alcotest.(check (list string)) "identical total order" order_a order_b

let test_total_engine_blocks_until_commit () =
  let t = Total.create ~site:0 () in
  let u1 = uid ~site:0 ~seq:0 and u2 = uid ~site:1 ~seq:0 in
  let p1 = Total.intake t ~uid:u1 "m1" in
  let _p2 = Total.intake t ~uid:u2 "m2" in
  Total.commit t ~uid:u1 p1;
  (* u2 proposed before u1's commit could have a lower final priority
     elsewhere: the engine must not deliver past an uncommitted head if
     it sorts first; here u1 sorts first and is committed. *)
  Alcotest.(check (list string)) "committed prefix only" [ "m1" ] (List.map (fun (_, _, p) -> p) (Total.drain t));
  Total.commit t ~uid:u2 (10, 1);
  Alcotest.(check (list string)) "rest after commit" [ "m2" ] (List.map (fun (_, _, p) -> p) (Total.drain t))

let test_total_engine_commit_before_payload () =
  let t = Total.create ~site:0 () in
  let u = uid ~site:2 ~seq:5 in
  Total.commit t ~uid:u (3, 2);
  Alcotest.(check int) "no payload, no delivery" 0 (List.length (Total.drain t));
  Total.add_payload t ~uid:u "late body";
  Alcotest.(check (list string)) "delivered once body arrives" [ "late body" ]
    (List.map (fun (_, _, p) -> p) (Total.drain t))

let test_total_engine_drop () =
  let t = Total.create ~site:0 () in
  let u = uid ~site:1 ~seq:0 in
  ignore (Total.intake t ~uid:u "doomed");
  Total.drop t ~uid:u;
  Alcotest.(check int) "dropped" 0 (List.length (Total.pending t));
  let u2 = uid ~site:1 ~seq:1 in
  let p = Total.intake t ~uid:u2 "kept" in
  Total.commit t ~uid:u2 p;
  Alcotest.check_raises "cannot drop committed" (Invalid_argument "Total.drop: message is committed")
    (fun () -> Total.drop t ~uid:u2)

(* --- whole-system properties --- *)

(* Deliveries logged per member as (view_id_when_delivered, kind, tag);
   view changes logged inline. *)
type ev = Delivered of int (* tag *) | View_installed of int (* view id *)

let run_scenario ~seed ~loss ~crash_member =
  (* Form the group losslessly; loss applies to the traffic under
     study (sustained loss during formation can legitimately shun a
     member, which is the partition case, not what these tests
     probe). *)
  let w = World.create ~seed ~sites:3 () in
  let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "p%d" s)) in
  let logs = Array.make 3 [] in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "prop"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to 2 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "prop");
        ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
  done;
  World.run w;
  Array.iteri
    (fun i m ->
      Runtime.bind m e_app (fun msg ->
          logs.(i) <- Delivered (Option.get (Message.get_int msg "tag")) :: logs.(i));
      Runtime.pg_monitor m gid (fun v _ -> logs.(i) <- View_installed v.View.view_id :: logs.(i)))
    members;
  Vsync_sim.Net.set_loss (World.net w) loss;
  (* Mixed multicast traffic from every member, interleaved. *)
  Array.iteri
    (fun i m ->
      World.run_task w m (fun () ->
          for k = 0 to 9 do
            Runtime.sleep m ((k * 40_000) + (i * 13_000));
            let msg = Message.create () in
            Message.set_int msg "tag" ((i * 1000) + k);
            let mode = if k mod 2 = 0 then Abcast else Cbcast in
            ignore
              (Runtime.bcast m mode ~dest:(Addr.Group gid) ~entry:e_app msg ~want:No_reply)
          done))
    members;
  (* Crash one member's site mid-stream. *)
  (match crash_member with
  | Some i ->
    World.run_for w 150_000;
    World.crash_site w i
  | None -> ());
  (* Long enough for failure detection plus the flush, short enough
     that sustained loss cannot plausibly fracture the group through
     repeated false suspicions (which would be the partition case the
     paper excludes). *)
  World.run ~until:(World.now w + 20_000_000) w;
  (members, logs, crash_member)

(* The virtual synchrony invariant: survivors deliver the same messages
   in the same views; ABCAST tags appear in the same relative order. *)
let check_vs_invariant logs survivors =
  let segments log =
    (* Split the event list (oldest first) into per-view segments. *)
    List.fold_left
      (fun segs ev ->
        match ev, segs with
        | View_installed v, _ -> (v, []) :: segs
        | Delivered tag, (v, tags) :: rest -> (v, tag :: tags) :: rest
        (* Deliveries before the first observed view change belong to
           the view current at registration: view 3 after the two
           joins, at every member alike. *)
        | Delivered tag, [] -> (3, [ tag ]) :: [])
      [] log
    |> List.rev_map (fun (v, tags) -> (v, List.rev tags))
  in
  let segs = List.map (fun i -> (i, segments (List.rev logs.(i)))) survivors in
  (* For every pair of survivors and every view id both have: same
     delivered multiset, same ABCAST relative order.  (ABCAST tags are
     the even k values by construction.) *)
  let is_ab tag = tag mod 2 = 0 in
  List.iter
    (fun (i, si) ->
      List.iter
        (fun (j, sj) ->
          if i < j then
            List.iter
              (fun (v, tags_i) ->
                match List.assoc_opt v sj with
                | None -> ()
                | Some tags_j ->
                  Alcotest.(check (list int))
                    (Printf.sprintf "view %d: same multiset at %d and %d" v i j)
                    (List.sort compare tags_i) (List.sort compare tags_j);
                  Alcotest.(check (list int))
                    (Printf.sprintf "view %d: same ABCAST order at %d and %d" v i j)
                    (List.filter is_ab tags_i) (List.filter is_ab tags_j))
              si)
        segs)
    segs

let test_vs_invariant_no_failures () =
  let _members, logs, _ = run_scenario ~seed:101L ~loss:0.0 ~crash_member:None in
  check_vs_invariant logs [ 0; 1; 2 ];
  (* Everything sent must arrive everywhere: 30 messages. *)
  Array.iteri
    (fun i log ->
      let n = List.length (List.filter (function Delivered _ -> true | _ -> false) log) in
      Alcotest.(check int) (Printf.sprintf "member %d delivered all" i) 30 n)
    logs

let delivered_count log =
  List.length (List.filter (function Delivered _ -> true | _ -> false) log)

let test_vs_invariant_with_loss () =
  (* Sustained loss can legitimately trip the failure detector (the
     paper: a falsely suspected entity "will have to undergo recovery
     even if it was actually experiencing a transient communication
     problem") — so the count assertion only applies when the final
     membership is intact; the agreement invariant applies always. *)
  let _members, logs, _ = run_scenario ~seed:202L ~loss:0.08 ~crash_member:None in
  check_vs_invariant logs [ 0; 1; 2 ];
  (* Every member that stayed in the group to the end must have the
     full stream; a falsely-suspected member simply stops at its
     exclusion point, which the invariant check above already covers. *)
  let max_count =
    Array.fold_left (fun acc log -> max acc (delivered_count log)) 0 logs
  in
  Alcotest.(check int) "someone delivered the full stream" 30 max_count

let test_vs_invariant_with_crash () =
  (* Crash member 2's site mid-burst over several seeds: the two
     survivors must always agree. *)
  List.iter
    (fun seed ->
      let _members, logs, _ = run_scenario ~seed ~loss:0.0 ~crash_member:(Some 2) in
      check_vs_invariant logs [ 0; 1 ])
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]

let test_vs_invariant_crash_and_loss () =
  List.iter
    (fun seed ->
      let _members, logs, _ = run_scenario ~seed ~loss:0.05 ~crash_member:(Some 1) in
      check_vs_invariant logs [ 0; 2 ])
    [ 11L; 12L; 13L; 14L ]

(* Causality across members under loss-induced reordering: A sends m1;
   B, having delivered m1, sends m2; everyone must deliver m1 first. *)
let test_causal_chain_under_loss () =
  List.iter
    (fun seed ->
      let w = World.create ~seed ~sites:3 () in
      let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "p%d" s)) in
      let gid = ref None in
      World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "chain"));
      World.run w;
      let gid = Option.get !gid in
      for i = 1 to 2 do
        World.run_task w members.(i) (fun () ->
            ignore (Runtime.pg_lookup members.(i) "chain");
            ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
      done;
      World.run w;
      Vsync_sim.Net.set_loss (World.net w) 0.1;
      let order_at_2 = ref [] in
      Runtime.bind members.(2) e_app (fun msg ->
          order_at_2 := Option.get (Message.get_int msg "tag") :: !order_at_2);
      Runtime.bind members.(1) e_app (fun msg ->
          (* React to m1 by multicasting m2: a causal chain. *)
          if Message.get_int msg "tag" = Some 1 then begin
            let m2 = Message.create () in
            Message.set_int m2 "tag" 2;
            ignore
              (Runtime.bcast members.(1) Cbcast ~dest:(Addr.Group gid) ~entry:e_app m2
                 ~want:No_reply)
          end);
      Runtime.bind members.(0) e_app (fun _ -> ());
      World.run_task w members.(0) (fun () ->
          let m1 = Message.create () in
          Message.set_int m1 "tag" 1;
          ignore
            (Runtime.bcast members.(0) Cbcast ~dest:(Addr.Group gid) ~entry:e_app m1
               ~want:No_reply));
      World.run ~until:(World.now w + 20_000_000) w;
      Alcotest.(check (list int))
        (Printf.sprintf "causal order at third member (seed %Ld)" seed)
        [ 1; 2 ] (List.rev !order_at_2))
    [ 31L; 32L; 33L; 34L; 35L; 36L ]

(* Flush: after it returns, every prior asynchronous CBCAST has been
   delivered at every destination. *)
let test_flush_guarantee () =
  let w = World.create ~seed:51L ~sites:3 () in
  let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "p%d" s)) in
  let counts = Array.make 3 0 in
  Array.iteri (fun i m -> Runtime.bind m e_app (fun _ -> counts.(i) <- counts.(i) + 1)) members;
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "flush"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to 2 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "flush");
        ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
  done;
  World.run w;
  let checked = ref false in
  World.run_task w members.(0) (fun () ->
      for k = 1 to 15 do
        let m = Message.create () in
        Message.set_int m "tag" k;
        ignore (Runtime.bcast members.(0) Cbcast ~dest:(Addr.Group gid) ~entry:e_app m ~want:No_reply)
      done;
      Runtime.flush members.(0);
      (* The instant flush returns, remote replicas are complete. *)
      Alcotest.(check int) "remote replica 1 complete at flush return" 15 counts.(1);
      Alcotest.(check int) "remote replica 2 complete at flush return" 15 counts.(2);
      checked := true);
  World.run w;
  Alcotest.(check bool) "flush returned" true !checked

(* Partitions stall affected groups; healing resumes progress (the
   paper tolerates no partitions — Sec 2.1). *)
let test_partition_stalls_then_heals () =
  (* Slow the failure detector down so the short partition is a
     communication outage, not a (correctly!) detected failure — the
     paper: partitioning "could cause parts of our system to hang until
     communication is restored". *)
  let runtime_config =
    {
      Runtime.default_config with
      Runtime.endpoint =
        {
          Vsync_transport.Endpoint.default_config with
          Vsync_transport.Endpoint.ping_interval_us = 2_000_000;
          suspect_after = 10;
        };
    }
  in
  let w = World.create ~seed:61L ~runtime_config ~sites:2 () in
  let members = Array.init 2 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "p%d" s)) in
  let count1 = ref 0 in
  Runtime.bind members.(0) e_app (fun _ -> ());
  Runtime.bind members.(1) e_app (fun _ -> incr count1);
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "part"));
  World.run w;
  let gid = Option.get !gid in
  World.run_task w members.(1) (fun () ->
      ignore (Runtime.pg_lookup members.(1) "part");
      ignore (Runtime.pg_join members.(1) gid ~credentials:(Message.create ())));
  World.run w;
  World.partition w [ 0 ] [ 1 ];
  World.run_task w members.(0) (fun () ->
      let m = Message.create () in
      Message.set_int m "tag" 1;
      ignore (Runtime.bcast members.(0) Abcast ~dest:(Addr.Group gid) ~entry:e_app m ~want:No_reply));
  (* Short of the failure-detection timeout, the update is simply
     stuck. *)
  World.run_for w 1_000_000;
  Alcotest.(check int) "stalled during partition" 0 !count1;
  World.heal w;
  World.run_for w 60_000_000;
  Alcotest.(check int) "delivered after healing" 1 !count1

(* Protocol-state hygiene: after heavy traffic quiesces, the stability
   tracking, held-frame buffers and reply sessions are all empty —
   nothing leaks. *)
let test_no_state_leaks () =
  let w = World.create ~seed:71L ~sites:3 () in
  let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "p%d" s)) in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "leak"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to 2 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "leak");
        ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
  done;
  World.run w;
  Array.iter
    (fun m ->
      Runtime.bind m e_app (fun req ->
          if Message.session req <> None then Runtime.reply m ~request:req (Message.create ())))
    members;
  Array.iteri
    (fun i m ->
      World.run_task w m (fun () ->
          for k = 0 to 19 do
            let msg = Message.create () in
            Message.set_int msg "tag" k;
            let mode = if k mod 2 = 0 then Abcast else Cbcast in
            let want = if k mod 5 = 0 then Wait_all else No_reply in
            ignore (Runtime.bcast m mode ~dest:(Addr.Group gid) ~entry:e_app msg ~want);
            Runtime.sleep m (10_000 + (i * 3_000))
          done))
    members;
  World.run w;
  World.run w;
  for s = 0 to 2 do
    let rt = World.runtime w s in
    Alcotest.(check int) (Printf.sprintf "site %d: no unstable messages" s) 0
      (Runtime.pending_unstable rt);
    Alcotest.(check int) (Printf.sprintf "site %d: no held frames" s) 0
      (Runtime.pending_held_frames rt);
    Alcotest.(check int) (Printf.sprintf "site %d: no open sessions" s) 0
      (Runtime.pending_sessions rt)
  done

let suite =
  [
    Alcotest.test_case "causal engine delays successor" `Quick test_causal_engine_delays_successor;
    Alcotest.test_case "causal engine fifo per sender" `Quick test_causal_engine_fifo_per_sender;
    Alcotest.test_case "causal engine duplicates" `Quick test_causal_engine_duplicates;
    Alcotest.test_case "causal engine client fifo" `Quick test_causal_engine_client_fifo;
    Alcotest.test_case "causal engine force drain" `Quick test_causal_force_drain;
    Alcotest.test_case "total engine priority order" `Quick test_total_engine_priority_order;
    Alcotest.test_case "total engine blocks until commit" `Quick test_total_engine_blocks_until_commit;
    Alcotest.test_case "total engine commit before payload" `Quick test_total_engine_commit_before_payload;
    Alcotest.test_case "total engine drop" `Quick test_total_engine_drop;
    Alcotest.test_case "vs invariant: no failures" `Quick test_vs_invariant_no_failures;
    Alcotest.test_case "vs invariant: packet loss" `Quick test_vs_invariant_with_loss;
    Alcotest.test_case "vs invariant: member crash (8 seeds)" `Quick test_vs_invariant_with_crash;
    Alcotest.test_case "vs invariant: crash + loss (4 seeds)" `Quick test_vs_invariant_crash_and_loss;
    Alcotest.test_case "causal chain under loss (6 seeds)" `Quick test_causal_chain_under_loss;
    Alcotest.test_case "flush guarantee" `Quick test_flush_guarantee;
    Alcotest.test_case "partition stalls then heals" `Quick test_partition_stalls_then_heals;
    Alcotest.test_case "no protocol-state leaks" `Quick test_no_state_leaks;
  ]
