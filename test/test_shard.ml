(* The sharded process-group layer: ring arithmetic units, the sharded
   twenty-questions service end-to-end (coverage queries recombining
   the exact flat answer), handoff-on-view-change delivering every key
   exactly once, and a seeded nemesis sweep over a 16-partition
   deployment with a per-group oracle. *)

open Vsync_core
module Ring = Vsync_shard.Ring
module Sharded = Twentyq.Sharded
module Deployment = Twentyq.Sharded.Deployment
module Database = Twentyq.Database
module Nemesis = Vsync_sim.Nemesis

(* --- ring units ------------------------------------------------------ *)

let test_ring_determinism () =
  (* FNV-1a of the empty string is the offset basis: an anchor that
     pins the hash function across word sizes and compiler versions. *)
  Alcotest.(check string)
    "fnv-1a offset basis" "cbf29ce484222325"
    (Printf.sprintf "%Lx" (Ring.hash64 ""));
  let r1 = Ring.create ~partitions:64 () in
  let r2 = Ring.create ~partitions:64 () in
  for i = 0 to 999 do
    let key = Printf.sprintf "key%d" i in
    let p = Ring.partition_of_key r1 key in
    Alcotest.(check bool) "partition in range" true (p >= 0 && p < 64);
    Alcotest.(check int) "same key, same partition, any ring instance" p
      (Ring.partition_of_key r2 key)
  done

let test_ring_balance () =
  let r = Ring.create ~partitions:64 () in
  let counts = Array.make 64 0 in
  let n = 10_000 in
  for i = 0 to n - 1 do
    let p = Ring.partition_of_key r (Printf.sprintf "key%d" i) in
    counts.(p) <- counts.(p) + 1
  done;
  let avg = n / 64 in
  Array.iteri
    (fun p c ->
      Alcotest.(check bool)
        (Printf.sprintf "partition %d count %d within 3x of mean %d" p c avg)
        true
        (c > avg / 3 && c < avg * 3))
    counts

let test_ring_owners () =
  let r = Ring.create ~partitions:16 () in
  let sites = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  for part = 0 to 15 do
    let owners = Ring.owners r ~sites ~replicas:3 part in
    Alcotest.(check int) "three owners" 3 (List.length owners);
    Alcotest.(check int) "owners distinct" 3 (List.length (List.sort_uniq compare owners));
    List.iter
      (fun s -> Alcotest.(check bool) "owner is a site" true (List.mem s sites))
      owners;
    (* Order-insensitive in the site list. *)
    Alcotest.(check (list int)) "insensitive to site order" owners
      (Ring.owners r ~sites:(List.rev sites) ~replicas:3 part);
    Alcotest.(check int) "primary is the first owner" (List.hd owners)
      (Ring.primary r ~sites part)
  done;
  (* Fewer sites than replicas: every site, preference-sorted. *)
  let all = Ring.owners r ~sites:[ 4; 2 ] ~replicas:3 0 in
  Alcotest.(check int) "short site list returns all" 2 (List.length all)

(* Rendezvous hashing's minimal-movement property, which the handoff
   design leans on: deleting one site reassigns only the partitions it
   owned, and surviving owners keep their slots (in order). *)
let test_ring_minimal_movement () =
  let r = Ring.create ~partitions:64 () in
  let sites = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let gone = 3 in
  let remaining = List.filter (fun s -> s <> gone) sites in
  let moved = ref 0 in
  for part = 0 to 63 do
    let before = Ring.owners r ~sites ~replicas:3 part in
    let after = Ring.owners r ~sites:remaining ~replicas:3 part in
    if List.mem gone before then begin
      incr moved;
      let survivors = List.filter (fun s -> s <> gone) before in
      Alcotest.(check (list int))
        (Printf.sprintf "partition %d: survivors keep their order" part)
        survivors
        (List.filter (fun s -> List.mem s survivors) after)
    end
    else
      Alcotest.(check (list int))
        (Printf.sprintf "partition %d: untouched by unrelated site loss" part)
        before after
  done;
  Alcotest.(check bool) "some partitions did move" true (!moved > 0)

(* --- sharded service end-to-end -------------------------------------- *)

let columns = [ "object"; "color"; "price" ]

let demo_rows =
  [
    [ "corvette"; "red"; "9500" ]; [ "beetle"; "blue"; "2000" ];
    [ "pickup"; "red"; "7000" ]; [ "van"; "white"; "8000" ];
    [ "roadster"; "green"; "12000" ]; [ "wagon"; "blue"; "4500" ];
    [ "coupe"; "red"; "11000" ]; [ "mini"; "white"; "3000" ];
  ]

let with_deployment ?(sites = 4) ?(partitions = 8) ?(replicas = 3) ?(seed = 0x51A2L) f =
  let w = World.create ~seed ~sites () in
  let d = Deployment.deploy w ~partitions ~replicas ~columns () in
  Alcotest.(check bool) "deployment formed" true (Deployment.settle d);
  let cp = World.proc w ~site:0 ~name:"shard-client" in
  let c = Sharded.connect cp ~partitions in
  f w d c

let test_coverage_queries () =
  with_deployment (fun w _d c ->
      let failures = ref [] in
      World.run_task w (Vsync_shard.Router.owner_proc (Sharded.router c)) (fun () ->
          List.iter
            (fun row ->
              match Sharded.put c row with
              | Ok () -> ()
              | Error e -> failures := e :: !failures)
            demo_rows;
          (* The coverage answer must equal the flat relation's. *)
          let flat = Database.create ~columns in
          List.iter (Database.add_row flat) demo_rows;
          List.iter
            (fun q ->
              let expected =
                match Database.parse_query q with
                | Some pq ->
                  let hits, examined = Database.count_matches flat pq in
                  let a =
                    if examined = 0 || hits = 0 then Database.No
                    else if hits = examined then Database.Yes
                    else Database.Sometimes
                  in
                  (a, hits)
                | None -> Alcotest.failf "bad test query %s" q
              in
              match Sharded.ask c q with
              | Ok got ->
                Alcotest.(check (pair string int))
                  (Printf.sprintf "coverage answer for %s" q)
                  (Database.answer_to_string (fst expected), snd expected)
                  (Database.answer_to_string (fst got), snd got)
              | Error e -> Alcotest.failf "query %s failed: %s" q e)
            [ "color=red"; "price>5000"; "price<100"; "color=white"; "nope=1" ];
          (* Keyed queries are existence probes on the owning partition. *)
          (match Sharded.ask c "object=beetle" with
          | Ok (a, hits) ->
            Alcotest.(check string) "keyed hit" "yes" (Database.answer_to_string a);
            Alcotest.(check int) "keyed hit count" 1 hits
          | Error e -> Alcotest.failf "keyed query failed: %s" e);
          (match Sharded.ask c "object=zeppelin" with
          | Ok (a, hits) ->
            Alcotest.(check string) "keyed miss" "no" (Database.answer_to_string a);
            Alcotest.(check int) "keyed miss count" 0 hits
          | Error e -> Alcotest.failf "keyed miss failed: %s" e);
          (* Coverage removal, then the scan sees the survivors only. *)
          (match Sharded.remove c ~column:"color" ~value:"red" with
          | Ok n -> Alcotest.(check int) "removed the red rows" 3 n
          | Error e -> Alcotest.failf "remove failed: %s" e);
          match Sharded.scan_keys c with
          | Ok keys ->
            Alcotest.(check (list string)) "scan = non-red keys"
              [ "beetle"; "mini"; "roadster"; "van"; "wagon" ]
              (List.sort compare keys)
          | Error e -> Alcotest.failf "scan failed: %s" e);
      World.run w;
      Alcotest.(check (list string)) "no put failures" [] !failures)

(* --- handoff ---------------------------------------------------------- *)

let put_keys w c ~n ~prefix =
  let failed = ref [] in
  World.run_task w (Vsync_shard.Router.owner_proc (Sharded.router c)) (fun () ->
      for i = 0 to n - 1 do
        let k = Printf.sprintf "%s%02d" prefix i in
        match Sharded.put c [ k; "grey"; string_of_int (1000 + i) ] with
        | Ok () -> ()
        | Error e -> failed := (k, e) :: !failed
      done);
  World.run w;
  Alcotest.(check int) "all puts accepted" 0 (List.length !failed)

let scan_exactly_once w c ~n ~prefix ~msg =
  let got = ref None in
  World.run_task w (Vsync_shard.Router.owner_proc (Sharded.router c)) (fun () ->
      match Sharded.scan_keys c with
      | Ok keys -> got := Some keys
      | Error e -> Alcotest.failf "%s: scan failed: %s" msg e);
  World.run w;
  match !got with
  | None -> Alcotest.failf "%s: scan did not complete" msg
  | Some keys ->
    let expected = List.init n (fun i -> Printf.sprintf "%s%02d" prefix i) in
    Alcotest.(check (list string))
      (Printf.sprintf "%s: every key exactly once" msg)
      expected (List.sort compare keys)

(* A site dies; auto-handoff recomputes ring ownership over the
   survivors and re-replicates by state transfer; the site returns and
   a rebalance hands partitions back (with the ex-owners retiring).
   Throughout, a full scatter/gather scan finds every key exactly once
   — no key lost with its dead replica, none duplicated by re-joins. *)
let test_handoff_exactly_once () =
  let n = 50 in
  with_deployment ~sites:4 ~partitions:16 (fun w d c ->
      Deployment.enable_auto_handoff d;
      put_keys w c ~n ~prefix:"h";
      scan_exactly_once w c ~n ~prefix:"h" ~msg:"before crash";
      World.crash_site w 3;
      World.run_for w 5_000_000;
      Alcotest.(check bool) "re-formed on survivors" true
        (Deployment.settle ~timeout_us:120_000_000 d);
      scan_exactly_once w c ~n ~prefix:"h" ~msg:"after crash + handoff";
      World.restart_site w 3;
      World.run_for w 2_000_000;
      Deployment.rebalance d;
      World.run_for w 20_000_000;
      Alcotest.(check bool) "re-formed after return" true
        (Deployment.settle ~timeout_us:120_000_000 d);
      scan_exactly_once w c ~n ~prefix:"h" ~msg:"after return + rebalance";
      (* The returned site owns partitions again: handoff went both ways. *)
      let back = ref false in
      for part = 0 to 15 do
        List.iter
          (fun m ->
            let addr = Runtime.proc_addr (Sharded.member_proc m) in
            if addr.Vsync_msg.Addr.site = 3 then back := true)
          (Deployment.members d part)
      done;
      Alcotest.(check bool) "restarted site hosts partitions again" true !back)

(* --- nemesis sweep ---------------------------------------------------- *)

(* 25 seeded fault plans against a 16-partition deployment with
   auto-handoff on and keyed traffic running: every group must uphold
   the virtual-synchrony invariants (one oracle per partition group).
   Traffic-level invariants are vacuous here (service messages carry no
   oracle tag); what the sweep proves is membership sanity — view
   consistency, final-view agreement, no split-brain — for every small
   replica group while crashes, partitions and rebalances churn it. *)
let test_shard_nemesis_sweep () =
  let sites = 5 in
  let partitions = 16 in
  let with_fault = ref 0 in
  for i = 0 to 24 do
    let seed = Int64.of_int (9500 + i) in
    let w = World.create ~seed ~sites () in
    let d = Deployment.deploy w ~partitions ~replicas:3 ~columns:[ "object" ] () in
    if not (Deployment.settle d) then
      Alcotest.failf "seed %Ld: deployment failed to form" seed;
    let oracles =
      List.init partitions (fun part ->
          match Deployment.members d part with
          | [] -> Alcotest.failf "seed %Ld: partition %d empty after settle" seed part
          | first :: _ as members ->
            let o = Oracle.create w ~gid:(Sharded.member_gid first) in
            List.iter (fun m -> Oracle.track o (Sharded.member_proc m)) members;
            (part, o))
    in
    Deployment.enable_auto_handoff d;
    let horizon_us = 12_000_000 in
    let t0 = World.now w in
    let cp = World.proc w ~site:0 ~name:"nem-client" in
    let c = Sharded.connect cp ~partitions in
    let ok_puts = ref 0 in
    World.run_task w cp (fun () ->
        let j = ref 0 in
        while World.now w < t0 + horizon_us do
          (match Sharded.put ~retries:1 c [ Printf.sprintf "k%d" (!j mod 40) ] with
          | Ok () -> incr ok_puts
          | Error _ -> ());
          incr j;
          Runtime.sleep cp 100_000
        done);
    let plan = Nemesis.random_plan ~seed ~sites ~horizon_us ~intensity:0.4 () in
    if
      List.exists
        (fun (e : Nemesis.event) ->
          match e.op with
          | Nemesis.Crash_site _ | Nemesis.Partition _ | Nemesis.Partition_oneway _ -> true
          | _ -> false)
        plan
    then incr with_fault;
    World.apply_nemesis w plan;
    World.run ~until:(t0 + horizon_us + 40_000_000) w;
    Alcotest.(check bool)
      (Printf.sprintf "seed %Ld: keyed traffic made progress" seed)
      true (!ok_puts > 0);
    List.iter
      (fun (part, o) ->
        let violations = Oracle.check ~hygiene:false o in
        if violations <> [] then
          Alcotest.failf "seed %Ld partition %d:\n%s" seed part (Oracle.report o violations))
      oracles
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sweep exercised faults (%d/25 plans)" !with_fault)
    true (!with_fault >= 12)

let suite =
  [
    Alcotest.test_case "ring: deterministic key placement" `Quick test_ring_determinism;
    Alcotest.test_case "ring: balanced key distribution" `Quick test_ring_balance;
    Alcotest.test_case "ring: rendezvous owners" `Quick test_ring_owners;
    Alcotest.test_case "ring: minimal movement on site loss" `Quick test_ring_minimal_movement;
    Alcotest.test_case "sharded twentyq: coverage queries recombine the flat answer" `Quick
      test_coverage_queries;
    Alcotest.test_case "handoff on view change: every key exactly once" `Slow
      test_handoff_exactly_once;
    Alcotest.test_case "sharded nemesis sweep (25 seeds, per-group oracle)" `Slow
      test_shard_nemesis_sweep;
  ]
