(* Unit tests for the discrete-event engine and the network model. *)

module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Trace = Vsync_sim.Trace

(* --- engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:20 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:7 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "stable at equal timestamps" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:5 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:10 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:5 (fun () -> log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested events run" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock advanced" 15 (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:10 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:100 (fun () -> incr fired));
  Engine.run ~until:50 e;
  Alcotest.(check int) "only the early event" 1 !fired;
  Alcotest.(check int) "clock at horizon" 50 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest runs later" 2 !fired

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1) (fun () -> ())))

(* --- network --- *)

let test_net_latency () =
  let e = Engine.create () in
  let n = Net.create e Net.default_config ~sites:2 in
  let arrival = ref (-1) in
  Net.send n ~src:0 ~dst:1 ~bytes:100 (fun () -> arrival := Engine.now e);
  Engine.run e;
  (* 16ms propagation + serialization of 164 wire bytes at 1.25MB/s. *)
  Alcotest.(check bool) "arrives after inter-site latency" true (!arrival >= 16_000);
  Alcotest.(check bool) "arrives promptly" true (!arrival < 17_000)

let test_net_intra_site () =
  let e = Engine.create () in
  let n = Net.create e Net.default_config ~sites:2 in
  let arrival = ref (-1) in
  Net.send n ~src:1 ~dst:1 ~bytes:4000 (fun () -> arrival := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "intra-site hop is 10us" 10 !arrival

let test_net_fragments () =
  let e = Engine.create () in
  let n = Net.create e Net.default_config ~sites:2 in
  Alcotest.(check (list int)) "small fits" [ 100 ] (Net.fragments n ~bytes:100);
  Alcotest.(check (list int)) "exactly max" [ 4096 ] (Net.fragments n ~bytes:4096);
  Alcotest.(check (list int)) "10KB -> 3 packets" [ 4096; 4096; 2048 ] (Net.fragments n ~bytes:10240);
  Alcotest.check_raises "oversized send rejected"
    (Invalid_argument "Net.send: packet exceeds max_packet_bytes (fragment first)") (fun () ->
      Net.send n ~src:0 ~dst:1 ~bytes:5000 (fun () -> ()))

let test_net_crash_drops () =
  let e = Engine.create () in
  let n = Net.create e Net.default_config ~sites:2 in
  let got = ref false in
  Net.send n ~src:0 ~dst:1 ~bytes:10 (fun () -> got := true);
  Net.crash_site n 1;
  Engine.run e;
  Alcotest.(check bool) "in-flight packet lost at dead destination" false !got;
  Alcotest.(check int) "counted as lost" 1 (Net.packets_lost n);
  (* A dead source sends nothing. *)
  Net.crash_site n 0;
  Net.send n ~src:0 ~dst:1 ~bytes:10 (fun () -> got := true);
  Engine.run e;
  Alcotest.(check bool) "dead source silent" false !got

let test_net_partition () =
  let e = Engine.create () in
  let n = Net.create e Net.default_config ~sites:4 in
  Net.partition n [ 0; 1 ] [ 2; 3 ];
  let cross = ref false and within = ref false in
  Net.send n ~src:0 ~dst:2 ~bytes:10 (fun () -> cross := true);
  Net.send n ~src:0 ~dst:1 ~bytes:10 (fun () -> within := true);
  Engine.run e;
  Alcotest.(check bool) "cross-partition dropped" false !cross;
  Alcotest.(check bool) "same side delivered" true !within;
  Net.heal n;
  Net.send n ~src:0 ~dst:2 ~bytes:10 (fun () -> cross := true);
  Engine.run e;
  Alcotest.(check bool) "delivered after heal" true !cross

let test_net_loss () =
  let e = Engine.create ~seed:5L () in
  let n = Net.create e { Net.default_config with Net.loss_probability = 1.0 } ~sites:2 in
  let got = ref false in
  Net.send n ~src:0 ~dst:1 ~bytes:10 (fun () -> got := true);
  Engine.run e;
  Alcotest.(check bool) "p=1 loses everything" false !got

let test_net_bandwidth_serialization () =
  let e = Engine.create () in
  let n = Net.create e Net.default_config ~sites:2 in
  (* Two back-to-back 4KB packets share the sender's transmitter: the
     second arrives one serialization time after the first. *)
  let t1 = ref 0 and t2 = ref 0 in
  Net.send n ~src:0 ~dst:1 ~bytes:4096 (fun () -> t1 := Engine.now e);
  Net.send n ~src:0 ~dst:1 ~bytes:4096 (fun () -> t2 := Engine.now e);
  Engine.run e;
  let serialization = (4096 + 64) * 1_000_000 / 1_250_000 in
  Alcotest.(check int) "spacing = tx serialization" serialization (!t2 - !t1)

(* --- trace --- *)

let test_trace () =
  let e = Engine.create () in
  let tr = Trace.create e in
  Trace.emit tr ~category:"x" "dropped while disabled";
  Trace.set_enabled tr true;
  ignore (Engine.schedule e ~delay:5 (fun () -> Trace.emitf tr ~category:"x" "at %d" 5));
  Engine.run e;
  match Trace.records tr with
  | [ r ] ->
    Alcotest.(check string) "detail" "at 5" r.Trace.detail;
    Alcotest.(check int) "timestamp" 5 r.Trace.at;
    Alcotest.(check int) "by_category" 1 (List.length (Trace.by_category tr "x"));
    Alcotest.(check int) "other category empty" 0 (List.length (Trace.by_category tr "y"))
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)

let test_engine_pending_exact () =
  (* With [debug_pending] set, every [pending] call also cross-checks
     the O(1) counter against the O(n) heap walk. *)
  Engine.debug_pending := true;
  Fun.protect ~finally:(fun () -> Engine.debug_pending := false) @@ fun () ->
  let e = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.pending e);
  let h1 = Engine.schedule e ~delay:10 (fun () -> ()) in
  let h2 = Engine.schedule e ~delay:20 (fun () -> ()) in
  let h3 = Engine.schedule e ~delay:30 (fun () -> ()) in
  Alcotest.(check int) "three scheduled" 3 (Engine.pending e);
  Engine.cancel h1;
  Alcotest.(check int) "cancel decrements" 2 (Engine.pending e);
  Engine.cancel h1;
  Alcotest.(check int) "double cancel counts once" 2 (Engine.pending e);
  ignore (Engine.step e);
  Alcotest.(check int) "popping a cancelled tombstone changes nothing" 2 (Engine.pending e);
  ignore (Engine.step e);
  Alcotest.(check int) "firing decrements" 1 (Engine.pending e);
  Engine.cancel h2;
  Alcotest.(check int) "cancelling a fired event is a no-op" 1 (Engine.pending e);
  Engine.cancel h3;
  Alcotest.(check int) "all gone" 0 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_engine_pending_nested_schedule () =
  Engine.debug_pending := true;
  Fun.protect ~finally:(fun () -> Engine.debug_pending := false) @@ fun () ->
  let e = Engine.create () in
  let inner_pending = ref (-1) in
  ignore
    (Engine.schedule e ~delay:10 (fun () ->
         ignore (Engine.schedule e ~delay:5 (fun () -> ()));
         inner_pending := Engine.pending e));
  Alcotest.(check int) "outer scheduled" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "count seen inside the handler" 1 !inner_pending;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let suite =
  [
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine same-time fifo" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine nested schedule" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine run until" `Quick test_engine_run_until;
    Alcotest.test_case "engine negative delay" `Quick test_engine_negative_delay;
    Alcotest.test_case "engine pending exact" `Quick test_engine_pending_exact;
    Alcotest.test_case "engine pending nested schedule" `Quick test_engine_pending_nested_schedule;
    Alcotest.test_case "net latency" `Quick test_net_latency;
    Alcotest.test_case "net intra-site" `Quick test_net_intra_site;
    Alcotest.test_case "net fragments" `Quick test_net_fragments;
    Alcotest.test_case "net crash drops" `Quick test_net_crash_drops;
    Alcotest.test_case "net partition" `Quick test_net_partition;
    Alcotest.test_case "net loss" `Quick test_net_loss;
    Alcotest.test_case "net bandwidth serialization" `Quick test_net_bandwidth_serialization;
    Alcotest.test_case "trace" `Quick test_trace;
  ]
