(* The typed observability layer: zero-cost-when-disabled tracing, the
   JSONL codec round-trip, per-uid timeline reconstruction, and the
   regression fixes that ride with it (channel-fatal reassembly
   teardown, Trace.emitf's disabled branch, scenario / news-agent setup
   failures surfacing as values instead of exceptions). *)

module Engine = Vsync_sim.Engine
module Net = Vsync_sim.Net
module Trace = Vsync_sim.Trace
module Tracer = Vsync_obs.Tracer
module Event = Vsync_obs.Event
module Jsonl = Vsync_obs.Jsonl
module Timeline = Vsync_obs.Timeline
module Metrics = Vsync_obs.Metrics
module Endpoint = Vsync_transport.Endpoint
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
open Vsync_core

(* --- tracer: allocation-free when disabled -------------------------- *)

let test_disabled_no_alloc () =
  let tr = Tracer.create ~now:(fun () -> 0) () in
  Alcotest.(check bool) "starts disabled" false (Tracer.enabled tr);
  (* The guard-then-construct idiom: the event is only built after
     [wants] says someone is listening. *)
  let emit_guarded () =
    if Tracer.wants tr Event.Proto then
      Tracer.emit tr (Event.Deliver { site = 0; group = 1; usite = 2; useq = 3 })
  in
  emit_guarded ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    emit_guarded ()
  done;
  let dw = Gc.minor_words () -. w0 in
  (* 10k guarded emissions of a 4-field event would allocate >= 50k
     words; allow a few words of slack for the Gc sampling itself. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled tracing allocates nothing (saw %.0f words)" dw)
    true (dw < 64.);
  Alcotest.(check int) "nothing recorded" 0 (List.length (Tracer.records tr))

let test_mask_filters_classes () =
  let tr = Tracer.create ~now:(fun () -> 7) () in
  Tracer.set_classes tr [ Event.Proto ];
  Tracer.set_enabled tr true;
  Alcotest.(check bool) "wants proto" true (Tracer.wants tr Event.Proto);
  Alcotest.(check bool) "does not want note" false (Tracer.wants tr Event.Note);
  Tracer.emit tr (Event.Deliver { site = 0; group = 1; usite = 2; useq = 3 });
  Tracer.emit tr (Event.Note_event { site = 0; cat = "x"; text = "filtered" });
  Alcotest.(check int) "only the proto event landed" 1 (List.length (Tracer.records tr))

(* --- JSONL round-trip ----------------------------------------------- *)

let sample_events =
  [
    Event.Sched { delay = 125 };
    Event.Fire;
    Event.Net_drop { src = 0; dst = 2; reason = "loss" };
    Event.Net_dup { src = 1; dst = 3 };
    Event.Net_delay { src = 2; dst = 0; extra_us = 4200 };
    Event.Nemesis { action = "link 0->2 loss 0.2" };
    Event.Packet_send { site = 0; dst = 1; nframes = 3; bytes = 812 };
    Event.Packet_recv { site = 1; src = 0; nframes = 3 };
    Event.Retransmit { site = 0; dst = 1; nframes = 2 };
    Event.Rto { site = 0; dst = 1; timeout_us = 20_000 };
    Event.Ack_send { site = 1; dst = 0; upto = 17 };
    Event.Channel_fail { site = 1; peer = 0; dir = "in"; reason = "corrupt \"quoted\"\nstate" };
    Event.Originate { site = 0; proto = "abcast"; group = 1; usite = 0; useq = 9 };
    Event.Frame_tx { site = 0; dst = 1; kind = "ab_data"; usite = 0; useq = 9 };
    Event.Frame_rx { site = 1; src = 0; kind = "ab_data"; usite = 0; useq = 9 };
    Event.Ab_vote { site = 0; voter = 1; usite = 0; useq = 9; prio = 4 };
    Event.Ab_commit { site = 1; usite = 0; useq = 9; prio = 4 };
    Event.Deliver { site = 1; group = 1; usite = 0; useq = 9 };
    Event.Stabilize { site = 1; usite = 0; useq = 9 };
    Event.Wedge { site = 2; group = 1; view_id = 3 };
    Event.Flush { site = 2; group = 1; view_id = 3; attempt = 1 };
    Event.View_install { site = 2; group = 1; view_id = 4; nsites = 3; mhash = 77 };
    Event.Stable_advance { site = 1; origin = 0; upto = 9 };
    Event.Gc_reclaim { site = 1; n = 12 };
    Event.Error_event { site = 0; what = "news.join"; detail = "refused" };
    Event.Note_event { site = 0; cat = "deliver"; text = "legacy string" };
  ]

let test_jsonl_roundtrip () =
  List.iteri
    (fun i ev ->
      let r = { Event.at = 1000 + i; ev } in
      let line = Jsonl.of_record r in
      match Jsonl.parse line with
      | None -> Alcotest.failf "unparseable line: %s" line
      | Some r' ->
        Alcotest.(check int) (Printf.sprintf "at of %s" line) r.Event.at r'.Event.at;
        Alcotest.(check bool) (Printf.sprintf "event of %s" line) true (r.Event.ev = r'.Event.ev))
    sample_events

let test_jsonl_rejects_garbage () =
  Alcotest.(check bool) "not json" true (Jsonl.parse "nonsense" = None);
  Alcotest.(check bool) "unknown tag" true (Jsonl.parse {|{"at":1,"ev":"martian"}|} = None);
  Alcotest.(check bool)
    "missing field" true
    (Jsonl.parse {|{"at":1,"ev":"deliver","site":0}|} = None)

(* --- timelines from a fixed-seed ABCAST run ------------------------- *)

(* A fully formed 3-site group on a healthy network; every ABCAST's
   timeline must be complete — originated, delivered, stabilized — when
   reconstructed from the captured stream, and survive a JSONL
   round-trip intact. *)
let test_timeline_complete () =
  let w = World.create ~seed:0x0B5EL ~sites:3 () in
  let records = ref [] in
  let tr = Trace.obs (World.trace w) in
  Tracer.set_classes tr [ Event.Proto ];
  Tracer.add_sink tr (fun r -> records := r :: !records);
  Tracer.set_enabled tr true;
  let members =
    Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "t%d" s))
  in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "obs"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to 2 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "obs");
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "join: %s" e)
  done;
  World.run w;
  let e_app = Vsync_msg.Entry.user 0 in
  Array.iter (fun m -> Runtime.bind m e_app (fun _ -> ())) members;
  World.run_task w members.(0) (fun () ->
      for k = 1 to 20 do
        let msg = Message.create () in
        Message.set_int msg "tag" k;
        ignore
          (Runtime.bcast members.(0) Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app msg
             ~want:Types.No_reply)
      done);
  World.run w;
  let stream = List.rev !records in
  let uids = Timeline.delivered_uids stream in
  Alcotest.(check bool) "some uids delivered" true (List.length uids >= 20);
  List.iter
    (fun (usite, useq) ->
      let tl = Timeline.of_uid stream ~usite ~useq in
      if not (Timeline.complete tl) then
        Alcotest.failf "incomplete timeline for uid %d.%d:@\n%a" usite useq
          (fun ppf -> Format.fprintf ppf "%a" Timeline.pp)
          tl;
      Alcotest.(check (list int))
        (Printf.sprintf "uid %d.%d delivered at every site" usite useq)
        [ 0; 1; 2 ] (Timeline.delivery_sites tl))
    uids;
  (* The same reconstruction must work from a JSONL round-trip. *)
  let stream' = List.filter_map (fun r -> Jsonl.parse (Jsonl.of_record r)) stream in
  Alcotest.(check int) "jsonl round-trip preserves the stream" (List.length stream)
    (List.length stream');
  let usite, useq = List.hd uids in
  Alcotest.(check bool)
    "timeline survives jsonl" true
    (Timeline.complete (Timeline.of_uid stream' ~usite ~useq))

(* --- metrics registry ----------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events" in
  Metrics.incr c;
  Metrics.add c 4;
  let backing = ref 17 in
  Metrics.gauge m "pending" (fun () -> !backing);
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 10;
  Metrics.observe h 30;
  Alcotest.(check (option int)) "counter" (Some 5) (Metrics.read_int m "events");
  Alcotest.(check (option int)) "gauge" (Some 17) (Metrics.read_int m "pending");
  backing := 3;
  Alcotest.(check (option int)) "gauge re-samples" (Some 3) (Metrics.read_int m "pending");
  Alcotest.(check (option int)) "histogram count" (Some 2) (Metrics.read_int m "lat");
  Alcotest.(check (option int)) "unknown" None (Metrics.read_int m "nope");
  Alcotest.(check (list string)) "registration order" [ "events"; "pending"; "lat" ]
    (Metrics.names m);
  Alcotest.check_raises "duplicate gauge rejected"
    (Invalid_argument "Metrics: duplicate metric pending") (fun () ->
      Metrics.gauge m "pending" (fun () -> 0))

(* Every runtime registers its gauges with the unified registry; the
   oracle's hygiene checks sample them by name, so pin the names. *)
let test_runtime_metrics_registered () =
  let w = World.create ~seed:3L ~sites:2 () in
  let names = Metrics.names (Runtime.metrics (World.runtime w 0)) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "%s registered" n) true (List.mem n names))
    [
      "runtime.pending_unstable"; "runtime.held_frames"; "runtime.sessions";
      "runtime.pending_store"; "runtime.dedup_residue"; "transport.inflight";
      "transport.packets"; "transport.retransmits"; "transport.channel_failures";
    ]

(* --- regression: reassembly corruption is channel-fatal, not fatal --- *)

type payload = { tag : int; size : int }

let test_reassembly_corruption_fails_channel () =
  let e = Engine.create ~seed:5L () in
  let n = Net.create e Net.default_config ~sites:2 in
  let fab = Endpoint.fabric (Net.backend n) in
  let eps =
    Array.init 2 (fun site -> Endpoint.create fab ~site ~size:(fun p -> p.size) ())
  in
  let tr = Tracer.create ~now:(fun () -> Engine.now e) () in
  Tracer.set_enabled tr true;
  let fails = ref [] in
  Tracer.add_sink tr (fun r ->
      match r.Event.ev with
      | Event.Channel_fail { peer; dir; reason; _ } -> fails := (peer, dir, reason) :: !fails
      | _ -> ());
  Endpoint.set_tracer eps.(1) tr;
  let failed_peers = ref [] in
  Endpoint.set_failure_handler eps.(1) (fun site -> failed_peers := site :: !failed_peers);
  let got = ref 0 in
  Endpoint.set_receiver eps.(1) (fun ~src:_ ps -> got := !got + List.length ps);
  Endpoint.set_receiver eps.(0) (fun ~src:_ _ -> ());
  (* Establish the 0 -> 1 stream. *)
  Endpoint.send eps.(0) ~dst:1 { tag = 1; size = 64 };
  Engine.run ~until:1_000_000 e;
  Alcotest.(check int) "stream established" 1 !got;
  (* The corrupt state is unreachable over the wire (fragment 0 always
     carries the payload); forge it and run the real drain.  The process
     must survive: the channel fails, the failure handler runs, and the
     teardown is visible on the event stream. *)
  Endpoint.inject_reassembly_corruption eps.(1) ~src:0;
  Alcotest.(check int) "channel failure counted" 1 (Endpoint.channel_failures eps.(1));
  Alcotest.(check (list int)) "failure handler ran" [ 0 ] !failed_peers;
  match !fails with
  | [ (peer, dir, reason) ] ->
    Alcotest.(check int) "against the corrupt peer" 0 peer;
    Alcotest.(check string) "inbound teardown" "in" dir;
    Alcotest.(check bool) (Printf.sprintf "reason is specific: %s" reason) true
      (String.length reason > 0)
  | other -> Alcotest.failf "expected one Channel_fail event, saw %d" (List.length other)

(* --- regression: Trace.emitf's disabled branch ----------------------- *)

(* The old disabled branch formatted into the shared
   [Format.str_formatter]: a caller mixing emitf with its own
   str_formatter use would observe interleaved garbage.  Disabled (or
   Note-masked) emitf must leave it untouched. *)
let test_emitf_disabled_leaves_str_formatter () =
  let e = Engine.create ~seed:1L () in
  let trace = Trace.create e in
  ignore (Format.flush_str_formatter ());
  Format.fprintf Format.str_formatter "mine:%d" 1;
  Trace.emitf trace ~category:"test" "noise %d %s" 42 "x";
  Alcotest.(check string) "disabled emitf stays off str_formatter" "mine:1"
    (Format.flush_str_formatter ());
  (* Enabled but Note-masked: the scenario harness runs in exactly this
     configuration, so formatting must still be skipped. *)
  Tracer.set_classes (Trace.obs trace) [ Event.Proto ];
  Trace.set_enabled trace true;
  Format.fprintf Format.str_formatter "mine:%d" 2;
  Trace.emitf trace ~category:"test" "noise %d" 43;
  Alcotest.(check string) "masked emitf stays off str_formatter" "mine:2"
    (Format.flush_str_formatter ());
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.records trace));
  (* Fully on: the note is recorded. *)
  Tracer.set_classes (Trace.obs trace) Event.all_classes;
  Trace.emitf trace ~category:"test" "hello %d" 7;
  match Trace.records trace with
  | [ r ] ->
    Alcotest.(check string) "category" "test" r.Trace.category;
    Alcotest.(check string) "detail" "hello 7" r.Trace.detail
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

(* --- regression: setup failures are values, not aborts --------------- *)

let test_scenario_returns_ok () =
  match
    Scenario.run ~sites:3 ~horizon_us:1_000_000 ~settle_us:10_000_000 ~plan:[] ~seed:7L ()
  with
  | Error e -> Alcotest.failf "clean scenario failed setup: %s" e
  | Ok r ->
    Alcotest.(check int) "no violations" 0 (List.length r.Scenario.violations);
    Alcotest.(check bool) "progress" true (r.Scenario.delivered > 0)

(* A news agent whose join is refused (here: by a join validator that
   rejects everyone) must not take down its site with an exception: it
   retries, then records the failure on the agent and reports it as an
   [Error_event] on the typed stream. *)
let test_news_join_refused_reports () =
  let w = World.create ~seed:11L ~sites:2 () in
  let errors = ref [] in
  let tr = Trace.obs (World.trace w) in
  Tracer.add_sink tr (fun r ->
      match r.Event.ev with
      | Event.Error_event { site; what; detail } -> errors := (site, what, detail) :: !errors
      | _ -> ());
  Tracer.set_enabled tr true;
  (* Own the news group before any agent exists, and reject all joins. *)
  let owner = World.proc w ~site:0 ~name:"owner" in
  World.run_task w owner (fun () ->
      let gid = Runtime.pg_create owner "sys.news" in
      Runtime.pg_join_verify owner gid (fun _ _ -> false));
  World.run w;
  let agent = Vsync_toolkit.News.start_agent (World.runtime w 1) in
  World.run_for w 30_000_000;
  Alcotest.(check bool) "agent did not become ready" false
    (Vsync_toolkit.News.agent_ready agent);
  (match Vsync_toolkit.News.agent_failed agent with
  | None -> Alcotest.fail "agent_failed should report the refusal"
  | Some reason ->
    Alcotest.(check bool) (Printf.sprintf "reason names the group: %s" reason) true
      (String.length reason > 0));
  match List.rev !errors with
  | (site, what, _) :: _ ->
    Alcotest.(check int) "reported from the agent's site" 1 site;
    Alcotest.(check string) "tagged" "news.join" what
  | [] -> Alcotest.fail "no Error_event on the typed stream"

let suite =
  [
    Alcotest.test_case "tracer: disabled tracing allocates nothing" `Quick test_disabled_no_alloc;
    Alcotest.test_case "tracer: class mask filters" `Quick test_mask_filters_classes;
    Alcotest.test_case "jsonl: round-trip all variants" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl: rejects garbage" `Quick test_jsonl_rejects_garbage;
    Alcotest.test_case "timeline: complete for every abcast uid" `Quick test_timeline_complete;
    Alcotest.test_case "metrics: registry semantics" `Quick test_metrics_registry;
    Alcotest.test_case "metrics: runtime gauges registered" `Quick
      test_runtime_metrics_registered;
    Alcotest.test_case "regression: reassembly corruption is channel-fatal" `Quick
      test_reassembly_corruption_fails_channel;
    Alcotest.test_case "regression: emitf leaves str_formatter alone" `Quick
      test_emitf_disabled_leaves_str_formatter;
    Alcotest.test_case "regression: scenario setup failure is a value" `Quick
      test_scenario_returns_ok;
    Alcotest.test_case "regression: news join refusal reported, not fatal" `Quick
      test_news_join_refused_reports;
  ]
