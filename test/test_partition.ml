(* Primary-partition membership under network splits: the majority
   component keeps delivering, minority components wedge (rejecting or
   buffering origination), healed minorities rejoin through state
   transfer, and the oracle's no-split-brain / primary-partition-
   progress invariants hold across seeded partition/heal plans.

   The deterministic tests drive {!World.partition}/{!World.heal}
   directly; timings leave the ~2s failure-detection window plus a
   couple of flush round-trips before asserting. *)

open Vsync_core
open Vsync_toolkit
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Nemesis = Vsync_sim.Nemesis

let e_app = Entry.user 0

(* Stand up a world with one group member per site, typed-event tracing
   on (the oracle's no-split-brain check reads View_install events), and
   a per-member record of delivered tags. *)
let setup ?runtime_config ~seed ~sites name =
  let w = World.create ?runtime_config ~seed ~sites () in
  let tr = Vsync_sim.Trace.obs (World.trace w) in
  Vsync_obs.Tracer.set_classes tr [ Vsync_obs.Event.Proto; Vsync_obs.Event.Partition ];
  Vsync_obs.Tracer.set_enabled tr true;
  let members =
    Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "m%d" s))
  in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) name));
  World.run w;
  let gid = Option.get !gid in
  let oracle = Oracle.create w ~gid in
  let got = Array.make sites [] in
  Array.iteri
    (fun i m ->
      Runtime.bind m e_app (fun msg ->
          got.(i) <- Option.get (Message.get_int msg "tag") :: got.(i);
          Oracle.note_delivery oracle m msg))
    members;
  Oracle.track oracle members.(0);
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) name);
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> Oracle.track oracle members.(i)
        | Error e -> Alcotest.failf "member %d failed to join: %s" i e)
  done;
  World.run w;
  (w, gid, members, oracle, got)

let send w oracle m ~gid ~tag =
  World.run_task w m (fun () ->
      let msg = Message.create () in
      Message.set_int msg "tag" tag;
      Oracle.note_send oracle m ~mode:Types.Cbcast ~tag;
      ignore
        (Runtime.bcast m Types.Cbcast ~dest:(Addr.Group gid) ~entry:e_app msg
           ~want:Types.No_reply))

let assert_oracle_clean oracle =
  match Oracle.check oracle with
  | [] -> ()
  | violations -> Alcotest.failf "%s" (Oracle.report oracle violations)

(* A 3/2 split: the majority side installs a shrunk view and keeps
   delivering; the minority side wedges (no new view, no deliveries of
   majority traffic) until the heal tears its dead copy down. *)
let test_majority_progress () =
  let w, gid, members, oracle, got = setup ~seed:0xA110L ~sites:5 "maj" in
  send w oracle members.(0) ~gid ~tag:0;
  World.run_for w 2_000_000;
  Array.iteri
    (fun i g -> Alcotest.(check (list int)) (Printf.sprintf "pre-split tag at m%d" i) [ 0 ] g)
    (Array.map List.rev got);
  let part_from = World.now w in
  World.partition w [ 0; 1; 2 ] [ 3; 4 ];
  (* Failure detection + the eviction flush: the majority reforms. *)
  World.run_for w 8_000_000;
  (match Runtime.pg_view members.(0) gid with
  | Some v -> Alcotest.(check int) "majority view shrank to 3" 3 (View.n_members v)
  | None -> Alcotest.fail "majority lost its group copy");
  (* The minority must NOT have installed a post-split view: wedged at
     the old 5-member view (its copy is only torn down after heal or
     probe exhaustion). *)
  (match Runtime.pg_view members.(3) gid with
  | Some v -> Alcotest.(check int) "minority still wedged at old view" 5 (View.n_members v)
  | None -> ());
  send w oracle members.(0) ~gid ~tag:1;
  send w oracle members.(1) ~gid ~tag:2;
  World.run_for w 3_000_000;
  Oracle.note_partition oracle ~from_us:part_from ~until_us:(World.now w) ~left:[ 0; 1; 2 ]
    ~right:[ 3; 4 ];
  List.iter
    (fun i ->
      Alcotest.(check (list int))
        (Printf.sprintf "majority m%d delivered split-era tags" i)
        [ 0; 1; 2 ]
        (List.sort compare got.(i)))
    [ 0; 1; 2 ];
  List.iter
    (fun i ->
      Alcotest.(check (list int))
        (Printf.sprintf "minority m%d saw none of the split-era traffic" i)
        [ 0 ] (List.rev got.(i)))
    [ 3; 4 ];
  World.heal w;
  World.run ~until:(World.now w + 40_000_000) w;
  (* Healed minority copies discover the newer primary view and tear
     down; the evicted members survive as processes. *)
  Alcotest.(check bool) "minority copy torn down" true (Runtime.pg_view members.(3) gid = None);
  Alcotest.(check bool) "evicted member still alive" true (Runtime.proc_alive members.(3));
  assert_oracle_clean oracle

(* Under [minority_policy = Reject], origination inside the wedged
   minority fails fast with {!Runtime.Partitioned}; after the heal the
   evicted member rejoins through the state-transfer tool and catches
   up with zero duplicate or lost deliveries (the oracle re-baselines
   it via [retrack]). *)
let test_minority_reject_and_rejoin () =
  let config = { Runtime.default_config with minority_policy = Runtime.Reject } in
  let w, gid, members, oracle, got = setup ~runtime_config:config ~seed:0xB112L ~sites:3 "rej" in
  send w oracle members.(0) ~gid ~tag:0;
  World.run_for w 2_000_000;
  World.partition w [ 0; 1 ] [ 2 ];
  World.run_for w 8_000_000;
  (* Origination at the minority member is refused, typed. *)
  let refused = ref false in
  World.run_task w members.(2) (fun () ->
      match
        Runtime.bcast members.(2) Types.Cbcast ~dest:(Addr.Group gid) ~entry:e_app
          (Message.create ()) ~want:Types.No_reply
      with
      | _ -> ()
      | exception Runtime.Partitioned g -> refused := Addr.group_to_int g = Addr.group_to_int gid);
  World.run_for w 1_000_000;
  Alcotest.(check bool) "minority send rejected with Partitioned" true !refused;
  send w oracle members.(0) ~gid ~tag:1;
  send w oracle members.(1) ~gid ~tag:2;
  World.run_for w 3_000_000;
  World.heal w;
  World.run_for w 10_000_000;
  Alcotest.(check bool) "evicted copy torn down after heal" true
    (Runtime.pg_view members.(2) gid = None);
  (* Rejoin with state transfer: the donor ships the tag history, so
     the rejoined member resumes with the majority's state. *)
  let state = ref [] in
  let segments_of cell =
    [
      ( "tags",
        (fun () -> List.map (fun t -> Bytes.of_string (string_of_int t)) (List.rev !cell)),
        fun chunks -> cell := List.rev_map (fun c -> int_of_string (Bytes.to_string c)) chunks );
    ]
  in
  let donor_tags = ref got.(0) in
  State_transfer.attach members.(0) ~gid ~segments:(segments_of donor_tags);
  let rejoin = ref None in
  World.run_task w members.(2) (fun () ->
      (* The teardown dropped this site's group state; re-resolve the
         name so the join contacts a current member site. *)
      ignore (Runtime.pg_lookup members.(2) "rej");
      rejoin :=
        Some
          (State_transfer.join_and_xfer members.(2) ~gid ~credentials:(Message.create ())
             ~segments:(segments_of state)));
  World.run w;
  (match !rejoin with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "rejoin failed: %s" e
  | None -> Alcotest.fail "rejoin never completed");
  Alcotest.(check (list int)) "transferred state matches the primary's history" [ 0; 1; 2 ]
    (List.rev !state);
  Oracle.retrack oracle members.(2);
  (* Post-rejoin traffic flows to all three again. *)
  got.(2) <- [];
  send w oracle members.(0) ~gid ~tag:3;
  send w oracle members.(2) ~gid ~tag:4;
  World.run w;
  Alcotest.(check (list int)) "rejoined member receives new traffic" [ 3; 4 ]
    (List.sort compare got.(2));
  (match Runtime.pg_view members.(0) gid with
  | Some v -> Alcotest.(check int) "full membership restored" 3 (View.n_members v)
  | None -> Alcotest.fail "no view after rejoin");
  assert_oracle_clean oracle

(* The coordinator is cut off mid-change: the majority moves on under a
   new coordinator, and when the heal lets the stale coordinator's
   frames back through they are fenced — its copy is torn down instead
   of imposing a competing view. *)
let test_stale_coordinator_fenced () =
  let w, gid, members, oracle, got = setup ~seed:0xC0DEL ~sites:3 "stale" in
  (* A join lands at the coordinator just before it is isolated, so a
     flush is in flight on the wrong side of the split. *)
  let joiner = World.proc w ~site:1 ~name:"j" in
  let jres = ref None in
  World.run_task w joiner (fun () ->
      ignore (Runtime.pg_lookup joiner "stale");
      jres := Some (Runtime.pg_join joiner gid ~credentials:(Message.create ())));
  World.run_for w 8_000;
  World.partition w [ 0 ] [ 1; 2 ];
  World.run_for w 10_000_000;
  (* Majority side reformed without the old coordinator. *)
  (match Runtime.pg_view members.(1) gid with
  | Some v ->
    Alcotest.(check bool) "old coordinator evicted" false
      (List.exists
         (fun (m : Addr.proc) -> m.Addr.site = 0)
         v.View.members)
  | None -> Alcotest.fail "majority lost its group copy");
  World.heal w;
  World.run ~until:(World.now w + 40_000_000) w;
  (* The stale coordinator's copy must be gone, not running a rival
     view; the survivors' views agree. *)
  Alcotest.(check bool) "stale coordinator torn down" true
    (Runtime.pg_view members.(0) gid = None);
  (match (Runtime.pg_view members.(1) gid, Runtime.pg_view members.(2) gid) with
  | Some v1, Some v2 ->
    Alcotest.(check int) "survivors agree on the view id" v1.View.view_id v2.View.view_id
  | _ -> Alcotest.fail "a survivor lost its group copy");
  (* And the survivors still make progress. *)
  send w oracle members.(1) ~gid ~tag:0;
  World.run w;
  Alcotest.(check bool) "survivor delivers post-heal" true (List.mem 0 got.(2));
  assert_oracle_clean oracle

(* Joins arriving on both sides of a split: the majority side admits
   its joiner; the minority side must not install any view admitting
   one while partitioned.  After the heal every surviving copy agrees
   on one membership. *)
let test_concurrent_joins_across_split () =
  let w, gid, members, oracle, _got = setup ~seed:0xD00DL ~sites:3 "spl" in
  ignore oracle;
  let wj = World.proc w ~site:0 ~name:"wj" (* majority-side joiner *) in
  let lj = World.proc w ~site:2 ~name:"lj" (* minority-side joiner *) in
  World.partition w [ 0; 1 ] [ 2 ];
  World.run_for w 6_000_000;
  let wres = ref None and lres = ref None in
  World.run_task w wj (fun () ->
      ignore (Runtime.pg_lookup wj "spl");
      wres := Some (Runtime.pg_join wj gid ~credentials:(Message.create ())));
  World.run_task w lj (fun () ->
      ignore (Runtime.pg_lookup lj "spl");
      lres := Some (Runtime.pg_join lj gid ~credentials:(Message.create ())));
  World.run_for w 6_000_000;
  (match !wres with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "majority-side join failed during split: %s" e
  | None -> Alcotest.fail "majority-side join hung");
  (* The minority-side join must not have been admitted by a wedged
     component: either still blocked or already refused. *)
  (match !lres with
  | Some (Ok ()) -> Alcotest.fail "minority-side join admitted during the split"
  | Some (Error _) | None -> ());
  (* No view installed on the minority side admits the joiner. *)
  (match Runtime.pg_view members.(2) gid with
  | Some v ->
    Alcotest.(check bool) "minority never admitted its joiner" false
      (List.exists (fun (m : Addr.proc) -> Addr.equal_proc m (Runtime.proc_addr lj)) v.View.members)
  | None -> ());
  World.heal w;
  World.run ~until:(World.now w + 40_000_000) w;
  (* Post-heal: one membership, shared by every copy that remains. *)
  let views =
    List.filter_map
      (fun p -> Runtime.pg_view p gid)
      [ members.(0); members.(1); wj ]
  in
  (match views with
  | [] -> Alcotest.fail "group dissolved"
  | v0 :: rest ->
    List.iter
      (fun (v : View.t) ->
        Alcotest.(check int) "post-heal views agree" v0.View.view_id v.View.view_id)
      rest;
    Alcotest.(check bool) "majority joiner retained" true
      (List.exists
         (fun (m : Addr.proc) -> Addr.equal_proc m (Runtime.proc_addr wj))
         v0.View.members));
  assert_oracle_clean oracle

(* Seeded partition/heal plans end-to-end: every plan in the sweep must
   uphold all oracle invariants — including no-split-brain and
   primary-partition-progress — and still make progress.  (Plans are
   drawn by Nemesis.random_plan, which now emits partition, one-way
   partition, and heal phases.) *)
let test_partition_nemesis_sweep () =
  let with_partition = ref 0 in
  for i = 0 to 24 do
    let seed = Int64.of_int (9300 + i) in
    match Scenario.run ~seed () with
    | Error e -> Alcotest.failf "seed %Ld: scenario setup failed: %s" seed e
    | Ok r ->
      if
        List.exists
          (function
            | { Nemesis.op = Nemesis.Partition _ | Nemesis.Partition_oneway _; _ } -> true
            | _ -> false)
          r.plan
      then incr with_partition;
      if r.violations <> [] then
        Alcotest.failf "seed %Ld:\n%s" seed (Oracle.report r.oracle r.violations);
      Alcotest.(check bool) (Printf.sprintf "seed %Ld made progress" seed) true (r.delivered > 0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sweep actually exercised partitions (%d/25 plans)" !with_partition)
    true
    (!with_partition >= 12)

let suite =
  [
    Alcotest.test_case "majority progress under a 3/2 split" `Quick test_majority_progress;
    Alcotest.test_case "minority Reject + rejoin via state transfer" `Quick
      test_minority_reject_and_rejoin;
    Alcotest.test_case "stale coordinator is fenced, not split-brained" `Quick
      test_stale_coordinator_fenced;
    Alcotest.test_case "concurrent joins on both sides of a split" `Quick
      test_concurrent_joins_across_split;
    Alcotest.test_case "partition/heal nemesis sweep (25 seeds)" `Slow
      test_partition_nemesis_sweep;
  ]
