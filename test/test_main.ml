(* `test_main.exe fuzz-sweep [N]` bypasses alcotest: run N (default 50)
   seeded nemesis scenarios at the default intensity and demand a clean
   oracle verdict from every one.  CI runs this as a separate step. *)
let fuzz_sweep n =
  let failures = ref 0 in
  for i = 1 to n do
    let seed = Int64.of_int (9000 + i) in
    let r =
      match Vsync_core.Scenario.run ~seed ~intensity:0.5 () with
      | Ok r -> r
      | Error e -> failwith (Printf.sprintf "fuzz-sweep seed %Ld: scenario setup failed: %s" seed e)
    in
    let ok = r.Vsync_core.Scenario.violations = [] in
    Printf.printf "seed %Ld: %s  sent %d delivered %d\n%!" seed
      (if ok then "PASS" else "FAIL")
      r.Vsync_core.Scenario.sent r.Vsync_core.Scenario.delivered;
    if not ok then begin
      incr failures;
      print_string
        (Vsync_core.Oracle.report r.Vsync_core.Scenario.oracle r.Vsync_core.Scenario.violations);
      print_string "plan was:\n";
      print_string (Vsync_sim.Nemesis.plan_to_string r.Vsync_core.Scenario.plan)
    end
  done;
  if !failures > 0 then begin
    Printf.printf "fuzz-sweep: %d/%d seeds FAILED\n" !failures n;
    exit 1
  end
  else begin
    Printf.printf "fuzz-sweep: all %d seeds passed\n" n;
    exit 0
  end

let () =
  (match Array.to_list Sys.argv with
  | _ :: "fuzz-sweep" :: rest ->
    let n = match rest with count :: _ -> int_of_string count | [] -> 50 in
    fuzz_sweep n
  | _ -> ());
  Alcotest.run "vsync"
    [
      ("util", Test_util.suite);
      ("msg", Test_msg.suite);
      ("sim", Test_sim.suite);
      ("tasks", Test_tasks.suite);
      ("transport", Test_transport.suite);
      ("obs", Test_obs.suite);
      ("nemesis", Test_nemesis.suite);
      ("core_smoke", Test_core_smoke.suite);
      ("vsync_props", Test_vsync_props.suite);
      ("ordering", Test_ordering.suite);
      ("gc", Test_gc.suite);
      ("failures", Test_failures.suite);
      ("model", Test_model.suite);
      ("api", Test_api.suite);
      ("regressions", Test_regressions.suite);
      ("fuzz", Test_fuzz.suite);
      ("toolkit", Test_toolkit.suite);
      ("twentyq", Test_twentyq.suite);
      ("extensions", Test_extensions.suite);
      ("realtime", Test_realtime.suite);
      ("tools2", Test_tools2.suite);
      ("partition", Test_partition.suite);
      ("shard", Test_shard.suite);
    ]
