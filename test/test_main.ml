(* `test_main.exe fuzz-sweep [N] [--jobs J]` bypasses alcotest: run N
   (default 50) seeded nemesis scenarios at the default intensity and
   demand a clean oracle verdict from every one.  With [--jobs J > 1]
   the seeds run on J domains (each seed is still bit-deterministic —
   worlds share nothing); results print in seed order after the join.
   CI runs the parallel sweep plus a small sequential control. *)
let fuzz_sweep ?(jobs = 1) n =
  let seeds = Array.init n (fun i -> Int64.of_int (9001 + i)) in
  let results =
    Vsync_parallel.Pool.map ~jobs
      (fun seed ->
        match Vsync_core.Scenario.run ~seed ~intensity:0.5 () with
        | Ok r -> (seed, r)
        | Error e ->
          failwith (Printf.sprintf "fuzz-sweep seed %Ld: scenario setup failed: %s" seed e))
      seeds
  in
  let failures = ref 0 in
  Array.iter
    (fun (seed, r) ->
      let ok = r.Vsync_core.Scenario.violations = [] in
      Printf.printf "seed %Ld: %s  sent %d delivered %d\n%!" seed
        (if ok then "PASS" else "FAIL")
        r.Vsync_core.Scenario.sent r.Vsync_core.Scenario.delivered;
      if not ok then begin
        incr failures;
        print_string
          (Vsync_core.Oracle.report r.Vsync_core.Scenario.oracle r.Vsync_core.Scenario.violations);
        print_string "plan was:\n";
        print_string (Vsync_sim.Nemesis.plan_to_string r.Vsync_core.Scenario.plan)
      end)
    results;
  if !failures > 0 then begin
    Printf.printf "fuzz-sweep: %d/%d seeds FAILED\n" !failures n;
    exit 1
  end
  else begin
    Printf.printf "fuzz-sweep: all %d seeds passed\n" n;
    exit 0
  end

let () =
  (match Array.to_list Sys.argv with
  | _ :: "fuzz-sweep" :: rest ->
    let rec parse n jobs = function
      | "--jobs" :: j :: rest -> parse n (int_of_string j) rest
      | count :: rest -> parse (int_of_string count) jobs rest
      | [] -> (n, jobs)
    in
    let n, jobs = parse 50 1 rest in
    fuzz_sweep ~jobs n
  | _ -> ());
  Alcotest.run "vsync"
    [
      ("util", Test_util.suite);
      ("msg", Test_msg.suite);
      ("sim", Test_sim.suite);
      ("tasks", Test_tasks.suite);
      ("transport", Test_transport.suite);
      ("obs", Test_obs.suite);
      ("nemesis", Test_nemesis.suite);
      ("core_smoke", Test_core_smoke.suite);
      ("vsync_props", Test_vsync_props.suite);
      ("ordering", Test_ordering.suite);
      ("gc", Test_gc.suite);
      ("failures", Test_failures.suite);
      ("model", Test_model.suite);
      ("api", Test_api.suite);
      ("regressions", Test_regressions.suite);
      ("fuzz", Test_fuzz.suite);
      ("toolkit", Test_toolkit.suite);
      ("twentyq", Test_twentyq.suite);
      ("extensions", Test_extensions.suite);
      ("realtime", Test_realtime.suite);
      ("tools2", Test_tools2.suite);
      ("partition", Test_partition.suite);
      ("shard", Test_shard.suite);
      ("backend", Test_backend.suite);
      ("flowctl", Test_flowctl.suite);
    ]
