(* Regression tests for specific bugs found and fixed during
   development.  Each test reproduces the original trigger; keep them
   even when they look redundant with broader scenarios. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

let e_app = Entry.user 0

(* Bug 1: the coordinator could start the next view change after
   sending — but before applying — its own commit, building the new
   change against the retiring view and a stale wedge set.  Trigger:
   several joins arriving back-to-back (each join's request lands while
   the previous commit is still in flight to the coordinator itself). *)
let test_concurrent_joins () =
  let w = World.create ~seed:0x7E57L ~sites:4 () in
  let founder = World.proc w ~site:0 ~name:"m0" in
  let gid = ref None in
  World.run_task w founder (fun () -> gid := Some (Runtime.pg_create founder "cj"));
  World.run w;
  let gid = Option.get !gid in
  let ok = Array.make 3 false in
  let joiners = Array.init 3 (fun i -> World.proc w ~site:(i + 1) ~name:(Printf.sprintf "j%d" i)) in
  Array.iteri
    (fun i p ->
      World.run_task w p (fun () ->
          ignore (Runtime.pg_lookup p "cj");
          match Runtime.pg_join p gid ~credentials:(Message.create ()) with
          | Ok () -> ok.(i) <- true
          | Error _ -> ()))
    joiners;
  World.run w;
  World.run w;
  Array.iteri
    (fun i b -> Alcotest.(check bool) (Printf.sprintf "concurrent join %d completed" i) true b)
    ok;
  match Runtime.pg_view founder gid with
  | Some v -> Alcotest.(check int) "all four in one consistent view" 4 (View.n_members v)
  | None -> Alcotest.fail "no view"

(* Bug 2: the origin never recorded its own CBCAST uids in the causal
   engine, so a flush could re-inject and re-deliver its own message.
   Trigger: a sender's multicast lands in a view-change stabilization
   (another site had not received it when the wedge hit). *)
let test_no_self_redelivery_through_flush () =
  let w = World.create ~seed:7L ~sites:3 () in
  let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "m%d" s)) in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "sr"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to 2 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "sr");
        ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
  done;
  World.run w;
  let got0 = ref [] in
  Runtime.bind members.(0) e_app (fun m -> got0 := Option.get (Message.get_int m "tag") :: !got0);
  Array.iter (fun m -> if m != members.(0) then Runtime.bind m e_app (fun _ -> ())) members;
  (* Send a burst while a join wedges the group mid-stream. *)
  World.run_task w members.(0) (fun () ->
      for k = 1 to 8 do
        Runtime.sleep members.(0) 10_000;
        let msg = Message.create () in
        Message.set_int msg "tag" k;
        ignore (Runtime.bcast members.(0) Types.Cbcast ~dest:(Addr.Group gid) ~entry:e_app msg ~want:Types.No_reply)
      done);
  let joiner = World.proc w ~site:1 ~name:"mid-joiner" in
  World.run_task w joiner (fun () ->
      ignore (Runtime.pg_lookup joiner "sr");
      ignore (Runtime.pg_join joiner gid ~credentials:(Message.create ())));
  World.run w;
  Alcotest.(check (list int)) "sender delivered its own burst exactly once"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ] (List.rev !got0)

(* Bug 3: the transport reset a peer's channel state on FIRST contact
   (treating the initial epoch as a restart), so the second message on
   a channel could be mistaken for a duplicate.  Trigger: any two
   messages with an intervening reply on a fresh channel — the original
   manifestation was a join request vanishing after a directory
   query. *)
let test_fresh_channel_second_message () =
  let w = World.create ~seed:2L ~sites:2 () in
  let a = World.proc w ~site:0 ~name:"a" and b = World.proc w ~site:1 ~name:"b" in
  let got = ref [] in
  Runtime.bind a e_app (fun m -> got := Option.get (Message.get_int m "tag") :: !got);
  ignore b;
  World.run_task w b (fun () ->
      for k = 1 to 3 do
        let msg = Message.create () in
        Message.set_int msg "tag" k;
        ignore
          (Runtime.bcast b Types.Cbcast ~dest:(Addr.Proc (Runtime.proc_addr a)) ~entry:e_app msg
             ~want:Types.No_reply);
        (* Give each send its own acknowledgement round. *)
        Runtime.sleep b 100_000
      done);
  World.run w;
  Alcotest.(check (list int)) "every message on a fresh channel arrives" [ 1; 2; 3 ]
    (List.rev !got)

(* Bug 4: events queued at a site that stops being the coordinator
   after a view change were never re-routed, so cascades of failures
   could wedge the group (pg_kill of the whole membership never
   dissolved it).  Covered directly in Test_api.test_pg_kill; here the
   more general cascade: three members die one after another, fast. *)
let test_failure_cascade_dissolves () =
  let w = World.create ~seed:3L ~sites:3 () in
  let members = Array.init 3 (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "m%d" s)) in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "cas"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to 2 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "cas");
        ignore (Runtime.pg_join members.(i) gid ~credentials:(Message.create ())))
  done;
  World.run w;
  Runtime.kill_proc members.(0);
  Runtime.kill_proc members.(1);
  Runtime.kill_proc members.(2);
  World.run w;
  World.run w;
  (* Every site's state for the group must be gone (the empty view
     dissolves it; memberless sites GC their copies). *)
  Array.iter
    (fun m ->
      Alcotest.(check bool) "state dropped everywhere" true (Runtime.pg_view m gid = None))
    members

(* Bug 5: a caller could hang when its responder died between the send
   and the delivery (the dead member was still listed in the view when
   the message arrived at its site).  Trigger: want-reply message to a
   freshly killed member. *)
let test_no_hang_on_dead_responder () =
  let w = World.create ~seed:4L ~sites:2 () in
  let a = World.proc w ~site:0 ~name:"a" and b = World.proc w ~site:1 ~name:"b" in
  Runtime.bind b e_app (fun req -> Runtime.reply b ~request:req (Message.create ()));
  let outcome = ref None in
  World.run_task w a (fun () ->
      (* b dies while the request is in flight. *)
      Runtime.spawn_task a (fun () -> ());
      outcome :=
        Some
          (Runtime.bcast a Types.Cbcast ~dest:(Addr.Proc (Runtime.proc_addr b)) ~entry:e_app
             (Message.create ()) ~want:(Types.Wait_n 1)));
  Runtime.kill_proc b;
  World.run w;
  match !outcome with
  | Some Runtime.All_failed | Some (Runtime.Replies []) -> ()
  | Some (Runtime.Replies _) -> Alcotest.fail "reply from a dead process?"
  | None -> Alcotest.fail "caller hung on a dead responder"

(* The message-path rework (interned fields, copy-on-write bodies,
   cached frame sizes) must not perturb protocol behaviour in any way:
   two fixed-seed scenarios have their complete oracle delivery
   histories locked by digest.  These digests were recorded before the
   rework and verified unchanged after it.  If a deliberate protocol
   change moves them, regenerate and say so in the commit message.
   (Regenerated for the wire-efficiency work: frame coalescing and
   delayed acks shift delivery timing, so the oracle histories
   interleave differently — same sent/delivered counts, zero
   violations; see EXPERIMENTS.md.  Regenerated again for the
   primary-partition work: Nemesis.random_plan now emits partition and
   heal phases, so the faulty-seed plan and its whole trace differ —
   and again within that work for the partition-hardening fixes
   (revocable suspicions, past-view wedge fencing, wedge-refusal echo,
   origin-side GBCAST retention), which change recovery interleavings
   on the faulty seed; the clean-run digest is unchanged throughout.) *)
let test_scenario_trace_digests () =
  let digest (r : Scenario.result) =
    Digest.to_hex (Digest.string (Format.asprintf "%a" Oracle.pp_history r.oracle))
  in
  let run_exn sc =
    match sc with Ok r -> r | Error e -> Alcotest.failf "scenario setup failed: %s" e
  in
  let r =
    run_exn
      (Scenario.run ~sites:3 ~horizon_us:6_000_000 ~settle_us:20_000_000 ~intensity:0.5
         ~seed:0xD16E57L ())
  in
  Alcotest.(check int) "faulty run: sent" 116 r.sent;
  Alcotest.(check int) "faulty run: delivered" 239 r.delivered;
  Alcotest.(check int) "faulty run: no violations" 0 (List.length r.violations);
  Alcotest.(check string) "faulty run: trace digest" "2408068808997495fee2048893ea2f1f" (digest r);
  let r2 =
    run_exn (Scenario.run ~sites:4 ~horizon_us:4_000_000 ~settle_us:10_000_000 ~plan:[] ~seed:42L ())
  in
  Alcotest.(check int) "clean run: sent" 109 r2.sent;
  Alcotest.(check int) "clean run: delivered" 436 r2.delivered;
  Alcotest.(check int) "clean run: no violations" 0 (List.length r2.violations);
  Alcotest.(check string) "clean run: trace digest" "5fbe073e79be3fe24d596902fdccf513" (digest r2)

let suite =
  [
    Alcotest.test_case "concurrent joins (commit-window race)" `Quick test_concurrent_joins;
    Alcotest.test_case "no self-redelivery through flush" `Quick test_no_self_redelivery_through_flush;
    Alcotest.test_case "fresh channel second message" `Quick test_fresh_channel_second_message;
    Alcotest.test_case "failure cascade dissolves group" `Quick test_failure_cascade_dissolves;
    Alcotest.test_case "no hang on dead responder" `Quick test_no_hang_on_dead_responder;
    Alcotest.test_case "scenario trace digests" `Quick test_scenario_trace_digests;
  ]
