(* Second round of toolkit edge cases: counting semaphores, config
   change callbacks, checkpoint rotation, news unsubscribe, recovery's
   partial-failure path, stable-store erasure, and transport behaviour
   under randomized loss (property). *)

open Vsync_core
open Vsync_toolkit
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message

let make_service = Test_toolkit.make_service_for_extensions

(* --- counting semaphore (count = 2) --- *)

let test_semaphore_counting () =
  let w, members, _client, gid = make_service ~seed:101L () in
  let tools = Array.map (fun m -> Semaphore.attach m ~gid) members in
  World.run_task w members.(0) (fun () -> Semaphore.define tools.(0) ~name:"pool" ~count:2);
  World.run w;
  let inside = ref 0 and peak = ref 0 and entered = ref 0 in
  Array.iter
    (fun m ->
      World.run_task w m (fun () ->
          match Semaphore.p m ~gid ~name:"pool" with
          | Ok () ->
            incr entered;
            incr inside;
            if !inside > !peak then peak := !inside;
            Runtime.sleep m 1_000_000;
            decr inside;
            Semaphore.v m ~gid ~name:"pool"
          | Error e -> Alcotest.failf "P: %s" e))
    members;
  World.run w;
  Alcotest.(check int) "all three eventually entered" 3 !entered;
  Alcotest.(check int) "concurrency capped at the count" 2 !peak

(* --- config change callbacks --- *)

let test_config_on_change () =
  let w, members, _client, gid = make_service ~seed:102L () in
  let tools = Array.map (fun m -> Config_tool.attach m ~gid) members in
  let seen = ref [] in
  Config_tool.on_change tools.(2) (fun key -> seen := key :: !seen);
  World.run_task w members.(0) (fun () ->
      Config_tool.update tools.(0) ~key:"alpha" (Message.Int 1);
      Config_tool.update tools.(0) ~key:"beta" (Message.Int 2));
  World.run w;
  Alcotest.(check (list string)) "change callbacks in update order" [ "alpha"; "beta" ]
    (List.rev !seen);
  Alcotest.(check (list string)) "keys listed sorted" [ "alpha"; "beta" ] (Config_tool.keys tools.(2))

(* --- repdata checkpoint rotation --- *)

let test_repdata_checkpoint_rotation () =
  let w, members, _client, gid = make_service ~seed:103L () in
  let store = Stable_store.create ~sites:3 () in
  let state = ref 0 in
  let tool =
    Repdata.attach members.(0) ~gid ~item:"rot" ~order:Repdata.Causal
      ~apply:(fun msg -> state := !state + Option.value ~default:0 (Message.get_int msg "d"))
      ~log:store
      ~checkpoint:
        ( (fun () -> [ Bytes.of_string (string_of_int !state) ]),
          fun chunks -> List.iter (fun c -> state := int_of_string (Bytes.to_string c)) chunks )
      ~checkpoint_every:4 ()
  in
  World.run_task w members.(0) (fun () ->
      for _ = 1 to 10 do
        let u = Message.create () in
        Message.set_int u "d" 1;
        Repdata.update tool u
      done);
  World.run w;
  (* After 10 updates with a threshold of 4, the log rotated at least
     twice and holds fewer than 4 entries. *)
  let remaining = Stable_store.log_length store ~site:0 ~log:(Repdata.log_name tool) in
  Alcotest.(check bool) "log rotated" true (remaining < 4);
  Alcotest.(check bool) "checkpoint exists" true
    (Stable_store.read_checkpoint store ~site:0 ~name:(Repdata.log_name tool) <> None);
  state := 0;
  Repdata.recover tool;
  Alcotest.(check int) "checkpoint + suffix reproduce the state" 10 !state

(* --- news unsubscribe and self-delivery --- *)

let test_news_unsubscribe () =
  let w = World.create ~seed:104L ~sites:2 () in
  let agents = Array.init 2 (fun s -> News.start_agent (World.runtime w s)) in
  World.run w;
  let subscriber = World.proc w ~site:1 ~name:"sub" in
  let got = ref 0 in
  News.subscribe agents.(1) subscriber ~subject:"s" (fun _ -> incr got);
  let poster = World.proc w ~site:0 ~name:"poster" in
  World.run_task w poster (fun () -> News.post poster ~subject:"s" (Message.create ()));
  World.run w;
  Alcotest.(check int) "received while subscribed" 1 !got;
  News.unsubscribe agents.(1) subscriber ~subject:"s";
  World.run_task w poster (fun () -> News.post poster ~subject:"s" (Message.create ()));
  World.run w;
  Alcotest.(check int) "nothing after unsubscribe" 1 !got

(* --- recovery: partial failure decides Join --- *)

let test_recovery_partial_failure_joins () =
  let w = World.create ~seed:105L ~sites:2 () in
  let store = Stable_store.create ~sites:2 () in
  let rm0 = Recovery.create (World.runtime w 0) ~store in
  let rm1 = Recovery.create (World.runtime w 1) ~store in
  World.run w;
  let m0 = World.proc w ~site:0 ~name:"svc0" and m1 = World.proc w ~site:1 ~name:"svc1" in
  World.run_task w m0 (fun () ->
      let g = Runtime.pg_create m0 "pfs" in
      Recovery.note_view rm0 ~service:"pfs" (Option.get (Runtime.pg_view m0 g));
      Recovery.note_running rm0 ~service:"pfs");
  World.run w;
  World.run_task w m1 (fun () ->
      match Runtime.pg_lookup m1 "pfs" with
      | Some g ->
        ignore (Runtime.pg_join m1 g ~credentials:(Message.create ()));
        Recovery.note_view rm1 ~service:"pfs" (Option.get (Runtime.pg_view m1 g));
        Recovery.note_running rm1 ~service:"pfs"
      | None -> Alcotest.fail "lookup");
  World.run w;
  (* Site 1 crashes and comes back while site 0 keeps the service up:
     the decision must be Join, not a competing restart. *)
  World.crash_site w 1;
  World.run_for w 10_000_000;
  World.restart_site w 1;
  let rm1' = Recovery.create (World.runtime w 1) ~store in
  World.run_for w 3_000_000;
  let decision = ref None in
  Recovery.recover rm1' ~service:"pfs" ~decide:(fun d -> decision := Some d);
  World.run w;
  match !decision with
  | Some `Join -> ()
  | Some `Create -> Alcotest.fail "partial failure must rejoin, not restart"
  | None -> Alcotest.fail "no decision"

(* --- stable store erasure --- *)

let test_stable_store_wipe () =
  let store = Stable_store.create ~sites:2 () in
  Stable_store.append store ~site:0 ~log:"l" (Message.create ());
  Stable_store.write_checkpoint store ~site:0 ~name:"c" [ Bytes.of_string "x" ];
  Stable_store.wipe_site store ~site:0;
  Alcotest.(check int) "log gone" 0 (Stable_store.log_length store ~site:0 ~log:"l");
  Alcotest.(check bool) "checkpoint gone" true
    (Stable_store.read_checkpoint store ~site:0 ~name:"c" = None)

(* --- twentyq remove_rows --- *)

let test_twentyq_remove_rows () =
  let w = World.create ~seed:106L ~sites:2 () in
  let m0 = World.proc w ~site:0 ~name:"tq" in
  let svc = ref None in
  World.run_task w m0 (fun () ->
      svc := Some (Twentyq.Service.create m0 ~db:(Twentyq.Database.demo_cars ()) ~nmembers:1 ()));
  World.run w;
  let client_proc = World.proc w ~site:1 ~name:"cl" in
  World.run_task w client_proc (fun () ->
      match Twentyq.Client.connect client_proc with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
        Twentyq.Client.remove_rows c ~column:"object" ~value:"plane";
        Runtime.sleep client_proc 2_000_000;
        (match Twentyq.Client.vertical c "make=Boeing" with
        | Ok a -> Alcotest.(check string) "planes gone" "no" (Twentyq.Database.answer_to_string a)
        | Error e -> Alcotest.failf "query: %s" e));
  World.run w;
  Alcotest.(check int) "ten rows remain" 10 (Twentyq.Database.n_rows (Twentyq.Service.db (Option.get !svc)))

(* --- compliance checking (Sec 5 Summary wish) --- *)

let test_mode_check () =
  let w, members, client, gid = make_service ~seed:107L () in
  let e_update = Vsync_msg.Entry.user 1 in
  let applied = ref 0 in
  let checkers =
    Array.map
      (fun m ->
        let chk = Mode_check.install m in
        (* Updates must arrive by GBCAST; queries (e_app) by CBCAST. *)
        Mode_check.require chk ~entry:e_update [ Types.Gbcast ];
        Runtime.bind m e_update (fun _ -> incr applied);
        chk)
      members
  in
  let rejected_senders = ref [] in
  Mode_check.on_violation checkers.(0) (fun m ->
      match Message.sender m with
      | Some s -> rejected_senders := Addr.proc_to_string s :: !rejected_senders
      | None -> ());
  World.run_task w client (fun () ->
      (* A buggy client updates over CBCAST: rejected at every member,
         consistently. *)
      ignore
        (Runtime.bcast client Types.Cbcast ~dest:(Addr.Group gid) ~entry:e_update
           (Message.create ()) ~want:Types.No_reply);
      Runtime.sleep client 1_000_000;
      (* A correct client updates over GBCAST: applied everywhere. *)
      ignore
        (Runtime.bcast client Types.Gbcast ~dest:(Addr.Group gid) ~entry:e_update
           (Message.create ()) ~want:Types.No_reply));
  World.run w;
  Alcotest.(check int) "only the compliant update applied (x3 members)" 3 !applied;
  Array.iteri
    (fun i chk ->
      Alcotest.(check int) (Printf.sprintf "member %d rejected the rogue update" i) 1
        (Mode_check.violations chk))
    checkers;
  Alcotest.(check (list string)) "offender identified"
    [ Addr.proc_to_string (Runtime.proc_addr client) ]
    !rejected_senders

(* --- transport under randomized loss: a property over seeds --- *)

let prop_transport_loss =
  QCheck.Test.make ~name:"transport delivers exactly-once in-order under random loss" ~count:25
    QCheck.(pair (1 -- 1000) (0 -- 40))
    (fun (seed, loss_pct) ->
      let module Engine = Vsync_sim.Engine in
      let module Net = Vsync_sim.Net in
      let module Endpoint = Vsync_transport.Endpoint in
      let e = Engine.create ~seed:(Int64.of_int seed) () in
      let n =
        Net.create e
          { Net.default_config with Net.loss_probability = float_of_int loss_pct /. 100.0 }
          ~sites:2
      in
      let fab = Endpoint.fabric (Net.backend n) in
      let a = Endpoint.create fab ~site:0 ~size:(fun _ -> 64) () in
      let b = Endpoint.create fab ~site:1 ~size:(fun _ -> 64) () in
      Endpoint.set_receiver a (fun ~src:_ _ -> ());
      let got = ref [] in
      Endpoint.set_receiver b (fun ~src:_ tags -> List.iter (fun tag -> got := tag :: !got) tags);
      for tag = 1 to 20 do
        Endpoint.send a ~dst:1 tag
      done;
      Engine.run ~until:600_000_000 e;
      List.rev !got = List.init 20 (fun i -> i + 1))

let suite =
  [
    Alcotest.test_case "semaphore: counting" `Quick test_semaphore_counting;
    Alcotest.test_case "config: on_change order" `Quick test_config_on_change;
    Alcotest.test_case "repdata: checkpoint rotation" `Quick test_repdata_checkpoint_rotation;
    Alcotest.test_case "news: unsubscribe" `Quick test_news_unsubscribe;
    Alcotest.test_case "recovery: partial failure joins" `Quick test_recovery_partial_failure_joins;
    Alcotest.test_case "stable store: wipe" `Quick test_stable_store_wipe;
    Alcotest.test_case "twentyq: remove rows" `Quick test_twentyq_remove_rows;
    Alcotest.test_case "mode-compliance checking" `Quick test_mode_check;
    QCheck_alcotest.to_alcotest prop_transport_loss;
  ]
