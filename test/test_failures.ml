(* Hard failure-injection scenarios: coordinator death mid view change,
   an ABCAST originator dying after a partial commit, double site
   failures, and membership churn. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

let e_app = Entry.user 0

let form_group ?(seed = 5L) ~sites () =
  let w = World.create ~seed ~sites () in
  let members = Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "p%d" s)) in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "fi"));
  World.run w;
  let gid = Option.get !gid in
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "fi");
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "join %d: %s" i e)
  done;
  World.run w;
  (w, members, gid)

let views_agree members gid survivors =
  let views =
    List.filter_map
      (fun i ->
        match Runtime.pg_view members.(i) gid with
        | Some v -> Some (v.View.view_id, List.map Addr.proc_to_string v.View.members)
        | None -> None)
      survivors
  in
  match views with
  | [] -> Alcotest.fail "no survivor has a view"
  | first :: rest ->
    List.iter
      (fun v -> Alcotest.(check (pair int (list string))) "survivors agree on the view" first v)
      rest;
    first

(* The coordinator's site dies while a view change (for a join) is in
   flight: the next-oldest site must take over, remove the dead members
   consistently, and the group must keep working.  The interrupted
   joiner retries and gets in. *)
let test_coordinator_crash_mid_change () =
  List.iter
    (fun (seed, crash_after_us) ->
      let w, members, gid = form_group ~seed ~sites:4 () in
      let joiner = World.proc w ~site:3 ~name:"late" in
      let join_result = ref None in
      World.run_task w joiner (fun () ->
          match Runtime.pg_join joiner gid ~credentials:(Message.create ()) with
          | Ok () -> join_result := Some true
          | Error _ -> join_result := Some false);
      (* Kill the coordinator (site 0, the creator) somewhere inside the
         wedge/ack/commit window. *)
      World.run_for w crash_after_us;
      World.crash_site w 0;
      World.run ~until:(World.now w + 60_000_000) w;
      let survivors = [ 1; 2; 3 ] in
      let _ = views_agree members gid survivors in
      (* If the first join attempt was swallowed with the dead
         coordinator, a fresh attempt must succeed against the new
         coordinator. *)
      if !join_result <> Some true then begin
        let retry = World.proc w ~site:3 ~name:"late2" in
        let ok = ref false in
        World.run_task w retry (fun () ->
            ignore (Runtime.pg_lookup retry "fi");
            match Runtime.pg_join retry gid ~credentials:(Message.create ()) with
            | Ok () -> ok := true
            | Error e -> Alcotest.failf "retry join failed: %s" e);
        World.run w;
        Alcotest.(check bool) (Printf.sprintf "retry join succeeds (seed %Ld)" seed) true !ok
      end;
      (* The group still delivers consistently. *)
      let logs = Array.make 4 [] in
      Array.iteri
        (fun i m ->
          if i > 0 then Runtime.bind m e_app (fun msg ->
              logs.(i) <- Option.get (Message.get_int msg "tag") :: logs.(i)))
        members;
      World.run_task w members.(1) (fun () ->
          let m = Message.create () in
          Message.set_int m "tag" 99;
          ignore (Runtime.bcast members.(1) Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app m ~want:Types.No_reply));
      World.run w;
      List.iter
        (fun i ->
          Alcotest.(check (list int))
            (Printf.sprintf "survivor %d got post-recovery traffic (seed %Ld)" i seed)
            [ 99 ] logs.(i))
        [ 1; 2 ])
    [ (41L, 10_000); (42L, 25_000); (43L, 40_000); (44L, 60_000) ]

(* An ABCAST originator dies after its commit reached one destination
   but not the other (an asymmetric partition drops the second copy,
   then the originator crashes).  The stabilization protocol must make
   the survivors agree: the committed copy is redistributed to
   everyone. *)
let test_abcast_partial_commit_stabilization () =
  let w, members, gid = form_group ~seed:55L ~sites:3 () in
  let logs = Array.make 3 [] in
  Array.iteri
    (fun i m -> Runtime.bind m e_app (fun msg -> logs.(i) <- Option.get (Message.get_int msg "tag") :: logs.(i)))
    members;
  World.run_task w members.(2) (fun () ->
      let m = Message.create () in
      Message.set_int m "tag" 7;
      ignore
        (Runtime.bcast members.(2) Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app m
           ~want:Types.No_reply));
  (* Let the data+priority rounds complete, then cut 2<->1 so the commit
     reaches site 0 only, then kill the originator. *)
  World.run_for w 55_000;
  World.partition w [ 2 ] [ 1 ];
  World.run_for w 35_000;
  World.crash_site w 2;
  World.heal w;
  World.run ~until:(World.now w + 60_000_000) w;
  let _ = views_agree members gid [ 0; 1 ] in
  Alcotest.(check (list int)) "survivors delivered identically" logs.(0) logs.(1);
  (* For this seed the commit did reach site 0, so stabilization must
     have spread it to site 1 rather than dropping it. *)
  Alcotest.(check (list int)) "the partially-committed ABCAST survived" [ 7 ] logs.(0)

(* Two of four sites die at once. *)
let test_double_failure () =
  let w, members, gid = form_group ~seed:66L ~sites:4 () in
  World.crash_site w 1;
  World.crash_site w 3;
  World.run ~until:(World.now w + 60_000_000) w;
  let view_id, names = views_agree members gid [ 0; 2 ] in
  ignore view_id;
  Alcotest.(check int) "two members remain" 2 (List.length names)

(* Churn: joins, a leave, a kill, another join — everyone left standing
   agrees, ranks stay dense, and traffic flows. *)
let test_membership_churn () =
  let w, members, gid = form_group ~seed:77L ~sites:3 () in
  let extra = Array.init 3 (fun i -> World.proc w ~site:(i mod 3) ~name:(Printf.sprintf "x%d" i)) in
  Array.iter
    (fun p ->
      World.run_task w p (fun () ->
          ignore (Runtime.pg_lookup p "fi");
          ignore (Runtime.pg_join p gid ~credentials:(Message.create ()))))
    extra;
  World.run w;
  (match Runtime.pg_view members.(0) gid with
  | Some v -> Alcotest.(check int) "six members" 6 (View.n_members v)
  | None -> Alcotest.fail "no view");
  (* One leaves, one is killed. *)
  World.run_task w extra.(0) (fun () -> Runtime.pg_leave extra.(0) gid);
  World.run w;
  Runtime.kill_proc extra.(1);
  World.run w;
  let _, names = views_agree members gid [ 0; 1; 2 ] in
  Alcotest.(check int) "four members after churn" 4 (List.length names);
  (* Ranks must be dense and agreed: 0..3. *)
  let ranks =
    List.sort compare
      (List.filter_map (fun m -> Runtime.pg_rank m gid) (Array.to_list members @ [ extra.(2) ]))
  in
  Alcotest.(check (list int)) "dense ranks" [ 0; 1; 2; 3 ] ranks;
  (* Traffic still totally ordered. *)
  let logs = Array.make 3 [] in
  Array.iteri
    (fun i m -> Runtime.bind m e_app (fun msg -> logs.(i) <- Option.get (Message.get_int msg "tag") :: logs.(i)))
    members;
  Array.iteri
    (fun i m ->
      World.run_task w m (fun () ->
          let msg = Message.create () in
          Message.set_int msg "tag" i;
          ignore (Runtime.bcast m Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app msg ~want:Types.No_reply)))
    members;
  World.run w;
  Alcotest.(check int) "all delivered" 3 (List.length logs.(0));
  Alcotest.(check (list int)) "same order 0/1" logs.(0) logs.(1);
  Alcotest.(check (list int)) "same order 0/2" logs.(0) logs.(2)

(* ISIS does not tolerate partitions: a multicast that cannot reach
   every member stalls, and resumes — delivering everywhere, in
   order — once communication is restored (paper Sec 2.1).  The
   partition is kept shorter than the failure-detection window so no
   one is evicted; the oracle judges the run end to end. *)
let test_partition_stall_heal_resume () =
  let w, members, gid = form_group ~seed:99L ~sites:3 () in
  let oracle = Oracle.create w ~gid in
  let logs = Array.make 3 [] in
  Array.iteri
    (fun i m ->
      Oracle.bind_tap oracle m e_app (fun msg ->
          logs.(i) <- Option.get (Message.get_int msg "tag") :: logs.(i)))
    members;
  let bcast_tag i tag =
    World.run_task w members.(i) (fun () ->
        let m = Message.create () in
        Message.set_int m "tag" tag;
        Oracle.note_send oracle members.(i) ~mode:Types.Abcast ~tag;
        ignore
          (Runtime.bcast members.(i) Types.Abcast ~dest:(Addr.Group gid) ~entry:e_app m
             ~want:Types.No_reply))
  in
  bcast_tag 0 1;
  World.run_for w 2_000_000;
  Array.iteri
    (fun i log -> Alcotest.(check (list int)) (Printf.sprintf "member %d pre-partition" i) [ 1 ] log)
    logs;
  (* Cut site 2 off and multicast into the partition: the ABCAST cannot
     gather site 2's priority proposal, so nobody may deliver it. *)
  World.partition w [ 0; 1 ] [ 2 ];
  bcast_tag 0 2;
  World.run_for w 1_000_000;
  Array.iteri
    (fun i log ->
      Alcotest.(check (list int))
        (Printf.sprintf "member %d stalls during the partition" i)
        [ 1 ] log)
    logs;
  (* Heal: the stalled multicast completes everywhere, and later traffic
     flows normally. *)
  World.heal w;
  World.run_for w 5_000_000;
  bcast_tag 1 3;
  World.run ~until:(World.now w + 30_000_000) w;
  Array.iteri
    (fun i log ->
      Alcotest.(check (list int))
        (Printf.sprintf "member %d resumed after heal" i)
        [ 1; 2; 3 ] (List.rev log))
    logs;
  let _ = views_agree members gid [ 0; 1; 2 ] in
  match Oracle.check oracle with
  | [] -> ()
  | violations -> Alcotest.failf "oracle:\n%s" (Oracle.report oracle violations)

(* A crashed site restarts and its (new-incarnation) process joins the
   same group again through state-less join. *)
let test_crash_restart_rejoin () =
  let w, members, gid = form_group ~seed:88L ~sites:3 () in
  World.crash_site w 2;
  World.run ~until:(World.now w + 30_000_000) w;
  let _ = views_agree members gid [ 0; 1 ] in
  World.restart_site w 2;
  let reborn = World.proc w ~site:2 ~name:"reborn" in
  let ok = ref false in
  World.run_task w reborn (fun () ->
      ignore (Runtime.pg_lookup reborn "fi");
      match Runtime.pg_join reborn gid ~credentials:(Message.create ()) with
      | Ok () -> ok := true
      | Error e -> Alcotest.failf "rejoin: %s" e);
  World.run w;
  Alcotest.(check bool) "rejoined after restart" true !ok;
  let _, names = views_agree members gid [ 0; 1 ] in
  Alcotest.(check int) "three members again" 3 (List.length names);
  Alcotest.(check bool) "the new incarnation is the member" true
    (List.exists (fun n -> n = Addr.proc_to_string (Runtime.proc_addr reborn)) names)

let suite =
  [
    Alcotest.test_case "coordinator crash mid view change (4 timings)" `Quick
      test_coordinator_crash_mid_change;
    Alcotest.test_case "abcast partial commit stabilization" `Quick
      test_abcast_partial_commit_stabilization;
    Alcotest.test_case "double site failure" `Quick test_double_failure;
    Alcotest.test_case "membership churn" `Quick test_membership_churn;
    Alcotest.test_case "partition stalls, heal resumes" `Quick test_partition_stall_heal_resume;
    Alcotest.test_case "crash, restart, rejoin" `Quick test_crash_restart_rejoin;
  ]
