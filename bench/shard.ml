(* Sharded scaling: the consistent-hash ring tentpole's proof.

   The flat Sec 5 service keeps one group with a member at every site,
   so every replicated update costs work at every site.  The sharded
   service partitions the relation across many 3-replica groups placed
   by rendezvous hashing, so an update touches 3 sites no matter how
   many the deployment spans — aggregate keyed throughput should grow
   with the partition count at fixed sites.

   Sweep: partition counts 1 / 4 / 16 / 64 at a fixed site count.  The
   1-partition point is the flat-group baseline (replication factor =
   site count, i.e. a member everywhere, exactly the Sec 5 layout);
   the rest use 3-replica groups.  Per point, closed-loop clients on
   every site drive (a) keyed GBCAST upserts and (b) keyed CBCAST
   queries, each for a fixed window of virtual time; we report
   aggregate ops per virtual second and the speedup over the baseline,
   plus the per-site protocol-state gauges at quiescence (which must
   stay flat across the sweep — sharding must not leak state).

   Acceptance (full run): 64-partition aggregate keyed update AND
   query throughput >= 3x the 1-partition flat-group baseline.

     dune exec bench/main.exe -- shard
     dune exec bench/main.exe -- shard --smoke --json BENCH_shard.json *)

open Vsync_core
open Twentyq

type point = {
  p_partitions : int;
  p_replicas : int;
  p_updates : int;
  p_queries : int;
  p_updates_per_s : float;
  p_queries_per_s : float;
  p_max_store : int;
  p_max_residue : int;
  p_max_unstable : int;
}

let max_gauge w f =
  let best = ref 0 in
  for s = 0 to World.n_sites w - 1 do
    let v = f (World.runtime w s) in
    if v > !best then best := v
  done;
  !best

let bench_point ~sites ~partitions ~workers ~window_us =
  let replicas = if partitions = 1 then sites else 3 in
  let w = World.create ~seed:0x5A4DL ~sites () in
  Harness.attach_trace w;
  let d = Sharded.Deployment.deploy w ~partitions ~replicas () in
  if not (Sharded.Deployment.settle ~timeout_us:240_000_000 d) then
    failwith (Printf.sprintf "shard bench: %d-partition deployment failed to form" partitions);
  (* [workers] closed-loop clients per site, so the offered load is
     enough to expose server capacity rather than one client's
     request latency. *)
  let clients =
    Array.init (sites * workers) (fun i ->
        World.proc w ~site:(i mod sites) ~name:(Printf.sprintf "shc%d" i))
  in
  let handles = Array.map (fun p -> Sharded.connect p ~partitions) clients in
  (* Each worker cycles a private key range, so upserts spread over the
     ring and the query window finds the rows the update window left.
     A warmup pass touches every key once outside the measurement
     windows: the first request to a partition pays its directory
     lookup and transport channel establishment (~90 ms extra), which
     is setup cost, not steady-state throughput. *)
  let keyspace = 8 in
  let key i j = Printf.sprintf "k%d:%d" i (j mod keyspace) in
  let warm = ref 0 in
  Array.iteri
    (fun i p ->
      World.run_task w p (fun () ->
          for j = 0 to keyspace - 1 do
            match Sharded.put handles.(i) [ key i j ] with
            | Ok () -> incr warm
            | Error _ -> ()
          done))
    clients;
  World.run w;
  if !warm < Array.length clients * keyspace then
    Printf.printf "shard: warmup incomplete (%d/%d puts)\n%!" !warm
      (Array.length clients * keyspace);
  let updates = ref 0 in
  let stop_upd = World.now w + window_us in
  Array.iteri
    (fun i p ->
      World.run_task w p (fun () ->
          let rec loop j =
            if World.now w < stop_upd then begin
              (match Sharded.put handles.(i) [ key i j ] with
              | Ok () -> incr updates
              | Error _ -> ());
              loop (j + 1)
            end
          in
          loop 0))
    clients;
  World.run ~until:(stop_upd + 30_000_000) w;
  let queries = ref 0 in
  let stop_q = World.now w + window_us in
  Array.iteri
    (fun i p ->
      World.run_task w p (fun () ->
          let rec loop j =
            if World.now w < stop_q then begin
              (match Sharded.ask handles.(i) (Printf.sprintf "object=%s" (key i j)) with
              | Ok _ -> incr queries
              | Error _ -> ());
              loop (j + 1)
            end
          in
          loop 0))
    clients;
  World.run ~until:(stop_q + 30_000_000) w;
  Harness.note_gc ();
  let per_s n = float_of_int n /. (float_of_int window_us /. 1e6) in
  {
    p_partitions = partitions;
    p_replicas = replicas;
    p_updates = !updates;
    p_queries = !queries;
    p_updates_per_s = per_s !updates;
    p_queries_per_s = per_s !queries;
    p_max_store = max_gauge w Runtime.pending_store;
    p_max_residue = max_gauge w Runtime.dedup_residue;
    p_max_unstable = max_gauge w Runtime.pending_unstable;
  }

let run () =
  let sites = if !Harness.smoke then 6 else 20 in
  let sweep = if !Harness.smoke then [ 1; 4; 16 ] else [ 1; 4; 16; 64 ] in
  let workers = if !Harness.smoke then 4 else 24 in
  let window_us = if !Harness.smoke then 4_000_000 else 15_000_000 in
  (* Sweep points are independent worlds, so with [--jobs] they run on
     separate domains (each point stays internally deterministic).  The
     shared JSONL trace channel is not domain-safe, so [--trace-out]
     forces the sequential path. *)
  let jobs = if !Harness.trace_out <> None then 1 else !Harness.jobs in
  let points =
    Array.to_list
      (Vsync_parallel.Pool.map ~jobs
         (fun partitions ->
           Printf.printf "shard: measuring %d partition(s)...\n%!" partitions;
           bench_point ~sites ~partitions ~workers ~window_us)
         (Array.of_list sweep))
  in
  let base = List.hd points in
  let upd_speedup p = p.p_updates_per_s /. Float.max 1e-9 base.p_updates_per_s in
  let q_speedup p = p.p_queries_per_s /. Float.max 1e-9 base.p_queries_per_s in
  Harness.print_table
    ~title:
      (Printf.sprintf "sharded scaling: %d sites, %d closed-loop clients/site, %.0fs windows (virtual time)"
         sites workers
         (float_of_int window_us /. 1e6))
    ~header:
      [
        "partitions"; "replicas"; "updates/s"; "speedup"; "queries/s"; "speedup";
        "store"; "residue"; "unstable";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.p_partitions;
           string_of_int p.p_replicas;
           Printf.sprintf "%.1f" p.p_updates_per_s;
           Printf.sprintf "%.2fx" (upd_speedup p);
           Printf.sprintf "%.1f" p.p_queries_per_s;
           Printf.sprintf "%.2fx" (q_speedup p);
           string_of_int p.p_max_store;
           string_of_int p.p_max_residue;
           string_of_int p.p_max_unstable;
         ])
       points);
  let accept =
    match List.find_opt (fun p -> p.p_partitions = 64) points with
    | None -> None
    | Some p64 ->
      let u = upd_speedup p64 and q = q_speedup p64 in
      let ok = u >= 3.0 && q >= 3.0 in
      Printf.printf "64-partition speedup: %.2fx updates, %.2fx queries (acceptance: >= 3x) %s\n"
        u q
        (if ok then "PASS" else "FAIL");
      Some (u, q, ok)
  in
  match !Harness.json_path with
  | None -> ()
  | Some path ->
    let module J = Harness.Json in
    let point_json p =
      J.Obj
        [
          ("partitions", J.Int p.p_partitions);
          ("replicas", J.Int p.p_replicas);
          ("updates", J.Int p.p_updates);
          ("queries", J.Int p.p_queries);
          ("updates_per_s", J.Float p.p_updates_per_s);
          ("update_speedup", J.Float (upd_speedup p));
          ("queries_per_s", J.Float p.p_queries_per_s);
          ("query_speedup", J.Float (q_speedup p));
          ("max_pending_store", J.Int p.p_max_store);
          ("max_dedup_residue", J.Int p.p_max_residue);
          ("max_pending_unstable", J.Int p.p_max_unstable);
        ]
    in
    let fields =
      [
        ("bench", J.Str "shard");
        ("smoke", J.Bool !Harness.smoke);
        ("sites", J.Int sites);
        ("workers_per_site", J.Int workers);
        ("window_us", J.Int window_us);
        ("points", J.List (List.map point_json points));
      ]
      @
      match accept with
      | None -> []
      | Some (u, q, ok) ->
        [
          ( "acceptance",
            J.Obj
              [
                ("update_speedup_64", J.Float u);
                ("query_speedup_64", J.Float q);
                ("threshold", J.Float 3.0);
                ("ok", J.Bool ok);
              ] );
        ]
    in
    Harness.write_json path (J.Obj fields);
    Printf.printf "shard: JSON written to %s\n" path
