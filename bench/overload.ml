(* Sustained-overload sweep: the flow-control tentpole's proof.

   Calibrates the cluster's clean ABCAST delivery rate, then offers
   2x/5x/10x that rate from paced open-loop senders (one per site) for
   a fixed window, in two configurations:

   - [static]: the default tuning — no credits, fixed delayed ack,
     static origination window — with plain asynchronous [bcast], so
     overload piles into the ABCAST backlog;
   - [flowctl]: adaptive tuning (AIMD window, RTT-derived delayed ack,
     transport credits, [ab_queue_limit]) with [bcast_wait], so
     admission control parks the senders instead of growing queues.

   Per decile of the window we sample the queue-depth gauges
   (runtime.ab_queue / ab_inflight, transport.sendq_depth /
   credit_waiting, max over sites); per delivery we record latency from
   an origination stamp in the payload.  Acceptance, at 10x:

   - flowctl sustained throughput >= static;
   - flowctl queue gauges bounded: no gauge strictly grows across all
     deciles of the window;
   - p99 delivery latency reported for both configurations.

     dune exec bench/main.exe -- overload
     dune exec bench/main.exe -- overload --smoke --json BENCH_overload.json *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Metrics = Vsync_obs.Metrics

let flowctl_runtime_config =
  let d = Runtime.default_config in
  {
    d with
    Runtime.ab_adaptive = true;
    ab_queue_limit = 64;
    endpoint =
      {
        d.Runtime.endpoint with
        Vsync_transport.Endpoint.adaptive_ack = true;
        credit_bytes = 64 * 1024;
        credit_frames = 64;
      };
  }

(* Aggregate clean-run delivery rate (msgs/s originated, all members
   delivering) from a closed-loop burst on the default configuration. *)
let calibrate ~sites =
  let c = Harness.make_cluster ~seed:0xCA11L ~sites () in
  let w = c.Harness.w in
  let n = if !Harness.smoke then 120 else 400 in
  let delivered = ref 0 in
  Array.iter (fun m -> Runtime.bind m Harness.e_app (fun _ -> incr delivered)) c.Harness.members;
  let t0 = World.now w in
  World.run_task w c.Harness.members.(0) (fun () ->
      for _ = 1 to n do
        ignore
          (Runtime.bcast c.Harness.members.(0) Types.Abcast ~dest:(Addr.Group c.Harness.gid)
             ~entry:Harness.e_app (Harness.padded_msg 128) ~want:Types.No_reply)
      done);
  let budget = ref 4_000 in
  while !delivered < n * sites && !budget > 0 do
    World.run_for w 10_000;
    decr budget
  done;
  let dt = World.now w - t0 in
  if !delivered < n * sites then failwith "overload: calibration did not drain";
  n * 1_000_000 / max 1 dt

type decile_sample = {
  o_idx : int;
  o_delivered : int;  (* cumulative *)
  o_ab_queue : int;  (* each gauge: max over sites at the boundary *)
  o_ab_inflight : int;
  o_sendq : int;
  o_credit_waiting : int;
}

type run_result = {
  r_label : string;
  r_mult : int;
  r_offered : int;  (* aggregate msgs/s *)
  r_attempted : int;
  r_delivered : int;  (* deliveries within the window, all members *)
  r_msgs_per_s : float;  (* delivered per member per sim-second *)
  r_lat : Harness.latency_stats option;
  r_waits : int;  (* bcast_wait calls that had to park *)
  r_ab_window : int option;  (* live window at the end (flowctl) *)
  r_deciles : decile_sample list;
}

let gauge_max w name =
  let m = ref 0 in
  for s = 0 to World.n_sites w - 1 do
    match Metrics.read_int (Runtime.metrics (World.runtime w s)) name with
    | Some v when v > !m -> m := v
    | _ -> ()
  done;
  !m

let overload_run ~label ~runtime_config ~use_wait ~mult ~offered ~duration_us ~sites =
  let c =
    Harness.make_cluster ~seed:(Int64.of_int (0x0F10 + mult)) ?runtime_config ~sites ()
  in
  let w = c.Harness.w in
  let delivered = ref 0 in
  let lats = ref [] in
  Array.iter
    (fun m ->
      Runtime.bind m Harness.e_app (fun msg ->
          incr delivered;
          match Message.get_int msg "t0" with
          | Some t0 -> lats := (World.now w - t0) :: !lats
          | None -> ()))
    c.Harness.members;
  let t_end = World.now w + duration_us in
  let attempted = ref 0 and waits = ref 0 in
  (* One paced open-loop sender per site: [batch] sends, then sleep
     long enough to hold the aggregate rate at [offered]. *)
  let batch = 4 in
  let per_sender = max 1 (offered / sites) in
  let interval_us = max 1 (batch * 1_000_000 / per_sender) in
  for i = 0 to sites - 1 do
    let p = c.Harness.members.(i) in
    World.run_task w p (fun () ->
        while World.now w < t_end do
          for _ = 1 to batch do
            incr attempted;
            let m = Harness.padded_msg 128 in
            Message.set_int m "t0" (World.now w);
            if use_wait then
              ignore
                (Runtime.bcast_wait
                   ~on_backpressure:(fun _ -> incr waits)
                   p Types.Abcast ~dest:(Addr.Group c.Harness.gid) ~entry:Harness.e_app m
                   ~want:Types.No_reply)
            else
              ignore
                (Runtime.bcast p Types.Abcast ~dest:(Addr.Group c.Harness.gid)
                   ~entry:Harness.e_app m ~want:Types.No_reply)
          done;
          Runtime.sleep p interval_us
        done)
  done;
  let slice = duration_us / 10 in
  let deciles = ref [] in
  for d = 1 to 10 do
    World.run_for w slice;
    deciles :=
      {
        o_idx = d;
        o_delivered = !delivered;
        o_ab_queue = gauge_max w "runtime.ab_queue";
        o_ab_inflight = gauge_max w "runtime.ab_inflight";
        o_sendq = gauge_max w "transport.sendq_depth";
        o_credit_waiting = gauge_max w "transport.credit_waiting";
      }
      :: !deciles;
    Harness.note_gc ()
  done;
  {
    r_label = label;
    r_mult = mult;
    r_offered = offered;
    r_attempted = !attempted;
    r_delivered = !delivered;
    r_msgs_per_s =
      float_of_int !delivered /. float_of_int sites
      /. (float_of_int duration_us /. 1_000_000.0);
    r_lat = Harness.latency_stats !lats;
    r_waits = !waits;
    r_ab_window = Runtime.ab_window_now (World.runtime w 0) c.Harness.gid;
    r_deciles = List.rev !deciles;
  }

(* "Bounded" in the acceptance sense: the gauge does not strictly grow
   across every decile of the window. *)
let monotonic xs =
  match xs with
  | [] | [ _ ] -> false
  | x :: rest -> fst (List.fold_left (fun (mono, prev) v -> (mono && v > prev, v)) (true, x) rest)

let bounded_gauges r =
  let series f = List.map f r.r_deciles in
  List.for_all
    (fun f -> not (monotonic (series f)))
    [
      (fun d -> d.o_ab_queue); (fun d -> d.o_ab_inflight); (fun d -> d.o_sendq);
      (fun d -> d.o_credit_waiting);
    ]

let run () =
  let sites = 3 in
  let duration_us = if !Harness.smoke then 5_000_000 else 20_000_000 in
  let base = calibrate ~sites in
  Printf.printf "calibrated clean ABCAST rate: %d msgs/s (aggregate, %d sites)\n%!" base sites;
  let mults = [ 2; 5; 10 ] in
  let sweep =
    List.map
      (fun mult ->
        let offered = base * mult in
        let static =
          overload_run ~label:"static" ~runtime_config:None ~use_wait:false ~mult ~offered
            ~duration_us ~sites
        in
        let flowctl =
          overload_run ~label:"flowctl" ~runtime_config:(Some flowctl_runtime_config)
            ~use_wait:true ~mult ~offered ~duration_us ~sites
        in
        (mult, static, flowctl))
      mults
  in
  let lat_cell = function
    | None -> "-"
    | Some l -> Printf.sprintf "%.1f / %.1f" l.Harness.median_ms l.Harness.p99_ms
  in
  let peak f r = List.fold_left (fun acc d -> max acc (f d)) 0 r.r_deciles in
  let row (mult, r) =
    [
      Printf.sprintf "%dx" mult;
      r.r_label;
      string_of_int r.r_offered;
      Printf.sprintf "%.0f" r.r_msgs_per_s;
      lat_cell r.r_lat;
      string_of_int (peak (fun d -> d.o_ab_queue) r);
      string_of_int (peak (fun d -> d.o_sendq) r);
      string_of_int r.r_waits;
      (if bounded_gauges r then "yes" else "NO");
    ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "sustained overload: %ds window, %d sites, paced senders at N x clean rate"
         (duration_us / 1_000_000) sites)
    ~header:
      [
        "load"; "config"; "offered/s"; "msgs/s/member"; "lat ms (p50/p99)"; "peak ab_queue";
        "peak sendq"; "bp waits"; "bounded";
      ]
    (List.concat_map (fun (mult, s, f) -> [ row (mult, s); row (mult, f) ]) sweep);
  let _, static10, flowctl10 =
    List.find (fun (m, _, _) -> m = 10) sweep
  in
  let tput_ok = flowctl10.r_msgs_per_s >= static10.r_msgs_per_s in
  let bounded_ok = bounded_gauges flowctl10 in
  let p99 r = match r.r_lat with Some l -> l.Harness.p99_ms | None -> Float.nan in
  Printf.printf "10x: flowctl %.0f vs static %.0f msgs/s/member (acceptance: >=) %s\n"
    flowctl10.r_msgs_per_s static10.r_msgs_per_s
    (if tput_ok then "PASS" else "FAIL");
  Printf.printf "10x: flowctl queue gauges bounded across deciles %s\n"
    (if bounded_ok then "PASS" else "FAIL");
  Printf.printf "10x p99 delivery latency: flowctl %.1f ms vs static %.1f ms\n" (p99 flowctl10)
    (p99 static10);

  match !Harness.json_path with
  | None -> ()
  | Some path ->
    let module J = Harness.Json in
    let decile_json d =
      J.Obj
        [
          ("decile", J.Int d.o_idx);
          ("delivered", J.Int d.o_delivered);
          ("ab_queue", J.Int d.o_ab_queue);
          ("ab_inflight", J.Int d.o_ab_inflight);
          ("sendq_depth", J.Int d.o_sendq);
          ("credit_waiting", J.Int d.o_credit_waiting);
        ]
    in
    let run_json r =
      J.Obj
        ([
           ("label", J.Str r.r_label);
           ("offered_msgs_per_s", J.Int r.r_offered);
           ("attempted", J.Int r.r_attempted);
           ("delivered", J.Int r.r_delivered);
           ("msgs_per_s_per_member", J.Float r.r_msgs_per_s);
           ("backpressure_waits", J.Int r.r_waits);
         ]
        @ (match r.r_lat with
          | None -> []
          | Some l ->
            [
              ("median_ms", J.Float l.Harness.median_ms); ("p99_ms", J.Float l.Harness.p99_ms);
              ("max_ms", J.Float l.Harness.max_ms);
            ])
        @ (match r.r_ab_window with
          | Some n -> [ ("ab_window_final", J.Int n) ]
          | None -> [])
        @ [ ("bounded_gauges", J.Bool (bounded_gauges r));
            ("deciles", J.List (List.map decile_json r.r_deciles)) ])
    in
    Harness.write_json path
      (J.Obj
         [
           ("bench", J.Str "overload");
           ("smoke", J.Bool !Harness.smoke);
           ("sites", J.Int sites);
           ("window_us", J.Int duration_us);
           ("base_rate_msgs_per_s", J.Int base);
           ( "sweep",
             J.List
               (List.map
                  (fun (mult, s, f) ->
                    J.Obj
                      [ ("mult", J.Int mult); ("static", run_json s); ("flowctl", run_json f) ])
                  sweep) );
           ( "acceptance",
             J.Obj
               [
                 ("tput_10x_static", J.Float static10.r_msgs_per_s);
                 ("tput_10x_flowctl", J.Float flowctl10.r_msgs_per_s);
                 ("tput_ok", J.Bool tput_ok);
                 ("bounded_ok", J.Bool bounded_ok);
                 ("p99_ms_static_10x", J.Float (p99 static10));
                 ("p99_ms_flowctl_10x", J.Float (p99 flowctl10));
               ] );
         ]);
    Printf.printf "overload: JSON written to %s\n" path
