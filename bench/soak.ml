(* Bounded-memory soak: the stability-GC tentpole's proof.

   A long mixed CBCAST+ABCAST run (100k messages full, reduced under
   --smoke) against a fully formed group, reported per decile:
   wall-clock message rate, live heap words after a full major, and the
   runtime's own state gauges (retransmission store, dedup residue).
   A guest member joins around decile 3 and leaves around decile 5 —
   view changes mid-run, none in the tail, so a run whose per-view
   delivery state is unbounded has deciles 5..10 to accrete in.

   Two variants: the default ([stability_gc = true], watermarks
   advanced from the stability flow) and the historical behaviour
   ([stability_gc = false], dedup records held for the life of the
   view).  Acceptance, on the default variant of the full run:

   - final-decile live heap within 10% of the second decile;
   - final-decile msgs/s within 10% of the second decile.

   Plus a microbench of the dedup membership test itself:
   [Causal.seen]/[Total.seen] against the resident state left by 100k
   stabilized messages (a watermark) vs the historical equivalent (a
   [Uid_set] holding all 100k uids).  Acceptance: >= 5x.

     dune exec bench/main.exe -- soak
     dune exec bench/main.exe -- soak --smoke --json BENCH_soak.json *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Rng = Vsync_util.Rng

(* --- soak run -------------------------------------------------------- *)

type decile = {
  d_idx : int;
  d_msgs : int;
  d_wall_s : float;
  d_msgs_per_s : float;
  d_live_words : int;
  d_store : int;
  d_dedup : int;
}

type soak_result = {
  s_label : string;
  s_sites : int;
  s_sent : int;
  s_delivered : int;
  s_deciles : decile list;
}

let gauge w f =
  let acc = ref 0 in
  for s = 0 to World.n_sites w - 1 do
    acc := !acc + f (World.runtime w s)
  done;
  !acc

let soak_run ~label ~stability_gc ~msgs ~sites =
  let runtime_config = { Runtime.default_config with Runtime.stability_gc } in
  let c = Harness.make_cluster ~seed:0x50A1L ~runtime_config ~sites () in
  let w = c.Harness.w in
  let delivered = ref 0 in
  Array.iter (fun m -> Runtime.bind m Harness.e_app (fun _ -> incr delivered)) c.Harness.members;
  let guest = World.proc w ~site:0 ~name:"guest" in
  let chunk = msgs / 10 in
  let deciles = ref [] in
  let sent = ref 0 in
  for d = 1 to 10 do
    if d = 3 then begin
      World.run_task w guest (fun () ->
          match Runtime.pg_join guest c.Harness.gid ~credentials:(Message.create ()) with
          | Ok () -> ()
          | Error e -> failwith ("soak guest join: " ^ e));
      World.run_for w 5_000_000
    end;
    if d = 5 then begin
      World.run_task w guest (fun () -> Runtime.pg_leave guest c.Harness.gid);
      World.run_for w 5_000_000
    end;
    (* Each core member must deliver the whole chunk. *)
    let target = !delivered + (chunk * sites) in
    let wall0 = Unix.gettimeofday () in
    World.run_task w c.Harness.members.(0) (fun () ->
        for k = 1 to chunk do
          incr sent;
          let mode = if k mod 8 = 0 then Types.Abcast else Types.Cbcast in
          ignore
            (Runtime.bcast c.Harness.members.(0) mode ~dest:(Addr.Group c.Harness.gid)
               ~entry:Harness.e_app (Harness.padded_msg 64) ~want:Types.No_reply)
        done);
    let budget = ref 2_000 in
    while !delivered < target && !budget > 0 do
      World.run_for w 100_000;
      decr budget
    done;
    if !delivered < target then
      Printf.eprintf "soak %s: decile %d short: %d < %d\n%!" label d !delivered target;
    (* Let stability catch up before sampling state. *)
    World.run_for w 3_000_000;
    let wall = Unix.gettimeofday () -. wall0 in
    Gc.full_major ();
    Harness.note_gc ();
    deciles :=
      {
        d_idx = d;
        d_msgs = chunk;
        d_wall_s = wall;
        d_msgs_per_s = float_of_int chunk /. wall;
        d_live_words = (Gc.stat ()).Gc.live_words;
        d_store = gauge w Runtime.pending_store;
        d_dedup = gauge w Runtime.dedup_residue;
      }
      :: !deciles
  done;
  {
    s_label = label;
    s_sites = sites;
    s_sent = !sent;
    s_delivered = !delivered;
    s_deciles = List.rev !deciles;
  }

let decile_at r i = List.nth r.s_deciles (i - 1)

(* --- wall-clock run --------------------------------------------------- *)

(* The same mixed flood on the wall-clock backend: real time, real
   scheduling noise, and — with the modelled CPU costs and network
   latencies zeroed — the protocol stack running as fast as the
   hardware allows.  The simulated deciles above answer "what would the
   paper's testbed do"; this column answers "what does this machine
   do".  No view changes, no settling pauses: pure hardware-speed
   throughput. *)

type wall_result = {
  wl_sites : int;
  wl_msgs : int;
  wl_delivered : int;
  wl_wall_s : float;
  wl_msgs_per_s : float;
}

let wall_run ~msgs ~sites =
  let d = Runtime.default_config in
  let runtime_config =
    {
      d with
      Runtime.cpu_send_us = 0;
      cpu_recv_us = 0;
      cpu_us_per_kb = 0;
      cpu_us_per_extra_packet = 0;
    }
  in
  let wc =
    {
      Vsync_backend.Wallclock.default_config with
      Vsync_backend.Wallclock.wc_intra_site_us = 0;
      wc_inter_site_us = 1;
      wc_jitter_us = 1;
    }
  in
  let c =
    Harness.make_cluster ~seed:0x50A1L ~runtime_config ~backend:(World.Wall wc) ~sites ()
  in
  let w = c.Harness.w in
  let delivered = ref 0 in
  Array.iter (fun m -> Runtime.bind m Harness.e_app (fun _ -> incr delivered)) c.Harness.members;
  let chunk = msgs / 10 in
  let wall0 = Unix.gettimeofday () in
  for _ = 1 to 10 do
    let target = !delivered + (chunk * sites) in
    World.run_task w c.Harness.members.(0) (fun () ->
        for k = 1 to chunk do
          let mode = if k mod 8 = 0 then Types.Abcast else Types.Cbcast in
          ignore
            (Runtime.bcast c.Harness.members.(0) mode ~dest:(Addr.Group c.Harness.gid)
               ~entry:Harness.e_app (Harness.padded_msg 64) ~want:Types.No_reply)
        done);
    if
      not
        (World.run_cond ~slice_us:50_000 ~timeout_us:120_000_000 w (fun () ->
             !delivered >= target))
    then Printf.eprintf "soak wall: chunk short: %d < %d\n%!" !delivered target
  done;
  let wall = Unix.gettimeofday () -. wall0 in
  {
    wl_sites = sites;
    wl_msgs = msgs;
    wl_delivered = !delivered;
    wl_wall_s = wall;
    wl_msgs_per_s = float_of_int !delivered /. float_of_int sites /. wall;
  }

(* --- dedup membership microbench ------------------------------------- *)

type micro_result = {
  m_history : int;
  m_causal_ns : float;
  m_total_ns : float;
  m_uid_set_ns : float;
  m_causal_speedup : float;
  m_total_speedup : float;
}

let time_ns ~iters ~per_iter f =
  let reps = 3 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9 /. float_of_int (iters * per_iter)

let micro_dedup () =
  let n = if !Harness.smoke then 20_000 else 100_000 in
  let nsites = 4 in
  let per_site = n / nsites in
  (* Resident state after [n] messages all stabilized: a watermark. *)
  let cb : int Causal.t = Causal.create ~n_ranks:nsites () in
  let ab : int Total.t = Total.create ~site:0 () in
  for s = 0 to nsites - 1 do
    Causal.stabilized cb { Types.usite = s; useq = per_site };
    Total.stabilized ab { Types.usite = s; useq = per_site }
  done;
  (* The historical equivalent: every uid resident in a set. *)
  let set = ref Types.Uid_set.empty in
  for s = 0 to nsites - 1 do
    for q = 1 to per_site do
      set := Types.Uid_set.add { Types.usite = s; useq = q } !set
    done
  done;
  let set = !set in
  let probes =
    let r = Rng.create 0xD3DL in
    Array.init 4096 (fun _ ->
        { Types.usite = Rng.int r nsites; useq = 1 + Rng.int r per_site })
  in
  let sink = ref 0 in
  let probe_loop f () = Array.iter (fun u -> if f u then incr sink) probes in
  let iters = if !Harness.smoke then 100 else 400 in
  let measure f = time_ns ~iters ~per_iter:(Array.length probes) (probe_loop f) in
  let causal_ns = measure (Causal.seen cb) in
  let total_ns = measure (Total.seen ab) in
  let uid_set_ns = measure (fun u -> Types.Uid_set.mem u set) in
  assert (!sink > 0);
  {
    m_history = n;
    m_causal_ns = causal_ns;
    m_total_ns = total_ns;
    m_uid_set_ns = uid_set_ns;
    m_causal_speedup = uid_set_ns /. causal_ns;
    m_total_speedup = uid_set_ns /. total_ns;
  }

(* --- driver ---------------------------------------------------------- *)

let run () =
  let msgs = if !Harness.smoke then 5_000 else 100_000 in
  let sites = 3 in
  let gc_on = soak_run ~label:"stability_gc" ~stability_gc:true ~msgs ~sites in
  let gc_off = soak_run ~label:"no_gc" ~stability_gc:false ~msgs ~sites in
  let rows r =
    List.map
      (fun d ->
        [
          r.s_label;
          string_of_int d.d_idx;
          Printf.sprintf "%.0f" d.d_msgs_per_s;
          string_of_int d.d_live_words;
          string_of_int d.d_store;
          string_of_int d.d_dedup;
        ])
      r.s_deciles
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "soak: %d msgs (1/8 ABCAST), %d sites, view changes at deciles 3 and 5"
         msgs sites)
    ~header:[ "config"; "decile"; "msgs/s (wall)"; "live words"; "store"; "dedup residue" ]
    (rows gc_on @ rows gc_off);

  let d2 = decile_at gc_on 2 and d10 = decile_at gc_on 10 in
  let heap_ratio = float_of_int d10.d_live_words /. float_of_int (max 1 d2.d_live_words) in
  let tput_ratio = d10.d_msgs_per_s /. d2.d_msgs_per_s in
  let heap_ok = heap_ratio <= 1.10 in
  let tput_ok = tput_ratio >= 0.90 in
  Printf.printf "final/second decile live heap: %.3f (acceptance: <= 1.10) %s\n" heap_ratio
    (if heap_ok then "PASS" else "FAIL");
  Printf.printf "final/second decile msgs/s: %.3f (acceptance: >= 0.90) %s\n" tput_ratio
    (if tput_ok then "PASS" else "FAIL");
  let off10 = decile_at gc_off 10 in
  Printf.printf "dedup residue at decile 10: %d (stability_gc) vs %d (no_gc)\n"
    (decile_at gc_on 10).d_dedup off10.d_dedup;

  let wall_r =
    if not !Harness.wall then None
    else begin
      let r = wall_run ~msgs ~sites in
      Printf.printf
        "wall-clock backend: %d msgs in %.2fs real = %.0f msgs/s delivered per member (hardware speed)\n"
        r.wl_msgs r.wl_wall_s r.wl_msgs_per_s;
      Some r
    end
  in

  let m = micro_dedup () in
  Harness.print_table
    ~title:(Printf.sprintf "dedup membership at %dk-message history" (m.m_history / 1000))
    ~header:[ "structure"; "ns/lookup"; "speedup" ]
    [
      [ "Uid_set (historical)"; Printf.sprintf "%.1f" m.m_uid_set_ns; "1.00x" ];
      [ "Causal.seen (watermark)"; Printf.sprintf "%.1f" m.m_causal_ns;
        Printf.sprintf "%.2fx" m.m_causal_speedup ];
      [ "Total.seen (watermark)"; Printf.sprintf "%.1f" m.m_total_ns;
        Printf.sprintf "%.2fx" m.m_total_speedup ];
    ];
  let micro_ok = m.m_causal_speedup >= 5.0 && m.m_total_speedup >= 5.0 in
  Printf.printf "dedup lookup speedup: %.2fx / %.2fx (acceptance: >= 5x) %s\n" m.m_causal_speedup
    m.m_total_speedup
    (if micro_ok then "PASS" else "FAIL");

  match !Harness.json_path with
  | None -> ()
  | Some path ->
    let module J = Harness.Json in
    let decile_json d =
      J.Obj
        [
          ("decile", J.Int d.d_idx);
          ("msgs", J.Int d.d_msgs);
          ("wall_s", J.Float d.d_wall_s);
          ("msgs_per_s", J.Float d.d_msgs_per_s);
          ("live_words", J.Int d.d_live_words);
          ("store", J.Int d.d_store);
          ("dedup_residue", J.Int d.d_dedup);
        ]
    in
    let run_json r =
      J.Obj
        [
          ("sites", J.Int r.s_sites);
          ("sent", J.Int r.s_sent);
          ("delivered", J.Int r.s_delivered);
          ("deciles", J.List (List.map decile_json r.s_deciles));
        ]
    in
    Harness.write_json path
      (J.Obj
         [
           ("bench", J.Str "soak");
           ("smoke", J.Bool !Harness.smoke);
           ("msgs", J.Int msgs);
           ("stability_gc", run_json gc_on);
           ("no_gc", run_json gc_off);
           ( "wall_clock",
             match wall_r with
             | None -> J.Bool false
             | Some r ->
               J.Obj
                 [
                   ("sites", J.Int r.wl_sites);
                   ("msgs", J.Int r.wl_msgs);
                   ("delivered", J.Int r.wl_delivered);
                   ("wall_s", J.Float r.wl_wall_s);
                   ("msgs_per_s_per_member", J.Float r.wl_msgs_per_s);
                 ] );
           ( "acceptance",
             J.Obj
               [
                 ("heap_ratio_final_vs_second", J.Float heap_ratio);
                 ("tput_ratio_final_vs_second", J.Float tput_ratio);
                 ("heap_ok", J.Bool heap_ok);
                 ("tput_ok", J.Bool tput_ok);
               ] );
           ( "micro_dedup",
             J.Obj
               [
                 ("history", J.Int m.m_history);
                 ("uid_set_ns", J.Float m.m_uid_set_ns);
                 ("causal_seen_ns", J.Float m.m_causal_ns);
                 ("total_seen_ns", J.Float m.m_total_ns);
                 ("causal_speedup", J.Float m.m_causal_speedup);
                 ("total_speedup", J.Float m.m_total_speedup);
                 ("speedup_ok", J.Bool micro_ok);
               ] );
         ]);
    Printf.printf "soak: JSON written to %s\n" path
