(* Shared plumbing for the paper-reproduction experiments. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Stats = Vsync_util.Stats

let e_app = Entry.user 0

(* Cross-experiment flags, set by [main] from the command line:
   [--json PATH] asks JSON-capable experiments to write their results as
   a machine-readable artifact; [--smoke] shrinks iteration counts so CI
   can record a perf data point without burning minutes. *)
let json_path : string option ref = ref None
let smoke = ref false

(* [--trace-out PATH] streams the typed event layer of every cluster the
   harness builds to PATH as JSONL (one shared file across experiments;
   events carry timestamps and sites, so runs remain separable). *)
let trace_out : string option ref = ref None
let trace_oc : out_channel option ref = ref None

(* [--jobs N] lets sweep-shaped experiments (the shard partition sweep,
   the parallel harness bench) run independent points on N domains.
   [--wall] asks wall-capable experiments (soak) to add a wall-clock
   backend run alongside the simulated one.  Parallel paths refuse to
   combine with [--trace-out]: the JSONL sink is one shared channel. *)
let jobs = ref 1
let wall = ref false

let attach_trace w =
  match !trace_out with
  | None -> ()
  | Some path ->
    let oc =
      match !trace_oc with
      | Some oc -> oc
      | None ->
        let oc = open_out path in
        trace_oc := Some oc;
        at_exit (fun () -> close_out oc);
        oc
    in
    let tr = Vsync_sim.Trace.obs (World.trace w) in
    Vsync_obs.Tracer.add_sink tr (Vsync_obs.Jsonl.sink_to_channel oc);
    Vsync_obs.Tracer.set_enabled tr true

(* [--gc-stats] makes every JSON-writing bench record the peak live
   heap: [note_gc] folds the current live size (after a full major)
   into a running maximum, and [write_json] samples once more and
   appends [max_live_words] to the artifact.  Benches with natural
   checkpoints (end of a run, end of a decile) call [note_gc] there. *)
let gc_stats = ref false
let max_live_words = ref 0

let note_gc () =
  if !gc_stats then begin
    Gc.full_major ();
    let live = (Gc.stat ()).Gc.live_words in
    if live > !max_live_words then max_live_words := live
  end

(* [--no-coalesce] re-runs experiments with the historical wire
   behaviour — one frame per packet, a dedicated ack per delivery, an
   no ABCAST origination gate — for A/B comparisons against the coalescing
   defaults.  [legacy_runtime_config] is that configuration;
   [make_cluster] substitutes it whenever the flag is set and the
   caller did not pin a config of its own. *)
let no_coalesce = ref false

let legacy_runtime_config =
  let d = Runtime.default_config in
  {
    d with
    Runtime.ab_window = 0 (* no origination gate: rounds launch immediately *);
    endpoint =
      { d.Runtime.endpoint with Vsync_transport.Endpoint.coalesce = false; delayed_ack_us = 0 };
  }

(* A minimal JSON emitter — enough for benchmark artifacts, so the
   bench needs no external JSON dependency. *)
module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.4f" f)
      else Buffer.add_string buf "null"
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let to_file path j =
    let oc = open_out path in
    output_string oc (to_string j);
    close_out oc
end

(* All benches write their artifacts through this, so the [--gc-stats]
   annotation lands uniformly. *)
let write_json path (j : Json.t) =
  note_gc ();
  let j =
    match (j, !gc_stats) with
    | Json.Obj fields, true -> Json.Obj (fields @ [ ("max_live_words", Json.Int !max_live_words) ])
    | j, _ -> j
  in
  Json.to_file path j

(* A group with one member per site, fully formed. *)
type cluster = {
  w : World.t;
  members : Runtime.proc array;
  gid : Addr.group_id;
}

let make_cluster ?(seed = 0xBE5CL) ?(name = "bench") ?net_config ?runtime_config
    ?(backend = World.Sim) ~sites () =
  let runtime_config =
    match runtime_config with
    | Some _ as c -> c
    | None -> if !no_coalesce then Some legacy_runtime_config else None
  in
  let w = World.create ~backend ~seed ?net_config ?runtime_config ~sites () in
  attach_trace w;
  let members =
    Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "b%d" s))
  in
  (* On the wall backend "run to the horizon" is real seconds, so
     formation waits on predicates instead; the simulator path is the
     historical one, untouched. *)
  let is_wall = World.kind w = Vsync_backend.Backend.Wall in
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) name));
  if is_wall then ignore (World.run_cond ~timeout_us:30_000_000 w (fun () -> !gid <> None))
  else World.run w;
  let gid = Option.get !gid in
  let joined = ref 0 in
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) name);
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> incr joined
        | Error e -> failwith ("bench cluster join: " ^ e))
  done;
  if is_wall then ignore (World.run_cond ~timeout_us:30_000_000 w (fun () -> !joined = sites - 1))
  else World.run w;
  { w; members; gid }

(* Per-site snapshot of the unified metrics registry, for embedding in
   a JSON artifact: gauges sample live state, so take this while the
   world of interest is still in scope. *)
let metrics_json w =
  Json.List
    (List.init (World.n_sites w) (fun s ->
         let snap = Vsync_obs.Metrics.snapshot (Runtime.metrics (World.runtime w s)) in
         Json.Obj
           (("site", Json.Int s)
           :: List.map
                (fun (name, v) ->
                  match v with
                  | Vsync_obs.Metrics.Counter_v n | Vsync_obs.Metrics.Gauge_v n ->
                    (name, Json.Int n)
                  | Vsync_obs.Metrics.Histo_v { count; sum; min; max } ->
                    ( name,
                      Json.Obj
                        [
                          ("count", Json.Int count); ("sum", Json.Int sum);
                          ("min", Json.Int min); ("max", Json.Int max);
                        ] ))
                snap)))

(* Messages padded to a target payload size. *)
let padded_msg bytes =
  let m = Message.create () in
  if bytes > 0 then Message.set_bytes m "pad" (Bytes.make bytes 'x');
  m

(* Counter snapshots: the protocol-primitive counters summed over all
   runtimes. *)
let prim_keys =
  [
    "prim.cbcast"; "prim.abcast"; "prim.gbcast"; "prim.gbcast_req"; "prim.reply";
    "prim.null_reply"; "prim.local_rpc";
  ]

let snapshot_prims w =
  List.map
    (fun key ->
      let total = ref 0 in
      for s = 0 to World.n_sites w - 1 do
        total := !total + Stats.Counter.get (Runtime.counters (World.runtime w s)) key
      done;
      (key, !total))
    prim_keys

let diff_prims later earlier =
  List.map2
    (fun (k, v) (k', v') ->
      assert (String.equal k k');
      (k, v - v'))
    later earlier
  |> List.filter (fun (_, d) -> d <> 0)

let render_prims diffs =
  if diffs = [] then "none"
  else
    String.concat ", "
      (List.map
         (fun (k, d) ->
           let label =
             match k with
             | "prim.cbcast" -> "CBCAST"
             | "prim.abcast" -> "ABCAST"
             | "prim.gbcast" -> "GBCAST"
             | "prim.gbcast_req" -> "GBCAST req"
             | "prim.reply" -> "reply"
             | "prim.null_reply" -> "null reply"
             | "prim.local_rpc" -> "local RPC"
             | other -> other
           in
           Printf.sprintf "%d %s" d label)
         diffs)

(* Simple fixed-width table printer. *)
let print_table ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    rows;
  let line c =
    print_string "+";
    Array.iter (fun w -> print_string (String.make (w + 2) c ^ "+")) widths;
    print_newline ()
  in
  let print_row row =
    print_string "|";
    List.iteri (fun i cell -> Printf.printf " %-*s |" widths.(i) cell) row;
    print_newline ()
  in
  Printf.printf "\n== %s ==\n" title;
  ignore ncols;
  line '-';
  print_row header;
  line '=';
  List.iter print_row rows;
  line '-'

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
let ms_of_us us = float_of_int us /. 1000.0

(* Latency distribution summary over a list of per-delivery latencies
   (µs), for the under-fault columns. *)
type latency_stats = { median_ms : float; p99_ms : float; max_ms : float }

let latency_stats us =
  match List.sort compare us with
  | [] -> None
  | sorted ->
    let n = List.length sorted in
    let at i = ms_of_us (List.nth sorted (min (n - 1) i)) in
    Some { median_ms = at (n / 2); p99_ms = at (n * 99 / 100); max_ms = at (n - 1) }
