(* Message hot-path benchmark: wall-clock microbenches of the message
   primitives the runtime leans on (construct, set, get, copy, codec,
   size) plus a group-broadcast throughput run, with a machine-readable
   JSON artifact so successive PRs accumulate a perf trajectory.

     dune exec bench/main.exe -- msgpath
     dune exec bench/main.exe -- msgpath --smoke --json BENCH_msgpath.json

   The micro section measures the implementation itself (real
   nanoseconds); the throughput section runs CBCAST/ABCAST floods on the
   simulated testbed and reports both virtual-time message rates and the
   wall-clock speed of the simulation — the latter is dominated by the
   very message-path costs the micro section isolates. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message

(* --- timing -------------------------------------------------------- *)

(* Best-of-[reps] batches; reports ns/op.  [iters] is per batch. *)
let time_ns ~iters f =
  let reps = 3 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9 /. float_of_int iters

(* --- micro: the primitives ---------------------------------------- *)

let sample_msg () =
  let m = Message.create () in
  Message.set_int m "count" 42;
  Message.set_str m "kind" "update";
  Message.set_bool m "flag" true;
  Message.set_float m "ratio" 0.125;
  Message.set_bytes m "pad" (Bytes.make 256 'x');
  Message.set_addr m "who" (Addr.Proc (Addr.proc ~site:1 ~idx:2 ~incarnation:3));
  Message.set_addrs m "them" [ Addr.Group (Addr.group_of_int 9) ];
  Message.set_int m "seq" 7;
  m

let micro () =
  let scale n = if !Harness.smoke then max 1 (n / 20) else n in
  let m = sample_msg () in
  let encoded = Message.encode m in
  let cb_frame =
    Proto.Cb_data
      {
        group = Addr.group_of_int 9;
        view_id = 3;
        uid = { Types.usite = 1; useq = 42 };
        rank = 0;
        vt = Some [ 4; 2; 0 ];
        body = m;
      }
  in
  let ops =
    [
      ("construct_8f", scale 100_000, fun () -> ignore (sample_msg ()));
      ( "construct_copy",
        scale 100_000,
        fun () ->
          let m = sample_msg () in
          ignore (Message.copy m) );
      ("copy", scale 200_000, fun () -> ignore (Message.copy m));
      ( "copy_mutate",
        scale 100_000,
        fun () ->
          let c = Message.copy m in
          Message.set_int c "count" 1 );
      ( "copy_read3",
        scale 200_000,
        fun () ->
          let c = Message.copy m in
          ignore (Message.get_int c "count");
          ignore (Message.get_bool c "flag");
          ignore (Message.get_int c "seq") );
      ( "set_replace",
        scale 200_000,
        fun () -> Message.set_int m "count" 43 );
      ("get_hot", scale 500_000, fun () -> ignore (Message.get_int m "seq"));
      ("encode", scale 100_000, fun () -> ignore (Message.encode m));
      ( "encode_pooled",
        scale 100_000,
        fun () ->
          Vsync_msg.Bufpool.with_buf (fun buf ->
              Message.encode_into buf m;
              ignore (Buffer.length buf)) );
      ("decode", scale 100_000, fun () -> ignore (Message.decode encoded));
      ("size", scale 500_000, fun () -> ignore (Message.size m));
      ("proto_size_recv", scale 500_000, fun () -> ignore (Proto.size cb_frame));
    ]
  in
  List.map (fun (name, iters, f) -> (name, time_ns ~iters f)) ops

(* --- throughput: group broadcast ----------------------------------- *)

type tput_row = {
  t_mode : string;
  t_sites : int;
  t_sent : int;
  t_delivered : int;
  t_virtual_ms : float;
  t_virtual_msgs_per_s : float;
  t_wall_s : float;
}

(* Unified-metrics snapshot of the most recent throughput cluster,
   embedded in the JSON artifact (gauges sample live state, so it is
   taken while the world is still reachable). *)
let last_metrics : Harness.Json.t option ref = ref None

let throughput_run mode mode_name ~sites =
  let msgs = if !Harness.smoke then 40 else 200 in
  let c = Harness.make_cluster ~seed:0x9A7BL ~sites () in
  let delivered = ref 0 in
  let last_delivery = ref 0 in
  Array.iter
    (fun m ->
      Runtime.bind m Harness.e_app (fun _ ->
          incr delivered;
          last_delivery := World.now c.w))
    c.members;
  let start = World.now c.w in
  World.run_task c.w c.members.(0) (fun () ->
      for _ = 1 to msgs do
        ignore
          (Runtime.bcast c.members.(0) mode ~dest:(Addr.Group c.gid) ~entry:Harness.e_app
             (Harness.padded_msg 256) ~want:Types.No_reply)
      done);
  let wall0 = Unix.gettimeofday () in
  World.run ~until:(start + 600_000_000) c.w;
  let wall = Unix.gettimeofday () -. wall0 in
  last_metrics := Some (Harness.metrics_json c.w);
  let elapsed_us = max 1 (!last_delivery - start) in
  {
    t_mode = mode_name;
    t_sites = sites;
    t_sent = msgs;
    t_delivered = !delivered;
    t_virtual_ms = float_of_int elapsed_us /. 1e3;
    t_virtual_msgs_per_s = float_of_int !delivered /. (float_of_int elapsed_us /. 1e6);
    t_wall_s = wall;
  }

let throughput () =
  let site_counts = if !Harness.smoke then [ 3 ] else [ 3; 5; 7; 9 ] in
  List.concat_map
    (fun sites ->
      [
        throughput_run Types.Cbcast "CBCAST" ~sites;
        throughput_run Types.Abcast "ABCAST" ~sites;
      ])
    site_counts

(* --- driver -------------------------------------------------------- *)

let run () =
  let micro_rows = micro () in
  Harness.print_table ~title:"msgpath micro (wall clock, best of 3)"
    ~header:[ "operation"; "ns/op" ]
    (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) micro_rows);
  let tput_rows = throughput () in
  Harness.print_table ~title:"msgpath group-broadcast throughput (256 B payloads)"
    ~header:[ "mode"; "sites"; "sent"; "delivered"; "virtual ms"; "virtual msg/s"; "wall s" ]
    (List.map
       (fun r ->
         [
           r.t_mode;
           string_of_int r.t_sites;
           string_of_int r.t_sent;
           string_of_int r.t_delivered;
           Printf.sprintf "%.1f" r.t_virtual_ms;
           Printf.sprintf "%.0f" r.t_virtual_msgs_per_s;
           Printf.sprintf "%.3f" r.t_wall_s;
         ])
       tput_rows);
  match !Harness.json_path with
  | None -> ()
  | Some path ->
    let open Harness.Json in
    let j =
      Obj
        [
          ("bench", Str "msgpath");
          ("mode", Str (if !Harness.smoke then "smoke" else "full"));
          ( "micro",
            List
              (List.map
                 (fun (name, ns) -> Obj [ ("op", Str name); ("ns_per_op", Float ns) ])
                 micro_rows) );
          ( "throughput",
            List
              (List.map
                 (fun r ->
                   Obj
                     [
                       ("mode", Str r.t_mode);
                       ("sites", Int r.t_sites);
                       ("sent", Int r.t_sent);
                       ("delivered", Int r.t_delivered);
                       ("virtual_ms", Float r.t_virtual_ms);
                       ("virtual_msgs_per_s", Float r.t_virtual_msgs_per_s);
                       ("wall_s", Float r.t_wall_s);
                     ])
                 tput_rows) );
        ]
    in
    let j =
      match (j, !last_metrics) with
      | Obj fields, Some m -> Obj (fields @ [ ("metrics", m) ])
      | j, _ -> j
    in
    Harness.write_json path j;
    Printf.printf "msgpath: wrote %s\n" path
