(* Throughput and latency under faults: the paper's evaluation runs on
   a healthy network; this experiment re-runs the standard traffic mix
   while the nemesis drives seeded fault plans of increasing intensity,
   with the virtual-synchrony oracle judging every run.  The interesting
   columns are the degradation — how much the fault load costs in
   delivered throughput and tail latency — and the verdict, which must
   stay PASS at every intensity. *)

open Vsync_core

let seed = 0xFA17L

let run () =
  let row intensity =
    let r =
      match
        if intensity = 0.0 then Scenario.run ~seed ~plan:[] ()
        else Scenario.run ~seed ~intensity ()
      with
      | Ok r -> r
      | Error e -> failwith ("faults bench: scenario setup failed: " ^ e)
    in
    let secs = float_of_int r.elapsed_us /. 1_000_000. in
    let thru = float_of_int r.delivered /. secs in
    let lat =
      match Harness.latency_stats (Oracle.latencies_us r.oracle) with
      | Some s -> s
      | None -> { Harness.median_ms = nan; p99_ms = nan; max_ms = nan }
    in
    let faults =
      List.length
        (List.filter
           (fun ev ->
             match ev.Vsync_sim.Nemesis.op with
             | Vsync_sim.Nemesis.Heal | Vsync_sim.Nemesis.Clear_faults
             | Vsync_sim.Nemesis.Clear_link _ ->
               false
             | _ -> true)
           r.plan)
    in
    [
      (if intensity = 0.0 then "clean" else Printf.sprintf "%.2f" intensity);
      string_of_int faults;
      string_of_int r.sent;
      string_of_int r.delivered;
      Printf.sprintf "%.0f" thru;
      Printf.sprintf "%.1f" lat.Harness.median_ms;
      Printf.sprintf "%.1f" lat.Harness.p99_ms;
      Printf.sprintf "%.1f" lat.Harness.max_ms;
      (if r.violations = [] then "PASS" else Printf.sprintf "FAIL (%d)" (List.length r.violations));
    ]
  in
  Harness.print_table ~title:"multicast under nemesis fault plans (4 sites, mixed traffic)"
    ~header:
      [
        "intensity"; "faults"; "sent"; "delivered"; "msg/s"; "p50 ms"; "p99 ms"; "max ms"; "oracle";
      ]
    (List.map row [ 0.0; 0.25; 0.5; 0.75; 1.0 ])
