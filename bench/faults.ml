(* Throughput and latency under faults: the paper's evaluation runs on
   a healthy network; this experiment re-runs the standard traffic mix
   while the nemesis drives seeded fault plans of increasing intensity,
   with the virtual-synchrony oracle judging every run.  The interesting
   columns are the degradation — how much the fault load costs in
   delivered throughput and tail latency — and the verdict, which must
   stay PASS at every intensity. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message

let seed = 0xFA17L

(* Partition recovery: a 5-site group split 3/2.  The majority side
   must keep delivering through the split (primary-partition rule),
   and after the heal the minority's path back — probe-detect the
   newer primary view, tear the wedged copy down, rejoin as a fresh
   member — is timed as two latencies: heal-to-teardown and
   heal-to-first-fresh-delivery at a rejoined site. *)
type part_row = {
  p_seed : int64;
  p_dur_ms : int;
  p_maj_split : int;    (* deliveries at a majority site during the split *)
  p_min_split : int;    (* fresh deliveries at a minority site during the split (want 0) *)
  p_teardown_ms : float; (* heal -> minority copy torn down *)
  p_recover_ms : float;  (* heal -> first post-heal delivery at the rejoined site *)
}

let partition_run ~seed ~dur_ms =
  let sites = 5 in
  let c = Harness.make_cluster ~seed ~name:"part" ~sites () in
  let w = c.Harness.w and members = c.Harness.members and gid = c.Harness.gid in
  let count = Array.make sites 0 in
  let last = Array.make sites (-1) in
  Array.iteri
    (fun i m ->
      Runtime.bind m Harness.e_app (fun msg ->
          count.(i) <- count.(i) + 1;
          match Message.get_int msg "tag" with
          | Some t -> if t > last.(i) then last.(i) <- t
          | None -> ()))
    members;
  let tag = ref 0 in
  (* One tagged CBCAST from site 0 every 20ms of virtual time. *)
  let send () =
    let t = !tag in
    incr tag;
    World.run_task w members.(0) (fun () ->
        let msg = Message.create () in
        Message.set_int msg "tag" t;
        ignore
          (Runtime.bcast members.(0) Types.Cbcast ~dest:(Addr.Group gid) ~entry:Harness.e_app msg
             ~want:Types.No_reply));
    World.run_for w 20_000
  in
  for _ = 1 to 10 do
    send ()
  done;
  World.run_for w 500_000;
  let maj0 = count.(0) and min0 = count.(3) in
  World.partition w [ 0; 1; 2 ] [ 3; 4 ];
  for _ = 1 to max 1 (dur_ms / 20) do
    send ()
  done;
  let maj_split = count.(0) - maj0 and min_split = count.(3) - min0 in
  let t_heal = World.now w in
  let heal_tag = !tag in
  World.heal w;
  let teardown_us = ref (-1) and recover_us = ref (-1) in
  let rejoined = ref false in
  let budget = ref 4000 in
  while !recover_us < 0 && !budget > 0 do
    decr budget;
    send ();
    if !teardown_us < 0 && Runtime.pg_view members.(3) gid = None then
      teardown_us := World.now w - t_heal;
    if !teardown_us >= 0 && not !rejoined then begin
      (* The copy is torn down: rejoin both evicted members.  The name
         re-resolves against the primary (teardown dropped this site's
         stale self-contact hints). *)
      rejoined := true;
      List.iter
        (fun s ->
          World.run_task w members.(s) (fun () ->
              (* A first attempt can bounce off a fellow evictee still
                 listed in the stale hints; the refusal purges that
                 contact, so the retry's lookup re-queries the primary. *)
              let rec attempt n =
                ignore (Runtime.pg_lookup members.(s) "part");
                match Runtime.pg_join members.(s) gid ~credentials:(Message.create ()) with
                | Ok () -> ()
                | Error _ when n > 0 ->
                  Runtime.sleep members.(s) 200_000;
                  attempt (n - 1)
                | Error e -> Printf.eprintf "partition bench: rejoin s%d failed: %s\n" s e
              in
              attempt 20))
        [ 3; 4 ]
    end;
    if !rejoined && last.(3) >= heal_tag then recover_us := World.now w - t_heal
  done;
  {
    p_seed = seed;
    p_dur_ms = dur_ms;
    p_maj_split = maj_split;
    p_min_split = min_split;
    p_teardown_ms = (if !teardown_us < 0 then nan else Harness.ms_of_us !teardown_us);
    p_recover_ms = (if !recover_us < 0 then nan else Harness.ms_of_us !recover_us);
  }

let partition_table () =
  let durations = if !Harness.smoke then [ 4_000 ] else [ 4_000; 8_000 ] in
  let seeds = if !Harness.smoke then [ 0x5EED1L ] else [ 0x5EED1L; 0x5EED2L; 0x5EED3L ] in
  let rows =
    List.concat_map (fun seed -> List.map (fun d -> partition_run ~seed ~dur_ms:d) durations) seeds
  in
  Harness.print_table
    ~title:"partition recovery (5 sites, 3/2 split, CBCAST every 20ms from the majority)"
    ~header:
      [
        "seed"; "split ms"; "maj split dlv"; "min split dlv"; "teardown ms"; "recover ms";
      ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "0x%Lx" r.p_seed;
           string_of_int r.p_dur_ms;
           string_of_int r.p_maj_split;
           string_of_int r.p_min_split;
           Printf.sprintf "%.1f" r.p_teardown_ms;
           Printf.sprintf "%.1f" r.p_recover_ms;
         ])
       rows);
  let ok =
    List.for_all
      (fun r ->
        r.p_maj_split > 0 && r.p_min_split = 0
        && Float.is_finite r.p_teardown_ms
        && Float.is_finite r.p_recover_ms)
      rows
  in
  Printf.printf
    "partition recovery: majority progressed, minority silent, every split recovered: %s\n"
    (if ok then "PASS" else "FAIL");
  (match !Harness.json_path with
  | None -> ()
  | Some path ->
    let module J = Harness.Json in
    Harness.write_json path
      (J.Obj
         [
           ("bench", J.Str "partition");
           ("smoke", J.Bool !Harness.smoke);
           ("sites", J.Int 5);
           ( "rows",
             J.List
               (List.map
                  (fun r ->
                    J.Obj
                      [
                        ("seed", J.Str (Printf.sprintf "0x%Lx" r.p_seed));
                        ("split_ms", J.Int r.p_dur_ms);
                        ("majority_split_deliveries", J.Int r.p_maj_split);
                        ("minority_split_deliveries", J.Int r.p_min_split);
                        ("teardown_ms", J.Float r.p_teardown_ms);
                        ("recover_ms", J.Float r.p_recover_ms);
                      ])
                  rows) );
           ("pass", J.Bool ok);
         ]));
  ok

let run () =
  let row intensity =
    let r =
      match
        if intensity = 0.0 then Scenario.run ~seed ~plan:[] ()
        else Scenario.run ~seed ~intensity ()
      with
      | Ok r -> r
      | Error e -> failwith ("faults bench: scenario setup failed: " ^ e)
    in
    let secs = float_of_int r.elapsed_us /. 1_000_000. in
    let thru = float_of_int r.delivered /. secs in
    let lat =
      match Harness.latency_stats (Oracle.latencies_us r.oracle) with
      | Some s -> s
      | None -> { Harness.median_ms = nan; p99_ms = nan; max_ms = nan }
    in
    let faults =
      List.length
        (List.filter
           (fun ev ->
             match ev.Vsync_sim.Nemesis.op with
             | Vsync_sim.Nemesis.Heal | Vsync_sim.Nemesis.Clear_faults
             | Vsync_sim.Nemesis.Clear_link _ ->
               false
             | _ -> true)
           r.plan)
    in
    [
      (if intensity = 0.0 then "clean" else Printf.sprintf "%.2f" intensity);
      string_of_int faults;
      string_of_int r.sent;
      string_of_int r.delivered;
      Printf.sprintf "%.0f" thru;
      Printf.sprintf "%.1f" lat.Harness.median_ms;
      Printf.sprintf "%.1f" lat.Harness.p99_ms;
      Printf.sprintf "%.1f" lat.Harness.max_ms;
      (if r.violations = [] then "PASS" else Printf.sprintf "FAIL (%d)" (List.length r.violations));
    ]
  in
  Harness.print_table ~title:"multicast under nemesis fault plans (4 sites, mixed traffic)"
    ~header:
      [
        "intensity"; "faults"; "sent"; "delivered"; "msg/s"; "p50 ms"; "p99 ms"; "max ms"; "oracle";
      ]
    (List.map row [ 0.0; 0.25; 0.5; 0.75; 1.0 ]);
  ignore (partition_table () : bool)
