(* Wire efficiency: what frame coalescing, delayed/piggybacked acks and
   the pipelined ABCAST window buy on the wire.

   Two experiments, each run A/B against the historical configuration
   (one frame per packet, a dedicated ack per delivery, no ABCAST
   origination gate — [Harness.legacy_runtime_config]):

   - CBCAST flood: one member floods asynchronous CBCASTs at a
     3-member group and we count data frames, dedicated ack frames and
     network packets per delivered message, plus raw wire bytes per
     payload byte.

   - ABCAST window sweep: one member floods asynchronous ABCASTs at a
     5-member group; virtual-time throughput (deliveries per simulated
     second over all members, the same metric as bench/msgpath.ml) as
     the origination window grows from 1 to 16.  The legacy row — no
     origination gate, no coalescing — is the pre-rework reference
     point, the flat ~190 msgs/s plateau of BENCH_msgpath.json. *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Net = Vsync_sim.Net

(* --- wire accounting, summed over every site ------------------------ *)

type totals = {
  data : int;  (* data frames sent, retransmissions included *)
  acks : int;  (* dedicated ack frames (piggybacks don't count) *)
  packets : int;  (* transport packets handed to the network *)
  retx : int;
  net_bytes : int;  (* bytes the network charged, headers included *)
}

let snapshot (w : World.t) =
  let get stats key = try List.assoc key stats with Not_found -> 0 in
  let t = ref { data = 0; acks = 0; packets = 0; retx = 0; net_bytes = 0 } in
  for s = 0 to World.n_sites w - 1 do
    let st = Runtime.transport_stats (World.runtime w s) in
    t :=
      {
        !t with
        data = !t.data + get st "data_frames";
        acks = !t.acks + get st "ack_frames";
        packets = !t.packets + get st "packets";
        retx = !t.retx + get st "retransmits";
      }
  done;
  { !t with net_bytes = Net.bytes_sent (World.net w) }

let diff a b =
  {
    data = a.data - b.data;
    acks = a.acks - b.acks;
    packets = a.packets - b.packets;
    retx = a.retx - b.retx;
    net_bytes = a.net_bytes - b.net_bytes;
  }

(* --- CBCAST flood --------------------------------------------------- *)

type flood_result = {
  delivered : int;
  wire : totals;
  payload_bytes : int;
  elapsed_us : int;
}

(* Flood [n] asynchronous CBCASTs from member 0 and drive the world
   until every member delivered every multicast (or a generous budget
   runs out — short floods always finish). *)
let cbcast_flood ?runtime_config ~sites n =
  let c = Harness.make_cluster ~seed:0x31BEL ?runtime_config ~sites () in
  let delivered = ref 0 in
  Array.iter
    (fun m -> Runtime.bind m Harness.e_app (fun _ -> incr delivered))
    c.Harness.members;
  let msg = Harness.padded_msg 256 in
  let payload = Vsync_msg.Message.size msg in
  let before = snapshot c.Harness.w in
  let t0 = World.now c.Harness.w in
  World.run_task c.Harness.w c.Harness.members.(0) (fun () ->
      for _ = 1 to n do
        ignore
          (Runtime.bcast c.Harness.members.(0) Types.Cbcast ~dest:(Addr.Group c.Harness.gid)
             ~entry:Harness.e_app (Harness.padded_msg 256) ~want:Types.No_reply)
      done);
  let budget = ref 6000 in
  while !delivered < n * sites && !budget > 0 do
    World.run_for c.Harness.w 10_000;
    decr budget
  done;
  {
    delivered = !delivered;
    wire = diff (snapshot c.Harness.w) before;
    payload_bytes = n * payload;
    elapsed_us = World.now c.Harness.w - t0;
  }

let frames_per_delivered r =
  float_of_int (r.wire.data + r.wire.acks) /. float_of_int (max 1 r.delivered)

(* --- ABCAST window sweep -------------------------------------------- *)

(* Throughput of a back-to-back asynchronous ABCAST stream, measured
   exactly like [bench/msgpath.ml] so the numbers are comparable with
   BENCH_msgpath.json's ~190/s plateau: virtual messages {e delivered}
   per simulated second, over all [sites] members, same seed and
   message count. *)
let abcast_rate ?runtime_config ~sites n =
  let c = Harness.make_cluster ~seed:0x9A7BL ?runtime_config ~sites () in
  let delivered = ref 0 and last_delivery = ref 0 in
  Array.iter
    (fun m ->
      Runtime.bind m Harness.e_app (fun _ ->
          incr delivered;
          last_delivery := World.now c.Harness.w))
    c.Harness.members;
  let before = snapshot c.Harness.w in
  let t0 = World.now c.Harness.w in
  World.run_task c.Harness.w c.Harness.members.(0) (fun () ->
      for _ = 1 to n do
        ignore
          (Runtime.bcast c.Harness.members.(0) Types.Abcast ~dest:(Addr.Group c.Harness.gid)
             ~entry:Harness.e_app (Harness.padded_msg 256) ~want:Types.No_reply)
      done);
  (* Chunked run, stopping at completion: the wire accounting should
     cover the stream, not minutes of idle failure-detector pings. *)
  let budget = ref 6_000 in
  while !delivered < n * sites && !budget > 0 do
    World.run_for c.Harness.w 100_000;
    decr budget
  done;
  let wire = diff (snapshot c.Harness.w) before in
  let rate =
    if !delivered < n * sites then nan
    else float_of_int !delivered *. 1_000_000.0 /. float_of_int (max 1 (!last_delivery - t0))
  in
  (rate, wire)

let windowed ab_window = { Runtime.default_config with Runtime.ab_window }

(* --- driver ---------------------------------------------------------- *)

let run () =
  let flood_n = if !Harness.smoke then 60 else 400 in
  let ab_n = if !Harness.smoke then 40 else 200 in
  let flood_sites = 3 and ab_sites = 5 in

  let legacy = cbcast_flood ~runtime_config:Harness.legacy_runtime_config ~sites:flood_sites flood_n in
  let dflt = cbcast_flood ~sites:flood_sites flood_n in
  let fpd_legacy = frames_per_delivered legacy and fpd_dflt = frames_per_delivered dflt in
  let reduction = 100.0 *. (1.0 -. (fpd_dflt /. fpd_legacy)) in
  let row label (r : flood_result) =
    [
      label;
      string_of_int r.delivered;
      string_of_int r.wire.data;
      string_of_int r.wire.acks;
      string_of_int r.wire.packets;
      Printf.sprintf "%.2f" (frames_per_delivered r);
      Printf.sprintf "%.2f" (float_of_int r.wire.acks /. float_of_int (max 1 r.wire.data));
      Printf.sprintf "%.2f" (float_of_int r.wire.net_bytes /. float_of_int r.payload_bytes);
    ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf "CBCAST flood (%d msgs, %d sites, 256 B payload): wire cost per delivery"
         flood_n flood_sites)
    ~header:
      [ "config"; "delivered"; "data frames"; "ack frames"; "packets"; "frames/dlv"; "acks/data"; "wire B/payload B" ]
    [ row "legacy (no coalesce)" legacy; row "default (coalesce)" dflt ];
  Printf.printf "data+ack frames per delivered: %.2f -> %.2f (%.0f%% reduction)\n" fpd_legacy
    fpd_dflt reduction;

  let windows = [ 1; 2; 4; 8; 16 ] in
  let legacy_rate, legacy_wire =
    abcast_rate ~runtime_config:Harness.legacy_runtime_config ~sites:ab_sites ab_n
  in
  let sweep =
    List.map
      (fun win -> (win, abcast_rate ~runtime_config:(windowed win) ~sites:ab_sites ab_n))
      windows
  in
  let sweep_row label (rate, wire) =
    [
      label;
      (if label = "none" then "legacy" else "coalescing");
      Printf.sprintf "%.0f" rate;
      Printf.sprintf "%.2fx" (rate /. legacy_rate);
      string_of_int wire.packets;
      Printf.sprintf "%.2f" (float_of_int (wire.data + wire.acks) /. float_of_int (max 1 wire.packets));
    ]
  in
  Harness.print_table
    ~title:
      (Printf.sprintf
         "ABCAST stream (%d msgs, %d sites): virtual delivered msgs/s vs origination window"
         ab_n ab_sites)
    ~header:[ "window"; "endpoint"; "msgs/s (virtual)"; "vs legacy"; "packets"; "frames/pkt" ]
    (sweep_row "none" (legacy_rate, legacy_wire)
    :: List.map (fun (win, r) -> sweep_row (string_of_int win) r) sweep);
  let rate_at win = try fst (List.assoc win sweep) with Not_found -> nan in
  Printf.printf "default window (%d) speedup over legacy: %.2fx (acceptance: >= 2x with window >= 4)\n"
    Runtime.default_config.Runtime.ab_window
    (rate_at Runtime.default_config.Runtime.ab_window /. legacy_rate);

  match !Harness.json_path with
  | None -> ()
  | Some path ->
    let module J = Harness.Json in
    let flood_json (r : flood_result) =
      J.Obj
        [
          ("delivered", J.Int r.delivered);
          ("data_frames", J.Int r.wire.data);
          ("ack_frames", J.Int r.wire.acks);
          ("packets", J.Int r.wire.packets);
          ("retransmits", J.Int r.wire.retx);
          ("net_bytes", J.Int r.wire.net_bytes);
          ("payload_bytes", J.Int r.payload_bytes);
          ("frames_per_delivered", J.Float (frames_per_delivered r));
          ("wire_bytes_per_payload_byte",
           J.Float (float_of_int r.wire.net_bytes /. float_of_int r.payload_bytes));
          ("elapsed_us", J.Int r.elapsed_us);
        ]
    in
    Harness.write_json path
      (J.Obj
         [
           ("bench", J.Str "wire");
           ("smoke", J.Bool !Harness.smoke);
           ( "cbcast_flood",
             J.Obj
               [
                 ("sites", J.Int flood_sites);
                 ("msgs", J.Int flood_n);
                 ("legacy", flood_json legacy);
                 ("default", flood_json dflt);
                 ("frames_per_delivered_reduction_pct", J.Float reduction);
               ] );
           ( "abcast_window",
             J.Obj
               [
                 ("sites", J.Int ab_sites);
                 ("msgs", J.Int ab_n);
                 ("legacy_msgs_per_s", J.Float legacy_rate);
                 ( "sweep",
                   J.List
                     (List.map
                        (fun (win, (rate, wire)) ->
                          J.Obj
                            [
                              ("window", J.Int win);
                              ("msgs_per_s", J.Float rate);
                              ("speedup", J.Float (rate /. legacy_rate));
                              ("packets", J.Int wire.packets);
                              ( "frames_per_packet",
                                J.Float
                                  (float_of_int (wire.data + wire.acks)
                                  /. float_of_int (max 1 wire.packets)) );
                            ])
                        sweep) );
                 ("speedup_window4", J.Float (rate_at 4 /. legacy_rate));
                 ( "speedup_default_window",
                   J.Float (rate_at Runtime.default_config.Runtime.ab_window /. legacy_rate) );
                 ("default_window", J.Int Runtime.default_config.Runtime.ab_window);
               ] );
         ]);
    Printf.printf "wire: JSON written to %s\n" path
