(* Benchmark harness: regenerates every table and figure from the
   paper's evaluation (Sec 7) plus the Sec 5 application throughput and
   an ablation, on the simulated testbed.

     dune exec bench/main.exe            # all paper experiments + micro
     dune exec bench/main.exe table1     # just Table I
     dune exec bench/main.exe fig2 fig3  # a subset

   Experiments: table1 fig2 fig3 twentyq ablate load faults scale micro
   msgpath wire soak shard parallel overload.

   Flags (consumed before experiment names):
     --json PATH    JSON-capable experiments (msgpath, wire, soak) write
                    results there
     --trace-out P  stream the typed event layer of every harness
                    cluster to P as JSONL
     --smoke        reduced iteration counts, for CI perf tracking
     --no-coalesce  run with the historical wire behaviour (no frame
                    coalescing, ack per delivery, ABCAST window 1) for
                    A/B comparisons
     --gc-stats     record the peak live heap (max_live_words) in every
                    JSON artifact
     --jobs N       run sweep points of parallel-capable experiments
                    (shard, parallel) on N domains
     --wall         add a wall-clock-backend run to wall-capable
                    experiments (soak) *)

let experiments =
  [
    ("table1", Table1.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("twentyq", Twentyq_bench.run);
    ("ablate", Ablate.run);
    ("load", Load.run);
    ("faults", Faults.run);
    ("scale", Scale.run);
    ("micro", Micro.run);
    ("msgpath", Msgpath.run);
    ("wire", Wire.run);
    ("soak", Soak.run);
    ("shard", Shard.run);
    ("parallel", Parallel.run);
    ("overload", Overload.run);
  ]

let () =
  let rec parse args =
    match args with
    | "--json" :: path :: rest ->
      Harness.json_path := Some path;
      parse rest
    | "--json" :: [] ->
      Printf.eprintf "--json needs a path\n";
      exit 2
    | "--trace-out" :: path :: rest ->
      Harness.trace_out := Some path;
      parse rest
    | "--trace-out" :: [] ->
      Printf.eprintf "--trace-out needs a path\n";
      exit 2
    | "--smoke" :: rest ->
      Harness.smoke := true;
      parse rest
    | "--no-coalesce" :: rest ->
      Harness.no_coalesce := true;
      parse rest
    | "--gc-stats" :: rest ->
      Harness.gc_stats := true;
      parse rest
    | "--jobs" :: n :: rest ->
      let n = int_of_string n in
      Harness.jobs := (if n <= 0 then Vsync_parallel.Pool.available_cores () else n);
      parse rest
    | "--jobs" :: [] ->
      Printf.eprintf "--jobs needs a count (0 = all cores)\n";
      exit 2
    | "--wall" :: rest ->
      Harness.wall := true;
      parse rest
    | name :: rest -> name :: parse rest
    | [] -> []
  in
  let names =
    match parse (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        Printf.printf "\n################ experiment: %s ################\n" name;
        f ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 2)
    names;
  Printf.printf "\nbench: done\n%!"
