(* Domain-parallel harness: the execution-backend tentpole's proof.

   Three measurements over the standard seeded nemesis scenario
   ([Scenario.run], the same harness behind the fuzz sweep):

   1. Sweep scaling: N seeds run to completion at 1 / 2 / 4 / 8 domains
      (--jobs widens the ladder past 8); wall-clock time and speedup
      per point.  Seeds are picked up by an atomic cursor, so domains
      self-balance across uneven nemesis schedules.

   2. Determinism under parallelism: every parallel point's per-seed
      oracle-history digests must equal the sequential baseline's,
      bit for bit.  This is the load-bearing claim — parallelism that
      perturbed a single delivery would show here.

   3. Multi-seed oracle soak: a second batch of fresh seeds at the
      widest point, demanding a clean oracle verdict from every one —
      the parallel harness as a correctness amplifier, not just a
      speedup.

   Speedup scales with physical cores; the artifact records
   [Domain.recommended_domain_count] so a reader can judge the numbers
   against the machine that produced them (on a 1-core CI box the
   sweep measures overhead, not speedup).

     dune exec bench/main.exe -- parallel
     dune exec bench/main.exe -- --smoke --jobs 8 --json BENCH_parallel.json parallel *)

open Vsync_core
module Pool = Vsync_parallel.Pool
module Metrics = Vsync_obs.Metrics

type point = {
  pt_jobs : int;
  pt_wall_s : float;
  pt_speedup : float;
  pt_digests_match : bool;
}

(* Snapshots are taken on the domain that owns the world (gauges sample
   live closures); only the plain data crosses back to the joiner,
   where [Metrics.merge_snapshots] folds all sites of all seeds into
   one sweep-wide registry view. *)
let world_snapshot w =
  Metrics.merge_snapshots
    (List.init (World.n_sites w) (fun s -> Metrics.snapshot (Runtime.metrics (World.runtime w s))))

let run_seed seed =
  match Scenario.run ~seed ~intensity:0.5 () with
  | Ok r ->
    ( Oracle.history_digest r.Scenario.oracle,
      List.length r.Scenario.violations,
      r.Scenario.sent,
      r.Scenario.delivered,
      world_snapshot r.Scenario.world )
  | Error e -> failwith (Printf.sprintf "parallel bench: seed %Ld setup failed: %s" seed e)

let sweep ~jobs seeds =
  let t0 = Unix.gettimeofday () in
  let out = Pool.map ~jobs run_seed seeds in
  (out, Unix.gettimeofday () -. t0)

let run () =
  if !Harness.trace_out <> None then
    failwith "parallel bench: --trace-out is not domain-safe; drop one of the two";
  let n_seeds = if !Harness.smoke then 10 else 50 in
  let seeds = Array.init n_seeds (fun i -> Int64.of_int (9001 + i)) in
  let cores = Pool.available_cores () in
  let ladder =
    if !Harness.jobs > 8 then [ 1; 2; 4; 8; !Harness.jobs ] else [ 1; 2; 4; 8 ]
  in
  let widest = List.fold_left max 1 ladder in
  Printf.printf "parallel: %d seeds, %d recommended domains on this machine\n%!" n_seeds cores;

  let baseline, base_wall = sweep ~jobs:1 seeds in
  Printf.printf "parallel: sequential baseline %.2fs\n%!" base_wall;
  let points =
    List.map
      (fun jobs ->
        if jobs = 1 then
          { pt_jobs = 1; pt_wall_s = base_wall; pt_speedup = 1.0; pt_digests_match = true }
        else begin
          let out, wall = sweep ~jobs seeds in
          let matches =
            Array.for_all2
              (fun (d, _, _, _, _) (d', _, _, _, _) -> String.equal d d')
              baseline out
          in
          Printf.printf "parallel: %d domains %.2fs (%.2fx) digests %s\n%!" jobs wall
            (base_wall /. wall)
            (if matches then "identical" else "DIVERGED");
          { pt_jobs = jobs; pt_wall_s = wall; pt_speedup = base_wall /. wall;
            pt_digests_match = matches }
        end)
      ladder
  in

  (* Oracle soak: fresh seeds, widest point, all must be clean. *)
  let soak_seeds = Array.init n_seeds (fun i -> Int64.of_int (77_000 + i)) in
  let soak_out, soak_wall = sweep ~jobs:widest soak_seeds in
  let soak_failures =
    Array.to_list soak_out |> List.filter (fun (_, violations, _, _, _) -> violations > 0)
  in
  Printf.printf "parallel: oracle soak %d fresh seeds in %.2fs: %d violation(s)\n%!"
    (Array.length soak_seeds) soak_wall (List.length soak_failures);

  (* Sweep-wide metrics: per-domain registry snapshots merged at join. *)
  let merged =
    Metrics.merge_snapshots
      (Array.to_list soak_out |> List.map (fun (_, _, _, _, snap) -> snap))
  in
  let merged_int name =
    match List.assoc_opt name merged with
    | Some (Metrics.Counter_v n) | Some (Metrics.Gauge_v n) -> n
    | Some (Metrics.Histo_v { count; _ }) -> count
    | None -> 0
  in
  Printf.printf
    "parallel: merged soak metrics: %d names; %d data frames in %d packets, dedup residue %d\n"
    (List.length merged)
    (merged_int "transport.data_frames")
    (merged_int "transport.packets")
    (merged_int "runtime.dedup_residue");

  Harness.print_table
    ~title:(Printf.sprintf "parallel sweep: %d nemesis seeds per point" n_seeds)
    ~header:[ "domains"; "wall s"; "speedup"; "digests vs sequential" ]
    (List.map
       (fun p ->
         [
           string_of_int p.pt_jobs;
           Printf.sprintf "%.2f" p.pt_wall_s;
           Printf.sprintf "%.2fx" p.pt_speedup;
           (if p.pt_digests_match then "identical" else "DIVERGED");
         ])
       points);
  let all_match = List.for_all (fun p -> p.pt_digests_match) points in
  let soak_ok = soak_failures = [] in
  Printf.printf "determinism: per-seed digests %s across every point\n"
    (if all_match then "identical (PASS)" else "DIVERGED (FAIL)");
  Printf.printf "oracle soak: %s\n" (if soak_ok then "all seeds clean (PASS)" else "FAIL");
  if not (all_match && soak_ok) then exit 1;

  match !Harness.json_path with
  | None -> ()
  | Some path ->
    let module J = Harness.Json in
    Harness.write_json path
      (J.Obj
         [
           ("bench", J.Str "parallel");
           ("smoke", J.Bool !Harness.smoke);
           ("seeds", J.Int n_seeds);
           ("recommended_domains", J.Int cores);
           ( "points",
             J.List
               (List.map
                  (fun p ->
                    J.Obj
                      [
                        ("jobs", J.Int p.pt_jobs);
                        ("wall_s", J.Float p.pt_wall_s);
                        ("speedup", J.Float p.pt_speedup);
                        ("digests_match", J.Bool p.pt_digests_match);
                      ])
                  points) );
           ( "oracle_soak",
             J.Obj
               [
                 ("seeds", J.Int (Array.length soak_seeds));
                 ("jobs", J.Int widest);
                 ("wall_s", J.Float soak_wall);
                 ("clean", J.Bool soak_ok);
                 ( "merged_metrics",
                   J.Obj
                     [
                       ("names", J.Int (List.length merged));
                       ("transport.data_frames", J.Int (merged_int "transport.data_frames"));
                       ("transport.packets", J.Int (merged_int "transport.packets"));
                       ("runtime.dedup_residue", J.Int (merged_int "runtime.dedup_residue"));
                     ] );
               ] );
           ( "acceptance",
             J.Obj [ ("digests_identical", J.Bool all_match); ("soak_clean", J.Bool soak_ok) ] );
         ]);
    Printf.printf "parallel: JSON written to %s\n" path
