(* vsim — run ad-hoc virtual synchrony scenarios from the command line.

   Builds a process group with one member per site, drives a stream of
   multicasts through a chosen primitive, optionally injects failures
   and packet loss, and reports per-member delivery logs, agreement
   checks, and (with --trace) the full protocol trace.

     dune exec bin/vsim.exe -- --sites 3 --messages 12 --mode abcast
     dune exec bin/vsim.exe -- --crash-site 2 --crash-at 200 --trace
     dune exec bin/vsim.exe -- --loss 0.2 --mode cbcast
     dune exec bin/vsim.exe -- --sites 5 --shard 16
     dune exec bin/vsim.exe -- --wall --mode abcast *)

open Vsync_core
module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Net = Vsync_sim.Net
module Trace = Vsync_sim.Trace

let e_app = Entry.user 0

let mode_conv =
  let parse = function
    | "cbcast" -> Ok Types.Cbcast
    | "abcast" -> Ok Types.Abcast
    | "gbcast" -> Ok Types.Gbcast
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (cbcast|abcast|gbcast)" s))
  in
  Cmdliner.Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Types.mode_to_string m))

(* With --trace-out FILE, stream the typed event layer as JSONL into
   FILE for the duration of [f]. *)
let with_trace_out trace_out f =
  match trace_out with
  | None -> f None
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> f (Some (Vsync_obs.Jsonl.sink_to_channel oc)))

(* --nemesis SEED[:INTENSITY]: run the standard nemesis scenario — a
   fully-formed group under seeded traffic while a random fault plan
   runs — print the plan and the oracle's verdict, and exit non-zero on
   any violation. *)
let run_nemesis sites trace_out (seed, intensity) =
  let outcome =
    with_trace_out trace_out (fun trace_sink ->
        Scenario.run ~sites ?intensity ?trace_sink ~seed ())
  in
  match outcome with
  | Error e ->
    Printf.eprintf "nemesis scenario: setup failed: %s\n" e;
    2
  | Ok r ->
  Printf.printf "nemesis scenario: seed %Ld, intensity %.2f, %d sites\n" seed
    (Option.value ~default:0.5 intensity)
    sites;
  Printf.printf "fault plan:\n%s" (Vsync_sim.Nemesis.plan_to_string r.plan);
  Printf.printf "sent %d, delivered %d, %.1fms virtual\n" r.sent r.delivered
    (float_of_int r.elapsed_us /. 1000.);
  (match Oracle.latencies_us r.oracle with
  | [] -> ()
  | lats ->
    let sorted = List.sort compare lats in
    let n = List.length sorted in
    Printf.printf "delivery latency: median %.1fms  p99 %.1fms\n"
      (float_of_int (List.nth sorted (n / 2)) /. 1000.)
      (float_of_int (List.nth sorted (min (n - 1) (n * 99 / 100))) /. 1000.));
  print_string (Oracle.report r.oracle r.violations);
  if r.violations = [] then 0 else 1

(* --shard N: deploy the sharded twenty-questions service over N ring
   partitions (3-replica groups placed by rendezvous hashing), drive a
   keyed workload, crash a site to force handoff, and verify the
   coverage scan still finds every key exactly once. *)
let run_shard sites seed partitions =
  if partitions < 1 then begin
    Printf.eprintf "--shard needs at least 1 partition\n";
    2
  end
  else begin
    let module Sharded = Twentyq.Sharded in
    let module Deployment = Twentyq.Sharded.Deployment in
    let w = World.create ~seed:(Int64.of_int seed) ~sites () in
    let d = Deployment.deploy w ~partitions ~replicas:(min 3 sites) () in
    if not (Deployment.settle d) then begin
      Printf.eprintf "sharded deployment failed to form\n";
      2
    end
    else begin
      Printf.printf "sharded twentyq: %d partitions over %d sites, %d replicas each\n" partitions
        sites
        (min 3 sites);
      for part = 0 to partitions - 1 do
        let hosts =
          List.map
            (fun m -> (Runtime.proc_addr (Sharded.member_proc m)).Addr.site)
            (Deployment.members d part)
        in
        Printf.printf "  partition %2d -> sites [%s]\n" part
          (String.concat " " (List.map string_of_int (List.sort compare hosts)))
      done;
      Deployment.enable_auto_handoff d;
      let cp = World.proc w ~site:0 ~name:"shard-client" in
      let c = Sharded.connect cp ~partitions in
      let n = 24 in
      let puts_ok = ref 0 in
      let verdicts = ref [] in
      let scan label =
        match Sharded.scan_keys c with
        | Ok keys ->
          let sorted = List.sort compare keys in
          let expected = List.sort compare (List.init n (fun i -> Printf.sprintf "key%02d" i)) in
          let ok = sorted = expected in
          verdicts := ok :: !verdicts;
          Printf.printf "[%8.1fms] scan %s: %d keys, exactly once: %b\n"
            (float_of_int (World.now w) /. 1000.)
            label (List.length keys) ok
        | Error e ->
          verdicts := false :: !verdicts;
          Printf.printf "scan %s failed: %s\n" label e
      in
      World.run_task w cp (fun () ->
          for i = 0 to n - 1 do
            match Sharded.put c [ Printf.sprintf "key%02d" i ] with
            | Ok () -> incr puts_ok
            | Error e -> Printf.printf "put key%02d failed: %s\n" i e
          done;
          Printf.printf "[%8.1fms] %d/%d keyed puts acknowledged\n"
            (float_of_int (World.now w) /. 1000.)
            !puts_ok n;
          (match Sharded.ask c "object=key07" with
          | Ok (a, hits) ->
            Printf.printf "keyed query object=key07: %s (%d hit)\n"
              (Twentyq.Database.answer_to_string a) hits
          | Error e -> Printf.printf "keyed query failed: %s\n" e);
          scan "after load");
      World.run w;
      (if sites > 1 then begin
         let victim = sites - 1 in
         Printf.printf "[%8.1fms] >>> crashing site %d; handoff re-replicates its partitions <<<\n"
           (float_of_int (World.now w) /. 1000.)
           victim;
         World.crash_site w victim;
         World.run_for w 5_000_000;
         if not (Deployment.settle d) then Printf.printf "redeployment incomplete\n";
         World.run_task w cp (fun () -> scan "after crash + handoff");
         World.run w
       end);
      let ok = !puts_ok = n && !verdicts <> [] && List.for_all Fun.id !verdicts in
      Printf.printf "sharded run: %s\n" (if ok then "OK" else "FAILED");
      if ok then 0 else 1
    end
  end

let run sites seed messages size mode loss crash_site crash_at_ms partition trace_on trace_out
    nemesis shard wall =
  if wall && (nemesis <> None || shard <> None || crash_site <> None || partition <> None || loss > 0.0)
  then begin
    Printf.eprintf
      "--wall runs on real time: fault injection (--nemesis, --shard, --crash-site, --partition, \
       --loss) is simulator-only\n";
    exit 2
  end;
  match shard with
  | Some partitions -> run_shard sites seed partitions
  | None ->
  match nemesis with
  | Some spec -> run_nemesis sites trace_out spec
  | None ->
  with_trace_out trace_out @@ fun trace_sink ->
  let net_config = { Net.default_config with Net.loss_probability = loss } in
  let backend =
    if wall then World.Wall Vsync_backend.Wallclock.default_config else World.Sim
  in
  (* On the wall clock there is no quiescence to run to — wait on the
     observable condition instead, in real time. *)
  let wait w pred =
    if wall then ignore (World.run_cond ~timeout_us:30_000_000 w pred) else World.run w
  in
  let w = World.create ~backend ~seed:(Int64.of_int seed) ~net_config ~sites () in
  if trace_on then Trace.set_enabled (World.trace w) true;
  (match trace_sink with
  | None -> ()
  | Some sink ->
    let tr = Trace.obs (World.trace w) in
    Vsync_obs.Tracer.add_sink tr sink;
    Vsync_obs.Tracer.set_enabled tr true);
  let members = Array.init sites (fun s -> World.proc w ~site:s ~name:(Printf.sprintf "m%d" s)) in
  let logs = Array.make sites [] in
  Array.iteri
    (fun i m ->
      Runtime.bind m e_app (fun msg ->
          logs.(i) <- Option.value ~default:(-1) (Message.get_int msg "tag") :: logs.(i)))
    members;
  (* Form the group. *)
  let gid = ref None in
  World.run_task w members.(0) (fun () -> gid := Some (Runtime.pg_create members.(0) "vsim"));
  wait w (fun () -> !gid <> None);
  let gid = Option.get !gid in
  let joined = ref 0 in
  for i = 1 to sites - 1 do
    World.run_task w members.(i) (fun () ->
        ignore (Runtime.pg_lookup members.(i) "vsim");
        match Runtime.pg_join members.(i) gid ~credentials:(Message.create ()) with
        | Ok () -> incr joined
        | Error e -> Printf.eprintf "member %d failed to join: %s\n" i e)
  done;
  wait w (fun () -> !joined = sites - 1);
  Array.iteri
    (fun i m ->
      Runtime.pg_monitor m gid (fun v changes ->
          Printf.printf "[%8.1fms] m%d: view #%d %s\n"
            (float_of_int (World.now w) /. 1000.)
            i v.View.view_id
            (String.concat " " (List.map (Format.asprintf "%a" View.pp_change) changes))))
    members;
  (* Traffic: round-robin senders. *)
  let t0 = World.now w in
  Array.iteri
    (fun i m ->
      World.run_task w m (fun () ->
          let k = ref i in
          while !k < messages do
            Runtime.sleep m 20_000;
            let msg = Message.create () in
            Message.set_int msg "tag" !k;
            if size > 0 then Message.set_bytes msg "pad" (Bytes.make size 'x');
            ignore (Runtime.bcast m mode ~dest:(Addr.Group gid) ~entry:e_app msg ~want:Types.No_reply);
            k := !k + sites
          done))
    members;
  (* Failure injection. *)
  (match partition with
  | Some (left, right, dur_ms) ->
    let bad = List.filter (fun s -> s < 0 || s >= sites) (left @ right) in
    if bad <> [] then
      Printf.eprintf "ignoring bad --partition sites: %s\n"
        (String.concat " " (List.map string_of_int bad))
    else begin
      let show l = String.concat "," (List.map string_of_int l) in
      World.run_for w 100_000;
      Printf.printf "[%8.1fms] >>> partition [%s] | [%s] for %dms <<<\n"
        (float_of_int (World.now w) /. 1000.)
        (show left) (show right) dur_ms;
      World.partition w left right;
      World.run_for w (dur_ms * 1000);
      Printf.printf "[%8.1fms] >>> heal <<<\n" (float_of_int (World.now w) /. 1000.);
      World.heal w
    end
  | None -> ());
  (match crash_site with
  | Some s when s >= 0 && s < sites ->
    World.run_for w (crash_at_ms * 1000);
    Printf.printf "[%8.1fms] >>> crashing site %d <<<\n" (float_of_int (World.now w) /. 1000.) s;
    World.crash_site w s
  | Some s -> Printf.eprintf "ignoring bad --crash-site %d\n" s
  | None -> ());
  if wall then
    ignore
      (World.run_cond ~timeout_us:30_000_000 w (fun () ->
           Array.for_all (fun l -> List.length l = messages) logs))
  else World.run ~until:(World.now w + 60_000_000) w;
  (* Report. *)
  Printf.printf "\n%s time elapsed: %.1fms\n"
    (if wall then "real" else "virtual")
    (float_of_int (World.now w - t0) /. 1000.);
  Array.iteri
    (fun i log ->
      let l = List.rev log in
      Printf.printf "member %d delivered %d: [%s]\n" i (List.length l)
        (String.concat " " (List.map string_of_int l)))
    logs;
  (* A site evicted by the primary-partition rule (its copy torn down,
     never rejoined) is not a survivor: virtual synchrony promises
     agreement only among members that stayed in the view. *)
  let survivors =
    List.filter
      (fun i -> crash_site <> Some i && Runtime.pg_view members.(i) gid <> None)
      (List.init sites Fun.id)
  in
  List.iter
    (fun i ->
      if crash_site <> Some i && Runtime.pg_view members.(i) gid = None then
        Printf.printf "site %d was evicted from the group (partitioned minority)\n" i)
    (List.init sites Fun.id);
  let survivor_logs = List.map (fun i -> List.rev logs.(i)) survivors in
  (match survivor_logs with
  | first :: rest ->
    let same_set =
      List.for_all (fun l -> List.sort compare l = List.sort compare first) rest
    in
    let same_order = List.for_all (( = ) first) rest in
    Printf.printf "survivors delivered the same set: %b\n" same_set;
    if mode = Types.Abcast || mode = Types.Gbcast then
      Printf.printf "survivors delivered the identical order: %b\n" same_order
  | [] -> ());
  List.iter
    (fun (k, v) -> Printf.printf "  %-24s %d\n" k v)
    (List.filter (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "prim.") (World.total_counters w));
  if trace_on then begin
    Printf.printf "\n--- protocol trace ---\n";
    List.iter
      (fun r -> Format.printf "%a@." Trace.pp_record r)
      (Trace.records (World.trace w))
  end;
  0

open Cmdliner

let sites = Arg.(value & opt int 3 & info [ "sites" ] ~doc:"Number of simulated sites.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic simulation seed.")
let messages = Arg.(value & opt int 12 & info [ "messages" ] ~doc:"Total multicasts to send.")
let size = Arg.(value & opt int 64 & info [ "size" ] ~doc:"Payload padding in bytes.")

let mode =
  Arg.(value & opt mode_conv Types.Cbcast & info [ "mode" ] ~doc:"Primitive: cbcast, abcast or gbcast.")

let loss = Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Packet loss probability.")

let crash_site =
  Arg.(value & opt (some int) None & info [ "crash-site" ] ~doc:"Crash this site mid-run.")

let crash_at = Arg.(value & opt int 100 & info [ "crash-at" ] ~doc:"Crash time (virtual ms).")
let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol trace.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Stream the typed event layer to $(docv) as JSONL (one event per line).")

(* L|R:DUR_MS — comma-separated site lists on each side of the split,
   then how long the partition holds before the heal. *)
let partition_conv =
  let parse_sites part =
    let fields = String.split_on_char ',' part in
    let sites = List.filter_map int_of_string_opt fields in
    if List.compare_lengths sites fields = 0 && sites <> [] then Some sites else None
  in
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "bad partition spec %S (want L|R:DUR_MS)" s))
    | Some i -> (
      let split = String.sub s 0 i in
      let dur = String.sub s (i + 1) (String.length s - i - 1) in
      match (String.index_opt split '|', int_of_string_opt dur) with
      | Some j, Some dur_ms when dur_ms > 0 -> (
        let l = String.sub split 0 j in
        let r = String.sub split (j + 1) (String.length split - j - 1) in
        match (parse_sites l, parse_sites r) with
        | Some left, Some right -> Ok (left, right, dur_ms)
        | _ -> Error (`Msg (Printf.sprintf "bad partition site lists in %S" s)))
      | None, _ -> Error (`Msg (Printf.sprintf "partition spec %S has no '|' split" s))
      | _, (Some _ | None) -> Error (`Msg (Printf.sprintf "bad partition duration in %S" s)))
  in
  let print ppf (l, r, d) =
    let show sl = String.concat "," (List.map string_of_int sl) in
    Format.fprintf ppf "%s|%s:%d" (show l) (show r) d
  in
  Cmdliner.Arg.conv (parse, print)

let partition =
  Arg.(
    value
    & opt (some partition_conv) None
    & info [ "partition" ] ~docv:"L|R:DUR_MS"
        ~doc:
          "Split the network into site sets $(b,L) and $(b,R) (comma-separated) 100ms into the \
           traffic phase, heal after $(b,DUR_MS) virtual milliseconds, e.g. 0,1,2|3,4:800.")

let nemesis_conv =
  let parse s =
    let mk seed intensity =
      match (Int64.of_string_opt seed, intensity) with
      | None, _ -> Error (`Msg (Printf.sprintf "bad nemesis seed %S" seed))
      | Some sd, None -> Ok (sd, None)
      | Some sd, Some i -> (
        match float_of_string_opt i with
        | Some f when f >= 0.0 && f <= 1.0 -> Ok (sd, Some f)
        | Some _ | None -> Error (`Msg (Printf.sprintf "bad nemesis intensity %S (want [0,1])" i)))
    in
    match String.index_opt s ':' with
    | None -> mk s None
    | Some i ->
      mk (String.sub s 0 i) (Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let print ppf (sd, it) =
    match it with
    | None -> Format.fprintf ppf "%Ld" sd
    | Some f -> Format.fprintf ppf "%Ld:%g" sd f
  in
  Cmdliner.Arg.conv (parse, print)

let nemesis =
  Arg.(
    value
    & opt (some nemesis_conv) None
    & info [ "nemesis" ] ~docv:"SEED[:INTENSITY]"
        ~doc:
          "Run the standard nemesis scenario instead: seeded random fault plan under steady \
           traffic, judged by the virtual-synchrony oracle.  Exits non-zero on any violation.")

let shard =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard" ] ~docv:"N"
        ~doc:
          "Run the sharded twenty-questions workload instead: $(docv) consistent-hash ring \
           partitions as 3-replica groups, keyed puts and queries, then a site crash with \
           handoff.  Exits non-zero unless the coverage scan finds every key exactly once.")

let wall =
  Arg.(
    value
    & flag
    & info [ "wall" ]
        ~doc:
          "Run on the wall-clock backend instead of the simulator: real time, real asynchrony, no \
           determinism.  Incompatible with fault injection, which is simulator-only.")

let cmd =
  let doc = "drive a virtually synchronous process group in simulation" in
  Cmd.v
    (Cmd.info "vsim" ~doc)
    Term.(
      const run $ sites $ seed $ messages $ size $ mode $ loss $ crash_site $ crash_at $ partition
      $ trace $ trace_out $ nemesis $ shard $ wall)

let () = exit (Cmd.eval' cmd)
