open Effect
open Effect.Deep

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t
type _ Effect.t += Yield : unit Effect.t

type t = {
  sched_name : string;
  run_queue : (unit -> unit) Queue.t;
  mutable draining : bool;
  mutable is_killed : bool;
  mutable spawned : int;
  mutable on_exn : exn -> unit;
}

let create ?(name = "sched") () =
  {
    sched_name = name;
    run_queue = Queue.create ();
    draining = false;
    is_killed = false;
    spawned = 0;
    on_exn = raise;
  }

let name t = t.sched_name
let killed t = t.is_killed
let tasks_spawned t = t.spawned
let set_exn_handler t f = t.on_exn <- f

let suspend register = perform (Suspend register)
let yield () = perform Yield

let enqueue t thunk = if not t.is_killed then Queue.push thunk t.run_queue

let drain t =
  if not t.draining then begin
    t.draining <- true;
    (* Drain must end with draining=false even if a task handler
       reraises, otherwise the scheduler would wedge. *)
    Fun.protect
      ~finally:(fun () -> t.draining <- false)
      (fun () ->
        while (not t.is_killed) && not (Queue.is_empty t.run_queue) do
          (Queue.pop t.run_queue) ()
        done;
        if t.is_killed then Queue.clear t.run_queue)
  end

(* Run [f] under the effect handler.  Continuations are resumed by
   re-entering this handler via the closures we build here, so the
   handler stays installed for the task's whole life (deep handler). *)
let exec t f =
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> t.on_exn e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let consumed = ref false in
                let resume v =
                  if (not !consumed) && not t.is_killed then begin
                    consumed := true;
                    enqueue t (fun () -> continue k v);
                    drain t
                  end
                in
                register resume)
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                enqueue t (fun () -> continue k ()))
          | _ -> None);
    }

let spawn t f =
  if not t.is_killed then begin
    t.spawned <- t.spawned + 1;
    enqueue t (fun () -> exec t f);
    drain t
  end

let kill t =
  t.is_killed <- true;
  Queue.clear t.run_queue
