(** Unbounded FIFO mailboxes between tasks.

    A mailbox decouples producers (event handlers, other tasks) from a
    consumer task; {!recv} suspends when empty.  At most one consumer
    may be blocked at a time (the toolkit's per-entry dispatch spawns a
    task per message, so single-consumer is the natural discipline). *)

type 'a t

val create : unit -> 'a t

(** [send t v] enqueues [v], waking the blocked consumer if any. *)
val send : 'a t -> 'a -> unit

(** [recv t] dequeues the oldest value, suspending until one arrives.
    @raise Invalid_argument if another task is already blocked in
    [recv]. *)
val recv : 'a t -> 'a

val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
