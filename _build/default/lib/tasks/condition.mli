(** Broadcast conditions.

    A reusable wait point: any number of tasks block in {!wait} until
    someone calls {!signal} (wakes one, FIFO) or {!broadcast} (wakes
    all).  Unlike {!Ivar}, a condition carries no value and can be used
    repeatedly; the semaphore tool and the flush primitive are built on
    it. *)

type t

val create : unit -> t

(** [wait t] suspends the calling task until woken. *)
val wait : t -> unit

(** [signal t] wakes the longest-waiting task, if any. *)
val signal : t -> unit

(** [broadcast t] wakes every waiting task, in FIFO order. *)
val broadcast : t -> unit

(** [waiters t] counts currently blocked tasks. *)
val waiters : t -> int
