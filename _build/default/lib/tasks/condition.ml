type t = { mutable queue : (unit -> unit) list (* waiters, newest first *) }

let create () = { queue = [] }

let wait t = Sched.suspend (fun resume -> t.queue <- resume :: t.queue)

let signal t =
  match List.rev t.queue with
  | [] -> ()
  | oldest :: rest ->
    t.queue <- List.rev rest;
    oldest ()

let broadcast t =
  let waiters = List.rev t.queue in
  t.queue <- [];
  List.iter (fun resume -> resume ()) waiters

let waiters t = List.length t.queue
