type 'a t = {
  queue : 'a Queue.t;
  mutable waiter : ('a -> unit) option;
}

let create () = { queue = Queue.create (); waiter = None }

let send t v =
  match t.waiter with
  | Some resume ->
    t.waiter <- None;
    resume v
  | None -> Queue.push v t.queue

let recv t =
  match Queue.take_opt t.queue with
  | Some v -> v
  | None ->
    if Option.is_some t.waiter then invalid_arg "Mailbox.recv: consumer already blocked";
    Sched.suspend (fun resume -> t.waiter <- Some resume)

let try_recv t = Queue.take_opt t.queue
let length t = Queue.length t.queue
let is_empty t = Queue.is_empty t.queue
