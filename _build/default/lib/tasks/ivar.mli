(** Write-once synchronization variables.

    The reply-collection machinery blocks callers on ivars: a task
    {!read}s (suspending if empty) and the runtime {!fill}s when the
    value arrives.  Multiple tasks may wait on the same ivar. *)

type 'a t

val create : unit -> 'a t

(** [fill t v] stores [v] and wakes all waiters.
    @raise Invalid_argument if already filled. *)
val fill : 'a t -> 'a -> unit

(** [fill_if_empty t v] is [fill] that ignores a second fill; returns
    whether this call stored the value. *)
val fill_if_empty : 'a t -> 'a -> bool

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option

(** [read t] returns the value, suspending the calling task until
    filled.  Must be called from inside a task. *)
val read : 'a t -> 'a
