(** Lightweight tasks (paper Sec 4.1).

    ISIS "implements a light-weight task facility permitting a single
    process to execute multiple concurrent tasks with no changes to the
    operating system ... implemented using a coroutine mechanism".  We
    reproduce it with OCaml 5 effect handlers: a task may call
    {!suspend}, which captures its continuation and hands a one-shot
    [resume] function to a registration callback; the task resumes when
    (and if) someone calls it.

    Each simulated process owns one scheduler, so killing the process
    ({!kill}) silently drops all of its tasks — a crashed process simply
    stops, mid-task, exactly as a crashed UNIX process would.

    Scheduling is cooperative and runs to quiescence: {!spawn}ing or
    resuming a task while the scheduler is idle drains the run queue
    before returning, so by the time the simulator moves to the next
    event every runnable task has either finished or suspended. *)

type t

(** [create ~name ()] returns an empty scheduler. *)
val create : ?name:string -> unit -> t

val name : t -> string

(** [spawn t f] queues task [f] and drains the run queue (unless a drain
    is already in progress higher up the stack).  No-op when killed. *)
val spawn : t -> (unit -> unit) -> unit

(** [suspend register] — call from inside a task only.  Captures the
    continuation, passes a one-shot [resume] to [register], and blocks
    the task until [resume v] is called.  [resume] may be called from
    any context (e.g. a simulator event); calling it a second time, or
    after the scheduler was killed, is a no-op. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** [yield ()] — reschedules the calling task behind the current run
    queue (lets sibling tasks run). *)
val yield : unit -> unit

(** [kill t] drops every queued and suspended task; subsequent resumes
    and spawns are ignored.  Idempotent. *)
val kill : t -> unit

val killed : t -> bool

(** [tasks_spawned t] counts tasks started over the scheduler's life. *)
val tasks_spawned : t -> int

(** [set_exn_handler t f] routes exceptions escaping a task to [f]
    (default: reraise, which aborts the whole simulation — the right
    default for tests). *)
val set_exn_handler : t -> (exn -> unit) -> unit
