lib/tasks/ivar.mli:
