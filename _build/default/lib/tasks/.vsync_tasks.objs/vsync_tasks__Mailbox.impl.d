lib/tasks/mailbox.ml: Option Queue Sched
