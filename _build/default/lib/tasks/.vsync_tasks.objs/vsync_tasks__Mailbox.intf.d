lib/tasks/mailbox.mli:
