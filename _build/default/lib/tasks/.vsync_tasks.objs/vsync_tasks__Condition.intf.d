lib/tasks/condition.mli:
