lib/tasks/sched.mli:
