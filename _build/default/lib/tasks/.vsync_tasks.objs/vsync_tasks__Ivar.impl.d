lib/tasks/ivar.ml: List Sched
