lib/tasks/condition.ml: List Sched
