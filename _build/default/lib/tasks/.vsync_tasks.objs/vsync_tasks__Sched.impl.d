lib/tasks/sched.ml: Effect Fun Queue
