type 'a state =
  | Empty of ('a -> unit) list (* waiters, newest first *)
  | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill_if_empty t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
    t.state <- Full v;
    List.iter (fun resume -> resume v) (List.rev waiters);
    true

let fill t v = if not (fill_if_empty t v) then invalid_arg "Ivar.fill: already filled"

let is_filled t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
    Sched.suspend (fun resume ->
        match t.state with
        | Full v -> resume v (* filled between the check and the suspend *)
        | Empty waiters -> t.state <- Empty (resume :: waiters))
