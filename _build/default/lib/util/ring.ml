type 'a t = {
  data : 'a option array;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
  mutable lost : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; start = 0; len = 0; lost = 0 }

let capacity t = Array.length t.data
let length t = t.len
let evicted t = t.lost

let push t x =
  let cap = capacity t in
  if t.len = cap then begin
    (* overwrite the oldest *)
    t.data.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap;
    t.lost <- t.lost + 1
  end
  else begin
    t.data.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end

let iter t f =
  for i = 0 to t.len - 1 do
    match t.data.((t.start + i) mod capacity t) with
    | Some x -> f x
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.start <- 0;
  t.len <- 0
