(** Vector clocks.

    CBCAST's causal-delivery test uses one vector-timestamp component per
    group member, indexed by that member's rank in the current view
    (ranks are dense and stable within a view, and view changes flush the
    group, so clocks never need to survive a view change). *)

type t

(** [create n] returns the zero vector of dimension [n]. *)
val create : int -> t

val dim : t -> int

(** [get t i] is component [i].  @raise Invalid_argument when out of
    range. *)
val get : t -> int -> int

(** [incr t i] bumps component [i] in place. *)
val incr : t -> int -> unit

(** [copy t] is an independent duplicate. *)
val copy : t -> t

(** [merge a b] sets [a] to the component-wise maximum of [a] and [b].
    @raise Invalid_argument on dimension mismatch. *)
val merge : t -> t -> unit

(** [leq a b] is true when every component of [a] is [<=] the matching
    component of [b] (the "happened-before-or-equal" partial order). *)
val leq : t -> t -> bool

(** [equal a b] is component-wise equality. *)
val equal : t -> t -> bool

(** [compare_causal a b] classifies the causal relation between events
    stamped [a] and [b]. *)
val compare_causal : t -> t -> [ `Before | `After | `Equal | `Concurrent ]

(** [deliverable ~msg ~local ~sender] is the CBCAST delivery test: a
    message stamped [msg] from the member with rank [sender] is
    deliverable at a process whose clock is [local] iff
    [msg.(sender) = local.(sender) + 1] and [msg.(k) <= local.(k)] for
    every other [k]. *)
val deliverable : msg:t -> local:t -> sender:int -> bool

(** [to_list t] lists the components, lowest rank first. *)
val to_list : t -> int list

(** [of_list l] builds a clock from components. *)
val of_list : int list -> t

val pp : Format.formatter -> t -> unit
