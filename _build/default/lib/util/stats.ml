module Summary = struct
  type t = {
    mutable samples : float list;
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable mn : float;
    mutable mx : float;
    mutable sorted : float array option; (* cache invalidated by add *)
  }

  let create () =
    { samples = []; n = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity; sorted = None }

  let add t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sumsq <- t.sumsq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    t.sorted <- None

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
  let min t = if t.n = 0 then nan else t.mn
  let max t = if t.n = 0 then nan else t.mx

  let stddev t =
    if t.n < 2 then 0.0
    else
      let m = mean t in
      sqrt (Float.max 0.0 ((t.sumsq /. float_of_int t.n) -. (m *. m)))

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Array.of_list t.samples in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

  let percentile t p =
    if t.n = 0 then nan
    else begin
      let a = sorted t in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
      a.(idx)
    end

  let clear t =
    t.samples <- [];
    t.n <- 0;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.mn <- infinity;
    t.mx <- neg_infinity;
    t.sorted <- None

  let pp ppf t =
    if t.n = 0 then Format.fprintf ppf "(no samples)"
    else
      Format.fprintf ppf "n=%d mean=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f" t.n (mean t)
        (min t) (percentile t 50.0) (percentile t 99.0) (max t)
end

module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let add t name n =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t name) in
    Hashtbl.replace t name (cur + n)

  let incr t name = add t name 1
  let get t name = Option.value ~default:0 (Hashtbl.find_opt t name)

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let clear = Hashtbl.reset

  let snapshot t = Hashtbl.copy t

  let diff later earlier =
    to_list later
    |> List.filter_map (fun (k, v) ->
           let d = v - get earlier k in
           if d = 0 then None else Some (k, d))
end
