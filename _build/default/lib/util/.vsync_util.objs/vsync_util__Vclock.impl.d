lib/util/vclock.ml: Array Format List Printf String
