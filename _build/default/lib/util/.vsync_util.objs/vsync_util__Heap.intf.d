lib/util/heap.mli:
