lib/util/ring.mli:
