lib/util/rng.mli:
