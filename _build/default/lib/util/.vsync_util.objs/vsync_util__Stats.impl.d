lib/util/stats.ml: Array Float Format Hashtbl List Option Stdlib String
