type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: the output function of Steele, Lea & Flood's
   SplitMix generator. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  (* Deriving the child seed through a second finalization keeps the two
     streams statistically decorrelated. *)
  let seed = bits64 t in
  { state = mix (Int64.logxor seed 0xD6E8FEB86659FD93L) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub (Int64.sub r v) (Int64.sub bound64 1L) < 0L && Int64.compare r 0L < 0
    then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits, scaled. *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | lst -> List.nth lst (int t (List.length lst))
