(** Imperative binary min-heap.

    Used for the simulator event queue and for priority-ordered delivery
    queues in the ABCAST protocol.  Ties are broken by insertion order
    (the heap is stable), which the event queue relies on for
    determinism. *)

type 'a t

(** [create ~compare] returns an empty heap ordered by [compare]
    (smallest element first). *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h x] inserts [x]. *)
val push : 'a t -> 'a -> unit

(** [peek h] returns the minimum element without removing it. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum element. *)
val pop : 'a t -> 'a option

(** [pop_exn h] is [pop] raising [Invalid_argument] when empty. *)
val pop_exn : 'a t -> 'a

(** [clear h] removes all elements. *)
val clear : 'a t -> unit

(** [to_list h] returns all elements in unspecified order (heap order,
    not sorted).  For diagnostics. *)
val to_list : 'a t -> 'a list

(** [remove_if h pred] removes every element satisfying [pred] and
    returns how many were removed.  O(n log n); used only on small heaps
    (cancelling timers). *)
val remove_if : 'a t -> ('a -> bool) -> int
