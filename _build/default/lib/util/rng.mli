(** Deterministic pseudo-random number generation.

    Every source of randomness in the simulator flows through a [Rng.t] so
    that a run is exactly reproducible from its seed.  The generator is
    splitmix64, which is fast, has a 64-bit state, and supports cheap
    stream splitting ({!split}) so independent subsystems can draw from
    statistically independent streams without sharing state. *)

type t

(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)
val create : int64 -> t

(** [split t] derives a new, independent generator from [t], advancing
    [t].  Use one stream per subsystem (network loss, scheduling jitter,
    workloads) so adding draws in one place does not perturb another. *)
val split : t -> t

(** [copy t] duplicates the current state (same future stream). *)
val copy : t -> t

(** [bits64 t] returns 64 uniformly distributed bits. *)
val bits64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)
val int_in : t -> int -> int -> int

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [bernoulli t p] returns [true] with probability [p] (clamped to
    [\[0,1\]]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] samples an exponential distribution with the
    given mean (used for Poisson arrival processes in workloads). *)
val exponential : t -> mean:float -> float

(** [shuffle t arr] permutes [arr] in place, uniformly. *)
val shuffle : t -> 'a array -> unit

(** [choose t lst] picks a uniform element of [lst].
    @raise Invalid_argument on an empty list. *)
val choose : t -> 'a list -> 'a
