(** Bounded ring buffer.

    Keeps the most recent [capacity] elements; older ones are silently
    evicted.  The trace facility uses one so that long simulations with
    tracing enabled hold a bounded tail of records rather than the
    whole history. *)

type 'a t

(** [create ~capacity] makes an empty ring.
    @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** [length t] is the number of retained elements ([<= capacity]). *)
val length : 'a t -> int

(** [push t x] appends [x], evicting the oldest element when full. *)
val push : 'a t -> 'a -> unit

(** [evicted t] counts elements lost to eviction since creation. *)
val evicted : 'a t -> int

(** [to_list t] returns the retained elements, oldest first. *)
val to_list : 'a t -> 'a list

(** [iter t f] applies [f] oldest first. *)
val iter : 'a t -> ('a -> unit) -> unit

val clear : 'a t -> unit
