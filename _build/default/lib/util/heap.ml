type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = [||]; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

(* Stable ordering: fall back to insertion sequence on ties. *)
let entry_lt h a b =
  let c = h.compare a.value b.value in
  c < 0 || (c = 0 && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy slot is never read: size bounds all accesses. *)
  let dummy = h.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_lt h h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && entry_lt h h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  let e = { value = x; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).value

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0).value in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h = h.size <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i).value :: acc) in
  loop (h.size - 1) []

let remove_if h pred =
  let kept = List.filter (fun v -> not (pred v)) (to_list h) in
  let removed = h.size - List.length kept in
  if removed > 0 then begin
    h.size <- 0;
    List.iter (push h) kept
  end;
  removed
