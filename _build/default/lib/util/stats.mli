(** Online statistics used by the benchmark harness.

    {!Summary} accumulates scalar samples (latencies, sizes) and reports
    count / mean / min / max / percentiles.  {!Counter} is a named
    monotone counter set; the Table-I experiment uses counters to tally
    multicasts per toolkit routine. *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float

  (** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the
      sorted samples.  Returns [nan] when empty. *)
  val percentile : t -> float -> float

  val clear : t -> unit
  val pp : Format.formatter -> t -> unit
end

module Counter : sig
  type t

  val create : unit -> t

  (** [incr t name] adds 1 to counter [name] (creating it at 0). *)
  val incr : t -> string -> unit

  (** [add t name n] adds [n]. *)
  val add : t -> string -> int -> unit

  val get : t -> string -> int

  (** [to_list t] returns all (name, value) pairs sorted by name. *)
  val to_list : t -> (string * int) list

  val clear : t -> unit

  (** [diff later earlier] is the per-name difference (names present in
      [later] only are kept with their full value). *)
  val diff : t -> t -> (string * int) list

  (** [snapshot t] copies the current values. *)
  val snapshot : t -> t
end
