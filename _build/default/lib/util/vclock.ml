type t = int array

let create n =
  if n < 0 then invalid_arg "Vclock.create: negative dimension";
  Array.make n 0

let dim t = Array.length t

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Vclock.get: index out of range";
  t.(i)

let incr t i =
  if i < 0 || i >= Array.length t then invalid_arg "Vclock.incr: index out of range";
  t.(i) <- t.(i) + 1

let copy = Array.copy

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vclock.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let merge a b =
  check_dims "merge" a b;
  for i = 0 to Array.length a - 1 do
    if b.(i) > a.(i) then a.(i) <- b.(i)
  done

let leq a b =
  check_dims "leq" a b;
  let rec loop i = i >= Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let equal a b = Array.length a = Array.length b && leq a b && leq b a

let compare_causal a b =
  let ab = leq a b and ba = leq b a in
  match ab, ba with
  | true, true -> `Equal
  | true, false -> `Before
  | false, true -> `After
  | false, false -> `Concurrent

let deliverable ~msg ~local ~sender =
  check_dims "deliverable" msg local;
  if sender < 0 || sender >= Array.length msg then
    invalid_arg "Vclock.deliverable: sender rank out of range";
  let rec loop i =
    if i >= Array.length msg then true
    else if i = sender then msg.(i) = local.(i) + 1 && loop (i + 1)
    else msg.(i) <= local.(i) && loop (i + 1)
  in
  loop 0

let to_list = Array.to_list
let of_list = Array.of_list

let pp ppf t =
  Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int (to_list t)))
