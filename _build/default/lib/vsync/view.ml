module Addr = Vsync_msg.Addr

type t = {
  group : Addr.group_id;
  view_id : int;
  members : Addr.proc list;
}

type change =
  | Member_joined of Addr.proc
  | Member_left of Addr.proc
  | Member_failed of Addr.proc

let initial group creator = { group; view_id = 1; members = [ creator ] }

let n_members t = List.length t.members

let is_member t p = List.exists (Addr.equal_proc p) t.members

let rank t p =
  let rec loop i = function
    | [] -> raise Not_found
    | m :: _ when Addr.equal_proc m p -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 t.members

let member_at t r = List.nth t.members r

let oldest t =
  match t.members with
  | [] -> invalid_arg "View.oldest: empty view"
  | m :: _ -> m

let sites t =
  List.map (fun (p : Addr.proc) -> p.Addr.site) t.members
  |> List.sort_uniq compare

let members_at_site t s = List.filter (fun (p : Addr.proc) -> p.Addr.site = s) t.members

let apply t changes =
  let removed =
    List.filter_map
      (function Member_left p | Member_failed p -> Some p | Member_joined _ -> None)
      changes
  in
  let joined = List.filter_map (function Member_joined p -> Some p | _ -> None) changes in
  let survivors =
    List.filter (fun m -> not (List.exists (Addr.equal_proc m) removed)) t.members
  in
  List.iter
    (fun j ->
      if List.exists (Addr.equal_proc j) survivors then
        invalid_arg "View.apply: joining member already present")
    joined;
  { t with view_id = t.view_id + 1; members = survivors @ joined }

let pp_change ppf = function
  | Member_joined p -> Format.fprintf ppf "+%a" Addr.pp_proc p
  | Member_left p -> Format.fprintf ppf "-%a" Addr.pp_proc p
  | Member_failed p -> Format.fprintf ppf "!%a" Addr.pp_proc p

let pp ppf t =
  Format.fprintf ppf "view(g%d,#%d,[%a])" (Addr.group_to_int t.group) t.view_id
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Addr.pp_proc)
    t.members
