(** Shared identifiers for the protocol layer. *)

(** Unique multicast identifier: originating site plus a per-site
    sequence number. *)
type uid = { usite : int; useq : int }

val uid_equal : uid -> uid -> bool
val uid_compare : uid -> uid -> int
val pp_uid : Format.formatter -> uid -> unit

(** ABCAST priority: (counter, site).  Lexicographic order; the site
    component breaks ties deterministically. *)
type prio = int * int

val prio_compare : prio -> prio -> int
val prio_max : prio -> prio -> prio
val pp_prio : Format.formatter -> prio -> unit

(** The three multicast primitives (paper Sec 3.1). *)
type mode =
  | Cbcast  (** causal order: potentially causally related multicasts
                are delivered everywhere in invocation order. *)
  | Abcast  (** total order: atomic and identically ordered everywhere. *)
  | Gbcast  (** global order: ordered w.r.t. {e everything}, including
                failures and membership changes. *)

val pp_mode : Format.formatter -> mode -> unit
val mode_to_string : mode -> string

(** How many replies a group RPC wants (paper Sec 3.2: "normally 0, 1,
    or ALL, although any limit could be specified"). *)
type want =
  | No_reply  (** asynchronous: the caller continues immediately. *)
  | Wait_n of int
  | Wait_all

val pp_want : Format.formatter -> want -> unit

module Uid_set : Set.S with type elt = uid
module Uid_map : Map.S with type key = uid
