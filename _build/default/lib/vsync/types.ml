type uid = { usite : int; useq : int }

let uid_equal a b = a.usite = b.usite && a.useq = b.useq

let uid_compare a b =
  match compare a.usite b.usite with 0 -> compare a.useq b.useq | c -> c

let pp_uid ppf u = Format.fprintf ppf "u%d.%d" u.usite u.useq

type prio = int * int

let prio_compare (c1, s1) (c2, s2) =
  match compare c1 c2 with 0 -> compare s1 s2 | c -> c

let prio_max a b = if prio_compare a b >= 0 then a else b

let pp_prio ppf (c, s) = Format.fprintf ppf "%d@%d" c s

type mode = Cbcast | Abcast | Gbcast

let mode_to_string = function Cbcast -> "CBCAST" | Abcast -> "ABCAST" | Gbcast -> "GBCAST"
let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)

type want = No_reply | Wait_n of int | Wait_all

let pp_want ppf = function
  | No_reply -> Format.pp_print_string ppf "async"
  | Wait_n n -> Format.fprintf ppf "n=%d" n
  | Wait_all -> Format.pp_print_string ppf "ALL"

module Uid_ord = struct
  type t = uid

  let compare = uid_compare
end

module Uid_set = Set.Make (Uid_ord)
module Uid_map = Map.Make (Uid_ord)
