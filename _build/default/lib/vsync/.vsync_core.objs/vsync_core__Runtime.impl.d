lib/vsync/runtime.ml: Causal Hashtbl List Option Printf Proto String Total Types Uid_map Uid_set View Vsync_msg Vsync_sim Vsync_tasks Vsync_transport Vsync_util
