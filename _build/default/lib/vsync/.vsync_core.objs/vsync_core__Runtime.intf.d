lib/vsync/runtime.mli: Types View Vsync_msg Vsync_sim Vsync_transport Vsync_util
