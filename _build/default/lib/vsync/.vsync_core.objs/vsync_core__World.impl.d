lib/vsync/world.ml: Array List Option Runtime Vsync_sim Vsync_util
