lib/vsync/total.mli: Types
