lib/vsync/types.mli: Format Map Set
