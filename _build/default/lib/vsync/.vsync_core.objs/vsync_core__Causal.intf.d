lib/vsync/causal.mli: Types Vsync_util
