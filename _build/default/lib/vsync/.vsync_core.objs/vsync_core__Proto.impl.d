lib/vsync/proto.ml: Format List String Types View Vsync_msg
