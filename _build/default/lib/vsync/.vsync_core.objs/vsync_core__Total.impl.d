lib/vsync/total.ml: List Types Uid_map Uid_set
