lib/vsync/types.ml: Format Map Set
