lib/vsync/view.ml: Format List Vsync_msg
