lib/vsync/proto.mli: Format Types View Vsync_msg
