lib/vsync/view.mli: Format Vsync_msg
