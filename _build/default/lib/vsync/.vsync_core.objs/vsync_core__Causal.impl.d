lib/vsync/causal.ml: List Types Uid_set Vsync_util
