lib/vsync/world.mli: Runtime Vsync_sim
