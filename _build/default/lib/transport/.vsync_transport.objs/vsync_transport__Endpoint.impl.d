lib/transport/endpoint.ml: Array Hashtbl List Option Rtt Vsync_sim
