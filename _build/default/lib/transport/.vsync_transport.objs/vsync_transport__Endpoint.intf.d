lib/transport/endpoint.mli: Vsync_sim
