lib/transport/rtt.ml: Float
