lib/transport/rtt.mli:
