(** The state transfer tool (paper Sec 3.8).

    Joins a pre-existing group while transferring state from the
    operational members to the newcomer, {e virtually synchronously}:
    "Up to the instant before the join occurs, the old set of members
    continue to receive requests and the new one does not.  Then, the
    join takes place and the next request is received by the new
    member too, and only after it has received the state that was
    current at the time of the join."

    Mechanics: every member attaches the tool with a list of named
    {e segments} — [(name, capture, install)] triples that carve the
    application state into variable-size chunks, exactly the encoding
    interface the paper describes.  When a join commits, the oldest
    operational member captures all segments {e synchronously at the
    view event} (a consistent cut: no post-view delivery can slip in
    first) and streams the chunks to the newcomer.  The newcomer's
    inbound messages are buffered from the instant it enters the view
    and released, in order, once the state is installed.

    If the donor fails mid-transfer, the newcomer asks the next-oldest
    member to restart the transfer from the beginning with a fresh
    capture.  On this (rare) path, messages the newcomer buffered
    before the second capture may already be reflected in the new
    state; applications that use the restart path should make updates
    idempotent or version their state (see DESIGN.md).

    Process migration (paper Sec 3.8) is built on this: start a new
    member with [join_and_xfer], then have the old member drop out —
    clients observe an atomic handoff.  *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

(** A named state segment: [(name, capture, install)]. *)
type segment = string * (unit -> bytes list) * (bytes list -> unit)

(** [attach p ~gid ~segments] makes member [p] a potential donor. *)
val attach : Runtime.proc -> gid:Addr.group_id -> segments:segment list -> unit

(** [join_and_xfer p ~gid ~credentials ~segments] joins and installs
    the transferred segments.  Returns [Error _] if the join is
    refused or every potential donor is lost before any transfer
    completes (recover from stable storage instead). *)
val join_and_xfer :
  Runtime.proc ->
  gid:Addr.group_id ->
  credentials:Message.t ->
  segments:segment list ->
  (unit, string) result
