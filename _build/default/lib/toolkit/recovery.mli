(** The recovery manager (paper Sec 3.8).

    "This tool will restart processes after they fail, or if a site
    recovers.  The recovery manager runs an algorithm similar to the
    one in [Skeen] to distinguish the total failure of a process group
    from the partial failure of a member, and will advise the
    recovering process either to restart the group (if it was one of
    the last to fail) or to wait for it to restart elsewhere and then
    rejoin."

    One manager runs per site.  Services report their group views
    through {!note_view}; the manager persists the latest view on
    stable storage.  After a crash, {!recover} runs the decision
    procedure:

    + if any reachable peer manager reports the service {e operational},
      the service should [`Join] (and typically state-transfer in);
    + otherwise the managers compare their persisted view identifiers —
      a site holding the highest one was among the last to fail and is
      entitled to [`Create] (restart from its checkpoint/log), ties
      broken by lowest site id;
    + a site that was {e not} among the last to fail waits for the
      entitled site to bring the service up and then joins; if the
      entitled sites never answer (their hardware is gone), it
      eventually takes over itself. *)

module Runtime = Vsync_core.Runtime
module View = Vsync_core.View

type t

(** [create rt ~store] starts the site's recovery manager process. *)
val create : Runtime.t -> store:Stable_store.t -> t

(** [note_view t ~service view] persists the service's current
    membership — call from the service's [pg_monitor] (and once after
    creating or joining). *)
val note_view : t -> service:string -> View.t -> unit

(** [note_running t ~service] marks the service operational at this
    site (call when the service is up and serving). *)
val note_running : t -> service:string -> unit

(** [note_stopped t ~service] clears the operational mark. *)
val note_stopped : t -> service:string -> unit

(** [recover t ~service ~decide] runs the decision procedure in a
    fresh task and calls [decide `Create] or [decide `Join] exactly
    once. *)
val recover : t -> service:string -> decide:([ `Create | `Join ] -> unit) -> unit
