module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  table : (string, Message.value) Hashtbl.t;
  mutable watchers : (string -> unit) list;
}

let f_key = "$cfg.key"
let f_val = "$cfg.val"

let apply t m =
  match Message.get_str m f_key, Message.get m f_val with
  | Some key, Some v ->
    Hashtbl.replace t.table key v;
    List.iter (fun w -> w key) t.watchers
  | _ -> ()

let attach me ~gid =
  let t = { me; gid; table = Hashtbl.create 8; watchers = [] } in
  Runtime.bind me Entry.generic_config (fun m -> apply t m);
  t

let update t ~key v =
  let m = Message.create () in
  Message.set_str m f_key key;
  Message.set m f_val v;
  ignore
    (Runtime.bcast t.me Types.Gbcast ~dest:(Addr.Group t.gid) ~entry:Entry.generic_config m
       ~want:Types.No_reply)

let read t ~key = Hashtbl.find_opt t.table key

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let on_change t f = t.watchers <- t.watchers @ [ f ]

(* State transfer: serialize the whole table as one message. *)
let encode_state t =
  let m = Message.create () in
  Hashtbl.iter (fun k v -> Message.set m k v) t.table;
  [ Message.encode m ]

let decode_state t chunks =
  Hashtbl.reset t.table;
  List.iter
    (fun chunk ->
      let m = Message.decode chunk in
      List.iter (fun (k, v) -> Hashtbl.replace t.table k v) (Message.fields m))
    chunks
