(** The coordinator-cohort tool (paper Sec 3.3 and Sec 6).

    A group responds to a request by having {e one} member (the
    coordinator) perform the action while the others (the cohorts)
    monitor its progress and take over one by one as failures occur.
    Because all participants compute the coordinator from the same
    ranked view and the same [plist], they agree without exchanging any
    messages.

    Protocol (paper Sec 6, reproduced exactly):
    - every member receiving the request calls {!handle} with the same
      deterministic [plist] (members able to perform this action);
    - the coordinator is the first operational [plist] process at the
      caller's site, if any — chosen to minimize latency — otherwise
      the caller's site id indexes [plist] circularly;
    - the coordinator runs [action] and replies to the caller with
      copies to every cohort (at their [generic_cc_reply] entry, via
      [reply_cc]);
    - a cohort that observes the coordinator fail before the reply copy
      arrives re-runs the selection among survivors and takes over;
    - non-participants send null replies, so the caller's RPC fails
      cleanly if every participant dies. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [attach p ~gid] prepares [p] to take part in coordinator-cohort
    computations on group [gid]: binds the [generic_cc_reply] entry and
    installs the failure monitor.  Call once per process per group,
    after joining. *)
val attach : Runtime.proc -> gid:Addr.group_id -> t

(** [handle t ~request ~plist ~action ?got_reply ()] — call from the
    request handler in {e every} member.  [action] computes the reply
    message (it runs only in the coordinator, inside a task, and may
    block); [got_reply] runs in each cohort when the coordinator's
    reply copy arrives. *)
val handle :
  t ->
  request:Message.t ->
  plist:Addr.proc list ->
  action:(Message.t -> Message.t) ->
  ?got_reply:(Message.t -> unit) ->
  unit ->
  unit

(** [open_requests t] counts requests this cohort is still watching
    (diagnostics). *)
val open_requests : t -> int
