module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types
module Ivar = Vsync_tasks.Ivar

type segment = string * (unit -> bytes list) * (bytes list -> unit)

let f_gid = "$xfer.gid"
let f_seg = "$xfer.seg"
let f_idx = "$xfer.idx"
let f_data = "$xfer.data"
let f_fin = "$xfer.end"
let f_resend = "$xfer.resend"

(* --- donor side --- *)

let capture_and_send me ~gid ~segments ~(joiner : Addr.proc) =
  (* Capture FIRST — synchronously, before this task can block — so the
     cut is exactly the view event. *)
  let captured = List.map (fun (name, capture, _) -> (name, capture ())) segments in
  let send_chunk seg idx chunk fin =
    let m = Message.create () in
    Message.set_int m f_gid (Addr.group_to_int gid);
    Message.set_str m f_seg seg;
    Message.set_int m f_idx idx;
    Message.set_bytes m f_data chunk;
    if fin then Message.set_bool m f_fin true;
    ignore
      (Runtime.bcast me Types.Cbcast ~dest:(Addr.Proc joiner) ~entry:Entry.generic_state_send m
         ~want:Types.No_reply)
  in
  let n_segs = List.length captured in
  List.iteri
    (fun seg_i (name, chunks) ->
      let last_seg = seg_i = n_segs - 1 in
      let n = List.length chunks in
      if n = 0 then send_chunk name 0 Bytes.empty last_seg
      else
        List.iteri (fun i chunk -> send_chunk name i chunk (last_seg && i = n - 1)) chunks)
    captured

let i_am_donor me view ~(joiner : Addr.proc) =
  let rec first_non_joiner = function
    | [] -> None
    | m :: rest -> if Addr.equal_proc m joiner then first_non_joiner rest else Some m
  in
  match first_non_joiner view.View.members with
  | Some m -> Addr.equal_proc m (Runtime.proc_addr me)
  | None -> false

let attach me ~gid ~segments =
  Runtime.pg_monitor me gid (fun view changes ->
      List.iter
        (function
          | View.Member_joined joiner ->
            if i_am_donor me view ~joiner then capture_and_send me ~gid ~segments ~joiner
          | View.Member_left _ | View.Member_failed _ -> ())
        changes);
  (* A restart request arrives when the original donor died
     mid-transfer: capture afresh and resend. *)
  Runtime.bind me Entry.generic_state_send (fun m ->
      if Message.get_bool m f_resend = Some true then
        match Message.sender m with
        | Some joiner when Message.get_int m f_gid = Some (Addr.group_to_int gid) ->
          capture_and_send me ~gid ~segments ~joiner
        | Some _ | None -> ())

(* --- joiner side --- *)

type rx = {
  mutable chunks : (string * bytes) list; (* reversed arrival order *)
  mutable finished : bool;
  done_ivar : (unit, string) result Ivar.t;
  mutable stash : Message.t list; (* reversed arrival order *)
}

let install_segments rx ~segments =
  let by_seg name =
    List.rev (List.filter_map (fun (s, c) -> if String.equal s name then Some c else None) rx.chunks)
  in
  List.iter
    (fun (name, _, install) ->
      let chunks = List.filter (fun c -> Bytes.length c > 0) (by_seg name) in
      install chunks)
    segments

let join_and_xfer me ~gid ~credentials ~segments =
  let rx = { chunks = []; finished = false; done_ivar = Ivar.create (); stash = [] } in
  (* Buffer everything except the transfer stream itself until the
     state is in place. *)
  Runtime.add_filter me (fun m ->
      if rx.finished then true
      else
        match Message.entry m with
        | Some e when e = Entry.generic_state_send -> true
        | Some _ | None ->
          rx.stash <- Message.copy m :: rx.stash;
          false);
  Runtime.bind me Entry.generic_state_send (fun m ->
      if not rx.finished then begin
        (match Message.get_str m f_seg, Message.get_bytes m f_data with
        | Some seg, Some data ->
          (* A restarted transfer begins again from segment zero; the
             simple arrival-ordered chunk list handles it because
             install replaces state wholesale. *)
          rx.chunks <- (seg, data) :: rx.chunks
        | _ -> ());
        if Message.get_bool m f_fin = Some true then begin
          install_segments rx ~segments;
          rx.finished <- true;
          Ivar.fill_if_empty rx.done_ivar (Ok ()) |> ignore
        end
      end);
  match Runtime.pg_join me gid ~credentials with
  | Error e -> Error e
  | Ok () ->
    (* We are in the view; watch for donor loss so the transfer can be
       restarted against the next-oldest member. *)
    Runtime.pg_monitor me gid (fun view changes ->
        if (not rx.finished) && changes <> [] then begin
          let failures =
            List.exists (function View.Member_failed _ | View.Member_left _ -> true | _ -> false) changes
          in
          if failures then begin
            rx.chunks <- [];
            if View.n_members view <= 1 then
              (* Every potential donor is gone. *)
              Ivar.fill_if_empty rx.done_ivar (Error "all donors lost") |> ignore
            else begin
              let m = Message.create () in
              Message.set_int m f_gid (Addr.group_to_int gid);
              Message.set_bool m f_resend true;
              let donor =
                List.find
                  (fun mm -> not (Addr.equal_proc mm (Runtime.proc_addr me)))
                  view.View.members
              in
              ignore
                (Runtime.bcast me Types.Cbcast ~dest:(Addr.Proc donor)
                   ~entry:Entry.generic_state_send m ~want:Types.No_reply)
            end
          end
        end);
    (* Sole member?  Nothing to transfer. *)
    (match Runtime.pg_view me gid with
    | Some v when View.n_members v = 1 ->
      rx.finished <- true;
      Ivar.fill_if_empty rx.done_ivar (Ok ()) |> ignore
    | Some _ | None -> ());
    let result = Ivar.read rx.done_ivar in
    rx.finished <- true;
    (* Release everything buffered during the transfer, in order. *)
    let stashed = List.rev rx.stash in
    rx.stash <- [];
    List.iter (fun m -> Runtime.redeliver me m) stashed;
    result
