(** The remote execution service (paper Sec 4, Figure 1).

    One of the per-site service processes in the ISIS architecture
    diagram: it starts new processes at its site on request from
    anywhere in the system.  The twenty-questions Step 3 ("have the
    oldest member of the service start new members up at an appropriate
    site until the number of operational ones reaches NMEMBERS") and
    the recovery manager both build on it.

    Programs are named: register the code under a string once per
    OCaml program ({!register_program}); a spawn request names the
    program and the service runs it in a fresh process at its site. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [register_program name body] makes [name] spawnable everywhere
    (process-wide registry; [body] runs as the new process's first
    task, receiving the new process and the spawn request's argument
    message). *)
val register_program : string -> (Runtime.proc -> Message.t -> unit) -> unit

(** [start rt] launches the site's remote execution service. *)
val start : Runtime.t -> t

(** [spawn_at caller ~site ~program arg] asks [site]'s service to start
    [program]; returns the new process's address, or an error if the
    site is down, runs no service, or does not know the program.
    Blocking (one RPC). *)
val spawn_at :
  Runtime.proc -> site:int -> program:string -> Message.t -> (Addr.proc, string) result
