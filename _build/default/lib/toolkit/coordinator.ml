module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View

type open_req = {
  request : Message.t;
  plist : Addr.proc list;
  action : Message.t -> Message.t;
  got_reply : Message.t -> unit;
}

type t = {
  me : Runtime.proc;
  gid : Addr.group_id;
  pending : (int, open_req) Hashtbl.t; (* session -> watch state *)
}

(* The deterministic selection rule of Sec 6: prefer an operational
   plist process at the caller's site; otherwise scan plist circularly
   starting from an index derived from the caller's site. *)
let choose_coordinator ~view ~plist ~(caller : Addr.proc) =
  let operational = List.filter (View.is_member view) plist in
  match operational with
  | [] -> None
  | _ -> (
    match List.find_opt (fun (p : Addr.proc) -> p.Addr.site = caller.Addr.site) operational with
    | Some p -> Some p
    | None ->
      let n = List.length operational in
      Some (List.nth operational (caller.Addr.site mod n)))

let is_me t p = Addr.equal_proc p (Runtime.proc_addr t.me)

let run_as_coordinator t req =
  Runtime.spawn_task t.me (fun () ->
      let answer = req.action req.request in
      let view = Runtime.pg_view t.me t.gid in
      let cohorts =
        match view with
        | Some v ->
          List.filter (fun p -> View.is_member v p && not (is_me t p)) req.plist
        | None -> []
      in
      Runtime.reply_cc t.me ~request:req.request answer ~copy_to:cohorts)

let on_view_change t view _changes =
  (* Re-run the selection for every request still open; exactly one
     survivor elects itself. *)
  let sessions = Hashtbl.fold (fun s r acc -> (s, r) :: acc) t.pending [] in
  List.iter
    (fun (session, req) ->
      match Message.sender req.request with
      | None -> ()
      | Some caller -> (
        match choose_coordinator ~view ~plist:req.plist ~caller with
        | Some c when is_me t c ->
          Hashtbl.remove t.pending session;
          run_as_coordinator t req
        | Some _ -> ()
        | None -> Hashtbl.remove t.pending session))
    sessions

let attach me ~gid =
  let t = { me; gid; pending = Hashtbl.create 8 } in
  Runtime.bind me Entry.generic_cc_reply (fun reply ->
      match Message.session reply with
      | None -> ()
      | Some session -> (
        match Hashtbl.find_opt t.pending session with
        | None -> ()
        | Some req ->
          Hashtbl.remove t.pending session;
          req.got_reply reply));
  Runtime.pg_monitor me gid (fun view changes -> on_view_change t view changes);
  t

let handle t ~request ~plist ~action ?(got_reply = fun _ -> ()) () =
  match Message.sender request, Message.session request with
  | Some caller, Some session -> (
    let view = Runtime.pg_view t.me t.gid in
    match view with
    | None -> ()
    | Some view -> (
      let participant = List.exists (is_me t) plist in
      if not participant then Runtime.null_reply t.me ~request
      else
        match choose_coordinator ~view ~plist ~caller with
        | Some c when is_me t c -> run_as_coordinator t { request; plist; action; got_reply }
        | Some _ -> Hashtbl.replace t.pending session { request; plist; action; got_reply }
        | None -> ()))
  | _ -> invalid_arg "Coordinator.handle: request carries no caller/session"

let open_requests t = Hashtbl.length t.pending
