module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

let install p ~trusted ?(on_reject = fun _ -> ()) () =
  Runtime.add_filter p (fun m ->
      match Message.sender m with
      | Some s when trusted s -> true
      | Some _ | None ->
        on_reject m;
        false)

let trusted_sites sites (s : Addr.proc) = List.mem s.Addr.site sites

let trusted_procs procs (s : Addr.proc) = List.exists (Addr.equal_proc s) procs
