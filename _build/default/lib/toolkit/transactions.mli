(** The transactional facility (paper Sec 3.11).

    "We have also designed a transactional facility, providing a simple
    subroutine interface implementing the nested transaction constructs
    begin, commit, and abort [Moss], which the user simply includes in
    his or her code.  Transactional access to stable storage and
    2-phase locks will be provided."

    A group of {e managers} replicates a key-value store and its lock
    table.  Lock requests and commits ride ABCAST, so every manager
    makes identical locking decisions without coordination — including
    FIFO queueing, read-lock sharing, and deterministic wait-for-cycle
    (deadlock) detection, which refuses the closing request with
    [Error "deadlock"].

    Clients run transactions with strict two-phase locking: {!read}
    takes a shared lock (the grant carries the value, so a read costs
    one ABCAST round), {!write} takes an exclusive lock and buffers the
    update, {!commit} applies every buffered write at all managers and
    releases the locks, {!abort} just releases.  Sub-transactions
    ({!begin_sub}) buffer their writes separately — aborting one
    discards only its effects — while locks are inherited by the root
    transaction and held to the top-level commit, as in Moss's design.

    With a stable store attached, committed writes are logged at each
    manager's site and {!recover} replays them after a crash.

    A manager that fails mid-transaction is harmless (the others hold
    identical state).  If a {e member} client dies, its locks are
    released at the failure view change; locks held by non-member
    clients that die are not reclaimed (see DESIGN.md). *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

(** {1 Managers} *)

type mgr

(** [attach_manager p ~gid ?store ()] makes member [p] a transaction
    manager for the group's store. *)
val attach_manager : Runtime.proc -> gid:Addr.group_id -> ?store:Stable_store.t -> unit -> mgr

(** [recover m] replays the committed-write log from stable storage
    (call before serving after a restart). *)
val recover : mgr -> unit

(** [value_at m key] — manager-local read of committed state (tests,
    no locking). *)
val value_at : mgr -> string -> Message.value option

(** [locks_held m] counts currently held locks (diagnostics). *)
val locks_held : mgr -> int

(** {1 Transactions} *)

type tx

(** [begin_tx p ~gid] starts a top-level transaction against the
    manager group. *)
val begin_tx : Runtime.proc -> gid:Addr.group_id -> tx

(** [begin_sub tx] starts a nested sub-transaction. *)
val begin_sub : tx -> tx

(** [read tx key] — shared lock + current value.  Sees the
    transaction's own buffered writes first. *)
val read : tx -> string -> (Message.value option, string) result

(** [write tx key v] — exclusive lock, buffered until commit. *)
val write : tx -> string -> Message.value -> (unit, string) result

(** [commit tx] — for a sub-transaction, merges its writes into the
    parent; for the root, applies all writes at every manager, logs
    them, and releases the locks. *)
val commit : tx -> (unit, string) result

(** [abort tx] — discards this transaction's (or sub-transaction's)
    buffered writes; a root abort releases all locks. *)
val abort : tx -> unit
