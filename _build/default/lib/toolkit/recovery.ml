module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types

type t = {
  rt : Runtime.t;
  store : Stable_store.t;
  proc : Runtime.proc;
  running : (string, unit) Hashtbl.t;
}

let f_service = "$rm.svc"
let f_view_id = "$rm.view_id"
let f_sites = "$rm.sites"
let f_operational = "$rm.up"

let rm_group_name site = Printf.sprintf "sys.rm.%d" site
let ckpt_name service = "rm." ^ service

let my_site t = Runtime.site t.rt

(* Persisted record: view id + member sites, one encoded message. *)
let persist t ~service ~view_id ~sites =
  let m = Message.create () in
  Message.set_int m f_view_id view_id;
  Message.set_str m f_sites (String.concat "," (List.map string_of_int sites));
  Stable_store.write_checkpoint t.store ~site:(my_site t) ~name:(ckpt_name service)
    [ Message.encode m ]

let load t ~service =
  match Stable_store.read_checkpoint t.store ~site:(my_site t) ~name:(ckpt_name service) with
  | Some [ chunk ] -> (
    let m = Message.decode chunk in
    match Message.get_int m f_view_id, Message.get_str m f_sites with
    | Some view_id, Some sites_str ->
      let sites =
        if String.equal sites_str "" then []
        else List.map int_of_string (String.split_on_char ',' sites_str)
      in
      Some (view_id, sites)
    | _ -> None)
  | Some _ | None -> None

let create rt ~store =
  let proc = Runtime.spawn_proc rt ~name:(Printf.sprintf "rm%d" (Runtime.site rt)) () in
  let t = { rt; store; proc; running = Hashtbl.create 8 } in
  Runtime.bind proc Entry.generic_recovery (fun m ->
      match Message.get_str m f_service with
      | None -> ()
      | Some service ->
        let answer = Message.create () in
        Message.set_bool answer f_operational (Hashtbl.mem t.running service);
        (match load t ~service with
        | Some (view_id, _) -> Message.set_int answer f_view_id view_id
        | None -> Message.set_int answer f_view_id (-1));
        Runtime.reply proc ~request:m answer);
  (* Make this manager addressable from other sites through the
     directory. *)
  Runtime.spawn_task proc (fun () ->
      ignore (Runtime.pg_create proc (rm_group_name (Runtime.site rt))));
  t

let note_view t ~service view =
  persist t ~service ~view_id:view.View.view_id ~sites:(View.sites view)

let note_running t ~service = Hashtbl.replace t.running service ()
let note_stopped t ~service = Hashtbl.remove t.running service

(* Ask the recovery manager at [site] about [service]; None when
   unreachable. *)
let query_peer t ~site ~service =
  match Runtime.pg_lookup t.proc (rm_group_name site) with
  | None -> None
  | Some gid -> (
    let m = Message.create () in
    Message.set_str m f_service service;
    match
      Runtime.bcast t.proc Types.Cbcast ~dest:(Addr.Group gid) ~entry:Entry.generic_recovery m
        ~want:(Types.Wait_n 1)
    with
    | Runtime.Replies ((_, answer) :: _) ->
      Some
        ( Message.get_bool answer f_operational = Some true,
          Option.value ~default:(-1) (Message.get_int answer f_view_id) )
    | Runtime.Replies [] | Runtime.All_failed -> None)

let recover t ~service ~decide =
  Runtime.spawn_task t.proc (fun () ->
      match load t ~service with
      | None -> decide `Create (* nothing persisted: first-ever start *)
      | Some (my_view_id, sites) ->
        let peers = List.filter (fun s -> s <> my_site t) sites in
        let rec attempt tries =
          let answers = List.filter_map (fun s -> Option.map (fun a -> (s, a)) (query_peer t ~site:s ~service)) peers in
          if List.exists (fun (_, (up, _)) -> up) answers then decide `Join
          else begin
            let best =
              List.fold_left
                (fun (bs, bv) (s, (_, v)) -> if v > bv || (v = bv && s < bs) then (s, v) else (bs, bv))
                (my_site t, my_view_id) answers
            in
            if fst best = my_site t then decide `Create
            else if tries >= 5 then
              (* The entitled site never came up; take over. *)
              decide `Create
            else begin
              (* Someone else failed later than we did: wait for them to
                 restart the service, then join it. *)
              Runtime.sleep t.proc 2_000_000;
              attempt (tries + 1)
            end
          end
        in
        attempt 0)
