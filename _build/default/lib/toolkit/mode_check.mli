(** Primitive-compliance checking (paper Sec 5, Summary).

    "Correct behavior of the twenty-questions service when dynamic
    updates are being done requires that the appropriate broadcast
    primitive be used by clients when transmitting update and query
    requests.  A programming error in one of many clients could violate
    such a rule, affecting other clients.  A type checking mechanism
    seems to be needed for verifying the compliance of clients with the
    requirements of services they exploit."

    This tool is that mechanism: a service member declares which
    primitive each of its entries (or operation tags) requires, and the
    tool rejects non-compliant deliveries at every member — before the
    handler runs, identically everywhere — reporting the offender so
    one buggy client cannot corrupt the replicas for all the others.

    The runtime stamps each delivery with the primitive that carried it
    (a field clients cannot forge any more than the sender address). *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [install p] puts the compliance filter on member [p]'s inbound
    path.  Declare rules before traffic arrives. *)
val install : Runtime.proc -> t

(** [require t ~entry modes] accepts deliveries to [entry] only when
    they arrived by one of [modes]. *)
val require : t -> entry:Vsync_msg.Entry.t -> Vsync_core.Types.mode list -> unit

(** [on_violation t f] runs [f message] for each rejected delivery
    (default: silently dropped). *)
val on_violation : t -> (Message.t -> unit) -> unit

(** [violations t] counts rejections so far. *)
val violations : t -> int
