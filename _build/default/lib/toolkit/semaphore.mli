(** Replicated semaphores (paper Sec 3.5).

    "ISIS provides replicated semaphores, using a fair (FIFO) request
    queueing method.  If desired, a semaphore will automatically be
    released when the holder fails."

    The semaphore state is a deterministic replicated state machine in
    the members of a manager group: P requests ride ABCAST (Table I:
    "1 ABCAST, all replies"), so every manager sees the same FIFO
    queue; V rides an asynchronous CBCAST from the holder ("1 async
    CBCAST"), which is safe because mutual exclusion makes the holder
    unique.  A grant is the reply to the still-open P call.  Failure of
    a member holder releases the semaphore automatically (the managers
    observe the failure at the same logical point, so they agree on the
    re-grant).  Wait-for cycles across semaphores of the same manager
    group are detected deterministically and the offending P is refused
    with [Error "deadlock"].

    Holders that are not group members are released on failure only if
    their whole site fails; see DESIGN.md. *)

module Addr = Vsync_msg.Addr
module Runtime = Vsync_core.Runtime

type t

(** [attach p ~gid] makes member [p] a semaphore manager.  All managers
    of a group share every semaphore name used with it. *)
val attach : Runtime.proc -> gid:Addr.group_id -> t

(** [define t ~name ~count] initializes semaphore [name] (1 async
    CBCAST; idempotent, deterministic). *)
val define : t -> name:string -> count:int -> unit

(** [p caller ~gid ~name] acquires (blocks until granted).
    Errors: ["deadlock"] when granting would close a wait-for cycle,
    ["unreachable"] when no manager can answer. *)
val p : Runtime.proc -> gid:Addr.group_id -> name:string -> (unit, string) result

(** [v caller ~gid ~name] releases.  Only the holder may release;
    stray Vs are ignored by the managers. *)
val v : Runtime.proc -> gid:Addr.group_id -> name:string -> unit

(** [holder t ~name] — manager-side view of the current holder. *)
val holder : t -> name:string -> Addr.proc option

(** [queue_length t ~name] — manager-side queue length. *)
val queue_length : t -> name:string -> int
