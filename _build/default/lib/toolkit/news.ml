module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

let group_name = "sys.news"
let f_subject = "$news.subject"

type agent = {
  proc : Runtime.proc;
  mutable subs : (string * Runtime.proc * (Message.t -> unit)) list;
  mutable ready : bool;
}

let deliver_local a m =
  match Message.get_str m f_subject with
  | None -> ()
  | Some subject ->
    List.iter
      (fun (s, p, f) ->
        if String.equal s subject && Runtime.proc_alive p then
          Runtime.spawn_task p (fun () -> f (Message.copy m)))
      a.subs

let start_agent rt =
  let proc = Runtime.spawn_proc rt ~name:(Printf.sprintf "news.agent%d" (Runtime.site rt)) () in
  let a = { proc; subs = []; ready = false } in
  Runtime.bind proc Entry.generic_news (fun m -> deliver_local a m);
  Runtime.spawn_task proc (fun () ->
      (* Site 0's agent creates the group; the others keep looking it
         up until it exists (agents may start concurrently). *)
      let rec connect () =
        match Runtime.pg_lookup proc group_name with
        | Some gid -> (
          match Runtime.pg_join proc gid ~credentials:(Message.create ()) with
          | Ok () -> ()
          | Error e -> failwith ("news agent could not join: " ^ e))
        | None ->
          if Runtime.site rt = 0 then ignore (Runtime.pg_create proc group_name)
          else begin
            Runtime.sleep proc 200_000;
            connect ()
          end
      in
      connect ();
      a.ready <- true);
  a

let agent_ready a = a.ready

let subscribe a p ~subject f =
  Vsync_util.Stats.Counter.incr (Runtime.counters (Runtime.runtime_of p)) "prim.local_rpc";
  a.subs <- (subject, p, f) :: a.subs

let unsubscribe a p ~subject =
  a.subs <-
    List.filter
      (fun (s, q, _) ->
        not (String.equal s subject && Runtime.proc_uid q = Runtime.proc_uid p))
      a.subs

let post p ~subject m =
  match Runtime.pg_lookup p group_name with
  | None -> invalid_arg "News.post: no news service running"
  | Some gid ->
    let m = Message.copy m in
    Message.set_str m f_subject subject;
    ignore
      (Runtime.bcast p Types.Abcast ~dest:(Addr.Group gid) ~entry:Entry.generic_news m
         ~want:Types.No_reply)
