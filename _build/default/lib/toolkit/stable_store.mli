(** Stable storage (paper Sec 2.2 "Stable storage" / Sec 3.6 logging).

    A simulated disk array: one store per site, surviving process and
    site crashes (state is lost only if explicitly erased).  Tools use
    it for update logs and checkpoints so services can be restarted
    after partial or total failures.

    The store lives {e outside} the runtimes — like a disk, it does not
    reboot when the operating system does.  Create one per simulation
    and share it across restarts. *)

module Message = Vsync_msg.Message

type t

(** [create ~sites ()] makes an empty disk array. *)
val create : sites:int -> unit -> t

(** {1 Logs}

    A log is an append-only sequence of messages under a name local to
    a site. *)

(** [append t ~site ~log m] appends a copy of [m]. *)
val append : t -> site:int -> log:string -> Message.t -> unit

(** [read_log t ~site ~log] returns the entries oldest first. *)
val read_log : t -> site:int -> log:string -> Message.t list

(** [log_length t ~site ~log] counts entries. *)
val log_length : t -> site:int -> log:string -> int

(** [truncate_log t ~site ~log] clears the log (after a checkpoint). *)
val truncate_log : t -> site:int -> log:string -> unit

(** {1 Checkpoints} *)

(** [write_checkpoint t ~site ~name chunks] atomically replaces the
    checkpoint (a sequence of variable-size chunks, as the replicated
    data tool's checkpointing routine produces). *)
val write_checkpoint : t -> site:int -> name:string -> bytes list -> unit

val read_checkpoint : t -> site:int -> name:string -> bytes list option

(** {1 Erasure (for tests)} *)

(** [wipe_site t ~site] models a destroyed disk. *)
val wipe_site : t -> site:int -> unit
