module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Types = Vsync_core.Types

type t = {
  rules : (Entry.t, Types.mode list) Hashtbl.t;
  mutable on_violation : Message.t -> unit;
  mutable rejected : int;
}

let install p =
  let t = { rules = Hashtbl.create 8; on_violation = (fun _ -> ()); rejected = 0 } in
  Runtime.add_filter p (fun m ->
      match Message.entry m with
      | None -> true
      | Some e -> (
        match Hashtbl.find_opt t.rules e with
        | None -> true
        | Some allowed -> (
          match Runtime.delivery_mode m with
          | Some mode when List.mem mode allowed -> true
          | Some _ | None ->
            t.rejected <- t.rejected + 1;
            t.on_violation m;
            false)));
  t

let require t ~entry modes = Hashtbl.replace t.rules entry modes

let on_violation t f = t.on_violation <- f

let violations t = t.rejected
