(** The replicated data tool (paper Sec 3.6).

    Replicates a data item among the members of a process group,
    "reducing access time in read-intensive settings and achieving
    low-overhead fault-tolerance".  The managing processes supply the
    [apply] (update) and optional [read] routines; arguments ride in
    the message uninterpreted.

    Ordering: a structure that needs a globally consistent request
    ordering (the paper's replicated FIFO queue) declares
    {!order}[ = Ordered] and its operations ride ABCAST; a structure
    updated under mutual exclusion or by a single writer declares
    [Causal] and rides asynchronous CBCAST — the caller "can pretend
    that the message was delivered to its destinations at the moment
    the CBCAST was issued".

    Logging mode records updates on stable storage, enabling reload
    after a crash ({!recover}) and automatic checkpointing when the log
    grows long (the checkpoint routine carves the item into chunks of
    variable size, exactly as in the paper). *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type order =
  | Causal   (** asynchronous CBCAST updates. *)
  | Ordered  (** ABCAST updates (globally consistent request order). *)

type t

(** [attach p ~gid ~item ~order ~apply ...] registers member [p] as a
    manager of replicated item [item].

    - [apply m] applies one update locally;
    - [read m] (optional) computes a read-only answer for clients;
    - [log] (optional) turns on logging mode: updates are appended to
      stable storage at this member's site;
    - [checkpoint] (with [log]) is [(capture, restore)]: [capture]
      carves the item into chunks; when the log exceeds
      [checkpoint_every] entries the tool writes a checkpoint and
      truncates the log. *)
val attach :
  Runtime.proc ->
  gid:Addr.group_id ->
  item:string ->
  order:order ->
  apply:(Message.t -> unit) ->
  ?read:(Message.t -> Message.t) ->
  ?log:Stable_store.t ->
  ?checkpoint:(unit -> bytes list) * (bytes list -> unit) ->
  ?checkpoint_every:int ->
  unit ->
  t

(** [update t m] — manager-side update: one asynchronous CBCAST or one
    ABCAST, per the item's declared order (Table I). *)
val update : t -> Message.t -> unit

(** [read_local t m] — read-only access by a manager: no cost. *)
val read_local : t -> Message.t -> Message.t

(** [client_update p ~gid ~item m] — update issued by a non-manager. *)
val client_update : Runtime.proc -> gid:Addr.group_id -> item:string -> Message.t -> unit

(** [client_read p ~gid ~item m] — read by a non-manager: 1 CBCAST +
    1 reply (one deterministic manager answers; the rest send null
    replies).  [None] if the managers are unreachable. *)
val client_read :
  Runtime.proc -> gid:Addr.group_id -> item:string -> Message.t -> Message.t option

(** [recover t] reloads the item from the latest checkpoint plus logged
    updates (call on restart, before serving). *)
val recover : t -> unit

(** [log_name t] is the stable-storage log this instance writes. *)
val log_name : t -> string
