(** The configuration tool (paper Sec 3.3).

    A process group maintains a configuration data structure "much like
    the one that lists membership".  It is stored directly in the
    members, so reads cost nothing; updates ride a GBCAST, so "it will
    appear that configuration changes occur when no multicasts to the
    group are pending, hence all recipients of a message will see the
    same group configuration when a message arrives".  Members that
    divide work by consulting the configuration therefore make mutually
    consistent decisions.

    The paper's twenty-questions Step 7 uses this tool for dynamic load
    balancing: changing the member-numbering rule at run time. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [attach p ~gid] connects member [p] to the group's configuration
    structure (binds the [generic_config] entry). *)
val attach : Runtime.proc -> gid:Addr.group_id -> t

(** [update t ~key v] installs [key = v] at every member, at the same
    logical instant everywhere (1 GBCAST). *)
val update : t -> key:string -> Message.value -> unit

(** [read t ~key] reads the local copy (no communication). *)
val read : t -> key:string -> Message.value option

(** [keys t] lists the configured keys, sorted. *)
val keys : t -> string list

(** [on_change t f] runs [f key] after each applied update. *)
val on_change : t -> (string -> unit) -> unit

(** {1 State-transfer hooks}

    The configuration structure transfers automatically when the state
    transfer tool is in use (paper Sec 3.8): pass these to
    [State_transfer]'s segment list. *)

val encode_state : t -> bytes list
val decode_state : t -> bytes list -> unit
