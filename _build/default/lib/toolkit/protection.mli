(** The protection tool (paper Sec 3.10).

    Validates incoming messages using the sender address, which the
    runtime stamps and which "cannot be forged".  Messages from unknown
    or untrusted clients are handed to a user routine that decides what
    to do; by default they are silently discarded.

    Join validation is the runtime's [pg_join_verify]; this module adds
    the message-path validation ("pg_msg_verify" in Table I). *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

(** [install p ~trusted ~on_reject] filters every message delivered to
    [p]: a message whose sender fails [trusted] is passed to
    [on_reject] (default: drop) and never reaches an entry.  Messages
    with no sender stamp are rejected. *)
val install :
  Runtime.proc ->
  trusted:(Addr.proc -> bool) ->
  ?on_reject:(Message.t -> unit) ->
  unit ->
  unit

(** [trusted_sites sites] is a convenience predicate accepting senders
    from the listed sites. *)
val trusted_sites : int list -> Addr.proc -> bool

(** [trusted_procs procs] accepts exactly the listed processes. *)
val trusted_procs : Addr.proc list -> Addr.proc -> bool
