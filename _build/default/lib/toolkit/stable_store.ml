module Message = Vsync_msg.Message

type site_disk = {
  logs : (string, Message.t list ref) Hashtbl.t; (* newest first *)
  checkpoints : (string, bytes list) Hashtbl.t;
}

type t = site_disk array

let create ~sites () =
  Array.init sites (fun _ -> { logs = Hashtbl.create 8; checkpoints = Hashtbl.create 8 })

let disk t site =
  if site < 0 || site >= Array.length t then invalid_arg "Stable_store: bad site";
  t.(site)

let log_ref d log =
  match Hashtbl.find_opt d.logs log with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace d.logs log r;
    r

let append t ~site ~log m =
  let r = log_ref (disk t site) log in
  r := Message.copy m :: !r

let read_log t ~site ~log =
  match Hashtbl.find_opt (disk t site).logs log with
  | Some r -> List.rev_map Message.copy !r
  | None -> []

let log_length t ~site ~log =
  match Hashtbl.find_opt (disk t site).logs log with Some r -> List.length !r | None -> 0

let truncate_log t ~site ~log = Hashtbl.remove (disk t site).logs log

let write_checkpoint t ~site ~name chunks =
  Hashtbl.replace (disk t site).checkpoints name (List.map Bytes.copy chunks)

let read_checkpoint t ~site ~name =
  Option.map (List.map Bytes.copy) (Hashtbl.find_opt (disk t site).checkpoints name)

let wipe_site t ~site =
  let d = disk t site in
  Hashtbl.reset d.logs;
  Hashtbl.reset d.checkpoints
