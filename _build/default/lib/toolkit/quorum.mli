(** Quorum replication (paper Sec 3.3).

    "Some replicated processing methods, such as the full replication
    method used in CIRCUS or the quorum methods used in [Gifford]
    [Herlihy], have straightforward implementations in ISIS.  In the
    former case, the caller waits for ALL responses and all recipients
    respond.  If the caller knows the quorum size, Q, it simply waits
    for Q replies.  If it does not know the quorum, it waits for ALL
    replies, and the Q oldest group members (or any other set of Q
    members that can be identified consistently) reply, giving the
    value of Q as part of their reply.  Other members send null
    replies."

    This tool implements Gifford-style weighted voting on top of that
    pattern: each member holds a versioned copy; the {e Q oldest}
    members answer reads and apply writes (identified consistently from
    the ranked view, with no extra communication); writes ride ABCAST
    so racing writers resolve identically at every copy.  Because the
    responder sets are rank prefixes, any read quorum intersects any
    write quorum at the oldest member, and the freshest version always
    surfaces. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [attach p ~gid ~item ~read_quorum ~write_quorum] makes member [p] a
    replica of [item].  Quorum sizes must agree across members. *)
val attach :
  Runtime.proc ->
  gid:Addr.group_id ->
  item:string ->
  read_quorum:int ->
  write_quorum:int ->
  t

(** [read caller ~gid ~item] collects the read quorum and returns the
    highest-versioned value ([Ok None] before any write). *)
val read :
  Runtime.proc -> gid:Addr.group_id -> item:string -> (Message.value option, string) result

(** [write caller ~gid ~item v] reads the version quorum, then writes
    [v] with the next version at the write quorum.  Waits until the
    quorum acknowledges. *)
val write :
  Runtime.proc -> gid:Addr.group_id -> item:string -> Message.value -> (unit, string) result

(** [local t] — this replica's (version, value), for tests. *)
val local : t -> (int * Message.value) option
