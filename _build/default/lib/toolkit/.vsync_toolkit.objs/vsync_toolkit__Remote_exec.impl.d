lib/toolkit/remote_exec.ml: Hashtbl Printf Vsync_core Vsync_msg
