lib/toolkit/state_transfer.mli: Vsync_core Vsync_msg
