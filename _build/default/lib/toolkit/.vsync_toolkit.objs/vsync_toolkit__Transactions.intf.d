lib/toolkit/transactions.mli: Stable_store Vsync_core Vsync_msg
