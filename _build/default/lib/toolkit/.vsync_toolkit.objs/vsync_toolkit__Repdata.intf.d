lib/toolkit/repdata.mli: Stable_store Vsync_core Vsync_msg
