lib/toolkit/repdata.ml: Hashtbl List Printf Stable_store Vsync_core Vsync_msg
