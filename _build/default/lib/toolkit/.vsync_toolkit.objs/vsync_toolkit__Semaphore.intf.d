lib/toolkit/semaphore.mli: Vsync_core Vsync_msg
