lib/toolkit/mode_check.ml: Hashtbl List Vsync_core Vsync_msg
