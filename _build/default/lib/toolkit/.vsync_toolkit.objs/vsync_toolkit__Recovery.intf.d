lib/toolkit/recovery.mli: Stable_store Vsync_core
