lib/toolkit/transactions.ml: Hashtbl List Printf Stable_store String Vsync_core Vsync_msg
