lib/toolkit/stable_store.mli: Vsync_msg
