lib/toolkit/bboard.mli: Vsync_core Vsync_msg
