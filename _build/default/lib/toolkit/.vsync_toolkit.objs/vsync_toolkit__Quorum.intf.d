lib/toolkit/quorum.mli: Vsync_core Vsync_msg
