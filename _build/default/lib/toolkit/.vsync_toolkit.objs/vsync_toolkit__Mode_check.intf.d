lib/toolkit/mode_check.mli: Vsync_core Vsync_msg
