lib/toolkit/realtime.mli: Vsync_core Vsync_msg
