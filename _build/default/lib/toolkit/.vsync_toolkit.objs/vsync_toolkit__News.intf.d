lib/toolkit/news.mli: Vsync_core Vsync_msg
