lib/toolkit/protection.ml: List Vsync_core Vsync_msg
