lib/toolkit/state_transfer.ml: Bytes List String Vsync_core Vsync_msg Vsync_tasks
