lib/toolkit/recovery.ml: Hashtbl List Option Printf Stable_store String Vsync_core Vsync_msg
