lib/toolkit/stable_store.ml: Array Bytes Hashtbl List Option Vsync_msg
