lib/toolkit/remote_exec.mli: Vsync_core Vsync_msg
