lib/toolkit/news.ml: List Printf String Vsync_core Vsync_msg Vsync_util
