lib/toolkit/config_tool.ml: Hashtbl List Vsync_core Vsync_msg
