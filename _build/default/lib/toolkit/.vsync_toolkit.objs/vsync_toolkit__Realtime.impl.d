lib/toolkit/realtime.ml: Hashtbl List String Vsync_core Vsync_msg Vsync_sim
