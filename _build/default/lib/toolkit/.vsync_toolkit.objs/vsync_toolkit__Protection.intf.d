lib/toolkit/protection.mli: Vsync_core Vsync_msg
