lib/toolkit/quorum.ml: Hashtbl List Vsync_core Vsync_msg
