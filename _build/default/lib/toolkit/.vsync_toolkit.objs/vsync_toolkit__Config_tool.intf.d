lib/toolkit/config_tool.mli: Vsync_core Vsync_msg
