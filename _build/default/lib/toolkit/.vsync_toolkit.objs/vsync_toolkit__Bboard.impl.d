lib/toolkit/bboard.ml: Hashtbl List String Vsync_core Vsync_msg
