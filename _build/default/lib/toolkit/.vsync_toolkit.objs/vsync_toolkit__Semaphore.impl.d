lib/toolkit/semaphore.ml: Hashtbl List Option Vsync_core Vsync_msg
