lib/toolkit/coordinator.mli: Vsync_core Vsync_msg
