lib/toolkit/coordinator.ml: Hashtbl List Vsync_core Vsync_msg
