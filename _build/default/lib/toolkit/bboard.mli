(** Bulletin boards (paper Sec 3.11, [Birman-d]).

    "A very high level tool that supports bulletin boards of the sort
    used in many artificial intelligence applications.  Unlike the news
    service, the bulletin board facility is linked directly into its
    clients and does not exist as a separate entity; it is intended for
    high performance shared data management.  Processes can read and
    post messages on one or more shared bulletin boards, and these
    operations are implemented using the multicast primitives."

    Each board lives in the members of a process group.  Posts to an
    {e unordered} board ride asynchronous CBCAST (per-poster order);
    posts to an {e ordered} board ride ABCAST (identical order at every
    replica).  Reads are local and free.  {!take} removes a posting —
    replicas agree on the winner because takes always ride ABCAST. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** A posting: its subject, a replica-consistent identifier, and the
    body. *)
type posting = { subject : string; post_id : int; body : Message.t }

(** [attach p ~gid ~board ~ordered] connects member [p] to [board].
    Boards with the same name attach to the same shared state;
    [ordered] selects the posting primitive and must agree across
    members. *)
val attach : Runtime.proc -> gid:Addr.group_id -> board:string -> ordered:bool -> t

(** [post t ~subject body] adds a posting (1 async CBCAST, or 1 ABCAST
    for ordered boards). *)
val post : t -> subject:string -> Message.t -> unit

(** [read t ~subject] lists this replica's postings under [subject],
    oldest first (no cost). *)
val read : t -> subject:string -> posting list

(** [read_all t] lists every posting on the board, oldest first. *)
val read_all : t -> posting list

(** [take t ~subject] removes and returns the posting with the
    smallest id under [subject] (1 ABCAST, all replies).  On an ordered
    board every replica holds the same postings when the take arrives,
    so all agree on the victim; on an unordered board agreement
    additionally requires posting quiescence or a single consumer.
    [None] when the subject is empty. *)
val take : t -> subject:string -> posting option

(** [monitor t ~subject f] runs [f posting] at this member for every
    new posting under [subject]. *)
val monitor : t -> subject:string -> (posting -> unit) -> unit

(** [size t] counts postings held (diagnostics). *)
val size : t -> int

(** {1 State transfer} *)

val encode_state : t -> bytes list
val decode_state : t -> bytes list -> unit
