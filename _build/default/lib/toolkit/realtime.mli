(** The real-time facility (paper Sec 3.11).

    "We plan to add a real time facility to ISIS.  The tool would
    provide for clock synchronization within site clusters, scheduling
    actions at predetermined global times, and reconciliation of sensor
    readings (the tool will act as a database, collecting timestamped
    sensor values and reporting the set of sensor values read during a
    given time interval)."

    The paper lists this as designed-but-unimplemented; we implement it
    as the future-work extension:

    - {b Clock synchronization}: sites have skewed local clocks (set
      with [World.create ~clock_skew_us]).  The oldest member of the
      time group acts as the master; the others estimate their offset
      with Cristian's round-trip method and maintain a corrected
      {!global_time}.
    - {b Scheduled actions}: {!schedule_at} runs a closure when the
      {e global} clock reaches a target — members with different skews
      fire within the synchronization error of each other.
    - {b Sensor database}: {!report} multicasts a timestamped reading
      to the group; {!readings} returns every value observed in a
      global-time interval, identically at every member. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime

type t

(** [attach p ~gid] joins member [p] to the time service machinery of
    its group (binds entries; call after joining the group). *)
val attach : Runtime.proc -> gid:Addr.group_id -> t

(** [sync t] runs one synchronization round against the current master
    (blocking; a no-op at the master itself).  Returns the estimated
    offset applied, in µs. *)
val sync : t -> (int, string) result

(** [global_time t] is this member's estimate of the master clock. *)
val global_time : t -> int

(** [offset_us t] is the current correction (0 before {!sync} and at
    the master). *)
val offset_us : t -> int

(** [schedule_at t ~global f] runs [f] when {!global_time} reaches
    [global] (immediately if already past). *)
val schedule_at : t -> global:int -> (unit -> unit) -> unit

(** [report t ~sensor value] publishes a reading stamped with this
    member's global time (1 async CBCAST). *)
val report : t -> sensor:string -> float -> unit

(** [readings t ~sensor ~from_ ~until] lists [(global_stamp, value)]
    pairs in the closed interval, oldest first — the same answer at
    every member once reports have propagated. *)
val readings : t -> sensor:string -> from_:int -> until:int -> (int * float) list
