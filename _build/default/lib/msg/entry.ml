type t = int

let generic_join = 0
let generic_monitor = 1
let generic_cc_reply = 2
let generic_state_send = 3
let generic_news = 4
let generic_reply = 5
let generic_config = 6
let generic_repdata = 7
let generic_semaphore = 8
let generic_bboard = 9
let generic_txn = 10
let generic_recovery = 11

let user_base = 16

let user n =
  if n < 0 then invalid_arg "Entry.user: negative index";
  let e = user_base + n in
  if e > 255 then invalid_arg "Entry.user: entry identifiers are one byte";
  e

let pp ppf t =
  if t >= user_base then Format.fprintf ppf "entry:user%d" (t - user_base)
  else
    let name =
      match t with
      | 0 -> "join"
      | 1 -> "monitor"
      | 2 -> "cc_reply"
      | 3 -> "state_send"
      | 4 -> "news"
      | 5 -> "reply"
      | 6 -> "config"
      | 7 -> "repdata"
      | 8 -> "semaphore"
      | 9 -> "bboard"
      | 10 -> "txn"
      | 11 -> "recovery"
      | _ -> "reserved"
    in
    Format.fprintf ppf "entry:%s" name
