lib/msg/entry.ml: Format
