lib/msg/entry.mli: Format
