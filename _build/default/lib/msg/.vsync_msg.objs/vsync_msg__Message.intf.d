lib/msg/message.mli: Addr Entry Format
