lib/msg/addr.mli: Format
