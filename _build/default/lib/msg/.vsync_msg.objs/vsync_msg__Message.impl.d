lib/msg/message.ml: Addr Buffer Bytes Format Int32 Int64 List Printf Stdlib String
