lib/msg/addr.ml: Format Int64
