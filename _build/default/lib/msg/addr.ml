type site = int

type proc = { site : site; idx : int; incarnation : int }

type group_id = int

type t =
  | Proc of proc
  | Group of group_id

(* Field widths for the 8-byte encoding: 1 tag byte, then either
   site:16 idx:16 incarnation:24 for a process, or id:56 for a group. *)
let max_site = 0xFFFF
let max_idx = 0xFFFF
let max_incarnation = 0xFFFFFF

let proc ~site ~idx ~incarnation =
  if site < 0 || site > max_site then invalid_arg "Addr.proc: site out of range";
  if idx < 0 || idx > max_idx then invalid_arg "Addr.proc: idx out of range";
  if incarnation < 0 || incarnation > max_incarnation then
    invalid_arg "Addr.proc: incarnation out of range";
  { site; idx; incarnation }

let group_of_int i =
  if i < 0 then invalid_arg "Addr.group_of_int: negative id";
  i

let group_to_int g = g

let same_slot a b = a.site = b.site && a.idx = b.idx

let equal_proc a b = a.site = b.site && a.idx = b.idx && a.incarnation = b.incarnation

let compare_proc a b =
  match compare a.site b.site with
  | 0 -> (match compare a.idx b.idx with 0 -> compare a.incarnation b.incarnation | c -> c)
  | c -> c

let equal a b =
  match a, b with
  | Proc p, Proc q -> equal_proc p q
  | Group g, Group h -> g = h
  | Proc _, Group _ | Group _, Proc _ -> false

let compare a b =
  match a, b with
  | Proc p, Proc q -> compare_proc p q
  | Group g, Group h -> compare g h
  | Proc _, Group _ -> -1
  | Group _, Proc _ -> 1

let tag_proc = 0x01L
let tag_group = 0x02L

let to_int64 = function
  | Proc { site; idx; incarnation } ->
    let open Int64 in
    logor
      (shift_left tag_proc 56)
      (logor
         (shift_left (of_int site) 40)
         (logor (shift_left (of_int idx) 24) (of_int incarnation)))
  | Group g ->
    Int64.logor (Int64.shift_left tag_group 56) (Int64.of_int g)

let of_int64 v =
  let open Int64 in
  let tag = shift_right_logical v 56 in
  if equal tag tag_proc then
    let site = to_int (logand (shift_right_logical v 40) 0xFFFFL) in
    let idx = to_int (logand (shift_right_logical v 24) 0xFFFFL) in
    let incarnation = to_int (logand v 0xFFFFFFL) in
    Proc { site; idx; incarnation }
  else if equal tag tag_group then Group (to_int (logand v 0xFFFFFFFFFFFFFFL))
  else invalid_arg "Addr.of_int64: bad tag"

let pp_proc ppf p = Format.fprintf ppf "p%d.%d/%d" p.site p.idx p.incarnation

let pp ppf = function
  | Proc p -> pp_proc ppf p
  | Group g -> Format.fprintf ppf "g%d" g

let proc_to_string p = Format.asprintf "%a" pp_proc p
let to_string t = Format.asprintf "%a" pp t
