type t = { mutable fields : (string * value) list (* newest last *) }

and value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Bytes of bytes
  | Address of Addr.t
  | Addresses of Addr.t list
  | Nested of t

let create () = { fields = [] }

let rec copy t = { fields = List.map copy_field t.fields }

and copy_field (name, v) =
  let v' =
    match v with
    | Bytes b -> Bytes (Stdlib.Bytes.copy b)
    | Nested m -> Nested (copy m)
    | Bool _ | Int _ | Float _ | Str _ | Address _ | Addresses _ -> v
  in
  (name, v')

let set t name v =
  if List.mem_assoc name t.fields then
    t.fields <- List.map (fun (n, old) -> if String.equal n name then (n, v) else (n, old)) t.fields
  else t.fields <- t.fields @ [ (name, v) ]

let get t name = List.assoc_opt name t.fields

let get_exn t name =
  match get t name with
  | Some v -> v
  | None -> raise Not_found

let remove t name = t.fields <- List.filter (fun (n, _) -> not (String.equal n name)) t.fields

let mem t name = List.mem_assoc name t.fields

let fields t = t.fields

let type_error name = invalid_arg (Printf.sprintf "Message: field %S has unexpected type" name)

let get_int t name =
  match get t name with Some (Int i) -> Some i | None -> None | Some _ -> type_error name

let get_str t name =
  match get t name with Some (Str s) -> Some s | None -> None | Some _ -> type_error name

let get_bool t name =
  match get t name with Some (Bool b) -> Some b | None -> None | Some _ -> type_error name

let get_float t name =
  match get t name with Some (Float f) -> Some f | None -> None | Some _ -> type_error name

let get_bytes t name =
  match get t name with Some (Bytes b) -> Some b | None -> None | Some _ -> type_error name

let get_addr t name =
  match get t name with Some (Address a) -> Some a | None -> None | Some _ -> type_error name

let get_addrs t name =
  match get t name with Some (Addresses a) -> Some a | None -> None | Some _ -> type_error name

let get_msg t name =
  match get t name with Some (Nested m) -> Some m | None -> None | Some _ -> type_error name

let set_int t name i = set t name (Int i)
let set_str t name s = set t name (Str s)
let set_bool t name b = set t name (Bool b)
let set_float t name f = set t name (Float f)
let set_bytes t name b = set t name (Bytes b)
let set_addr t name a = set t name (Address a)
let set_addrs t name a = set t name (Addresses a)
let set_msg t name m = set t name (Nested m)

(* System fields live in the same symbol table under reserved names. *)
let f_sender = "$sender"
let f_session = "$session"
let f_entry = "$entry"

let sender t =
  match get_addr t f_sender with
  | Some (Addr.Proc p) -> Some p
  | Some (Addr.Group _) -> invalid_arg "Message.sender: group address in $sender"
  | None -> None

let set_sender t p = set_addr t f_sender (Addr.Proc p)

let session t = get_int t f_session
let set_session t s = set_int t f_session s

let entry t = get_int t f_entry
let set_entry t e = set_int t f_entry e

(* --- Wire format ---

   message  := u16 field-count, fields
   field    := u8 name-len, name bytes, u8 type-tag, payload
   payloads := Bool u8 | Int i64 | Float 8 bytes | Str/Bytes u32+body
             | Address i64 | Addresses u16 + i64s | Nested u32 + message *)

let tag_bool = 0
let tag_int = 1
let tag_float = 2
let tag_str = 3
let tag_bytes = 4
let tag_addr = 5
let tag_addrs = 6
let tag_nested = 7

let rec encode_to buf t =
  let n = List.length t.fields in
  if n > 0xFFFF then invalid_arg "Message.encode: too many fields";
  Buffer.add_uint16_be buf n;
  List.iter (encode_field buf) t.fields

and encode_field buf (name, v) =
  let name_len = String.length name in
  if name_len > 255 then invalid_arg "Message.encode: field name too long";
  Buffer.add_uint8 buf name_len;
  Buffer.add_string buf name;
  match v with
  | Bool b ->
    Buffer.add_uint8 buf tag_bool;
    Buffer.add_uint8 buf (if b then 1 else 0)
  | Int i ->
    Buffer.add_uint8 buf tag_int;
    Buffer.add_int64_be buf (Int64.of_int i)
  | Float f ->
    Buffer.add_uint8 buf tag_float;
    Buffer.add_int64_be buf (Int64.bits_of_float f)
  | Str s ->
    Buffer.add_uint8 buf tag_str;
    Buffer.add_int32_be buf (Int32.of_int (String.length s));
    Buffer.add_string buf s
  | Bytes b ->
    Buffer.add_uint8 buf tag_bytes;
    Buffer.add_int32_be buf (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf b
  | Address a ->
    Buffer.add_uint8 buf tag_addr;
    Buffer.add_int64_be buf (Addr.to_int64 a)
  | Addresses addrs ->
    Buffer.add_uint8 buf tag_addrs;
    let n = List.length addrs in
    if n > 0xFFFF then invalid_arg "Message.encode: too many addresses";
    Buffer.add_uint16_be buf n;
    List.iter (fun a -> Buffer.add_int64_be buf (Addr.to_int64 a)) addrs
  | Nested m ->
    Buffer.add_uint8 buf tag_nested;
    let inner = Buffer.create 64 in
    encode_to inner m;
    Buffer.add_int32_be buf (Int32.of_int (Buffer.length inner));
    Buffer.add_buffer buf inner

let encode t =
  let buf = Buffer.create 256 in
  encode_to buf t;
  Buffer.to_bytes buf

let size t = Bytes.length (encode t)

exception Malformed of string

type cursor = { data : bytes; mutable pos : int }

let need cur n =
  if cur.pos + n > Bytes.length cur.data then raise (Malformed "truncated buffer")

let read_u8 cur =
  need cur 1;
  let v = Bytes.get_uint8 cur.data cur.pos in
  cur.pos <- cur.pos + 1;
  v

let read_u16 cur =
  need cur 2;
  let v = Bytes.get_uint16_be cur.data cur.pos in
  cur.pos <- cur.pos + 2;
  v

let read_i32 cur =
  need cur 4;
  let v = Int32.to_int (Bytes.get_int32_be cur.data cur.pos) in
  cur.pos <- cur.pos + 4;
  if v < 0 then raise (Malformed "negative length");
  v

let read_i64 cur =
  need cur 8;
  let v = Bytes.get_int64_be cur.data cur.pos in
  cur.pos <- cur.pos + 8;
  v

let read_string cur n =
  need cur n;
  let s = Bytes.sub_string cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let rec decode_from cur =
  let n = read_u16 cur in
  let rec loop i acc = if i = n then List.rev acc else loop (i + 1) (decode_field cur :: acc) in
  { fields = loop 0 [] }

and decode_field cur =
  let name_len = read_u8 cur in
  let name = read_string cur name_len in
  let tag = read_u8 cur in
  let v =
    if tag = tag_bool then Bool (read_u8 cur <> 0)
    else if tag = tag_int then Int (Int64.to_int (read_i64 cur))
    else if tag = tag_float then Float (Int64.float_of_bits (read_i64 cur))
    else if tag = tag_str then
      let len = read_i32 cur in
      Str (read_string cur len)
    else if tag = tag_bytes then
      let len = read_i32 cur in
      Bytes (Bytes.of_string (read_string cur len))
    else if tag = tag_addr then Address (Addr.of_int64 (read_i64 cur))
    else if tag = tag_addrs then begin
      let n = read_u16 cur in
      let rec loop i acc =
        if i = n then List.rev acc else loop (i + 1) (Addr.of_int64 (read_i64 cur) :: acc)
      in
      Addresses (loop 0 [])
    end
    else if tag = tag_nested then begin
      let len = read_i32 cur in
      need cur len;
      let stop = cur.pos + len in
      let m = decode_from cur in
      if cur.pos <> stop then raise (Malformed "nested message length mismatch");
      Nested m
    end
    else raise (Malformed (Printf.sprintf "unknown field tag %d" tag))
  in
  (name, v)

let decode b =
  let cur = { data = b; pos = 0 } in
  match decode_from cur with
  | m ->
    if cur.pos <> Bytes.length b then invalid_arg "Message.decode: trailing bytes";
    m
  | exception Malformed why -> invalid_arg ("Message.decode: " ^ why)
  | exception Invalid_argument why -> invalid_arg ("Message.decode: " ^ why)

let rec equal a b =
  List.length a.fields = List.length b.fields
  && List.for_all
       (fun (name, v) ->
         match get b name with Some w -> equal_value v w | None -> false)
       a.fields

and equal_value v w =
  match v, w with
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Str a, Str b -> String.equal a b
  | Bytes a, Bytes b -> Bytes.equal a b
  | Address a, Address b -> Addr.equal a b
  | Addresses a, Addresses b -> List.length a = List.length b && List.for_all2 Addr.equal a b
  | Nested a, Nested b -> equal a b
  | (Bool _ | Int _ | Float _ | Str _ | Bytes _ | Address _ | Addresses _ | Nested _), _ -> false

let rec pp ppf t =
  let pp_field ppf (name, v) = Format.fprintf ppf "%s=%a" name pp_value v in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_field) t.fields

and pp_value ppf = function
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bytes b -> Format.fprintf ppf "<%d bytes>" (Bytes.length b)
  | Address a -> Addr.pp ppf a
  | Addresses addrs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Addr.pp)
      addrs
  | Nested m -> pp ppf m
