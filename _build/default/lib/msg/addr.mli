(** ISIS addresses.

    The paper (Sec 4.1) uses a "highly encoded process addressing scheme
    that represents addresses using an 8-byte identifier", where group
    addresses can be used in any context a process address is accepted.
    We reproduce that: every address packs into an [int64]
    ({!to_int64}/{!of_int64}), and {!t} is the sum of process and group
    addresses.

    A process address identifies a particular {e incarnation} of a
    process slot at a site: after a crash, a restarted process receives a
    fresh incarnation number, so stale messages addressed to the dead
    incarnation are never delivered to its successor. *)

(** Site (machine) identifier. *)
type site = int

(** A process address: site, slot index at that site, incarnation. *)
type proc = private { site : site; idx : int; incarnation : int }

(** Group identifier, globally unique. *)
type group_id = private int

(** An address: either a single process or a process group. *)
type t =
  | Proc of proc
  | Group of group_id

val proc : site:site -> idx:int -> incarnation:int -> proc

(** [group_of_int i] casts a raw group id (used by the group name
    service, which allocates them densely). *)
val group_of_int : int -> group_id

val group_to_int : group_id -> int

(** [same_slot a b] is true when [a] and [b] name the same site slot,
    ignoring incarnation. *)
val same_slot : proc -> proc -> bool

val equal_proc : proc -> proc -> bool
val compare_proc : proc -> proc -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** 8-byte wire encoding, as in the paper. *)
val to_int64 : t -> int64

(** @raise Invalid_argument on a malformed encoding. *)
val of_int64 : int64 -> t

val pp_proc : Format.formatter -> proc -> unit
val pp : Format.formatter -> t -> unit
val proc_to_string : proc -> string
val to_string : t -> string
