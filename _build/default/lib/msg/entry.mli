(** Entry points.

    Every ISIS process binds handler routines to {e entry points} known
    to callers through 1-byte identifiers (paper Sec 4.1).  Some entries
    are {e generic}: reserved by the toolkit for its own protocols.  User
    entries start at {!user_base}. *)

type t = int

(** {1 Generic entries}

    Reserved by the toolkit; values below {!user_base} cannot be bound
    by applications. *)

(** Join requests to a group. *)
val generic_join : t

(** Membership-change upcall. *)
val generic_monitor : t

(** Coordinator-cohort reply copy. *)
val generic_cc_reply : t

(** State-transfer chunks. *)
val generic_state_send : t

(** News-service delivery. *)
val generic_news : t

(** RPC replies. *)
val generic_reply : t

(** Configuration-tool updates. *)
val generic_config : t

(** Replicated-data tool operations. *)
val generic_repdata : t

(** Replicated-semaphore operations. *)
val generic_semaphore : t

(** Bulletin-board operations. *)
val generic_bboard : t

(** Transactional-tool operations. *)
val generic_txn : t

(** Recovery-manager queries. *)
val generic_recovery : t

(** {1 User entries} *)

(** First identifier available to applications. *)
val user_base : t

(** [user n] is the [n]-th user entry ([n >= 0]).
    @raise Invalid_argument if the result exceeds one byte. *)
val user : int -> t

val pp : Format.formatter -> t -> unit
