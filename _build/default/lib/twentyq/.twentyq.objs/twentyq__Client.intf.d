lib/twentyq/client.mli: Database Vsync_core Vsync_msg
