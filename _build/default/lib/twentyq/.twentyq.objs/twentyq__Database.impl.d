lib/twentyq/database.ml: Array Bytes Format List String
