lib/twentyq/service.mli: Database Vsync_core Vsync_msg Vsync_toolkit
