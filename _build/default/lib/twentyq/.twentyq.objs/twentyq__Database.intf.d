lib/twentyq/database.mli: Format
