lib/twentyq/service.ml: Database List String Vsync_core Vsync_msg Vsync_toolkit
