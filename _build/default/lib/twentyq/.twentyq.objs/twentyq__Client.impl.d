lib/twentyq/client.ml: Database List Option Service String Vsync_core Vsync_msg
