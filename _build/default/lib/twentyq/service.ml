module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module View = Vsync_core.View
module Types = Vsync_core.Types
module Toolkit = Vsync_toolkit
module Config_tool = Toolkit.Config_tool
module State_transfer = Toolkit.State_transfer
module Stable_store = Toolkit.Stable_store

let group_name = "twenty"
let entry = Entry.user 8

let f_op = "$tq.op"
let f_query = "$tq.q"
let f_answer = "$tq.ans"
let f_member = "$tq.member"
let f_nmembers = "$tq.nm"
let f_values = "$tq.values"
let f_column = "$tq.col"
let f_value = "$tq.val"

let log_name = "twentyq.updates"
let ckpt_name = "twentyq.db"

type t = {
  me : Runtime.proc;
  mutable group : Addr.group_id;
  mutable database : Database.t;
  config : Config_tool.t option ref; (* set after attach *)
  store : Stable_store.t option;
}

let gid t = t.group
let db t = t.database

let my_number t = Runtime.pg_rank t.me t.group

let config t =
  match !(t.config) with Some c -> c | None -> invalid_arg "Twentyq: config not attached"

let nmembers t =
  match Config_tool.read (config t) ~key:"nmembers" with
  | Some (Message.Int n) -> n
  | _ -> 1

let secret t =
  match Config_tool.read (config t) ~key:"secret" with
  | Some (Message.Str s) when not (String.equal s "") -> Some s
  | _ -> None

let set_nmembers t n = Config_tool.update (config t) ~key:"nmembers" (Message.Int n)
let set_secret t s = Config_tool.update (config t) ~key:"secret" (Message.Str s)

let site_of t = (Runtime.proc_addr t.me).Addr.site

let log_update t m =
  match t.store with
  | Some store ->
    Stable_store.append store ~site:(site_of t) ~log:log_name m;
    if Stable_store.log_length store ~site:(site_of t) ~log:log_name >= 32 then begin
      Stable_store.write_checkpoint store ~site:(site_of t) ~name:ckpt_name
        (Database.encode t.database);
      Stable_store.truncate_log store ~site:(site_of t) ~log:log_name
    end
  | None -> ()

let apply_update t m =
  (match Message.get_str m f_op with
  | Some "add_row" -> (
    match Message.get_str m f_values with
    | Some packed -> Database.add_row t.database (String.split_on_char '\x1f' packed)
    | None -> ())
  | Some "remove_rows" -> (
    match Message.get_str m f_column, Message.get_str m f_value with
    | Some column, Some value -> ignore (Database.remove_rows t.database ~column ~value)
    | _ -> ())
  | Some _ | None -> ());
  log_update t m

(* Answering rule of Step 2.  A member that is not responsible (or is a
   standby, Step 4) sends a null reply so the caller never hangs. *)
let answer_query t m =
  let reply_with answer =
    let r = Message.create () in
    Message.set_str r f_answer (Database.answer_to_string answer);
    (match my_number t with Some n -> Message.set_int r f_member n | None -> ());
    Message.set_int r f_nmembers (nmembers t);
    Runtime.reply t.me ~request:m r
  in
  match Message.get_str m f_query, my_number t with
  | Some qtext, Some number -> (
    let nm = nmembers t in
    let horizontal = String.length qtext > 0 && qtext.[0] = '*' in
    let body = if horizontal then String.sub qtext 1 (String.length qtext - 1) else qtext in
    if number >= nm then Runtime.null_reply t.me ~request:m (* hot standby *)
    else
      match Database.parse_query body with
      | None -> Runtime.null_reply t.me ~request:m
      | Some q ->
        if horizontal then
          let answer =
            Database.eval t.database ?restrict_object:(secret t) q
              ~row_filter:(fun r -> r mod nm = number)
          in
          reply_with answer
        else
          let responsible =
            match Database.column_index t.database q.Database.column with
            | ci -> ci mod nm
            | exception Not_found -> 0
          in
          if responsible = number then
            reply_with
              (Database.eval t.database ?restrict_object:(secret t) q ~row_filter:(fun _ -> true))
          else Runtime.null_reply t.me ~request:m)
  | _ -> Runtime.null_reply t.me ~request:m

let handle t m =
  match Message.get_str m f_op with
  | Some "query" -> answer_query t m
  | Some ("add_row" | "remove_rows") ->
    apply_update t m;
    if Message.session m <> None then Runtime.null_reply t.me ~request:m
  | Some _ | None -> if Message.session m <> None then Runtime.null_reply t.me ~request:m

let segments t =
  [
    ( "db",
      (fun () -> Database.encode t.database),
      fun chunks -> if chunks <> [] then t.database <- Database.decode chunks );
  ]

let wire t =
  Runtime.bind t.me entry (fun m -> handle t m);
  let cfg = Config_tool.attach t.me ~gid:t.group in
  t.config := Some cfg;
  State_transfer.attach t.me ~gid:t.group
    ~segments:(segments t @ [ ("config", (fun () -> Config_tool.encode_state cfg), Config_tool.decode_state cfg) ])

let create me ~db ~nmembers ?store () =
  let t =
    { me; group = Addr.group_of_int 0; database = db; config = ref None; store }
  in
  t.group <- Runtime.pg_create me group_name;
  wire t;
  Config_tool.update (config t) ~key:"nmembers" (Message.Int nmembers);
  Config_tool.update (config t) ~key:"secret" (Message.Str "");
  (match store with
  | Some s ->
    Stable_store.write_checkpoint s ~site:(site_of t) ~name:ckpt_name (Database.encode db)
  | None -> ());
  t

let join me ?store () =
  match Runtime.pg_lookup me group_name with
  | None -> Error "twenty-questions service not found"
  | Some group ->
    let t =
      { me; group; database = Database.create ~columns:[ "object" ]; config = ref None; store }
    in
    (* The entry and config must exist before the transferred state and
       buffered messages land. *)
    Runtime.bind t.me entry (fun m -> handle t m);
    let cfg = Config_tool.attach t.me ~gid:t.group in
    t.config := Some cfg;
    let segs =
      segments t
      @ [ ("config", (fun () -> Config_tool.encode_state cfg), Config_tool.decode_state cfg) ]
    in
    (match
       State_transfer.join_and_xfer me ~gid:group ~credentials:(Message.create ()) ~segments:segs
     with
    | Ok () ->
      State_transfer.attach t.me ~gid:t.group ~segments:segs;
      Ok t
    | Error e -> Error e)

(* --- Step 3: automatic member restart --- *)

let member_program = "twentyq.member"

let register_member_program () =
  Toolkit.Remote_exec.register_program member_program (fun fresh _arg ->
      match join fresh () with
      | Ok _ -> ()
      | Error _ -> () (* the service vanished while we were starting *))

let enable_auto_restart t =
  Runtime.pg_monitor t.me t.group (fun view _changes ->
      (* The oldest member tops the service back up (Step 3).  If it
         dies mid-restart, the next view change makes the new oldest
         take over — and any resulting extra members simply become hot
         standbys (Step 4), exactly the paper's resolution of the race. *)
      if Runtime.pg_rank t.me t.group = Some 0 then begin
        let deficit = nmembers t - View.n_members view in
        if deficit > 0 then begin
          let sites = View.sites view in
          List.iteri
            (fun k () ->
              let target = List.nth sites (k mod List.length sites) in
              ignore
                (Toolkit.Remote_exec.spawn_at t.me ~site:target ~program:member_program
                   (Message.create ())))
            (List.init deficit (fun _ -> ()))
        end
      end)

let restart_from_log me ~store =
  let site = (Runtime.proc_addr me).Addr.site in
  match Stable_store.read_checkpoint store ~site ~name:ckpt_name with
  | None -> Error "no checkpoint on stable storage"
  | Some chunks ->
    let t =
      { me; group = Addr.group_of_int 0; database = Database.decode chunks; config = ref None; store = Some store }
    in
    t.group <- Runtime.pg_create me group_name;
    wire t;
    (* Replay updates logged after the checkpoint. *)
    List.iter (fun m -> apply_update { t with store = None } m)
      (Stable_store.read_log store ~site ~log:log_name);
    Config_tool.update (config t) ~key:"nmembers" (Message.Int 1);
    Config_tool.update (config t) ~key:"secret" (Message.Str "");
    Ok t
