(** The twenty-questions service (paper Sec 5, Steps 2–7).

    A replicated database partitioned {e by work}, not by data: every
    member holds the full relation, and the ranked group view assigns
    each member a number used to split queries deterministically —
    member [C mod NMEMBERS] answers a vertical query on column [C];
    member [M] answers a horizontal query over the rows [R] with
    [R mod NMEMBERS = M].  Because all members see the same view and
    the same request ordering, "each incoming request can be handled in
    a consistent manner by all the members" with no coordination
    messages at all.

    The paper's stepwise extensions, all supported here:
    - {b Step 2} (distribution): vertical/horizontal modes, null
      replies from non-respondents so callers never hang;
    - {b Step 4} (hot standbys): members ranked [>= NMEMBERS] answer
      everything with null replies and take over instantly when a
      failure promotes their rank;
    - {b Step 5} (dynamic updates): queries ride CBCAST and updates
      ride GBCAST — the configuration the paper chose for a
      query-dominated load;
    - {b Step 6} (total-failure restart): with a stable store attached,
      updates are logged and the database checkpointed, and a restarted
      member reloads before serving;
    - {b Step 7} (dynamic load balancing): [NMEMBERS] lives in the
      configuration tool and can be changed at run time, consistently
      at all members.

    Joins use the state transfer tool, so a newcomer receives the
    database exactly as of its join view and misses no update. *)

module Addr = Vsync_msg.Addr
module Message = Vsync_msg.Message
module Runtime = Vsync_core.Runtime
module Toolkit = Vsync_toolkit

type t

(** The service's group name. *)
val group_name : string

(** Entry point the service answers on (for raw clients; the {!Client}
    module hides it). *)
val entry : Vsync_msg.Entry.t

(** [create p ~db ~nmembers ()] makes [p] the founding member.
    [store] turns on logging mode (Step 6). *)
val create :
  Runtime.proc ->
  db:Database.t ->
  nmembers:int ->
  ?store:Toolkit.Stable_store.t ->
  unit ->
  t

(** [join p ()] adds [p] as a member (or hot standby if the group
    already has [nmembers] active members); the database and
    configuration arrive by state transfer. *)
val join : Runtime.proc -> ?store:Toolkit.Stable_store.t -> unit -> (t, string) result

(** {2 Step 3: automatic member restart} *)

(** The program name under which {!register_member_program} registers
    the joinable member body with the remote execution service. *)
val member_program : string

(** [register_member_program ()] — call once per simulation before
    enabling auto-restart. *)
val register_member_program : unit -> unit

(** [enable_auto_restart t] — the oldest member starts replacement
    members (via the remote execution service) whenever the membership
    falls below [nmembers].  The race the paper notes — a takeover
    during restart producing extra members — resolves itself: extras
    become hot standbys (Step 4). *)
val enable_auto_restart : t -> unit

(** [restart_from_log p ~store ()] rebuilds a member from its
    checkpoint and log after a {e total} failure (Step 6) and recreates
    the group. *)
val restart_from_log :
  Runtime.proc -> store:Toolkit.Stable_store.t -> (t, string) result

(** [gid t] is the service group. *)
val gid : t -> Addr.group_id

(** [my_number t] is this member's current number (view rank). *)
val my_number : t -> int option

(** [nmembers t] is the configured active-member count. *)
val nmembers : t -> int

(** [set_nmembers t n] re-balances the decomposition at run time
    (Step 7; one GBCAST via the configuration tool). *)
val set_nmembers : t -> int -> unit

(** [set_secret t category] starts a game round: subsequent query
    answers are implicitly restricted to rows of this category. *)
val set_secret : t -> string -> unit

(** [db t] exposes the local replica (tests). *)
val db : t -> Database.t
