module Ring = Vsync_util.Ring

type record = { at : Engine.time; category : string; detail : string }

type t = {
  engine : Engine.t;
  mutable enabled : bool;
  records : record Ring.t;
}

(* Enough for any single experiment; long runs keep the most recent
   tail rather than growing without bound. *)
let default_capacity = 200_000

let create engine = { engine; enabled = false; records = Ring.create ~capacity:default_capacity }

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

let emit t ~category detail =
  if t.enabled then
    Ring.push t.records { at = Engine.now t.engine; category; detail }

let emitf t ~category fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> emit t ~category detail) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let records t = Ring.to_list t.records

let by_category t c = List.filter (fun r -> String.equal r.category c) (records t)

let clear t = Ring.clear t.records

let pp_record ppf r =
  Format.fprintf ppf "[%a] %-12s %s" Engine.pp_time r.at r.category r.detail
