(** Event tracing.

    Protocol layers emit timestamped records under a category; the
    Figure-3 experiment replays the trace of a single ABCAST to break
    its execution time into phases, and the CLI can dump traces for
    debugging.  Tracing is off by default and costs one branch when
    disabled. *)

type record = { at : Engine.time; category : string; detail : string }

type t

val create : Engine.t -> t

(** [set_enabled t b] turns recording on or off (records are kept). *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool

(** [emit t ~category detail] appends a record when enabled. *)
val emit : t -> category:string -> string -> unit

(** [emitf t ~category fmt ...] is [emit] with formatting, only
    evaluated when enabled. *)
val emitf : t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** [records t] returns records oldest first. *)
val records : t -> record list

(** [by_category t c] filters records with category [c]. *)
val by_category : t -> string -> record list

val clear : t -> unit

val pp_record : Format.formatter -> record -> unit
