module Rng = Vsync_util.Rng
module Stats = Vsync_util.Stats

type site = int

type config = {
  intra_site_us : int;
  inter_site_us : int;
  bandwidth_bytes_per_sec : int;
  per_packet_overhead_bytes : int;
  max_packet_bytes : int;
  loss_probability : float;
}

let default_config =
  {
    intra_site_us = 10;
    inter_site_us = 16_000;
    bandwidth_bytes_per_sec = 1_250_000;
    per_packet_overhead_bytes = 64;
    max_packet_bytes = 4096;
    loss_probability = 0.0;
  }

type t = {
  engine : Engine.t;
  mutable cfg : config;
  n_sites : int;
  up : bool array;
  (* Earliest time each site's transmitter is free: models NIC
     serialization, which is what saturates throughput in Figure 2. *)
  tx_free : Engine.time array;
  mutable partition : (site list * site list) option;
  rng : Rng.t;
  counters : Stats.Counter.t;
}

let create engine cfg ~sites =
  if sites <= 0 then invalid_arg "Net.create: need at least one site";
  {
    engine;
    cfg;
    n_sites = sites;
    up = Array.make sites true;
    tx_free = Array.make sites 0;
    partition = None;
    rng = Rng.split (Engine.rng engine);
    counters = Stats.Counter.create ();
  }

let config t = t.cfg
let n_sites t = t.n_sites
let engine t = t.engine

let check_site t s name =
  if s < 0 || s >= t.n_sites then invalid_arg (Printf.sprintf "Net.%s: bad site %d" name s)

let site_up t s =
  check_site t s "site_up";
  t.up.(s)

let crash_site t s =
  check_site t s "crash_site";
  t.up.(s) <- false

let restart_site t s =
  check_site t s "restart_site";
  t.up.(s) <- true;
  t.tx_free.(s) <- Engine.now t.engine

let set_loss t p = t.cfg <- { t.cfg with loss_probability = p }

let partition t left right = t.partition <- Some (left, right)
let heal t = t.partition <- None

let partitioned t a b =
  match t.partition with
  | None -> false
  | Some (left, right) ->
    (List.mem a left && List.mem b right) || (List.mem a right && List.mem b left)

let fragments t ~bytes =
  if bytes < 0 then invalid_arg "Net.fragments: negative size";
  let max = t.cfg.max_packet_bytes in
  if bytes <= max then [ bytes ]
  else begin
    let rec loop remaining acc =
      if remaining <= max then List.rev (remaining :: acc) else loop (remaining - max) (max :: acc)
    in
    loop bytes []
  end

let send t ~src ~dst ~bytes deliver =
  check_site t src "send";
  check_site t dst "send";
  if bytes < 0 || bytes > t.cfg.max_packet_bytes then
    invalid_arg "Net.send: packet exceeds max_packet_bytes (fragment first)";
  if not t.up.(src) then () (* a dead site sends nothing *)
  else if src = dst then begin
    (* Intra-site hop: fixed cost, no medium contention, never lost. *)
    ignore (Engine.schedule t.engine ~delay:t.cfg.intra_site_us (fun () -> if t.up.(dst) then deliver ()))
  end
  else begin
    let wire_bytes = bytes + t.cfg.per_packet_overhead_bytes in
    Stats.Counter.incr t.counters "net.packets";
    Stats.Counter.add t.counters "net.bytes" wire_bytes;
    if Rng.bernoulli t.rng t.cfg.loss_probability then
      Stats.Counter.incr t.counters "net.lost"
    else begin
      let now = Engine.now t.engine in
      (* Serialize on the sender's transmitter, then propagate. *)
      let tx_start = if t.tx_free.(src) > now then t.tx_free.(src) else now in
      let tx_time = wire_bytes * 1_000_000 / t.cfg.bandwidth_bytes_per_sec in
      let tx_done = tx_start + tx_time in
      t.tx_free.(src) <- tx_done;
      let arrival = tx_done + t.cfg.inter_site_us in
      ignore
        (Engine.schedule_at t.engine arrival (fun () ->
             (* Partition/destination checks happen at arrival time:
                a packet in flight when the link goes bad is lost. *)
             if t.up.(dst) && not (partitioned t src dst) then deliver ()
             else Stats.Counter.incr t.counters "net.lost"))
    end
  end

let packets_sent t = Stats.Counter.get t.counters "net.packets"
let bytes_sent t = Stats.Counter.get t.counters "net.bytes"
let packets_lost t = Stats.Counter.get t.counters "net.lost"
let counters t = t.counters
