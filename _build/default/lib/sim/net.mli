(** Network model.

    Reproduces the paper's testbed at the packet level: SUN-3
    workstations on a 10 Mbit shared Ethernet, with the link constants
    the paper reports in Figure 3 — 10 µs to traverse a link within a
    site, 16 ms to send an inter-site packet — and fragmentation of
    large messages into 4 KB packets (the cause of Figure 2's latency
    knee between 1 KB and 10 KB).

    Failure model (paper Sec 2.1): packets can be lost; sites can crash
    (everything in flight to/from them is dropped); the network can
    partition, in which case cross-partition packets are silently
    dropped until {!heal} — ISIS does not tolerate partitions, it stalls
    until communication is restored, and so do we. *)

type site = int

type config = {
  intra_site_us : int;      (** one-way latency within a site (paper: 10 µs). *)
  inter_site_us : int;      (** one-way inter-site packet latency (paper: 16 ms). *)
  bandwidth_bytes_per_sec : int;
      (** shared-medium capacity (paper: 10 Mbit ≈ 1.25 MB/s). *)
  per_packet_overhead_bytes : int;
      (** header bytes added to every packet on the wire. *)
  max_packet_bytes : int;   (** fragmentation threshold (paper: 4 KB). *)
  loss_probability : float; (** per-packet drop probability. *)
}

(** The paper's constants. *)
val default_config : config

type t

(** [create engine config ~sites] builds a network of [sites] sites, all
    initially up. *)
val create : Engine.t -> config -> sites:int -> t

val config : t -> config
val n_sites : t -> int
val engine : t -> Engine.t

(** [send t ~src ~dst ~bytes deliver] transmits one {e packet} of
    [bytes] payload bytes from [src] to [dst] and calls [deliver] at the
    receiver-side arrival time — unless the packet is lost, a site is
    down, or the two sites are partitioned, in which case [deliver] is
    never called.  Fragmentation is the sender's job ({!fragments}
    helps); [bytes] beyond [max_packet_bytes] raises. *)
val send : t -> src:site -> dst:site -> bytes:int -> (unit -> unit) -> unit

(** [fragments t ~bytes] is the list of packet payload sizes a message
    of [bytes] bytes fragments into (always non-empty). *)
val fragments : t -> bytes:int -> int list

(** {1 Failures} *)

val site_up : t -> site -> bool

(** [crash_site t s] takes the site down: packets to or from it are
    dropped from now on (packets already in flight towards it are also
    discarded at arrival). *)
val crash_site : t -> site -> unit

(** [restart_site t s] brings the site back (a recovered site is a new
    incarnation; higher layers handle reintegration). *)
val restart_site : t -> site -> unit

(** [set_loss t p] changes the packet-loss probability mid-run (tests
    form groups losslessly, then turn loss on for the traffic under
    study). *)
val set_loss : t -> float -> unit

(** [partition t left right] drops packets between the two groups (a
    site absent from both lists communicates with everyone). *)
val partition : t -> site list -> site list -> unit

(** [heal t] removes any partition. *)
val heal : t -> unit

val partitioned : t -> site -> site -> bool

(** {1 Accounting} *)

(** [packets_sent t] / [bytes_sent t] / [packets_lost t] count totals
    since creation (inter-site only; intra-site hops are free, as in the
    paper's accounting). *)
val packets_sent : t -> int

val bytes_sent : t -> int
val packets_lost : t -> int

(** [counters t] exposes the raw counter set for harness snapshots. *)
val counters : t -> Vsync_util.Stats.Counter.t
