module Rng = Vsync_util.Rng
module Heap = Vsync_util.Heap

type time = int

type handle = { mutable cancelled : bool }

type event = { at : time; action : unit -> unit; h : handle }

type t = {
  mutable clock : time;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable fired : int;
  mutable live : int; (* scheduled and not yet fired or cancelled *)
}

let create ?(seed = 0x5EEDL) () =
  {
    clock = 0;
    queue = Heap.create ~compare:(fun a b -> compare a.at b.at);
    root_rng = Rng.create seed;
    fired = 0;
    live = 0;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t at action =
  let at = if at < t.clock then t.clock else at in
  let h = { cancelled = false } in
  Heap.push t.queue { at; action; h };
  t.live <- t.live + 1;
  h

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock + delay) action

let cancel h = h.cancelled <- true

let pending t =
  (* [live] over-counts cancelled-but-not-popped events; walk the heap
     for the exact figure (diagnostics only, so O(n) is fine). *)
  List.length (List.filter (fun e -> not (e.h.cancelled)) (Heap.to_list t.queue))

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
    t.live <- t.live - 1;
    if not e.h.cancelled then begin
      t.clock <- e.at;
      t.fired <- t.fired + 1;
      e.action ()
    end;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
    if stop < t.clock then invalid_arg "Engine.run: until is in the past";
    let continue = ref true in
    while !continue do
      match Heap.peek t.queue with
      | Some e when e.at <= stop -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    t.clock <- stop

let events_fired t = t.fired

let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000

let to_sec t = float_of_int t /. 1e6

let pp_time ppf t =
  if t >= 1_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000 then Format.fprintf ppf "%.3fms" (float_of_int t /. 1e3)
  else Format.fprintf ppf "%dus" t
