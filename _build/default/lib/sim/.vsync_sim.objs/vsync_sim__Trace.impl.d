lib/sim/trace.ml: Engine Format List String Vsync_util
