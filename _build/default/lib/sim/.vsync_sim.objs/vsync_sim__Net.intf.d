lib/sim/net.mli: Engine Vsync_util
