lib/sim/engine.ml: Format List Vsync_util
