lib/sim/net.ml: Array Engine List Printf Vsync_util
