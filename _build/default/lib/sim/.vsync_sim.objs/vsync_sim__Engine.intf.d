lib/sim/engine.mli: Format Vsync_util
