let () =
  Alcotest.run "vsync"
    [
      ("util", Test_util.suite);
      ("msg", Test_msg.suite);
      ("sim", Test_sim.suite);
      ("tasks", Test_tasks.suite);
      ("transport", Test_transport.suite);
      ("core_smoke", Test_core_smoke.suite);
      ("vsync_props", Test_vsync_props.suite);
      ("ordering", Test_ordering.suite);
      ("failures", Test_failures.suite);
      ("model", Test_model.suite);
      ("api", Test_api.suite);
      ("regressions", Test_regressions.suite);
      ("fuzz", Test_fuzz.suite);
      ("toolkit", Test_toolkit.suite);
      ("twentyq", Test_twentyq.suite);
      ("extensions", Test_extensions.suite);
      ("realtime", Test_realtime.suite);
      ("tools2", Test_tools2.suite);
    ]
