(* Unit and property tests for the message subsystem: addresses, entry
   points, the symbol-table message and its binary codec. *)

module Addr = Vsync_msg.Addr
module Entry = Vsync_msg.Entry
module Message = Vsync_msg.Message

(* --- addresses --- *)

let test_addr_roundtrip () =
  let cases =
    [
      Addr.Proc (Addr.proc ~site:0 ~idx:0 ~incarnation:0);
      Addr.Proc (Addr.proc ~site:65535 ~idx:65535 ~incarnation:0xFFFFFF);
      Addr.Proc (Addr.proc ~site:3 ~idx:17 ~incarnation:2);
      Addr.Group (Addr.group_of_int 0);
      Addr.Group (Addr.group_of_int ((7 lsl 20) lor 123));
    ]
  in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Format.asprintf "roundtrip %a" Addr.pp a)
        true
        (Addr.equal a (Addr.of_int64 (Addr.to_int64 a))))
    cases

let test_addr_bad_tag () =
  Alcotest.check_raises "bad tag" (Invalid_argument "Addr.of_int64: bad tag") (fun () ->
      ignore (Addr.of_int64 0L))

let test_addr_ranges () =
  Alcotest.check_raises "site too large" (Invalid_argument "Addr.proc: site out of range")
    (fun () -> ignore (Addr.proc ~site:65536 ~idx:0 ~incarnation:0))

let test_addr_same_slot () =
  let a = Addr.proc ~site:1 ~idx:2 ~incarnation:1 in
  let b = Addr.proc ~site:1 ~idx:2 ~incarnation:9 in
  Alcotest.(check bool) "same slot, different incarnation" true (Addr.same_slot a b);
  Alcotest.(check bool) "not equal across incarnations" false (Addr.equal_proc a b)

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"address int64 roundtrip" ~count:500
    QCheck.(triple (0 -- 65535) (0 -- 65535) (0 -- 0xFFFFFF))
    (fun (site, idx, incarnation) ->
      let a = Addr.Proc (Addr.proc ~site ~idx ~incarnation) in
      Addr.equal a (Addr.of_int64 (Addr.to_int64 a)))

(* --- entries --- *)

let test_entries () =
  Alcotest.(check int) "user base" 16 Entry.user_base;
  Alcotest.(check int) "user 0" 16 (Entry.user 0);
  Alcotest.check_raises "entry overflow"
    (Invalid_argument "Entry.user: entry identifiers are one byte") (fun () ->
      ignore (Entry.user 240));
  Alcotest.(check bool) "generics below user base" true (Entry.generic_recovery < Entry.user_base)

(* --- messages --- *)

let sample () =
  let m = Message.create () in
  Message.set_int m "count" 42;
  Message.set_str m "name" "twenty";
  Message.set_bool m "flag" true;
  Message.set_float m "ratio" 0.125;
  Message.set_bytes m "blob" (Bytes.of_string "\x00\x01\xfe\xff");
  Message.set_addr m "who" (Addr.Proc (Addr.proc ~site:2 ~idx:5 ~incarnation:1));
  Message.set_addrs m "them"
    [ Addr.Group (Addr.group_of_int 9); Addr.Proc (Addr.proc ~site:0 ~idx:0 ~incarnation:0) ];
  let inner = Message.create () in
  Message.set_str inner "k" "v";
  Message.set_msg m "nested" inner;
  m

let test_message_fields () =
  let m = sample () in
  Alcotest.(check (option int)) "int" (Some 42) (Message.get_int m "count");
  Alcotest.(check (option string)) "str" (Some "twenty") (Message.get_str m "name");
  Alcotest.(check (option bool)) "bool" (Some true) (Message.get_bool m "flag");
  Alcotest.(check bool) "nested" true (Message.get_msg m "nested" <> None);
  Alcotest.(check (option int)) "absent" None (Message.get_int m "nope");
  Message.remove m "count";
  Alcotest.(check (option int)) "removed" None (Message.get_int m "count");
  Alcotest.check_raises "type error" (Invalid_argument "Message: field \"name\" has unexpected type")
    (fun () -> ignore (Message.get_int m "name"))

let test_message_replace_keeps_order () =
  let m = Message.create () in
  Message.set_int m "a" 1;
  Message.set_int m "b" 2;
  Message.set_int m "a" 3;
  Alcotest.(check (list string)) "insertion order preserved on replace" [ "a"; "b" ]
    (List.map fst (Message.fields m));
  Alcotest.(check (option int)) "value replaced" (Some 3) (Message.get_int m "a")

let test_message_codec_roundtrip () =
  let m = sample () in
  let m' = Message.decode (Message.encode m) in
  Alcotest.(check bool) "roundtrip equal" true (Message.equal m m')

let test_message_size_positive () =
  let m = sample () in
  Alcotest.(check bool) "size = encoded length" true (Message.size m = Bytes.length (Message.encode m))

let test_message_copy_isolation () =
  let m = sample () in
  let c = Message.copy m in
  Message.set_int c "count" 99;
  (match Message.get_msg c "nested" with
  | Some inner -> Message.set_str inner "k" "mutated"
  | None -> Alcotest.fail "nested lost");
  Alcotest.(check (option int)) "original int unchanged" (Some 42) (Message.get_int m "count");
  match Message.get_msg m "nested" with
  | Some inner -> Alcotest.(check (option string)) "original nested unchanged" (Some "v") (Message.get_str inner "k")
  | None -> Alcotest.fail "nested lost in original"

let test_message_system_fields () =
  let m = Message.create () in
  let p = Addr.proc ~site:1 ~idx:1 ~incarnation:1 in
  Message.set_sender m p;
  Message.set_session m 77;
  Message.set_entry m (Entry.user 3);
  Alcotest.(check bool) "sender" true (Message.sender m = Some p);
  Alcotest.(check (option int)) "session" (Some 77) (Message.session m);
  Alcotest.(check (option int)) "entry" (Some (Entry.user 3)) (Message.entry m)

let test_message_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (match Message.decode (Bytes.of_string "\xff\xff\xff\xff\x00") with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Generator for random messages (flat fields). *)
let gen_message =
  let open QCheck.Gen in
  let value =
    oneof
      [
        map (fun i -> Message.Int i) int;
        map (fun s -> Message.Str s) (string_size (0 -- 64));
        map (fun b -> Message.Bool b) bool;
        map (fun f -> Message.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Message.Bytes (Bytes.of_string s)) (string_size (0 -- 128));
      ]
  in
  let field = pair (map (fun s -> "f" ^ s) (string_size ~gen:(char_range 'a' 'z') (1 -- 8))) value in
  map
    (fun fields ->
      let m = Message.create () in
      List.iter (fun (k, v) -> Message.set m k v) fields;
      m)
    (list_size (0 -- 12) field)

let prop_message_roundtrip =
  QCheck.Test.make ~name:"message codec roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Message.pp) gen_message)
    (fun m -> Message.equal m (Message.decode (Message.encode m)))

let suite =
  [
    Alcotest.test_case "address roundtrip" `Quick test_addr_roundtrip;
    Alcotest.test_case "address bad tag" `Quick test_addr_bad_tag;
    Alcotest.test_case "address ranges" `Quick test_addr_ranges;
    Alcotest.test_case "address same slot" `Quick test_addr_same_slot;
    QCheck_alcotest.to_alcotest prop_addr_roundtrip;
    Alcotest.test_case "entries" `Quick test_entries;
    Alcotest.test_case "message fields" `Quick test_message_fields;
    Alcotest.test_case "message replace keeps order" `Quick test_message_replace_keeps_order;
    Alcotest.test_case "message codec roundtrip" `Quick test_message_codec_roundtrip;
    Alcotest.test_case "message size" `Quick test_message_size_positive;
    Alcotest.test_case "message copy isolation" `Quick test_message_copy_isolation;
    Alcotest.test_case "message system fields" `Quick test_message_system_fields;
    Alcotest.test_case "message decode garbage" `Quick test_message_decode_garbage;
    QCheck_alcotest.to_alcotest prop_message_roundtrip;
  ]
