test/test_regressions.ml: Alcotest Array List Option Printf Runtime Types View Vsync_core Vsync_msg World
