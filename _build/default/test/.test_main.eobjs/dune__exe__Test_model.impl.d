test/test_model.ml: Array Causal Gen Hashtbl List Option QCheck QCheck_alcotest Total Types Vsync_core Vsync_msg Vsync_util
