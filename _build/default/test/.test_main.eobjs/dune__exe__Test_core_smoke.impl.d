test/test_core_smoke.ml: Alcotest Array List Option Printf Runtime Types View Vsync_core Vsync_msg World
