test/test_sim.ml: Alcotest List Vsync_sim
