test/test_twentyq.ml: Alcotest Array Client Database Fmt List Option Printf Runtime Service Twentyq View Vsync_core Vsync_msg Vsync_toolkit World
