test/test_tasks.ml: Alcotest List Option Printexc String Vsync_tasks
