test/test_vsync_props.ml: Alcotest Array Causal List Option Printf Runtime Total Types View Vsync_core Vsync_msg Vsync_sim Vsync_transport Vsync_util World
