test/test_failures.ml: Alcotest Array List Option Printf Runtime Types View Vsync_core Vsync_msg World
