test/test_msg.ml: Alcotest Bytes Format List QCheck QCheck_alcotest Vsync_msg
