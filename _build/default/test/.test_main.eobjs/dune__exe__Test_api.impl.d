test/test_api.ml: Alcotest Array List Option Printf Remote_exec Runtime Types View Vsync_core Vsync_msg Vsync_toolkit World
