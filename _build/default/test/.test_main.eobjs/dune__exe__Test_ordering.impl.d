test/test_ordering.ml: Alcotest Array List Option Printf Runtime Types View Vsync_core Vsync_msg Vsync_toolkit World
