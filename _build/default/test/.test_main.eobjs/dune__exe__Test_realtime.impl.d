test/test_realtime.ml: Alcotest Array List Option Printf Realtime Runtime Vsync_core Vsync_msg Vsync_toolkit World
