test/test_extensions.ml: Alcotest Array Bboard List Option Printf Quorum Runtime Stable_store Test_toolkit Transactions Vsync_core Vsync_msg Vsync_toolkit World
