test/test_fuzz.ml: Alcotest Array Fun Int64 List Option Printf Runtime Types View Vsync_core Vsync_msg Vsync_sim Vsync_util World
