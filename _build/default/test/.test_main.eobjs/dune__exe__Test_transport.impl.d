test/test_transport.ml: Alcotest Array List Vsync_sim Vsync_transport
