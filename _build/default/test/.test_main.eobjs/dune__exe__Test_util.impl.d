test/test_util.ml: Alcotest Array Fun Gen Int Int64 List QCheck QCheck_alcotest Vsync_util
